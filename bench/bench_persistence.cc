// Persistence and spill costs for the crash-safe container format: wall
// time of save / copying load / mmap load at fig10-style scale, LOF
// scoring over an mmap-served M versus the in-RAM M (the paper's step 2
// runs entirely from the file-resident materialization, so the mmap route
// is the literal section-7.4 deployment), and the peak-RSS footprint of
// the memory-budget spill rung versus the in-RAM build.
//
// Besides the stdout table, the run writes BENCH_persistence.json. The
// deterministic columns (file bytes, entry counts, section count, the
// bit-identity flags) are gated by lofkit_benchdiff in CI; the wall-clock
// and RSS columns are informational. LOFKIT_BENCH_SMOKE=1 shrinks the run.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <sys/stat.h>

#include "bench/bench_util.h"
#include "common/bench_report.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/kd_tree_index.h"
#include "index/neighborhood_materializer.h"
#include "lof/lof_computer.h"

using namespace lofkit;         // NOLINT
using namespace lofkit::bench;  // NOLINT

namespace {

uint64_t FileBytes(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size)
                                        : 0;
}

// 1.0 when the two score vectors carry identical bits; the gate metric.
double BitIdentical(const std::vector<double>& a,
                    const std::vector<double>& b) {
  return a.size() == b.size() &&
                 (a.empty() ||
                  std::memcmp(a.data(), b.data(),
                              a.size() * sizeof(double)) == 0)
             ? 1.0
             : 0.0;
}

}  // namespace

int main() {
  const bool smoke = SmokeMode();
  const size_t k = smoke ? 10 : 50;
  const size_t min_pts = smoke ? 8 : 30;
  const std::vector<size_t> sizes =
      smoke ? std::vector<size_t>{500}
            : std::vector<size_t>{2000, 8000, 32000};
  const std::string dir = "/tmp";

  BenchReport report("persistence");
  report.SetManifest("dataset", "performance_workload");
  report.SetManifest("k", static_cast<double>(k));
  report.SetManifest("index", "kd_tree");

  PrintHeader("Persistence",
              "container save / load / mmap walls and scoring routes "
              "vs n (d=5)");
  std::printf("%-8s %-10s %-10s %-10s %-12s %-12s %-10s\n", "n", "save (s)",
              "load (s)", "map (s)", "score-ram", "score-mmap", "MiB");

  for (size_t n : sizes) {
    Rng rng(20260809);
    auto data =
        CheckOk(generators::MakePerformanceWorkload(rng, 5, n, 10), "workload");
    KdTreeIndex index;
    CheckOk(index.Build(data, Euclidean()), "Build");
    auto m = CheckOk(NeighborhoodMaterializer::MaterializeParallel(
                         data, index, k, /*threads=*/0),
                     "MaterializeParallel");

    const std::string path =
        dir + "/lofkit_bench_persistence_" + std::to_string(n) + ".lofc";
    Stopwatch watch;
    CheckOk(m.SaveToFile(path), "SaveToFile");
    const double save_seconds = watch.ElapsedSeconds();
    const uint64_t file_bytes = FileBytes(path);

    watch.Reset();
    auto copied =
        CheckOk(NeighborhoodMaterializer::LoadFromFile(path), "LoadFromFile");
    const double load_seconds = watch.ElapsedSeconds();

    watch.Reset();
    auto mapped =
        CheckOk(NeighborhoodMaterializer::MapFromFile(path), "MapFromFile");
    const double map_seconds = watch.ElapsedSeconds();

    LofComputeOptions options;
    watch.Reset();
    auto ram_scores = CheckOk(LofComputer::Compute(m, min_pts, options),
                              "Compute(in-RAM)");
    const double score_ram_seconds = watch.ElapsedSeconds();
    watch.Reset();
    auto mmap_scores = CheckOk(LofComputer::Compute(mapped, min_pts, options),
                               "Compute(mmap)");
    const double score_mmap_seconds = watch.ElapsedSeconds();

    const std::string case_name = "n=" + std::to_string(n);
    report.Add(case_name,
               {{"save_seconds", save_seconds},
                {"load_seconds", load_seconds},
                {"map_seconds", map_seconds},
                {"score_inram_seconds", score_ram_seconds},
                {"score_mmap_seconds", score_mmap_seconds},
                {"file_bytes", static_cast<double>(file_bytes)},
                {"entries", static_cast<double>(m.total_neighbor_count())},
                {"copied_entries",
                 static_cast<double>(copied.total_neighbor_count())},
                {"mapped_entries",
                 static_cast<double>(mapped.total_neighbor_count())},
                {"scores_identical",
                 BitIdentical(ram_scores.lof, mmap_scores.lof)}});
    std::printf("%-8zu %-10.3f %-10.3f %-10.3f %-12.3f %-12.3f %-10.1f\n", n,
                save_seconds, load_seconds, map_seconds, score_ram_seconds,
                score_mmap_seconds, file_bytes / (1024.0 * 1024.0));
    std::remove(path.c_str());
  }

  // Spill rung: peak-RSS growth of the spill-and-mmap build versus the
  // in-RAM build, on the largest size. The spill build runs FIRST so the
  // process high-water mark cannot mask its footprint; the in-RAM build
  // then shows the cost the spill avoided. Scores must match bit for bit.
  PrintHeader("Spill rung", "peak-RSS growth: spill-to-mmap vs in-RAM build");
  {
    const size_t n = sizes.back();
    Rng rng(20260809);
    auto data =
        CheckOk(generators::MakePerformanceWorkload(rng, 5, n, 10), "workload");

    const uint64_t rss_start = PeakRssBytes();
    LofComputeOptions spill_options;
    spill_options.memory_budget_bytes = 1;
    spill_options.spill_directory = dir;
    auto spilled = CheckOk(
        LofComputer::ComputeFromScratch(data, Euclidean(), min_pts,
                                        IndexKind::kKdTree,
                                        /*distinct=*/false, spill_options),
        "ComputeFromScratch(spill)");
    const uint64_t rss_after_spill = PeakRssBytes();

    LofComputeOptions ram_options;
    auto in_ram = CheckOk(
        LofComputer::ComputeFromScratch(data, Euclidean(), min_pts,
                                        IndexKind::kKdTree,
                                        /*distinct=*/false, ram_options),
        "ComputeFromScratch(in-RAM)");
    const uint64_t rss_after_ram = PeakRssBytes();

    const double spill_delta =
        static_cast<double>(rss_after_spill - rss_start);
    const double ram_delta =
        static_cast<double>(rss_after_ram - rss_after_spill);
    const double projected = static_cast<double>(
        NeighborhoodMaterializer::ProjectedBytes(data.size(), min_pts));
    report.Add("spill_rung",
               {{"spilled", spilled.spilled_to_disk ? 1.0 : 0.0},
                {"degraded_to_requery",
                 spilled.degraded_to_requery ? 1.0 : 0.0},
                {"projected_bytes", projected},
                {"spill_peak_rss_delta_bytes", spill_delta},
                {"inram_peak_rss_delta_bytes", ram_delta},
                {"scores_identical", BitIdentical(in_ram.lof, spilled.lof)}});
    std::printf("projected M: %.1f MiB | spill-build RSS growth: %.1f MiB | "
                "in-RAM-build RSS growth: %.1f MiB\n",
                projected / (1024.0 * 1024.0),
                spill_delta / (1024.0 * 1024.0),
                ram_delta / (1024.0 * 1024.0));
    std::printf("spill rung taken: %s | scores bit-identical: %s\n",
                spilled.spilled_to_disk ? "yes" : "no",
                BitIdentical(in_ram.lof, spilled.lof) == 1.0 ? "yes" : "no");
  }

  CheckOk(report.Write(), "BenchReport::Write");
  return 0;
}
