// Quantifies the paper's central qualitative claim — LOF identifies local
// outliers that global, distance-based notions cannot — as detection
// metrics (ROC-AUC, precision@n) on scenarios with planted ground truth:
//   * DS1 (figure 1): the two planted outliers vs 500 cluster members,
//   * figure 9: seven planted outliers among four clusters,
//   * a "pure local" stress case: outliers hovering next to a dense
//     cluster, where k-distance ranking provably underranks them.
// Methods compared: every scorer in the LocalScorer registry (LOF as a max
// over a MinPts range, LDOF/KDE/kNN-distance/DB-outlier at a fixed MinPts)
// plus DBSCAN noise (binary: noise scores 1, members 0). Per-scorer rows
// land in BENCH_detection_quality.json so CI can track ranking quality.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "clustering/dbscan.h"
#include "common/bench_report.h"
#include "common/random.h"
#include "common/string_util.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "dataset/scenarios.h"
#include "index/kd_tree_index.h"
#include "lof/density_substrate.h"
#include "lof/evaluation.h"
#include "lof/local_scorer.h"
#include "lof/scorer_sweep.h"

using namespace lofkit;          // NOLINT
using namespace lofkit::bench;   // NOLINT

namespace {

constexpr size_t kSweepLb = 10;
constexpr size_t kSweepUb = 30;
constexpr size_t kFixedMinPts = 20;

void AddRow(BenchReport& report, const std::string& slug,
            const std::string& method, const char* label,
            const DetectionQuality& quality) {
  std::printf("  %-22s %-10.3f %-14.3f %-8.3f\n", label, quality.roc_auc,
              quality.precision_at_n, quality.average_precision);
  report.Add(slug + "_" + method,
             {{"roc_auc", quality.roc_auc},
              {"precision_at_n", quality.precision_at_n},
              {"average_precision", quality.average_precision}});
}

void Report(BenchReport& report, const std::string& slug,
            const char* scenario_name, const Dataset& data,
            const std::vector<bool>& truth, double dbscan_eps) {
  KdTreeIndex index;
  CheckOk(index.Build(data, Euclidean()), "Build");
  auto m = CheckOk(
      NeighborhoodMaterializer::Materialize(data, index, kSweepUb),
      "Materialize");
  auto substrate = CheckOk(
      DensitySubstrate::OverMaterialization(m, &data, &Euclidean()),
      "Substrate");

  std::printf("\n%s (n = %zu, planted outliers = %zu)\n", scenario_name,
              data.size(),
              static_cast<size_t>(std::count(truth.begin(), truth.end(),
                                             true)));
  std::printf("  %-22s %-10s %-14s %-8s\n", "method", "ROC-AUC",
              "precision@|O|", "avg prec");

  // Every registered scorer: LOF keeps its historical max-over-a-range
  // aggregation; the single-score methods run at one fixed MinPts.
  for (ScorerKind kind : AllScorerKinds()) {
    std::unique_ptr<LocalScorer> scorer = CreateScorer(kind);
    const std::string method(scorer->name());
    std::vector<double> ranking;
    std::string label;
    if (kind == ScorerKind::kLof) {
      auto sweep = CheckOk(
          ScorerSweep::Run(substrate, *scorer, kSweepLb, kSweepUb), "Sweep");
      ranking = std::move(sweep.aggregated);
      label = StrFormat("%s (max, %zu..%zu)", method.c_str(), kSweepLb,
                        kSweepUb);
    } else {
      auto scores = CheckOk(scorer->Score(substrate, kFixedMinPts),
                            method.c_str());
      ranking = std::move(scores.score);
      label = StrFormat("%s (MinPts=%zu)", method.c_str(), kFixedMinPts);
    }
    auto quality = CheckOk(EvaluateRanking(ranking, truth), "Evaluate");
    AddRow(report, slug, method, label.c_str(), quality);
  }

  // DBSCAN noise as a binary score.
  auto dbscan = CheckOk(
      Dbscan::Run(data, index, {.eps = dbscan_eps, .min_pts = 10}),
      "Dbscan");
  std::vector<double> noise_scores(data.size(), 0.0);
  for (size_t i = 0; i < data.size(); ++i) {
    if (dbscan.cluster_of[i] == DbscanResult::kNoise) noise_scores[i] = 1.0;
  }
  auto noise_quality = CheckOk(EvaluateRanking(noise_scores, truth),
                               "Evaluate noise");
  AddRow(report, slug, "dbscan_noise", "DBSCAN noise", noise_quality);
}

}  // namespace

int main() {
  PrintHeader("Detection quality (registry scorers vs global baselines)",
              "ROC-AUC / precision@n on planted ground truth");
  BenchReport report("detection_quality");
  report.SetManifest("dataset", "ds1+ds2+planted_scenarios");
  report.SetManifest("threads", 1.0);

  {
    Rng rng(11);
    auto scenario = CheckOk(scenarios::MakeDs1(rng), "MakeDs1");
    std::vector<bool> truth(scenario.data.size(), false);
    truth[scenario.named.at("o1")] = true;
    truth[scenario.named.at("o2")] = true;
    Report(report, "ds1", "DS1 (figure 1)", scenario.data, truth, 3.0);
  }
  {
    Rng rng(12);
    auto scenario = CheckOk(scenarios::MakeFig9Dataset(rng), "MakeFig9");
    std::vector<bool> truth(scenario.data.size(), false);
    for (const auto& [name, index] : scenario.named) truth[index] = true;
    Report(report, "fig9", "Figure 9 synthetic", scenario.data, truth, 3.0);
  }
  {
    // Pure local stress: dense cluster + sparse cluster; outliers sit just
    // outside the DENSE one, globally closer to data than most sparse
    // inliers.
    Rng rng(13);
    auto data_or = Dataset::Create(2);
    CheckOk(data_or.status(), "Create");
    Dataset data = std::move(data_or).value();
    const double dense[2] = {0, 0};
    CheckOk(generators::AppendGaussianCluster(data, rng, dense, 0.2, 300,
                                              "dense"),
            "dense");
    const double sparse_lo[2] = {15, -10};
    const double sparse_hi[2] = {35, 10};
    CheckOk(generators::AppendUniformBox(data, rng, sparse_lo, sparse_hi,
                                         300, "sparse"),
            "sparse");
    std::vector<bool> truth(data.size(), false);
    Rng outlier_rng(14);
    for (int i = 0; i < 5; ++i) {
      const double angle = outlier_rng.Uniform(0, 6.28);
      const double p[2] = {1.6 * std::cos(angle), 1.6 * std::sin(angle)};
      truth.push_back(true);
      CheckOk(data.Append(p, "local_outlier"), "Append");
    }
    Report(report, "local_stress",
           "Local-outlier stress (5 points ringing a dense cluster)", data,
           truth, 1.2);
  }

  CheckOk(report.Write(), "Write report");
  std::printf(
      "\nShape check: the density-ratio scorers (LOF, LDOF, KDE) stay at or "
      "near AUC 1.0\neverywhere; the global kNN-distance and DB-outlier "
      "rankings collapse on the\nlocal-outlier stress case (outliers are "
      "globally unremarkable); DBSCAN noise is\nbinary and "
      "parameter-brittle. This is section 3's argument, measured.\n");
  return 0;
}
