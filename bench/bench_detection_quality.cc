// Quantifies the paper's central qualitative claim — LOF identifies local
// outliers that global, distance-based notions cannot — as detection
// metrics (ROC-AUC, precision@n) on scenarios with planted ground truth:
//   * DS1 (figure 1): the two planted outliers vs 500 cluster members,
//   * figure 9: seven planted outliers among four clusters,
//   * a "pure local" stress case: outliers hovering next to a dense
//     cluster, where k-distance ranking provably underranks them.
// Methods compared: LOF (max over a MinPts range), the kNN-distance
// ranking of Ramaswamy et al., and DBSCAN noise (binary: noise scores 1,
// members 0).

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "baselines/knn_outlier.h"
#include "bench/bench_util.h"
#include "clustering/dbscan.h"
#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "dataset/scenarios.h"
#include "index/kd_tree_index.h"
#include "lof/evaluation.h"
#include "lof/lof_sweep.h"

using namespace lofkit;          // NOLINT
using namespace lofkit::bench;   // NOLINT

namespace {

void Report(const char* scenario_name, const Dataset& data,
            const std::vector<bool>& truth, double dbscan_eps) {
  KdTreeIndex index;
  CheckOk(index.Build(data, Euclidean()), "Build");
  auto m = CheckOk(NeighborhoodMaterializer::Materialize(data, index, 30),
                   "Materialize");

  // LOF, max over MinPts [10, 30].
  auto sweep = CheckOk(LofSweep::Run(m, 10, 30), "Sweep");
  auto lof_quality = CheckOk(EvaluateRanking(sweep.aggregated, truth),
                             "Evaluate LOF");

  // Global kNN-distance ranking (k = 20).
  auto knn = CheckOk(
      KnnDistanceOutlierDetector::RankFromMaterializer(m, 20), "KnnRank");
  std::vector<double> knn_scores(data.size());
  for (const RankedOutlier& r : knn) knn_scores[r.index] = r.score;
  auto knn_quality = CheckOk(EvaluateRanking(knn_scores, truth),
                             "Evaluate kNN");

  // DBSCAN noise as a binary score.
  auto dbscan = CheckOk(
      Dbscan::Run(data, index, {.eps = dbscan_eps, .min_pts = 10}),
      "Dbscan");
  std::vector<double> noise_scores(data.size(), 0.0);
  for (size_t i = 0; i < data.size(); ++i) {
    if (dbscan.cluster_of[i] == DbscanResult::kNoise) noise_scores[i] = 1.0;
  }
  auto noise_quality = CheckOk(EvaluateRanking(noise_scores, truth),
                               "Evaluate noise");

  std::printf("\n%s (n = %zu, planted outliers = %zu)\n", scenario_name,
              data.size(),
              static_cast<size_t>(std::count(truth.begin(), truth.end(),
                                             true)));
  std::printf("  %-22s %-10s %-14s %-8s\n", "method", "ROC-AUC",
              "precision@|O|", "avg prec");
  std::printf("  %-22s %-10.3f %-14.3f %-8.3f\n", "LOF (max, 10..30)",
              lof_quality.roc_auc, lof_quality.precision_at_n,
              lof_quality.average_precision);
  std::printf("  %-22s %-10.3f %-14.3f %-8.3f\n", "kNN distance (k=20)",
              knn_quality.roc_auc, knn_quality.precision_at_n,
              knn_quality.average_precision);
  std::printf("  %-22s %-10.3f %-14.3f %-8.3f\n", "DBSCAN noise",
              noise_quality.roc_auc, noise_quality.precision_at_n,
              noise_quality.average_precision);
}

}  // namespace

int main() {
  PrintHeader("Detection quality (LOF vs global baselines)",
              "ROC-AUC / precision@n on planted ground truth");

  {
    Rng rng(11);
    auto scenario = CheckOk(scenarios::MakeDs1(rng), "MakeDs1");
    std::vector<bool> truth(scenario.data.size(), false);
    truth[scenario.named.at("o1")] = true;
    truth[scenario.named.at("o2")] = true;
    Report("DS1 (figure 1)", scenario.data, truth, 3.0);
  }
  {
    Rng rng(12);
    auto scenario = CheckOk(scenarios::MakeFig9Dataset(rng), "MakeFig9");
    std::vector<bool> truth(scenario.data.size(), false);
    for (const auto& [name, index] : scenario.named) truth[index] = true;
    Report("Figure 9 synthetic", scenario.data, truth, 3.0);
  }
  {
    // Pure local stress: dense cluster + sparse cluster; outliers sit just
    // outside the DENSE one, globally closer to data than most sparse
    // inliers.
    Rng rng(13);
    auto data_or = Dataset::Create(2);
    CheckOk(data_or.status(), "Create");
    Dataset data = std::move(data_or).value();
    const double dense[2] = {0, 0};
    CheckOk(generators::AppendGaussianCluster(data, rng, dense, 0.2, 300,
                                              "dense"),
            "dense");
    const double sparse_lo[2] = {15, -10};
    const double sparse_hi[2] = {35, 10};
    CheckOk(generators::AppendUniformBox(data, rng, sparse_lo, sparse_hi,
                                         300, "sparse"),
            "sparse");
    std::vector<bool> truth(data.size(), false);
    Rng outlier_rng(14);
    for (int i = 0; i < 5; ++i) {
      const double angle = outlier_rng.Uniform(0, 6.28);
      const double p[2] = {1.6 * std::cos(angle), 1.6 * std::sin(angle)};
      truth.push_back(true);
      CheckOk(data.Append(p, "local_outlier"), "Append");
    }
    Report("Local-outlier stress (5 points ringing a dense cluster)", data,
           truth, 1.2);
  }

  std::printf(
      "\nShape check: LOF at or near AUC 1.0 everywhere; the global "
      "kNN-distance ranking\ncollapses on the local-outlier stress case "
      "(outliers are globally unremarkable);\nDBSCAN noise is binary and "
      "parameter-brittle. This is section 3's argument, measured.\n");
  return 0;
}
