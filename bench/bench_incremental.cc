// Extension bench (section 8, "further improve the performance of LOF
// computation"): maintaining the materialization database M incrementally
// under insertions vs. re-running the batch step 1 after every arrival.
// The incremental path updates only the neighborhoods the new point enters;
// the table reports the per-insert cost ratio and how local the updates
// actually are.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/incremental_materializer.h"
#include "index/linear_scan_index.h"

using namespace lofkit;          // NOLINT
using namespace lofkit::bench;   // NOLINT

int main() {
  PrintHeader("Extension: incremental maintenance of M",
              "per-insert cost vs batch rematerialization, k_max = 20");
  std::printf("%-8s %-18s %-18s %-10s %-18s\n", "n", "incremental (ms)",
              "batch redo (ms)", "speedup", "avg affected lists");

  for (size_t n : {1000, 2000, 4000, 8000}) {
    Rng rng(n);
    auto base = CheckOk(generators::MakePerformanceWorkload(rng, 2, n, 8),
                        "workload");
    auto incremental = CheckOk(
        IncrementalMaterializer::Create(base, Euclidean(), 20), "Create");

    // 50 inserts, timed.
    const size_t kInserts = 50;
    std::vector<std::vector<double>> points;
    for (size_t i = 0; i < kInserts; ++i) {
      points.push_back({rng.Uniform(0, 100), rng.Uniform(0, 100)});
    }
    Stopwatch watch;
    size_t affected_total = 0;
    for (const auto& p : points) {
      CheckOk(incremental.Insert(p), "Insert");
      affected_total += incremental.last_affected_count();
    }
    const double incremental_ms = watch.ElapsedMillis() / kInserts;

    // Batch alternative: rebuild M over the final dataset once; a true
    // per-insert redo would pay this after *every* arrival.
    LinearScanIndex index;
    CheckOk(index.Build(incremental.data(), Euclidean()), "Build");
    watch.Reset();
    auto m = CheckOk(NeighborhoodMaterializer::Materialize(
                         incremental.data(), index, 20),
                     "Materialize");
    (void)m;
    const double batch_ms = watch.ElapsedMillis();

    std::printf("%-8zu %-18.3f %-18.3f %-10.1f %-18.1f\n", n,
                incremental_ms, batch_ms, batch_ms / incremental_ms,
                static_cast<double>(affected_total) / kInserts);
  }
  std::printf("\nShape check: the incremental insert costs one distance "
              "pass (O(n)) instead of a\nfull O(n * query) step-1 redo, "
              "and touches only a handful of neighborhoods; the\nresulting "
              "M is bit-identical to the batch one (verified by the test "
              "suite).\n");
  return 0;
}
