// Ablation (DESIGN.md): the kNN-engine choice of section 7.4. Same LOF
// pipeline, same data, five engines — identical rankings by construction,
// very different materialization cost profiles across dimensionality. This
// reproduces the paper's engine guidance as a measurement: grid wins at
// d=2, the tree family in the middle dimensions, and everything collapses
// toward the scan in high d.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/index_factory.h"
#include "index/neighborhood_materializer.h"

using namespace lofkit;          // NOLINT
using namespace lofkit::bench;   // NOLINT

int main() {
  PrintHeader("Ablation: kNN engine x dimensionality",
              "materialization time (s), n = 4000, MinPtsUB = 50");
  std::printf("%-14s", "engine");
  for (size_t d : {2, 5, 10, 20}) std::printf("  d=%-7zu", d);
  std::printf("\n");
  for (IndexKind kind : AllIndexKinds()) {
    std::printf("%-14s", std::string(IndexKindName(kind)).c_str());
    for (size_t d : {2, 5, 10, 20}) {
      Rng rng(42 + d);
      auto data = CheckOk(
          generators::MakePerformanceWorkload(rng, d, 4000, 10), "workload");
      auto index = CreateIndex(kind);
      Stopwatch watch;
      CheckOk(index->Build(data, Euclidean()), "Build");
      auto m = CheckOk(
          NeighborhoodMaterializer::Materialize(data, *index, 50),
          "Materialize");
      (void)m;
      std::printf("  %-9.3f", watch.ElapsedSeconds());
    }
    std::printf("\n");
  }
  std::printf("\nRecommended engine per dimension (RecommendIndexKind): "
              "d=2 -> %s, d=5 -> %s,\nd=16 -> %s, d=64 -> %s.\n",
              std::string(IndexKindName(RecommendIndexKind(2))).c_str(),
              std::string(IndexKindName(RecommendIndexKind(5))).c_str(),
              std::string(IndexKindName(RecommendIndexKind(16))).c_str(),
              std::string(IndexKindName(RecommendIndexKind(64))).c_str());
  return 0;
}
