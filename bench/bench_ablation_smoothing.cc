// Ablation (Definition 5): why LOF uses *reachability* distances instead of
// raw distances. The paper: "the statistical fluctuations of d(p,o) for all
// the p's close to o can be significantly reduced. The strength of this
// smoothing effect can be controlled by the parameter k." This bench
// computes LOF both ways over a uniform region (where the ideal LOF is
// exactly 1) and reports the score dispersion: the reachability version
// should be markedly tighter, and the gap should shrink as MinPts grows.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/kd_tree_index.h"
#include "lof/lof_computer.h"

using namespace lofkit;          // NOLINT
using namespace lofkit::bench;   // NOLINT

namespace {

struct Dispersion {
  double stddev;
  double max_deviation;  // max |LOF - 1|
};

Dispersion Measure(const LofScores& scores) {
  double sum = 0, sum_sq = 0, max_dev = 0;
  for (double lof : scores.lof) {
    sum += lof;
    sum_sq += lof * lof;
    max_dev = std::max(max_dev, std::abs(lof - 1.0));
  }
  const double n = static_cast<double>(scores.lof.size());
  const double mean = sum / n;
  return {std::sqrt(std::max(0.0, sum_sq / n - mean * mean)), max_dev};
}

}  // namespace

int main() {
  PrintHeader("Ablation: reachability-distance smoothing (Definition 5)",
              "LOF dispersion on a uniform region, with vs without");
  Rng rng(55);
  auto data = CheckOk(Dataset::Create(2), "Create");
  const double lo[2] = {0, 0};
  const double hi[2] = {100, 100};
  CheckOk(generators::AppendUniformBox(data, rng, lo, hi, 2000), "box");

  KdTreeIndex index;
  CheckOk(index.Build(data, Euclidean()), "Build");
  auto m = CheckOk(NeighborhoodMaterializer::Materialize(data, index, 50),
                   "Materialize");

  std::printf("%-8s %-22s %-22s %-10s\n", "MinPts",
              "reach-dist stddev/maxdev", "raw-dist stddev/maxdev",
              "stddev ratio");
  for (size_t min_pts : {3, 5, 10, 20, 30, 50}) {
    auto smoothed = CheckOk(
        LofComputer::Compute(m, min_pts, {.use_reachability = true}),
        "Compute");
    auto raw = CheckOk(
        LofComputer::Compute(m, min_pts, {.use_reachability = false}),
        "Compute");
    const Dispersion s = Measure(smoothed);
    const Dispersion r = Measure(raw);
    std::printf("%-8zu %8.4f / %-11.4f %8.4f / %-11.4f %-10.2f\n", min_pts,
                s.stddev, s.max_deviation, r.stddev, r.max_deviation,
                s.stddev > 0 ? r.stddev / s.stddev : 0.0);
  }
  std::printf("\nShape check: the reachability version is consistently "
              "tighter around 1 (ratio > 1),\nconfirming the smoothing role "
              "definition 5 assigns to reach-dist; larger MinPts\nshrinks "
              "both, as the paper's 'controlled by the parameter k' remark "
              "predicts.\n");
  return 0;
}
