#ifndef LOFKIT_BENCH_BENCH_UTIL_H_
#define LOFKIT_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace lofkit::bench {

/// Prints a section header for one reproduced table/figure.
inline void PrintHeader(const char* experiment_id, const char* description) {
  std::printf("\n==============================================================\n");
  std::printf("%s — %s\n", experiment_id, description);
  std::printf("==============================================================\n");
}

/// Aborts the bench with a readable message when a pipeline step fails.
/// Benches are straight-line experiment drivers, so failing fast is the
/// right behavior (unlike the library, which returns Status).
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL in %s: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckOk(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).value();
}

/// True when $LOFKIT_BENCH_SMOKE is set (to anything but "0"): benches
/// shrink to one tiny repetition so CI can prove they still build, run and
/// emit their JSON without paying for real measurements.
inline bool SmokeMode() {
  const char* value = std::getenv("LOFKIT_BENCH_SMOKE");
  return value != nullptr && std::string(value) != "0";
}

}  // namespace lofkit::bench

#endif  // LOFKIT_BENCH_BENCH_UTIL_H_
