#ifndef LOFKIT_BENCH_BENCH_UTIL_H_
#define LOFKIT_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace lofkit::bench {

/// Prints a section header for one reproduced table/figure.
inline void PrintHeader(const char* experiment_id, const char* description) {
  std::printf("\n==============================================================\n");
  std::printf("%s — %s\n", experiment_id, description);
  std::printf("==============================================================\n");
}

/// Aborts the bench with a readable message when a pipeline step fails.
/// Benches are straight-line experiment drivers, so failing fast is the
/// right behavior (unlike the library, which returns Status).
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL in %s: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckOk(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).value();
}

}  // namespace lofkit::bench

#endif  // LOFKIT_BENCH_BENCH_UTIL_H_
