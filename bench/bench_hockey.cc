// Reproduces Section 7.2 (hockey experiments) on the NHL96 substitution
// workload (see DESIGN.md section 4): in the (points, plus-minus, penalty
// minutes) subspace the DB-outlier baseline's hit is also LOF's top object
// and a Barnaby-analogue ranks right behind; in the (games, goals,
// shooting-pct) subspace the Osgood-analogue dominates with the
// Lemieux/Poapst analogues behind, mirroring the paper's LOF 6.0 / 2.8 /
// 2.5 ordering.

#include <cstdio>
#include <set>

#include "baselines/db_outlier.h"
#include "bench/bench_util.h"
#include "common/random.h"
#include "dataset/metric.h"
#include "dataset/scenarios.h"
#include "lof/lof_sweep.h"

using namespace lofkit;          // NOLINT
using namespace lofkit::bench;   // NOLINT

namespace {

void ReportTop(const Dataset& ds, const std::vector<RankedOutlier>& ranked,
               size_t n) {
  std::printf("%-6s %-10s %-16s %s\n", "rank", "max LOF", "label",
              "attributes");
  for (size_t i = 0; i < std::min(n, ranked.size()); ++i) {
    const uint32_t p = ranked[i].index;
    std::printf("%-6zu %-10.3f %-16s (%.0f, %.0f, %.1f)\n", i + 1,
                ranked[i].score, ds.label(p).c_str(), ds.point(p)[0],
                ds.point(p)[1], ds.point(p)[2]);
  }
}

}  // namespace

int main() {
  PrintHeader("Section 7.2 (hockey, substituted data)",
              "LOF in MinPts range [30, 50] vs DB(pct,dmin) baseline");

  {
    Rng rng(96);
    auto scenario = CheckOk(scenarios::MakeHockeySubspace1(rng),
                            "MakeHockeySubspace1");
    const Dataset normalized = scenario.data.NormalizedToUnitBox();
    std::printf("\nTest 1: subspace (points, plus-minus, penalty minutes), "
                "n = %zu\n", normalized.size());
    auto ranked = CheckOk(
        LofSweep::RankOutliers(normalized, Euclidean(), 30, 50, 0,
                               IndexKind::kKdTree),
        "RankOutliers");
    ReportTop(scenario.data, ranked, 5);

    // DB baseline calibrated to flag very few objects (paper: exactly
    // Konstantinov at DB(0.998, 26.3044)).
    auto db = CheckOk(
        DbOutlierDetector::Detect(normalized, Euclidean(), 99.8, 0.25),
        "Detect");
    std::printf("DB(99.8, 0.25) outliers (%zu):", db.outlier_count);
    for (size_t i = 0; i < normalized.size(); ++i) {
      if (db.is_outlier[i]) {
        std::printf(" %s", scenario.data.label(i).c_str());
      }
    }
    std::printf("\nPaper parallel: DB's only hit (Konstantinov analogue) is "
                "LOF's #1 (paper LOF 2.4),\nBarnaby analogue close behind "
                "(paper LOF 2.0).\n");
  }

  {
    Rng rng(97);
    auto scenario = CheckOk(scenarios::MakeHockeySubspace2(rng),
                            "MakeHockeySubspace2");
    const Dataset normalized = scenario.data.NormalizedToUnitBox();
    std::printf("\nTest 2: subspace (games, goals, shooting pct), n = %zu\n",
                normalized.size());
    auto ranked = CheckOk(
        LofSweep::RankOutliers(normalized, Euclidean(), 30, 50, 0,
                               IndexKind::kKdTree),
        "RankOutliers");
    ReportTop(scenario.data, ranked, 5);

    // The paper's point: DB(0.997, 5) finds Osgood and Lemieux but NOT
    // Poapst — a 3-game player is globally close to the fringe crowd, only
    // locally anomalous. Sweep dmin for a setting flagging exactly the two
    // global extremes and confirm the Poapst analogue is absent.
    for (double dmin = 0.45; dmin >= 0.2; dmin -= 0.05) {
      auto db = CheckOk(
          DbOutlierDetector::Detect(normalized, Euclidean(), 99.7, dmin),
          "Detect");
      if (db.outlier_count == 0) continue;
      std::printf("DB(99.7, %.2f) outliers (%zu):", dmin, db.outlier_count);
      bool found_poapst = false;
      for (size_t i = 0; i < normalized.size(); ++i) {
        if (db.is_outlier[i]) {
          std::printf(" %s", scenario.data.label(i).c_str());
          if (scenario.data.label(i) == "poapst") found_poapst = true;
        }
      }
      std::printf("%s\n", found_poapst
                               ? ""
                               : "   <- Poapst analogue NOT found by DB");
      break;
    }
    std::printf("Paper parallel: Osgood LOF 6.0 > Lemieux 2.8 > Poapst 2.5; "
                "the DB baseline finds the\nglobal extremes but misses the "
                "Poapst-style local outlier — exactly section 7.2.\n");
  }
  return 0;
}
