// Reproduces Figure 8: LOF over MinPts in [10, 50] for one representative
// object from each of S1 (10 objects), S2 (35) and S3 (500). Expected
// shape: S3's object stays at LOF ~ 1 throughout; S1's object is a strong
// outlier over a MinPts window starting near 10; S2's object becomes
// outlying only once MinPts exceeds its own cluster size (~36+), when its
// neighborhoods start reaching into other clusters.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "dataset/metric.h"
#include "dataset/scenarios.h"
#include "index/kd_tree_index.h"
#include "lof/lof_computer.h"

using namespace lofkit;          // NOLINT
using namespace lofkit::bench;   // NOLINT

int main() {
  PrintHeader("Figure 8", "LOF vs MinPts for objects in S1 / S2 / S3");
  Rng rng(8);
  auto scenario = CheckOk(scenarios::MakeFig8Clusters(rng),
                          "MakeFig8Clusters");
  const size_t s1 = scenario.named.at("s1_rep");
  const size_t s2 = scenario.named.at("s2_rep");
  const size_t s3 = scenario.named.at("s3_rep");

  KdTreeIndex index;
  CheckOk(index.Build(scenario.data, Euclidean()), "Build");
  auto m = CheckOk(
      NeighborhoodMaterializer::Materialize(scenario.data, index, 50),
      "Materialize");

  std::printf("%-8s %-12s %-12s %-12s\n", "MinPts", "LOF(S1 obj)",
              "LOF(S2 obj)", "LOF(S3 obj)");
  double s2_lof_at_20 = 0.0;
  double s2_lof_at_50 = 0.0;
  double s3_max = 0.0;
  for (size_t min_pts = 10; min_pts <= 50; ++min_pts) {
    auto scores = CheckOk(LofComputer::Compute(m, min_pts), "Compute");
    std::printf("%-8zu %-12.3f %-12.3f %-12.3f\n", min_pts, scores.lof[s1],
                scores.lof[s2], scores.lof[s3]);
    if (min_pts == 20) s2_lof_at_20 = scores.lof[s2];
    if (min_pts == 50) s2_lof_at_50 = scores.lof[s2];
    s3_max = std::max(s3_max, scores.lof[s3]);
  }
  std::printf("\nShape checks:\n");
  std::printf("  S3 object never outlying (max LOF %.3f, expected ~1)\n",
              s3_max);
  std::printf("  S2 object: LOF %.3f at MinPts=20 vs %.3f at MinPts=50 "
              "(expected: rises once\n  MinPts exceeds |S2|=35, the "
              "cluster-size semantics of MinPtsUB in sec. 6.2)\n",
              s2_lof_at_20, s2_lof_at_50);
  return 0;
}
