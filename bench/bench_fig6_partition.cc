// Reproduces the situation of Figure 6 / Theorem 2 (section 5.4): an
// object p whose MinPts-nearest neighbors come from TWO clusters of very
// different densities. Theorem 1's bounds must still hold but become loose
// (the pct of section 5.3 is effectively large); Theorem 2, fed the
// partition of the neighborhood, tightens them. The bench prints both
// bounds against the measured LOF while the density contrast grows.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/linear_scan_index.h"
#include "lof/lof_bounds.h"
#include "lof/lof_computer.h"

using namespace lofkit;          // NOLINT
using namespace lofkit::bench;   // NOLINT

int main() {
  PrintHeader("Figure 6 / Theorem 2",
              "bounds for a point whose neighborhood spans two clusters");
  std::printf("%-16s %-22s %-10s %-22s %-12s\n", "density ratio",
              "thm1 [low, high]", "LOF(p)", "thm2 [low, high]",
              "spread ratio");

  for (double sigma2 : {0.5, 0.25, 0.1, 0.05}) {
    Rng rng(static_cast<uint64_t>(sigma2 * 1000));
    auto ds = CheckOk(Dataset::Create(2), "Create");
    // Cluster 1 (left, fixed density) and cluster 2 (right, increasingly
    // dense); p sits exactly between them, as in figure 6.
    const double c1[2] = {-4.0, 0.0};
    const double c2[2] = {4.0, 0.0};
    CheckOk(generators::AppendGaussianCluster(ds, rng, c1, 0.5, 200, "C1"),
            "c1");
    CheckOk(generators::AppendGaussianCluster(ds, rng, c2, sigma2, 200,
                                              "C2"),
            "c2");
    // Place p midway between the two cluster *edges*, so its 6-nearest
    // neighbors draw from both clusters regardless of the density contrast
    // — the exact situation figure 6 depicts.
    double c1_edge = -1e9, c2_edge = 1e9;
    for (size_t i = 0; i < ds.size(); ++i) {
      if (ds.label(i) == "C1") {
        c1_edge = std::max(c1_edge, ds.point(i)[0]);
      } else {
        c2_edge = std::min(c2_edge, ds.point(i)[0]);
      }
    }
    const double p[2] = {0.5 * (c1_edge + c2_edge), 0.0};
    const size_t p_index = ds.size();
    CheckOk(ds.Append(p, "p"), "p");

    LinearScanIndex index;
    CheckOk(index.Build(ds, Euclidean()), "Build");
    const size_t min_pts = 6;  // figure 6 uses MinPts = 6
    auto m = CheckOk(NeighborhoodMaterializer::Materialize(ds, index, 6),
                     "Materialize");
    auto scores = CheckOk(LofComputer::Compute(m, min_pts), "Compute");

    auto stats = CheckOk(ComputeNeighborhoodStats(m, p_index, min_pts),
                         "Stats");
    const LofBoundEstimate thm1 = Theorem1Bounds(stats);

    std::vector<int> partition(ds.size());
    for (size_t i = 0; i < ds.size(); ++i) {
      partition[i] = ds.label(i) == "C2" ? 1 : 0;
    }
    auto thm2 = CheckOk(Theorem2Bounds(m, p_index, min_pts, partition),
                        "Theorem2");

    const double spread1 = thm1.upper - thm1.lower;
    const double spread2 = thm2.upper - thm2.lower;
    std::printf("%-16.1f [%7.2f, %8.2f]   %-10.2f [%7.2f, %8.2f]   %-12.2f\n",
                0.5 / sigma2, thm1.lower, thm1.upper, scores.lof[p_index],
                thm2.lower, thm2.upper,
                spread2 > 0 ? spread1 / spread2 : 0.0);
  }
  std::printf("\nShape check: both bound pairs bracket the measured LOF; "
              "while the neighborhood\nspans both clusters, theorem 2's "
              "partition-aware bounds are up to ~2x tighter than\ntheorem "
              "1's (section 5.4). Once the contrast is so extreme that all "
              "six neighbors\ncome from one cluster, the partition is "
              "trivial and corollary 1 makes the bounds\ncoincide — also "
              "as the theory says.\n");
  return 0;
}
