// Micro-benchmarks (google-benchmark) for the LOF pipeline itself:
// materialization, single-MinPts computation, and range sweeps — the unit
// costs behind figures 10 and 11.

#include <cstdlib>
#include <map>
#include <memory>
#include <optional>

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/kd_tree_index.h"
#include "index/incremental_materializer.h"
#include "lof/evaluation.h"
#include "lof/lof_bounds.h"
#include "lof/lof_sweep.h"

namespace lofkit {
namespace {

struct Fixture {
  Dataset data;
  KdTreeIndex index;
  std::optional<NeighborhoodMaterializer> m;
};

Fixture& SharedFixture(size_t n) {
  static std::map<size_t, std::unique_ptr<Fixture>>* fixtures =
      new std::map<size_t, std::unique_ptr<Fixture>>();
  auto it = fixtures->find(n);
  if (it == fixtures->end()) {
    Rng rng(n);
    auto data = generators::MakePerformanceWorkload(rng, 2, n, 10);
    if (!data.ok()) std::abort();
    auto fixture = std::make_unique<Fixture>(
        Fixture{std::move(data).value(), {}, {}});
    if (!fixture->index.Build(fixture->data, Euclidean()).ok()) std::abort();
    auto m = NeighborhoodMaterializer::Materialize(fixture->data,
                                                   fixture->index, 50);
    if (!m.ok()) std::abort();
    fixture->m.emplace(std::move(m).value());
    it = fixtures->emplace(n, std::move(fixture)).first;
  }
  return *it->second;
}

void BM_Materialize(benchmark::State& state) {
  Fixture& fixture = SharedFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto m = NeighborhoodMaterializer::Materialize(fixture.data,
                                                   fixture.index, 50);
    if (!m.ok()) std::abort();
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Materialize)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_LofSingleMinPts(benchmark::State& state) {
  Fixture& fixture = SharedFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto scores = LofComputer::Compute(*fixture.m, 30);
    if (!scores.ok()) std::abort();
    benchmark::DoNotOptimize(scores);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LofSingleMinPts)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);

void BM_LofSweep10To50(benchmark::State& state) {
  Fixture& fixture = SharedFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto sweep = LofSweep::Run(*fixture.m, 10, 50);
    if (!sweep.ok()) std::abort();
    benchmark::DoNotOptimize(sweep);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LofSweep10To50)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);

void BM_Theorem1Bounds(benchmark::State& state) {
  Fixture& fixture = SharedFixture(static_cast<size_t>(state.range(0)));
  uint32_t i = 0;
  for (auto _ : state) {
    auto stats = ComputeNeighborhoodStats(*fixture.m, i, 30);
    if (!stats.ok()) std::abort();
    benchmark::DoNotOptimize(Theorem1Bounds(*stats));
    i = (i + 1) % static_cast<uint32_t>(fixture.m->size());
  }
}
BENCHMARK(BM_Theorem1Bounds)->Arg(1000)->Unit(benchmark::kMicrosecond);

void BM_EvaluateRanking(benchmark::State& state) {
  Fixture& fixture = SharedFixture(static_cast<size_t>(state.range(0)));
  auto scores = LofComputer::Compute(*fixture.m, 30);
  if (!scores.ok()) std::abort();
  std::vector<bool> truth(scores->lof.size(), false);
  for (size_t i = 0; i < truth.size(); i += 50) truth[i] = true;
  for (auto _ : state) {
    auto quality = EvaluateRanking(scores->lof, truth);
    if (!quality.ok()) std::abort();
    benchmark::DoNotOptimize(quality);
  }
}
BENCHMARK(BM_EvaluateRanking)->Arg(4000)->Unit(benchmark::kMicrosecond);

void BM_IncrementalInsert(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(n + 5);
  auto base = generators::MakePerformanceWorkload(rng, 2, n, 8);
  if (!base.ok()) std::abort();
  auto incremental =
      IncrementalMaterializer::Create(std::move(base).value(), Euclidean(),
                                      20);
  if (!incremental.ok()) std::abort();
  for (auto _ : state) {
    const std::vector<double> p = {rng.Uniform(0, 100), rng.Uniform(0, 100)};
    if (!incremental->Insert(p).ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IncrementalInsert)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace lofkit

BENCHMARK_MAIN();
