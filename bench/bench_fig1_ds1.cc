// Reproduces Figure 1 / Section 3: on dataset DS1 (sparse cluster C1 of
// 400, dense cluster C2 of 100, outliers o1 and o2), no DB(pct, dmin)
// setting can flag the local outlier o2 without also flagging (essentially
// all of) C1 — while LOF ranks o1 and o2 on top with scores far above the
// cluster members.

#include <algorithm>
#include <cstdio>
#include <limits>

#include "baselines/db_outlier.h"
#include "bench/bench_util.h"
#include "common/random.h"
#include "dataset/metric.h"
#include "dataset/scenarios.h"
#include "lof/lof_sweep.h"

using namespace lofkit;          // NOLINT
using namespace lofkit::bench;   // NOLINT

int main() {
  PrintHeader("Figure 1 / Section 3 (DS1)",
              "DB(pct,dmin) cannot isolate o2; LOF can");
  Rng rng(20000601);
  auto scenario = CheckOk(scenarios::MakeDs1(rng), "MakeDs1");
  const Dataset& ds = scenario.data;
  const size_t o1 = scenario.named.at("o1");
  const size_t o2 = scenario.named.at("o2");

  // Geometry summary.
  double d_o2_c2 = std::numeric_limits<double>::infinity();
  double min_c1_nn = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < ds.size(); ++i) {
    if (ds.label(i) == "C2") {
      d_o2_c2 = std::min(d_o2_c2,
                         Euclidean().Distance(ds.point(o2), ds.point(i)));
    }
  }
  for (size_t i = 0; i < ds.size(); ++i) {
    if (ds.label(i) != "C1") continue;
    double nn = std::numeric_limits<double>::infinity();
    for (size_t j = 0; j < ds.size(); ++j) {
      if (j == i) continue;
      nn = std::min(nn, Euclidean().Distance(ds.point(i), ds.point(j)));
    }
    min_c1_nn = std::min(min_c1_nn, nn);
  }
  std::printf("d(o2, C2) = %.3f   <   min NN distance in C1 = %.3f\n\n",
              d_o2_c2, min_c1_nn);

  // DB(pct, dmin) sweep: report, for each setting where o2 is flagged, how
  // much of C1 is flagged with it.
  std::printf("%-8s %-8s %-12s %-12s %-14s\n", "pct", "dmin", "o2 outlier?",
              "o1 outlier?", "C1 flagged");
  for (double pct : {90.0, 95.0, 99.0, 99.8}) {
    for (double dmin : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) {
      auto result = CheckOk(
          DbOutlierDetector::Detect(ds, Euclidean(), pct, dmin), "Detect");
      size_t c1_flagged = 0;
      for (size_t i = 0; i < ds.size(); ++i) {
        if (ds.label(i) == "C1" && result.is_outlier[i]) ++c1_flagged;
      }
      std::printf("%-8.1f %-8.1f %-12s %-12s %3zu / 400\n", pct, dmin,
                  result.is_outlier[o2] ? "YES" : "no",
                  result.is_outlier[o1] ? "YES" : "no", c1_flagged);
    }
  }

  // LOF ranking.
  auto ranked = CheckOk(LofSweep::RankOutliers(ds, Euclidean(), 10, 30, 10,
                                               IndexKind::kRStarTree),
                        "RankOutliers");
  std::printf("\nLOF ranking (max over MinPts in [10, 30]), top 10:\n");
  std::printf("%-6s %-10s %-10s %s\n", "rank", "point", "LOF", "label");
  for (size_t i = 0; i < ranked.size(); ++i) {
    std::printf("%-6zu %-10u %-10.3f %s\n", i + 1, ranked[i].index,
                ranked[i].score, ds.label(ranked[i].index).c_str());
  }
  std::printf("\nPaper's claim reproduced: every (pct,dmin) flagging o2 also "
              "flags C1 en masse,\nwhile LOF ranks o1 and o2 on top.\n");
  return 0;
}
