// Reproduces the 64-dimensional experiment mentioned in Section 7's
// introduction: color-histogram-like vectors (synthetic stand-in, see
// DESIGN.md section 4) form several clusters; LOF remains meaningful in 64
// dimensions, assigning ~1 to cluster members and clearly elevated values
// (the paper saw up to ~7) to the planted cross-cluster blends.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "dataset/metric.h"
#include "dataset/scenarios.h"
#include "index/va_file_index.h"
#include "lof/lof_computer.h"
#include "lof/lof_sweep.h"

using namespace lofkit;          // NOLINT
using namespace lofkit::bench;   // NOLINT

int main() {
  PrintHeader("Section 7 (64-d histograms, substituted data)",
              "LOF on 64-dimensional clustered vectors");
  Rng rng(64);
  auto scenario = CheckOk(scenarios::Make64DHistograms(rng),
                          "Make64DHistograms");
  const Dataset& ds = scenario.data;

  VaFileIndex index;  // the paper's high-dimensional engine choice
  CheckOk(index.Build(ds, Euclidean()), "Build");
  auto m = CheckOk(NeighborhoodMaterializer::Materialize(ds, index, 20),
                   "Materialize");
  auto sweep = CheckOk(LofSweep::Run(m, 10, 20), "Sweep");

  double cluster_max = 0.0;
  for (size_t i = 0; i < ds.size(); ++i) {
    const std::string& label = ds.label(i);
    if (label == "tennis" || label == "news" || label == "sports") {
      cluster_max = std::max(cluster_max, sweep.aggregated[i]);
    }
  }
  std::printf("max LOF among the 600 cluster members: %.3f\n\n",
              cluster_max);
  std::printf("%-16s %-10s\n", "planted blend", "max LOF");
  for (int i = 0; i < 5; ++i) {
    const std::string name = "hist_outlier_" + std::to_string(i);
    std::printf("%-16s %-10.3f\n", name.c_str(),
                sweep.aggregated[scenario.named.at(name)]);
  }

  auto ranked = RankDescending(sweep.aggregated, 10);
  std::printf("\nTop 10 overall:\n");
  for (size_t i = 0; i < ranked.size(); ++i) {
    std::printf("%2zu. LOF %-8.3f %s\n", i + 1, ranked[i].score,
                ds.label(ranked[i].index).c_str());
  }
  std::printf("\nShape check: definitions stay reasonable in 64 dimensions "
              "— cluster members near 1,\nplanted local outliers clearly "
              "above (paper reported values up to ~7).\n");
  return 0;
}
