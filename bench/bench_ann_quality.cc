// ANN quality contract (ISSUE PR 7): how much LOF accuracy does each
// position of the kd-forest's `checks` dial buy, and at what speed?
//
// Section 7.4's exact indexes hit a dimensionality wall (Figure 10): past
// d ~ 10-20 every tree degenerates toward the sequential scan. The
// randomized kd-forest trades exactness for throughput in that regime —
// but LOF consumes neighborhoods, not raw neighbor lists, so the dial must
// be calibrated against the quantities users actually rank by. For each
// dimension and check budget this bench measures:
//
//   recall@k        mean fraction of the true k-distance neighborhood
//                   recovered (sampled queries)
//   lof_err_*       mean/max |LOF_ann - LOF_exact| over finite scores
//   topn_jaccard    overlap of the exact vs approximate top-N outlier sets
//   topn_kendall    Kendall tau of the approximate scores over the exact
//                   top-N pairs (1 = same order, 0 = uncorrelated)
//   *_seconds       step-1 materialization wall time (build + kNN queries)
//                   vs the exact kd-tree and an extrapolated linear scan
//   checks_used     mean candidates actually charged per query
//
// Rows land in BENCH_ann_quality.json; CI's bench-smoke job asserts the
// quality contract (recall@k >= 0.95 at checks=256 on the ambient-20
// workload, and the forest beating the exact kd-tree's wall clock there).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <vector>

#include "bench/bench_util.h"
#include "common/bench_report.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/index_factory.h"
#include "index/kd_tree_index.h"
#include "index/linear_scan_index.h"
#include "index/rkd_forest_index.h"
#include "lof/lof_computer.h"

using namespace lofkit;         // NOLINT
using namespace lofkit::bench;  // NOLINT

namespace {

constexpr size_t kMinPts = 20;
constexpr size_t kTopN = 50;

struct ExactBaseline {
  std::vector<double> lof;
  std::vector<uint32_t> top_ids;  // exact top-N outliers, rank order
  double materialize_seconds = 0.0;
  double linear_scan_seconds = 0.0;  // extrapolated from a query sample
};

std::vector<uint32_t> TopIds(const std::vector<double>& scores, size_t n) {
  std::vector<uint32_t> ids;
  for (const RankedOutlier& r : RankDescending(scores, n)) {
    ids.push_back(r.index);
  }
  return ids;
}

// Mean fraction of the true k-distance neighborhood recovered, over a
// deterministic stride sample of self-queries.
double RecallAtK(const Dataset& data, const KnnIndex& exact,
                 const KnnIndex& ann, size_t samples) {
  const size_t stride = std::max<size_t>(1, data.size() / samples);
  KnnSearchContext exact_ctx;
  KnnSearchContext ann_ctx;
  size_t hits = 0;
  size_t wanted = 0;
  for (uint32_t q = 0; q < data.size(); q += stride) {
    CheckOk(exact.Query(data.point(q), kMinPts, q, exact_ctx), "exact kNN");
    CheckOk(ann.Query(data.point(q), kMinPts, q, ann_ctx), "ann kNN");
    std::set<uint32_t> approx;
    for (const Neighbor& n : ann_ctx.results()) approx.insert(n.index);
    for (const Neighbor& n : exact_ctx.results()) {
      hits += approx.count(n.index);
    }
    wanted += exact_ctx.results().size();
  }
  return static_cast<double>(hits) / static_cast<double>(wanted);
}

// Kendall tau of the approximate scores restricted to the exact top-N
// pairs: ties in either ranking contribute 0 to the numerator.
double KendallTauOverTopN(const std::vector<uint32_t>& top_ids,
                          const std::vector<double>& exact,
                          const std::vector<double>& ann) {
  double numerator = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < top_ids.size(); ++i) {
    for (size_t j = i + 1; j < top_ids.size(); ++j) {
      const double de = exact[top_ids[i]] - exact[top_ids[j]];
      const double da = ann[top_ids[i]] - ann[top_ids[j]];
      if (std::isnan(de) || std::isnan(da)) continue;
      ++pairs;
      const double product = de * da;
      if (product > 0.0) numerator += 1.0;
      if (product < 0.0) numerator -= 1.0;
    }
  }
  return pairs == 0 ? 1.0 : numerator / static_cast<double>(pairs);
}

double Jaccard(const std::vector<uint32_t>& a,
               const std::vector<uint32_t>& b) {
  const std::set<uint32_t> sa(a.begin(), a.end());
  const std::set<uint32_t> sb(b.begin(), b.end());
  size_t common = 0;
  for (uint32_t id : sa) common += sb.count(id);
  const size_t unioned = sa.size() + sb.size() - common;
  return unioned == 0 ? 1.0
                      : static_cast<double>(common) /
                            static_cast<double>(unioned);
}

ExactBaseline ComputeExactBaseline(const Dataset& data) {
  LofComputeOptions options;
  options.threads = 0;  // one worker per hardware thread
  auto scores =
      CheckOk(LofComputer::ComputeFromScratch(data, Euclidean(), kMinPts,
                                              IndexKind::kKdTree,
                                              /*distinct_neighbors=*/false,
                                              options),
              "exact LOF");
  ExactBaseline baseline;
  baseline.materialize_seconds = scores.phase_times.materialize_seconds;
  baseline.top_ids = TopIds(scores.lof, kTopN);
  baseline.lof = std::move(scores.lof);

  // The full linear scan is quadratic — at bench scale it would dominate
  // the runtime for a number nobody disputes. Time a 512-query sample and
  // extrapolate to all n self-queries (build cost is negligible).
  LinearScanIndex scan;
  CheckOk(scan.Build(data, Euclidean()), "linear scan build");
  const size_t sample = std::min<size_t>(512, data.size());
  std::vector<uint32_t> ids(sample);
  const size_t stride = std::max<size_t>(1, data.size() / sample);
  for (size_t j = 0; j < sample; ++j) {
    ids[j] = static_cast<uint32_t>((j * stride) % data.size());
  }
  KnnSearchContext ctx;
  Stopwatch watch;
  CheckOk(scan.QueryBatch(ids, kMinPts, ctx), "linear scan sample");
  baseline.linear_scan_seconds = watch.ElapsedSeconds() *
                                 static_cast<double>(data.size()) /
                                 static_cast<double>(sample);
  return baseline;
}

}  // namespace

int main() {
  const bool smoke = SmokeMode();
  PrintHeader("ANN quality: the kd-forest recall dial",
              "recall@k, LOF score error, top-N stability, speedup");

  // One row-group per workload. Ambient dimension is what the engines see;
  // intrinsic dimension is what the distances concentrate at. The d=5 case
  // is full-rank (below the Fig-10 wall, where exact trees are the right
  // engine and the forest merely has to not embarrass itself); the d=20
  // and d=64 cases model real post-wall data: low-dimensional cluster
  // structure embedded in a high-dimensional ambient space. The full sweep
  // adds a full-rank d=20 group — the adversarial worst case where no
  // fixed check budget can reach high recall — so the dial's limits are on
  // record too.
  struct Workload {
    size_t ambient;
    size_t intrinsic;
    size_t n;
  };
  const std::vector<Workload> workloads =
      smoke ? std::vector<Workload>{{5, 5, 2000}, {20, 6, 30000}}
            : std::vector<Workload>{
                  {5, 5, 50000}, {20, 6, 50000}, {20, 20, 50000},
                  {64, 8, 20000}};
  const std::vector<size_t> checks_sweep =
      smoke ? std::vector<size_t>{32, 256}
            : std::vector<size_t>{8, 16, 32, 64, 128, 256, 512};

  BenchReport report("ann_quality");
  report.SetManifest("dataset", "performance+embedded_workloads");
  report.SetManifest("index", "rkd_forest");
  report.SetManifest("threads", 1.0);
  for (const Workload& w : workloads) {
    const size_t d = w.ambient;
    const size_t n = w.n;
    Rng rng(1234 + d + w.intrinsic);
    auto data =
        w.intrinsic == d
            ? CheckOk(generators::MakePerformanceWorkload(rng, d, n, 10),
                      "workload")
            : CheckOk(generators::MakeEmbeddedWorkload(rng, d, w.intrinsic,
                                                       n, 10, 0.05),
                      "workload");
    std::printf("\nd=%zu intrinsic=%zu n=%zu MinPts=%zu top-N=%zu\n", d,
                w.intrinsic, n, kMinPts, kTopN);
    const ExactBaseline exact = ComputeExactBaseline(data);
    std::printf("exact kd-tree materialization: %.3fs; linear scan "
                "(extrapolated): %.3fs\n",
                exact.materialize_seconds, exact.linear_scan_seconds);
    std::printf("%-8s %-9s %-11s %-11s %-9s %-9s %-9s %-11s %s\n", "checks",
                "recall@k", "lof_err_mu", "lof_err_max", "jaccard",
                "kendall", "ann_sec", "speedup_kd", "checks_mu");

    KdTreeIndex exact_index;
    CheckOk(exact_index.Build(data, Euclidean()), "kd build");

    for (const size_t checks : checks_sweep) {
      AnnIndexOptions ann;
      ann.search.checks = checks;

      // Approximate LOF pipeline, with the query-cost counters armed so
      // the row reports the candidates actually charged per query.
      QueryStats stats;
      LofComputeOptions options;
      options.threads = 0;
      options.ann = ann;
      options.observer.query_stats = &stats;
      auto scores = CheckOk(
          LofComputer::ComputeFromScratch(data, Euclidean(), kMinPts,
                                          IndexKind::kRkdForest,
                                          /*distinct_neighbors=*/false,
                                          options),
          "ann LOF");
      const double ann_seconds = scores.phase_times.materialize_seconds;

      double err_sum = 0.0;
      double err_max = 0.0;
      size_t finite = 0;
      for (size_t i = 0; i < exact.lof.size(); ++i) {
        if (!std::isfinite(exact.lof[i]) || !std::isfinite(scores.lof[i])) {
          continue;
        }
        const double err = std::fabs(scores.lof[i] - exact.lof[i]);
        err_sum += err;
        err_max = std::max(err_max, err);
        ++finite;
      }
      const double err_mean = finite == 0 ? 0.0 : err_sum / finite;

      RkdForestIndex ann_index(
          {.trees = ann.trees, .seed = ann.seed, .search = ann.search});
      CheckOk(ann_index.Build(data, Euclidean()), "forest build");
      const double recall =
          RecallAtK(data, exact_index, ann_index, /*samples=*/2000);
      const std::vector<uint32_t> ann_top = TopIds(scores.lof, kTopN);
      const double jaccard = Jaccard(exact.top_ids, ann_top);
      const double kendall =
          KendallTauOverTopN(exact.top_ids, exact.lof, scores.lof);
      const double checks_mean =
          stats.queries == 0
              ? 0.0
              : static_cast<double>(stats.checks_used) /
                    static_cast<double>(stats.queries);
      const double speedup_kd = exact.materialize_seconds / ann_seconds;
      const double speedup_scan = exact.linear_scan_seconds / ann_seconds;

      std::printf("%-8zu %-9.4f %-11.5f %-11.5f %-9.4f %-9.4f %-9.3f "
                  "%-11.2f %.1f\n",
                  checks, recall, err_mean, err_max, jaccard, kendall,
                  ann_seconds, speedup_kd, checks_mean);
      report.Add(
          "d" + std::to_string(d) + "i" + std::to_string(w.intrinsic) +
              "_checks" + std::to_string(checks),
          {{"dim", static_cast<double>(d)},
           {"intrinsic_dim", static_cast<double>(w.intrinsic)},
           {"n", static_cast<double>(n)},
           {"min_pts", static_cast<double>(kMinPts)},
           {"trees", static_cast<double>(ann.trees)},
           {"checks", static_cast<double>(checks)},
           {"recall_at_k", recall},
           {"lof_err_mean", err_mean},
           {"lof_err_max", err_max},
           {"topn_jaccard", jaccard},
           {"topn_kendall_tau", kendall},
           {"ann_seconds", ann_seconds},
           {"kd_seconds", exact.materialize_seconds},
           {"linear_scan_seconds", exact.linear_scan_seconds},
           {"speedup_vs_kd", speedup_kd},
           {"speedup_vs_linear_scan", speedup_scan},
           {"checks_used_mean", checks_mean}});
    }
  }
  CheckOk(report.Write(), "BenchReport::Write");
  return 0;
}
