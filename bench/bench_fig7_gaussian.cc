// Reproduces Figure 7: min / max / mean / stddev of LOF over a single
// 2-d Gaussian cluster of 1000 points, as MinPts sweeps 2..50. The expected
// shape: strong fluctuation at tiny MinPts, an initial drop of the maximum,
// then stabilization — LOF is *not* monotonic in MinPts.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "dataset/metric.h"
#include "dataset/scenarios.h"
#include "index/kd_tree_index.h"
#include "lof/lof_computer.h"

using namespace lofkit;          // NOLINT
using namespace lofkit::bench;   // NOLINT

int main() {
  PrintHeader("Figure 7",
              "LOF statistics over a Gaussian cluster, MinPts = 2..50");
  Rng rng(7);
  auto scenario = CheckOk(scenarios::MakeGaussianBlob(rng, 1000),
                          "MakeGaussianBlob");
  KdTreeIndex index;
  CheckOk(index.Build(scenario.data, Euclidean()), "Build");
  auto m = CheckOk(
      NeighborhoodMaterializer::Materialize(scenario.data, index, 50),
      "Materialize");

  std::printf("%-8s %-10s %-10s %-10s %-10s\n", "MinPts", "min", "mean",
              "max", "stddev");
  double max_at_2 = 0.0;
  double max_at_10 = 0.0;
  for (size_t min_pts = 2; min_pts <= 50; ++min_pts) {
    auto scores = CheckOk(LofComputer::Compute(m, min_pts), "Compute");
    double lo = scores.lof[0], hi = scores.lof[0], sum = 0, sum_sq = 0;
    for (double lof : scores.lof) {
      lo = std::min(lo, lof);
      hi = std::max(hi, lof);
      sum += lof;
      sum_sq += lof * lof;
    }
    const double n = static_cast<double>(scores.lof.size());
    const double mean = sum / n;
    const double stddev = std::sqrt(std::max(0.0, sum_sq / n - mean * mean));
    std::printf("%-8zu %-10.3f %-10.3f %-10.3f %-10.3f\n", min_pts, lo,
                mean, hi, stddev);
    if (min_pts == 2) max_at_2 = hi;
    if (min_pts == 10) max_at_10 = hi;
  }
  std::printf("\nShape check (paper: initial drop of max LOF as MinPts "
              "grows past 2):\n  max LOF at MinPts=2: %.3f   at MinPts=10: "
              "%.3f   -> %s\n",
              max_at_2, max_at_10,
              max_at_10 < max_at_2 ? "drops, as in the paper" : "UNEXPECTED");
  return 0;
}
