// Robustness of the reproduction: every scenario in this repository is
// generated from a seed, so a skeptic should ask whether the reproduced
// rankings hold only for the seeds the benches happen to use. This bench
// reruns the headline experiments across 10 independent seeds and reports
// the detection quality of LOF on the planted ground truth — mean and
// worst case.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "dataset/metric.h"
#include "dataset/scenarios.h"
#include "index/kd_tree_index.h"
#include "lof/evaluation.h"
#include "lof/lof_sweep.h"

using namespace lofkit;          // NOLINT
using namespace lofkit::bench;   // NOLINT

namespace {

struct Stats {
  double mean = 0.0;
  double min = 1.0;
};

template <typename MakeScenario, typename MakeTruth>
void Sweep(const char* name, MakeScenario&& make_scenario,
           MakeTruth&& make_truth, size_t lb, size_t ub, bool normalize) {
  Stats auc, precision;
  const int kSeeds = 10;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    Rng rng(1000 + seed);
    auto scenario = CheckOk(make_scenario(rng), "scenario");
    const std::vector<bool> truth = make_truth(scenario);
    const Dataset working =
        normalize ? scenario.data.NormalizedToUnitBox() : scenario.data;
    KdTreeIndex index;
    CheckOk(index.Build(working, Euclidean()), "Build");
    auto m = CheckOk(NeighborhoodMaterializer::Materialize(working, index,
                                                           ub),
                     "Materialize");
    auto sweep = CheckOk(LofSweep::Run(m, lb, ub), "Sweep");
    auto quality =
        CheckOk(EvaluateRanking(sweep.aggregated, truth), "Evaluate");
    auc.mean += quality.roc_auc / kSeeds;
    auc.min = std::min(auc.min, quality.roc_auc);
    precision.mean += quality.precision_at_n / kSeeds;
    precision.min = std::min(precision.min, quality.precision_at_n);
  }
  std::printf("%-28s %8.3f %8.3f %12.3f %12.3f\n", name, auc.mean, auc.min,
              precision.mean, precision.min);
}

std::vector<bool> NamedTruth(const scenarios::Scenario& scenario) {
  std::vector<bool> truth(scenario.data.size(), false);
  for (const auto& [name, index] : scenario.named) truth[index] = true;
  return truth;
}

}  // namespace

int main() {
  PrintHeader("Seed sensitivity",
              "LOF detection quality across 10 regenerated scenario seeds");
  std::printf("%-28s %8s %8s %12s %12s\n", "scenario", "AUC mean", "AUC min",
              "prec@n mean", "prec@n min");

  Sweep("DS1 (fig. 1)",
        [](Rng& rng) { return scenarios::MakeDs1(rng); }, NamedTruth, 10,
        30, false);
  Sweep("fig. 9 synthetic",
        [](Rng& rng) { return scenarios::MakeFig9Dataset(rng); }, NamedTruth,
        30, 40, false);
  Sweep("hockey subspace 1",
        [](Rng& rng) { return scenarios::MakeHockeySubspace1(rng); },
        NamedTruth, 30, 50, true);
  Sweep("hockey subspace 2",
        [](Rng& rng) { return scenarios::MakeHockeySubspace2(rng); },
        NamedTruth, 30, 50, true);
  Sweep("soccer (table 3)",
        [](Rng& rng) { return scenarios::MakeSoccerLike(rng); }, NamedTruth,
        30, 50, true);

  std::printf("\nShape check: AUC stays near 1.0 for every seed on every "
              "scenario — the reproduced\nrankings are properties of the "
              "geometry, not of a lucky random draw. precision@n\ndips "
              "below 1 where organic borderline points legitimately "
              "interleave (cf. the soccer\ndeviation recorded in "
              "EXPERIMENTS.md).\n");
  return 0;
}
