// Ablation (Section 6.2): why the paper ranks by the *maximum* LOF over
// the MinPts range rather than the minimum or the mean. On the figure-8
// dataset the S1 objects are outlying only inside a MinPts window — the
// minimum erases them completely and the mean dilutes them; the maximum
// keeps them on top. This bench prints the three rankings side by side.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "dataset/metric.h"
#include "dataset/scenarios.h"
#include "index/kd_tree_index.h"
#include "lof/lof_sweep.h"

using namespace lofkit;          // NOLINT
using namespace lofkit::bench;   // NOLINT

int main() {
  PrintHeader("Ablation: MinPts-range aggregation (max vs mean vs min)",
              "figure-8 dataset, MinPts in [10, 50]");
  Rng rng(62);
  auto scenario = CheckOk(scenarios::MakeFig8Clusters(rng),
                          "MakeFig8Clusters");
  const Dataset& ds = scenario.data;
  KdTreeIndex index;
  CheckOk(index.Build(ds, Euclidean()), "Build");
  auto m = CheckOk(NeighborhoodMaterializer::Materialize(ds, index, 50),
                   "Materialize");

  for (LofAggregation aggregation :
       {LofAggregation::kMax, LofAggregation::kMean, LofAggregation::kMin}) {
    auto sweep = CheckOk(LofSweep::Run(m, 10, 50, aggregation), "Sweep");
    auto ranked = RankDescending(sweep.aggregated, 12);
    size_t s1_in_top = 0;
    for (const RankedOutlier& r : ranked) {
      if (ds.label(r.index) == "S1") ++s1_in_top;
    }
    std::printf("\n%-5s aggregation: top score %.3f, S1 objects in top 12: "
                "%zu / 10\n",
                std::string(LofAggregationName(aggregation)).c_str(),
                ranked[0].score, s1_in_top);
    std::printf("  top 5 labels:");
    for (size_t i = 0; i < 5; ++i) {
      std::printf(" %s(%.2f)", ds.label(ranked[i].index).c_str(),
                  ranked[i].score);
    }
    std::printf("\n");
  }
  std::printf("\nShape check (paper section 6.2): max keeps the S1 objects "
              "outlying; min erases the\noutlying window entirely; mean "
              "dilutes it — exactly the argument for the max heuristic.\n");
  return 0;
}
