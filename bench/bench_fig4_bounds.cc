// Reproduces Figure 4: LOF_max and LOF_min as functions of the
// direct/indirect ratio for pct in {1, 5, 10} — analytically (the model of
// section 5.3) and empirically (Theorem 1 evaluated on constructed
// two-scale datasets), showing the spread grows linearly in the ratio.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/linear_scan_index.h"
#include "lof/lof_bounds.h"
#include "lof/lof_computer.h"

using namespace lofkit;          // NOLINT
using namespace lofkit::bench;   // NOLINT

int main() {
  PrintHeader("Figure 4",
              "LOF bounds vs direct/indirect ratio for pct in {1,5,10}");

  std::printf("Analytic model (section 5.3):\n");
  std::printf("%-8s", "ratio");
  for (double pct : {1.0, 5.0, 10.0}) {
    std::printf("  LOFmin(%2.0f%%) LOFmax(%2.0f%%)", pct, pct);
  }
  std::printf("\n");
  for (double ratio = 1.0; ratio <= 10.0; ratio += 1.0) {
    std::printf("%-8.1f", ratio);
    for (double pct : {1.0, 5.0, 10.0}) {
      const LofBoundEstimate bounds = AnalyticBounds(ratio, pct);
      std::printf("  %11.3f %12.3f", bounds.lower, bounds.upper);
    }
    std::printf("\n");
  }

  // Empirical check: place a point p at increasing distances from a
  // uniform cluster; its direct/indirect ratio grows with the distance and
  // Theorem 1's empirical bounds must bracket the actual LOF.
  std::printf(
      "\nEmpirical Theorem-1 bounds on constructed data (cluster of 200,\n"
      "p moved outward; MinPts=10):\n");
  std::printf("%-12s %-12s %-12s %-12s %-12s\n", "distance",
              "direct/indir", "thm1 lower", "LOF(p)", "thm1 upper");
  for (double offset : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    Rng rng(static_cast<uint64_t>(offset * 100));
    auto ds = CheckOk(Dataset::Create(2), "Create");
    const double lo[2] = {-1, -1};
    const double hi[2] = {1, 1};
    CheckOk(generators::AppendUniformBox(ds, rng, lo, hi, 200), "box");
    const double p[2] = {offset, 0.0};
    CheckOk(ds.Append(p), "Append");
    LinearScanIndex index;
    CheckOk(index.Build(ds, Euclidean()), "Build");
    auto m = CheckOk(NeighborhoodMaterializer::Materialize(ds, index, 10),
                     "Materialize");
    auto scores = CheckOk(LofComputer::Compute(m, 10), "Compute");
    auto stats =
        CheckOk(ComputeNeighborhoodStats(m, 200, 10), "NeighborhoodStats");
    const LofBoundEstimate bounds = Theorem1Bounds(stats);
    const double ratio = ((stats.direct_min + stats.direct_max) / 2.0) /
                         ((stats.indirect_min + stats.indirect_max) / 2.0);
    std::printf("%-12.1f %-12.2f %-12.3f %-12.3f %-12.3f\n", offset, ratio,
                bounds.lower, scores.lof[200], bounds.upper);
  }
  std::printf("\nShape check: LOFmax-LOFmin grows linearly with the ratio at"
              " fixed pct,\nand Theorem 1 brackets the measured LOF.\n");
  return 0;
}
