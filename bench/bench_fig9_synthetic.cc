// Reproduces Figure 9 / Section 7.1: the synthetic 2-d dataset with one
// low-density Gaussian cluster (200), one dense Gaussian (500), two uniform
// clusters of different densities (500 each) and seven planted outliers.
// At MinPts = 40, uniform-cluster members have LOF ~ 1, Gaussian members
// ~ 1 with weak outliers at the fringe, and the seven planted objects get
// the largest LOF values, scaled by the density of the cluster they are
// outlying relative to.

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "common/random.h"
#include "dataset/metric.h"
#include "dataset/scenarios.h"
#include "index/grid_index.h"
#include "lof/lof_computer.h"

using namespace lofkit;          // NOLINT
using namespace lofkit::bench;   // NOLINT

int main() {
  PrintHeader("Figure 9 / Section 7.1", "synthetic dataset, MinPts = 40");
  Rng rng(9);
  auto scenario = CheckOk(scenarios::MakeFig9Dataset(rng),
                          "MakeFig9Dataset");
  const Dataset& ds = scenario.data;
  GridIndex index;
  CheckOk(index.Build(ds, Euclidean()), "Build");
  auto m = CheckOk(NeighborhoodMaterializer::Materialize(ds, index, 40),
                   "Materialize");
  auto scores = CheckOk(LofComputer::Compute(m, 40), "Compute");

  // Per-cluster LOF statistics.
  std::map<std::string, std::vector<double>> by_label;
  for (size_t i = 0; i < ds.size(); ++i) {
    std::string label = ds.label(i);
    if (label.rfind("outlier_", 0) == 0) label = "planted outliers";
    by_label[label].push_back(scores.lof[i]);
  }
  std::printf("%-18s %-8s %-8s %-8s %-8s\n", "group", "count", "min",
              "mean", "max");
  for (const auto& [label, values] : by_label) {
    double lo = values[0], hi = values[0], sum = 0;
    for (double v : values) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      sum += v;
    }
    std::printf("%-18s %-8zu %-8.3f %-8.3f %-8.3f\n", label.c_str(),
                values.size(), lo, sum / values.size(), hi);
  }

  std::printf("\nPlanted outliers (cf. the seven spikes of figure 9):\n");
  std::printf("%-12s %-12s %-10s\n", "name", "position", "LOF");
  for (int i = 0; i < 7; ++i) {
    const std::string name = "outlier_" + std::to_string(i);
    const size_t index_of = scenario.named.at(name);
    std::printf("%-12s (%5.1f,%5.1f) %-10.3f\n", name.c_str(),
                ds.point(index_of)[0], ds.point(index_of)[1],
                scores.lof[index_of]);
  }
  std::printf("\nShape check: uniform clusters pinned at LOF ~ 1, planted "
              "outliers clearly above,\nwith magnitude depending on the "
              "neighboring cluster's density, as in figure 9.\n");
  return 0;
}
