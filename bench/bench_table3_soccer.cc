// Reproduces Table 3 (Section 7.3) on the Bundesliga substitution workload
// (see DESIGN.md section 4): 375 players over (games, goals per game,
// position code) in four position clusters; the five planted analogues of
// Preetz / Schjönberg / Butt / Kirsten / Elber should fill the top of the
// max-LOF ranking (paper: LOF 1.87, 1.70, 1.67, 1.63, 1.55).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "dataset/metric.h"
#include "dataset/scenarios.h"
#include "lof/lof_sweep.h"

using namespace lofkit;          // NOLINT
using namespace lofkit::bench;   // NOLINT

int main() {
  PrintHeader("Table 3 (soccer, substituted data)",
              "max LOF in MinPts range [30, 50]");
  Rng rng(9899);
  auto scenario = CheckOk(scenarios::MakeSoccerLike(rng), "MakeSoccerLike");
  const Dataset& ds = scenario.data;
  const Dataset normalized = ds.NormalizedToUnitBox();

  auto ranked = CheckOk(
      LofSweep::RankOutliers(normalized, Euclidean(), 30, 50, 0,
                             IndexKind::kKdTree),
      "RankOutliers");

  std::printf("%-6s %-10s %-14s %-8s %-12s %-10s\n", "rank", "max LOF",
              "player", "games", "goals/game", "position");
  const char* positions[] = {"?", "Goalie", "Defense", "Center", "Offense"};
  for (size_t i = 0; i < 8; ++i) {
    const uint32_t p = ranked[i].index;
    const int pos = static_cast<int>(ds.point(p)[2]);
    std::printf("%-6zu %-10.3f %-14s %-8.0f %-12.3f %-10s\n", i + 1,
                ranked[i].score, ds.label(p).c_str(), ds.point(p)[0],
                ds.point(p)[1],
                pos >= 1 && pos <= 4 ? positions[pos] : "?");
  }

  std::printf("\nPaper Table 3 for comparison:\n"
              "  1  1.87  Michael Preetz      34  0.676  Offense\n"
              "  2  1.70  Michael Schjönberg  15  0.400  Defense\n"
              "  3  1.67  Hans-Jörg Butt      34  0.206  Goalie\n"
              "  4  1.63  Ulf Kirsten         31  0.613  Offense\n"
              "  5  1.55  Giovane Elber       21  0.619  Offense\n");
  std::printf("Shape check: the five planted Table-3 analogues occupy the "
              "top ranks; absolute LOF\nvalues differ (synthetic data), the "
              "ranking structure is the reproduced quantity.\n");
  return 0;
}
