// Reproduces Figure 5: the relative span (LOFmax - LOFmin)/(direct/indirect)
// depends only on the fluctuation percentage pct, following
// 4*(pct/100) / (1 - (pct/100)^2), diverging as pct -> 100.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "lof/lof_bounds.h"

using namespace lofkit;          // NOLINT
using namespace lofkit::bench;   // NOLINT

int main() {
  PrintHeader("Figure 5",
              "relative LOF span vs fluctuation percentage pct");
  std::printf("%-8s %-16s %-22s %-12s\n", "pct", "closed form",
              "from AnalyticBounds", "rel. error");
  for (double pct : {1.0, 2.0, 5.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0,
                     70.0, 80.0, 90.0, 95.0, 99.0}) {
    const double closed = AnalyticRelativeSpan(pct);
    // The same quantity reconstructed from the bound curves at an
    // arbitrary ratio (it must be ratio-independent).
    double reconstructed = 0.0;
    for (double ratio : {0.5, 3.0, 12.0}) {
      const LofBoundEstimate bounds = AnalyticBounds(ratio, pct);
      reconstructed = (bounds.upper - bounds.lower) / ratio;
    }
    std::printf("%-8.1f %-16.4f %-22.4f %-12.2e\n", pct, closed,
                reconstructed, std::abs(closed - reconstructed) /
                                   std::max(1e-300, closed));
  }
  std::printf("\nShape check: small for reasonable pct, grows without bound "
              "as pct -> 100,\nindependent of the direct/indirect ratio.\n");
  return 0;
}
