// Micro-benchmarks (google-benchmark) for the kNN engines: build cost and
// per-query cost across dimensionality, complementing the wall-clock
// experiment drivers with statistically stable numbers.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/index_factory.h"

namespace lofkit {
namespace {

Dataset MakeData(size_t dim, size_t n) {
  Rng rng(dim * 1000 + n);
  auto data = generators::MakePerformanceWorkload(rng, dim, n, 10);
  if (!data.ok()) std::abort();
  return std::move(data).value();
}

void BM_IndexBuild(benchmark::State& state) {
  const auto kind = static_cast<IndexKind>(state.range(0));
  const size_t dim = static_cast<size_t>(state.range(1));
  const Dataset data = MakeData(dim, 2000);
  for (auto _ : state) {
    auto index = CreateIndex(kind);
    if (!index->Build(data, Euclidean()).ok()) std::abort();
    benchmark::DoNotOptimize(index);
  }
  state.SetLabel(std::string(IndexKindName(kind)) + "/d=" +
                 std::to_string(dim));
}

void BM_KnnQuery(benchmark::State& state) {
  const auto kind = static_cast<IndexKind>(state.range(0));
  const size_t dim = static_cast<size_t>(state.range(1));
  const Dataset data = MakeData(dim, 2000);
  auto index = CreateIndex(kind);
  if (!index->Build(data, Euclidean()).ok()) std::abort();
  uint32_t q = 0;
  for (auto _ : state) {
    auto result = index->Query(data.point(q), 50, q);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result);
    q = (q + 1) % data.size();
  }
  state.SetLabel(std::string(IndexKindName(kind)) + "/d=" +
                 std::to_string(dim));
}

void RegisterAll() {
  for (IndexKind kind : AllIndexKinds()) {
    for (int64_t dim : {2, 10}) {
      benchmark::RegisterBenchmark("BM_IndexBuild", BM_IndexBuild)
          ->Args({static_cast<int64_t>(kind), dim})
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark("BM_KnnQuery", BM_KnnQuery)
          ->Args({static_cast<int64_t>(kind), dim})
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

}  // namespace
}  // namespace lofkit

int main(int argc, char** argv) {
  lofkit::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
