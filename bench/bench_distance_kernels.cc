// Microbench for the distance-kernel layer: one full n-point scan per
// measurement, comparing
//   virtual   — per-pair Metric::Distance through a runtime-selected
//               Metric* (the pre-kernel hot loop of every index),
//   rank_one  — the devirtualized scalar kernel,
//   block     — the blocked SoA kernel over a PointBlockView (the loop the
//               linear scan and the kd-tree leaves actually run).
//
// The block row is what the tentpole optimization buys: contiguous lanes,
// no virtual dispatch, and (for the L2 family) no sqrt per pair. Writes
// BENCH_kernels.json; LOFKIT_BENCH_SMOKE=1 runs one tiny repetition.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/bench_report.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "dataset/dataset.h"
#include "dataset/metric.h"
#include "dataset/point_block.h"

using namespace lofkit;          // NOLINT
using namespace lofkit::bench;   // NOLINT

namespace {

volatile double g_sink = 0.0;  // defeats dead-code elimination

// Seconds per call of `fn`, measured over enough calls to fill ~0.2s
// (smoke mode: a single call).
template <typename Fn>
double Measure(bool smoke, Fn&& fn) {
  fn();  // warm-up
  if (smoke) {
    Stopwatch watch;
    fn();
    return watch.ElapsedSeconds();
  }
  size_t calls = 0;
  Stopwatch watch;
  double elapsed = 0.0;
  while (elapsed < 0.2) {
    fn();
    ++calls;
    elapsed = watch.ElapsedSeconds();
  }
  return elapsed / static_cast<double>(calls);
}

struct NamedMetric {
  std::string name;
  const Metric* metric;
};

}  // namespace

int main() {
  const bool smoke = SmokeMode();
  const size_t n = smoke ? 256 : 4096;
  const std::vector<size_t> dims = {8, 64};
  BenchReport report("kernels");
  report.SetManifest("dataset", "uniform_scan");
  report.SetManifest("n", static_cast<double>(n));
  report.SetManifest("threads", 1.0);

  PrintHeader("Distance kernels",
              "one n-point scan: virtual Metric::Distance vs devirtualized "
              "scalar vs blocked SoA kernel");
  std::printf("n = %zu points per scan\n\n", n);
  std::printf("%-22s %-6s %12s %12s %12s %9s\n", "metric", "dim",
              "virtual ns/p", "rank_one ns/p", "block ns/p", "speedup");

  double euclid64_speedup = 0.0;
  for (size_t dim : dims) {
    auto data_or = Dataset::Create(dim);
    CheckOk(data_or.status(), "Dataset::Create");
    Dataset& data = *data_or;
    Rng rng(42 + dim);
    std::vector<double> point(dim);
    for (size_t i = 0; i < n; ++i) {
      for (double& c : point) c = rng.Uniform(-10.0, 10.0);
      CheckOk(data.Append(point), "Append");
    }
    std::vector<double> query(dim);
    for (double& c : query) c = rng.Uniform(-10.0, 10.0);

    auto minkowski = MinkowskiMetric::Create(2.5);
    CheckOk(minkowski.status(), "MinkowskiMetric::Create");
    std::vector<double> weights(dim);
    for (size_t i = 0; i < dim; ++i) {
      weights[i] = 0.25 + static_cast<double>(i % 7) * 0.5;
    }
    auto weighted = WeightedEuclideanMetric::Create(weights);
    CheckOk(weighted.status(), "WeightedEuclideanMetric::Create");
    const std::vector<NamedMetric> metrics = {
        {"euclidean", &Euclidean()},
        {"manhattan", &Manhattan()},
        {"chebyshev", &Chebyshev()},
        {"minkowski_p2.5", &*minkowski},
        {"weighted_euclidean", &*weighted},
    };

    const auto view = data.blocks();
    for (const NamedMetric& nm : metrics) {
      // Runtime-selected pointer: the compiler cannot devirtualize the
      // baseline's Distance calls.
      const Metric* metric = nm.metric;
      g_sink = 0.0;

      const double virtual_seconds = Measure(smoke, [&] {
        double sum = 0.0;
        for (size_t i = 0; i < n; ++i) {
          sum += metric->Distance(query, data.point(i));
        }
        g_sink += sum;
      });

      const DistanceKernels kern = metric->kernels();
      const double* raw = data.raw().data();
      const double scalar_seconds = Measure(smoke, [&] {
        double sum = 0.0;
        for (size_t i = 0; i < n; ++i) {
          sum += kern.rank_one(kern.ctx, query.data(), raw + i * dim, dim);
        }
        g_sink += sum;
      });

      std::vector<double> out(PointBlockView::kLanes);
      const double block_seconds = Measure(smoke, [&] {
        double sum = 0.0;
        for (size_t b = 0; b < view->num_blocks(); ++b) {
          kern.rank_block(kern.ctx, query.data(), view->block(b), dim,
                          out.data());
          for (double r : out) sum += r;
        }
        g_sink += sum;
      });

      const double per_pair = 1e9 / static_cast<double>(n);
      const double speedup =
          block_seconds > 0 ? virtual_seconds / block_seconds : 0.0;
      if (nm.name == "euclidean" && dim == 64) euclid64_speedup = speedup;
      std::printf("%-22s %-6zu %12.2f %12.2f %12.2f %8.2fx\n",
                  nm.name.c_str(), dim, virtual_seconds * per_pair,
                  scalar_seconds * per_pair, block_seconds * per_pair,
                  speedup);
      report.Add(nm.name + "_d" + std::to_string(dim),
                 {{"virtual_ns_per_pair", virtual_seconds * per_pair},
                  {"rank_one_ns_per_pair", scalar_seconds * per_pair},
                  {"block_ns_per_pair", block_seconds * per_pair},
                  {"speedup_block_vs_virtual", speedup}});
    }
  }

  std::printf("\n64-d Euclidean blocked kernel vs virtual baseline: %.2fx "
              "(target: >= 2x).\n", euclid64_speedup);
  CheckOk(report.Write(), "BenchReport::Write");
  return 0;
}
