// Reproduces Figure 11: wall-clock time of the second step — computing LOF
// for every MinPts in [MinPtsLB=10, MinPtsUB=50] from the materialization
// database M — as a function of n. The paper's claim: this step is O(n) and
// touches only M, never the original (arbitrary-dimensional) data; the
// expected shape is a straight line through the origin, independent of the
// data's dimensionality.
//
// Besides the stdout table, the run writes BENCH_fig11.json (see
// common/bench_report.h). LOFKIT_BENCH_SMOKE=1 shrinks everything to one
// tiny repetition for CI.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/bench_report.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/kd_tree_index.h"
#include "lof/lof_sweep.h"

using namespace lofkit;          // NOLINT
using namespace lofkit::bench;   // NOLINT

namespace {

// Materializes M for one case with query-cost counters armed; step 2 itself
// issues no kNN queries, so the counter columns of each row describe the
// kd-tree materialization that produced its input database.
NeighborhoodMaterializer MaterializeCounted(const Dataset& data,
                                            KnnIndex& index, size_t k,
                                            QueryStats* stats) {
  PipelineObserver observer;
  observer.query_stats = stats;
  return CheckOk(NeighborhoodMaterializer::Materialize(
                     data, index, k, /*distinct_neighbors=*/false, observer),
                 "Materialize");
}

}  // namespace

int main() {
  const bool smoke = SmokeMode();
  const size_t lb = smoke ? 2 : 10;
  const size_t ub = smoke ? 5 : 50;
  const std::vector<size_t> sizes =
      smoke ? std::vector<size_t>{200}
            : std::vector<size_t>{2000, 4000, 8000, 16000};
  BenchReport report("fig11");
  report.SetManifest("dataset", "performance_workload");
  report.SetManifest("minpts_lb", static_cast<double>(lb));
  report.SetManifest("minpts_ub", static_cast<double>(ub));
  report.SetManifest("index", "kd_tree");
  report.SetManifest("threads", 1.0);

  PrintHeader("Figure 11",
              "LOF-computation (step 2) time vs n, MinPts in [10, 50]");
  std::printf("%-8s %-14s %-14s %-16s\n", "n", "d=2 time (s)",
              "d=10 time (s)", "us per point (d=2)");
  double first = 0.0, last = 0.0;
  for (size_t n : sizes) {
    double seconds_by_dim[2] = {0, 0};
    int slot = 0;
    for (size_t d : {2, 10}) {
      Rng rng(11 * d);
      auto data = CheckOk(generators::MakePerformanceWorkload(rng, d, n, 10),
                          "workload");
      KdTreeIndex index;
      CheckOk(index.Build(data, Euclidean()), "Build");
      QueryStats stats;
      auto m = MaterializeCounted(data, index, ub, &stats);
      Stopwatch watch;
      auto sweep = CheckOk(LofSweep::Run(m, lb, ub), "Sweep");
      const double seconds = watch.ElapsedSeconds();
      seconds_by_dim[slot++] = seconds;
      report.Add("n=" + std::to_string(n) + "_d=" + std::to_string(d),
                 {{"seconds", seconds},
                  {"distance_evals", static_cast<double>(stats.distance_evals)},
                  {"node_visits", static_cast<double>(stats.page_accesses())},
                  {"k_distance_seconds",
                   sweep.phase_times.k_distance_seconds},
                  {"lrd_seconds", sweep.phase_times.lrd_seconds},
                  {"lof_seconds", sweep.phase_times.lof_seconds}});
    }
    std::printf("%-8zu %-14.3f %-14.3f %-16.2f\n", n, seconds_by_dim[0],
                seconds_by_dim[1], 1e6 * seconds_by_dim[0] / n);
    if (n == sizes.front()) first = seconds_by_dim[0];
    if (n == sizes.back()) last = seconds_by_dim[0];
  }
  std::printf("\nShape check: %zux the points cost %.1fx the time (paper: "
              "linear), and the\nd=10 column tracks d=2 — step 2 is "
              "dimension-independent because it reads only M.\n",
              sizes.back() / sizes.front(), first > 0 ? last / first : 0.0);

  // Threads axis: the sweep shards its independent per-MinPts computations
  // over the workers; scores are bit-identical at every thread count
  // (property-tested in parallel_test.cc). The phase columns come from the
  // LofPhaseTimes a single MinPts=50 computation records.
  PrintHeader("Figure 11 / threads axis",
              "sweep time vs threads, Gaussian workload, d=2, n=16000, "
              "MinPts in [10, 50]");
  const size_t thread_n = smoke ? 200 : 16000;
  Rng rng(22);
  auto data = CheckOk(
      generators::MakePerformanceWorkload(rng, 2, thread_n, 10), "workload");
  KdTreeIndex index;
  CheckOk(index.Build(data, Euclidean()), "Build");
  QueryStats materialize_stats;
  auto m = MaterializeCounted(data, index, ub, &materialize_stats);
  std::printf("%-8s %-10s %-9s %-12s %s\n", "threads", "time (s)", "speedup",
              "lrd@50 (s)", "lof@50 (s)");
  double serial_seconds = 0.0;
  const std::vector<unsigned> thread_counts =
      smoke ? std::vector<unsigned>{1, 2} : std::vector<unsigned>{1, 2, 4, 8};
  for (unsigned threads : thread_counts) {
    Stopwatch watch;
    auto sweep = CheckOk(LofSweep::Run(m, lb, ub, LofAggregation::kMax,
                                       /*keep_per_min_pts=*/false, threads),
                         "Sweep");
    (void)sweep;
    const double seconds = watch.ElapsedSeconds();
    if (threads == 1) serial_seconds = seconds;
    auto single = CheckOk(
        LofComputer::Compute(m, ub, {.use_reachability = true,
                                     .threads = threads}),
        "Compute");
    report.Add(
        "threads=" + std::to_string(threads),
        {{"seconds", seconds},
         {"speedup", seconds > 0 ? serial_seconds / seconds : 0.0},
         {"distance_evals",
          static_cast<double>(materialize_stats.distance_evals)},
         {"node_visits",
          static_cast<double>(materialize_stats.page_accesses())}});
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  seconds > 0 ? serial_seconds / seconds : 0.0);
    std::printf("%-8u %-10.3f %-9s %-12.4f %.4f\n", threads, seconds,
                speedup, single.phase_times.lrd_seconds,
                single.phase_times.lof_seconds);
  }
  // Prune-first axis: the §5 ranking algorithm evaluates full LOF only on
  // the points whose bound estimates cannot rule them out of the top N.
  // The workload plants sparse uniform points among the Gaussian clusters —
  // the top-N setting the algorithm targets: pronounced outliers push the
  // bound threshold high enough to certify the cluster mass as inliers.
  // Each row compares the full sweep against RunPruned on the same M and
  // verifies the top-N rankings are bit-identical — the prune path is an
  // optimization, never an approximation.
  PrintHeader("Figure 11 / prune-first axis",
              "full vs prune-first top-N sweep, Gaussian clusters + "
              "planted outliers, d=2");
  const size_t top_n = 10;
  std::printf("%-8s %-12s %-14s %-12s %s\n", "n", "full (s)", "pruned (s)",
              "survivors", "survivor fraction");
  for (size_t n : sizes) {
    // Tight clusters on a grid plus planted outliers in the empty rows
    // between them: the §5 experiment's regime, where the top-N lower
    // bounds rise well above the cluster mass's upper bounds. The outliers
    // are pairwise >= 25 apart — an outlier inside another outlier's
    // MinPts-neighborhood inflates that neighborhood's indirect extremes
    // and collapses the Theorem-1 lower bound (the looseness Theorem 2's
    // partitioning exists to repair). On diffuse data the bounds overlap
    // and pruning degenerates to the full sweep — still exact, just not
    // faster.
    Rng prune_rng(33);
    std::vector<generators::GaussianSpec> specs;
    for (size_t c = 0; c < 10; ++c) {
      generators::GaussianSpec spec;
      spec.center = {10.0 + 20.0 * static_cast<double>(c % 5),
                     c < 5 ? 25.0 : 75.0};
      spec.stddev = 1.0;
      spec.count = (n - top_n) / 10 + (c < (n - top_n) % 10 ? 1 : 0);
      specs.push_back(spec);
    }
    auto prune_data =
        CheckOk(generators::MakeGaussianMixture(prune_rng, 2, specs),
                "workload");
    // Rows y=12 and y=62 sit ~13 from the nearest cluster centers but 25+
    // from every other outlier, so each outlier's MinPts-neighborhood is
    // pure cluster points even at the smallest n.
    for (size_t o = 0; o < top_n; ++o) {
      const double coords[2] = {
          25.0 * static_cast<double>(o % 5) + prune_rng.Uniform(-1.0, 1.0),
          (o < 5 ? 12.0 : 62.0) + prune_rng.Uniform(-1.0, 1.0)};
      CheckOk(generators::AppendPoint(prune_data, coords, "outlier"),
              "outlier");
    }
    KdTreeIndex prune_index;
    CheckOk(prune_index.Build(prune_data, Euclidean()), "Build");
    auto prune_m = CheckOk(
        NeighborhoodMaterializer::Materialize(prune_data, prune_index, ub),
        "Materialize");
    Stopwatch watch;
    auto full = CheckOk(LofSweep::Run(prune_m, lb, ub), "Sweep");
    const double full_seconds = watch.ElapsedSeconds();
    watch.Reset();
    auto pruned = CheckOk(
        LofSweep::RunPruned(prune_m, lb, ub, {.top_n = top_n}), "RunPruned");
    const double pruned_seconds = watch.ElapsedSeconds();

    const auto full_rank = RankDescending(full.aggregated, top_n);
    const auto pruned_rank = RankDescending(pruned.aggregated, top_n);
    if (full_rank.size() != pruned_rank.size()) {
      std::fprintf(stderr, "FATAL: pruned top-N has %zu entries, full %zu\n",
                   pruned_rank.size(), full_rank.size());
      return 1;
    }
    for (size_t r = 0; r < full_rank.size(); ++r) {
      if (full_rank[r].index != pruned_rank[r].index ||
          full_rank[r].score != pruned_rank[r].score) {
        std::fprintf(stderr,
                     "FATAL: pruned ranking diverges at rank %zu: full "
                     "(%u, %.17g) vs pruned (%u, %.17g)\n",
                     r + 1, full_rank[r].index, full_rank[r].score,
                     pruned_rank[r].index, pruned_rank[r].score);
        return 1;
      }
    }

    report.Add(
        "prune_n=" + std::to_string(n) + "_d=2",
        {{"full_seconds", full_seconds},
         {"pruned_seconds", pruned_seconds},
         {"survivor_fraction", pruned.prune.survivor_fraction()},
         {"survivors", static_cast<double>(pruned.prune.survivors)},
         {"full_lof_evaluations",
          static_cast<double>(pruned.prune.total_points *
                              (ub - lb + 1))},
         {"pruned_lof_evaluations",
          static_cast<double>(pruned.prune.full_evaluations)},
         {"prune_threshold", pruned.prune.threshold}});
    std::printf("%-8zu %-12.3f %-14.3f %-12zu %.3f\n", n, full_seconds,
                pruned_seconds, pruned.prune.survivors,
                pruned.prune.survivor_fraction());
  }
  std::printf("\nExact-ranking check passed: the pruned top-%zu is "
              "bit-identical to the full sweep's on every size.\n", top_n);

  CheckOk(report.Write(), "BenchReport::Write");
  return 0;
}
