// Reproduces Figure 10: wall-clock time of the materialization step (one
// 50-NN query per point, X-tree-variant index, including index build time,
// exactly as the paper's times "include the time to build the index") as a
// function of n for dimensions 2, 5, 10 and 20. Expected shape: near-linear
// growth for d in {2, 5}, visible degradation for d in {10, 20} — the
// classic index-effectivity decay with dimension. A sequential-scan column
// shows the O(n^2) alternative for reference.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/linear_scan_index.h"
#include "index/neighborhood_materializer.h"
#include "index/rstar_tree_index.h"

using namespace lofkit;          // NOLINT
using namespace lofkit::bench;   // NOLINT

namespace {

double MaterializeSeconds(const Dataset& data, KnnIndex& index) {
  Stopwatch watch;
  CheckOk(index.Build(data, Euclidean()), "Build");
  auto m = CheckOk(NeighborhoodMaterializer::Materialize(data, index, 50),
                   "Materialize");
  (void)m;
  return watch.ElapsedSeconds();
}

}  // namespace

int main() {
  PrintHeader("Figure 10",
              "materialization time vs n, MinPtsUB = 50, per dimension");
  const size_t sizes[] = {1000, 2000, 4000, 8000};
  std::printf("%-8s", "n");
  for (size_t d : {2, 5, 10, 20}) std::printf("  d=%-2zu (s) ", d);
  std::printf("  scan d=5 (s)\n");

  double first_d2 = 0.0, last_d2 = 0.0;
  for (size_t n : sizes) {
    std::printf("%-8zu", n);
    for (size_t d : {2, 5, 10, 20}) {
      Rng rng(1000 + d);
      auto data = CheckOk(generators::MakePerformanceWorkload(rng, d, n, 10),
                          "workload");
      RStarTreeIndex tree;
      const double seconds = MaterializeSeconds(data, tree);
      std::printf("  %-9.3f", seconds);
      if (d == 2 && n == sizes[0]) first_d2 = seconds;
      if (d == 2 && n == sizes[3]) last_d2 = seconds;
    }
    {
      Rng rng(1005);
      auto data = CheckOk(generators::MakePerformanceWorkload(rng, 5, n, 10),
                          "workload");
      LinearScanIndex scan;
      std::printf("  %-9.3f", MaterializeSeconds(data, scan));
    }
    std::printf("\n");
  }
  std::printf("\nShape check: 8x the points cost %.1fx the time at d=2 "
              "(near-linear, paper's low-d\nbehavior); higher dimensions "
              "degrade toward the sequential scan, as in figure 10.\n",
              first_d2 > 0 ? last_d2 / first_d2 : 0.0);

  // Threads axis: the n queries of step 1 are embarrassingly parallel, so
  // MaterializeParallel should scale with the worker count while producing
  // bit-identical neighborhoods (property-tested in parallel_test.cc).
  PrintHeader("Figure 10 / threads axis",
              "materialization time vs threads, Gaussian workload, "
              "d=5, n=8000, MinPtsUB=50");
  Rng rng(1005);
  auto data = CheckOk(generators::MakePerformanceWorkload(rng, 5, 8000, 10),
                      "workload");
  RStarTreeIndex tree;
  CheckOk(tree.Build(data, Euclidean()), "Build");
  std::printf("%-8s %-10s %s\n", "threads", "time (s)", "speedup");
  double serial_seconds = 0.0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    Stopwatch watch;
    auto m = CheckOk(NeighborhoodMaterializer::MaterializeParallel(
                         data, tree, 50, threads),
                     "MaterializeParallel");
    (void)m;
    const double seconds = watch.ElapsedSeconds();
    if (threads == 1) serial_seconds = seconds;
    std::printf("%-8zu %-10.3f %.2fx\n", threads, seconds,
                seconds > 0 ? serial_seconds / seconds : 0.0);
  }
  return 0;
}
