// Reproduces Figure 10: wall-clock time of the materialization step (one
// 50-NN query per point, X-tree-variant index, including index build time,
// exactly as the paper's times "include the time to build the index") as a
// function of n for dimensions 2, 5, 10 and 20. Expected shape: near-linear
// growth for d in {2, 5}, visible degradation for d in {10, 20} — the
// classic index-effectivity decay with dimension. A sequential-scan column
// shows the O(n^2) alternative for reference.
//
// Besides the stdout table, the run writes BENCH_fig10.json (see
// common/bench_report.h). LOFKIT_BENCH_SMOKE=1 shrinks everything to one
// tiny repetition for CI.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/bench_report.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/kd_tree_index.h"
#include "index/linear_scan_index.h"
#include "index/neighborhood_materializer.h"
#include "index/rstar_tree_index.h"

using namespace lofkit;          // NOLINT
using namespace lofkit::bench;   // NOLINT

namespace {

// Times the build + materialization and, when `stats` is given, collects
// the engine's query-cost counters alongside — the paper argues Figure 10
// in page accesses, so the JSON rows carry both views of the same run.
double MaterializeSeconds(const Dataset& data, KnnIndex& index, size_t k,
                          QueryStats* stats = nullptr) {
  Stopwatch watch;
  CheckOk(index.Build(data, Euclidean()), "Build");
  PipelineObserver observer;
  observer.query_stats = stats;
  auto m = CheckOk(NeighborhoodMaterializer::Materialize(
                       data, index, k, /*distinct_neighbors=*/false, observer),
                   "Materialize");
  (void)m;
  return watch.ElapsedSeconds();
}

// Counter columns shared by every JSON row: exact distance evaluations and
// the paper's node/page-access quantity (internal node expansions plus
// leaf/block scans, so sequential scans report their block count here).
std::vector<std::pair<std::string, double>> CounterMetrics(
    double seconds, const QueryStats& stats) {
  return {{"seconds", seconds},
          {"distance_evals", static_cast<double>(stats.distance_evals)},
          {"node_visits", static_cast<double>(stats.page_accesses())}};
}

std::string Case(size_t n, size_t d) {
  return "n=" + std::to_string(n) + "_d=" + std::to_string(d);
}

}  // namespace

int main() {
  const bool smoke = SmokeMode();
  const size_t k = smoke ? 5 : 50;
  const std::vector<size_t> sizes =
      smoke ? std::vector<size_t>{200} : std::vector<size_t>{1000, 2000, 4000, 8000};
  const std::vector<size_t> dims = smoke ? std::vector<size_t>{2, 5}
                                         : std::vector<size_t>{2, 5, 10, 20};
  BenchReport report("fig10");
  report.SetManifest("dataset", "performance_workload");
  report.SetManifest("k", static_cast<double>(k));
  report.SetManifest("index", "rstar_tree");
  report.SetManifest("threads", 1.0);

  PrintHeader("Figure 10",
              "materialization time vs n, MinPtsUB = 50, per dimension");
  std::printf("%-8s", "n");
  for (size_t d : dims) std::printf("  d=%-2zu (s) ", d);
  std::printf("  scan d=5 (s)\n");

  double first_d2 = 0.0, last_d2 = 0.0;
  for (size_t n : sizes) {
    std::printf("%-8zu", n);
    for (size_t d : dims) {
      Rng rng(1000 + d);
      auto data = CheckOk(generators::MakePerformanceWorkload(rng, d, n, 10),
                          "workload");
      RStarTreeIndex tree;
      QueryStats stats;
      const double seconds = MaterializeSeconds(data, tree, k, &stats);
      report.Add(Case(n, d), CounterMetrics(seconds, stats));
      std::printf("  %-9.3f", seconds);
      if (d == 2 && n == sizes.front()) first_d2 = seconds;
      if (d == 2 && n == sizes.back()) last_d2 = seconds;
    }
    {
      Rng rng(1005);
      auto data = CheckOk(generators::MakePerformanceWorkload(rng, 5, n, 10),
                          "workload");
      LinearScanIndex scan;
      QueryStats stats;
      const double seconds = MaterializeSeconds(data, scan, k, &stats);
      report.Add(Case(n, 5) + "_scan", CounterMetrics(seconds, stats));
      std::printf("  %-9.3f", seconds);
    }
    std::printf("\n");
  }
  std::printf("\nShape check: %zux the points cost %.1fx the time at d=2 "
              "(near-linear, paper's low-d\nbehavior); higher dimensions "
              "degrade toward the sequential scan, as in figure 10.\n",
              sizes.back() / sizes.front(),
              first_d2 > 0 ? last_d2 / first_d2 : 0.0);

  // Threads axis: the n queries of step 1 are embarrassingly parallel, so
  // MaterializeParallel should scale with the worker count while producing
  // bit-identical neighborhoods (property-tested in parallel_test.cc).
  PrintHeader("Figure 10 / threads axis",
              "materialization time vs threads, Gaussian workload, "
              "d=5, n=8000, MinPtsUB=50");
  const size_t thread_n = smoke ? 200 : 8000;
  Rng rng(1005);
  auto data = CheckOk(generators::MakePerformanceWorkload(rng, 5, thread_n, 10),
                      "workload");
  RStarTreeIndex tree;
  CheckOk(tree.Build(data, Euclidean()), "Build");
  std::printf("%-8s %-10s %s\n", "threads", "time (s)", "speedup");
  double serial_seconds = 0.0;
  const std::vector<unsigned> thread_counts =
      smoke ? std::vector<unsigned>{1, 2} : std::vector<unsigned>{1, 2, 4, 8};
  for (unsigned threads : thread_counts) {
    QueryStats stats;
    PipelineObserver observer;
    observer.query_stats = &stats;
    Stopwatch watch;
    auto m = CheckOk(NeighborhoodMaterializer::MaterializeParallel(
                         data, tree, k, threads,
                         /*distinct_neighbors=*/false, observer),
                     "MaterializeParallel");
    (void)m;
    const double seconds = watch.ElapsedSeconds();
    if (threads == 1) serial_seconds = seconds;
    // The counter columns double as a determinism witness: per-worker
    // shards are summed after the join, so every row reports the same
    // distance_evals / node_visits regardless of the thread count.
    auto metrics = CounterMetrics(seconds, stats);
    metrics.emplace_back("speedup",
                         seconds > 0 ? serial_seconds / seconds : 0.0);
    report.Add("threads=" + std::to_string(threads), std::move(metrics));
    std::printf("%-8u %-10.3f %.2fx\n", threads, seconds,
                seconds > 0 ? serial_seconds / seconds : 0.0);
  }
  // Context axis: the same kNN-per-point query workload through the
  // allocating per-query wrappers versus one reused KnnSearchContext
  // versus the chunked QueryBatch path the materializer actually uses.
  // Index build is excluded so the delta isolates the query paths.
  //
  // Two shapes: the paper's MinPtsUB = 50 (per-query compute dominates, so
  // removing the handful of mallocs per query yields a single-digit
  // saving) and k = 5 (per-query work is small and the allocation share is
  // the largest part of the wrapper overhead). The JSON sidecar records
  // both deltas so regressions in either regime are visible.
  PrintHeader("Figure 10 / context axis",
              "per-query wrapper vs reused context vs batched queries, "
              "kd-tree, d=5, n=50000");
  const size_t ctx_n = smoke ? 200 : 50000;
  Rng ctx_rng(1005);
  auto ctx_data = CheckOk(
      generators::MakePerformanceWorkload(ctx_rng, 5, ctx_n, 10), "workload");
  KdTreeIndex kd;
  CheckOk(kd.Build(ctx_data, Euclidean()), "Build");

  double checksum = 0.0;  // consumes results so nothing is optimized away
  std::printf("%-8s %-22s %-10s\n", "k", "path", "time (s)");
  const std::vector<size_t> ctx_ks =
      smoke ? std::vector<size_t>{5} : std::vector<size_t>{50, 5};
  for (size_t ctx_k : ctx_ks) {
    double wrapper_seconds = 0.0;
    {
      Stopwatch watch;
      for (size_t i = 0; i < ctx_n; ++i) {
        auto r = CheckOk(
            kd.Query(ctx_data.point(i), ctx_k, static_cast<uint32_t>(i)),
            "Query");
        checksum += r.back().distance;
      }
      wrapper_seconds = watch.ElapsedSeconds();
    }
    double context_seconds = 0.0;
    {
      KnnSearchContext ctx;
      Stopwatch watch;
      for (size_t i = 0; i < ctx_n; ++i) {
        CheckOk(
            kd.Query(ctx_data.point(i), ctx_k, static_cast<uint32_t>(i), ctx),
            "Query(ctx)");
        checksum -= ctx.results().back().distance;
      }
      context_seconds = watch.ElapsedSeconds();
    }
    double batch_seconds = 0.0;
    {
      KnnSearchContext ctx;
      std::vector<uint32_t> ids;
      Stopwatch watch;
      constexpr size_t kChunk = 64;
      for (size_t begin = 0; begin < ctx_n; begin += kChunk) {
        const size_t end = std::min(begin + kChunk, ctx_n);
        ids.resize(end - begin);
        for (size_t j = 0; j < ids.size(); ++j) {
          ids[j] = static_cast<uint32_t>(begin + j);
        }
        CheckOk(kd.QueryBatch(ids, ctx_k, ctx), "QueryBatch");
        for (size_t j = 0; j < ids.size(); ++j) {
          checksum += ctx.batch_results(j).back().distance;
        }
      }
      batch_seconds = watch.ElapsedSeconds();
    }
    const double best = std::min(context_seconds, batch_seconds);
    const double reduction_pct =
        wrapper_seconds > 0
            ? 100.0 * (wrapper_seconds - best) / wrapper_seconds
            : 0.0;
    std::printf("%-8zu %-22s %-10.3f\n", ctx_k, "allocating wrapper",
                wrapper_seconds);
    std::printf("%-8s %-22s %-10.3f\n", "", "reused context",
                context_seconds);
    std::printf("%-8s %-22s %-10.3f\n", "", "batched (chunk=64)",
                batch_seconds);
    std::printf("%-8s best context path saves %.1f%% over the wrapper\n",
                "", reduction_pct);
    const std::string prefix = "ctx_axis_k=" + std::to_string(ctx_k);
    report.Add(prefix + "_wrapper", {{"seconds", wrapper_seconds}});
    report.Add(prefix + "_context", {{"seconds", context_seconds}});
    report.Add(prefix + "_batch", {{"seconds", batch_seconds}});
    report.Add(prefix + "_delta", {{"wrapper_seconds", wrapper_seconds},
                                   {"best_context_seconds", best},
                                   {"reduction_pct", reduction_pct}});
  }
  std::printf("(checksum %.3g)\nAt k=50 the query is compute-bound — the "
              "block-distance scans dominate and\nremoving per-query "
              "allocation trims single-digit percent; at k=5 the\n"
              "allocation share is far larger and the context path shows "
              "its full effect.\n", checksum);

  CheckOk(report.Write(), "BenchReport::Write");
  return 0;
}
