// Sports analytics — the paper's two real-world case studies (sections 7.2
// and 7.3) end to end on the substituted NHL-like and Bundesliga-like
// datasets: rank players by max LOF over a MinPts range, compare with the
// DB(pct, dmin) baseline, and explain each finding attribute by attribute.

#include <algorithm>
#include <cstdio>

#include "baselines/db_outlier.h"
#include "common/random.h"
#include "dataset/metric.h"
#include "dataset/scenarios.h"
#include "index/index_factory.h"
#include "lof/explain.h"
#include "lof/lof_sweep.h"

using namespace lofkit;  // NOLINT

namespace {

void AnalyzeScenario(const char* title, const scenarios::Scenario& scenario,
                     const char* const* dim_names) {
  std::printf("\n--- %s (n = %zu) ---\n", title, scenario.data.size());
  const Dataset normalized = scenario.data.NormalizedToUnitBox();

  auto index = CreateIndex(IndexKind::kKdTree);
  if (!index->Build(normalized, Euclidean()).ok()) return;
  auto m = NeighborhoodMaterializer::Materialize(normalized, *index, 50);
  if (!m.ok()) return;
  auto sweep = LofSweep::Run(*m, 30, 50);
  if (!sweep.ok()) return;
  auto ranked = RankDescending(sweep->aggregated, 5);

  std::printf("%-4s %-9s %-16s  why (top attribute)\n", "#", "max LOF",
              "player");
  for (size_t i = 0; i < ranked.size(); ++i) {
    const uint32_t p = ranked[i].index;
    auto explanation = ExplainOutlier(normalized, *m, p, 40);
    std::printf("%-4zu %-9.2f %-16s  %s\n", i + 1, ranked[i].score,
                scenario.data.label(p).c_str(),
                explanation.ok()
                    ? dim_names[explanation->ranked_dimensions[0]]
                    : "?");
  }

  // Baseline comparison: strict DB outliers.
  auto db = DbOutlierDetector::Detect(normalized, Euclidean(), 99.8, 0.25);
  if (db.ok()) {
    std::printf("DB(99.8, 0.25) flags %zu object(s):", db->outlier_count);
    for (size_t i = 0; i < normalized.size(); ++i) {
      if (db->is_outlier[i]) {
        std::printf(" %s", scenario.data.label(i).c_str());
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  std::printf("Sports analytics with lofkit (paper sections 7.2 / 7.3)\n");

  {
    Rng rng(1996);
    auto scenario = scenarios::MakeHockeySubspace1(rng);
    if (!scenario.ok()) return 1;
    const char* dims[] = {"points scored", "plus-minus", "penalty minutes"};
    AnalyzeScenario("NHL-like: points / plus-minus / penalty minutes",
                    *scenario, dims);
  }
  {
    Rng rng(1997);
    auto scenario = scenarios::MakeHockeySubspace2(rng);
    if (!scenario.ok()) return 1;
    const char* dims[] = {"games played", "goals", "shooting percentage"};
    AnalyzeScenario("NHL-like: games / goals / shooting percentage",
                    *scenario, dims);
  }
  {
    Rng rng(1998);
    auto scenario = scenarios::MakeSoccerLike(rng);
    if (!scenario.ok()) return 1;
    const char* dims[] = {"games played", "goals per game", "position"};
    AnalyzeScenario("Bundesliga-like: games / goals-per-game / position",
                    *scenario, dims);
  }

  std::printf("\nReading the output: each top player is exceptional "
              "*relative to their own position\ncluster* — the goalie who "
              "scores, the defender with a striker's average — which is\n"
              "the 'local' in Local Outlier Factor.\n");
  return 0;
}
