// E-commerce fraud screening — the motivating application of the paper's
// introduction ("detecting criminal activities in electronic commerce").
//
// Synthetic transaction features: (amount, items per order, hour of day).
// Normal behavior forms several behavioral clusters of very different
// densities (bulk buyers, lunch-break shoppers, night owls); fraud attempts
// sit just outside *their local* cluster, which is exactly what a global
// distance threshold cannot see and LOF can.
//
// The example runs the full production-style pipeline: index ->
// materialize once -> LOF sweep over a MinPts range -> ranking -> per-
// dimension explanation of each alert.

#include <cstdio>
#include <map>
#include <string>

#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/index_factory.h"
#include "lof/explain.h"
#include "lof/lof_sweep.h"

using namespace lofkit;  // NOLINT

int main() {
  Rng rng(2026);
  auto data_or = Dataset::Create(3);
  if (!data_or.ok()) return 1;
  Dataset data = std::move(data_or).value();

  // Normal behavioral clusters: (amount $, items, hour).
  const double lunch[3] = {35, 2, 12.5};
  const double evening[3] = {80, 4, 20};
  const double bulk[3] = {900, 40, 10};
  const double lunch_sd[3] = {10, 1, 0.8};
  const double evening_sd[3] = {25, 2, 1.5};
  const double bulk_sd[3] = {150, 8, 2};
  (void)generators::AppendGaussianClusterAniso(data, rng, lunch, lunch_sd,
                                               400, "lunch_shopper");
  (void)generators::AppendGaussianClusterAniso(data, rng, evening,
                                               evening_sd, 400,
                                               "evening_shopper");
  (void)generators::AppendGaussianClusterAniso(data, rng, bulk, bulk_sd, 150,
                                               "bulk_buyer");

  // Fraud attempts: each is unremarkable globally, anomalous locally.
  const struct {
    const char* name;
    double amount, items, hour;
  } fraud[] = {
      {"card_testing", 34, 2, 3.5},    // lunch-profile amount at 3:30 am
      {"reshipping", 320, 3, 12.3},    // lunch-time but 10x the basket value
      {"bulk_probe", 900, 4, 10.2},    // bulk-buyer amount, 4 items only
  };
  std::map<std::string, size_t> fraud_index;
  for (const auto& f : fraud) {
    const double p[3] = {f.amount, f.items, f.hour};
    fraud_index[f.name] = data.size();
    (void)data.Append(p, f.name);
  }

  // Incommensurate units -> normalize before computing distances.
  const Dataset normalized = data.NormalizedToUnitBox();

  auto index = CreateIndex(RecommendIndexKind(normalized.dimension()));
  if (!index->Build(normalized, Euclidean()).ok()) return 1;
  auto m = NeighborhoodMaterializer::Materialize(normalized, *index, 30);
  if (!m.ok()) return 1;
  auto sweep = LofSweep::Run(*m, 15, 30);
  if (!sweep.ok()) return 1;

  auto ranked = RankDescending(sweep->aggregated, 6);
  std::printf("Top fraud alerts (max LOF over MinPts in [15, 30]):\n\n");
  std::printf("%-4s %-9s %-16s %-9s %-7s %-6s  dominant signal\n", "#",
              "max LOF", "label", "amount", "items", "hour");
  for (size_t i = 0; i < ranked.size(); ++i) {
    const uint32_t p = ranked[i].index;
    auto explanation = ExplainOutlier(normalized, *m, p, 20);
    const char* dims[] = {"amount", "items", "hour of day"};
    std::printf("%-4zu %-9.2f %-16s %-9.0f %-7.0f %-6.1f  %s (%.0f%% of "
                "deviation)\n",
                i + 1, ranked[i].score, data.label(p).c_str(),
                data.point(p)[0], data.point(p)[1], data.point(p)[2],
                explanation.ok()
                    ? dims[explanation->ranked_dimensions[0]]
                    : "?",
                explanation.ok()
                    ? 100.0 * explanation
                          ->contribution[explanation->ranked_dimensions[0]]
                    : 0.0);
  }

  std::printf("\nAll three planted fraud patterns should rank on top, each "
              "explained by the attribute\nthat makes it locally deviant — "
              "despite being globally unremarkable.\n");
  return 0;
}
