// High-dimensional histogram screening — the section-7 "64-dimensional
// color histograms from TV snapshots" setting, with two twists this library
// adds on top of the paper:
//   * the ANGULAR metric (direction of the histogram, not its magnitude),
//     which is the natural similarity for normalized histograms, and
//   * the M-TREE, the only engine whose pruning works for such a
//     non-coordinate metric (grid/KD/R*/VA boxes are vacuous for angles).
// The pipeline finds snapshots that belong to no scene type — blends of
// two broadcasts — and explains which color bins make them odd.

#include <cstdio>
#include <string>

#include "common/random.h"
#include "common/stopwatch.h"
#include "dataset/metric.h"
#include "dataset/scenarios.h"
#include "index/linear_scan_index.h"
#include "index/m_tree_index.h"
#include "lof/explain.h"
#include "lof/lof_sweep.h"

using namespace lofkit;  // NOLINT

int main() {
  Rng rng(6464);
  auto scenario = scenarios::Make64DHistograms(rng);
  if (!scenario.ok()) return 1;
  const Dataset& data = scenario->data;
  std::printf("64-d histogram dataset: %zu vectors, 3 scene clusters, 5 "
              "planted blends\n\n",
              data.size());

  // Engine choice matters under the angular metric: time both.
  Stopwatch watch;
  MTreeIndex m_tree;
  if (!m_tree.Build(data, Angular()).ok()) return 1;
  auto m = NeighborhoodMaterializer::Materialize(data, m_tree, 20);
  if (!m.ok()) return 1;
  const double tree_seconds = watch.ElapsedSeconds();

  watch.Reset();
  LinearScanIndex scan;
  if (!scan.Build(data, Angular()).ok()) return 1;
  auto m_scan = NeighborhoodMaterializer::Materialize(data, scan, 20);
  if (!m_scan.ok()) return 1;
  const double scan_seconds = watch.ElapsedSeconds();
  std::printf("materialization under the angular metric: m_tree %.3fs vs "
              "linear scan %.3fs\n\n",
              tree_seconds, scan_seconds);

  auto sweep = LofSweep::Run(*m, 10, 20);
  if (!sweep.ok()) return 1;
  auto ranked = RankDescending(sweep->aggregated, 8);

  std::printf("%-4s %-16s %-9s %s\n", "#", "label", "max LOF",
              "dominant color bins (explain)");
  for (size_t i = 0; i < ranked.size(); ++i) {
    const uint32_t p = ranked[i].index;
    std::string bins = "?";
    auto explanation = ExplainOutlier(data, *m, p, 15);
    if (explanation.ok()) {
      bins.clear();
      for (int b = 0; b < 3; ++b) {
        bins += "bin" + std::to_string(explanation->ranked_dimensions[b]);
        if (b < 2) bins += ", ";
      }
    }
    std::printf("%-4zu %-16s %-9.2f %s\n", i + 1, data.label(p).c_str(),
                ranked[i].score, bins.c_str());
  }
  std::printf("\nAll five planted cross-broadcast blends should rank on "
              "top; their dominant bins\nare the color channels mixing the "
              "two source scene types.\n");
  return 0;
}
