// Choosing the MinPts range — a walk through the section-6 guidelines.
//
// On the figure-8 dataset (clusters of 10, 35 and 500 objects) this example
// shows how MinPtsLB and MinPtsUB act as the *minimum cluster size to be
// outlying-relative-to* and the *maximum group size that can collectively
// be outliers*: sweep the range, watch which groups light up, and see why
// the paper recommends LB >= 10 and ranking by the maximum.

#include <algorithm>
#include <cstdio>

#include "common/random.h"
#include "dataset/metric.h"
#include "dataset/scenarios.h"
#include "index/kd_tree_index.h"
#include "lof/lof_sweep.h"

using namespace lofkit;  // NOLINT

namespace {

double GroupMax(const Dataset& ds, const std::vector<double>& lof,
                const char* label) {
  double max_lof = 0.0;
  for (size_t i = 0; i < ds.size(); ++i) {
    if (ds.label(i) == label) max_lof = std::max(max_lof, lof[i]);
  }
  return max_lof;
}

}  // namespace

int main() {
  Rng rng(6);
  auto scenario = scenarios::MakeFig8Clusters(rng);
  if (!scenario.ok()) return 1;
  const Dataset& ds = scenario->data;

  KdTreeIndex index;
  if (!index.Build(ds, Euclidean()).ok()) return 1;
  auto m = NeighborhoodMaterializer::Materialize(ds, index, 50);
  if (!m.ok()) return 1;

  std::printf("Dataset: S1 (10 objects), S2 (35), S3 (500)\n\n");
  std::printf("%-8s %-14s %-14s %-14s\n", "MinPts", "max LOF in S1",
              "max LOF in S2", "max LOF in S3");
  for (size_t min_pts : {5, 10, 15, 20, 30, 36, 40, 45, 50}) {
    auto scores = LofComputer::Compute(*m, min_pts);
    if (!scores.ok()) return 1;
    std::printf("%-8zu %-14.2f %-14.2f %-14.2f\n", min_pts,
                GroupMax(ds, scores->lof, "S1"),
                GroupMax(ds, scores->lof, "S2"),
                GroupMax(ds, scores->lof, "S3"));
  }

  std::printf(
      "\nHow to read this against the section-6 guidelines:\n"
      " * Below MinPts ~ 10, statistical fluctuation dominates (guideline: "
      "LB >= 10).\n"
      " * S1 (10 objects) lights up once MinPts >= |S1|: a group can only "
      "be outlying\n"
      "   relative to a cluster when MinPts exceeds the group's size.\n"
      " * S2 (35 objects) lights up around MinPts ~ 36-45, when its "
      "neighborhoods reach\n"
      "   S1 and then S3 — choose MinPtsUB above or below 35 depending on "
      "whether a\n"
      "   35-object group should count as a cluster or as outliers.\n"
      " * S3 (500 objects) never lights up: it is the reference density.\n"
      "\nFinal ranking, max aggregation over [10, 50]:\n");
  auto sweep = LofSweep::Run(*m, 10, 50);
  if (!sweep.ok()) return 1;
  auto ranked = RankDescending(sweep->aggregated, 5);
  for (size_t i = 0; i < ranked.size(); ++i) {
    std::printf("  %zu. %s object, max LOF %.2f\n", i + 1,
                ds.label(ranked[i].index).c_str(), ranked[i].score);
  }
  return 0;
}
