// Quickstart: score a small 2-d dataset with LOF in ~20 lines.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart

#include <cstdio>

#include "dataset/dataset.h"
#include "dataset/metric.h"
#include "lof/lof_computer.h"

int main() {
  using namespace lofkit;  // NOLINT

  // A tight cluster around the origin plus one point far away.
  auto data = Dataset::FromRowMajor(2, {
      0.0, 0.0,  0.2, 0.1,  -0.1, 0.2,  0.1, -0.2,  -0.2, -0.1,
      0.3, 0.0,  0.0, 0.3,  -0.3, 0.1,  0.2, 0.2,   5.0, 5.0,
  });
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }

  // One call: build a kNN index, materialize neighborhoods, compute LOF.
  auto scores = LofComputer::ComputeFromScratch(*data, Euclidean(),
                                                /*min_pts=*/3);
  if (!scores.ok()) {
    std::fprintf(stderr, "%s\n", scores.status().ToString().c_str());
    return 1;
  }

  std::printf("point      LOF\n");
  for (size_t i = 0; i < data->size(); ++i) {
    std::printf("(%4.1f,%4.1f)  %.3f%s\n", data->point(i)[0],
                data->point(i)[1], scores->lof[i],
                scores->lof[i] > 1.5 ? "   <-- outlier" : "");
  }

  // Rank the strongest outliers.
  auto ranked = RankDescending(scores->lof, 1);
  std::printf("\nstrongest outlier: point %u with LOF %.3f\n",
              ranked[0].index, ranked[0].score);
  return 0;
}
