// The LOF <-> OPTICS "handshake" from the paper's conclusions (section 8):
// share the kNN computation between clustering and outlier detection, then
// use the clustering to *explain* each outlier — which cluster it is
// outlying relative to, and what that cluster's density reference looks
// like. This example renders the OPTICS reachability plot as ASCII and
// annotates the top LOF outliers with their cluster context.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "clustering/optics_lof_bridge.h"
#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/kd_tree_index.h"
#include "lof/lof_computer.h"

using namespace lofkit;  // NOLINT

int main() {
  // Three clusters of very different densities plus two local outliers.
  Rng rng(88);
  auto data_or = Dataset::Create(2);
  if (!data_or.ok()) return 1;
  Dataset data = std::move(data_or).value();
  const double c1[2] = {0, 0};
  const double c2[2] = {30, 0};
  const double c3[2] = {60, 0};
  (void)generators::AppendGaussianCluster(data, rng, c1, 0.4, 120, "dense");
  (void)generators::AppendGaussianCluster(data, rng, c2, 1.5, 120, "medium");
  (void)generators::AppendGaussianCluster(data, rng, c3, 4.0, 120, "loose");
  const double near_dense[2] = {2.5, 0.0};
  const double near_loose[2] = {60.0, 17.5};
  const size_t outlier_a = data.size();
  (void)data.Append(near_dense, "outlier_near_dense");
  const size_t outlier_b = data.size();
  (void)data.Append(near_loose, "outlier_near_loose");

  // ONE materialization feeds both OPTICS and LOF — the shared k-nn
  // computation the paper describes.
  KdTreeIndex index;
  if (!index.Build(data, Euclidean()).ok()) return 1;
  auto m = NeighborhoodMaterializer::Materialize(data, index, 25);
  if (!m.ok()) return 1;

  auto optics = OpticsLofBridge::RunFromMaterializer(*m, 10);
  if (!optics.ok()) return 1;
  auto scores = LofComputer::Compute(*m, 10);
  if (!scores.ok()) return 1;

  // ASCII reachability plot (downsampled): cluster valleys + jumps.
  std::printf("OPTICS reachability plot (one column per 4 points in the "
              "ordering):\n\n");
  const double cap = 8.0;
  for (int row = 7; row >= 0; --row) {
    const double level = cap * row / 8.0;
    std::string line;
    for (size_t pos = 0; pos < optics->ordering.size(); pos += 4) {
      double reach = optics->reachability[optics->ordering[pos]];
      if (!std::isfinite(reach)) reach = cap;
      line += std::min(reach, cap) > level ? '#' : ' ';
    }
    std::printf("%5.1f |%s\n", level, line.c_str());
  }
  std::printf("      +%s\n", std::string(
      (optics->ordering.size() + 3) / 4, '-').c_str());
  std::printf("       (three valleys = three clusters; depth tracks "
              "density)\n\n");

  // Flat clustering + outlier explanation.
  std::vector<int> clusters = ExtractClustering(*optics, 2.5);
  auto contexts = OpticsLofBridge::ExplainTopOutliers(*m, *scores, clusters,
                                                      4);
  if (!contexts.ok()) return 1;
  std::printf("Top LOF outliers, explained against the OPTICS clusters:\n");
  std::printf("%-4s %-22s %-8s %-9s %-16s %-14s\n", "#", "label", "LOF",
              "cluster", "nbr fraction", "cluster mean LOF");
  for (size_t i = 0; i < contexts->size(); ++i) {
    const OutlierClusterContext& c = (*contexts)[i];
    std::printf("%-4zu %-22s %-8.2f %-9d %-16.2f %-14.2f\n", i + 1,
                data.label(c.point).c_str(), c.lof, c.cluster,
                c.neighbor_fraction, c.cluster_mean_lof);
  }
  std::printf("\nBoth planted outliers (points %zu and %zu) should rank at "
              "the top, each attributed\nto the cluster whose density it "
              "violates; cluster mean LOF ~ 1 is the Lemma-1\nbaseline the "
              "outliers are measured against.\n",
              outlier_a, outlier_b);
  return 0;
}
