// Streaming anomaly monitoring with incremental materialization — the
// paper's "further improve the performance of LOF computation" direction
// turned into an operational pattern: keep the neighborhood database M
// maintained as observations arrive, touch only the affected
// neighborhoods per insert, and score each arrival against the current
// model.
//
// Scenario: server request telemetry (latency ms, payload KB). Normal
// traffic forms two regimes (cache hits and cache misses); occasionally a
// degraded request arrives that is anomalous relative to its own regime.

#include <cstdio>

#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/incremental_materializer.h"
#include "lof/lof_computer.h"

using namespace lofkit;  // NOLINT

int main() {
  Rng rng(777);

  // Warm-up history: two traffic regimes.
  auto history_or = Dataset::Create(2);
  if (!history_or.ok()) return 1;
  Dataset history = std::move(history_or).value();
  const double hits[2] = {5.0, 2.0};      // fast, small
  const double misses[2] = {60.0, 40.0};  // slow, large
  const double hits_sd[2] = {1.0, 0.5};
  const double misses_sd[2] = {12.0, 8.0};
  (void)generators::AppendGaussianClusterAniso(history, rng, hits, hits_sd,
                                               400, "hit");
  (void)generators::AppendGaussianClusterAniso(history, rng, misses,
                                               misses_sd, 300, "miss");

  const size_t kMinPts = 15;
  auto monitor =
      IncrementalMaterializer::Create(std::move(history), Euclidean(), 20);
  if (!monitor.ok()) return 1;

  // Live stream: mostly normal, a few planted anomalies.
  struct Arrival {
    const char* tag;
    double latency, payload;
  };
  std::vector<Arrival> stream;
  for (int i = 0; i < 40; ++i) {
    if (rng.Bernoulli(0.6)) {
      stream.push_back({"normal-hit", rng.Gaussian(5.0, 1.0),
                        rng.Gaussian(2.0, 0.5)});
    } else {
      stream.push_back({"normal-miss", rng.Gaussian(60.0, 12.0),
                        rng.Gaussian(40.0, 8.0)});
    }
  }
  stream.push_back({"SLOW-HIT", 14.0, 2.0});    // hit-sized, 3x latency
  stream.push_back({"HUGE-MISS", 60.0, 110.0}); // miss-latency, huge body
  stream.push_back({"normal-hit", 5.2, 2.1});

  std::printf("%-6s %-12s %-10s %-10s %-10s %-9s %s\n", "t", "tag",
              "latency", "payload", "LOF", "affected", "verdict");
  const double kAlertThreshold = 2.0;
  for (size_t t = 0; t < stream.size(); ++t) {
    const Arrival& arrival = stream[t];
    const double point[2] = {arrival.latency, arrival.payload};
    if (!monitor->Insert(point, arrival.tag).ok()) return 1;
    // Score the arrival against the updated model.
    auto snapshot = monitor->Snapshot();
    if (!snapshot.ok()) return 1;
    auto scores = LofComputer::Compute(*snapshot, kMinPts);
    if (!scores.ok()) return 1;
    const double lof = scores->lof[monitor->data().size() - 1];
    const bool alert = lof > kAlertThreshold;
    if (alert || t >= stream.size() - 5) {  // print tail + all alerts
      std::printf("%-6zu %-12s %-10.1f %-10.1f %-10.2f %-9zu %s\n", t,
                  arrival.tag, arrival.latency, arrival.payload, lof,
                  monitor->last_affected_count(),
                  alert ? "ALERT" : "ok");
    }
  }
  std::printf("\nThe two planted degradations should be the only ALERTs: "
              "each is unremarkable\nglobally (SLOW-HIT is far faster than "
              "any miss) but anomalous within its regime.\nThe 'affected' "
              "column shows how few neighborhoods each insert touched.\n");
  return 0;
}
