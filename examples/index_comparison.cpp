// Choosing a kNN engine — section 7.4's guidance as runnable code.
//
// The LOF result is engine-independent (every engine in lofkit is exact);
// only the materialization cost differs. This example measures all five
// engines on the same workload at two dimensionalities and prints what
// RecommendIndexKind would have picked. The whole pipeline runs on every
// hardware thread (threads = 0) — the scores are bit-identical to a
// single-threaded run, so parallelism is purely a speed knob.

#include <cstdio>

#include "common/random.h"
#include "common/stopwatch.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/index_factory.h"
#include "lof/lof_computer.h"

using namespace lofkit;  // NOLINT

int main() {
  std::printf("kNN engine comparison, n = 3000, MinPts = 20\n\n");
  std::printf("%-14s %-16s %-16s\n", "engine", "d=2 total (s)",
              "d=16 total (s)");

  for (IndexKind kind : AllIndexKinds()) {
    std::printf("%-14s", std::string(IndexKindName(kind)).c_str());
    for (size_t dim : {2u, 16u}) {
      Rng rng(dim);
      auto data = generators::MakePerformanceWorkload(rng, dim, 3000, 8);
      if (!data.ok()) return 1;
      Stopwatch watch;
      auto scores = LofComputer::ComputeFromScratch(
          *data, Euclidean(), 20, kind, /*distinct_neighbors=*/false,
          {.use_reachability = true, .threads = 0});
      if (!scores.ok()) {
        std::printf("  %s\n", scores.status().ToString().c_str());
        return 1;
      }
      std::printf(" %-16.3f", watch.ElapsedSeconds());
    }
    std::printf("\n");
  }

  std::printf("\nRecommendIndexKind picks: d=2 -> %s, d=8 -> %s, d=16 -> "
              "%s, d=64 -> %s\n",
              std::string(IndexKindName(RecommendIndexKind(2))).c_str(),
              std::string(IndexKindName(RecommendIndexKind(8))).c_str(),
              std::string(IndexKindName(RecommendIndexKind(16))).c_str(),
              std::string(IndexKindName(RecommendIndexKind(64))).c_str());
  std::printf("\nAll engines return identical LOF values — pick by cost, "
              "not by result.\n");
  return 0;
}
