// Steady-state allocation tests for the kNN search-context paths.
//
// The point of KnnSearchContext is that after a few warm-up queries every
// scratch vector has reached its high-water capacity and the per-query hot
// path performs no heap allocation at all. These tests enforce that with a
// global operator-new hook: run warm-up queries, switch the counter on,
// run more queries of the same shape, and require the count to be zero.
//
// The hook counts every allocation in the process while armed, so the
// armed region must contain nothing but the query calls themselves.

#include <atomic>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "common/flight_recorder.h"
#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/kd_tree_index.h"
#include "index/linear_scan_index.h"
#include "index/rkd_forest_index.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<size_t> g_allocations{0};

void NoteAllocation() {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

// Replace every replaceable allocation form; deallocation forms are left
// alone (the default ones match malloc/free with these).
void* operator new(size_t size) {
  NoteAllocation();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](size_t size) { return ::operator new(size); }

void* operator new(size_t size, const std::nothrow_t&) noexcept {
  NoteAllocation();
  return std::malloc(size ? size : 1);
}

void* operator new[](size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void* operator new(size_t size, std::align_val_t align) {
  NoteAllocation();
  if (void* p = std::aligned_alloc(static_cast<size_t>(align),
                                   (size + static_cast<size_t>(align) - 1) &
                                       ~(static_cast<size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace lofkit {
namespace {

class AllocationGuard {
 public:
  AllocationGuard() {
    g_allocations.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
  }
  ~AllocationGuard() { g_counting.store(false, std::memory_order_relaxed); }
  size_t count() const {
    return g_allocations.load(std::memory_order_relaxed);
  }
};

Dataset MakeData(size_t dim, size_t n) {
  Rng rng(99);
  auto ds = generators::MakePerformanceWorkload(rng, dim, n, 4);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

template <typename Index>
void ExpectZeroSteadyStateAllocations(const char* label) {
  Dataset data = MakeData(5, 2000);
  Index index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());

  KnnSearchContext ctx;
  constexpr size_t kK = 20;
  const double radius = 8.0;

  // Warm up: grows every scratch pool to its steady-state capacity. Use
  // the largest query shapes the measured phase will see.
  for (uint32_t q = 0; q < 64; ++q) {
    ASSERT_TRUE(index.Query(data.point(q), kK, q, ctx).ok());
    ASSERT_TRUE(
        index.QueryRadius(data.point(q), radius, std::nullopt, ctx).ok());
  }
  std::vector<uint32_t> ids(64);
  for (uint32_t j = 0; j < 64; ++j) ids[j] = 200 + j;
  ASSERT_TRUE(index.QueryBatch(ids, kK, ctx).ok());

  // Measured phase: rerun the very same queries (so no scratch pool can
  // legitimately need more capacity than warm-up established); the work is
  // recomputed in full, and zero allocations are allowed.
  {
    AllocationGuard guard;
    for (uint32_t q = 0; q < 64; ++q) {
      Status s = index.Query(data.point(q), kK, q, ctx);
      ASSERT_TRUE(s.ok());
      Status r = index.QueryRadius(data.point(q), radius, std::nullopt, ctx);
      ASSERT_TRUE(r.ok());
    }
    EXPECT_EQ(guard.count(), 0u)
        << label << ": single-query steady state allocated";
  }
  {
    AllocationGuard guard;
    Status s = index.QueryBatch(ids, kK, ctx);
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(guard.count(), 0u)
        << label << ": batched steady state allocated";
  }
}

TEST(AllocationTest, LinearScanSteadyStateIsAllocationFree) {
  ExpectZeroSteadyStateAllocations<LinearScanIndex>("linear_scan");
}

TEST(AllocationTest, KdTreeSteadyStateIsAllocationFree) {
  ExpectZeroSteadyStateAllocations<KdTreeIndex>("kd_tree");
}

TEST(AllocationTest, RkdForestSteadyStateIsAllocationFree) {
  // Exact dial: the frontier drains fully, touching every scratch pool
  // (including the cross-tree visited marks) at its largest extent.
  ExpectZeroSteadyStateAllocations<RkdForestIndex>("rkd_forest");
}

// The flight recorder's record path must stay allocation-free after
// PrepareShards, including when the ring wraps and the top-K heap churns:
// rings are preallocated, engine names are string_views, and the heap
// replaces in place once full.
TEST(AllocationTest, FlightRecorderSteadyStateIsAllocationFree) {
  QueryFlightRecorder recorder(
      QueryFlightRecorder::Options{/*ring_capacity=*/16, /*top_k=*/8,
                                   /*sample_stride=*/2});
  recorder.PrepareShards(2);
  const QueryStats before;
  QueryStats after;
  after.distance_evals = 123;
  after.node_visits = 45;

  {
    AllocationGuard guard;
    for (uint32_t i = 0; i < 200; ++i) {
      QueryFlightRecorder::Shard* shard = recorder.shard(i % 2);
      if (!shard->ShouldSample()) continue;
      shard->Record(QueryFlightRecorder::Site::kMaterialize, "kd_tree", i,
                    /*queries=*/64, /*k=*/20,
                    /*wall_ns=*/1000 + 7919 * (i % 31), before, after);
      shard->Record(QueryFlightRecorder::Site::kSweep, "kd_tree", i,
                    /*queries=*/1, /*k=*/20,
                    /*wall_ns=*/500 + 131 * (i % 17), before, after);
    }
    EXPECT_EQ(guard.count(), 0u)
        << "flight recorder record path allocated after PrepareShards";
  }
  // The recorder actually captured: both rings wrapped several times.
  EXPECT_GT(recorder.shard(0)->sampled_units(), 16u);
}

TEST(AllocationTest, HookSeesAllocations) {
  // Sanity check that the hook is actually armed in this binary.
  AllocationGuard guard;
  auto* p = new std::vector<double>(100);
  delete p;
  EXPECT_GT(guard.count(), 0u);
}

}  // namespace
}  // namespace lofkit
