#include "lof/lof_bounds.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/linear_scan_index.h"
#include "lof/lof_computer.h"

namespace lofkit {
namespace {

struct Pipeline {
  Dataset data;
  LinearScanIndex index;
  std::optional<NeighborhoodMaterializer> m;
};

std::unique_ptr<Pipeline> MakePipeline(Dataset data, size_t k_max) {
  auto pipeline = std::make_unique<Pipeline>(Pipeline{std::move(data), {}, {}});
  EXPECT_TRUE(pipeline->index.Build(pipeline->data, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(pipeline->data,
                                                 pipeline->index, k_max);
  EXPECT_TRUE(m.ok());
  pipeline->m.emplace(std::move(m).value());
  return pipeline;
}

Dataset TwoClustersAndOutlier(Rng& rng) {
  auto ds = Dataset::Create(2);
  EXPECT_TRUE(ds.ok());
  const double c1[2] = {0, 0};
  const double c2[2] = {30, 0};
  EXPECT_TRUE(
      generators::AppendGaussianCluster(*ds, rng, c1, 1.0, 150, "c1").ok());
  EXPECT_TRUE(
      generators::AppendGaussianCluster(*ds, rng, c2, 3.0, 150, "c2").ok());
  const double outlier[2] = {15, 10};
  EXPECT_TRUE(ds->Append(outlier, "outlier").ok());
  return std::move(ds).value();
}

TEST(Theorem1Test, BoundsHoldForEveryPoint) {
  Rng rng(21);
  auto pipeline = MakePipeline(TwoClustersAndOutlier(rng), 12);
  const size_t min_pts = 10;
  auto scores = LofComputer::Compute(*pipeline->m, min_pts);
  ASSERT_TRUE(scores.ok());
  for (size_t i = 0; i < pipeline->data.size(); ++i) {
    auto stats = ComputeNeighborhoodStats(*pipeline->m, i, min_pts);
    ASSERT_TRUE(stats.ok());
    const LofBoundEstimate bounds = Theorem1Bounds(*stats);
    EXPECT_LE(bounds.lower, scores->lof[i] + 1e-9) << "point " << i;
    EXPECT_GE(bounds.upper, scores->lof[i] - 1e-9) << "point " << i;
  }
}

TEST(Theorem1Test, BoundsAreTightForSingleClusterNeighborhoods) {
  // Second bullet of section 5.3: for a point whose neighbors all belong
  // to one homogeneous cluster, the theorem-1 bounds are close together.
  Rng rng(22);
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  const double center[2] = {0, 0};
  ASSERT_TRUE(
      generators::AppendGaussianCluster(*ds, rng, center, 1.0, 200).ok());
  const double p[2] = {6.0, 0.0};  // outside, neighbors all in the cluster
  ASSERT_TRUE(ds->Append(p).ok());
  auto pipeline = MakePipeline(std::move(ds).value(), 12);
  auto stats = ComputeNeighborhoodStats(*pipeline->m, 200, 10);
  ASSERT_TRUE(stats.ok());
  const LofBoundEstimate bounds = Theorem1Bounds(*stats);
  auto scores = LofComputer::Compute(*pipeline->m, 10);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT(scores->lof[200], 2.0);              // clearly outlying
  EXPECT_LT(bounds.upper / bounds.lower, 6.0);   // bounds usable
}

TEST(Theorem2Test, BoundsHoldWithLabelPartition) {
  Rng rng(23);
  Dataset data = TwoClustersAndOutlier(rng);
  // Partition: by generator label (c1 = 0, c2 = 1, outlier = 2).
  std::vector<int> partition(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    partition[i] = data.label(i) == "c1" ? 0 : (data.label(i) == "c2" ? 1 : 2);
  }
  auto pipeline = MakePipeline(std::move(data), 12);
  const size_t min_pts = 10;
  auto scores = LofComputer::Compute(*pipeline->m, min_pts);
  ASSERT_TRUE(scores.ok());
  for (size_t i = 0; i < pipeline->data.size(); ++i) {
    auto bounds = Theorem2Bounds(*pipeline->m, i, min_pts, partition);
    ASSERT_TRUE(bounds.ok());
    EXPECT_LE(bounds->lower, scores->lof[i] + 1e-9) << "point " << i;
    EXPECT_GE(bounds->upper, scores->lof[i] - 1e-9) << "point " << i;
  }
}

TEST(Theorem2Test, Corollary1SinglePartitionEqualsTheorem1) {
  Rng rng(24);
  auto pipeline = MakePipeline(TwoClustersAndOutlier(rng), 12);
  const std::vector<int> one_group(pipeline->data.size(), 0);
  const size_t min_pts = 10;
  for (size_t i : {0u, 77u, 200u, 300u}) {
    auto stats = ComputeNeighborhoodStats(*pipeline->m, i, min_pts);
    auto thm2 = Theorem2Bounds(*pipeline->m, i, min_pts, one_group);
    ASSERT_TRUE(stats.ok() && thm2.ok());
    const LofBoundEstimate thm1 = Theorem1Bounds(*stats);
    EXPECT_NEAR(thm2->lower, thm1.lower, 1e-12) << "point " << i;
    EXPECT_NEAR(thm2->upper, thm1.upper, 1e-12) << "point " << i;
  }
}

TEST(Theorem2Test, TightensTheorem1ForMixedNeighborhoods) {
  // Section 5.4 / figure 6: when p's neighborhood draws from two clusters
  // of different densities, the partition-aware bounds are narrower.
  Rng rng(29);
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  const double c1[2] = {-4.0, 0.0};
  const double c2[2] = {4.0, 0.0};
  ASSERT_TRUE(
      generators::AppendGaussianCluster(*ds, rng, c1, 0.5, 200, "c1").ok());
  ASSERT_TRUE(
      generators::AppendGaussianCluster(*ds, rng, c2, 0.2, 200, "c2").ok());
  double c1_edge = -1e9, c2_edge = 1e9;
  for (size_t i = 0; i < ds->size(); ++i) {
    if (ds->label(i) == "c1") {
      c1_edge = std::max(c1_edge, ds->point(i)[0]);
    } else {
      c2_edge = std::min(c2_edge, ds->point(i)[0]);
    }
  }
  const double p[2] = {0.5 * (c1_edge + c2_edge), 0.0};
  const size_t p_index = ds->size();
  ASSERT_TRUE(ds->Append(p, "p").ok());
  std::vector<int> partition(ds->size());
  for (size_t i = 0; i < ds->size(); ++i) {
    partition[i] = ds->label(i) == "c2" ? 1 : 0;
  }
  auto pipeline = MakePipeline(std::move(ds).value(), 6);
  const size_t min_pts = 6;
  auto stats = ComputeNeighborhoodStats(*pipeline->m, p_index, min_pts);
  auto thm2 = Theorem2Bounds(*pipeline->m, p_index, min_pts, partition);
  auto scores = LofComputer::Compute(*pipeline->m, min_pts);
  ASSERT_TRUE(stats.ok() && thm2.ok() && scores.ok());
  const LofBoundEstimate thm1 = Theorem1Bounds(*stats);
  // Both bracket the true value...
  EXPECT_LE(thm1.lower, scores->lof[p_index] + 1e-9);
  EXPECT_GE(thm1.upper, scores->lof[p_index] - 1e-9);
  EXPECT_LE(thm2->lower, scores->lof[p_index] + 1e-9);
  EXPECT_GE(thm2->upper, scores->lof[p_index] - 1e-9);
  // ... and the partitioned spread is no wider.
  EXPECT_LE(thm2->upper - thm2->lower,
            (thm1.upper - thm1.lower) * (1 + 1e-9));
}

TEST(Theorem2Test, RejectsBadPartitions) {
  Rng rng(25);
  auto pipeline = MakePipeline(TwoClustersAndOutlier(rng), 12);
  std::vector<int> wrong_size(3, 0);
  EXPECT_FALSE(
      Theorem2Bounds(*pipeline->m, 0, 10, wrong_size).ok());
  std::vector<int> negative(pipeline->data.size(), -1);
  EXPECT_FALSE(Theorem2Bounds(*pipeline->m, 0, 10, negative).ok());
}

TEST(Lemma1Test, DeepClusterPointsRespectEpsilonBounds) {
  Rng rng(26);
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  const double center[2] = {0, 0};
  ASSERT_TRUE(
      generators::AppendGaussianCluster(*ds, rng, center, 1.0, 300).ok());
  auto pipeline = MakePipeline(std::move(ds).value(), 12);
  const size_t min_pts = 10;

  std::vector<uint32_t> cluster(pipeline->data.size());
  for (size_t i = 0; i < cluster.size(); ++i) {
    cluster[i] = static_cast<uint32_t>(i);
  }
  auto lemma = Lemma1Bounds(pipeline->data, Euclidean(), *pipeline->m,
                            cluster, min_pts);
  ASSERT_TRUE(lemma.ok());
  EXPECT_GT(lemma->epsilon, 0.0);
  EXPECT_LT(lemma->bounds.lower, 1.0);
  EXPECT_GT(lemma->bounds.upper, 1.0);

  // Every point is in C here, so "deep" holds for all; LOF must respect
  // the lemma's bounds.
  auto scores = LofComputer::Compute(*pipeline->m, min_pts);
  ASSERT_TRUE(scores.ok());
  const std::vector<bool> in_cluster(pipeline->data.size(), true);
  for (size_t i = 0; i < pipeline->data.size(); ++i) {
    auto deep = IsDeepInCluster(*pipeline->m, i, min_pts, in_cluster);
    ASSERT_TRUE(deep.ok());
    ASSERT_TRUE(*deep);
    EXPECT_GE(scores->lof[i], lemma->bounds.lower - 1e-9);
    EXPECT_LE(scores->lof[i], lemma->bounds.upper + 1e-9);
  }
}

TEST(Lemma1Test, DetectsNonDeepPoints) {
  Rng rng(27);
  Dataset data = TwoClustersAndOutlier(rng);
  std::vector<bool> in_c1(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    in_c1[i] = data.label(i) == "c1";
  }
  auto pipeline = MakePipeline(std::move(data), 12);
  // The planted outlier (last point) cannot be deep in C1.
  auto deep = IsDeepInCluster(*pipeline->m, pipeline->data.size() - 1, 10,
                              in_c1);
  ASSERT_TRUE(deep.ok());
  EXPECT_FALSE(*deep);
}

TEST(Lemma1Test, RejectsDegenerateClusters) {
  Rng rng(28);
  auto pipeline = MakePipeline(TwoClustersAndOutlier(rng), 12);
  const std::vector<uint32_t> tiny = {0};
  EXPECT_FALSE(Lemma1Bounds(pipeline->data, Euclidean(), *pipeline->m, tiny,
                            10)
                   .ok());
}

// Duplicate-heavy data collapses reachability distances to zero, which is
// exactly where the pre-fix fallbacks went wrong (an unconditional +inf
// *lower* bound on fully duplicated points, breaking lower <= LOF = 1).
// The pile: 12 copies of the origin (every one has LOF exactly 1 under the
// inf/inf := 1 convention), a point just outside the pile (finite lrd
// against infinite neighbor lrds => LOF +inf), and a normal cluster.
Dataset DuplicatePileAndCluster(Rng& rng) {
  auto ds = Dataset::Create(2);
  EXPECT_TRUE(ds.ok());
  const double origin[2] = {0, 0};
  for (int copy = 0; copy < 12; ++copy) {
    EXPECT_TRUE(ds->Append(origin, "dup").ok());
  }
  const double near[2] = {0.5, 0.0};
  EXPECT_TRUE(ds->Append(near, "near").ok());
  const double center[2] = {20, 0};
  EXPECT_TRUE(
      generators::AppendGaussianCluster(*ds, rng, center, 1.0, 30, "c").ok());
  return std::move(ds).value();
}

// Checks lower <= lof <= upper under the duplicate conventions (an
// infinite exact LOF satisfies any lower bound; comparisons against the
// +inf bounds work out of the box). NaN anywhere is an automatic failure.
void ExpectBracket(const LofBoundEstimate& bounds, double lof, size_t i) {
  EXPECT_FALSE(std::isnan(bounds.lower)) << "point " << i;
  EXPECT_FALSE(std::isnan(bounds.upper)) << "point " << i;
  EXPECT_FALSE(std::isnan(lof)) << "point " << i;
  EXPECT_LE(bounds.lower, lof) << "point " << i;
  EXPECT_GE(bounds.upper, lof) << "point " << i;
}

TEST(Theorem1Test, DuplicatePilesKeepBoundsSound) {
  Rng rng(31);
  auto pipeline = MakePipeline(DuplicatePileAndCluster(rng), 6);
  const size_t min_pts = 5;
  auto scores = LofComputer::Compute(*pipeline->m, min_pts);
  ASSERT_TRUE(scores.ok());
  ASSERT_TRUE(scores->has_infinite_lrd);
  for (size_t i = 0; i < pipeline->data.size(); ++i) {
    auto stats = ComputeNeighborhoodStats(*pipeline->m, i, min_pts);
    ASSERT_TRUE(stats.ok()) << stats.status().message();
    ExpectBracket(Theorem1Bounds(*stats), scores->lof[i], i);
  }
  // The fully duplicated points: LOF pinned at exactly 1, bounds [1, 1].
  // A lower bound above 1 here is the regression this PR fixes.
  for (size_t i = 0; i < 12; ++i) {
    auto stats = ComputeNeighborhoodStats(*pipeline->m, i, min_pts);
    ASSERT_TRUE(stats.ok());
    const LofBoundEstimate bounds = Theorem1Bounds(*stats);
    EXPECT_DOUBLE_EQ(scores->lof[i], 1.0) << "point " << i;
    EXPECT_DOUBLE_EQ(bounds.lower, 1.0) << "point " << i;
    EXPECT_DOUBLE_EQ(bounds.upper, 1.0) << "point " << i;
  }
  // The point beside the pile: positive direct reachabilities against
  // all-zero indirect ones, so the exact LOF is +inf and so is the lower.
  const size_t near = 12;
  auto stats = ComputeNeighborhoodStats(*pipeline->m, near, min_pts);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(std::isinf(scores->lof[near]));
  EXPECT_TRUE(std::isinf(Theorem1Bounds(*stats).lower));
}

TEST(Theorem2Test, DuplicatePilesProduceNoNaN) {
  Rng rng(32);
  Dataset data = DuplicatePileAndCluster(rng);
  std::vector<int> partition(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    partition[i] =
        data.label(i) == "dup" ? 0 : (data.label(i) == "near" ? 1 : 2);
  }
  auto pipeline = MakePipeline(std::move(data), 6);
  const size_t min_pts = 5;
  auto scores = LofComputer::Compute(*pipeline->m, min_pts);
  ASSERT_TRUE(scores.ok());
  for (size_t i = 0; i < pipeline->data.size(); ++i) {
    auto bounds = Theorem2Bounds(*pipeline->m, i, min_pts, partition);
    ASSERT_TRUE(bounds.ok()) << bounds.status().message();
    ExpectBracket(*bounds, scores->lof[i], i);
  }
}

TEST(Theorem2Test, Corollary1DegeneratesToTheorem1OnDuplicates) {
  Rng rng(33);
  auto pipeline = MakePipeline(DuplicatePileAndCluster(rng), 6);
  const std::vector<int> one_group(pipeline->data.size(), 0);
  const size_t min_pts = 5;
  for (size_t i = 0; i < pipeline->data.size(); ++i) {
    auto stats = ComputeNeighborhoodStats(*pipeline->m, i, min_pts);
    auto thm2 = Theorem2Bounds(*pipeline->m, i, min_pts, one_group);
    ASSERT_TRUE(stats.ok() && thm2.ok());
    const LofBoundEstimate thm1 = Theorem1Bounds(*stats);
    // Exact equality on purpose — the degenerate branches must agree on
    // the +inf / 1.0 special values, not just approximately.
    EXPECT_EQ(thm2->lower, thm1.lower) << "point " << i;
    EXPECT_EQ(thm2->upper, thm1.upper) << "point " << i;
  }
}

TEST(NeighborhoodStatsTest, OutOfRangeMinPtsIsAnErrorNotASentinel) {
  Rng rng(34);
  auto pipeline = MakePipeline(DuplicatePileAndCluster(rng), 6);
  EXPECT_FALSE(ComputeNeighborhoodStats(*pipeline->m, 0, 7).ok());
  EXPECT_FALSE(ComputeNeighborhoodStats(*pipeline->m, 0, 0).ok());
}

TEST(AnalyticModelTest, RelativeSpanMatchesClosedForm) {
  // Figure 5's formula, and its consistency with the figure-4 curves:
  // (LOFmax - LOFmin) / ratio must equal 4x/(1-x^2) for every ratio.
  for (double pct : {1.0, 5.0, 10.0, 25.0, 50.0, 90.0}) {
    const double span = AnalyticRelativeSpan(pct);
    const double x = pct / 100.0;
    EXPECT_NEAR(span, 4 * x / (1 - x * x), 1e-12);
    for (double ratio : {0.5, 1.0, 2.0, 7.5}) {
      const LofBoundEstimate bounds = AnalyticBounds(ratio, pct);
      EXPECT_NEAR((bounds.upper - bounds.lower) / ratio, span, 1e-9);
    }
  }
}

TEST(AnalyticModelTest, SpanGrowsWithPctAndDivergesNear100) {
  EXPECT_LT(AnalyticRelativeSpan(1), AnalyticRelativeSpan(5));
  EXPECT_LT(AnalyticRelativeSpan(5), AnalyticRelativeSpan(10));
  EXPECT_GT(AnalyticRelativeSpan(99), 100.0);
}

TEST(AnalyticModelTest, ZeroFluctuationCollapsesBounds) {
  const LofBoundEstimate bounds = AnalyticBounds(3.0, 0.0);
  EXPECT_DOUBLE_EQ(bounds.lower, 3.0);
  EXPECT_DOUBLE_EQ(bounds.upper, 3.0);
}

}  // namespace
}  // namespace lofkit
