#include "clustering/optics.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "clustering/optics_lof_bridge.h"
#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/linear_scan_index.h"

namespace lofkit {
namespace {

Dataset TwoBlobs(Rng& rng) {
  auto ds = Dataset::Create(2);
  EXPECT_TRUE(ds.ok());
  const double c1[2] = {0, 0};
  const double c2[2] = {20, 0};
  EXPECT_TRUE(
      generators::AppendGaussianCluster(*ds, rng, c1, 0.5, 80, "a").ok());
  EXPECT_TRUE(
      generators::AppendGaussianCluster(*ds, rng, c2, 0.5, 80, "b").ok());
  return std::move(ds).value();
}

TEST(OpticsTest, OrderingIsAPermutation) {
  Rng rng(71);
  Dataset data = TwoBlobs(rng);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto result = Optics::Run(data, index, {.eps = 5.0, .min_pts = 5});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->ordering.size(), data.size());
  std::vector<uint32_t> sorted = result->ordering;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    ASSERT_EQ(sorted[i], i);
  }
}

TEST(OpticsTest, ReachabilityJumpSeparatesClusters) {
  Rng rng(72);
  Dataset data = TwoBlobs(rng);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto result = Optics::Run(data, index,
                            {.eps = std::numeric_limits<double>::infinity(),
                             .min_pts = 5});
  ASSERT_TRUE(result.ok());
  // Walking the ordering, there must be exactly one within-run reachability
  // jump above 10 (the inter-cluster gap), plus the undefined start.
  size_t jumps = 0;
  for (size_t pos = 1; pos < result->ordering.size(); ++pos) {
    const double reach = result->reachability[result->ordering[pos]];
    if (!std::isfinite(reach) || reach > 10.0) ++jumps;
  }
  EXPECT_EQ(jumps, 1u);
}

TEST(OpticsTest, ExtractClusteringMatchesBlobStructure) {
  Rng rng(73);
  Dataset data = TwoBlobs(rng);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto result = Optics::Run(data, index, {.eps = 50.0, .min_pts = 5});
  ASSERT_TRUE(result.ok());
  std::vector<int> clusters = ExtractClustering(*result, 2.0);
  // Blob membership must map 1:1 to extracted clusters.
  int id_a = clusters[0];
  int id_b = clusters[100];
  EXPECT_GE(id_a, 0);
  EXPECT_GE(id_b, 0);
  EXPECT_NE(id_a, id_b);
  size_t mismatches = 0;
  for (size_t i = 0; i < 80; ++i) {
    if (clusters[i] != id_a) ++mismatches;
  }
  for (size_t i = 80; i < 160; ++i) {
    if (clusters[i] != id_b) ++mismatches;
  }
  EXPECT_LT(mismatches, 4u);  // border points may drop to noise
}

TEST(OpticsTest, CoreDistanceMatchesKDistance) {
  Rng rng(74);
  Dataset data = TwoBlobs(rng);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto result = Optics::Run(data, index,
                            {.eps = std::numeric_limits<double>::infinity(),
                             .min_pts = 5});
  ASSERT_TRUE(result.ok());
  // core-distance(p) is the (min_pts-1)-distance of p (the neighborhood
  // includes p itself).
  auto knn = index.Query(data.point(0), 4, uint32_t{0});
  ASSERT_TRUE(knn.ok());
  EXPECT_DOUBLE_EQ(result->core_distance[0], (*knn)[3].distance);
}

TEST(OpticsTest, RejectsBadParameters) {
  Rng rng(75);
  Dataset data = TwoBlobs(rng);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  EXPECT_FALSE(Optics::Run(data, index, {.eps = -1.0, .min_pts = 5}).ok());
  EXPECT_FALSE(Optics::Run(data, index, {.eps = 1.0, .min_pts = 0}).ok());
}

TEST(HierarchicalExtractionTest, FindsNestedStructure) {
  // A dense core inside a looser cluster, plus a separate cluster: the
  // hierarchy should contain the loose region with the core nested inside.
  Rng rng(79);
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  const double loose[2] = {0, 0};
  const double core[2] = {0, 0};
  const double other[2] = {40, 0};
  ASSERT_TRUE(
      generators::AppendGaussianCluster(*ds, rng, loose, 3.0, 150).ok());
  ASSERT_TRUE(
      generators::AppendGaussianCluster(*ds, rng, core, 0.3, 100).ok());
  ASSERT_TRUE(
      generators::AppendGaussianCluster(*ds, rng, other, 1.0, 100).ok());
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(*ds, Euclidean()).ok());
  auto optics = Optics::Run(*ds, index,
                            {.eps = std::numeric_limits<double>::infinity(),
                             .min_pts = 8});
  ASSERT_TRUE(optics.ok());
  auto clusters = ExtractHierarchicalClusters(*optics, 5.0, 10, 20);
  ASSERT_GE(clusters.size(), 2u);
  // At least one nested cluster (depth >= 1) strictly inside another.
  bool has_nested = false;
  for (const auto& c : clusters) {
    if (c.depth >= 1) has_nested = true;
  }
  EXPECT_TRUE(has_nested);
  // Every cluster is a sane span.
  for (const auto& c : clusters) {
    EXPECT_LT(c.begin, c.end);
    EXPECT_LE(c.end, ds->size());
    EXPECT_GE(c.size(), 20u);
    EXPECT_GT(c.level, 0.0);
  }
}

TEST(HierarchicalExtractionTest, EmptyAndDegenerateInputs) {
  OpticsResult empty;
  EXPECT_TRUE(ExtractHierarchicalClusters(empty, 1.0).empty());
  Rng rng(80);
  Dataset data = TwoBlobs(rng);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto optics = Optics::Run(data, index, {.eps = 50.0, .min_pts = 5});
  ASSERT_TRUE(optics.ok());
  EXPECT_TRUE(ExtractHierarchicalClusters(*optics, 0.0).empty());
  EXPECT_TRUE(ExtractHierarchicalClusters(*optics, 1.0, 0).empty());
  // Huge min size -> nothing qualifies.
  EXPECT_TRUE(
      ExtractHierarchicalClusters(*optics, 5.0, 8, 10000).empty());
}

TEST(HierarchicalExtractionTest, TwoBlobsGiveTwoTopLevelClusters) {
  Rng rng(81);
  Dataset data = TwoBlobs(rng);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto optics = Optics::Run(data, index,
                            {.eps = std::numeric_limits<double>::infinity(),
                             .min_pts = 5});
  ASSERT_TRUE(optics.ok());
  auto clusters = ExtractHierarchicalClusters(*optics, 3.0, 6, 30);
  size_t top_level = 0;
  for (const auto& c : clusters) {
    if (c.depth == 0) ++top_level;
  }
  EXPECT_EQ(top_level, 2u);
}

TEST(OpticsLofBridgeTest, MaterializerDrivenOpticsMatchesDirectRun) {
  Rng rng(76);
  Dataset data = TwoBlobs(rng);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(data, index, 20);
  ASSERT_TRUE(m.ok());
  auto bridged = OpticsLofBridge::RunFromMaterializer(*m, 5);
  ASSERT_TRUE(bridged.ok());
  // Same permutation property and the same cluster-gap structure.
  ASSERT_EQ(bridged->ordering.size(), data.size());
  std::vector<int> clusters = ExtractClustering(*bridged, 2.0);
  EXPECT_NE(clusters[0], -1);
  int distinct = 0;
  std::vector<int> seen;
  for (int c : clusters) {
    if (c >= 0 && std::find(seen.begin(), seen.end(), c) == seen.end()) {
      seen.push_back(c);
      ++distinct;
    }
  }
  EXPECT_EQ(distinct, 2);
}

TEST(OpticsLofBridgeTest, ExplainsOutlierAgainstItsCluster) {
  Rng rng(77);
  Dataset data = TwoBlobs(rng);
  const double outlier[2] = {2.5, 0.0};  // near blob a
  const size_t outlier_index = data.size();
  ASSERT_TRUE(data.Append(outlier, "outlier").ok());
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(data, index, 20);
  ASSERT_TRUE(m.ok());
  auto scores = LofComputer::Compute(*m, 10);
  ASSERT_TRUE(scores.ok());
  auto optics = OpticsLofBridge::RunFromMaterializer(*m, 5);
  ASSERT_TRUE(optics.ok());
  std::vector<int> clusters = ExtractClustering(*optics, 2.0);
  auto contexts =
      OpticsLofBridge::ExplainTopOutliers(*m, *scores, clusters, 1);
  ASSERT_TRUE(contexts.ok());
  ASSERT_EQ(contexts->size(), 1u);
  const OutlierClusterContext& context = (*contexts)[0];
  EXPECT_EQ(context.point, outlier_index);
  // The outlier is explained relative to blob a's cluster.
  EXPECT_EQ(context.cluster, clusters[0]);
  EXPECT_GT(context.neighbor_fraction, 0.9);
  EXPECT_NEAR(context.cluster_mean_lof, 1.0, 0.2);  // Lemma 1
  EXPECT_GT(context.lof, 2.0);
}

TEST(OpticsLofBridgeTest, RejectsMismatchedSizes) {
  Rng rng(78);
  Dataset data = TwoBlobs(rng);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(data, index, 10);
  ASSERT_TRUE(m.ok());
  LofScores scores;  // empty
  std::vector<int> clusters(data.size(), 0);
  EXPECT_FALSE(
      OpticsLofBridge::ExplainTopOutliers(*m, scores, clusters, 1).ok());
  EXPECT_FALSE(OpticsLofBridge::RunFromMaterializer(*m, 0).ok());
  EXPECT_FALSE(OpticsLofBridge::RunFromMaterializer(*m, 11).ok());
}

}  // namespace
}  // namespace lofkit
