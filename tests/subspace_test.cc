#include "lof/subspace.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "dataset/generators.h"

namespace lofkit {
namespace {

// Dataset where the last point is outlying ONLY in dimension 2: the other
// dimensions are a uniform crowd everywhere.
Dataset SingleDimensionOutlier(Rng& rng) {
  auto ds = Dataset::Create(3);
  EXPECT_TRUE(ds.ok());
  std::vector<double> p(3);
  for (int i = 0; i < 300; ++i) {
    p = {rng.Uniform(0, 1), rng.Uniform(0, 1), rng.Gaussian(0.5, 0.02)};
    EXPECT_TRUE(ds->Append(p).ok());
  }
  p = {0.5, 0.5, 0.9};  // unremarkable in dims 0/1, far out in dim 2
  EXPECT_TRUE(ds->Append(p, "planted").ok());
  return std::move(ds).value();
}

TEST(SubspaceTest, FindsTheSingleExplanatoryDimension) {
  Rng rng(91);
  Dataset data = SingleDimensionOutlier(rng);
  auto result = FindOutlyingSubspaces(
      data, 300, {.min_pts = 10, .max_dimensions = 2, .lof_threshold = 2.0});
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->empty());
  // The smallest explanation is exactly {2}; all minimal subspaces listed
  // must contain dimension 2 (the others cannot explain anything alone).
  EXPECT_EQ((*result)[0].dimensions, (std::vector<size_t>{2}));
  EXPECT_GT((*result)[0].lof, 2.0);
  for (const SubspaceExplanation& e : *result) {
    EXPECT_NE(std::find(e.dimensions.begin(), e.dimensions.end(), size_t{2}),
              e.dimensions.end());
  }
}

TEST(SubspaceTest, MinimalityPrunesSupersets) {
  Rng rng(92);
  Dataset data = SingleDimensionOutlier(rng);
  auto result = FindOutlyingSubspaces(
      data, 300, {.min_pts = 10, .max_dimensions = 3, .lof_threshold = 2.0});
  ASSERT_TRUE(result.ok());
  // {2} explains the point, so {0,2}, {1,2}, {0,1,2} must be pruned.
  for (const SubspaceExplanation& e : *result) {
    if (e.dimensions.size() > 1) {
      EXPECT_EQ(std::find(e.dimensions.begin(), e.dimensions.end(),
                          size_t{2}),
                e.dimensions.end())
          << "superset of {2} not pruned";
    }
  }
}

TEST(SubspaceTest, InlierHasNoExplanation) {
  Rng rng(93);
  Dataset data = SingleDimensionOutlier(rng);
  auto result = FindOutlyingSubspaces(
      data, 5, {.min_pts = 10, .max_dimensions = 2, .lof_threshold = 2.0});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(SubspaceTest, TwoDimensionalJointOutlier) {
  // A point outlying only in the JOINT space of dims (0,1): marginally it
  // hides inside both 1-d distributions (a correlation-breaking point).
  Rng rng(94);
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  std::vector<double> p(2);
  for (int i = 0; i < 400; ++i) {
    const double t = rng.Uniform(0, 1);
    p = {t + rng.Gaussian(0, 0.01), t + rng.Gaussian(0, 0.01)};  // x ~ y
    ASSERT_TRUE(ds->Append(p).ok());
  }
  p = {0.2, 0.8};  // each coordinate common, the combination is not
  const size_t planted = ds->size();
  ASSERT_TRUE(ds->Append(p, "planted").ok());
  auto result = FindOutlyingSubspaces(
      *ds, planted,
      {.min_pts = 10, .max_dimensions = 2, .lof_threshold = 2.0});
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->empty());
  EXPECT_EQ((*result)[0].dimensions, (std::vector<size_t>{0, 1}));
}

TEST(SubspaceTest, RejectsBadArguments) {
  Rng rng(95);
  Dataset data = SingleDimensionOutlier(rng);
  EXPECT_FALSE(FindOutlyingSubspaces(data, 9999, {}).ok());
  EXPECT_FALSE(
      FindOutlyingSubspaces(data, 0, {.min_pts = 0}).ok());
  EXPECT_FALSE(
      FindOutlyingSubspaces(data, 0, {.min_pts = 10, .max_dimensions = 0})
          .ok());
}

TEST(ProjectTest, ExtractsAndReordersColumns) {
  auto ds = Dataset::FromRowMajor(3, {1, 2, 3, 4, 5, 6});
  ASSERT_TRUE(ds.ok());
  const std::vector<size_t> dims = {2, 0};
  auto projected = ds->Project(dims);
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->dimension(), 2u);
  EXPECT_DOUBLE_EQ(projected->point(0)[0], 3.0);
  EXPECT_DOUBLE_EQ(projected->point(0)[1], 1.0);
  EXPECT_DOUBLE_EQ(projected->point(1)[0], 6.0);
  const std::vector<size_t> bad = {7};
  EXPECT_FALSE(ds->Project(bad).ok());
  const std::vector<size_t> empty;
  EXPECT_FALSE(ds->Project(empty).ok());
}

}  // namespace
}  // namespace lofkit
