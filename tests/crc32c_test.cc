#include "common/crc32c.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace lofkit {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // The RFC 3720 check value for the Castagnoli polynomial.
  const char* digits = "123456789";
  EXPECT_EQ(Crc32c::Value(digits, 9), 0xE3069283u);
  // Empty input is the identity.
  EXPECT_EQ(Crc32c::Value(nullptr, 0), 0u);
  EXPECT_EQ(Crc32c::Value("", 0), 0u);
  // 32 zero bytes (an iSCSI test vector).
  std::vector<unsigned char> zeros(32, 0);
  EXPECT_EQ(Crc32c::Value(zeros.data(), zeros.size()), 0x8A9136AAu);
  // 32 0xFF bytes.
  std::vector<unsigned char> ones(32, 0xFF);
  EXPECT_EQ(Crc32c::Value(ones.data(), ones.size()), 0x62A8AB43u);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  std::string data;
  for (int i = 0; i < 1000; ++i) {
    data.push_back(static_cast<char>((i * 131 + 17) & 0xFF));
  }
  const uint32_t one_shot = Crc32c::Value(data.data(), data.size());
  // Every split point must agree with the one-shot value, including the
  // unaligned ones that exercise the slice-by-8 prologue/epilogue.
  for (size_t split : {0u, 1u, 3u, 7u, 8u, 9u, 63u, 64u, 511u, 999u, 1000u}) {
    uint32_t crc = Crc32c::Extend(0, data.data(), split);
    crc = Crc32c::Extend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, one_shot) << "split " << split;
  }
  // Byte-at-a-time too.
  uint32_t crc = 0;
  for (char c : data) crc = Crc32c::Extend(crc, &c, 1);
  EXPECT_EQ(crc, one_shot);
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::string data(256, '\0');
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i);
  }
  const uint32_t clean = Crc32c::Value(data.data(), data.size());
  for (size_t byte = 0; byte < data.size(); byte += 37) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = data;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      EXPECT_NE(Crc32c::Value(corrupt.data(), corrupt.size()), clean)
          << "byte " << byte << " bit " << bit;
    }
  }
}

}  // namespace
}  // namespace lofkit
