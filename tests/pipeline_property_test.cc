// Property sweeps over the full LOF pipeline: for combinations of
// dimension, metric and MinPts, the definitional invariants of sections 4
// and 5 must hold on randomized clustered workloads.

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/kd_tree_index.h"
#include "index/linear_scan_index.h"
#include "lof/lof_bounds.h"
#include "lof/lof_computer.h"
#include "lof/lof_sweep.h"

namespace lofkit {
namespace {

struct PipelineCase {
  size_t dim;
  const Metric* metric;
  size_t min_pts;
};

std::string PipelineCaseName(
    const ::testing::TestParamInfo<PipelineCase>& info) {
  std::string name = "d";
  name += std::to_string(info.param.dim);
  name += "_";
  name += std::string(info.param.metric->name());
  name += "_k";
  name += std::to_string(info.param.min_pts);
  return name;
}

class LofPipelinePropertyTest
    : public ::testing::TestWithParam<PipelineCase> {
 protected:
  void SetUp() override {
    const PipelineCase& param = GetParam();
    Rng rng(9000 + param.dim * 31 + param.min_pts);
    auto data = generators::MakePerformanceWorkload(rng, param.dim, 300, 4);
    ASSERT_TRUE(data.ok());
    data_.emplace(std::move(data).value());
    ASSERT_TRUE(index_.Build(*data_, *param.metric).ok());
    auto m = NeighborhoodMaterializer::Materialize(*data_, index_,
                                                   param.min_pts);
    ASSERT_TRUE(m.ok());
    m_.emplace(std::move(m).value());
    auto scores = LofComputer::Compute(*m_, param.min_pts);
    ASSERT_TRUE(scores.ok());
    scores_.emplace(std::move(scores).value());
  }

  std::optional<Dataset> data_;
  LinearScanIndex index_;
  std::optional<NeighborhoodMaterializer> m_;
  std::optional<LofScores> scores_;
};

TEST_P(LofPipelinePropertyTest, ScoresArePositiveAndFinite) {
  // Continuous random data has no duplicates, so no degeneracy can occur.
  EXPECT_FALSE(scores_->has_infinite_lrd);
  for (size_t i = 0; i < scores_->lof.size(); ++i) {
    EXPECT_TRUE(std::isfinite(scores_->lof[i])) << i;
    EXPECT_GT(scores_->lof[i], 0.0) << i;
    EXPECT_TRUE(std::isfinite(scores_->lrd[i])) << i;
    EXPECT_GT(scores_->lrd[i], 0.0) << i;
  }
}

TEST_P(LofPipelinePropertyTest, LrdIsInverseMeanReachability) {
  // Definition 6 re-derived from the raw materialization, independent of
  // the LofComputer implementation path.
  const size_t min_pts = GetParam().min_pts;
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t i = rng.UniformU64(data_->size());
    auto view = m_->View(i, min_pts);
    ASSERT_TRUE(view.ok());
    double sum = 0.0;
    for (const Neighbor& o : view->neighborhood) {
      auto o_view = m_->View(o.index, min_pts);
      ASSERT_TRUE(o_view.ok());
      sum += std::max(o_view->k_distance, o.distance);
    }
    const double expected =
        static_cast<double>(view->neighborhood.size()) / sum;
    EXPECT_NEAR(scores_->lrd[i], expected, 1e-12 * expected);
  }
}

TEST_P(LofPipelinePropertyTest, Theorem1BoundsBracketEveryScore) {
  const size_t min_pts = GetParam().min_pts;
  Rng rng(2);
  for (int trial = 0; trial < 15; ++trial) {
    const size_t i = rng.UniformU64(data_->size());
    auto stats = ComputeNeighborhoodStats(*m_, i, min_pts);
    ASSERT_TRUE(stats.ok());
    const LofBoundEstimate bounds = Theorem1Bounds(*stats);
    EXPECT_LE(bounds.lower, scores_->lof[i] * (1 + 1e-9)) << "point " << i;
    EXPECT_GE(bounds.upper, scores_->lof[i] * (1 - 1e-9)) << "point " << i;
  }
}

TEST_P(LofPipelinePropertyTest, ReachDistanceIsAtLeastKDistanceOfNeighbor) {
  // Definition 5 lower bound, and monotonicity of k-distance in k.
  const size_t min_pts = GetParam().min_pts;
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t i = rng.UniformU64(data_->size());
    if (min_pts >= 2) {
      auto lower = m_->View(i, min_pts - 1);
      auto upper = m_->View(i, min_pts);
      ASSERT_TRUE(lower.ok() && upper.ok());
      EXPECT_LE(lower->k_distance, upper->k_distance);
      EXPECT_LE(lower->neighborhood.size(), upper->neighborhood.size());
    }
    auto view = m_->View(i, min_pts);
    ASSERT_TRUE(view.ok());
    // The k-distance equals the distance of the farthest neighborhood
    // member (Definition 3/4 consistency).
    EXPECT_DOUBLE_EQ(view->k_distance, view->neighborhood.back().distance);
    EXPECT_GE(view->neighborhood.size(), min_pts);
  }
}

TEST_P(LofPipelinePropertyTest, DistinctModeIsIdentityWithoutDuplicates) {
  const PipelineCase& param = GetParam();
  auto distinct_m = NeighborhoodMaterializer::Materialize(
      *data_, index_, param.min_pts, /*distinct=*/true);
  ASSERT_TRUE(distinct_m.ok());
  auto distinct_scores = LofComputer::Compute(*distinct_m, param.min_pts);
  ASSERT_TRUE(distinct_scores.ok());
  for (size_t i = 0; i < scores_->lof.size(); ++i) {
    ASSERT_DOUBLE_EQ(distinct_scores->lof[i], scores_->lof[i]) << i;
  }
}

TEST_P(LofPipelinePropertyTest, TreeEngineReproducesScores) {
  const PipelineCase& param = GetParam();
  KdTreeIndex tree;
  ASSERT_TRUE(tree.Build(*data_, *param.metric).ok());
  auto m = NeighborhoodMaterializer::Materialize(*data_, tree,
                                                 param.min_pts);
  ASSERT_TRUE(m.ok());
  auto scores = LofComputer::Compute(*m, param.min_pts);
  ASSERT_TRUE(scores.ok());
  for (size_t i = 0; i < scores->lof.size(); ++i) {
    ASSERT_DOUBLE_EQ(scores->lof[i], scores_->lof[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LofPipelinePropertyTest,
    ::testing::Values(PipelineCase{2, &Euclidean(), 5},
                      PipelineCase{2, &Euclidean(), 20},
                      PipelineCase{2, &Manhattan(), 10},
                      PipelineCase{3, &Euclidean(), 10},
                      PipelineCase{3, &Chebyshev(), 10},
                      PipelineCase{5, &Euclidean(), 15},
                      PipelineCase{8, &Euclidean(), 10},
                      PipelineCase{8, &Manhattan(), 25}),
    PipelineCaseName);

// Degenerate-but-legal inputs must stay well defined.
TEST(LofPipelineEdgeTest, TwoPointDataset) {
  auto ds = Dataset::FromRowMajor(1, {0.0, 1.0});
  ASSERT_TRUE(ds.ok());
  auto scores = LofComputer::ComputeFromScratch(*ds, Euclidean(), 1);
  ASSERT_TRUE(scores.ok());
  // Each point's only neighbor is the other: perfectly symmetric, LOF 1.
  EXPECT_DOUBLE_EQ(scores->lof[0], 1.0);
  EXPECT_DOUBLE_EQ(scores->lof[1], 1.0);
}

TEST(LofPipelineEdgeTest, MinPtsEqualsNMinusOne) {
  Rng rng(10);
  auto ds = generators::MakePerformanceWorkload(rng, 2, 30, 2);
  ASSERT_TRUE(ds.ok());
  auto scores = LofComputer::ComputeFromScratch(*ds, Euclidean(), 29);
  ASSERT_TRUE(scores.ok());
  for (double lof : scores->lof) {
    EXPECT_TRUE(std::isfinite(lof));
  }
}

TEST(LofPipelineEdgeTest, AllPointsIdentical) {
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  const double p[2] = {3.0, 3.0};
  ASSERT_TRUE(generators::AppendDuplicates(*ds, p, 10).ok());
  auto scores = LofComputer::ComputeFromScratch(*ds, Euclidean(), 3);
  ASSERT_TRUE(scores.ok());
  // Everyone infinitely dense, everyone LOF 1 by the inf/inf convention.
  EXPECT_TRUE(scores->has_infinite_lrd);
  for (double lof : scores->lof) {
    EXPECT_DOUBLE_EQ(lof, 1.0);
  }
}

// The prune-first top-N path is an optimization, never an approximation:
// for any MinPts range, thread count, and workload — including duplicated
// rows, where unsafe bound fallbacks used to mis-certify — the pruned
// ranking must be bit-identical to the full sweep's.
TEST(LofPipelinePruneTest, PrunedRankingMatchesFullAcrossRangesAndThreads) {
  Rng rng(77);
  auto data = generators::MakePerformanceWorkload(rng, 2, 400, 4);
  ASSERT_TRUE(data.ok());
  const double far1[2] = {120.0, 120.0};
  const double far2[2] = {-80.0, 140.0};
  ASSERT_TRUE(data->Append(far1, "outlier").ok());
  ASSERT_TRUE(data->Append(far2, "outlier").ok());
  const double pile[2] = {60.0, -60.0};
  ASSERT_TRUE(generators::AppendDuplicates(*data, pile, 8).ok());
  const size_t top_n = 10;
  const struct { size_t lb, ub; } ranges[] = {{3, 3}, {2, 8}, {5, 12}};
  for (const auto& range : ranges) {
    LofPipelineOptions baseline;
    auto full = LofSweep::RankOutliers(*data, Euclidean(), range.lb,
                                       range.ub, top_n,
                                       IndexKind::kLinearScan,
                                       LofAggregation::kMax, 1, baseline);
    ASSERT_TRUE(full.ok());
    for (size_t threads : {1u, 2u, 7u}) {
      LofSweepResult::PruneSummary summary;
      LofPipelineOptions options;
      options.prune = true;
      options.prune_summary = &summary;
      auto pruned = LofSweep::RankOutliers(
          *data, Euclidean(), range.lb, range.ub, top_n,
          IndexKind::kLinearScan, LofAggregation::kMax, threads, options);
      ASSERT_TRUE(pruned.ok()) << pruned.status().message();
      EXPECT_TRUE(summary.applied);
      EXPECT_GE(summary.survivors, top_n);
      ASSERT_EQ(pruned->size(), full->size());
      for (size_t r = 0; r < full->size(); ++r) {
        EXPECT_EQ((*pruned)[r].index, (*full)[r].index)
            << "range [" << range.lb << ", " << range.ub << "] threads "
            << threads << " rank " << r;
        EXPECT_EQ((*pruned)[r].score, (*full)[r].score)
            << "range [" << range.lb << ", " << range.ub << "] threads "
            << threads << " rank " << r;
      }
    }
  }
}

TEST(LofPipelinePruneTest, BudgetDegradationOverridesPruningSafely) {
  // A memory budget that forces the re-query path composes with --prune:
  // the bound stage needs the materialization, so pruning is skipped, the
  // summary says so, and the ranking still matches the unbudgeted one.
  Rng rng(78);
  auto data = generators::MakePerformanceWorkload(rng, 2, 300, 4);
  ASSERT_TRUE(data.ok());
  const size_t top_n = 5;
  LofPipelineOptions baseline;
  auto full = LofSweep::RankOutliers(*data, Euclidean(), 3, 6, top_n,
                                     IndexKind::kLinearScan,
                                     LofAggregation::kMax, 1, baseline);
  ASSERT_TRUE(full.ok());
  LofSweepResult::PruneSummary summary;
  summary.applied = true;  // must be reset by the pipeline
  bool degraded = false;
  LofPipelineOptions options;
  options.prune = true;
  options.prune_summary = &summary;
  options.degraded_to_requery = &degraded;
  options.memory_budget_bytes = 1;
  auto pruned = LofSweep::RankOutliers(*data, Euclidean(), 3, 6, top_n,
                                       IndexKind::kLinearScan,
                                       LofAggregation::kMax, 1, options);
  ASSERT_TRUE(pruned.ok()) << pruned.status().message();
  EXPECT_TRUE(degraded);
  EXPECT_FALSE(summary.applied);
  ASSERT_EQ(pruned->size(), full->size());
  for (size_t r = 0; r < full->size(); ++r) {
    EXPECT_EQ((*pruned)[r].index, (*full)[r].index) << r;
    EXPECT_EQ((*pruned)[r].score, (*full)[r].score) << r;
  }
}

TEST(LofPipelinePruneTest, PruneWithoutTopNIsRejected) {
  Rng rng(79);
  auto data = generators::MakePerformanceWorkload(rng, 2, 50, 2);
  ASSERT_TRUE(data.ok());
  LofPipelineOptions options;
  options.prune = true;
  EXPECT_EQ(LofSweep::RankOutliers(*data, Euclidean(), 2, 4, /*top_n=*/0,
                                   IndexKind::kLinearScan,
                                   LofAggregation::kMax, 1, options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(LofPipelineEdgeTest, CollinearPoints) {
  // Degenerate geometry (zero-area bounding boxes) must not break any
  // engine.
  std::vector<double> values;
  for (int i = 0; i < 50; ++i) {
    values.push_back(static_cast<double>(i));
    values.push_back(0.0);
  }
  auto ds = Dataset::FromRowMajor(2, std::move(values));
  ASSERT_TRUE(ds.ok());
  for (IndexKind kind : AllIndexKinds()) {
    auto scores = LofComputer::ComputeFromScratch(*ds, Euclidean(), 5, kind);
    ASSERT_TRUE(scores.ok()) << IndexKindName(kind);
    for (double lof : scores->lof) {
      EXPECT_TRUE(std::isfinite(lof)) << IndexKindName(kind);
    }
  }
}

}  // namespace
}  // namespace lofkit
