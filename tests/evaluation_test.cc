#include "lof/evaluation.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace lofkit {
namespace {

TEST(EvaluationTest, PerfectRanking) {
  const std::vector<double> scores = {9.0, 8.0, 1.0, 0.5, 0.2};
  const std::vector<bool> labels = {true, true, false, false, false};
  auto q = EvaluateRanking(scores, labels);
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->precision_at_n, 1.0);
  EXPECT_DOUBLE_EQ(q->recall_at_n, 1.0);
  EXPECT_DOUBLE_EQ(q->roc_auc, 1.0);
  EXPECT_DOUBLE_EQ(q->average_precision, 1.0);
}

TEST(EvaluationTest, InvertedRanking) {
  const std::vector<double> scores = {0.1, 0.2, 5.0, 6.0};
  const std::vector<bool> labels = {true, true, false, false};
  auto q = EvaluateRanking(scores, labels);
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->precision_at_n, 0.0);
  EXPECT_DOUBLE_EQ(q->roc_auc, 0.0);
}

TEST(EvaluationTest, HandComputedMixedRanking) {
  // Order by score: [o, i, o, i] -> AUC pairs: first o beats both i (2),
  // second o beats one i (1) => 3 of 4 pairs => 0.75.
  const std::vector<double> scores = {4.0, 3.0, 2.0, 1.0};
  const std::vector<bool> labels = {true, false, true, false};
  auto q = EvaluateRanking(scores, labels);
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->roc_auc, 0.75);
  // precision@2 (n defaults to #positives = 2): top-2 = {o, i} -> 0.5.
  EXPECT_DOUBLE_EQ(q->precision_at_n, 0.5);
  EXPECT_DOUBLE_EQ(q->recall_at_n, 0.5);
  // AP: outlier ranks 1 and 3 -> (1/1 + 2/3)/2 = 5/6.
  EXPECT_NEAR(q->average_precision, 5.0 / 6.0, 1e-12);
}

TEST(EvaluationTest, TiesCountHalfInAuc) {
  // One outlier tied with one inlier, one inlier below.
  const std::vector<double> scores = {2.0, 2.0, 1.0};
  const std::vector<bool> labels = {true, false, false};
  auto q = EvaluateRanking(scores, labels);
  ASSERT_TRUE(q.ok());
  // Pairs: (o, tied i) = 0.5, (o, lower i) = 1 -> 1.5/2 = 0.75.
  EXPECT_DOUBLE_EQ(q->roc_auc, 0.75);
}

TEST(EvaluationTest, AllTiedIsChance) {
  const std::vector<double> scores = {1.0, 1.0, 1.0, 1.0};
  const std::vector<bool> labels = {true, false, true, false};
  auto q = EvaluateRanking(scores, labels);
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->roc_auc, 0.5);
}

TEST(EvaluationTest, ExplicitCutoff) {
  const std::vector<double> scores = {5, 4, 3, 2, 1};
  const std::vector<bool> labels = {true, false, true, false, false};
  auto q = EvaluateRanking(scores, labels, 4);
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->precision_at_n, 0.5);  // 2 of top 4
  EXPECT_DOUBLE_EQ(q->recall_at_n, 1.0);
}

TEST(EvaluationTest, RejectsDegenerateInput) {
  EXPECT_FALSE(EvaluateRanking({{1.0, 2.0}}, {true, true}).ok());
  EXPECT_FALSE(EvaluateRanking({{1.0, 2.0}}, {false, false}).ok());
  EXPECT_FALSE(EvaluateRanking({{1.0}}, {true, false}).ok());
  const std::vector<double> with_nan = {1.0, std::nan("")};
  EXPECT_FALSE(EvaluateRanking(with_nan, {true, false}).ok());
}

TEST(EvaluationTest, InfiniteScoresRankHighest) {
  // Duplicate-degenerate LOF can be +inf; the ranking must remain sane.
  const std::vector<double> scores = {std::numeric_limits<double>::infinity(),
                                      1.0, 0.5};
  const std::vector<bool> labels = {true, false, false};
  auto q = EvaluateRanking(scores, labels);
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->roc_auc, 1.0);
}

}  // namespace
}  // namespace lofkit
