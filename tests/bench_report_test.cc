#include "common/bench_report.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace lofkit {
namespace {

TEST(BenchReportTest, SerializesRowsInOrder) {
  BenchReport report("unit");
  report.Add("case_a", {{"seconds", 1.5}, {"count", 3.0}});
  report.Add("case_b", {{"seconds", 0.25}});
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"bench\": \"unit\""), std::string::npos);
  const size_t a = json.find("case_a");
  const size_t b = json.find("case_b");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_LT(a, b);
}

TEST(BenchReportTest, NonFiniteValuesBecomeNull) {
  BenchReport report("unit");
  report.Add("case", {{"nan", std::nan("")},
                      {"inf", std::numeric_limits<double>::infinity()}});
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"nan\": null"), std::string::npos);
  EXPECT_NE(json.find("\"inf\": null"), std::string::npos);
}

// Regression for the JsonEscape bugfix: case names and metric keys with
// control characters must serialize as valid JSON escapes, never as raw
// bytes inside the quoted string.
TEST(BenchReportTest, EscapesControlCharactersInNamesAndKeys) {
  BenchReport report("unit\tbench");
  report.Add("line1\nline2", {{"key\r", 1.0}, {"quote\"backslash\\", 2.0}});
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("unit\\tbench"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
  EXPECT_NE(json.find("key\\r"), std::string::npos);
  EXPECT_NE(json.find("quote\\\"backslash\\\\"), std::string::npos);
  // No raw control byte may survive inside the document.
  for (char c : json) {
    EXPECT_FALSE(static_cast<unsigned char>(c) < 0x20 && c != '\n')
        << "raw control character in JSON output";
  }
}

}  // namespace
}  // namespace lofkit
