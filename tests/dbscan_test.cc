#include "clustering/dbscan.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/kd_tree_index.h"
#include "index/linear_scan_index.h"

namespace lofkit {
namespace {

Dataset TwoBlobsAndNoise(Rng& rng) {
  auto ds = Dataset::Create(2);
  EXPECT_TRUE(ds.ok());
  const double c1[2] = {0, 0};
  const double c2[2] = {20, 0};
  EXPECT_TRUE(
      generators::AppendGaussianCluster(*ds, rng, c1, 0.5, 100, "a").ok());
  EXPECT_TRUE(
      generators::AppendGaussianCluster(*ds, rng, c2, 0.5, 100, "b").ok());
  const double noise[2] = {10, 10};
  EXPECT_TRUE(ds->Append(noise, "noise").ok());
  return std::move(ds).value();
}

TEST(DbscanTest, FindsTwoClustersAndNoise) {
  Rng rng(61);
  Dataset data = TwoBlobsAndNoise(rng);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto result = Dbscan::Run(data, index, {.eps = 1.0, .min_pts = 5});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 2u);
  EXPECT_EQ(result->cluster_of[200], DbscanResult::kNoise);
  EXPECT_EQ(result->noise_count, 1u);
  // All of blob a shares one id; blob b another.
  for (size_t i = 1; i < 100; ++i) {
    EXPECT_EQ(result->cluster_of[i], result->cluster_of[0]);
  }
  for (size_t i = 101; i < 200; ++i) {
    EXPECT_EQ(result->cluster_of[i], result->cluster_of[100]);
  }
  EXPECT_NE(result->cluster_of[0], result->cluster_of[100]);
}

TEST(DbscanTest, CorePointsAreDenseInteriors) {
  Rng rng(62);
  Dataset data = TwoBlobsAndNoise(rng);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto result = Dbscan::Run(data, index, {.eps = 1.0, .min_pts = 5});
  ASSERT_TRUE(result.ok());
  size_t core = 0;
  for (bool c : result->is_core) {
    if (c) ++core;
  }
  EXPECT_GT(core, 150u);
  EXPECT_FALSE(result->is_core[200]);
}

TEST(DbscanTest, EverythingNoiseWhenEpsTiny) {
  Rng rng(63);
  Dataset data = TwoBlobsAndNoise(rng);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto result = Dbscan::Run(data, index, {.eps = 1e-9, .min_pts = 5});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 0u);
  EXPECT_EQ(result->noise_count, data.size());
}

TEST(DbscanTest, SingleClusterWhenEpsHuge) {
  Rng rng(64);
  Dataset data = TwoBlobsAndNoise(rng);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto result = Dbscan::Run(data, index, {.eps = 100.0, .min_pts = 5});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 1u);
  EXPECT_EQ(result->noise_count, 0u);
}

TEST(DbscanTest, IndexChoiceDoesNotChangeClustering) {
  Rng rng(65);
  Dataset data = TwoBlobsAndNoise(rng);
  LinearScanIndex scan;
  KdTreeIndex tree;
  ASSERT_TRUE(scan.Build(data, Euclidean()).ok());
  ASSERT_TRUE(tree.Build(data, Euclidean()).ok());
  auto a = Dbscan::Run(data, scan, {.eps = 1.0, .min_pts = 5});
  auto b = Dbscan::Run(data, tree, {.eps = 1.0, .min_pts = 5});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->cluster_of, b->cluster_of);
}

TEST(DbscanTest, RejectsBadParameters) {
  Rng rng(66);
  Dataset data = TwoBlobsAndNoise(rng);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  EXPECT_FALSE(Dbscan::Run(data, index, {.eps = -1.0, .min_pts = 5}).ok());
  EXPECT_FALSE(Dbscan::Run(data, index, {.eps = 1.0, .min_pts = 0}).ok());
  auto empty = Dataset::Create(2);
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(Dbscan::Run(*empty, index, {.eps = 1.0, .min_pts = 5}).ok());
}

}  // namespace
}  // namespace lofkit
