#include "dataset/distance_kernels.h"

#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "dataset/dataset.h"
#include "dataset/metric.h"
#include "dataset/point_block.h"
#include "index/kd_tree_index.h"
#include "index/linear_scan_index.h"

namespace lofkit {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// The dimensions exercise the interesting boundaries of the blocked and
// strided loops: scalar (1), tiny (2), one early-exit stride (8), and the
// 64-d neighborhood of the paper's histogram experiments, straddling a
// vector-width multiple (63/64/65).
const size_t kDims[] = {1, 2, 8, 63, 64, 65};

enum class MetricKind {
  kEuclidean,
  kManhattan,
  kChebyshev,
  kMinkowski,
  kWeightedEuclidean,
};

struct KernelCase {
  MetricKind kind;
  size_t dim;
};

std::string CaseName(const testing::TestParamInfo<KernelCase>& info) {
  const char* metric = nullptr;
  switch (info.param.kind) {
    case MetricKind::kEuclidean: metric = "euclidean"; break;
    case MetricKind::kManhattan: metric = "manhattan"; break;
    case MetricKind::kChebyshev: metric = "chebyshev"; break;
    case MetricKind::kMinkowski: metric = "minkowski"; break;
    case MetricKind::kWeightedEuclidean: metric = "weighted"; break;
  }
  return std::string(metric) + "_d" + std::to_string(info.param.dim);
}

std::vector<KernelCase> AllCases() {
  std::vector<KernelCase> cases;
  for (MetricKind kind :
       {MetricKind::kEuclidean, MetricKind::kManhattan,
        MetricKind::kChebyshev, MetricKind::kMinkowski,
        MetricKind::kWeightedEuclidean}) {
    for (size_t dim : kDims) cases.push_back(KernelCase{kind, dim});
  }
  return cases;
}

class DistanceKernelsTest : public testing::TestWithParam<KernelCase> {
 protected:
  void SetUp() override {
    const size_t dim = GetParam().dim;
    switch (GetParam().kind) {
      case MetricKind::kEuclidean:
        metric_ = &Euclidean();
        break;
      case MetricKind::kManhattan:
        metric_ = &Manhattan();
        break;
      case MetricKind::kChebyshev:
        metric_ = &Chebyshev();
        break;
      case MetricKind::kMinkowski: {
        auto m = MinkowskiMetric::Create(2.5);
        ASSERT_TRUE(m.ok());
        minkowski_ = std::make_unique<MinkowskiMetric>(*std::move(m));
        metric_ = minkowski_.get();
        break;
      }
      case MetricKind::kWeightedEuclidean: {
        std::vector<double> weights(dim);
        for (size_t i = 0; i < dim; ++i) {
          weights[i] = 0.25 + static_cast<double>(i % 7) * 0.5;
        }
        auto m = WeightedEuclideanMetric::Create(std::move(weights));
        ASSERT_TRUE(m.ok());
        weighted_ = std::make_unique<WeightedEuclideanMetric>(*std::move(m));
        metric_ = weighted_.get();
        break;
      }
    }

    // NaN/infinity-free randomized inputs: 2 full blocks plus a partial
    // one so the padding lanes are exercised too.
    Rng rng(0x10f5eed + 17 * GetParam().dim);
    const size_t n = 2 * PointBlockView::kLanes + 3;
    auto data = Dataset::Create(dim);
    ASSERT_TRUE(data.ok());
    data_.emplace(*std::move(data));
    std::vector<double> point(dim);
    for (size_t i = 0; i < n; ++i) {
      for (size_t d = 0; d < dim; ++d) point[d] = rng.Uniform(-10.0, 10.0);
      ASSERT_TRUE(data_->Append(point).ok());
    }
    query_.resize(dim);
    for (size_t d = 0; d < dim; ++d) query_[d] = rng.Uniform(-10.0, 10.0);
  }

  const Metric& metric() const { return *metric_; }
  const Dataset& data() const { return *data_; }

  const Metric* metric_ = nullptr;
  std::unique_ptr<MinkowskiMetric> minkowski_;
  std::unique_ptr<WeightedEuclideanMetric> weighted_;
  std::optional<Dataset> data_;
  std::vector<double> query_;
};

TEST_P(DistanceKernelsTest, BatchDistanceIsBitIdenticalToDistance) {
  const auto view = data().blocks();
  std::vector<double> out(PointBlockView::kLanes);
  for (size_t b = 0; b < view->num_blocks(); ++b) {
    metric().BatchDistance(query_, *view, b, out);
    for (size_t j = 0; j < PointBlockView::kLanes; ++j) {
      const uint32_t id = view->id(b * PointBlockView::kLanes + j);
      if (id == PointBlockView::kPaddingId) continue;
      EXPECT_EQ(out[j], metric().Distance(query_, data().point(id)))
          << "block " << b << " lane " << j;
    }
  }
}

TEST_P(DistanceKernelsTest, RankOneMatchesRankDistanceAndDistance) {
  const DistanceKernels kern = metric().kernels();
  EXPECT_EQ(kern.squared, metric().squared_rank());
  for (size_t i = 0; i < data().size(); ++i) {
    const auto p = data().point(i);
    const double rank =
        kern.rank_one(kern.ctx, query_.data(), p.data(), p.size());
    EXPECT_EQ(rank, metric().RankDistance(query_, p)) << "point " << i;
    EXPECT_EQ(DistanceFromRank(kern.squared, rank),
              metric().Distance(query_, p))
        << "point " << i;
  }
}

TEST_P(DistanceKernelsTest, RankBoundedIsExactAtTheBound) {
  const DistanceKernels kern = metric().kernels();
  for (size_t i = 0; i < data().size(); ++i) {
    const auto p = data().point(i);
    const double exact =
        kern.rank_one(kern.ctx, query_.data(), p.data(), p.size());
    // Exact tie at the bound (the kth-distance case): a candidate whose
    // rank equals the pruning bound must come back exact, never +inf —
    // dropping it would lose the tie.
    EXPECT_EQ(kern.rank_bounded(kern.ctx, query_.data(), p.data(), p.size(),
                                exact),
              exact)
        << "point " << i;
    EXPECT_EQ(kern.rank_bounded(kern.ctx, query_.data(), p.data(), p.size(),
                                kInf),
              exact)
        << "point " << i;
    // Below the bound the kernel may abandon, but only to +inf; a caller
    // rejecting rank > bound sees the same outcome either way.
    const double tight = kern.rank_bounded(kern.ctx, query_.data(), p.data(),
                                           p.size(), exact * 0.5);
    EXPECT_TRUE(tight == exact || tight == kInf)
        << "point " << i << " returned " << tight << ", exact " << exact;
  }
}

TEST_P(DistanceKernelsTest, RankBlockMatchesRankOne) {
  const DistanceKernels kern = metric().kernels();
  const auto view = data().blocks();
  std::vector<double> out(PointBlockView::kLanes);
  for (size_t b = 0; b < view->num_blocks(); ++b) {
    kern.rank_block(kern.ctx, query_.data(), view->block(b),
                    view->dimension(), out.data());
    for (size_t j = 0; j < PointBlockView::kLanes; ++j) {
      const uint32_t id = view->id(b * PointBlockView::kLanes + j);
      if (id == PointBlockView::kPaddingId) continue;
      const auto p = data().point(id);
      EXPECT_EQ(out[j],
                kern.rank_one(kern.ctx, query_.data(), p.data(), p.size()))
          << "block " << b << " lane " << j;
    }
  }
}

TEST_P(DistanceKernelsTest, RankGatherMatchesRankOne) {
  const DistanceKernels kern = metric().kernels();
  // A shuffled subset, as the grid buckets and R*-tree leaves produce.
  std::vector<uint32_t> ids(data().size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<uint32_t>(i);
  Rng rng(99);
  rng.Shuffle(ids);
  ids.resize(data().size() / 2 + 1);

  std::vector<double> exact(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    const auto p = data().point(ids[i]);
    exact[i] = kern.rank_one(kern.ctx, query_.data(), p.data(), p.size());
  }

  std::vector<double> out(ids.size());
  const double* raw = data().raw().data();
  kern.rank_gather(kern.ctx, query_.data(), raw, ids.data(), ids.size(),
                   data().dimension(), kInf, out.data());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(out[i], exact[i]) << "gather lane " << i;
  }

  // Bounded gather: exact at or below the bound, exact-or-inf above it.
  const double bound = exact[ids.size() / 2];
  kern.rank_gather(kern.ctx, query_.data(), raw, ids.data(), ids.size(),
                   data().dimension(), bound, out.data());
  for (size_t i = 0; i < ids.size(); ++i) {
    if (exact[i] <= bound) {
      EXPECT_EQ(out[i], exact[i]) << "gather lane " << i;
    } else {
      EXPECT_TRUE(out[i] == exact[i] || out[i] == kInf)
          << "gather lane " << i << " returned " << out[i];
    }
  }
}

TEST_P(DistanceKernelsTest, BoxRankBoundsMatchDistanceBounds) {
  const bool squared = metric().squared_rank();
  const std::vector<double> lo = data().Min();
  const std::vector<double> hi = data().Max();
  EXPECT_EQ(DistanceFromRank(squared, metric().MinRankToBox(query_, lo, hi)),
            metric().MinDistanceToBox(query_, lo, hi));
  EXPECT_EQ(DistanceFromRank(squared, metric().MaxRankToBox(query_, lo, hi)),
            metric().MaxDistanceToBox(query_, lo, hi));
}

TEST_P(DistanceKernelsTest, RankBoxIsBitIdenticalToMinRankToBox) {
  const DistanceKernels kern = metric().kernels();
  ASSERT_NE(kern.rank_box, nullptr);
  Rng rng(0xb0c5 + GetParam().dim);
  const size_t dim = data().dimension();
  std::vector<double> lo(dim);
  std::vector<double> hi(dim);
  for (int round = 0; round < 16; ++round) {
    for (size_t d = 0; d < dim; ++d) {
      const double a = rng.Uniform(-10.0, 10.0);
      const double b = rng.Uniform(-10.0, 10.0);
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
    }
    EXPECT_EQ(kern.rank_box(kern.ctx, query_.data(), lo.data(), hi.data(),
                            dim),
              metric().MinRankToBox(query_, lo, hi))
        << "round " << round;
  }
}

TEST_P(DistanceKernelsTest, RankCutLowerBoundsEveryPointBeyondThePlane) {
  const DistanceKernels kern = metric().kernels();
  ASSERT_NE(kern.rank_cut, nullptr);
  // For each split (dim, value), every point on the far side of the plane
  // from the query must rank at least rank_cut away: the admissibility
  // contract the kd-forest's O(1) descend gate relies on.
  const size_t dim = data().dimension();
  Rng rng(0xc07 + dim);
  for (int round = 0; round < 8; ++round) {
    const size_t s = rng.UniformU64(dim);
    const double v = rng.Uniform(-10.0, 10.0);
    const double cut = kern.rank_cut(kern.ctx, query_[s], v, s);
    EXPECT_GE(cut, 0.0);
    for (size_t i = 0; i < data().size(); ++i) {
      const auto p = data().point(i);
      const bool query_below = query_[s] < v;
      const bool point_beyond = query_below ? p[s] >= v : p[s] <= v;
      if (!point_beyond) continue;
      const double rank =
          kern.rank_one(kern.ctx, query_.data(), p.data(), p.size());
      EXPECT_LE(cut, rank) << "dim " << s << " cut " << v << " point " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, DistanceKernelsTest,
                         testing::ValuesIn(AllCases()), CaseName);

// An external Metric subclass that overrides nothing beyond the required
// virtuals must still get a correct kernel bundle from the default
// trampolines — rank space degenerates to plain distance space.
class Taxicabish final : public Metric {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override {
    double sum = 0.0;
    for (size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
    return sum;
  }
  double MinDistanceToBox(std::span<const double> q,
                          std::span<const double> lo,
                          std::span<const double> hi) const override {
    double sum = 0.0;
    for (size_t i = 0; i < q.size(); ++i) {
      if (q[i] < lo[i]) sum += lo[i] - q[i];
      if (q[i] > hi[i]) sum += q[i] - hi[i];
    }
    return sum;
  }
  double MaxDistanceToBox(std::span<const double> q,
                          std::span<const double> lo,
                          std::span<const double> hi) const override {
    double sum = 0.0;
    for (size_t i = 0; i < q.size(); ++i) {
      sum += std::max(std::abs(q[i] - lo[i]), std::abs(q[i] - hi[i]));
    }
    return sum;
  }
  std::string_view name() const override { return "taxicabish"; }
};

TEST(DistanceKernelsDefaultsTest, TrampolinesMatchTheVirtuals) {
  Taxicabish metric;
  const DistanceKernels kern = metric.kernels();
  EXPECT_FALSE(kern.squared);

  Rng rng(7);
  auto data_or = Dataset::Create(5);
  ASSERT_TRUE(data_or.ok());
  Dataset& data = *data_or;
  std::vector<double> point(5);
  for (size_t i = 0; i < 2 * PointBlockView::kLanes; ++i) {
    for (double& c : point) c = rng.Uniform(-3.0, 3.0);
    ASSERT_TRUE(data.Append(point).ok());
  }
  std::vector<double> query(5);
  for (double& c : query) c = rng.Uniform(-3.0, 3.0);

  for (size_t i = 0; i < data.size(); ++i) {
    const auto p = data.point(i);
    EXPECT_EQ(kern.rank_one(kern.ctx, query.data(), p.data(), p.size()),
              metric.Distance(query, p));
    EXPECT_EQ(
        kern.rank_bounded(kern.ctx, query.data(), p.data(), p.size(), 0.0),
        metric.Distance(query, p));
  }

  const auto view = data.blocks();
  std::vector<double> out(PointBlockView::kLanes);
  for (size_t b = 0; b < view->num_blocks(); ++b) {
    kern.rank_block(kern.ctx, query.data(), view->block(b), view->dimension(),
                    out.data());
    for (size_t j = 0; j < PointBlockView::kLanes; ++j) {
      const uint32_t id = view->id(b * PointBlockView::kLanes + j);
      if (id == PointBlockView::kPaddingId) continue;
      EXPECT_EQ(out[j], metric.Distance(query, data.point(id)));
    }
  }

  std::vector<uint32_t> ids = {3, 0, 7, 12};
  std::vector<double> gathered(ids.size());
  kern.rank_gather(kern.ctx, query.data(), data.raw().data(), ids.data(),
                   ids.size(), data.dimension(), 0.0, gathered.data());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(gathered[i], metric.Distance(query, data.point(ids[i])));
  }

  // The box trampoline routes through the virtual bound; the cut
  // trampoline is the never-firing (always admissible) zero gate.
  const std::vector<double> lo = {-1.0, -1.0, -1.0, -1.0, -1.0};
  const std::vector<double> hi = {1.0, 1.0, 1.0, 1.0, 1.0};
  ASSERT_NE(kern.rank_box, nullptr);
  ASSERT_NE(kern.rank_cut, nullptr);
  EXPECT_EQ(kern.rank_box(kern.ctx, query.data(), lo.data(), hi.data(), 5),
            metric.MinRankToBox(query, lo, hi));
  EXPECT_EQ(kern.rank_cut(kern.ctx, query[0], 0.5, 0), 0.0);
}

// Ties exactly at the kth distance must survive the squared-rank path:
// (3,4), (5,0) and (0,-5) are all at Euclidean distance 5 — and at
// *exactly* tied rank 25 — from the origin, so k = 1 must return all
// three from every kernel-path engine.
TEST(DistanceKernelsDefaultsTest, SquaredRankPreservesExactKthDistanceTies) {
  auto data_or = Dataset::Create(2);
  ASSERT_TRUE(data_or.ok());
  Dataset& data = *data_or;
  const std::vector<std::vector<double>> points = {
      {3.0, 4.0}, {5.0, 0.0}, {0.0, -5.0}, {40.0, 40.0}};
  for (const auto& p : points) ASSERT_TRUE(data.Append(p).ok());

  const std::vector<double> origin = {0.0, 0.0};
  for (const bool use_kd : {false, true}) {
    LinearScanIndex scan;
    KdTreeIndex kd;
    KnnIndex& index =
        use_kd ? static_cast<KnnIndex&>(kd) : static_cast<KnnIndex&>(scan);
    ASSERT_TRUE(index.Build(data, Euclidean()).ok());
    auto result = index.Query(origin, 1);
    ASSERT_TRUE(result.ok()) << index.name();
    ASSERT_EQ(result->size(), 3u) << index.name();
    for (const Neighbor& n : *result) {
      EXPECT_EQ(n.distance, 5.0) << index.name();
    }
  }
}

}  // namespace
}  // namespace lofkit
