#include "common/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace lofkit {
namespace {

TEST(CsvTest, ParsesSimpleTable) {
  auto table = ParseCsv("1,2\n3,4\n");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[0], (std::vector<double>{1, 2}));
  EXPECT_EQ(table->rows[1], (std::vector<double>{3, 4}));
  EXPECT_TRUE(table->header.empty());
}

TEST(CsvTest, ParsesHeader) {
  CsvReadOptions options;
  options.has_header = true;
  auto table = ParseCsv("x,y\n1,2\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header, (std::vector<std::string>{"x", "y"}));
  ASSERT_EQ(table->rows.size(), 1u);
}

TEST(CsvTest, SkipsCommentsAndBlankLines) {
  auto table = ParseCsv("# comment\n\n1,2\n\n# more\n3,4\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows.size(), 2u);
}

TEST(CsvTest, RejectsRaggedRows) {
  auto table = ParseCsv("1,2\n3\n");
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RejectsNonNumericField) {
  auto table = ParseCsv("1,banana\n");
  ASSERT_FALSE(table.ok());
}

TEST(CsvTest, CustomSeparator) {
  CsvReadOptions options;
  options.separator = ';';
  auto table = ParseCsv("1;2\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0], (std::vector<double>{1, 2}));
}

TEST(CsvTest, RoundTripsThroughWrite) {
  CsvTable table;
  table.header = {"a", "b"};
  table.rows = {{1.25, -3.5}, {0.1, 1e9}};
  const std::string text = WriteCsv(table);
  CsvReadOptions options;
  options.has_header = true;
  auto parsed = ParseCsv(text, options);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header, table.header);
  EXPECT_EQ(parsed->rows, table.rows);
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/lofkit_csv_test.csv";
  CsvTable table;
  table.rows = {{1, 2}, {3, 4}};
  ASSERT_TRUE(WriteCsvFile(path, table).ok());
  auto parsed = ReadCsvFile(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->rows, table.rows);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIoError) {
  auto table = ReadCsvFile("/nonexistent/path/data.csv");
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace lofkit
