// End-to-end observability wiring: span-name parity between the
// materialized and re-query sweep routes, flight-recorder capture on both
// query sites, progress accounting, and the bit-identity guarantee —
// arming every observer sink must never change a score bit at any thread
// count.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/linear_scan_index.h"
#include "lof/lof_sweep.h"

namespace lofkit {
namespace {

Dataset MakeData(size_t n) {
  Rng rng(77);
  auto ds = generators::MakePerformanceWorkload(rng, 3, n, 4);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

// Span names matching `prefix`, sorted (the trace interleaving is
// thread-dependent; the name set is not).
std::vector<std::string> SpanNames(const TraceRecorder& trace,
                                   const std::string& prefix) {
  const std::string json = trace.ToJson();
  std::vector<std::string> names;
  const std::string marker = "\"name\": \"";
  for (size_t at = json.find(marker); at != std::string::npos;
       at = json.find(marker, at + 1)) {
    const size_t start = at + marker.size();
    const size_t end = json.find('"', start);
    const std::string name = json.substr(start, end - start);
    if (name.compare(0, prefix.size(), prefix) == 0) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

// Satellite parity requirement: a dashboard built against the materialized
// route's span names must keep working when a memory budget degrades the
// run to the re-query route.
TEST(PipelineObservabilityTest, SweepStepSpanNamesMatchAcrossRoutes) {
  constexpr size_t kLb = 3, kUb = 7;
  Dataset data = MakeData(250);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());

  TraceRecorder materialized_trace;
  {
    PipelineObserver observer;
    observer.trace = &materialized_trace;
    auto m = NeighborhoodMaterializer::MaterializeParallel(
        data, index, kUb, /*threads=*/2, /*distinct_neighbors=*/false,
        observer);
    ASSERT_TRUE(m.ok());
    ASSERT_TRUE(LofSweep::Run(*m, kLb, kUb, LofAggregation::kMax,
                              /*keep_per_min_pts=*/false, /*threads=*/2,
                              observer)
                    .ok());
  }

  TraceRecorder requery_trace;
  {
    PipelineObserver observer;
    observer.trace = &requery_trace;
    ASSERT_TRUE(LofSweep::RunRequery(data, index, kLb, kUb,
                                     LofAggregation::kMax, /*threads=*/2,
                                     observer)
                    .ok());
  }

  const auto materialized = SpanNames(materialized_trace, "sweep.min_pts_");
  const auto requery = SpanNames(requery_trace, "sweep.min_pts_");
  EXPECT_EQ(materialized.size(), kUb - kLb + 1);
  EXPECT_EQ(materialized, requery);
}

TEST(PipelineObservabilityTest, FlightRecorderCapturesBothSites) {
  constexpr size_t kLb = 3, kUb = 6;
  Dataset data = MakeData(200);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());

  // Materialize path: one timed unit per batch chunk, one query per point.
  {
    QueryStats stats;
    QueryFlightRecorder flight;
    PipelineObserver observer;
    observer.query_stats = &stats;
    observer.flight = &flight;
    ASSERT_TRUE(NeighborhoodMaterializer::MaterializeParallel(
                    data, index, kUb, /*threads=*/2,
                    /*distinct_neighbors=*/false, observer)
                    .ok());
    const auto report = flight.Merge();
    ASSERT_EQ(report.sites.size(), 1u);
    EXPECT_EQ(report.sites[0].site, QueryFlightRecorder::Site::kMaterialize);
    EXPECT_EQ(report.sites[0].engine, "linear_scan");
    EXPECT_EQ(report.sites[0].sampled_queries, data.size());
    EXPECT_FALSE(report.slowest.empty());
  }

  // Re-query path: every per-point k-distance/lrd/lof lookup is a unit.
  {
    QueryStats stats;
    QueryFlightRecorder flight;
    PipelineObserver observer;
    observer.query_stats = &stats;
    observer.flight = &flight;
    ASSERT_TRUE(LofSweep::RunRequery(data, index, kLb, kUb,
                                     LofAggregation::kMax, /*threads=*/2,
                                     observer)
                    .ok());
    const auto report = flight.Merge();
    ASSERT_EQ(report.sites.size(), 1u);
    EXPECT_EQ(report.sites[0].site, QueryFlightRecorder::Site::kSweep);
    EXPECT_GT(report.sites[0].sampled_queries, 0u);
    const auto& latency = report.sites[0].latency;
    EXPECT_EQ(latency.total_count, report.sites[0].sampled_queries);
    EXPECT_LE(latency.Quantile(0.50), latency.Quantile(0.99));
  }
}

TEST(PipelineObservabilityTest, ProgressCountsMaterializeAndSweepUnits) {
  constexpr size_t kLb = 2, kUb = 5;
  Dataset data = MakeData(150);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());

  ProgressTracker progress;
  PipelineObserver observer;
  observer.progress = &progress;
  auto m = NeighborhoodMaterializer::MaterializeParallel(
      data, index, kUb, /*threads=*/2, /*distinct_neighbors=*/false,
      observer);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(progress.units_done(), data.size());
  ASSERT_TRUE(LofSweep::Run(*m, kLb, kUb, LofAggregation::kMax,
                            /*keep_per_min_pts=*/false, /*threads=*/2,
                            observer)
                  .ok());
  const size_t steps = kUb - kLb + 1;
  EXPECT_EQ(progress.units_done(), data.size() * (1 + steps));
}

// The hard acceptance bar: scores are bit-identical with and without the
// full observer complement, at every thread count, on both routes.
TEST(PipelineObservabilityTest, ArmedObserverNeverChangesScoreBits) {
  constexpr size_t kLb = 3, kUb = 6;
  Dataset data = MakeData(220);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto plain_m = NeighborhoodMaterializer::Materialize(
      data, index, kUb, /*distinct_neighbors=*/false);
  ASSERT_TRUE(plain_m.ok());
  auto baseline = LofSweep::Run(*plain_m, kLb, kUb);
  ASSERT_TRUE(baseline.ok());

  for (size_t threads : {size_t{1}, size_t{2}, size_t{7}}) {
    QueryStats stats;
    TraceRecorder trace;
    QueryFlightRecorder flight;
    ProgressTracker progress;
    PipelineObserver observer;
    observer.query_stats = &stats;
    observer.trace = &trace;
    observer.flight = &flight;
    observer.progress = &progress;

    auto m = NeighborhoodMaterializer::MaterializeParallel(
        data, index, kUb, threads, /*distinct_neighbors=*/false, observer);
    ASSERT_TRUE(m.ok());
    auto sweep = LofSweep::Run(*m, kLb, kUb, LofAggregation::kMax,
                               /*keep_per_min_pts=*/false, threads, observer);
    ASSERT_TRUE(sweep.ok());
    ASSERT_EQ(sweep->aggregated.size(), baseline->aggregated.size());
    for (size_t i = 0; i < baseline->aggregated.size(); ++i) {
      EXPECT_EQ(sweep->aggregated[i], baseline->aggregated[i])
          << "threads=" << threads << " point " << i;
    }

    auto requery = LofSweep::RunRequery(data, index, kLb, kUb,
                                        LofAggregation::kMax, threads,
                                        observer);
    ASSERT_TRUE(requery.ok());
    for (size_t i = 0; i < baseline->aggregated.size(); ++i) {
      EXPECT_EQ(requery->aggregated[i], baseline->aggregated[i])
          << "requery threads=" << threads << " point " << i;
    }
  }
}

TEST(PipelineObservabilityTest, StepSecondsMatchTheRange) {
  constexpr size_t kLb = 2, kUb = 6;
  Dataset data = MakeData(150);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(
      data, index, kUb, /*distinct_neighbors=*/false);
  ASSERT_TRUE(m.ok());
  auto sweep = LofSweep::Run(*m, kLb, kUb, LofAggregation::kMax,
                             /*keep_per_min_pts=*/false, /*threads=*/3);
  ASSERT_TRUE(sweep.ok());
  ASSERT_EQ(sweep->step_seconds.size(), kUb - kLb + 1);
  for (double seconds : sweep->step_seconds) EXPECT_GE(seconds, 0.0);
}

}  // namespace
}  // namespace lofkit
