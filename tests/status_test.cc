#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace lofkit {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, NamedConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
  EXPECT_FALSE(Status::InvalidArgument("bad").ok());
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("missing thing").ToString(),
            "not_found: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "invalid_argument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "io_error");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCancelled), "cancelled");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
            "deadline_exceeded");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "resource_exhausted");
}

TEST(StatusTest, RobustnessCodesRenderInToString) {
  EXPECT_EQ(Status::DeadlineExceeded("ran out of time").ToString(),
            "deadline_exceeded: ran out of time");
  EXPECT_EQ(Status::Cancelled("stop requested").ToString(),
            "cancelled: stop requested");
  EXPECT_EQ(Status::ResourceExhausted("budget").ToString(),
            "resource_exhausted: budget");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  LOFKIT_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Doubled(Result<int> in) {
  LOFKIT_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnUnwrapsAndPropagates) {
  Result<int> ok = Doubled(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = Doubled(Status::Internal("boom"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

}  // namespace
}  // namespace lofkit
