#include "common/fail_point.h"

#include <algorithm>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/result.h"

namespace lofkit {
namespace {

// Every test must leave the registry empty: a leaked armed point would make
// unrelated pipeline tests fail with injected errors.
class FailPointTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FailPoints::DisarmAll();
    ASSERT_FALSE(FailPoints::AnyArmed());
  }
};

// A function with a planted point, standing in for production code.
Status GuardedOperation() {
  LOFKIT_FAIL_POINT("test.guarded_op");
  return Status::OK();
}

Result<int> GuardedValueOperation() {
  LOFKIT_FAIL_POINT("test.guarded_value_op");
  return 42;
}

TEST_F(FailPointTest, UnarmedPointIsInvisible) {
  EXPECT_FALSE(FailPoints::AnyArmed());
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_EQ(FailPoints::HitCount("test.guarded_op"), 0u);
  EXPECT_TRUE(FailPoints::Check("test.guarded_op").ok());
}

TEST_F(FailPointTest, ArmedAlwaysFiresEveryHit) {
  FailPoints::Arm("test.guarded_op", Status::IoError("injected"));
  EXPECT_TRUE(FailPoints::AnyArmed());
  for (int i = 0; i < 3; ++i) {
    Status status = GuardedOperation();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kIoError);
    EXPECT_EQ(status.message(), "injected");
  }
  EXPECT_EQ(FailPoints::HitCount("test.guarded_op"), 3u);
  EXPECT_EQ(FailPoints::FireCount("test.guarded_op"), 3u);
}

TEST_F(FailPointTest, PropagatesThroughResultReturningFunctions) {
  FailPoints::Arm("test.guarded_value_op", Status::Internal("injected"));
  Result<int> result = GuardedValueOperation();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  FailPoints::Disarm("test.guarded_value_op");
  ASSERT_TRUE(GuardedValueOperation().ok());
  EXPECT_EQ(*GuardedValueOperation(), 42);
}

TEST_F(FailPointTest, OncePolicyFiresExactlyOnce) {
  FailPoints::Arm("test.guarded_op", Status::IoError("once"),
                  FailPointPolicy::Once());
  EXPECT_FALSE(GuardedOperation().ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(GuardedOperation().ok());
  }
  EXPECT_EQ(FailPoints::HitCount("test.guarded_op"), 6u);
  EXPECT_EQ(FailPoints::FireCount("test.guarded_op"), 1u);
}

TEST_F(FailPointTest, EveryNthFiresOnMultiplesOfN) {
  FailPoints::Arm("test.guarded_op", Status::IoError("nth"),
                  FailPointPolicy::EveryNth(3));
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) {
    fired.push_back(!GuardedOperation().ok());
  }
  EXPECT_EQ(fired, std::vector<bool>({false, false, true, false, false, true,
                                      false, false, true}));
  EXPECT_EQ(FailPoints::FireCount("test.guarded_op"), 3u);
}

TEST_F(FailPointTest, ProbabilityPolicyIsSeededAndDeterministic) {
  // The same seed must reproduce the same fire pattern run over run: that
  // is what makes a probabilistic fault schedule debuggable.
  auto run = [](uint64_t seed) {
    FailPoints::Arm("test.guarded_op", Status::IoError("p"),
                    FailPointPolicy::WithProbability(0.5, seed));
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!GuardedOperation().ok());
    return fired;
  };
  const std::vector<bool> a = run(7);
  const std::vector<bool> b = run(7);
  const std::vector<bool> c = run(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c) << "different seeds should give a different schedule";
  const size_t fires = static_cast<size_t>(
      std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 16u);  // ~32 expected; bound loose enough to never flake
  EXPECT_LT(fires, 48u);
}

TEST_F(FailPointTest, ProbabilityZeroAndOneAreExact) {
  FailPoints::Arm("test.guarded_op", Status::IoError("p"),
                  FailPointPolicy::WithProbability(0.0, 1));
  for (int i = 0; i < 16; ++i) EXPECT_TRUE(GuardedOperation().ok());
  FailPoints::Arm("test.guarded_op", Status::IoError("p"),
                  FailPointPolicy::WithProbability(1.0, 1));
  for (int i = 0; i < 16; ++i) EXPECT_FALSE(GuardedOperation().ok());
}

TEST_F(FailPointTest, RearmReplacesErrorPolicyAndCounters) {
  FailPoints::Arm("test.guarded_op", Status::IoError("first"));
  EXPECT_FALSE(GuardedOperation().ok());
  FailPoints::Arm("test.guarded_op", Status::Internal("second"),
                  FailPointPolicy::Once());
  EXPECT_EQ(FailPoints::HitCount("test.guarded_op"), 0u);
  Status status = GuardedOperation();
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(status.message(), "second");
}

TEST_F(FailPointTest, DisarmStopsInjectionAndDisarmAllClearsEverything) {
  FailPoints::Arm("test.guarded_op", Status::IoError("x"));
  FailPoints::Arm("test.other_point", Status::IoError("y"));
  EXPECT_TRUE(FailPoints::Disarm("test.guarded_op"));
  EXPECT_FALSE(FailPoints::Disarm("test.guarded_op")) << "already disarmed";
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_TRUE(FailPoints::AnyArmed()) << "test.other_point is still armed";
  FailPoints::DisarmAll();
  EXPECT_FALSE(FailPoints::AnyArmed());
}

TEST_F(FailPointTest, ScopedFailPointDisarmsOnExit) {
  {
    ScopedFailPoint fp("test.guarded_op", Status::IoError("scoped"));
    EXPECT_FALSE(GuardedOperation().ok());
    EXPECT_EQ(fp.hit_count(), 1u);
    EXPECT_EQ(fp.fire_count(), 1u);
  }
  EXPECT_FALSE(FailPoints::AnyArmed());
  EXPECT_TRUE(GuardedOperation().ok());
}

TEST_F(FailPointTest, ConcurrentHitsAreCountedExactly) {
  // Fail points are consulted from parallel workers; the mutex-protected
  // slow path must count every hit exactly once without data races.
  FailPoints::Arm("test.guarded_op", Status::IoError("x"),
                  FailPointPolicy::EveryNth(2));
  constexpr int kThreads = 8;
  constexpr int kHitsPerThread = 200;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([] {
      for (int i = 0; i < kHitsPerThread; ++i) {
        (void)GuardedOperation();
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(FailPoints::HitCount("test.guarded_op"),
            static_cast<uint64_t>(kThreads * kHitsPerThread));
  EXPECT_EQ(FailPoints::FireCount("test.guarded_op"),
            static_cast<uint64_t>(kThreads * kHitsPerThread / 2));
}

}  // namespace
}  // namespace lofkit
