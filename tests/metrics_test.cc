#include "common/metrics.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics_publisher.h"
#include "common/parallel.h"

namespace lofkit {
namespace {

TEST(QueryStatsTest, StartsZeroAndAddsFieldwise) {
  QueryStats a;
  EXPECT_TRUE(a.IsZero());
  a.queries = 2;
  a.distance_evals = 10;
  a.rank_prune_hits = 3;
  a.node_visits = 4;
  a.leaf_visits = 5;
  a.heap_pushes = 6;
  a.va_refinements = 7;
  a.checks_used = 8;
  EXPECT_FALSE(a.IsZero());
  EXPECT_EQ(a.page_accesses(), 9u);

  QueryStats b = a;
  b.Add(a);
  EXPECT_EQ(b.queries, 4u);
  EXPECT_EQ(b.distance_evals, 20u);
  EXPECT_EQ(b.rank_prune_hits, 6u);
  EXPECT_EQ(b.node_visits, 8u);
  EXPECT_EQ(b.leaf_visits, 10u);
  EXPECT_EQ(b.heap_pushes, 12u);
  EXPECT_EQ(b.va_refinements, 14u);
  EXPECT_EQ(b.checks_used, 16u);
  EXPECT_FALSE(a == b);
  b.Reset();
  EXPECT_TRUE(b.IsZero());
  EXPECT_TRUE(b == QueryStats{});
}

TEST(MetricsRegistryTest, ReregistrationReturnsSameId) {
  MetricsRegistry registry;
  const auto id = registry.Counter("requests");
  EXPECT_EQ(registry.Counter("requests"), id);
  const auto gauge = registry.Gauge("points");
  EXPECT_EQ(registry.Gauge("points"), gauge);
  EXPECT_NE(id, gauge);
}

TEST(MetricsRegistryTest, CountersSumAcrossShards) {
  MetricsRegistry registry(/*shards=*/3);
  const auto id = registry.Counter("work");
  registry.Add(id, 5, /*shard=*/0);
  registry.Add(id, 7, /*shard=*/1);
  registry.Add(id, 11, /*shard=*/2);
  const auto snapshot = registry.Aggregate();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].name, "work");
  EXPECT_EQ(snapshot.counters[0].value, 23u);
}

TEST(MetricsRegistryTest, GaugeTakesHighestShardThatSet) {
  MetricsRegistry registry(/*shards=*/3);
  const auto id = registry.Gauge("level");
  registry.Set(id, 1.5, /*shard=*/0);
  registry.Set(id, 2.5, /*shard=*/1);
  // Shard 2 never sets it; shard 1 wins.
  const auto snapshot = registry.Aggregate();
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_TRUE(snapshot.gauges[0].set);
  EXPECT_DOUBLE_EQ(snapshot.gauges[0].value, 2.5);

  MetricsRegistry unset;
  unset.Gauge("never");
  EXPECT_FALSE(unset.Aggregate().gauges[0].set);
}

TEST(MetricsRegistryTest, HistogramBucketsUnderflowAndOverflow) {
  MetricsRegistry registry(/*shards=*/2);
  const auto id = registry.Histogram("latency", 1.0, 16.0, 4);
  registry.Record(id, 0.5, /*shard=*/0);   // underflow
  registry.Record(id, 1.0, /*shard=*/0);   // first bucket
  registry.Record(id, 3.0, /*shard=*/1);
  registry.Record(id, 16.0, /*shard=*/1);  // last bucket (inclusive hi)
  registry.Record(id, 100.0, /*shard=*/0); // overflow
  const auto snapshot = registry.Aggregate();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  const auto& hist = snapshot.histograms[0];
  EXPECT_EQ(hist.upper_bounds.size(), 4u);
  EXPECT_EQ(hist.counts.size(), 4u);
  EXPECT_EQ(hist.underflow, 1u);
  EXPECT_EQ(hist.overflow, 1u);
  EXPECT_EQ(hist.total_count, 5u);
  EXPECT_DOUBLE_EQ(hist.sum, 0.5 + 1.0 + 3.0 + 16.0 + 100.0);
  uint64_t in_range = 0;
  for (uint64_t c : hist.counts) in_range += c;
  EXPECT_EQ(in_range, 3u);
  // Geometric bounds over [1, 16] with 4 buckets: 2, 4, 8, 16.
  EXPECT_NEAR(hist.upper_bounds[0], 2.0, 1e-9);
  EXPECT_NEAR(hist.upper_bounds.back(), 16.0, 1e-9);
}

// The sharding contract: with one shard per worker and deterministic work,
// the aggregated snapshot is identical at every thread count.
TEST(MetricsRegistryTest, SnapshotDeterministicAcrossThreadCounts) {
  constexpr size_t kItems = 1000;
  std::vector<MetricsRegistry::Snapshot> snapshots;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{7}}) {
    const size_t workers = std::min(ResolveThreadCount(threads), kItems);
    MetricsRegistry registry(workers);
    const auto items = registry.Counter("items");
    const auto weight = registry.Counter("weight");
    const auto sizes = registry.Histogram("sizes", 1.0, 1024.0, 16);
    ASSERT_TRUE(ParallelForWorker(kItems, threads,
                                  [&](size_t worker, size_t i) -> Status {
                                    registry.Add(items, 1, worker);
                                    registry.Add(weight, i % 13, worker);
                                    registry.Record(
                                        sizes, static_cast<double>(i % 50),
                                        worker);
                                    return Status::OK();
                                  })
                    .ok());
    snapshots.push_back(registry.Aggregate());
  }
  const auto& base = snapshots.front();
  EXPECT_EQ(base.counters[0].value, kItems);
  for (const auto& other : snapshots) {
    ASSERT_EQ(other.counters.size(), base.counters.size());
    for (size_t i = 0; i < base.counters.size(); ++i) {
      EXPECT_EQ(other.counters[i].name, base.counters[i].name);
      EXPECT_EQ(other.counters[i].value, base.counters[i].value);
    }
    ASSERT_EQ(other.histograms.size(), base.histograms.size());
    for (size_t i = 0; i < base.histograms.size(); ++i) {
      EXPECT_EQ(other.histograms[i].counts, base.histograms[i].counts);
      EXPECT_EQ(other.histograms[i].total_count,
                base.histograms[i].total_count);
      EXPECT_DOUBLE_EQ(other.histograms[i].sum, base.histograms[i].sum);
    }
  }
  // Serialization is registration-ordered, so equal snapshots mean
  // byte-identical JSON.
  for (const auto& other : snapshots) {
    EXPECT_EQ(other.ToJson(), base.ToJson());
  }
}

TEST(MetricsRegistryTest, AddQueryStatsRegistersPrefixedCounters) {
  MetricsRegistry registry;
  QueryStats stats;
  stats.queries = 3;
  stats.distance_evals = 42;
  stats.checks_used = 17;
  registry.AddQueryStats("materialize", stats);
  const auto snapshot = registry.Aggregate();
  bool found_evals = false;
  bool found_checks = false;
  for (const auto& counter : snapshot.counters) {
    if (counter.name == "materialize.distance_evals") {
      EXPECT_EQ(counter.value, 42u);
      found_evals = true;
    }
    if (counter.name == "materialize.checks_used") {
      EXPECT_EQ(counter.value, 17u);
      found_checks = true;
    }
  }
  EXPECT_TRUE(found_evals);
  EXPECT_TRUE(found_checks);
}

TEST(MetricsSnapshotTest, JsonEscapesNamesAndStaysStructured) {
  MetricsRegistry registry;
  registry.Add(registry.Counter("weird\n\"name\""), 1);
  const std::string json = registry.Aggregate().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("weird\\n\\\"name\\\""), std::string::npos);
  // The raw (unescaped) name must not appear anywhere: only structural
  // newlines from pretty-printing are allowed, never one inside a string.
  EXPECT_EQ(json.find("weird\n"), std::string::npos)
      << "raw control characters must not survive escaping";
}

TEST(TraceRecorderTest, RecordsSpansAndInstants) {
  TraceRecorder trace;
  trace.AddSpan("phase", /*tid=*/0, 0.0, 0.5);
  trace.AddInstant("marker", /*tid=*/1, 0.25);
  {
    TraceRecorder::Span span(&trace, "scoped", /*tid=*/2);
    span.End();
    span.End();  // idempotent
  }
  EXPECT_EQ(trace.event_count(), 3u);
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\""), std::string::npos);
  EXPECT_NE(json.find("\"scoped\""), std::string::npos);
}

TEST(TraceRecorderTest, NullRecorderSpanIsNoOp) {
  TraceRecorder::Span span(nullptr, "nothing");
  span.End();  // must not crash
}

TEST(TraceRecorderTest, BackwardsSpanClampsToZeroDuration) {
  TraceRecorder trace;
  trace.AddSpan("clamped", 0, 2.0, 1.0);
  EXPECT_EQ(trace.event_count(), 1u);
  EXPECT_NE(trace.ToJson().find("\"dur\": 0"), std::string::npos);
}

TEST(PipelineObserverTest, EnabledTracksEitherPointer) {
  PipelineObserver observer;
  EXPECT_FALSE(observer.enabled());
  QueryStats stats;
  observer.query_stats = &stats;
  EXPECT_TRUE(observer.enabled());
  observer.query_stats = nullptr;
  TraceRecorder trace;
  observer.trace = &trace;
  EXPECT_TRUE(observer.enabled());
}

TEST(HistogramQuantileTest, EmptyHistogramIsNaN) {
  MetricsRegistry registry;
  registry.Histogram("empty", 1.0, 100.0, 8);
  const auto hist = registry.Aggregate().histograms[0];
  EXPECT_TRUE(std::isnan(hist.Quantile(0.5)));
  EXPECT_TRUE(std::isnan(hist.min));
  EXPECT_TRUE(std::isnan(hist.max));
}

// All mass in one bucket: the min/max clamp makes every quantile exact.
TEST(HistogramQuantileTest, SingleBucketDataIsExact) {
  MetricsRegistry registry;
  const auto id = registry.Histogram("h", 1.0, 1024.0, 10);
  for (int i = 0; i < 100; ++i) registry.Record(id, 7.0);
  const auto hist = registry.Aggregate().histograms[0];
  EXPECT_DOUBLE_EQ(hist.min, 7.0);
  EXPECT_DOUBLE_EQ(hist.max, 7.0);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.99), 7.0);
  EXPECT_DOUBLE_EQ(hist.Quantile(1.0), 7.0);
}

TEST(HistogramQuantileTest, MonotoneInQAndWithinEnvelope) {
  MetricsRegistry registry;
  const auto id = registry.Histogram("h", 1.0, 1e6, 24);
  for (int i = 1; i <= 1000; ++i) registry.Record(id, static_cast<double>(i));
  registry.Record(id, 0.5);    // underflow
  registry.Record(id, 2e6);    // overflow
  const auto hist = registry.Aggregate().histograms[0];
  double prev = hist.Quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double value = hist.Quantile(q);
    EXPECT_GE(value, prev) << "quantiles must be monotone at q=" << q;
    EXPECT_GE(value, hist.min);
    EXPECT_LE(value, hist.max);
    prev = value;
  }
  // The median of 1..1000 must land inside its geometric bucket, which is
  // a tight relative band around 500.
  EXPECT_GT(hist.Quantile(0.5), 250.0);
  EXPECT_LT(hist.Quantile(0.5), 1000.0);
}

// Min/max merge commutatively, so quantiles (whose interpolation clamps to
// the exact envelope) are identical at every shard count.
TEST(HistogramQuantileTest, DeterministicAcrossShardCounts) {
  constexpr size_t kItems = 997;
  std::vector<std::string> serialized;
  std::vector<double> p50s, p99s;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{7}}) {
    const size_t workers = std::min(ResolveThreadCount(threads), kItems);
    MetricsRegistry registry(workers);
    const auto id = registry.Histogram("lat", 1.0, 1e5, 32);
    ASSERT_TRUE(ParallelForWorker(kItems, threads,
                                  [&](size_t worker, size_t i) -> Status {
                                    registry.Record(
                                        id,
                                        static_cast<double>((i * 37) % 9973),
                                        worker);
                                    return Status::OK();
                                  })
                    .ok());
    const auto hist = registry.Aggregate().histograms[0];
    p50s.push_back(hist.Quantile(0.50));
    p99s.push_back(hist.Quantile(0.99));
    serialized.push_back(registry.Aggregate().ToJson());
  }
  for (size_t i = 1; i < p50s.size(); ++i) {
    EXPECT_DOUBLE_EQ(p50s[i], p50s[0]);
    EXPECT_DOUBLE_EQ(p99s[i], p99s[0]);
    EXPECT_EQ(serialized[i], serialized[0]);
  }
}

TEST(MetricsSnapshotTest, JsonCarriesQuantilesForNonEmptyHistograms) {
  MetricsRegistry registry;
  const auto id = registry.Histogram("h", 1.0, 100.0, 8);
  registry.Record(id, 10.0);
  const std::string json = registry.Aggregate().ToJson();
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"min\""), std::string::npos);
  EXPECT_NE(json.find("\"max\""), std::string::npos);
}

TEST(OpenMetricsTest, ExpositionHasTypesSuffixesAndEof) {
  MetricsRegistry registry;
  registry.Add(registry.Counter("materialize.queries"), 42);
  registry.Set(registry.Gauge("dataset.points"), 1000.0);
  const auto id = registry.Histogram("latency.query_ns", 1.0, 100.0, 4);
  registry.Record(id, 0.5);    // underflow folds into the first le bucket
  registry.Record(id, 10.0);
  registry.Record(id, 1000.0);  // overflow counts only under +Inf
  const std::string text = registry.Aggregate().ToOpenMetrics();

  EXPECT_NE(text.find("# TYPE lofkit_materialize_queries counter"),
            std::string::npos);
  EXPECT_NE(text.find("lofkit_materialize_queries_total 42"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE lofkit_dataset_points gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE lofkit_latency_query_ns histogram"),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("lofkit_latency_query_ns_count 3"), std::string::npos);
  // The exposition must end with the OpenMetrics terminator.
  ASSERT_GE(text.size(), 7u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");

  // Cumulative le buckets never decrease.
  uint64_t prev = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const size_t le = line.find("le=\"");
    if (le == std::string::npos) continue;
    const size_t space = line.rfind(' ');
    const uint64_t value = std::stoull(line.substr(space + 1));
    EXPECT_GE(value, prev);
    prev = value;
  }
}

TEST(OpenMetricsTest, SanitizesMetricNames) {
  MetricsRegistry registry;
  registry.Add(registry.Counter("weird-name.with spaces"), 1);
  const std::string text = registry.Aggregate().ToOpenMetrics();
  EXPECT_NE(text.find("lofkit_weird_name_with_spaces_total 1"),
            std::string::npos);
}

TEST(ProgressTrackerTest, PhaseUnitsAndFraction) {
  ProgressTracker progress;
  EXPECT_STREQ(progress.phase(), "");
  EXPECT_DOUBLE_EQ(progress.FractionComplete(), 0.0);  // unknown total
  progress.SetPhase("materialize");
  EXPECT_STREQ(progress.phase(), "materialize");
  progress.SetTotal(100);
  progress.Add(25);
  EXPECT_DOUBLE_EQ(progress.FractionComplete(), 0.25);
  progress.Add(200);  // overshoot clamps
  EXPECT_DOUBLE_EQ(progress.FractionComplete(), 1.0);
  EXPECT_EQ(progress.units_done(), 225u);
}

TEST(PeakRssTest, ReportsPlausiblyNonZero) {
  const uint64_t rss = PeakRssBytes();
  // Linux and macOS both report; the test process certainly exceeds 1 MiB.
  EXPECT_GT(rss, uint64_t{1} << 20);
}

TEST(SnapshotPublisherTest, PublishesAtomicallyAndFinalSnapshotOnStop) {
  const std::string path =
      testing::TempDir() + "/publisher_test_metrics.prom";
  int renders = 0;
  {
    SnapshotPublisher publisher(path, std::chrono::milliseconds(10),
                                [&renders]() {
                                  ++renders;
                                  return std::string("# heartbeat\n# EOF\n");
                                });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    publisher.Stop();
    EXPECT_GE(publisher.publish_count(), 1u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "# heartbeat\n# EOF\n");
  EXPECT_GE(renders, 1);
  std::remove(path.c_str());
  // No .tmp file may linger after a clean stop.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
}

}  // namespace
}  // namespace lofkit
