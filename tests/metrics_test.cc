#include "common/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/parallel.h"

namespace lofkit {
namespace {

TEST(QueryStatsTest, StartsZeroAndAddsFieldwise) {
  QueryStats a;
  EXPECT_TRUE(a.IsZero());
  a.queries = 2;
  a.distance_evals = 10;
  a.rank_prune_hits = 3;
  a.node_visits = 4;
  a.leaf_visits = 5;
  a.heap_pushes = 6;
  a.va_refinements = 7;
  a.checks_used = 8;
  EXPECT_FALSE(a.IsZero());
  EXPECT_EQ(a.page_accesses(), 9u);

  QueryStats b = a;
  b.Add(a);
  EXPECT_EQ(b.queries, 4u);
  EXPECT_EQ(b.distance_evals, 20u);
  EXPECT_EQ(b.rank_prune_hits, 6u);
  EXPECT_EQ(b.node_visits, 8u);
  EXPECT_EQ(b.leaf_visits, 10u);
  EXPECT_EQ(b.heap_pushes, 12u);
  EXPECT_EQ(b.va_refinements, 14u);
  EXPECT_EQ(b.checks_used, 16u);
  EXPECT_FALSE(a == b);
  b.Reset();
  EXPECT_TRUE(b.IsZero());
  EXPECT_TRUE(b == QueryStats{});
}

TEST(MetricsRegistryTest, ReregistrationReturnsSameId) {
  MetricsRegistry registry;
  const auto id = registry.Counter("requests");
  EXPECT_EQ(registry.Counter("requests"), id);
  const auto gauge = registry.Gauge("points");
  EXPECT_EQ(registry.Gauge("points"), gauge);
  EXPECT_NE(id, gauge);
}

TEST(MetricsRegistryTest, CountersSumAcrossShards) {
  MetricsRegistry registry(/*shards=*/3);
  const auto id = registry.Counter("work");
  registry.Add(id, 5, /*shard=*/0);
  registry.Add(id, 7, /*shard=*/1);
  registry.Add(id, 11, /*shard=*/2);
  const auto snapshot = registry.Aggregate();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].name, "work");
  EXPECT_EQ(snapshot.counters[0].value, 23u);
}

TEST(MetricsRegistryTest, GaugeTakesHighestShardThatSet) {
  MetricsRegistry registry(/*shards=*/3);
  const auto id = registry.Gauge("level");
  registry.Set(id, 1.5, /*shard=*/0);
  registry.Set(id, 2.5, /*shard=*/1);
  // Shard 2 never sets it; shard 1 wins.
  const auto snapshot = registry.Aggregate();
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_TRUE(snapshot.gauges[0].set);
  EXPECT_DOUBLE_EQ(snapshot.gauges[0].value, 2.5);

  MetricsRegistry unset;
  unset.Gauge("never");
  EXPECT_FALSE(unset.Aggregate().gauges[0].set);
}

TEST(MetricsRegistryTest, HistogramBucketsUnderflowAndOverflow) {
  MetricsRegistry registry(/*shards=*/2);
  const auto id = registry.Histogram("latency", 1.0, 16.0, 4);
  registry.Record(id, 0.5, /*shard=*/0);   // underflow
  registry.Record(id, 1.0, /*shard=*/0);   // first bucket
  registry.Record(id, 3.0, /*shard=*/1);
  registry.Record(id, 16.0, /*shard=*/1);  // last bucket (inclusive hi)
  registry.Record(id, 100.0, /*shard=*/0); // overflow
  const auto snapshot = registry.Aggregate();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  const auto& hist = snapshot.histograms[0];
  EXPECT_EQ(hist.upper_bounds.size(), 4u);
  EXPECT_EQ(hist.counts.size(), 4u);
  EXPECT_EQ(hist.underflow, 1u);
  EXPECT_EQ(hist.overflow, 1u);
  EXPECT_EQ(hist.total_count, 5u);
  EXPECT_DOUBLE_EQ(hist.sum, 0.5 + 1.0 + 3.0 + 16.0 + 100.0);
  uint64_t in_range = 0;
  for (uint64_t c : hist.counts) in_range += c;
  EXPECT_EQ(in_range, 3u);
  // Geometric bounds over [1, 16] with 4 buckets: 2, 4, 8, 16.
  EXPECT_NEAR(hist.upper_bounds[0], 2.0, 1e-9);
  EXPECT_NEAR(hist.upper_bounds.back(), 16.0, 1e-9);
}

// The sharding contract: with one shard per worker and deterministic work,
// the aggregated snapshot is identical at every thread count.
TEST(MetricsRegistryTest, SnapshotDeterministicAcrossThreadCounts) {
  constexpr size_t kItems = 1000;
  std::vector<MetricsRegistry::Snapshot> snapshots;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{7}}) {
    const size_t workers = std::min(ResolveThreadCount(threads), kItems);
    MetricsRegistry registry(workers);
    const auto items = registry.Counter("items");
    const auto weight = registry.Counter("weight");
    const auto sizes = registry.Histogram("sizes", 1.0, 1024.0, 16);
    ASSERT_TRUE(ParallelForWorker(kItems, threads,
                                  [&](size_t worker, size_t i) -> Status {
                                    registry.Add(items, 1, worker);
                                    registry.Add(weight, i % 13, worker);
                                    registry.Record(
                                        sizes, static_cast<double>(i % 50),
                                        worker);
                                    return Status::OK();
                                  })
                    .ok());
    snapshots.push_back(registry.Aggregate());
  }
  const auto& base = snapshots.front();
  EXPECT_EQ(base.counters[0].value, kItems);
  for (const auto& other : snapshots) {
    ASSERT_EQ(other.counters.size(), base.counters.size());
    for (size_t i = 0; i < base.counters.size(); ++i) {
      EXPECT_EQ(other.counters[i].name, base.counters[i].name);
      EXPECT_EQ(other.counters[i].value, base.counters[i].value);
    }
    ASSERT_EQ(other.histograms.size(), base.histograms.size());
    for (size_t i = 0; i < base.histograms.size(); ++i) {
      EXPECT_EQ(other.histograms[i].counts, base.histograms[i].counts);
      EXPECT_EQ(other.histograms[i].total_count,
                base.histograms[i].total_count);
      EXPECT_DOUBLE_EQ(other.histograms[i].sum, base.histograms[i].sum);
    }
  }
  // Serialization is registration-ordered, so equal snapshots mean
  // byte-identical JSON.
  for (const auto& other : snapshots) {
    EXPECT_EQ(other.ToJson(), base.ToJson());
  }
}

TEST(MetricsRegistryTest, AddQueryStatsRegistersPrefixedCounters) {
  MetricsRegistry registry;
  QueryStats stats;
  stats.queries = 3;
  stats.distance_evals = 42;
  stats.checks_used = 17;
  registry.AddQueryStats("materialize", stats);
  const auto snapshot = registry.Aggregate();
  bool found_evals = false;
  bool found_checks = false;
  for (const auto& counter : snapshot.counters) {
    if (counter.name == "materialize.distance_evals") {
      EXPECT_EQ(counter.value, 42u);
      found_evals = true;
    }
    if (counter.name == "materialize.checks_used") {
      EXPECT_EQ(counter.value, 17u);
      found_checks = true;
    }
  }
  EXPECT_TRUE(found_evals);
  EXPECT_TRUE(found_checks);
}

TEST(MetricsSnapshotTest, JsonEscapesNamesAndStaysStructured) {
  MetricsRegistry registry;
  registry.Add(registry.Counter("weird\n\"name\""), 1);
  const std::string json = registry.Aggregate().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("weird\\n\\\"name\\\""), std::string::npos);
  // The raw (unescaped) name must not appear anywhere: only structural
  // newlines from pretty-printing are allowed, never one inside a string.
  EXPECT_EQ(json.find("weird\n"), std::string::npos)
      << "raw control characters must not survive escaping";
}

TEST(TraceRecorderTest, RecordsSpansAndInstants) {
  TraceRecorder trace;
  trace.AddSpan("phase", /*tid=*/0, 0.0, 0.5);
  trace.AddInstant("marker", /*tid=*/1, 0.25);
  {
    TraceRecorder::Span span(&trace, "scoped", /*tid=*/2);
    span.End();
    span.End();  // idempotent
  }
  EXPECT_EQ(trace.event_count(), 3u);
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\""), std::string::npos);
  EXPECT_NE(json.find("\"scoped\""), std::string::npos);
}

TEST(TraceRecorderTest, NullRecorderSpanIsNoOp) {
  TraceRecorder::Span span(nullptr, "nothing");
  span.End();  // must not crash
}

TEST(TraceRecorderTest, BackwardsSpanClampsToZeroDuration) {
  TraceRecorder trace;
  trace.AddSpan("clamped", 0, 2.0, 1.0);
  EXPECT_EQ(trace.event_count(), 1u);
  EXPECT_NE(trace.ToJson().find("\"dur\": 0"), std::string::npos);
}

TEST(PipelineObserverTest, EnabledTracksEitherPointer) {
  PipelineObserver observer;
  EXPECT_FALSE(observer.enabled());
  QueryStats stats;
  observer.query_stats = &stats;
  EXPECT_TRUE(observer.enabled());
  observer.query_stats = nullptr;
  TraceRecorder trace;
  observer.trace = &trace;
  EXPECT_TRUE(observer.enabled());
}

}  // namespace
}  // namespace lofkit
