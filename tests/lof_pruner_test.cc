#include "lof/lof_pruner.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/fail_point.h"
#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/linear_scan_index.h"
#include "lof/lof_computer.h"
#include "lof/lof_sweep.h"

namespace lofkit {
namespace {

struct Pipeline {
  Dataset data;
  LinearScanIndex index;
  std::optional<NeighborhoodMaterializer> m;
};

std::unique_ptr<Pipeline> MakePipeline(Dataset data, size_t k_max) {
  auto pipeline = std::make_unique<Pipeline>(Pipeline{std::move(data), {}, {}});
  EXPECT_TRUE(pipeline->index.Build(pipeline->data, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(pipeline->data,
                                                 pipeline->index, k_max);
  EXPECT_TRUE(m.ok());
  pipeline->m.emplace(std::move(m).value());
  return pipeline;
}

// Mixed-density clusters, a handful of pronounced outliers, and — the part
// the bound fallbacks get wrong when unsafe — a pile of exact duplicates.
Dataset MixedWorkload(Rng& rng, bool with_duplicates) {
  auto ds = Dataset::Create(2);
  EXPECT_TRUE(ds.ok());
  const double c1[2] = {0, 0};
  const double c2[2] = {30, 0};
  EXPECT_TRUE(
      generators::AppendGaussianCluster(*ds, rng, c1, 1.0, 120, "c1").ok());
  EXPECT_TRUE(
      generators::AppendGaussianCluster(*ds, rng, c2, 3.0, 120, "c2").ok());
  const double far1[2] = {15, 20};
  const double far2[2] = {-12, -15};
  EXPECT_TRUE(ds->Append(far1, "outlier").ok());
  EXPECT_TRUE(ds->Append(far2, "outlier").ok());
  if (with_duplicates) {
    const double pile[2] = {15, -10};
    for (int copy = 0; copy < 10; ++copy) {
      EXPECT_TRUE(ds->Append(pile, "dup").ok());
    }
  }
  return std::move(ds).value();
}

TEST(LofPrunerTest, BoundsMatchReferenceTheorem1Bitwise) {
  Rng rng(41);
  auto pipeline = MakePipeline(MixedWorkload(rng, /*with_duplicates=*/true), 8);
  for (size_t min_pts : {1u, 4u, 8u}) {
    auto fast = LofPruner::ComputeBounds(*pipeline->m, min_pts);
    ASSERT_TRUE(fast.ok()) << fast.status().message();
    for (size_t i = 0; i < pipeline->data.size(); ++i) {
      auto stats = ComputeNeighborhoodStats(*pipeline->m, i, min_pts);
      ASSERT_TRUE(stats.ok());
      const LofBoundEstimate reference = Theorem1Bounds(*stats);
      // Bit-equality, not approximate: the pruner folds the same extremes
      // through the same CombineGroupBounds arithmetic.
      EXPECT_EQ((*fast)[i].lower, reference.lower)
          << "min_pts " << min_pts << " point " << i;
      EXPECT_EQ((*fast)[i].upper, reference.upper)
          << "min_pts " << min_pts << " point " << i;
    }
  }
}

TEST(LofPrunerTest, PartitionedBoundsMatchReferenceTheorem2Bitwise) {
  Rng rng(42);
  Dataset data = MixedWorkload(rng, /*with_duplicates=*/true);
  std::vector<int> partition(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    partition[i] = data.label(i) == "c1"   ? 0
                   : data.label(i) == "c2" ? 1
                   : data.label(i) == "dup" ? 2
                                            : 3;
  }
  auto pipeline = MakePipeline(std::move(data), 8);
  const size_t min_pts = 6;
  LofPrunerOptions options;
  options.partition = partition;
  auto fast = LofPruner::ComputeBounds(*pipeline->m, min_pts, options);
  ASSERT_TRUE(fast.ok());
  for (size_t i = 0; i < pipeline->data.size(); ++i) {
    auto reference = Theorem2Bounds(*pipeline->m, i, min_pts, partition);
    ASSERT_TRUE(reference.ok());
    EXPECT_EQ((*fast)[i].lower, reference->lower) << "point " << i;
    EXPECT_EQ((*fast)[i].upper, reference->upper) << "point " << i;
  }
}

TEST(LofPrunerTest, BoundsBracketExactLofOnRandomizedData) {
  for (uint64_t seed : {7u, 8u, 9u}) {
    Rng rng(seed);
    auto pipeline =
        MakePipeline(MixedWorkload(rng, /*with_duplicates=*/true), 8);
    for (size_t min_pts : {2u, 5u, 8u}) {
      auto bounds = LofPruner::ComputeBounds(*pipeline->m, min_pts);
      auto scores = LofComputer::Compute(*pipeline->m, min_pts);
      ASSERT_TRUE(bounds.ok() && scores.ok());
      for (size_t i = 0; i < pipeline->data.size(); ++i) {
        EXPECT_FALSE(std::isnan((*bounds)[i].lower)) << i;
        EXPECT_FALSE(std::isnan((*bounds)[i].upper)) << i;
        EXPECT_LE((*bounds)[i].lower, scores->lof[i])
            << "seed " << seed << " min_pts " << min_pts << " point " << i;
        EXPECT_GE((*bounds)[i].upper, scores->lof[i])
            << "seed " << seed << " min_pts " << min_pts << " point " << i;
      }
    }
  }
}

TEST(LofPrunerTest, BoundsAreBitIdenticalAcrossThreadCounts) {
  Rng rng(43);
  auto pipeline = MakePipeline(MixedWorkload(rng, /*with_duplicates=*/true), 8);
  auto serial = LofPruner::ComputeBounds(*pipeline->m, 6);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {2u, 7u}) {
    LofPrunerOptions options;
    options.threads = threads;
    auto parallel = LofPruner::ComputeBounds(*pipeline->m, 6, options);
    ASSERT_TRUE(parallel.ok());
    for (size_t i = 0; i < serial->size(); ++i) {
      EXPECT_EQ((*serial)[i].lower, (*parallel)[i].lower) << i;
      EXPECT_EQ((*serial)[i].upper, (*parallel)[i].upper) << i;
    }
  }
}

TEST(LofPrunerTest, RangeBoundsBracketEveryStep) {
  Rng rng(44);
  auto pipeline = MakePipeline(MixedWorkload(rng, /*with_duplicates=*/true), 8);
  const size_t lb = 2, ub = 8;
  auto range = LofPruner::ComputeRangeBounds(*pipeline->m, lb, ub);
  ASSERT_TRUE(range.ok()) << range.status().message();
  for (size_t min_pts = lb; min_pts <= ub; ++min_pts) {
    auto scores = LofComputer::Compute(*pipeline->m, min_pts);
    ASSERT_TRUE(scores.ok());
    for (size_t i = 0; i < pipeline->data.size(); ++i) {
      EXPECT_FALSE(std::isnan((*range)[i].lower)) << i;
      EXPECT_FALSE(std::isnan((*range)[i].upper)) << i;
      EXPECT_LE((*range)[i].lower, scores->lof[i])
          << "min_pts " << min_pts << " point " << i;
      EXPECT_GE((*range)[i].upper, scores->lof[i])
          << "min_pts " << min_pts << " point " << i;
    }
  }
}

TEST(LofPrunerTest, DegenerateRangeEqualsPerStepBoundsOutsideDuplicates) {
  // With lb == ub the range reach-dists collapse to the exact ones, so the
  // non-degenerate bounds must agree bitwise with the per-step routine.
  Rng rng(45);
  auto pipeline = MakePipeline(MixedWorkload(rng, /*with_duplicates=*/true), 8);
  const size_t min_pts = 6;
  auto range = LofPruner::ComputeRangeBounds(*pipeline->m, min_pts, min_pts);
  auto step = LofPruner::ComputeBounds(*pipeline->m, min_pts);
  ASSERT_TRUE(range.ok() && step.ok());
  for (size_t i = 0; i < pipeline->data.size(); ++i) {
    if (std::isinf((*step)[i].lower)) {
      // The all-zero-indirect degeneration: the per-step routine can prove
      // +inf from exact extremes; the range routine deliberately reports
      // the conservative 1 (LOF can be 1 at one step and +inf at another).
      EXPECT_DOUBLE_EQ((*range)[i].lower, 1.0) << i;
      continue;
    }
    EXPECT_EQ((*range)[i].lower, (*step)[i].lower) << i;
    EXPECT_EQ((*range)[i].upper, (*step)[i].upper) << i;
  }
}

TEST(LofPrunerTest, RangeBoundsRejectPartitionsAndBadRanges) {
  Rng rng(46);
  auto pipeline =
      MakePipeline(MixedWorkload(rng, /*with_duplicates=*/false), 8);
  const std::vector<int> partition(pipeline->data.size(), 0);
  LofPrunerOptions options;
  options.partition = partition;
  EXPECT_EQ(
      LofPruner::ComputeRangeBounds(*pipeline->m, 2, 8, options).status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(LofPruner::ComputeRangeBounds(*pipeline->m, 0, 8).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(LofPruner::ComputeRangeBounds(*pipeline->m, 5, 2).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(LofPruner::ComputeRangeBounds(*pipeline->m, 2, 9).status().code(),
            StatusCode::kOutOfRange);
}

TEST(LofPrunerTest, Lemma1CertificatesStayValidAndNeverLoosen) {
  // For a deep point, every reach-dist entering the Theorem-1 extremes is
  // a cluster-pair reach-dist, so the per-point theorem bounds always lie
  // inside Lemma 1's [1/(1+eps), 1+eps] — the lemma certifies, it cannot
  // tighten bounds that were computed per point (it beats only the
  // paper's cheaper cluster-level bounds). Intersecting must therefore
  // change nothing, and the result must still bracket the exact LOF.
  Rng rng(47);
  Dataset data = MixedWorkload(rng, /*with_duplicates=*/false);
  std::vector<int> partition(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    partition[i] = data.label(i) == "c1" ? 0 : (data.label(i) == "c2" ? 1 : 2);
  }
  auto pipeline = MakePipeline(std::move(data), 8);
  const size_t min_pts = 6;
  LofPrunerOptions options;
  options.partition = partition;
  auto bounds = LofPruner::ComputeBounds(*pipeline->m, min_pts, options);
  ASSERT_TRUE(bounds.ok());
  const std::vector<LofBoundEstimate> before = *bounds;
  auto tightened = LofPruner::TightenWithLemma1(
      pipeline->data, Euclidean(), *pipeline->m, min_pts, partition, *bounds);
  ASSERT_TRUE(tightened.ok()) << tightened.status().message();
  EXPECT_EQ(*tightened, 0u);
  auto scores = LofComputer::Compute(*pipeline->m, min_pts);
  ASSERT_TRUE(scores.ok());
  for (size_t i = 0; i < pipeline->data.size(); ++i) {
    EXPECT_EQ((*bounds)[i].lower, before[i].lower) << i;
    EXPECT_EQ((*bounds)[i].upper, before[i].upper) << i;
    EXPECT_LE((*bounds)[i].lower, scores->lof[i]) << i;
    EXPECT_GE((*bounds)[i].upper, scores->lof[i]) << i;
  }
}

TEST(LofPrunerTest, SelectTopNEdgeCases) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  const std::vector<LofBoundEstimate> bounds = {
      {3.0, 5.0},   // strong outlier candidate
      {0.5, 0.9},   // prunable once the threshold passes 0.9
      {1.0, 4.0},   // wide bounds, must survive
      {kNaN, kNaN}, // no evidence either way: never raises the threshold,
                    // never pruned
      {2.0, 2.5},
  };

  // top_n == 0 and top_n >= n: nothing can be discarded.
  for (size_t top_n : {0u, 5u, 9u}) {
    const auto all = LofPruner::SelectTopN(bounds, top_n);
    EXPECT_EQ(all.survivors.size(), bounds.size()) << top_n;
    EXPECT_EQ(all.threshold, -kInf) << top_n;
  }

  // top_n == 2: threshold = 2nd largest lower = 2.0; only upper < 2.0 is
  // discarded (index 1). The NaN row survives.
  const auto selection = LofPruner::SelectTopN(bounds, 2);
  EXPECT_DOUBLE_EQ(selection.threshold, 2.0);
  EXPECT_EQ(selection.survivors,
            (std::vector<uint32_t>{0, 2, 3, 4}));
  EXPECT_TRUE(std::is_sorted(selection.survivors.begin(),
                             selection.survivors.end()));

  // Upper exactly at the threshold is kept: pruning needs strict evidence.
  const std::vector<LofBoundEstimate> tie = {{2.0, 5.0}, {1.0, 3.0},
                                             {0.1, 1.0}};
  const auto tied = LofPruner::SelectTopN(tie, 2);
  EXPECT_DOUBLE_EQ(tied.threshold, 1.0);
  EXPECT_EQ(tied.survivors, (std::vector<uint32_t>{0, 1, 2}));
}

TEST(LofPrunerTest, CancellationAndFailPointsPropagate) {
  Rng rng(48);
  auto pipeline =
      MakePipeline(MixedWorkload(rng, /*with_duplicates=*/false), 8);

  StopSource source;
  source.RequestStop();
  LofPrunerOptions cancelled;
  cancelled.stop = source.token();
  EXPECT_EQ(
      LofPruner::ComputeBounds(*pipeline->m, 6, cancelled).status().code(),
      StatusCode::kCancelled);
  EXPECT_EQ(LofPruner::ComputeRangeBounds(*pipeline->m, 2, 8, cancelled)
                .status()
                .code(),
            StatusCode::kCancelled);

  FailPoints::Arm("pruner.bounds", Status::IoError("injected"));
  EXPECT_EQ(LofPruner::ComputeBounds(*pipeline->m, 6).status().code(),
            StatusCode::kIoError);
  EXPECT_EQ(LofPruner::ComputeRangeBounds(*pipeline->m, 2, 8).status().code(),
            StatusCode::kIoError);
  FailPoints::DisarmAll();
}

TEST(LofComputerTest, ComputeForCandidatesMatchesFullComputeBitwise) {
  Rng rng(49);
  auto pipeline = MakePipeline(MixedWorkload(rng, /*with_duplicates=*/true), 8);
  const size_t min_pts = 6;
  const std::vector<uint32_t> candidates = {0, 7, 119, 120, 240,
                                            static_cast<uint32_t>(
                                                pipeline->data.size() - 1)};
  auto full = LofComputer::Compute(*pipeline->m, min_pts);
  ASSERT_TRUE(full.ok());
  for (size_t threads : {1u, 2u, 7u}) {
    LofComputeOptions options;
    options.threads = threads;
    auto sparse = LofComputer::ComputeForCandidates(*pipeline->m, min_pts,
                                                    candidates, options);
    ASSERT_TRUE(sparse.ok()) << sparse.status().message();
    size_t next = 0;
    for (size_t i = 0; i < pipeline->data.size(); ++i) {
      if (next < candidates.size() && candidates[next] == i) {
        EXPECT_EQ(sparse->lof[i], full->lof[i]) << "point " << i;
        EXPECT_EQ(sparse->lrd[i], full->lrd[i]) << "point " << i;
        ++next;
      } else {
        EXPECT_TRUE(std::isnan(sparse->lof[i])) << "point " << i;
      }
    }
  }
}

TEST(LofComputerTest, ComputeForCandidatesValidatesItsInput) {
  Rng rng(50);
  auto pipeline =
      MakePipeline(MixedWorkload(rng, /*with_duplicates=*/false), 8);
  const std::vector<uint32_t> out_of_range = {
      0, static_cast<uint32_t>(pipeline->data.size())};
  EXPECT_EQ(LofComputer::ComputeForCandidates(*pipeline->m, 6, out_of_range)
                .status()
                .code(),
            StatusCode::kOutOfRange);
  const std::vector<uint32_t> unsorted = {5, 3};
  EXPECT_EQ(LofComputer::ComputeForCandidates(*pipeline->m, 6, unsorted)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  const std::vector<uint32_t> repeated = {3, 3};
  EXPECT_EQ(LofComputer::ComputeForCandidates(*pipeline->m, 6, repeated)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(RunPrunedTest, RunPrunedPreservesTheExactTopN) {
  Rng rng(51);
  auto pipeline = MakePipeline(MixedWorkload(rng, /*with_duplicates=*/true), 8);
  const size_t lb = 2, ub = 8, top_n = 5;
  for (LofAggregation aggregation :
       {LofAggregation::kMax, LofAggregation::kMin, LofAggregation::kMean}) {
    auto full = LofSweep::Run(*pipeline->m, lb, ub, aggregation);
    ASSERT_TRUE(full.ok());
    const auto full_rank = RankDescending(full->aggregated, top_n);
    for (size_t threads : {1u, 2u, 7u}) {
      LofSweep::PruneOptions prune;
      prune.top_n = top_n;
      auto pruned = LofSweep::RunPruned(*pipeline->m, lb, ub, prune,
                                        aggregation, threads);
      ASSERT_TRUE(pruned.ok()) << pruned.status().message();
      EXPECT_TRUE(pruned->prune.applied);
      EXPECT_GE(pruned->prune.survivors, top_n);
      EXPECT_EQ(pruned->prune.survivors + pruned->prune.pruned_evaluations /
                                              (ub - lb + 1),
                pipeline->data.size());
      const auto pruned_rank = RankDescending(pruned->aggregated, top_n);
      ASSERT_EQ(pruned_rank.size(), full_rank.size());
      for (size_t r = 0; r < full_rank.size(); ++r) {
        EXPECT_EQ(pruned_rank[r].index, full_rank[r].index)
            << "aggregation " << LofAggregationName(aggregation) << " rank "
            << r;
        // Bit-equality: survivor slots reuse the full pipeline arithmetic.
        EXPECT_EQ(pruned_rank[r].score, full_rank[r].score)
            << "aggregation " << LofAggregationName(aggregation) << " rank "
            << r;
      }
    }
  }
}

TEST(RunPrunedTest, RunPrunedBlockWidthsAllPreserveTheTopN) {
  Rng rng(52);
  auto pipeline = MakePipeline(MixedWorkload(rng, /*with_duplicates=*/true), 8);
  const size_t lb = 2, ub = 8, top_n = 4;
  auto full = LofSweep::Run(*pipeline->m, lb, ub);
  ASSERT_TRUE(full.ok());
  const auto full_rank = RankDescending(full->aggregated, top_n);
  for (size_t width : {1u, 2u, 3u, 7u, 100u}) {
    LofSweep::PruneOptions prune;
    prune.top_n = top_n;
    prune.bounds_block_width = width;
    auto pruned = LofSweep::RunPruned(*pipeline->m, lb, ub, prune);
    ASSERT_TRUE(pruned.ok());
    const auto pruned_rank = RankDescending(pruned->aggregated, top_n);
    ASSERT_EQ(pruned_rank.size(), full_rank.size());
    for (size_t r = 0; r < full_rank.size(); ++r) {
      EXPECT_EQ(pruned_rank[r].index, full_rank[r].index)
          << "width " << width << " rank " << r;
      EXPECT_EQ(pruned_rank[r].score, full_rank[r].score)
          << "width " << width << " rank " << r;
    }
  }
}

TEST(RunPrunedTest, RunPrunedPartitionPathPreservesTheTopN) {
  Rng rng(53);
  Dataset data = MixedWorkload(rng, /*with_duplicates=*/true);
  std::vector<int> partition(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    partition[i] = data.label(i) == "c1"   ? 0
                   : data.label(i) == "c2" ? 1
                   : data.label(i) == "dup" ? 2
                                            : 3;
  }
  auto pipeline = MakePipeline(std::move(data), 8);
  const size_t lb = 2, ub = 8, top_n = 5;
  auto full = LofSweep::Run(*pipeline->m, lb, ub);
  ASSERT_TRUE(full.ok());
  const auto full_rank = RankDescending(full->aggregated, top_n);
  LofSweep::PruneOptions prune;
  prune.top_n = top_n;
  prune.partition = partition;
  prune.data = &pipeline->data;
  prune.metric = &Euclidean();
  auto pruned = LofSweep::RunPruned(*pipeline->m, lb, ub, prune);
  ASSERT_TRUE(pruned.ok()) << pruned.status().message();
  // Per-point theorem bounds dominate the lemma certificates (see
  // Lemma1CertificatesStayValidAndNeverLoosen), so nothing tightens.
  EXPECT_EQ(pruned->prune.lemma1_tightened, 0u);
  const auto pruned_rank = RankDescending(pruned->aggregated, top_n);
  ASSERT_EQ(pruned_rank.size(), full_rank.size());
  for (size_t r = 0; r < full_rank.size(); ++r) {
    EXPECT_EQ(pruned_rank[r].index, full_rank[r].index) << "rank " << r;
    EXPECT_EQ(pruned_rank[r].score, full_rank[r].score) << "rank " << r;
  }
}

TEST(RunPrunedTest, RunPrunedRequiresAConcreteTopN) {
  Rng rng(54);
  auto pipeline =
      MakePipeline(MixedWorkload(rng, /*with_duplicates=*/false), 8);
  LofSweep::PruneOptions prune;  // top_n left at 0
  EXPECT_EQ(LofSweep::RunPruned(*pipeline->m, 2, 8, prune).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace lofkit
