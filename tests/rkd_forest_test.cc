#include "index/rkd_forest_index.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/fail_point.h"
#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/linear_scan_index.h"
#include "lof/lof_computer.h"

namespace lofkit {
namespace {

Dataset MakeData(size_t dim, size_t n, uint64_t seed = 42) {
  Rng rng(seed);
  auto ds = generators::MakePerformanceWorkload(rng, dim, n, 5);
  EXPECT_TRUE(ds.ok()) << ds.status();
  return std::move(ds).value();
}

RkdForestIndex::Options ApproximateOptions(size_t checks) {
  RkdForestIndex::Options options;
  options.search.checks = checks;
  return options;
}

// ---------------------------------------------------------------------------
// Seed determinism
// ---------------------------------------------------------------------------

TEST(RkdForestTest, SameSeedBuildsBitIdenticalForests) {
  Dataset data = MakeData(8, 1500);
  RkdForestIndex a;
  RkdForestIndex b;
  ASSERT_TRUE(a.Build(data, Euclidean()).ok());
  ASSERT_TRUE(b.Build(data, Euclidean()).ok());
  EXPECT_EQ(a.StructureDigest(), b.StructureDigest());
  EXPECT_EQ(a.tree_count(), 8u);
  EXPECT_EQ(a.node_count(), b.node_count());
}

TEST(RkdForestTest, DifferentSeedsGrowDifferentTrees) {
  Dataset data = MakeData(8, 1500);
  RkdForestIndex::Options options;
  options.seed = RkdForestIndex::kDefaultSeed + 1;
  RkdForestIndex reseeded(options);
  RkdForestIndex default_seeded;
  ASSERT_TRUE(default_seeded.Build(data, Euclidean()).ok());
  ASSERT_TRUE(reseeded.Build(data, Euclidean()).ok());
  EXPECT_NE(default_seeded.StructureDigest(), reseeded.StructureDigest());
}

TEST(RkdForestTest, RebuildReplacesPreviousForest) {
  Dataset small = MakeData(5, 300, 1);
  Dataset large = MakeData(5, 900, 2);
  RkdForestIndex index;
  ASSERT_TRUE(index.Build(small, Euclidean()).ok());
  const uint64_t first = index.StructureDigest();
  ASSERT_TRUE(index.Build(large, Euclidean()).ok());
  EXPECT_NE(index.StructureDigest(), first);
  auto result = index.Query(large.point(0), 5, 0u);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 5u);
}

// Approximate LOF scores must be a pure function of (data, seed, dial) —
// the thread count must never show up in the bits.
TEST(RkdForestTest, ApproximateScoresBitIdenticalAcrossThreadCounts) {
  Dataset data = MakeData(10, 1200);
  LofComputeOptions options;
  options.ann.search.checks = 64;
  std::vector<std::vector<double>> runs;
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{7}}) {
    options.threads = threads;
    auto scores = LofComputer::ComputeFromScratch(
        data, Euclidean(), 10, IndexKind::kRkdForest,
        /*distinct_neighbors=*/false, options);
    ASSERT_TRUE(scores.ok()) << scores.status();
    runs.push_back(std::move(scores->lof));
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    EXPECT_EQ(std::memcmp(runs[r].data(), runs[0].data(),
                          runs[0].size() * sizeof(double)),
              0)
        << "thread count changed approximate LOF bits (run " << r << ")";
  }
}

TEST(RkdForestTest, SameSeedSameDialRepeatsExactScoreBits) {
  Dataset data = MakeData(10, 800);
  LofComputeOptions options;
  options.ann.search.checks = 48;
  options.ann.seed = 77;
  auto first = LofComputer::ComputeFromScratch(
      data, Euclidean(), 8, IndexKind::kRkdForest, false, options);
  auto second = LofComputer::ComputeFromScratch(
      data, Euclidean(), 8, IndexKind::kRkdForest, false, options);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(std::memcmp(first->lof.data(), second->lof.data(),
                        first->lof.size() * sizeof(double)),
            0);
}

// ---------------------------------------------------------------------------
// The checks/eps dial
// ---------------------------------------------------------------------------

TEST(RkdForestTest, BudgetedQueryStillReturnsFullNeighborhood) {
  Dataset data = MakeData(12, 2000);
  // A check budget below k must not truncate the k-distance neighborhood.
  RkdForestIndex index(ApproximateOptions(4));
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  KnnSearchContext ctx;
  for (uint32_t q = 0; q < 50; ++q) {
    ASSERT_TRUE(index.Query(data.point(q), 15, q, ctx).ok());
    EXPECT_GE(ctx.results().size(), 15u);
    // Sorted by (distance, index), per the KnnIndex contract.
    for (size_t i = 1; i < ctx.results().size(); ++i) {
      EXPECT_LE(ctx.results()[i - 1].distance, ctx.results()[i].distance);
    }
  }
}

TEST(RkdForestTest, RaisingChecksRaisesRecall) {
  Dataset data = MakeData(20, 3000);
  LinearScanIndex reference;
  ASSERT_TRUE(reference.Build(data, Euclidean()).ok());
  constexpr size_t kK = 10;
  const auto recall_at = [&](size_t checks) {
    RkdForestIndex index(ApproximateOptions(checks));
    EXPECT_TRUE(index.Build(data, Euclidean()).ok());
    KnnSearchContext ctx;
    size_t hits = 0;
    size_t wanted = 0;
    for (uint32_t q = 0; q < 200; ++q) {
      auto expected = reference.Query(data.point(q), kK, q);
      EXPECT_TRUE(expected.ok());
      EXPECT_TRUE(index.Query(data.point(q), kK, q, ctx).ok());
      std::set<uint32_t> approx;
      for (const Neighbor& n : ctx.results()) approx.insert(n.index);
      for (const Neighbor& n : *expected) hits += approx.count(n.index);
      wanted += expected->size();
    }
    return static_cast<double>(hits) / static_cast<double>(wanted);
  };
  // d=20 with a 16-check budget is deep in the approximate regime
  // (~0.17 recall on this workload); the dial must climb from there to
  // near-exact at 512 checks.
  const double low = recall_at(16);
  const double high = recall_at(512);
  EXPECT_GT(low, 0.05);
  EXPECT_GE(high, low);
  EXPECT_GT(high, 0.95);
}

TEST(RkdForestTest, ChecksUsedCounterChargesTheBudget) {
  Dataset data = MakeData(10, 2000);
  RkdForestIndex index(ApproximateOptions(64));
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  QueryStats stats;
  KnnSearchContext ctx;
  ctx.stats = &stats;
  constexpr size_t kQueries = 20;
  for (uint32_t q = 0; q < kQueries; ++q) {
    ASSERT_TRUE(index.Query(data.point(q), 10, q, ctx).ok());
  }
  EXPECT_GE(stats.checks_used, kQueries * 10);  // at least k per query
  // The budget overshoots by at most one leaf scan per query.
  EXPECT_LE(stats.checks_used, kQueries * (64 + 16));
  EXPECT_EQ(stats.queries, kQueries);
  EXPECT_GT(stats.distance_evals, 0u);
}

TEST(RkdForestTest, ExactDialMatchesLinearScanExactly) {
  Dataset data = MakeData(7, 1000);
  LinearScanIndex reference;
  RkdForestIndex index;  // checks=0, eps=0: exact best-bin-first
  ASSERT_TRUE(reference.Build(data, Euclidean()).ok());
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  for (uint32_t q = 0; q < 100; ++q) {
    auto expected = reference.Query(data.point(q), 12, q);
    auto actual = index.Query(data.point(q), 12, q);
    ASSERT_TRUE(expected.ok() && actual.ok());
    ASSERT_EQ(actual->size(), expected->size());
    for (size_t i = 0; i < expected->size(); ++i) {
      EXPECT_EQ((*actual)[i].index, (*expected)[i].index);
      EXPECT_EQ((*actual)[i].distance, (*expected)[i].distance);
    }
  }
}

TEST(RkdForestTest, EpsSlackKeepsResultsNearExact) {
  Dataset data = MakeData(10, 1500);
  LinearScanIndex reference;
  ASSERT_TRUE(reference.Build(data, Euclidean()).ok());
  RkdForestIndex::Options options;
  options.search.eps = 0.2;
  RkdForestIndex index(options);
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  constexpr size_t kK = 8;
  for (uint32_t q = 0; q < 100; ++q) {
    auto expected = reference.Query(data.point(q), kK, q);
    auto actual = index.Query(data.point(q), kK, q);
    ASSERT_TRUE(expected.ok() && actual.ok());
    ASSERT_GE(actual->size(), kK);
    // Every returned distance is within (1 + eps) of the true i-th
    // distance: an eps-approximate neighborhood in the standard sense.
    for (size_t i = 0; i < kK; ++i) {
      EXPECT_LE((*actual)[i].distance,
                (*expected)[i].distance * 1.2 + 1e-12);
    }
  }
}

TEST(RkdForestTest, RadiusQueriesAreExactUnderApproximateDial) {
  Dataset data = MakeData(6, 1200);
  LinearScanIndex reference;
  ASSERT_TRUE(reference.Build(data, Euclidean()).ok());
  RkdForestIndex index(ApproximateOptions(16));  // tight kNN budget
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  Rng rng(9);
  for (size_t trial = 0; trial < 30; ++trial) {
    const uint32_t q = static_cast<uint32_t>(rng.UniformU64(data.size()));
    const double radius = rng.Uniform(0.0, 25.0);
    auto expected = reference.QueryRadius(data.point(q), radius, q);
    auto actual = index.QueryRadius(data.point(q), radius, q);
    ASSERT_TRUE(expected.ok() && actual.ok());
    ASSERT_EQ(actual->size(), expected->size());
    for (size_t i = 0; i < expected->size(); ++i) {
      EXPECT_EQ((*actual)[i].index, (*expected)[i].index);
      EXPECT_EQ((*actual)[i].distance, (*expected)[i].distance);
    }
  }
}

// ---------------------------------------------------------------------------
// Build validation and fault injection
// ---------------------------------------------------------------------------

TEST(RkdForestTest, BuildValidatesOptions) {
  Dataset data = MakeData(4, 100);
  {
    RkdForestIndex::Options options;
    options.trees = 0;
    RkdForestIndex index(options);
    EXPECT_EQ(index.Build(data, Euclidean()).code(),
              StatusCode::kInvalidArgument);
  }
  {
    RkdForestIndex::Options options;
    options.leaf_size = 0;
    RkdForestIndex index(options);
    EXPECT_EQ(index.Build(data, Euclidean()).code(),
              StatusCode::kInvalidArgument);
  }
  {
    RkdForestIndex::Options options;
    options.search.eps = -0.5;
    RkdForestIndex index(options);
    EXPECT_EQ(index.Build(data, Euclidean()).code(),
              StatusCode::kInvalidArgument);
  }
  {
    RkdForestIndex index;
    EXPECT_EQ(index.Query(std::vector<double>(4, 0.0), 3).status().code(),
              StatusCode::kFailedPrecondition);
  }
}

TEST(RkdForestTest, BuildFailPointPropagates) {
  Dataset data = MakeData(4, 100);
  RkdForestIndex index;
  {
    ScopedFailPoint armed("index.build",
                          Status::IoError("injected@index.build"));
    Status status = index.Build(data, Euclidean());
    EXPECT_EQ(status.code(), StatusCode::kIoError);
    EXPECT_NE(status.message().find("injected@"), std::string::npos);
  }
  EXPECT_TRUE(index.Build(data, Euclidean()).ok());
}

TEST(RkdForestTest, DuplicateHeavyDataTerminatesAndKeepsTies) {
  // 50 copies of each of 8 sites: every split range eventually has zero
  // variance in all dimensions, which must terminate as a leaf, and the
  // k-distance neighborhood must keep all duplicate ties.
  std::vector<double> values;
  Rng rng(3);
  for (size_t site = 0; site < 8; ++site) {
    const double x = static_cast<double>(site);
    for (size_t copy = 0; copy < 50; ++copy) {
      values.push_back(x);
      values.push_back(-x);
    }
  }
  auto data = Dataset::FromRowMajor(2, std::move(values));
  ASSERT_TRUE(data.ok());
  RkdForestIndex index(ApproximateOptions(32));
  ASSERT_TRUE(index.Build(*data, Euclidean()).ok());
  auto result = index.Query(data->point(0), 5, 0u);
  ASSERT_TRUE(result.ok());
  // 49 remaining duplicates all tie at distance 0.
  EXPECT_EQ(result->size(), 49u);
  for (const Neighbor& n : *result) EXPECT_EQ(n.distance, 0.0);
}

}  // namespace
}  // namespace lofkit
