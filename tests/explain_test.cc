#include "lof/explain.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/linear_scan_index.h"

namespace lofkit {
namespace {

TEST(ExplainTest, SingleDeviantDimensionDominatesContribution) {
  Rng rng(31);
  auto ds = Dataset::Create(3);
  ASSERT_TRUE(ds.ok());
  const double center[3] = {0, 0, 0};
  ASSERT_TRUE(
      generators::AppendGaussianCluster(*ds, rng, center, 1.0, 200).ok());
  // Outlier deviating only in dimension 2.
  const double outlier[3] = {0.0, 0.0, 9.0};
  ASSERT_TRUE(ds->Append(outlier).ok());

  LinearScanIndex index;
  ASSERT_TRUE(index.Build(*ds, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(*ds, index, 10);
  ASSERT_TRUE(m.ok());
  auto explanation = ExplainOutlier(*ds, *m, 200, 10);
  ASSERT_TRUE(explanation.ok());
  EXPECT_EQ(explanation->ranked_dimensions[0], 2u);
  EXPECT_GT(explanation->contribution[2], 0.5);
  // Contributions are a distribution.
  double total = 0;
  for (double c : explanation->contribution) {
    EXPECT_GE(c, 0.0);
    total += c;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ExplainTest, InlierHasDiffuseContributions) {
  Rng rng(32);
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  const double center[2] = {0, 0};
  ASSERT_TRUE(
      generators::AppendGaussianCluster(*ds, rng, center, 1.0, 200).ok());
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(*ds, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(*ds, index, 10);
  ASSERT_TRUE(m.ok());
  auto explanation = ExplainOutlier(*ds, *m, 0, 10);
  ASSERT_TRUE(explanation.ok());
  // For an inlier, no dimension should completely dominate.
  EXPECT_LT(explanation->contribution[explanation->ranked_dimensions[0]],
            0.999);
  EXPECT_EQ(explanation->neighbor_mean.size(), 2u);
  EXPECT_EQ(explanation->neighbor_stddev.size(), 2u);
}

TEST(ExplainTest, ErrorsOnBadInput) {
  Rng rng(33);
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  const double center[2] = {0, 0};
  ASSERT_TRUE(
      generators::AppendGaussianCluster(*ds, rng, center, 1.0, 50).ok());
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(*ds, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(*ds, index, 5);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(ExplainOutlier(*ds, *m, 999, 5).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ExplainOutlier(*ds, *m, 0, 50).status().code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace lofkit
