#include "lof/explain.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/linear_scan_index.h"

namespace lofkit {
namespace {

TEST(ExplainTest, SingleDeviantDimensionDominatesContribution) {
  Rng rng(31);
  auto ds = Dataset::Create(3);
  ASSERT_TRUE(ds.ok());
  const double center[3] = {0, 0, 0};
  ASSERT_TRUE(
      generators::AppendGaussianCluster(*ds, rng, center, 1.0, 200).ok());
  // Outlier deviating only in dimension 2.
  const double outlier[3] = {0.0, 0.0, 9.0};
  ASSERT_TRUE(ds->Append(outlier).ok());

  LinearScanIndex index;
  ASSERT_TRUE(index.Build(*ds, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(*ds, index, 10);
  ASSERT_TRUE(m.ok());
  auto explanation = ExplainOutlier(*ds, *m, 200, 10);
  ASSERT_TRUE(explanation.ok());
  EXPECT_EQ(explanation->ranked_dimensions[0], 2u);
  EXPECT_GT(explanation->contribution[2], 0.5);
  // Contributions are a distribution.
  double total = 0;
  for (double c : explanation->contribution) {
    EXPECT_GE(c, 0.0);
    total += c;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ExplainTest, InlierHasDiffuseContributions) {
  Rng rng(32);
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  const double center[2] = {0, 0};
  ASSERT_TRUE(
      generators::AppendGaussianCluster(*ds, rng, center, 1.0, 200).ok());
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(*ds, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(*ds, index, 10);
  ASSERT_TRUE(m.ok());
  auto explanation = ExplainOutlier(*ds, *m, 0, 10);
  ASSERT_TRUE(explanation.ok());
  // For an inlier, no dimension should completely dominate.
  EXPECT_LT(explanation->contribution[explanation->ranked_dimensions[0]],
            0.999);
  EXPECT_EQ(explanation->neighbor_mean.size(), 2u);
  EXPECT_EQ(explanation->neighbor_stddev.size(), 2u);
}

// An all-duplicates pile is maximally degenerate: zero neighborhood spread,
// zero global range, and an infinite LOF-style score. The explanation must
// stay finite (uniform contributions) and the JSON export must never emit
// the nan/inf tokens JSON cannot parse.
TEST(ExplainTest, DuplicatePileSerializesWithoutNanOrInf) {
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  const double pile[2] = {4.0, -1.0};
  ASSERT_TRUE(generators::AppendDuplicates(*ds, pile, 20).ok());
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(*ds, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(*ds, index, 5);
  ASSERT_TRUE(m.ok());
  auto explanation = ExplainOutlier(*ds, *m, 3, 5);
  ASSERT_TRUE(explanation.ok());
  // The mean of n identical coordinates can land a few ulps off the
  // coordinate itself, so deviations are not exactly zero -- but every
  // field must stay finite and the contributions a distribution.
  double total = 0.0;
  for (size_t d = 0; d < 2; ++d) {
    EXPECT_TRUE(std::isfinite(explanation->deviation[d])) << d;
    EXPECT_TRUE(std::isfinite(explanation->contribution[d])) << d;
    EXPECT_GE(explanation->contribution[d], 0.0);
    total += explanation->contribution[d];
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  const std::string json = ExplanationToJson(
      *explanation, 3, std::numeric_limits<double>::infinity());
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_NE(json.find("\"score\": null"), std::string::npos);
  EXPECT_NE(json.find("\"index\": 3"), std::string::npos);
}

TEST(ExplainTest, ErrorsOnBadInput) {
  Rng rng(33);
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  const double center[2] = {0, 0};
  ASSERT_TRUE(
      generators::AppendGaussianCluster(*ds, rng, center, 1.0, 50).ok());
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(*ds, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(*ds, index, 5);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(ExplainOutlier(*ds, *m, 999, 5).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ExplainOutlier(*ds, *m, 0, 50).status().code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace lofkit
