#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "baselines/db_outlier.h"
#include "common/random.h"
#include "dataset/metric.h"
#include "dataset/scenarios.h"
#include "index/index_factory.h"
#include "lof/lof_sweep.h"

namespace lofkit {
namespace {

// End-to-end pipeline checks on the paper's experiment scenarios: build an
// index, materialize, sweep a MinPts range, rank — and verify the objects
// the paper says are outliers come out on top.

std::set<uint32_t> TopIndices(const std::vector<RankedOutlier>& ranked,
                              size_t n) {
  std::set<uint32_t> top;
  for (size_t i = 0; i < std::min(n, ranked.size()); ++i) {
    top.insert(ranked[i].index);
  }
  return top;
}

TEST(IntegrationTest, Ds1BothOutliersTopRankedByLof) {
  Rng rng(101);
  auto scenario = scenarios::MakeDs1(rng);
  ASSERT_TRUE(scenario.ok());
  auto ranked = LofSweep::RankOutliers(scenario->data, Euclidean(), 10, 30,
                                       2, IndexKind::kRStarTree);
  ASSERT_TRUE(ranked.ok());
  const std::set<uint32_t> top = TopIndices(*ranked, 2);
  EXPECT_TRUE(top.count(scenario->named.at("o1")));
  EXPECT_TRUE(top.count(scenario->named.at("o2")));
  // Both are strong outliers.
  EXPECT_GT((*ranked)[1].score, 1.5);
}

TEST(IntegrationTest, Fig9PlantedOutliersDominateRanking) {
  Rng rng(102);
  auto scenario = scenarios::MakeFig9Dataset(rng);
  ASSERT_TRUE(scenario.ok());
  // The paper computes LOF at MinPts = 40 for this dataset.
  auto ranked = LofSweep::RankOutliers(scenario->data, Euclidean(), 40, 40,
                                       9, IndexKind::kGrid);
  ASSERT_TRUE(ranked.ok());
  // The Gaussian fringes legitimately produce a couple of "weak outliers"
  // (section 7.1), so allow the planted seven to share the top 9.
  const std::set<uint32_t> top = TopIndices(*ranked, 9);
  size_t found = 0;
  for (int i = 0; i < 7; ++i) {
    if (top.count(static_cast<uint32_t>(
            scenario->named.at("outlier_" + std::to_string(i))))) {
      ++found;
    }
  }
  EXPECT_GE(found, 6u);  // at least 6 of the 7 planted on top
}

TEST(IntegrationTest, Fig9UniformClusterMembersHaveLofNearOne) {
  Rng rng(103);
  auto scenario = scenarios::MakeFig9Dataset(rng);
  ASSERT_TRUE(scenario.ok());
  auto index = CreateIndex(IndexKind::kKdTree);
  ASSERT_TRUE(index->Build(scenario->data, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(scenario->data, *index, 40);
  ASSERT_TRUE(m.ok());
  auto scores = LofComputer::Compute(*m, 40);
  ASSERT_TRUE(scores.ok());
  // Section 7.1: "the objects in the uniform clusters all have their LOF
  // equal to 1" — up to sampling noise, including edges, stay below 1.35.
  double sum = 0.0;
  size_t count = 0;
  for (size_t i = 0; i < scenario->data.size(); ++i) {
    if (scenario->data.label(i) != "uniform_dense" &&
        scenario->data.label(i) != "uniform_sparse") {
      continue;
    }
    EXPECT_LT(scores->lof[i], 1.6) << "point " << i;
    sum += scores->lof[i];
    ++count;
  }
  EXPECT_NEAR(sum / static_cast<double>(count), 1.0, 0.1);
}

TEST(IntegrationTest, HockeySubspace1TopTwoAreKonstantinovAndBarnaby) {
  Rng rng(104);
  auto scenario = scenarios::MakeHockeySubspace1(rng);
  ASSERT_TRUE(scenario.ok());
  const Dataset normalized = scenario->data.NormalizedToUnitBox();
  auto ranked = LofSweep::RankOutliers(normalized, Euclidean(), 30, 50, 3,
                                       IndexKind::kKdTree);
  ASSERT_TRUE(ranked.ok());
  // Paper: Konstantinov #1 (LOF 2.4), Barnaby #2 (2.0). The synthetic
  // population can produce one organic extreme, so require #1 exact and
  // Barnaby within the top 3.
  EXPECT_EQ((*ranked)[0].index, scenario->named.at("konstantinov"));
  const std::set<uint32_t> top = TopIndices(*ranked, 3);
  EXPECT_TRUE(top.count(scenario->named.at("barnaby")));
}

TEST(IntegrationTest, HockeySubspace1AgreesWithDbOutlierBaseline) {
  // Section 7.2's point: the DB(pct, dmin) outlier is also LOF's top hit.
  Rng rng(105);
  auto scenario = scenarios::MakeHockeySubspace1(rng);
  ASSERT_TRUE(scenario.ok());
  const Dataset normalized = scenario->data.NormalizedToUnitBox();
  // Find a (pct, dmin) that produces exactly one DB outlier, as in the
  // paper (Konstantinov as the only DB(0.998, 26.3044)-outlier).
  auto db = DbOutlierDetector::Detect(normalized, Euclidean(), 99.8, 0.25);
  ASSERT_TRUE(db.ok());
  ASSERT_GE(db->outlier_count, 1u);
  auto ranked =
      LofSweep::RankOutliers(normalized, Euclidean(), 30, 50, 0,
                             IndexKind::kKdTree);
  ASSERT_TRUE(ranked.ok());
  // Every DB outlier appears among LOF's strongest few.
  const std::set<uint32_t> lof_top = TopIndices(*ranked, 5);
  for (size_t i = 0; i < normalized.size(); ++i) {
    if (db->is_outlier[i]) {
      EXPECT_TRUE(lof_top.count(static_cast<uint32_t>(i))) << "point " << i;
    }
  }
}

TEST(IntegrationTest, HockeySubspace2FindsOsgoodLemieuxPoapst) {
  Rng rng(106);
  auto scenario = scenarios::MakeHockeySubspace2(rng);
  ASSERT_TRUE(scenario.ok());
  const Dataset normalized = scenario->data.NormalizedToUnitBox();
  auto ranked = LofSweep::RankOutliers(normalized, Euclidean(), 30, 50, 3,
                                       IndexKind::kKdTree);
  ASSERT_TRUE(ranked.ok());
  const std::set<uint32_t> top = TopIndices(*ranked, 3);
  EXPECT_TRUE(top.count(scenario->named.at("osgood")));
  EXPECT_TRUE(top.count(scenario->named.at("lemieux")));
  EXPECT_TRUE(top.count(scenario->named.at("poapst")));
  // Osgood is the strongest, as in the paper (LOF 6.0 vs 2.8 / 2.5).
  EXPECT_EQ((*ranked)[0].index, scenario->named.at("osgood"));
}

TEST(IntegrationTest, SoccerTable3PlayersAreTheTopOutliers) {
  Rng rng(107);
  auto scenario = scenarios::MakeSoccerLike(rng);
  ASSERT_TRUE(scenario.ok());
  const Dataset normalized = scenario->data.NormalizedToUnitBox();
  auto ranked = LofSweep::RankOutliers(normalized, Euclidean(), 30, 50, 8,
                                       IndexKind::kKdTree);
  ASSERT_TRUE(ranked.ok());
  const std::set<uint32_t> top = TopIndices(*ranked, 8);
  for (const char* name :
       {"preetz", "schjoenberg", "butt", "kirsten", "elber"}) {
    EXPECT_TRUE(top.count(scenario->named.at(name))) << name;
  }
}

TEST(IntegrationTest, Histograms64DOutliersRankOnTop) {
  Rng rng(108);
  auto scenario = scenarios::Make64DHistograms(rng);
  ASSERT_TRUE(scenario.ok());
  auto ranked = LofSweep::RankOutliers(scenario->data, Euclidean(), 10, 20,
                                       10, IndexKind::kVaFile);
  ASSERT_TRUE(ranked.ok());
  const std::set<uint32_t> top = TopIndices(*ranked, 10);
  size_t found = 0;
  for (int i = 0; i < 5; ++i) {
    if (top.count(static_cast<uint32_t>(
            scenario->named.at("hist_outlier_" + std::to_string(i))))) {
      ++found;
    }
  }
  EXPECT_GE(found, 4u);
}

TEST(IntegrationTest, PipelineIsIndexInvariant) {
  Rng rng(109);
  auto scenario = scenarios::MakeDs1(rng);
  ASSERT_TRUE(scenario.ok());
  std::vector<std::vector<RankedOutlier>> rankings;
  for (IndexKind kind : AllIndexKinds()) {
    auto ranked =
        LofSweep::RankOutliers(scenario->data, Euclidean(), 10, 20, 5, kind);
    ASSERT_TRUE(ranked.ok()) << IndexKindName(kind);
    rankings.push_back(std::move(ranked).value());
  }
  for (size_t i = 1; i < rankings.size(); ++i) {
    ASSERT_EQ(rankings[i].size(), rankings[0].size());
    for (size_t j = 0; j < rankings[0].size(); ++j) {
      EXPECT_EQ(rankings[i][j].index, rankings[0][j].index);
      EXPECT_NEAR(rankings[i][j].score, rankings[0][j].score, 1e-9);
    }
  }
}

}  // namespace
}  // namespace lofkit
