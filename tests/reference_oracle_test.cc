// Clean-room cross-check: a second, independent implementation of
// Definitions 3-7 written directly from the paper text — no materializer,
// no index, no shared helpers — compared against the production pipeline.
// If both agree on tie-heavy and duplicate-heavy data, a bug would have to
// exist twice, in two structurally different codebases.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/linear_scan_index.h"
#include "lof/lof_computer.h"

namespace lofkit {
namespace {

// ---------------------------------------------------------------------------
// The reference implementation (deliberately naive, O(n^2 log n) per call).
// ---------------------------------------------------------------------------

double Dist(const Dataset& ds, size_t a, size_t b) {
  double sum = 0;
  for (size_t d = 0; d < ds.dimension(); ++d) {
    const double delta = ds.point(a)[d] - ds.point(b)[d];
    sum += delta * delta;
  }
  return std::sqrt(sum);
}

// Definition 3: the k-distance of p.
double RefKDistance(const Dataset& ds, size_t p, size_t k) {
  std::vector<double> dists;
  for (size_t o = 0; o < ds.size(); ++o) {
    if (o != p) dists.push_back(Dist(ds, p, o));
  }
  std::sort(dists.begin(), dists.end());
  return dists[k - 1];
}

// Definition 4: every o != p with d(p, o) <= k-distance(p).
std::vector<size_t> RefNeighborhood(const Dataset& ds, size_t p, size_t k) {
  const double k_distance = RefKDistance(ds, p, k);
  std::vector<size_t> neighborhood;
  for (size_t o = 0; o < ds.size(); ++o) {
    if (o != p && Dist(ds, p, o) <= k_distance) neighborhood.push_back(o);
  }
  return neighborhood;
}

// Definition 6 via Definition 5.
double RefLrd(const Dataset& ds, size_t p, size_t k) {
  const std::vector<size_t> neighborhood = RefNeighborhood(ds, p, k);
  double sum = 0;
  for (size_t o : neighborhood) {
    sum += std::max(RefKDistance(ds, o, k), Dist(ds, p, o));
  }
  if (sum == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(neighborhood.size()) / sum;
}

// Definition 7 (with the library's documented inf/inf := 1 convention).
double RefLof(const Dataset& ds, size_t p, size_t k) {
  const std::vector<size_t> neighborhood = RefNeighborhood(ds, p, k);
  const double lrd_p = RefLrd(ds, p, k);
  double sum = 0;
  for (size_t o : neighborhood) {
    const double lrd_o = RefLrd(ds, o, k);
    if (std::isinf(lrd_o) && std::isinf(lrd_p)) {
      sum += 1.0;
    } else {
      sum += lrd_o / lrd_p;
    }
  }
  return sum / static_cast<double>(neighborhood.size());
}

// ---------------------------------------------------------------------------
// Cross-checks
// ---------------------------------------------------------------------------

Dataset TieHeavyData(Rng& rng) {
  // Integer grid (massive exact ties) + a random cloud + duplicates.
  auto ds = Dataset::Create(2);
  EXPECT_TRUE(ds.ok());
  Dataset data = std::move(ds).value();
  for (int x = 0; x < 6; ++x) {
    for (int y = 0; y < 6; ++y) {
      const double p[2] = {static_cast<double>(x), static_cast<double>(y)};
      EXPECT_TRUE(data.Append(p).ok());
    }
  }
  for (int i = 0; i < 30; ++i) {
    const double p[2] = {rng.Uniform(10, 20), rng.Uniform(0, 10)};
    EXPECT_TRUE(data.Append(p).ok());
  }
  const double dup[2] = {2.0, 3.0};  // duplicates of a grid point
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(data.Append(dup).ok());
  }
  return data;
}

TEST(ReferenceOracleTest, KDistanceAndNeighborhoodAgree) {
  Rng rng(601);
  Dataset data = TieHeavyData(rng);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(data, index, 8);
  ASSERT_TRUE(m.ok());
  for (size_t p = 0; p < data.size(); ++p) {
    for (size_t k = 1; k <= 8; ++k) {
      auto view = m->View(p, k);
      ASSERT_TRUE(view.ok());
      ASSERT_DOUBLE_EQ(view->k_distance, RefKDistance(data, p, k))
          << "p=" << p << " k=" << k;
      const std::vector<size_t> expected = RefNeighborhood(data, p, k);
      ASSERT_EQ(view->neighborhood.size(), expected.size())
          << "p=" << p << " k=" << k;
      std::vector<size_t> actual;
      for (const Neighbor& n : view->neighborhood) actual.push_back(n.index);
      std::sort(actual.begin(), actual.end());
      ASSERT_EQ(actual, expected) << "p=" << p << " k=" << k;
    }
  }
}

TEST(ReferenceOracleTest, LrdAndLofAgreeOnTieHeavyData) {
  Rng rng(602);
  Dataset data = TieHeavyData(rng);
  for (size_t k : {2u, 4u, 7u}) {
    auto scores = LofComputer::ComputeFromScratch(data, Euclidean(), k);
    ASSERT_TRUE(scores.ok());
    for (size_t p = 0; p < data.size(); ++p) {
      const double ref_lrd = RefLrd(data, p, k);
      const double ref_lof = RefLof(data, p, k);
      if (std::isinf(ref_lrd)) {
        EXPECT_TRUE(std::isinf(scores->lrd[p])) << "p=" << p << " k=" << k;
      } else {
        ASSERT_NEAR(scores->lrd[p], ref_lrd, 1e-12 * ref_lrd)
            << "p=" << p << " k=" << k;
      }
      if (std::isinf(ref_lof)) {
        EXPECT_TRUE(std::isinf(scores->lof[p])) << "p=" << p << " k=" << k;
      } else {
        ASSERT_NEAR(scores->lof[p], ref_lof, 1e-9 * std::max(1.0, ref_lof))
            << "p=" << p << " k=" << k;
      }
    }
  }
}

TEST(ReferenceOracleTest, LofAgreesOnContinuousRandomData) {
  Rng rng(603);
  auto ds = generators::MakePerformanceWorkload(rng, 3, 120, 3);
  ASSERT_TRUE(ds.ok());
  auto scores = LofComputer::ComputeFromScratch(*ds, Euclidean(), 10);
  ASSERT_TRUE(scores.ok());
  // Spot-check a sample (the reference is O(n^2) per point).
  for (size_t p = 0; p < ds->size(); p += 7) {
    const double ref = RefLof(*ds, p, 10);
    ASSERT_NEAR(scores->lof[p], ref, 1e-9 * std::max(1.0, ref)) << p;
  }
}

}  // namespace
}  // namespace lofkit
