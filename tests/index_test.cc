#include "index/index_factory.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <span>

#include <gtest/gtest.h>

#include "common/random.h"
#include "dataset/generators.h"
#include "index/grid_index.h"
#include "index/kd_tree_index.h"
#include "index/linear_scan_index.h"
#include "index/m_tree_index.h"
#include "index/rkd_forest_index.h"
#include "index/rstar_tree_index.h"
#include "index/va_file_index.h"

namespace lofkit {
namespace {

Dataset MakeRandomClustered(Rng& rng, size_t dim, size_t n) {
  auto ds = generators::MakePerformanceWorkload(rng, dim, n, 5);
  EXPECT_TRUE(ds.ok()) << ds.status();
  return std::move(ds).value();
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

TEST(IndexFactoryTest, CreatesEveryKind) {
  for (IndexKind kind : AllIndexKinds()) {
    auto index = CreateIndex(kind);
    ASSERT_NE(index, nullptr);
    EXPECT_EQ(index->name(), IndexKindName(kind));
  }
}

TEST(IndexFactoryTest, CreateByName) {
  auto index = CreateIndexByName("kd_tree");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->name(), "kd_tree");
  EXPECT_FALSE(CreateIndexByName("btree").ok());
}

TEST(IndexFactoryTest, CreateByNameRoundTripsEveryRegisteredName) {
  for (IndexKind kind : AllIndexKinds()) {
    const std::string name(IndexKindName(kind));
    auto index = CreateIndexByName(name);
    ASSERT_TRUE(index.ok()) << name;
    EXPECT_EQ((*index)->name(), name);
  }
}

TEST(IndexFactoryTest, UnknownNameErrorListsEveryValidEngine) {
  auto index = CreateIndexByName("btree");
  ASSERT_FALSE(index.ok());
  EXPECT_EQ(index.status().code(), StatusCode::kNotFound);
  const std::string message = index.status().ToString();
  EXPECT_NE(message.find("btree"), std::string::npos) << message;
  for (IndexKind kind : AllIndexKinds()) {
    EXPECT_NE(message.find(std::string(IndexKindName(kind))),
              std::string::npos)
        << "error message must list " << IndexKindName(kind) << ": "
        << message;
  }
}

TEST(IndexFactoryTest, AnnOptionsReachTheForest) {
  AnnIndexOptions ann;
  ann.trees = 3;
  ann.seed = 99;
  ann.search.checks = 64;
  ann.search.eps = 0.5;
  auto index = CreateIndexByName("rkd_forest", ann);
  ASSERT_TRUE(index.ok());
  auto* forest = dynamic_cast<RkdForestIndex*>(index->get());
  ASSERT_NE(forest, nullptr);
  EXPECT_EQ(forest->options().trees, 3u);
  EXPECT_EQ(forest->options().seed, 99u);
  EXPECT_EQ(forest->options().search.checks, 64u);
  EXPECT_DOUBLE_EQ(forest->options().search.eps, 0.5);
}

TEST(IndexFactoryTest, RecommendationCoversAllRegimes) {
  EXPECT_EQ(RecommendIndexKind(2), IndexKind::kGrid);
  EXPECT_EQ(RecommendIndexKind(5), IndexKind::kRStarTree);
  EXPECT_EQ(RecommendIndexKind(20), IndexKind::kKdTree);
  EXPECT_EQ(RecommendIndexKind(64), IndexKind::kVaFile);
}

// ---------------------------------------------------------------------------
// Shared engine conformance suite: every engine must agree exactly with the
// linear scan on k-distance neighborhoods (ties included) and radius
// queries, per Definitions 3 and 4.
// ---------------------------------------------------------------------------

struct EngineCase {
  IndexKind kind;
  size_t dim;
  const Metric* metric;
};

std::string EngineCaseName(
    const ::testing::TestParamInfo<EngineCase>& info) {
  return std::string(IndexKindName(info.param.kind)) + "_d" +
         std::to_string(info.param.dim) + "_" +
         std::string(info.param.metric->name());
}

class IndexConformanceTest : public ::testing::TestWithParam<EngineCase> {};

TEST_P(IndexConformanceTest, KnnMatchesLinearScan) {
  const EngineCase& param = GetParam();
  Rng rng(1000 + param.dim);
  Dataset data = MakeRandomClustered(rng, param.dim, 400);

  LinearScanIndex reference;
  ASSERT_TRUE(reference.Build(data, *param.metric).ok());
  auto engine = CreateIndex(param.kind);
  ASSERT_TRUE(engine->Build(data, *param.metric).ok());

  for (size_t trial = 0; trial < 30; ++trial) {
    const size_t q = rng.UniformU64(data.size());
    const size_t k = 1 + rng.UniformU64(20);
    auto expected = reference.Query(data.point(q), k,
                                    static_cast<uint32_t>(q));
    auto actual = engine->Query(data.point(q), k, static_cast<uint32_t>(q));
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(actual.ok()) << actual.status();
    ASSERT_EQ(actual->size(), expected->size())
        << "engine " << engine->name() << " k=" << k;
    for (size_t i = 0; i < expected->size(); ++i) {
      EXPECT_EQ((*actual)[i].index, (*expected)[i].index);
      EXPECT_DOUBLE_EQ((*actual)[i].distance, (*expected)[i].distance);
    }
  }
}

TEST_P(IndexConformanceTest, RadiusMatchesLinearScan) {
  const EngineCase& param = GetParam();
  Rng rng(2000 + param.dim);
  Dataset data = MakeRandomClustered(rng, param.dim, 300);

  LinearScanIndex reference;
  ASSERT_TRUE(reference.Build(data, *param.metric).ok());
  auto engine = CreateIndex(param.kind);
  ASSERT_TRUE(engine->Build(data, *param.metric).ok());

  for (size_t trial = 0; trial < 20; ++trial) {
    const size_t q = rng.UniformU64(data.size());
    const double radius = rng.Uniform(0.0, 30.0);
    auto expected = reference.QueryRadius(data.point(q), radius);
    auto actual = engine->QueryRadius(data.point(q), radius);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(actual.ok()) << actual.status();
    ASSERT_EQ(actual->size(), expected->size());
    for (size_t i = 0; i < expected->size(); ++i) {
      EXPECT_EQ((*actual)[i].index, (*expected)[i].index);
    }
  }
}

TEST_P(IndexConformanceTest, ContextReuseMatchesWrapper) {
  // One KnnSearchContext reused across many kNN and radius queries must be
  // bit-identical to the allocating wrappers: same accumulation, same tie
  // order, same doubles.
  const EngineCase& param = GetParam();
  Rng rng(5000 + param.dim);
  Dataset data = MakeRandomClustered(rng, param.dim, 350);

  auto engine = CreateIndex(param.kind);
  ASSERT_TRUE(engine->Build(data, *param.metric).ok());

  KnnSearchContext ctx;
  for (size_t trial = 0; trial < 25; ++trial) {
    const size_t q = rng.UniformU64(data.size());
    const size_t k = 1 + rng.UniformU64(15);
    auto expected = engine->Query(data.point(q), k,
                                  static_cast<uint32_t>(q));
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(engine->Query(data.point(q), k, static_cast<uint32_t>(q),
                              ctx).ok());
    const std::span<const Neighbor> actual = ctx.results();
    ASSERT_EQ(actual.size(), expected->size());
    for (size_t i = 0; i < expected->size(); ++i) {
      EXPECT_EQ(actual[i].index, (*expected)[i].index);
      EXPECT_EQ(actual[i].distance, (*expected)[i].distance);  // bitwise
    }

    const double radius = rng.Uniform(0.0, 25.0);
    auto expected_ball = engine->QueryRadius(data.point(q), radius);
    ASSERT_TRUE(expected_ball.ok());
    ASSERT_TRUE(
        engine->QueryRadius(data.point(q), radius, std::nullopt, ctx).ok());
    const std::span<const Neighbor> ball = ctx.results();
    ASSERT_EQ(ball.size(), expected_ball->size());
    for (size_t i = 0; i < expected_ball->size(); ++i) {
      EXPECT_EQ(ball[i].index, (*expected_ball)[i].index);
      EXPECT_EQ(ball[i].distance, (*expected_ball)[i].distance);
    }
  }
}

TEST_P(IndexConformanceTest, QueryBatchMatchesWrapper) {
  // The batched self-query path (including engine overrides such as the
  // linear scan's tiled kernel) must reproduce the single-query wrapper
  // exactly for every point, at several batch shapes.
  const EngineCase& param = GetParam();
  Rng rng(6000 + param.dim);
  Dataset data = MakeRandomClustered(rng, param.dim, 300);

  auto engine = CreateIndex(param.kind);
  ASSERT_TRUE(engine->Build(data, *param.metric).ok());

  KnnSearchContext ctx;
  // Batch sizes straddle the tile width used by blocked kernels.
  for (size_t batch : {size_t{1}, size_t{7}, size_t{16}, size_t{61}}) {
    std::vector<uint32_t> ids;
    for (size_t begin = 0; begin < data.size(); begin += batch) {
      const size_t end = std::min(begin + batch, data.size());
      ids.resize(end - begin);
      for (size_t j = 0; j < ids.size(); ++j) {
        ids[j] = static_cast<uint32_t>(begin + j);
      }
      ASSERT_TRUE(engine->QueryBatch(ids, 9, ctx).ok());
      ASSERT_EQ(ctx.batch_size(), ids.size());
      for (size_t j = 0; j < ids.size(); ++j) {
        auto expected = engine->Query(data.point(ids[j]), 9, ids[j]);
        ASSERT_TRUE(expected.ok());
        const std::span<const Neighbor> actual = ctx.batch_results(j);
        ASSERT_EQ(actual.size(), expected->size())
            << "batch " << batch << " id " << ids[j];
        for (size_t i = 0; i < expected->size(); ++i) {
          EXPECT_EQ(actual[i].index, (*expected)[i].index);
          EXPECT_EQ(actual[i].distance, (*expected)[i].distance);
        }
      }
    }
  }
}

TEST_P(IndexConformanceTest, QueryBatchRejectsBadIds) {
  const EngineCase& param = GetParam();
  Rng rng(6500 + param.dim);
  Dataset data = MakeRandomClustered(rng, param.dim, 50);
  auto engine = CreateIndex(param.kind);
  ASSERT_TRUE(engine->Build(data, *param.metric).ok());
  KnnSearchContext ctx;
  const uint32_t bad[] = {0, static_cast<uint32_t>(data.size())};
  EXPECT_EQ(engine->QueryBatch(bad, 3, ctx).code(),
            StatusCode::kInvalidArgument);
}

TEST_P(IndexConformanceTest, RadiusBoundaryExcludeAndOrder) {
  // Definition 1 uses a closed ball: a point at exactly the query radius is
  // part of the neighborhood. Pick the radius as the *exact* distance of a
  // mid-ranked point so the boundary case is always exercised, then check
  // inclusivity, exclude semantics, and (distance, index) ordering.
  const EngineCase& param = GetParam();
  Rng rng(7000 + param.dim);
  Dataset data = MakeRandomClustered(rng, param.dim, 250);

  auto engine = CreateIndex(param.kind);
  ASSERT_TRUE(engine->Build(data, *param.metric).ok());

  for (size_t trial = 0; trial < 10; ++trial) {
    const size_t q = rng.UniformU64(data.size());
    std::vector<double> dist(data.size());
    for (size_t i = 0; i < data.size(); ++i) {
      dist[i] = param.metric->Distance(data.point(q), data.point(i));
    }
    std::vector<double> sorted = dist;
    std::sort(sorted.begin(), sorted.end());
    const double radius = sorted[data.size() / 3];  // an exact distance
    size_t expected_count = 0;
    for (double d : dist) {
      if (d <= radius) ++expected_count;
    }

    auto ball = engine->QueryRadius(data.point(q), radius);
    ASSERT_TRUE(ball.ok()) << ball.status();
    // Closed-ball inclusivity: the boundary point itself must be present.
    ASSERT_EQ(ball->size(), expected_count);
    bool boundary_seen = false;
    for (const Neighbor& n : *ball) {
      EXPECT_LE(n.distance, radius);
      if (n.distance == radius) boundary_seen = true;
    }
    EXPECT_TRUE(boundary_seen);
    // Sorted by (distance, index), and the self point (distance 0) present.
    for (size_t i = 1; i < ball->size(); ++i) {
      const Neighbor& a = (*ball)[i - 1];
      const Neighbor& b = (*ball)[i];
      EXPECT_TRUE(a.distance < b.distance ||
                  (a.distance == b.distance && a.index < b.index));
    }
    // Exclude semantics: dropping q removes exactly that one entry.
    auto excl = engine->QueryRadius(data.point(q), radius,
                                    static_cast<uint32_t>(q));
    ASSERT_TRUE(excl.ok());
    EXPECT_EQ(excl->size(), ball->size() - 1);
    for (const Neighbor& n : *excl) {
      EXPECT_NE(n.index, static_cast<uint32_t>(q));
    }
  }
}

TEST_P(IndexConformanceTest, ExternalQueryPointWorks) {
  // Query coordinates that are not part of the dataset (and no exclusion).
  const EngineCase& param = GetParam();
  Rng rng(3000 + param.dim);
  Dataset data = MakeRandomClustered(rng, param.dim, 200);

  LinearScanIndex reference;
  ASSERT_TRUE(reference.Build(data, *param.metric).ok());
  auto engine = CreateIndex(param.kind);
  ASSERT_TRUE(engine->Build(data, *param.metric).ok());

  std::vector<double> q(param.dim);
  for (size_t trial = 0; trial < 10; ++trial) {
    for (size_t d = 0; d < param.dim; ++d) q[d] = rng.Uniform(-20, 120);
    auto expected = reference.Query(q, 7);
    auto actual = engine->Query(q, 7);
    ASSERT_TRUE(expected.ok() && actual.ok());
    ASSERT_EQ(actual->size(), expected->size());
    for (size_t i = 0; i < expected->size(); ++i) {
      EXPECT_EQ((*actual)[i].index, (*expected)[i].index);
    }
  }
}

TEST_P(IndexConformanceTest, TiesAreAllReturned) {
  // A regular integer grid has massive distance ties; Definition 4 says the
  // k-distance neighborhood contains every tied point.
  const EngineCase& param = GetParam();
  if (param.dim != 2) GTEST_SKIP() << "tie dataset is 2-d";
  auto data_or = Dataset::Create(2);
  ASSERT_TRUE(data_or.ok());
  Dataset data = std::move(data_or).value();
  for (int x = 0; x < 10; ++x) {
    for (int y = 0; y < 10; ++y) {
      const double p[2] = {static_cast<double>(x), static_cast<double>(y)};
      ASSERT_TRUE(data.Append(p).ok());
    }
  }
  auto engine = CreateIndex(param.kind);
  ASSERT_TRUE(engine->Build(data, *param.metric).ok());
  // The four axis neighbors of an interior point are all at distance 1:
  // querying k=2 must return all 4 (|N_k| > k).
  const size_t center = 5 * 10 + 5;
  auto result = engine->Query(data.point(center), 2,
                              static_cast<uint32_t>(center));
  ASSERT_TRUE(result.ok());
  size_t at_k_distance = 0;
  const double k_distance = (*result)[1].distance;
  for (const Neighbor& n : *result) {
    EXPECT_LE(n.distance, k_distance);
    if (n.distance == k_distance) ++at_k_distance;
  }
  EXPECT_EQ(result->size(), 4u);
  EXPECT_EQ(at_k_distance, 4u);
}

TEST_P(IndexConformanceTest, LargeKReturnsAllEligible) {
  const EngineCase& param = GetParam();
  Rng rng(4000 + param.dim);
  Dataset data = MakeRandomClustered(rng, param.dim, 50);
  auto engine = CreateIndex(param.kind);
  ASSERT_TRUE(engine->Build(data, *param.metric).ok());
  auto result = engine->Query(data.point(0), 100, uint32_t{0});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 49u);  // everything but the excluded point
}

TEST_P(IndexConformanceTest, ErrorsOnMisuse) {
  const EngineCase& param = GetParam();
  auto engine = CreateIndex(param.kind);
  std::vector<double> q(param.dim, 0.0);
  // Query before build.
  EXPECT_EQ(engine->Query(q, 3).status().code(),
            StatusCode::kFailedPrecondition);
  // Empty dataset.
  auto empty = Dataset::Create(param.dim);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(engine->Build(*empty, *param.metric).code(),
            StatusCode::kInvalidArgument);
  // Build properly, then misuse queries.
  Rng rng(1);
  Dataset data = MakeRandomClustered(rng, param.dim, 60);
  ASSERT_TRUE(engine->Build(data, *param.metric).ok());
  EXPECT_EQ(engine->Query(q, 0).status().code(),
            StatusCode::kInvalidArgument);
  std::vector<double> wrong_dim(param.dim + 1, 0.0);
  EXPECT_EQ(engine->Query(wrong_dim, 3).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine->QueryRadius(q, -1.0).status().code(),
            StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, IndexConformanceTest,
    ::testing::Values(
        EngineCase{IndexKind::kGrid, 2, &Euclidean()},
        EngineCase{IndexKind::kGrid, 2, &Manhattan()},
        EngineCase{IndexKind::kGrid, 5, &Euclidean()},
        EngineCase{IndexKind::kKdTree, 2, &Euclidean()},
        EngineCase{IndexKind::kKdTree, 5, &Euclidean()},
        EngineCase{IndexKind::kKdTree, 5, &Chebyshev()},
        EngineCase{IndexKind::kKdTree, 10, &Euclidean()},
        EngineCase{IndexKind::kRStarTree, 2, &Euclidean()},
        EngineCase{IndexKind::kRStarTree, 5, &Euclidean()},
        EngineCase{IndexKind::kRStarTree, 5, &Manhattan()},
        EngineCase{IndexKind::kRStarTree, 10, &Euclidean()},
        EngineCase{IndexKind::kVaFile, 2, &Euclidean()},
        EngineCase{IndexKind::kVaFile, 10, &Euclidean()},
        EngineCase{IndexKind::kVaFile, 20, &Chebyshev()},
        EngineCase{IndexKind::kMTree, 2, &Euclidean()},
        EngineCase{IndexKind::kMTree, 5, &Manhattan()},
        EngineCase{IndexKind::kMTree, 5, &Angular()},
        EngineCase{IndexKind::kMTree, 10, &Euclidean()},
        // The forest's default SearchParams are exact (unbounded checks,
        // zero eps), so it must clear the same bar as the exact engines.
        EngineCase{IndexKind::kRkdForest, 2, &Euclidean()},
        EngineCase{IndexKind::kRkdForest, 5, &Euclidean()},
        EngineCase{IndexKind::kRkdForest, 5, &Manhattan()},
        EngineCase{IndexKind::kRkdForest, 10, &Euclidean()},
        EngineCase{IndexKind::kRkdForest, 10, &Chebyshev()},
        EngineCase{IndexKind::kLinearScan, 3, &Euclidean()}),
    EngineCaseName);

// ---------------------------------------------------------------------------
// Engine-specific structure checks
// ---------------------------------------------------------------------------

TEST(GridIndexTest, ChoosesReasonableResolution) {
  Rng rng(55);
  Dataset data = MakeRandomClustered(rng, 2, 400);
  GridIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  EXPECT_GE(index.cells_per_dimension(), 2u);
  EXPECT_LE(index.cells_per_dimension(), 64u);
}

TEST(GridIndexTest, DegeneratesGracefullyInHighDimensions) {
  Rng rng(56);
  Dataset data = MakeRandomClustered(rng, 40, 100);
  GridIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto result = index.Query(data.point(0), 5, uint32_t{0});
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->size(), 5u);
}

TEST(KdTreeIndexTest, BuildsBalancedTree) {
  Rng rng(57);
  Dataset data = MakeRandomClustered(rng, 3, 1000);
  KdTreeIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  EXPECT_GT(index.node_count(), 60u);  // 1000/16 leaves plus internals
}

TEST(RStarTreeIndexTest, TreeStructureIsSane) {
  Rng rng(58);
  Dataset data = MakeRandomClustered(rng, 4, 2000);
  RStarTreeIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  EXPECT_GE(index.height(), 2u);
  EXPECT_GT(index.node_count(), 10u);
}

TEST(RStarTreeIndexTest, HighDimensionalDataGrowsSupernodes) {
  // In 30-d, directory splits become overlap-heavy; the X-tree rule should
  // kick in at least occasionally on clustered data.
  Rng rng(59);
  Dataset data = MakeRandomClustered(rng, 30, 3000);
  RStarTreeIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  // The structure stays queryable either way; supernodes are expected but
  // we only assert the tree did not degenerate into an error.
  auto result = index.Query(data.point(0), 10, uint32_t{0});
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->size(), 10u);
}

TEST(RStarTreeIndexTest, RebuildReplacesContent) {
  Rng rng(60);
  Dataset small = MakeRandomClustered(rng, 2, 50);
  Dataset large = MakeRandomClustered(rng, 2, 500);
  RStarTreeIndex index;
  ASSERT_TRUE(index.Build(small, Euclidean()).ok());
  ASSERT_TRUE(index.Build(large, Euclidean()).ok());
  auto all = index.QueryRadius(large.point(0), 1e9);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 500u);
}

TEST(RStarTreeIndexTest, InvariantsHoldAfterInsertionBuild) {
  Rng rng(160);
  Dataset data = MakeRandomClustered(rng, 3, 3000);
  RStarTreeIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  EXPECT_TRUE(index.CheckInvariants().ok()) << index.CheckInvariants();
}

TEST(RStarTreeIndexTest, InvariantsHoldAfterBulkLoad) {
  Rng rng(161);
  Dataset data = MakeRandomClustered(rng, 3, 3000);
  RStarTreeIndex index(RStarTreeIndex::BuildMode::kBulkLoadStr);
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  EXPECT_TRUE(index.CheckInvariants().ok()) << index.CheckInvariants();
  EXPECT_EQ(index.supernode_count(), 0u);  // STR packing never overflows
}

TEST(RStarTreeIndexTest, BulkLoadMatchesLinearScan) {
  Rng rng(162);
  Dataset data = MakeRandomClustered(rng, 4, 800);
  LinearScanIndex reference;
  ASSERT_TRUE(reference.Build(data, Euclidean()).ok());
  RStarTreeIndex bulk(RStarTreeIndex::BuildMode::kBulkLoadStr);
  ASSERT_TRUE(bulk.Build(data, Euclidean()).ok());
  for (size_t trial = 0; trial < 25; ++trial) {
    const size_t q = rng.UniformU64(data.size());
    auto expected = reference.Query(data.point(q), 15,
                                    static_cast<uint32_t>(q));
    auto actual = bulk.Query(data.point(q), 15, static_cast<uint32_t>(q));
    ASSERT_TRUE(expected.ok() && actual.ok());
    ASSERT_EQ(actual->size(), expected->size());
    for (size_t i = 0; i < expected->size(); ++i) {
      EXPECT_EQ((*actual)[i].index, (*expected)[i].index);
    }
  }
}

TEST(RStarTreeIndexTest, BulkLoadUsesFewerNodes) {
  // STR packs nodes nearly full, so it needs no more (usually far fewer)
  // nodes than one-by-one insertion.
  Rng rng(163);
  Dataset data = MakeRandomClustered(rng, 2, 4000);
  RStarTreeIndex inserted;
  RStarTreeIndex bulk(RStarTreeIndex::BuildMode::kBulkLoadStr);
  ASSERT_TRUE(inserted.Build(data, Euclidean()).ok());
  ASSERT_TRUE(bulk.Build(data, Euclidean()).ok());
  EXPECT_LE(bulk.node_count(), inserted.node_count());
}

TEST(VaFileIndexTest, RejectsBadBitWidth) {
  Rng rng(61);
  Dataset data = MakeRandomClustered(rng, 2, 50);
  VaFileIndex index(0);
  EXPECT_FALSE(index.Build(data, Euclidean()).ok());
  VaFileIndex index9(9);
  EXPECT_FALSE(index9.Build(data, Euclidean()).ok());
}

class VaFileBitsTest : public ::testing::TestWithParam<size_t> {};

TEST_P(VaFileBitsTest, ExactAtEveryBitWidth) {
  // The approximation granularity changes the candidate set, never the
  // result: every bit width must reproduce the linear scan exactly.
  Rng rng(180);
  Dataset data = MakeRandomClustered(rng, 6, 300);
  LinearScanIndex reference;
  ASSERT_TRUE(reference.Build(data, Euclidean()).ok());
  VaFileIndex va(GetParam());
  ASSERT_TRUE(va.Build(data, Euclidean()).ok());
  for (int trial = 0; trial < 15; ++trial) {
    const size_t q = rng.UniformU64(data.size());
    auto expected = reference.Query(data.point(q), 12,
                                    static_cast<uint32_t>(q));
    auto actual = va.Query(data.point(q), 12, static_cast<uint32_t>(q));
    ASSERT_TRUE(expected.ok() && actual.ok());
    ASSERT_EQ(actual->size(), expected->size()) << "bits " << GetParam();
    for (size_t i = 0; i < expected->size(); ++i) {
      ASSERT_EQ((*actual)[i].index, (*expected)[i].index);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BitWidths, VaFileBitsTest,
                         ::testing::Values(1, 2, 4, 6, 8),
                         [](const auto& info) {
                           return "bits" + std::to_string(info.param);
                         });

TEST(VaFileIndexTest, IntervalsMatchBits) {
  VaFileIndex index(4);
  EXPECT_EQ(index.intervals(), 16u);
}

TEST(MTreeIndexTest, InvariantsHoldOnClusteredData) {
  Rng rng(170);
  Dataset data = MakeRandomClustered(rng, 3, 2500);
  MTreeIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  EXPECT_TRUE(index.CheckInvariants().ok()) << index.CheckInvariants();
  EXPECT_GE(index.height(), 2u);
}

TEST(MTreeIndexTest, InvariantsHoldUnderAngularMetric) {
  // The M-tree is the only engine whose pruning works natively for
  // non-coordinate metrics; verify its structure under one.
  Rng rng(171);
  auto data_or = Dataset::Create(8);
  ASSERT_TRUE(data_or.ok());
  Dataset data = std::move(data_or).value();
  std::vector<double> p(8);
  for (int i = 0; i < 800; ++i) {
    for (auto& x : p) x = rng.Uniform(0.01, 1.0);
    ASSERT_TRUE(data.Append(p).ok());
  }
  MTreeIndex index;
  ASSERT_TRUE(index.Build(data, Angular()).ok());
  EXPECT_TRUE(index.CheckInvariants().ok()) << index.CheckInvariants();
}

TEST(MTreeIndexTest, AngularKnnMatchesLinearScan) {
  Rng rng(172);
  auto data_or = Dataset::Create(16);
  ASSERT_TRUE(data_or.ok());
  Dataset data = std::move(data_or).value();
  std::vector<double> p(16);
  for (int i = 0; i < 500; ++i) {
    for (auto& x : p) x = rng.Uniform(0.01, 1.0);
    ASSERT_TRUE(data.Append(p).ok());
  }
  LinearScanIndex reference;
  MTreeIndex tree;
  ASSERT_TRUE(reference.Build(data, Angular()).ok());
  ASSERT_TRUE(tree.Build(data, Angular()).ok());
  for (int trial = 0; trial < 20; ++trial) {
    const size_t q = rng.UniformU64(data.size());
    auto expected = reference.Query(data.point(q), 10,
                                    static_cast<uint32_t>(q));
    auto actual = tree.Query(data.point(q), 10, static_cast<uint32_t>(q));
    ASSERT_TRUE(expected.ok() && actual.ok());
    ASSERT_EQ(actual->size(), expected->size());
    for (size_t i = 0; i < expected->size(); ++i) {
      EXPECT_EQ((*actual)[i].index, (*expected)[i].index);
    }
  }
}

// ---------------------------------------------------------------------------
// Chunked QueryBatch sweep for the hierarchical engines. The TEST_P batch
// conformance above runs on 300 points; the metric-tree engines (M-tree,
// R*-tree) have depth- and split-dependent traversal states that only
// exercise at larger scale, so this sweep drives materializer-shaped
// chunked batches (fixed-size chunks through one long-lived context, k
// spanning the leaf capacity) against the linear-scan reference.
// ---------------------------------------------------------------------------

class HierarchicalBatchSweepTest
    : public ::testing::TestWithParam<IndexKind> {};

TEST_P(HierarchicalBatchSweepTest, ChunkedBatchesMatchLinearScan) {
  Rng rng(7700);
  Dataset data = MakeRandomClustered(rng, 6, 1200);

  LinearScanIndex reference;
  ASSERT_TRUE(reference.Build(data, Euclidean()).ok());
  auto engine = CreateIndex(GetParam());
  ASSERT_TRUE(engine->Build(data, Euclidean()).ok());

  KnnSearchContext engine_ctx;
  KnnSearchContext reference_ctx;
  constexpr size_t kChunk = 64;  // the materializer's batching shape
  for (const size_t k : {size_t{3}, size_t{17}, size_t{40}}) {
    std::vector<uint32_t> ids;
    for (size_t begin = 0; begin < data.size(); begin += kChunk) {
      const size_t end = std::min(begin + kChunk, data.size());
      ids.resize(end - begin);
      for (size_t j = 0; j < ids.size(); ++j) {
        ids[j] = static_cast<uint32_t>(begin + j);
      }
      ASSERT_TRUE(engine->QueryBatch(ids, k, engine_ctx).ok());
      ASSERT_TRUE(reference.QueryBatch(ids, k, reference_ctx).ok());
      ASSERT_EQ(engine_ctx.batch_size(), ids.size());
      for (size_t j = 0; j < ids.size(); ++j) {
        const std::span<const Neighbor> expected =
            reference_ctx.batch_results(j);
        const std::span<const Neighbor> actual =
            engine_ctx.batch_results(j);
        ASSERT_EQ(actual.size(), expected.size())
            << "engine " << engine->name() << " k=" << k << " id " << ids[j];
        for (size_t i = 0; i < expected.size(); ++i) {
          EXPECT_EQ(actual[i].index, expected[i].index);
          EXPECT_DOUBLE_EQ(actual[i].distance, expected[i].distance);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, HierarchicalBatchSweepTest,
    ::testing::Values(IndexKind::kMTree, IndexKind::kRStarTree),
    [](const ::testing::TestParamInfo<IndexKind>& info) {
      return std::string(IndexKindName(info.param));
    });

TEST(KnnCollectorTest, KeepsTiesAndFiltersStaleAccepts) {
  KnnSearchContext ctx;
  internal_index::KnnCollector collector(2, ctx);
  collector.Offer(0, 5.0);
  collector.Offer(1, 4.0);
  collector.Offer(2, 1.0);  // pushes tau down to 4.0
  collector.Offer(3, 4.0);  // tie at tau stays
  collector.Offer(4, 6.0);  // above tau, rejected
  std::vector<Neighbor> result;
  collector.TakeInto(result);
  ASSERT_EQ(result.size(), 3u);  // 1.0, 4.0, 4.0 — 5.0 filtered as stale
  EXPECT_EQ(result[0].index, 2u);
  EXPECT_EQ(result[1].index, 1u);
  EXPECT_EQ(result[2].index, 3u);
}

}  // namespace
}  // namespace lofkit
