#include "common/random.h"

#include <cmath>

#include <gtest/gtest.h>

namespace lofkit {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, UniformU64IsUnbiasedAcrossBuckets) {
  Rng rng(99);
  const int kBuckets = 10;
  const int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.UniformU64(kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, 600);  // ~6 sigma
  }
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(5);
  const int kSamples = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.Gaussian();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParamsShiftsAndScales) {
  Rng rng(5);
  const int kSamples = 100000;
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / kSamples, 10.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(11);
  const int kSamples = 200000;
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.Exponential(0.5);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kSamples, 2.0, 0.05);
}

TEST(RngTest, GammaMeanMatchesShape) {
  Rng rng(13);
  const int kSamples = 100000;
  for (double shape : {0.5, 1.0, 3.0}) {
    double sum = 0.0;
    for (int i = 0; i < kSamples; ++i) {
      const double x = rng.Gamma(shape);
      ASSERT_GE(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum / kSamples, shape, 0.05 * std::max(1.0, shape));
  }
}

TEST(RngTest, BernoulliFrequencyMatches) {
  Rng rng(17);
  int hits = 0;
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(23);
  std::vector<int> values = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, values);
  EXPECT_NE(shuffled, values);  // overwhelmingly likely for 10 elements
}

}  // namespace
}  // namespace lofkit
