#include "dataset/generators.h"

#include <cmath>

#include <gtest/gtest.h>

namespace lofkit {
namespace {

using namespace generators;  // NOLINT: test-local convenience

TEST(GeneratorsTest, GaussianClusterCountAndLabel) {
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  Rng rng(1);
  const double center[2] = {5, 5};
  ASSERT_TRUE(AppendGaussianCluster(*ds, rng, center, 1.0, 100, "c").ok());
  EXPECT_EQ(ds->size(), 100u);
  EXPECT_EQ(ds->label(0), "c");
  EXPECT_EQ(ds->label(99), "c");
}

TEST(GeneratorsTest, GaussianClusterCentersNearRequested) {
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  Rng rng(2);
  const double center[2] = {10, -4};
  ASSERT_TRUE(AppendGaussianCluster(*ds, rng, center, 0.5, 2000).ok());
  double mx = 0, my = 0;
  for (size_t i = 0; i < ds->size(); ++i) {
    mx += ds->point(i)[0];
    my += ds->point(i)[1];
  }
  EXPECT_NEAR(mx / 2000, 10.0, 0.1);
  EXPECT_NEAR(my / 2000, -4.0, 0.1);
}

TEST(GeneratorsTest, GaussianClusterRejectsDimensionMismatch) {
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  Rng rng(3);
  const double center[3] = {0, 0, 0};
  EXPECT_FALSE(AppendGaussianCluster(*ds, rng, center, 1.0, 10).ok());
}

TEST(GeneratorsTest, AnisoRejectsNegativeStddev) {
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  Rng rng(3);
  const double center[2] = {0, 0};
  const double stddevs[2] = {1.0, -1.0};
  EXPECT_FALSE(
      AppendGaussianClusterAniso(*ds, rng, center, stddevs, 10).ok());
}

TEST(GeneratorsTest, UniformBoxStaysInBox) {
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  Rng rng(4);
  const double lo[2] = {-1, 2};
  const double hi[2] = {1, 3};
  ASSERT_TRUE(AppendUniformBox(*ds, rng, lo, hi, 500).ok());
  for (size_t i = 0; i < ds->size(); ++i) {
    EXPECT_GE(ds->point(i)[0], -1.0);
    EXPECT_LT(ds->point(i)[0], 1.0);
    EXPECT_GE(ds->point(i)[1], 2.0);
    EXPECT_LT(ds->point(i)[1], 3.0);
  }
}

TEST(GeneratorsTest, UniformBoxRejectsInvertedBounds) {
  auto ds = Dataset::Create(1);
  ASSERT_TRUE(ds.ok());
  Rng rng(4);
  const double lo[1] = {1};
  const double hi[1] = {0};
  EXPECT_FALSE(AppendUniformBox(*ds, rng, lo, hi, 5).ok());
}

TEST(GeneratorsTest, UniformBallStaysInBall) {
  auto ds = Dataset::Create(3);
  ASSERT_TRUE(ds.ok());
  Rng rng(5);
  const double center[3] = {1, 2, 3};
  ASSERT_TRUE(AppendUniformBall(*ds, rng, center, 2.0, 500).ok());
  for (size_t i = 0; i < ds->size(); ++i) {
    double dist_sq = 0;
    for (size_t d = 0; d < 3; ++d) {
      const double delta = ds->point(i)[d] - center[d];
      dist_sq += delta * delta;
    }
    EXPECT_LE(std::sqrt(dist_sq), 2.0 + 1e-12);
  }
}

TEST(GeneratorsTest, RingRadiusApproximatelyHolds) {
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  Rng rng(6);
  ASSERT_TRUE(AppendRing(*ds, rng, 0, 0, 5.0, 0.1, 400).ok());
  for (size_t i = 0; i < ds->size(); ++i) {
    const double r = std::hypot(ds->point(i)[0], ds->point(i)[1]);
    EXPECT_NEAR(r, 5.0, 1.0);  // 10 sigma
  }
}

TEST(GeneratorsTest, RingRequires2D) {
  auto ds = Dataset::Create(3);
  ASSERT_TRUE(ds.ok());
  Rng rng(6);
  EXPECT_FALSE(AppendRing(*ds, rng, 0, 0, 5.0, 0.1, 10).ok());
}

TEST(GeneratorsTest, DuplicatesAreExact) {
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  const double p[2] = {3.25, -1.5};
  ASSERT_TRUE(AppendDuplicates(*ds, p, 5, "dup").ok());
  EXPECT_EQ(ds->size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(ds->point(i)[0], 3.25);
    EXPECT_DOUBLE_EQ(ds->point(i)[1], -1.5);
  }
}

TEST(GeneratorsTest, HistogramClusterIsNormalized) {
  auto ds = Dataset::Create(64);
  ASSERT_TRUE(ds.ok());
  Rng rng(7);
  ASSERT_TRUE(AppendHistogramCluster(*ds, rng, 50, 40.0).ok());
  EXPECT_EQ(ds->size(), 50u);
  for (size_t i = 0; i < ds->size(); ++i) {
    double sum = 0;
    for (size_t d = 0; d < 64; ++d) {
      EXPECT_GE(ds->point(i)[d], 0.0);
      sum += ds->point(i)[d];
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(GeneratorsTest, HistogramClusterRequires64Dims) {
  auto ds = Dataset::Create(32);
  ASSERT_TRUE(ds.ok());
  Rng rng(7);
  EXPECT_FALSE(AppendHistogramCluster(*ds, rng, 10, 40.0).ok());
}

TEST(GeneratorsTest, GaussianMixtureRespectsSpecs) {
  Rng rng(8);
  std::vector<GaussianSpec> specs(2);
  specs[0] = {{0.0, 0.0}, 1.0, 30, "a"};
  specs[1] = {{50.0, 50.0}, 2.0, 70, "b"};
  auto ds = MakeGaussianMixture(rng, 2, specs);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 100u);
  EXPECT_EQ(ds->label(0), "a");
  EXPECT_EQ(ds->label(99), "b");
}

TEST(GeneratorsTest, GaussianMixtureRejectsBadCenter) {
  Rng rng(8);
  std::vector<GaussianSpec> specs(1);
  specs[0] = {{0.0}, 1.0, 5, "a"};  // 1-d center, 2-d dataset
  EXPECT_FALSE(MakeGaussianMixture(rng, 2, specs).ok());
}

TEST(GeneratorsTest, PerformanceWorkloadSizeAndDimension) {
  Rng rng(9);
  auto ds = MakePerformanceWorkload(rng, 5, 1003, 7);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 1003u);
  EXPECT_EQ(ds->dimension(), 5u);
}

TEST(GeneratorsTest, PerformanceWorkloadRejectsZeroClusters) {
  Rng rng(9);
  EXPECT_FALSE(MakePerformanceWorkload(rng, 2, 100, 0).ok());
  EXPECT_FALSE(MakePerformanceWorkload(rng, 2, 0, 3).ok());
}

TEST(GeneratorsTest, SameSeedSameData) {
  Rng rng1(31337);
  Rng rng2(31337);
  auto a = MakePerformanceWorkload(rng1, 3, 200, 4);
  auto b = MakePerformanceWorkload(rng2, 3, 200, 4);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    for (size_t d = 0; d < 3; ++d) {
      EXPECT_DOUBLE_EQ(a->point(i)[d], b->point(i)[d]);
    }
  }
}

TEST(GeneratorsTest, EmbeddedWorkloadSizeDimensionAndDeterminism) {
  Rng rng1(99);
  Rng rng2(99);
  auto a = MakeEmbeddedWorkload(rng1, 20, 6, 500, 5, 0.05);
  auto b = MakeEmbeddedWorkload(rng2, 20, 6, 500, 5, 0.05);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->size(), 500u);
  EXPECT_EQ(a->dimension(), 20u);
  for (size_t i = 0; i < a->size(); ++i) {
    for (size_t d = 0; d < 20; ++d) {
      EXPECT_DOUBLE_EQ(a->point(i)[d], b->point(i)[d]);
    }
  }
  // Labels survive the embedding (ground truth for quality metrics).
  EXPECT_FALSE(a->label(0).empty());
}

TEST(GeneratorsTest, EmbeddedWorkloadLiesOnTheIntrinsicSubspace) {
  // intrinsic_dim = 1 without noise: every point is a multiple of one
  // frame vector, so all pairwise difference vectors are collinear.
  Rng rng(7);
  auto ds = MakeEmbeddedWorkload(rng, 3, 1, 50, 1, 0.0);
  ASSERT_TRUE(ds.ok());
  const auto p0 = ds->point(0);
  const auto p1 = ds->point(1);
  double u[3] = {p1[0] - p0[0], p1[1] - p0[1], p1[2] - p0[2]};
  for (size_t i = 2; i < ds->size(); ++i) {
    const auto p = ds->point(i);
    const double v[3] = {p[0] - p0[0], p[1] - p0[1], p[2] - p0[2]};
    // Cross product of collinear vectors vanishes.
    EXPECT_NEAR(u[1] * v[2] - u[2] * v[1], 0.0, 1e-6);
    EXPECT_NEAR(u[2] * v[0] - u[0] * v[2], 0.0, 1e-6);
    EXPECT_NEAR(u[0] * v[1] - u[1] * v[0], 0.0, 1e-6);
  }
}

TEST(GeneratorsTest, EmbeddedWorkloadValidatesArguments) {
  Rng rng(1);
  EXPECT_FALSE(MakeEmbeddedWorkload(rng, 5, 0, 100, 2, 0.0).ok());
  EXPECT_FALSE(MakeEmbeddedWorkload(rng, 5, 6, 100, 2, 0.0).ok());
  EXPECT_FALSE(MakeEmbeddedWorkload(rng, 5, 3, 100, 2, -1.0).ok());
}

}  // namespace
}  // namespace lofkit
