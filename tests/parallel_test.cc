#include "common/parallel.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <tuple>

#include <gtest/gtest.h>

#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/linear_scan_index.h"
#include "lof/lof_sweep.h"

namespace lofkit {
namespace {

TEST(ResolveThreadCountTest, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(ResolveThreadCount(0), 1u);
  EXPECT_EQ(ResolveThreadCount(1), 1u);
  EXPECT_EQ(ResolveThreadCount(5), 5u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {0u, 1u, 2u, 3u, 16u}) {
    for (size_t n : {0u, 1u, 2u, 7u, 100u}) {
      std::vector<int> hits(n, 0);
      Status status = ParallelFor(n, threads, [&](size_t i) -> Status {
        ++hits[i];  // slot i is owned by exactly one worker
        return Status::OK();
      });
      ASSERT_TRUE(status.ok()) << "threads=" << threads << " n=" << n;
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i], 1) << "threads=" << threads << " n=" << n
                              << " i=" << i;
      }
    }
  }
}

TEST(ParallelForTest, PropagatesAnErrorABodyActuallyReturned) {
  // Every index fails; whichever failure wins the race, the returned error
  // must be one a body really produced (never OK, never synthesized).
  Status status = ParallelFor(100, 4, [&](size_t i) -> Status {
    return Status::Internal("failed at " + std::to_string(i));
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(status.message().rfind("failed at ", 0), 0u) << status;
}

TEST(ParallelForTest, SequentialPathReturnsTheFirstError) {
  // With one worker there is no race: the scan stops at the first failing
  // index and returns exactly its error.
  std::vector<int> hits(100, 0);
  Status status = ParallelFor(100, 1, [&](size_t i) -> Status {
    ++hits[i];
    if (i >= 30) return Status::Internal("failed at " + std::to_string(i));
    return Status::OK();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "failed at 30");
  for (size_t i = 31; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 0) << i;
  }
}

TEST(ParallelForTest, SingleFailureIsPropagatedFromAnyChunk) {
  for (size_t threads : {1u, 2u, 4u, 7u}) {
    Status status = ParallelFor(100, threads, [&](size_t i) -> Status {
      if (i == 57) return Status::OutOfRange("boom");
      return Status::OK();
    });
    ASSERT_FALSE(status.ok()) << threads;
    EXPECT_EQ(status.code(), StatusCode::kOutOfRange) << threads;
  }
}

TEST(ParallelForTest, ErrorAbortsTheOtherWorkersEarly) {
  // Worker 0 fails instantly at index 0; every other index sleeps. Without
  // the abort flag the remaining workers would grind through ~4000 slow
  // items; with it they stop at their next index boundary.
  std::atomic<size_t> executed{0};
  const size_t n = 4000;
  Status status = ParallelFor(n, 4, [&](size_t i) -> Status {
    if (i == 0) return Status::Internal("instant failure");
    executed.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return Status::OK();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "instant failure");
  EXPECT_LT(executed.load(), n / 2);
}

// ---------------------------------------------------------------------------
// Cancellation and deadline tokens.
// ---------------------------------------------------------------------------

TEST(ParallelForCancellationTest, PreStoppedTokenRunsNothing) {
  for (size_t threads : {1u, 2u, 4u}) {
    StopSource source;
    source.RequestStop();
    std::atomic<size_t> executed{0};
    Status status =
        ParallelFor(1000, threads, source.token(), [&](size_t) -> Status {
          executed.fetch_add(1, std::memory_order_relaxed);
          return Status::OK();
        });
    EXPECT_EQ(status.code(), StatusCode::kCancelled) << threads;
    EXPECT_EQ(executed.load(), 0u) << threads;
  }
}

TEST(ParallelForCancellationTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  for (size_t threads : {1u, 2u, 4u}) {
    StopSource source = StopSource::AfterTimeout(std::chrono::nanoseconds(0));
    Status status = ParallelFor(1000, threads, source.token(),
                                [&](size_t) -> Status {
                                  return Status::OK();
                                });
    EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded) << threads;
  }
}

TEST(ParallelForCancellationTest, FarDeadlineDoesNotTrip) {
  StopSource source = StopSource::AfterTimeout(std::chrono::hours(1));
  std::vector<int> hits(100, 0);
  Status status = ParallelFor(100, 4, source.token(), [&](size_t i) -> Status {
    ++hits[i];
    return Status::OK();
  });
  ASSERT_TRUE(status.ok()) << status;
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(ParallelForCancellationTest, MidRunStopAbortsWorkersEarly) {
  StopSource source;
  std::atomic<size_t> executed{0};
  const size_t n = 4000;
  std::thread canceller([&] {
    // Wait for the loop to actually start, then pull the plug.
    while (executed.load(std::memory_order_relaxed) == 0) {
      std::this_thread::yield();
    }
    source.RequestStop();
  });
  Status status = ParallelFor(n, 4, source.token(), [&](size_t) -> Status {
    executed.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return Status::OK();
  });
  canceller.join();
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_LT(executed.load(), n / 2);
}

TEST(ParallelForCancellationTest, BodyErrorBeatsRacingCancellation) {
  // The body both requests the stop and fails, so a cancellation and a
  // worker error are guaranteed to race; the deterministic choice is the
  // body's error (precedence rule 1 in the parallel.h contract).
  for (size_t threads : {1u, 2u, 4u, 7u}) {
    for (int rep = 0; rep < 20; ++rep) {
      StopSource source;
      Status status =
          ParallelFor(200, threads, source.token(), [&](size_t i) -> Status {
            source.RequestStop();
            return Status::Internal("real failure at " + std::to_string(i));
          });
      ASSERT_FALSE(status.ok());
      EXPECT_EQ(status.code(), StatusCode::kInternal)
          << "threads=" << threads << " rep=" << rep
          << " got: " << status.ToString();
    }
  }
}

TEST(ParallelForCancellationTest, CancelledCauseIsLatchedNotMixed) {
  // Once a cause latches (here: explicit cancel), a later deadline expiry
  // must not change the reported code mid-run.
  StopSource source = StopSource::AfterTimeout(std::chrono::milliseconds(5));
  source.RequestStop();  // wins the latch before the deadline can expire
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Status status = ParallelFor(100, 2, source.token(),
                              [&](size_t) -> Status { return Status::OK(); });
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------------------------
// Bit-identical determinism sweep: every stage of the pipeline must produce
// exactly the same results at every thread count, in both neighbor modes.
// ---------------------------------------------------------------------------

class ParallelPipelineTest
    : public ::testing::TestWithParam<std::tuple<size_t, bool>> {
 protected:
  static Dataset MakeWorkload() {
    Rng rng(42);
    auto ds = generators::MakePerformanceWorkload(rng, 3, 400, 4);
    EXPECT_TRUE(ds.ok());
    Dataset data = std::move(ds).value();
    // A few exact duplicates so distinct mode actually diverges from the
    // standard mode (and standard mode exercises infinite-lrd slots).
    std::vector<double> dup(data.point(0).begin(), data.point(0).end());
    EXPECT_TRUE(generators::AppendDuplicates(data, dup, 4).ok());
    return data;
  }

  static void ExpectSameScores(const LofScores& a, const LofScores& b) {
    ASSERT_EQ(a.lrd.size(), b.lrd.size());
    for (size_t i = 0; i < a.lrd.size(); ++i) {
      ASSERT_EQ(a.lrd[i], b.lrd[i]) << "lrd " << i;  // exact, inf included
      ASSERT_EQ(a.lof[i], b.lof[i]) << "lof " << i;
    }
    EXPECT_EQ(a.has_infinite_lrd, b.has_infinite_lrd);
  }
};

TEST_P(ParallelPipelineTest, MaterializeParallelIsBitIdentical) {
  const auto [threads, distinct] = GetParam();
  Dataset data = MakeWorkload();
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto serial =
      NeighborhoodMaterializer::Materialize(data, index, 12, distinct);
  auto parallel = NeighborhoodMaterializer::MaterializeParallel(
      data, index, 12, threads, distinct);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  ASSERT_EQ(serial->total_neighbor_count(), parallel->total_neighbor_count());
  for (size_t i = 0; i < serial->size(); ++i) {
    auto a = serial->neighbors(i);
    auto b = parallel->neighbors(i);
    ASSERT_EQ(a.size(), b.size()) << i;
    for (size_t j = 0; j < a.size(); ++j) {
      ASSERT_EQ(a[j].index, b[j].index);
      ASSERT_EQ(a[j].distance, b[j].distance);
    }
  }
}

TEST_P(ParallelPipelineTest, ComputeIsBitIdentical) {
  const auto [threads, distinct] = GetParam();
  Dataset data = MakeWorkload();
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(data, index, 12, distinct);
  ASSERT_TRUE(m.ok());
  for (bool use_reachability : {true, false}) {
    auto sequential = LofComputer::Compute(
        *m, 8, {.use_reachability = use_reachability, .threads = 1});
    auto parallel = LofComputer::Compute(
        *m, 8, {.use_reachability = use_reachability, .threads = threads});
    ASSERT_TRUE(sequential.ok() && parallel.ok());
    ExpectSameScores(*sequential, *parallel);
  }
}

TEST_P(ParallelPipelineTest, SweepRunIsBitIdentical) {
  const auto [threads, distinct] = GetParam();
  Dataset data = MakeWorkload();
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(data, index, 12, distinct);
  ASSERT_TRUE(m.ok());
  // The mean aggregation is the most order-sensitive accumulation; max is
  // the paper's default; a single-step range routes threads into the scans.
  for (LofAggregation aggregation :
       {LofAggregation::kMax, LofAggregation::kMean}) {
    for (auto [lb, ub] : {std::pair<size_t, size_t>{4, 12},
                          std::pair<size_t, size_t>{9, 9}}) {
      auto sequential = LofSweep::Run(*m, lb, ub, aggregation,
                                      /*keep_per_min_pts=*/true, 1);
      auto parallel = LofSweep::Run(*m, lb, ub, aggregation,
                                    /*keep_per_min_pts=*/true, threads);
      ASSERT_TRUE(sequential.ok() && parallel.ok());
      ASSERT_EQ(sequential->aggregated.size(), parallel->aggregated.size());
      for (size_t i = 0; i < sequential->aggregated.size(); ++i) {
        ASSERT_EQ(sequential->aggregated[i], parallel->aggregated[i])
            << "aggregated " << i;
      }
      ASSERT_EQ(sequential->per_min_pts.size(), parallel->per_min_pts.size());
      for (size_t s = 0; s < sequential->per_min_pts.size(); ++s) {
        ExpectSameScores(sequential->per_min_pts[s], parallel->per_min_pts[s]);
      }
    }
  }
}

TEST_P(ParallelPipelineTest, EndToEndPipelinesAreBitIdentical) {
  const auto [threads, distinct] = GetParam();
  Dataset data = MakeWorkload();
  auto sequential = LofComputer::ComputeFromScratch(
      data, Euclidean(), 8, IndexKind::kLinearScan, distinct, {.threads = 1});
  auto parallel = LofComputer::ComputeFromScratch(
      data, Euclidean(), 8, IndexKind::kLinearScan, distinct,
      {.threads = threads});
  ASSERT_TRUE(sequential.ok() && parallel.ok());
  ExpectSameScores(*sequential, *parallel);

  auto ranked_sequential =
      LofSweep::RankOutliers(data, Euclidean(), 4, 12, 0,
                             IndexKind::kLinearScan, LofAggregation::kMax, 1);
  auto ranked_parallel = LofSweep::RankOutliers(
      data, Euclidean(), 4, 12, 0, IndexKind::kLinearScan,
      LofAggregation::kMax, threads);
  ASSERT_TRUE(ranked_sequential.ok() && ranked_parallel.ok());
  ASSERT_EQ(ranked_sequential->size(), ranked_parallel->size());
  for (size_t i = 0; i < ranked_sequential->size(); ++i) {
    ASSERT_EQ((*ranked_sequential)[i].index, (*ranked_parallel)[i].index);
    ASSERT_EQ((*ranked_sequential)[i].score, (*ranked_parallel)[i].score);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndModes, ParallelPipelineTest,
    ::testing::Combine(::testing::Values<size_t>(1, 2, 7),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<ParallelPipelineTest::ParamType>& info) {
      return "threads" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_distinct" : "_standard");
    });

// ---------------------------------------------------------------------------
// Error propagation through the parallel materialization.
// ---------------------------------------------------------------------------

/// Delegates to a LinearScanIndex but fails every query whose excluded
/// (self) index is >= fail_from — a deterministic mid-run failure.
class FailingIndex : public KnnIndex {
 public:
  explicit FailingIndex(uint32_t fail_from) : fail_from_(fail_from) {}

  Status Build(const Dataset& data, const Metric& metric) override {
    return inner_.Build(data, metric);
  }

  using KnnIndex::Query;
  using KnnIndex::QueryRadius;
  Status Query(std::span<const double> query, size_t k,
               std::optional<uint32_t> exclude,
               KnnSearchContext& ctx) const override {
    if (exclude.has_value() && *exclude >= fail_from_) {
      return Status::Internal("synthetic query failure");
    }
    return inner_.Query(query, k, exclude, ctx);
  }

  Status QueryRadius(std::span<const double> query, double radius,
                     std::optional<uint32_t> exclude,
                     KnnSearchContext& ctx) const override {
    return inner_.QueryRadius(query, radius, exclude, ctx);
  }

  const Dataset* dataset() const override { return inner_.dataset(); }

  std::string_view name() const override { return "failing"; }

 private:
  LinearScanIndex inner_;
  uint32_t fail_from_;
};

TEST(MaterializeParallelTest, WorkerFailureIsPropagatedNotSwallowed) {
  Rng rng(13);
  auto ds = generators::MakePerformanceWorkload(rng, 2, 200, 2);
  ASSERT_TRUE(ds.ok());
  FailingIndex index(/*fail_from=*/150);
  ASSERT_TRUE(index.Build(*ds, Euclidean()).ok());
  for (size_t threads : {1u, 2u, 4u, 7u}) {
    auto m = NeighborhoodMaterializer::MaterializeParallel(*ds, index, 10,
                                                           threads);
    ASSERT_FALSE(m.ok()) << threads;
    EXPECT_EQ(m.status().code(), StatusCode::kInternal) << threads;
    EXPECT_EQ(m.status().message(), "synthetic query failure") << threads;
  }
}

}  // namespace
}  // namespace lofkit
