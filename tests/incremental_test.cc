#include "index/incremental_materializer.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/linear_scan_index.h"
#include "lof/lof_computer.h"

namespace lofkit {
namespace {

// Batch-materializes `data` for comparison.
NeighborhoodMaterializer BatchMaterialize(const Dataset& data, size_t k) {
  LinearScanIndex index;
  EXPECT_TRUE(index.Build(data, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(data, index, k);
  EXPECT_TRUE(m.ok());
  return std::move(m).value();
}

void ExpectListsEqual(const IncrementalMaterializer& incremental,
                      const NeighborhoodMaterializer& batch) {
  ASSERT_EQ(incremental.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const auto& inc_list = incremental.neighbors(i);
    const auto batch_list = batch.neighbors(i);
    ASSERT_EQ(inc_list.size(), batch_list.size()) << "point " << i;
    for (size_t j = 0; j < batch_list.size(); ++j) {
      EXPECT_EQ(inc_list[j].index, batch_list[j].index)
          << "point " << i << " entry " << j;
      EXPECT_DOUBLE_EQ(inc_list[j].distance, batch_list[j].distance);
    }
  }
}

TEST(IncrementalMaterializerTest, CreateRequiresEnoughPoints) {
  Rng rng(1);
  auto small = generators::MakePerformanceWorkload(rng, 2, 5, 1);
  ASSERT_TRUE(small.ok());
  EXPECT_FALSE(
      IncrementalMaterializer::Create(*small, Euclidean(), 5).ok());
  EXPECT_FALSE(
      IncrementalMaterializer::Create(*small, Euclidean(), 0).ok());
  EXPECT_TRUE(IncrementalMaterializer::Create(*small, Euclidean(), 4).ok());
}

TEST(IncrementalMaterializerTest, InitialStateMatchesBatch) {
  Rng rng(2);
  auto data = generators::MakePerformanceWorkload(rng, 2, 100, 3);
  ASSERT_TRUE(data.ok());
  auto incremental = IncrementalMaterializer::Create(*data, Euclidean(), 8);
  ASSERT_TRUE(incremental.ok());
  ExpectListsEqual(*incremental, BatchMaterialize(*data, 8));
}

TEST(IncrementalMaterializerTest, InsertsMatchBatchRematerialization) {
  Rng rng(3);
  auto initial = generators::MakePerformanceWorkload(rng, 2, 80, 3);
  ASSERT_TRUE(initial.ok());
  auto incremental =
      IncrementalMaterializer::Create(*initial, Euclidean(), 6);
  ASSERT_TRUE(incremental.ok());

  // Insert a mix of in-cluster points, outliers, and an exact duplicate.
  std::vector<std::vector<double>> inserts;
  for (int i = 0; i < 30; ++i) {
    inserts.push_back({rng.Uniform(0, 100), rng.Uniform(0, 100)});
  }
  inserts.push_back({500.0, 500.0});  // far outlier
  inserts.push_back({initial->point(0)[0], initial->point(0)[1]});  // dup

  for (const auto& point : inserts) {
    ASSERT_TRUE(incremental->Insert(point).ok());
    ExpectListsEqual(*incremental,
                     BatchMaterialize(incremental->data(), 6));
  }
}

TEST(IncrementalMaterializerTest, AffectedSetIsLocal) {
  // A far-away insert should touch almost no neighborhood.
  Rng rng(4);
  auto data = Dataset::Create(2);
  ASSERT_TRUE(data.ok());
  const double center[2] = {0, 0};
  ASSERT_TRUE(
      generators::AppendGaussianCluster(*data, rng, center, 1.0, 500).ok());
  auto incremental = IncrementalMaterializer::Create(*data, Euclidean(), 10);
  ASSERT_TRUE(incremental.ok());
  const double far_away[2] = {100.0, 100.0};
  ASSERT_TRUE(incremental->Insert(far_away).ok());
  EXPECT_EQ(incremental->last_affected_count(), 0u);
  const double inside[2] = {0.0, 0.1};
  ASSERT_TRUE(incremental->Insert(inside).ok());
  EXPECT_GT(incremental->last_affected_count(), 0u);
  EXPECT_LT(incremental->last_affected_count(), 100u);  // local, not global
}

TEST(IncrementalMaterializerTest, SnapshotDrivesLofIdentically) {
  Rng rng(5);
  auto initial = generators::MakePerformanceWorkload(rng, 3, 120, 4);
  ASSERT_TRUE(initial.ok());
  auto incremental =
      IncrementalMaterializer::Create(*initial, Euclidean(), 10);
  ASSERT_TRUE(incremental.ok());
  for (int i = 0; i < 20; ++i) {
    const std::vector<double> p = {rng.Uniform(0, 100), rng.Uniform(0, 100),
                                   rng.Uniform(0, 100)};
    ASSERT_TRUE(incremental->Insert(p).ok());
  }
  auto snapshot = incremental->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  auto incremental_scores = LofComputer::Compute(*snapshot, 10);
  auto batch_scores = LofComputer::Compute(
      BatchMaterialize(incremental->data(), 10), 10);
  ASSERT_TRUE(incremental_scores.ok() && batch_scores.ok());
  for (size_t i = 0; i < batch_scores->lof.size(); ++i) {
    ASSERT_DOUBLE_EQ(incremental_scores->lof[i], batch_scores->lof[i]);
  }
}

TEST(IncrementalMaterializerTest, RejectsDimensionMismatch) {
  Rng rng(6);
  auto data = generators::MakePerformanceWorkload(rng, 2, 50, 2);
  ASSERT_TRUE(data.ok());
  auto incremental = IncrementalMaterializer::Create(*data, Euclidean(), 5);
  ASSERT_TRUE(incremental.ok());
  const std::vector<double> wrong = {1.0, 2.0, 3.0};
  EXPECT_EQ(incremental->Insert(wrong).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace lofkit
