// End-to-end robustness coverage: the armed-fail-point error sweep (every
// planted point must propagate a clean Status out of its public entry
// point), pipeline cancellation/deadline behavior, and the memory-budget
// degradation path (bit-identical scores via re-query).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/container_file.h"
#include "common/fail_point.h"
#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/loaders.h"
#include "dataset/metric.h"
#include "index/incremental_materializer.h"
#include "index/index_factory.h"
#include "index/linear_scan_index.h"
#include "index/va_file_index.h"
#include "lof/lof_sweep.h"
#include "lof/spill.h"

namespace lofkit {
namespace {

Dataset MakeClusteredData(size_t n) {
  Rng rng(20260805);
  auto ds = Dataset::Create(2);
  EXPECT_TRUE(ds.ok());
  Dataset data = std::move(ds).value();
  const std::vector<double> center = {0.0, 0.0};
  EXPECT_TRUE(
      generators::AppendGaussianCluster(data, rng, center, 1.0, n - 2).ok());
  EXPECT_TRUE(data.Append(std::vector<double>{8.0, 8.0}).ok());
  EXPECT_TRUE(data.Append(std::vector<double>{-7.0, 9.0}).ok());
  return data;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/lofkit_robustness_" + name;
}

class RobustnessTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FailPoints::DisarmAll();
    ASSERT_FALSE(FailPoints::AnyArmed());
  }
};

// ---------------------------------------------------------------------------
// Error-path sweep: one driver per planted fail point. Arming the point must
// surface the injected status (same code, message preserved) from the public
// API, with no crash and no partial result.
// ---------------------------------------------------------------------------

struct FailPointDriver {
  const char* point;
  std::function<Status()> run;  // Reaches the point; returns its status.
};

TEST_F(RobustnessTest, EveryPlantedFailPointPropagatesCleanly) {
  const Dataset data = MakeClusteredData(64);
  const std::string csv_path = TempPath("sweep.csv");
  const std::string mat_path = TempPath("sweep.lofm");
  {
    std::FILE* f = std::fopen(csv_path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("1,2\n3,4\n5,6\n", f);
    std::fclose(f);
  }
  {
    LinearScanIndex index;
    ASSERT_TRUE(index.Build(data, Euclidean()).ok());
    auto m = NeighborhoodMaterializer::Materialize(data, index, 5);
    ASSERT_TRUE(m.ok());
    ASSERT_TRUE(m->SaveToFile(mat_path).ok());
  }

  const FailPointDriver kDrivers[] = {
      {"csv.read",
       [&] { return DatasetFromCsvFile(csv_path).status(); }},
      {"csv.write",
       [&] {
         CsvTable table;
         table.rows = {{1.0, 2.0}};
         return WriteCsvFile(TempPath("out.csv"), table);
       }},
      {"loaders.row",
       [&] { return DatasetFromCsvFile(csv_path).status(); }},
      {"index.build",
       [&] {
         LinearScanIndex index;
         return index.Build(data, Euclidean());
       }},
      {"materializer.query",
       [&] {
         LinearScanIndex index;
         Status built = index.Build(data, Euclidean());
         if (!built.ok()) return built;
         return NeighborhoodMaterializer::Materialize(data, index, 5)
             .status();
       }},
      {"materialization.save",
       [&] {
         auto m = NeighborhoodMaterializer::LoadFromFile(mat_path, &data);
         if (!m.ok()) return m.status();
         return m->SaveToFile(TempPath("resave.lofm"));
       }},
      {"materialization.load",
       [&] {
         return NeighborhoodMaterializer::LoadFromFile(mat_path, &data)
             .status();
       }},
      {"incremental.insert",
       [&] {
         auto inc = IncrementalMaterializer::Create(MakeClusteredData(16),
                                                    Euclidean(), 3);
         if (!inc.ok()) return inc.status();
         return inc->Insert(std::vector<double>{0.5, 0.5}, "");
       }},
      {"parallel.worker",
       [&] {
         LofComputeOptions options;
         options.threads = 4;
         return LofComputer::ComputeFromScratch(data, Euclidean(), 5,
                                                IndexKind::kLinearScan,
                                                /*distinct=*/false, options)
             .status();
       }},
      {"container.write",
       [&] {
         auto writer = ContainerWriter::Create(TempPath("cw.lofc"), 99, 1);
         if (!writer.ok()) return writer.status();
         Status section = writer->AddSection("payload", "abc", 3);
         if (!section.ok()) return section;
         return writer->Finish();
       }},
      {"container.fsync",
       [&] {
         auto writer = ContainerWriter::Create(TempPath("cw.lofc"), 99, 1);
         if (!writer.ok()) return writer.status();
         Status section = writer->AddSection("payload", "abc", 3);
         if (!section.ok()) return section;
         return writer->Finish();
       }},
      {"container.rename",
       [&] {
         auto writer = ContainerWriter::Create(TempPath("cw.lofc"), 99, 1);
         if (!writer.ok()) return writer.status();
         Status section = writer->AddSection("payload", "abc", 3);
         if (!section.ok()) return section;
         return writer->Finish();
       }},
      {"container.mmap",
       [&] {
         return NeighborhoodMaterializer::MapFromFile(mat_path, &data)
             .status();
       }},
      {"container.verify",
       [&] {
         return NeighborhoodMaterializer::MapFromFile(mat_path, &data)
             .status();
       }},
      {"materialization.map",
       [&] {
         return NeighborhoodMaterializer::MapFromFile(mat_path, &data)
             .status();
       }},
      {"materialization.spill",
       [&] {
         LinearScanIndex index;
         Status built = index.Build(data, Euclidean());
         if (!built.ok()) return built;
         return NeighborhoodMaterializer::MaterializeToFile(
             data, index, 5, /*threads=*/1, /*distinct_neighbors=*/false,
             TempPath("spill.lofc"));
       }},
      {"va_file.save",
       [&] {
         VaFileIndex va;
         Status built = va.Build(data, Euclidean());
         if (!built.ok()) return built;
         return va.SaveToFile(TempPath("va.lofc"));
       }},
      {"va_file.load",
       [&] {
         VaFileIndex va;
         Status built = va.Build(data, Euclidean());
         if (!built.ok()) return built;
         const std::string va_path = TempPath("va_rt.lofc");
         Status saved = va.SaveToFile(va_path);
         if (!saved.ok()) return saved;
         VaFileIndex loaded;
         return loaded.LoadFromFile(va_path, data, Euclidean());
       }},
  };

  for (const FailPointDriver& driver : kDrivers) {
    SCOPED_TRACE(driver.point);
    // Unarmed: the driver must succeed (proves the driver actually works
    // and the injected failure below really comes from the fail point).
    ASSERT_TRUE(driver.run().ok());
    {
      ScopedFailPoint armed(
          driver.point,
          Status::IoError(std::string("injected@") + driver.point));
      Status status = driver.run();
      EXPECT_EQ(status.code(), StatusCode::kIoError);
      EXPECT_NE(status.message().find("injected@"), std::string::npos)
          << "actual message: " << status.message();
      EXPECT_GE(FailPoints::FireCount(driver.point), 1u);
    }
    // Disarmed again: clean.
    EXPECT_TRUE(driver.run().ok());
  }
  std::remove(csv_path.c_str());
  std::remove(mat_path.c_str());
}

// ---------------------------------------------------------------------------
// Cancellation and deadlines through the whole pipeline.
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, PreCancelledTokenStopsComputeFromScratch) {
  const Dataset data = MakeClusteredData(128);
  StopSource source;
  source.RequestStop();
  LofComputeOptions options;
  options.stop = source.token();
  for (size_t threads : {size_t{1}, size_t{4}}) {
    options.threads = threads;
    auto scores = LofComputer::ComputeFromScratch(data, Euclidean(), 5,
                                                  IndexKind::kLinearScan,
                                                  false, options);
    ASSERT_FALSE(scores.ok());
    EXPECT_EQ(scores.status().code(), StatusCode::kCancelled);
  }
}

TEST_F(RobustnessTest, ExpiredDeadlineStopsTheSweep) {
  const Dataset data = MakeClusteredData(128);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(data, index, 10);
  ASSERT_TRUE(m.ok());
  StopSource source = StopSource::AfterTimeout(std::chrono::nanoseconds(0));
  auto sweep = LofSweep::Run(*m, 2, 10, LofAggregation::kMax,
                             /*keep_per_min_pts=*/false, /*threads=*/2,
                             PipelineObserver{}, source.token());
  ASSERT_FALSE(sweep.ok());
  EXPECT_EQ(sweep.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(RobustnessTest, MaterializeHonorsDeadline) {
  const Dataset data = MakeClusteredData(256);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  StopSource source = StopSource::AfterTimeout(std::chrono::nanoseconds(0));
  for (size_t threads : {size_t{1}, size_t{4}}) {
    auto m = NeighborhoodMaterializer::MaterializeParallel(
        data, index, 10, threads, false, PipelineObserver{}, source.token());
    ASSERT_FALSE(m.ok());
    EXPECT_EQ(m.status().code(), StatusCode::kDeadlineExceeded);
  }
}

TEST_F(RobustnessTest, FarDeadlineChangesNothing) {
  const Dataset data = MakeClusteredData(96);
  StopSource source = StopSource::AfterTimeout(std::chrono::hours(1));
  LofComputeOptions plain;
  LofComputeOptions guarded;
  guarded.stop = source.token();
  auto baseline = LofComputer::ComputeFromScratch(
      data, Euclidean(), 5, IndexKind::kLinearScan, false, plain);
  auto watched = LofComputer::ComputeFromScratch(
      data, Euclidean(), 5, IndexKind::kLinearScan, false, guarded);
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(watched.ok());
  EXPECT_EQ(baseline->lof, watched->lof);  // bit-identical, not just close
  EXPECT_EQ(baseline->lrd, watched->lrd);
}

// ---------------------------------------------------------------------------
// Budgeted graceful degradation: re-query path equivalence.
// ---------------------------------------------------------------------------

TEST_F(RobustnessTest, RequeryMatchesMaterializedBitForBit) {
  const Dataset data = MakeClusteredData(150);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  for (size_t min_pts : {size_t{2}, size_t{7}, size_t{20}}) {
    SCOPED_TRACE(min_pts);
    auto m = NeighborhoodMaterializer::Materialize(data, index, min_pts);
    ASSERT_TRUE(m.ok());
    for (size_t threads : {size_t{1}, size_t{4}}) {
      LofComputeOptions options;
      options.threads = threads;
      auto materialized = LofComputer::Compute(*m, min_pts, options);
      auto requeried =
          LofComputer::ComputeRequery(data, index, min_pts, options);
      ASSERT_TRUE(materialized.ok());
      ASSERT_TRUE(requeried.ok());
      EXPECT_EQ(materialized->lof, requeried->lof);
      EXPECT_EQ(materialized->lrd, requeried->lrd);
      EXPECT_EQ(materialized->has_infinite_lrd,
                requeried->has_infinite_lrd);
    }
  }
}

TEST_F(RobustnessTest, BudgetForcesRequeryWithIdenticalScores) {
  const Dataset data = MakeClusteredData(150);
  LofComputeOptions unbudgeted;
  unbudgeted.threads = 2;
  auto baseline = LofComputer::ComputeFromScratch(
      data, Euclidean(), 8, IndexKind::kLinearScan, false, unbudgeted);
  ASSERT_TRUE(baseline.ok());
  EXPECT_FALSE(baseline->degraded_to_requery);

  LofComputeOptions budgeted = unbudgeted;
  budgeted.memory_budget_bytes = 1024;  // Far below the projected M.
  ASSERT_LT(budgeted.memory_budget_bytes,
            NeighborhoodMaterializer::ProjectedBytes(data.size(), 8));
  auto degraded = LofComputer::ComputeFromScratch(
      data, Euclidean(), 8, IndexKind::kLinearScan, false, budgeted);
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded->degraded_to_requery);
  EXPECT_EQ(baseline->lof, degraded->lof);
  EXPECT_EQ(baseline->lrd, degraded->lrd);
}

TEST_F(RobustnessTest, GenerousBudgetStaysOnTheMaterializedPath) {
  const Dataset data = MakeClusteredData(64);
  LofComputeOptions options;
  options.memory_budget_bytes = size_t{1} << 30;
  auto scores = LofComputer::ComputeFromScratch(
      data, Euclidean(), 5, IndexKind::kLinearScan, false, options);
  ASSERT_TRUE(scores.ok());
  EXPECT_FALSE(scores->degraded_to_requery);
}

TEST_F(RobustnessTest, RankOutliersDegradesToIdenticalTopN) {
  const Dataset data = MakeClusteredData(150);
  auto baseline = LofSweep::RankOutliers(data, Euclidean(), 3, 9,
                                         /*top_n=*/10);
  ASSERT_TRUE(baseline.ok());

  bool degraded = false;
  LofPipelineOptions pipeline;
  pipeline.memory_budget_bytes = 1024;
  pipeline.degraded_to_requery = &degraded;
  auto budgeted = LofSweep::RankOutliers(
      data, Euclidean(), 3, 9, /*top_n=*/10, IndexKind::kLinearScan,
      LofAggregation::kMax, /*threads=*/2, pipeline);
  ASSERT_TRUE(budgeted.ok());
  EXPECT_TRUE(degraded);
  ASSERT_EQ(baseline->size(), budgeted->size());
  for (size_t i = 0; i < baseline->size(); ++i) {
    EXPECT_EQ((*baseline)[i].index, (*budgeted)[i].index);
    EXPECT_EQ((*baseline)[i].score, (*budgeted)[i].score);
  }
}

TEST_F(RobustnessTest, DistinctModeUnderBudgetIsResourceExhausted) {
  const Dataset data = MakeClusteredData(64);
  LofComputeOptions options;
  options.memory_budget_bytes = 64;  // Guaranteed overflow.
  auto scores = LofComputer::ComputeFromScratch(
      data, Euclidean(), 5, IndexKind::kLinearScan, /*distinct=*/true,
      options);
  ASSERT_FALSE(scores.ok());
  EXPECT_EQ(scores.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(RobustnessTest, MaterializerBudgetRefusalIsResourceExhausted) {
  const Dataset data = MakeClusteredData(64);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(
      data, index, 5, false, PipelineObserver{}, StopToken{},
      /*memory_budget_bytes=*/64);
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(RobustnessTest, RequeryRejectsDegenerateArguments) {
  const Dataset data = MakeClusteredData(16);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  EXPECT_EQ(LofComputer::ComputeRequery(data, index, 0).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(
      LofComputer::ComputeRequery(data, index, data.size()).status().code(),
      StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace lofkit
