#include "baselines/db_outlier.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "dataset/scenarios.h"
#include "index/kd_tree_index.h"

namespace lofkit {
namespace {

TEST(DbOutlierTest, HandComputedExample) {
  // 1-d points {0, 1, 2, 10}, dmin = 3. In-ball counts (incl. self):
  // p0:3, p1:3, p2:3, p3:1. With pct = 60, threshold = floor(0.4*4) = 1:
  // only p3 qualifies.
  auto ds = Dataset::FromRowMajor(1, {0, 1, 2, 10});
  ASSERT_TRUE(ds.ok());
  auto result = DbOutlierDetector::Detect(*ds, Euclidean(), 60.0, 3.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->threshold_count, 1u);
  EXPECT_EQ(result->outlier_count, 1u);
  EXPECT_FALSE(result->is_outlier[0]);
  EXPECT_FALSE(result->is_outlier[1]);
  EXPECT_FALSE(result->is_outlier[2]);
  EXPECT_TRUE(result->is_outlier[3]);
}

TEST(DbOutlierTest, RejectsBadParameters) {
  auto ds = Dataset::FromRowMajor(1, {0, 1});
  ASSERT_TRUE(ds.ok());
  EXPECT_FALSE(DbOutlierDetector::Detect(*ds, Euclidean(), -1, 1).ok());
  EXPECT_FALSE(DbOutlierDetector::Detect(*ds, Euclidean(), 101, 1).ok());
  EXPECT_FALSE(DbOutlierDetector::Detect(*ds, Euclidean(), 50, -1).ok());
  auto empty = Dataset::Create(1);
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(DbOutlierDetector::Detect(*empty, Euclidean(), 50, 1).ok());
}

TEST(DbOutlierTest, IndexVariantAgreesWithNestedLoop) {
  Rng rng(41);
  auto ds = generators::MakePerformanceWorkload(rng, 2, 300, 4);
  ASSERT_TRUE(ds.ok());
  KdTreeIndex index;
  ASSERT_TRUE(index.Build(*ds, Euclidean()).ok());
  for (double dmin : {1.0, 5.0, 20.0}) {
    auto nested =
        DbOutlierDetector::Detect(*ds, Euclidean(), 99.0, dmin);
    auto indexed =
        DbOutlierDetector::DetectWithIndex(*ds, index, 99.0, dmin);
    ASSERT_TRUE(nested.ok() && indexed.ok());
    EXPECT_EQ(nested->outlier_count, indexed->outlier_count) << dmin;
    for (size_t i = 0; i < ds->size(); ++i) {
      ASSERT_EQ(nested->is_outlier[i], indexed->is_outlier[i])
          << "dmin " << dmin << " point " << i;
    }
  }
}

TEST(DbOutlierTest, CellBasedAgreesWithNestedLoop2D) {
  Rng rng(44);
  auto ds = generators::MakePerformanceWorkload(rng, 2, 400, 4);
  ASSERT_TRUE(ds.ok());
  for (double dmin : {0.5, 2.0, 8.0, 25.0}) {
    for (double pct : {90.0, 99.0, 99.8}) {
      auto nested = DbOutlierDetector::Detect(*ds, Euclidean(), pct, dmin);
      auto cells = DbOutlierDetector::DetectCellBased(*ds, pct, dmin);
      ASSERT_TRUE(nested.ok());
      ASSERT_TRUE(cells.ok()) << cells.status();
      EXPECT_EQ(nested->outlier_count, cells->outlier_count)
          << "pct=" << pct << " dmin=" << dmin;
      for (size_t i = 0; i < ds->size(); ++i) {
        ASSERT_EQ(nested->is_outlier[i], cells->is_outlier[i])
            << "pct=" << pct << " dmin=" << dmin << " point " << i;
      }
    }
  }
}

TEST(DbOutlierTest, CellBasedAgreesWithNestedLoop3D) {
  Rng rng(45);
  auto ds = generators::MakePerformanceWorkload(rng, 3, 300, 3);
  ASSERT_TRUE(ds.ok());
  auto nested = DbOutlierDetector::Detect(*ds, Euclidean(), 99.0, 6.0);
  auto cells = DbOutlierDetector::DetectCellBased(*ds, 99.0, 6.0);
  ASSERT_TRUE(nested.ok() && cells.ok());
  for (size_t i = 0; i < ds->size(); ++i) {
    ASSERT_EQ(nested->is_outlier[i], cells->is_outlier[i]) << i;
  }
}

TEST(DbOutlierTest, CellBasedRejectsHighDimensionsAndZeroDmin) {
  Rng rng(46);
  auto ds5 = generators::MakePerformanceWorkload(rng, 5, 50, 2);
  ASSERT_TRUE(ds5.ok());
  EXPECT_EQ(DbOutlierDetector::DetectCellBased(*ds5, 99.0, 1.0)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  auto ds2 = generators::MakePerformanceWorkload(rng, 2, 50, 2);
  ASSERT_TRUE(ds2.ok());
  EXPECT_FALSE(DbOutlierDetector::DetectCellBased(*ds2, 99.0, 0.0).ok());
}

TEST(DbOutlierTest, FlagsGlobalOutlier) {
  Rng rng(42);
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  const double center[2] = {0, 0};
  ASSERT_TRUE(
      generators::AppendGaussianCluster(*ds, rng, center, 1.0, 200).ok());
  const double far_away[2] = {50, 50};
  ASSERT_TRUE(ds->Append(far_away).ok());
  auto result = DbOutlierDetector::Detect(*ds, Euclidean(), 99.0, 10.0);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->is_outlier[200]);
  EXPECT_EQ(result->outlier_count, 1u);
}

TEST(DbOutlierTest, Section3ArgumentHoldsOnDs1) {
  // The core claim of section 3: there is no (pct, dmin) for which o2 is a
  // DB outlier while the C1 objects are not. We sweep dmin over the full
  // relevant range at high pct resolution and verify that whenever o2 is
  // flagged, a large part of C1 is flagged too.
  Rng rng(43);
  auto scenario = scenarios::MakeDs1(rng);
  ASSERT_TRUE(scenario.ok());
  const Dataset& ds = scenario->data;
  const size_t o2 = scenario->named.at("o2");

  for (double dmin = 0.5; dmin <= 6.0; dmin += 0.5) {
    for (double pct : {90.0, 95.0, 99.0, 99.8}) {
      auto result = DbOutlierDetector::Detect(ds, Euclidean(), pct, dmin);
      ASSERT_TRUE(result.ok());
      if (!result->is_outlier[o2]) continue;
      size_t c1_flagged = 0;
      size_t c1_total = 0;
      for (size_t i = 0; i < ds.size(); ++i) {
        if (ds.label(i) != "C1") continue;
        ++c1_total;
        if (result->is_outlier[i]) ++c1_flagged;
      }
      // o2 flagged => (nearly) all of C1 flagged as well.
      EXPECT_GT(c1_flagged, c1_total * 9 / 10)
          << "pct=" << pct << " dmin=" << dmin;
    }
  }
}

}  // namespace
}  // namespace lofkit
