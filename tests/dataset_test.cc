#include "dataset/dataset.h"

#include <cmath>

#include <gtest/gtest.h>

namespace lofkit {
namespace {

TEST(DatasetTest, CreateRejectsZeroDimension) {
  EXPECT_FALSE(Dataset::Create(0).ok());
  EXPECT_TRUE(Dataset::Create(1).ok());
}

TEST(DatasetTest, AppendAndAccess) {
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  const double a[2] = {1.0, 2.0};
  const double b[2] = {3.0, 4.0};
  ASSERT_TRUE(ds->Append(a, "first").ok());
  ASSERT_TRUE(ds->Append(b).ok());
  EXPECT_EQ(ds->size(), 2u);
  EXPECT_EQ(ds->dimension(), 2u);
  EXPECT_DOUBLE_EQ(ds->point(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(ds->point(1)[1], 4.0);
  EXPECT_EQ(ds->label(0), "first");
  EXPECT_EQ(ds->label(1), "");
}

TEST(DatasetTest, AppendRejectsWrongDimension) {
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  const double p[3] = {1, 2, 3};
  EXPECT_EQ(ds->Append(p).code(), StatusCode::kInvalidArgument);
}

TEST(DatasetTest, AppendRejectsNonFinite) {
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  const double nan_p[2] = {1.0, std::nan("")};
  const double inf_p[2] = {INFINITY, 0.0};
  EXPECT_FALSE(ds->Append(nan_p).ok());
  EXPECT_FALSE(ds->Append(inf_p).ok());
  EXPECT_TRUE(ds->empty());
}

TEST(DatasetTest, FromRowMajor) {
  auto ds = Dataset::FromRowMajor(2, {1, 2, 3, 4, 5, 6});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 3u);
  EXPECT_DOUBLE_EQ(ds->point(2)[0], 5.0);
}

TEST(DatasetTest, FromRowMajorRejectsBadShapes) {
  EXPECT_FALSE(Dataset::FromRowMajor(2, {1, 2, 3}).ok());
  EXPECT_FALSE(Dataset::FromRowMajor(2, {}).ok());
  EXPECT_FALSE(Dataset::FromRowMajor(0, {1, 2}).ok());
  EXPECT_FALSE(Dataset::FromRowMajor(1, {std::nan("")}).ok());
}

TEST(DatasetTest, AppendAllRequiresSameDimension) {
  auto a = Dataset::FromRowMajor(2, {1, 2});
  auto b = Dataset::FromRowMajor(2, {3, 4});
  auto c = Dataset::FromRowMajor(3, {1, 2, 3});
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_TRUE(a->AppendAll(*b).ok());
  EXPECT_EQ(a->size(), 2u);
  EXPECT_FALSE(a->AppendAll(*c).ok());
}

TEST(DatasetTest, MinMax) {
  auto ds = Dataset::FromRowMajor(2, {1, 10, -3, 4, 5, 6});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->Min(), (std::vector<double>{-3, 4}));
  EXPECT_EQ(ds->Max(), (std::vector<double>{5, 10}));
}

TEST(DatasetTest, MinMaxOfEmptyIsEmpty) {
  auto ds = Dataset::Create(3);
  ASSERT_TRUE(ds.ok());
  EXPECT_TRUE(ds->Min().empty());
  EXPECT_TRUE(ds->Max().empty());
}

TEST(DatasetTest, NormalizedToUnitBox) {
  auto ds = Dataset::FromRowMajor(2, {0, 5, 10, 5, 5, 5});
  ASSERT_TRUE(ds.ok());
  Dataset norm = ds->NormalizedToUnitBox();
  EXPECT_DOUBLE_EQ(norm.point(0)[0], 0.0);
  EXPECT_DOUBLE_EQ(norm.point(1)[0], 1.0);
  EXPECT_DOUBLE_EQ(norm.point(2)[0], 0.5);
  // Constant dimension maps to 0.
  EXPECT_DOUBLE_EQ(norm.point(0)[1], 0.0);
  EXPECT_DOUBLE_EQ(norm.point(2)[1], 0.0);
}

TEST(DatasetTest, NormalizePreservesLabels) {
  auto ds = Dataset::Create(1);
  ASSERT_TRUE(ds.ok());
  const double p[1] = {2.0};
  ASSERT_TRUE(ds->Append(p, "tag").ok());
  Dataset norm = ds->NormalizedToUnitBox();
  EXPECT_EQ(norm.label(0), "tag");
}

TEST(DatasetTest, StandardizedHasZeroMeanUnitVariance) {
  auto ds = Dataset::FromRowMajor(2, {0, 5, 2, 5, 4, 5, 6, 5});
  ASSERT_TRUE(ds.ok());
  Dataset z = ds->Standardized();
  double mean0 = 0, var0 = 0;
  for (size_t i = 0; i < z.size(); ++i) mean0 += z.point(i)[0] / 4.0;
  for (size_t i = 0; i < z.size(); ++i) {
    const double d = z.point(i)[0] - mean0;
    var0 += d * d / 4.0;
  }
  EXPECT_NEAR(mean0, 0.0, 1e-12);
  EXPECT_NEAR(var0, 1.0, 1e-12);
  // Constant dimension maps to 0.
  for (size_t i = 0; i < z.size(); ++i) {
    EXPECT_DOUBLE_EQ(z.point(i)[1], 0.0);
  }
}

TEST(DatasetTest, SetLabel) {
  auto ds = Dataset::FromRowMajor(1, {1.0});
  ASSERT_TRUE(ds.ok());
  ds->set_label(0, "renamed");
  EXPECT_EQ(ds->label(0), "renamed");
}

TEST(DatasetTest, RawBufferIsRowMajor) {
  auto ds = Dataset::FromRowMajor(2, {1, 2, 3, 4});
  ASSERT_TRUE(ds.ok());
  auto raw = ds->raw();
  ASSERT_EQ(raw.size(), 4u);
  EXPECT_DOUBLE_EQ(raw[2], 3.0);
}

}  // namespace
}  // namespace lofkit
