// Randomized cross-consistency suite: relationships that must hold between
// *different* query paths of the same engine, fuzzed over random clustered
// data with planted duplicates. These complement the oracle-based
// conformance tests (engine vs linear scan) by checking internal
// consistency that even a wrong-but-consistent oracle pair could miss.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/index_factory.h"
#include "index/neighborhood_materializer.h"

namespace lofkit {
namespace {

// Random clustered data with a sprinkle of exact duplicates — the nastiest
// tie structure the definitions must survive.
Dataset FuzzData(Rng& rng, size_t dim, size_t n) {
  auto ds = generators::MakePerformanceWorkload(rng, dim, n, 4);
  EXPECT_TRUE(ds.ok());
  Dataset data = std::move(ds).value();
  // Duplicate ~5% of the points.
  const size_t dups = n / 20;
  for (size_t i = 0; i < dups; ++i) {
    const size_t victim = rng.UniformU64(data.size());
    std::vector<double> copy(data.point(victim).begin(),
                             data.point(victim).end());
    EXPECT_TRUE(data.Append(copy, "dup").ok());
  }
  return data;
}

class ConsistencyFuzzTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(ConsistencyFuzzTest, RadiusAtKDistanceEqualsKnnNeighborhood) {
  // Definition 4 in two ways: QueryRadius(q, k-distance) must return
  // exactly the k-distance neighborhood Query(q, k) returns.
  Rng rng(501);
  Dataset data = FuzzData(rng, 3, 250);
  auto engine = CreateIndex(GetParam());
  ASSERT_TRUE(engine->Build(data, Euclidean()).ok());
  for (int trial = 0; trial < 25; ++trial) {
    const uint32_t q = static_cast<uint32_t>(rng.UniformU64(data.size()));
    const size_t k = 1 + rng.UniformU64(15);
    auto knn = engine->Query(data.point(q), k, q);
    ASSERT_TRUE(knn.ok());
    const double k_distance = knn->back().distance;
    auto ball = engine->QueryRadius(data.point(q), k_distance, q);
    ASSERT_TRUE(ball.ok());
    ASSERT_EQ(ball->size(), knn->size())
        << IndexKindName(GetParam()) << " trial " << trial;
    for (size_t i = 0; i < ball->size(); ++i) {
      EXPECT_EQ((*ball)[i].index, (*knn)[i].index);
    }
  }
}

TEST_P(ConsistencyFuzzTest, GrowingKGivesNestedNeighborhoods) {
  Rng rng(502);
  Dataset data = FuzzData(rng, 2, 200);
  auto engine = CreateIndex(GetParam());
  ASSERT_TRUE(engine->Build(data, Euclidean()).ok());
  for (int trial = 0; trial < 10; ++trial) {
    const uint32_t q = static_cast<uint32_t>(rng.UniformU64(data.size()));
    std::set<uint32_t> previous;
    for (size_t k = 1; k <= 12; k += 2) {
      auto knn = engine->Query(data.point(q), k, q);
      ASSERT_TRUE(knn.ok());
      std::set<uint32_t> current;
      for (const Neighbor& n : *knn) current.insert(n.index);
      EXPECT_TRUE(std::includes(current.begin(), current.end(),
                                previous.begin(), previous.end()))
          << IndexKindName(GetParam()) << " k=" << k;
      previous = std::move(current);
    }
  }
}

TEST_P(ConsistencyFuzzTest, RadiusMonotoneInRadius) {
  Rng rng(503);
  Dataset data = FuzzData(rng, 3, 200);
  auto engine = CreateIndex(GetParam());
  ASSERT_TRUE(engine->Build(data, Euclidean()).ok());
  std::vector<double> query(3);
  for (int trial = 0; trial < 10; ++trial) {
    for (auto& x : query) x = rng.Uniform(-10, 110);
    size_t previous = 0;
    for (double radius : {1.0, 5.0, 20.0, 80.0, 500.0}) {
      auto ball = engine->QueryRadius(query, radius);
      ASSERT_TRUE(ball.ok());
      EXPECT_GE(ball->size(), previous);
      for (const Neighbor& n : *ball) {
        EXPECT_LE(n.distance, radius);
      }
      previous = ball->size();
    }
    EXPECT_EQ(previous, data.size());  // radius 500 covers everything
  }
}

TEST_P(ConsistencyFuzzTest, ExcludeRemovesExactlyOnePoint) {
  Rng rng(504);
  Dataset data = FuzzData(rng, 2, 150);
  auto engine = CreateIndex(GetParam());
  ASSERT_TRUE(engine->Build(data, Euclidean()).ok());
  for (int trial = 0; trial < 10; ++trial) {
    const uint32_t q = static_cast<uint32_t>(rng.UniformU64(data.size()));
    auto with = engine->QueryRadius(data.point(q), 10.0);
    auto without = engine->QueryRadius(data.point(q), 10.0, q);
    ASSERT_TRUE(with.ok() && without.ok());
    ASSERT_EQ(with->size(), without->size() + 1);
    for (const Neighbor& n : *without) {
      EXPECT_NE(n.index, q);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, ConsistencyFuzzTest,
                         ::testing::ValuesIn(AllIndexKinds()),
                         [](const auto& info) {
                           return std::string(IndexKindName(info.param));
                         });

}  // namespace
}  // namespace lofkit
