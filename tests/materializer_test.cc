#include "index/neighborhood_materializer.h"

#include <cstdio>
#include <fstream>
#include <utility>

#include <gtest/gtest.h>

#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/linear_scan_index.h"

namespace lofkit {
namespace {

Dataset MakeLine(size_t n) {
  // Points at x = 0, 1, 2, ..., n-1 — hand-checkable neighborhoods.
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = static_cast<double>(i);
  auto ds = Dataset::FromRowMajor(1, std::move(values));
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

NeighborhoodMaterializer MaterializeLine(const Dataset& data, size_t k,
                                         bool distinct = false) {
  static LinearScanIndex index;  // rebuilt per call below
  EXPECT_TRUE(index.Build(data, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(data, index, k, distinct);
  EXPECT_TRUE(m.ok()) << m.status();
  return std::move(m).value();
}

TEST(MaterializerTest, RejectsDegenerateParameters) {
  Dataset data = MakeLine(10);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  EXPECT_FALSE(NeighborhoodMaterializer::Materialize(data, index, 0).ok());
  EXPECT_FALSE(NeighborhoodMaterializer::Materialize(data, index, 10).ok());
  EXPECT_TRUE(NeighborhoodMaterializer::Materialize(data, index, 9).ok());
}

TEST(MaterializerTest, StoresSortedNeighborhoods) {
  Dataset data = MakeLine(20);
  auto m = MaterializeLine(data, 5);
  EXPECT_EQ(m.size(), 20u);
  EXPECT_EQ(m.k_max(), 5u);
  for (size_t i = 0; i < m.size(); ++i) {
    auto list = m.neighbors(i);
    ASSERT_GE(list.size(), 5u);
    for (size_t j = 1; j < list.size(); ++j) {
      EXPECT_LE(list[j - 1].distance, list[j].distance);
    }
  }
}

TEST(MaterializerTest, ViewMatchesHandComputedLine) {
  Dataset data = MakeLine(10);
  auto m = MaterializeLine(data, 4);
  // Point 0: neighbors 1,2,3,4 at distances 1,2,3,4.
  auto view = m.View(0, 3);
  ASSERT_TRUE(view.ok());
  EXPECT_DOUBLE_EQ(view->k_distance, 3.0);
  ASSERT_EQ(view->neighborhood.size(), 3u);
  EXPECT_EQ(view->neighborhood[0].index, 1u);
  // Point 5 (interior): 1-NN are 4 and 6 (tie at distance 1).
  view = m.View(5, 1);
  ASSERT_TRUE(view.ok());
  EXPECT_DOUBLE_EQ(view->k_distance, 1.0);
  EXPECT_EQ(view->neighborhood.size(), 2u);  // tie included (Definition 4)
}

TEST(MaterializerTest, TiesExtendNeighborhoodBeyondK) {
  Dataset data = MakeLine(11);
  auto m = MaterializeLine(data, 4);
  // Interior point 5: distances 1,1,2,2,3,3,... k=3 -> k-distance 2,
  // neighborhood holds 4 points.
  auto view = m.View(5, 3);
  ASSERT_TRUE(view.ok());
  EXPECT_DOUBLE_EQ(view->k_distance, 2.0);
  EXPECT_EQ(view->neighborhood.size(), 4u);
}

TEST(MaterializerTest, ViewErrorsOutOfRange) {
  Dataset data = MakeLine(10);
  auto m = MaterializeLine(data, 4);
  EXPECT_EQ(m.View(0, 0).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(m.View(0, 5).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(m.View(99, 2).status().code(), StatusCode::kNotFound);
}

TEST(MaterializerTest, DuplicatesGiveZeroKDistanceInStandardMode) {
  auto data_or = Dataset::Create(2);
  ASSERT_TRUE(data_or.ok());
  Dataset data = std::move(data_or).value();
  const double p[2] = {1.0, 1.0};
  ASSERT_TRUE(generators::AppendDuplicates(data, p, 5).ok());
  const double q[2] = {5.0, 5.0};
  ASSERT_TRUE(data.Append(q).ok());
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(data, index, 3);
  ASSERT_TRUE(m.ok());
  auto view = m->View(0, 3);
  ASSERT_TRUE(view.ok());
  EXPECT_DOUBLE_EQ(view->k_distance, 0.0);  // three exact duplicates
}

TEST(MaterializerTest, DistinctModeSkipsDuplicatesForKDistance) {
  auto data_or = Dataset::Create(2);
  ASSERT_TRUE(data_or.ok());
  Dataset data = std::move(data_or).value();
  const double p[2] = {1.0, 1.0};
  ASSERT_TRUE(generators::AppendDuplicates(data, p, 5).ok());
  const double q[2] = {5.0, 5.0};
  const double r[2] = {6.0, 6.0};
  ASSERT_TRUE(data.Append(q).ok());
  ASSERT_TRUE(data.Append(r).ok());
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(data, index, 3,
                                                 /*distinct=*/true);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->distinct_neighbors());
  // For a duplicate of p: group 1 = the other duplicates (distance 0),
  // groups 2 and 3 = q and r. 3-distinct-distance = d(p, r).
  auto view = m->View(0, 3);
  ASSERT_TRUE(view.ok());
  EXPECT_GT(view->k_distance, 0.0);
  EXPECT_DOUBLE_EQ(view->k_distance, Euclidean().Distance(data.point(0),
                                                          data.point(6)));
  // The neighborhood still contains the duplicates.
  EXPECT_EQ(view->neighborhood.size(), 6u);
}

TEST(MaterializerTest, DistinctModeErrorsWhenTooFewDistinctPoints) {
  auto data_or = Dataset::Create(1);
  ASSERT_TRUE(data_or.ok());
  Dataset data = std::move(data_or).value();
  const double a[1] = {0.0};
  const double b[1] = {1.0};
  ASSERT_TRUE(generators::AppendDuplicates(data, a, 4).ok());
  ASSERT_TRUE(generators::AppendDuplicates(data, b, 4).ok());
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(data, index, 3,
                                                 /*distinct=*/true);
  ASSERT_TRUE(m.ok());
  // Only 2 distinct coordinate groups exist; k=3 distinct is impossible.
  EXPECT_EQ(m->View(0, 3).status().code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(m->View(0, 2).ok());
}

TEST(MaterializerTest, ParallelMatchesSerial) {
  Rng rng(9);
  auto ds = generators::MakePerformanceWorkload(rng, 3, 400, 4);
  ASSERT_TRUE(ds.ok());
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(*ds, Euclidean()).ok());
  auto serial = NeighborhoodMaterializer::Materialize(*ds, index, 12);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {2u, 4u, 7u}) {
    auto parallel = NeighborhoodMaterializer::MaterializeParallel(
        *ds, index, 12, threads);
    ASSERT_TRUE(parallel.ok()) << threads;
    ASSERT_EQ(parallel->total_neighbor_count(),
              serial->total_neighbor_count());
    for (size_t i = 0; i < serial->size(); ++i) {
      auto a = serial->neighbors(i);
      auto b = parallel->neighbors(i);
      ASSERT_EQ(a.size(), b.size()) << "threads " << threads;
      for (size_t j = 0; j < a.size(); ++j) {
        ASSERT_EQ(a[j].index, b[j].index);
        ASSERT_DOUBLE_EQ(a[j].distance, b[j].distance);
      }
    }
  }
}

TEST(MaterializerTest, ParallelDistinctModeMatchesSerial) {
  auto data_or = Dataset::Create(2);
  ASSERT_TRUE(data_or.ok());
  Dataset data = std::move(data_or).value();
  const double p[2] = {1.0, 1.0};
  ASSERT_TRUE(generators::AppendDuplicates(data, p, 6).ok());
  Rng rng(10);
  const double lo[2] = {0, 0};
  const double hi[2] = {10, 10};
  ASSERT_TRUE(generators::AppendUniformBox(data, rng, lo, hi, 60).ok());
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto serial = NeighborhoodMaterializer::Materialize(data, index, 5, true);
  auto parallel = NeighborhoodMaterializer::MaterializeParallel(
      data, index, 5, 3, true);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  ASSERT_EQ(serial->total_neighbor_count(),
            parallel->total_neighbor_count());
}

TEST(MaterializerTest, SaveLoadRoundTrip) {
  Dataset data = MakeLine(30);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(data, index, 6);
  ASSERT_TRUE(m.ok());
  const std::string path = ::testing::TempDir() + "/lofkit_m_roundtrip.bin";
  ASSERT_TRUE(m->SaveToFile(path).ok());
  auto loaded = NeighborhoodMaterializer::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), m->size());
  EXPECT_EQ(loaded->k_max(), m->k_max());
  EXPECT_EQ(loaded->total_neighbor_count(), m->total_neighbor_count());
  for (size_t i = 0; i < m->size(); ++i) {
    auto original = m->neighbors(i);
    auto restored = loaded->neighbors(i);
    ASSERT_EQ(original.size(), restored.size());
    for (size_t j = 0; j < original.size(); ++j) {
      EXPECT_EQ(original[j].index, restored[j].index);
      EXPECT_DOUBLE_EQ(original[j].distance, restored[j].distance);
    }
  }
  std::remove(path.c_str());
}

TEST(MaterializerTest, LoadedFileDrivesStepTwoWithoutTheDataset) {
  // The core claim of section 7.4: step 2 needs only M, not D.
  Dataset data = MakeLine(40);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(data, index, 8);
  ASSERT_TRUE(m.ok());
  const std::string path = ::testing::TempDir() + "/lofkit_m_step2.bin";
  ASSERT_TRUE(m->SaveToFile(path).ok());
  auto loaded = NeighborhoodMaterializer::LoadFromFile(path);  // no dataset
  ASSERT_TRUE(loaded.ok());
  auto view_orig = m->View(5, 4);
  auto view_loaded = loaded->View(5, 4);
  ASSERT_TRUE(view_orig.ok() && view_loaded.ok());
  EXPECT_DOUBLE_EQ(view_orig->k_distance, view_loaded->k_distance);
  EXPECT_EQ(view_orig->neighborhood.size(), view_loaded->neighborhood.size());
  std::remove(path.c_str());
}

TEST(MaterializerTest, LoadRejectsGarbageAndMismatches) {
  const std::string path = ::testing::TempDir() + "/lofkit_m_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a materialization";
  }
  EXPECT_EQ(NeighborhoodMaterializer::LoadFromFile(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
  EXPECT_EQ(NeighborhoodMaterializer::LoadFromFile("/no/such/file")
                .status()
                .code(),
            StatusCode::kIoError);

  // Distinct-mode files require the dataset; size mismatches are rejected.
  Dataset data = MakeLine(20);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(data, index, 4,
                                                 /*distinct=*/true);
  ASSERT_TRUE(m.ok());
  const std::string distinct_path =
      ::testing::TempDir() + "/lofkit_m_distinct.bin";
  ASSERT_TRUE(m->SaveToFile(distinct_path).ok());
  EXPECT_FALSE(NeighborhoodMaterializer::LoadFromFile(distinct_path).ok());
  Dataset other = MakeLine(7);
  EXPECT_FALSE(
      NeighborhoodMaterializer::LoadFromFile(distinct_path, &other).ok());
  auto restored =
      NeighborhoodMaterializer::LoadFromFile(distinct_path, &data);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->distinct_neighbors());
  std::remove(distinct_path.c_str());
}

// Writes a materialization file with the on-disk layout of SaveToFile but
// arbitrary (possibly invalid) neighbor lists, to exercise load validation.
void WriteRawMaterialization(const std::string& path, uint64_t k_max,
                             const std::vector<std::vector<Neighbor>>& lists) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write("LOFM", 4);
  const uint32_t version = 1;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&k_max), sizeof(k_max));
  const uint8_t distinct = 0;
  out.write(reinterpret_cast<const char*>(&distinct), sizeof(distinct));
  const uint64_t n = lists.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  uint64_t offset = 0;
  out.write(reinterpret_cast<const char*>(&offset), sizeof(offset));
  for (const auto& list : lists) {
    offset += list.size();
    out.write(reinterpret_cast<const char*>(&offset), sizeof(offset));
  }
  for (const auto& list : lists) {
    for (const Neighbor& neighbor : list) {
      out.write(reinterpret_cast<const char*>(&neighbor.index),
                sizeof(neighbor.index));
      out.write(reinterpret_cast<const char*>(&neighbor.distance),
                sizeof(neighbor.distance));
    }
  }
}

TEST(MaterializerTest, LoadRejectsUnsortedNeighborLists) {
  // Regression: a structurally decodable file with an unsorted list used to
  // load fine and then silently break View()'s equal-distance-run walk.
  const std::string path = ::testing::TempDir() + "/lofkit_m_unsorted.bin";
  WriteRawMaterialization(path, 2,
                          {{{1, 2.0}, {2, 1.0}},    // distances out of order
                           {{0, 1.0}, {2, 2.0}},
                           {{0, 1.0}, {1, 2.0}}});
  auto loaded = NeighborhoodMaterializer::LoadFromFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("not sorted"), std::string::npos);

  // Equal distances must also be ordered by ascending index.
  WriteRawMaterialization(path, 2,
                          {{{2, 1.0}, {1, 1.0}},
                           {{0, 1.0}, {2, 2.0}},
                           {{0, 1.0}, {1, 2.0}}});
  EXPECT_FALSE(NeighborhoodMaterializer::LoadFromFile(path).ok());
  std::remove(path.c_str());
}

TEST(MaterializerTest, LoadRejectsNonFiniteDistances) {
  const std::string path = ::testing::TempDir() + "/lofkit_m_nonfinite.bin";
  const double kBad[] = {std::numeric_limits<double>::quiet_NaN(),
                         std::numeric_limits<double>::infinity(), -1.0};
  for (double bad : kBad) {
    WriteRawMaterialization(path, 2,
                            {{{1, 1.0}, {2, bad}},
                             {{0, 1.0}, {2, 2.0}},
                             {{0, 1.0}, {1, 2.0}}});
    auto loaded = NeighborhoodMaterializer::LoadFromFile(path);
    ASSERT_FALSE(loaded.ok()) << bad;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument) << bad;
  }
  std::remove(path.c_str());
}

TEST(MaterializerTest, LoadStillRejectsOutOfRangeNeighborIndexes) {
  const std::string path = ::testing::TempDir() + "/lofkit_m_badindex.bin";
  WriteRawMaterialization(path, 2,
                          {{{1, 1.0}, {9, 2.0}},    // index 9 of n=3
                           {{0, 1.0}, {2, 2.0}},
                           {{0, 1.0}, {1, 2.0}}});
  auto loaded = NeighborhoodMaterializer::LoadFromFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// Writes only the legacy v1 header with arbitrary (hostile) counts — no
// body — to prove load validation bounds every allocation by the actual
// file size.
void WriteLegacyHeader(const std::string& path, uint64_t k_max, uint64_t n) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write("LOFM", 4);
  const uint32_t version = 1;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&k_max), sizeof(k_max));
  const uint8_t distinct = 0;
  out.write(reinterpret_cast<const char*>(&distinct), sizeof(distinct));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
}

TEST(MaterializerTest, HostileHeaderCountsAreBoundedByTheFileSize) {
  // Regression: LoadFromFile used to offsets_.resize(n + 1) straight from
  // the header, so a 25-byte file claiming n = 2^61 points asked the
  // allocator for 16 EiB before any byte of the offsets table was read.
  const std::string path = ::testing::TempDir() + "/lofkit_m_hostile_n.bin";
  WriteLegacyHeader(path, 4, uint64_t{1} << 61);
  auto loaded = NeighborhoodMaterializer::LoadFromFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("exceeds the file size"),
            std::string::npos)
      << loaded.status();

  // n + 1 overflowing to zero must not sneak past the bound either.
  WriteLegacyHeader(path, 4, ~uint64_t{0});
  EXPECT_EQ(NeighborhoodMaterializer::LoadFromFile(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(MaterializerTest, HostileOffsetsAreBoundedByTheFileSize) {
  // The sibling hole: a plausible n whose final offset (the flat entry
  // count) vastly exceeds what the file can hold used to reach
  // flat_.resize(offsets_.back()) unchecked.
  const std::string path =
      ::testing::TempDir() + "/lofkit_m_hostile_offsets.bin";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write("LOFM", 4);
    const uint32_t version = 1;
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    const uint64_t k_max = 4;
    out.write(reinterpret_cast<const char*>(&k_max), sizeof(k_max));
    const uint8_t distinct = 0;
    out.write(reinterpret_cast<const char*>(&distinct), sizeof(distinct));
    const uint64_t n = 2;
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
    const uint64_t offsets[3] = {0, uint64_t{1} << 60, uint64_t{1} << 61};
    out.write(reinterpret_cast<const char*>(offsets), sizeof(offsets));
  }
  auto loaded = NeighborhoodMaterializer::LoadFromFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("exceeds the file size"),
            std::string::npos)
      << loaded.status();
  std::remove(path.c_str());
}

TEST(MaterializerTest, SavedFilesUseTheContainerFormatNow) {
  // SaveToFile migrated from the legacy "LOFM" blob to the checksummed
  // container ("LFKC" magic); LoadFromFile sniffs the magic and reads
  // both, so old files keep working (WriteRawMaterialization above covers
  // the legacy decode path).
  Dataset data = MakeLine(25);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(data, index, 5);
  ASSERT_TRUE(m.ok());
  const std::string path = ::testing::TempDir() + "/lofkit_m_container.bin";
  ASSERT_TRUE(m->SaveToFile(path).ok());
  std::ifstream in(path, std::ios::binary);
  char magic[4];
  in.read(magic, 4);
  ASSERT_TRUE(in.good());
  EXPECT_EQ(std::string(magic, 4), "LFKC");
  // Both loaders accept it; the mmap route reports file_backed().
  auto copied = NeighborhoodMaterializer::LoadFromFile(path);
  ASSERT_TRUE(copied.ok());
  EXPECT_FALSE(copied->file_backed());
  auto mapped = NeighborhoodMaterializer::MapFromFile(path);
  ASSERT_TRUE(mapped.ok());
  EXPECT_TRUE(mapped->file_backed());
  EXPECT_EQ(mapped->size(), 25u);
  std::remove(path.c_str());
}

TEST(MaterializerTest, SizeOfMIsDimensionIndependent) {
  // Section 7.4: |M| = n * MinPtsUB entries regardless of dimension.
  for (size_t dim : {2u, 8u}) {
    Rng rng(7);
    auto ds = generators::MakePerformanceWorkload(rng, dim, 200, 3);
    ASSERT_TRUE(ds.ok());
    LinearScanIndex index;
    ASSERT_TRUE(index.Build(*ds, Euclidean()).ok());
    auto m = NeighborhoodMaterializer::Materialize(*ds, index, 10);
    ASSERT_TRUE(m.ok());
    // Ties can add entries, but with continuous random data they are
    // essentially impossible: expect exactly n * k entries.
    EXPECT_EQ(m->total_neighbor_count(), 200u * 10u);
  }
}

TEST(MaterializerTest, SizeIsZeroAfterMoveNotUnderflowed) {
  // Regression: size() used to compute offsets_.size() - 1 unguarded, so a
  // moved-from materializer (empty offsets table) reported SIZE_MAX points
  // and any loop over [0, size()) walked off the end.
  Dataset data = MakeLine(12);
  auto m = MaterializeLine(data, 3);
  EXPECT_EQ(m.size(), 12u);
  NeighborhoodMaterializer stolen = std::move(m);
  EXPECT_EQ(stolen.size(), 12u);
  EXPECT_EQ(m.size(), 0u);  // NOLINT(bugprone-use-after-move): on purpose
  EXPECT_EQ(m.total_neighbor_count(), 0u);
}

}  // namespace
}  // namespace lofkit
