// Counter-consistency tests for the per-engine QueryStats instrumentation:
// the counters must (a) match closed-form counts where one exists, (b) stay
// ordered the way the pruning argument predicts, (c) never change a result
// bit, and (d) aggregate to the same totals at every thread count.

#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/random.h"
#include "dataset/generators.h"
#include "index/index_factory.h"
#include "index/kd_tree_index.h"
#include "index/linear_scan_index.h"
#include "index/neighborhood_materializer.h"

namespace lofkit {
namespace {

Dataset MakeWorkload(size_t dim, size_t n) {
  Rng rng(4242);
  auto ds = generators::MakePerformanceWorkload(rng, dim, n, 5);
  EXPECT_TRUE(ds.ok()) << ds.status();
  return std::move(ds).value();
}

// A self-excluding linear-scan query evaluates every other point exactly
// once: distance_evals == n - 1, no pruning of candidates before the
// distance is computed.
TEST(QueryStatsTest, LinearScanEvaluatesExactlyNMinusOnePerQuery) {
  const size_t n = 97;
  const Dataset data = MakeWorkload(3, n);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  QueryStats stats;
  KnnSearchContext ctx;
  ctx.stats = &stats;
  for (size_t i = 0; i < n; ++i) {
    stats.Reset();
    ASSERT_TRUE(
        index.Query(data.point(i), 5, static_cast<uint32_t>(i), ctx).ok());
    EXPECT_EQ(stats.queries, 1u);
    EXPECT_EQ(stats.distance_evals, n - 1) << "query " << i;
    EXPECT_GT(stats.leaf_visits, 0u);  // SoA blocks scanned
    EXPECT_EQ(stats.node_visits, 0u);  // a scan has no internal nodes
  }
}

// The kd-tree exists to evaluate fewer distances than the scan; on a
// clustered low-dimensional workload its total must come in strictly below
// the scan's n * (n - 1), and the tau/box pruning must actually fire.
TEST(QueryStatsTest, KdTreePrunesBelowTheLinearScan) {
  const size_t n = 400;
  const Dataset data = MakeWorkload(2, n);

  LinearScanIndex scan;
  ASSERT_TRUE(scan.Build(data, Euclidean()).ok());
  KdTreeIndex tree;
  ASSERT_TRUE(tree.Build(data, Euclidean()).ok());

  QueryStats scan_stats, tree_stats;
  PipelineObserver scan_observer, tree_observer;
  scan_observer.query_stats = &scan_stats;
  tree_observer.query_stats = &tree_stats;
  auto scan_m = NeighborhoodMaterializer::Materialize(
      data, scan, 10, /*distinct_neighbors=*/false, scan_observer);
  auto tree_m = NeighborhoodMaterializer::Materialize(
      data, tree, 10, /*distinct_neighbors=*/false, tree_observer);
  ASSERT_TRUE(scan_m.ok());
  ASSERT_TRUE(tree_m.ok());

  EXPECT_EQ(scan_stats.queries, n);
  EXPECT_EQ(tree_stats.queries, n);
  EXPECT_EQ(scan_stats.distance_evals, n * (n - 1));
  EXPECT_LT(tree_stats.distance_evals, scan_stats.distance_evals);
  EXPECT_GT(tree_stats.rank_prune_hits, 0u);
  EXPECT_GT(tree_stats.node_visits, 0u);

  // The counters describe the work, not the answer: both engines return
  // the same neighborhoods.
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(scan_m->neighbors(i).size(), tree_m->neighbors(i).size());
  }
}

// Every engine: counting must not change a single result bit, and the
// basic counters must be live (queries counted, distances evaluated).
TEST(QueryStatsTest, CountingNeverChangesResultsAcrossEngines) {
  const size_t n = 150;
  const size_t k = 7;
  const Dataset data = MakeWorkload(4, n);
  for (IndexKind kind : AllIndexKinds()) {
    auto index = CreateIndex(kind);
    ASSERT_NE(index, nullptr);
    ASSERT_TRUE(index->Build(data, Euclidean()).ok());

    QueryStats stats;
    KnnSearchContext counted, plain;
    counted.stats = &stats;
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(index
                      ->Query(data.point(i), k, static_cast<uint32_t>(i),
                              counted)
                      .ok());
      ASSERT_TRUE(
          index->Query(data.point(i), k, static_cast<uint32_t>(i), plain)
              .ok());
      const auto a = counted.results();
      const auto b = plain.results();
      ASSERT_EQ(a.size(), b.size()) << index->name() << " query " << i;
      for (size_t j = 0; j < a.size(); ++j) {
        EXPECT_EQ(a[j], b[j]) << index->name() << " query " << i;
      }
    }
    EXPECT_EQ(stats.queries, n) << index->name();
    EXPECT_GT(stats.distance_evals, 0u) << index->name();
    EXPECT_GT(stats.heap_pushes, 0u) << index->name();
    EXPECT_GT(stats.page_accesses(), 0u) << index->name();
  }
}

// Radius queries count too, on every engine.
TEST(QueryStatsTest, RadiusQueriesAreCounted) {
  const size_t n = 120;
  const Dataset data = MakeWorkload(3, n);
  for (IndexKind kind : AllIndexKinds()) {
    auto index = CreateIndex(kind);
    ASSERT_TRUE(index->Build(data, Euclidean()).ok());
    QueryStats stats;
    KnnSearchContext ctx;
    ctx.stats = &stats;
    ASSERT_TRUE(
        index->QueryRadius(data.point(0), 0.5, uint32_t{0}, ctx).ok());
    EXPECT_EQ(stats.queries, 1u) << index->name();
    EXPECT_GT(stats.distance_evals + stats.rank_prune_hits, 0u)
        << index->name();
  }
}

// The parallel materializer shards counters per worker and sums after the
// join, so the totals are identical at every thread count — and identical
// to the serial path.
TEST(QueryStatsTest, ParallelTotalsMatchSerialAtEveryThreadCount) {
  const size_t n = 300;
  const Dataset data = MakeWorkload(3, n);
  KdTreeIndex tree;
  ASSERT_TRUE(tree.Build(data, Euclidean()).ok());

  QueryStats serial;
  PipelineObserver serial_observer;
  serial_observer.query_stats = &serial;
  ASSERT_TRUE(NeighborhoodMaterializer::Materialize(
                  data, tree, 8, /*distinct_neighbors=*/false,
                  serial_observer)
                  .ok());
  EXPECT_EQ(serial.queries, n);

  for (size_t threads : {size_t{1}, size_t{2}, size_t{7}}) {
    QueryStats parallel;
    PipelineObserver observer;
    observer.query_stats = &parallel;
    ASSERT_TRUE(NeighborhoodMaterializer::MaterializeParallel(
                    data, tree, 8, threads, /*distinct_neighbors=*/false,
                    observer)
                    .ok());
    EXPECT_TRUE(parallel == serial) << "threads=" << threads;
  }
}

// The batched linear-scan path must count the same closed-form totals as
// the one-query-at-a-time path.
TEST(QueryStatsTest, LinearScanBatchMatchesClosedForm) {
  const size_t n = 200;
  const Dataset data = MakeWorkload(3, n);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  std::vector<uint32_t> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<uint32_t>(i);
  QueryStats stats;
  KnnSearchContext ctx;
  ctx.stats = &stats;
  ASSERT_TRUE(index.QueryBatch(ids, 5, ctx).ok());
  EXPECT_EQ(stats.queries, n);
  EXPECT_EQ(stats.distance_evals, n * (n - 1));
}

}  // namespace
}  // namespace lofkit
