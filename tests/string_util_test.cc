#include "common/string_util.h"

#include <gtest/gtest.h>

namespace lofkit {
namespace {

TEST(SplitTest, SplitsAndKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(ParseDoubleTest, ParsesValidNumbers) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble(" -2e3 "), -2000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("0"), 0.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("12x").ok());
  EXPECT_FALSE(ParseDouble("x").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
}

TEST(ParseU64Test, ParsesValidIntegers) {
  EXPECT_EQ(*ParseU64("0"), 0u);
  EXPECT_EQ(*ParseU64(" 123 "), 123u);
}

TEST(ParseU64Test, RejectsInvalid) {
  EXPECT_FALSE(ParseU64("").ok());
  EXPECT_FALSE(ParseU64("-1").ok());
  EXPECT_FALSE(ParseU64("12.5").ok());
  EXPECT_FALSE(ParseU64("abc").ok());
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(JsonEscape("plain ascii 123"), "plain ascii 123");
  EXPECT_EQ(JsonEscape(""), "");
}

TEST(JsonEscapeTest, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
}

// Regression: control characters used to pass through raw, producing
// invalid JSON whenever a case name or metric key contained a newline/tab.
TEST(JsonEscapeTest, EscapesControlCharacters) {
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape("a\rb"), "a\\rb");
  EXPECT_EQ(JsonEscape("a\tb"), "a\\tb");
  EXPECT_EQ(JsonEscape("a\bb"), "a\\bb");
  EXPECT_EQ(JsonEscape("a\fb"), "a\\fb");
  EXPECT_EQ(JsonEscape(std::string_view("a\0b", 3)), "a\\u0000b");
  EXPECT_EQ(JsonEscape("\x01\x1f"), "\\u0001\\u001f");
}

}  // namespace
}  // namespace lofkit
