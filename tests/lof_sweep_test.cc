#include "lof/lof_sweep.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/linear_scan_index.h"

namespace lofkit {
namespace {

class LofSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(11);
    auto ds = generators::MakePerformanceWorkload(rng, 2, 250, 3);
    ASSERT_TRUE(ds.ok());
    data_.emplace(std::move(ds).value());
    ASSERT_TRUE(index_.Build(*data_, Euclidean()).ok());
    auto m = NeighborhoodMaterializer::Materialize(*data_, index_, 20);
    ASSERT_TRUE(m.ok());
    m_.emplace(std::move(m).value());
  }

  std::optional<Dataset> data_;
  LinearScanIndex index_;
  std::optional<NeighborhoodMaterializer> m_;
};

TEST_F(LofSweepTest, MaxAggregationIsPointwiseMaximum) {
  auto sweep = LofSweep::Run(*m_, 10, 15, LofAggregation::kMax,
                             /*keep_per_min_pts=*/true);
  ASSERT_TRUE(sweep.ok());
  ASSERT_EQ(sweep->per_min_pts.size(), 6u);
  for (size_t i = 0; i < data_->size(); ++i) {
    double expected = -INFINITY;
    for (const LofScores& scores : sweep->per_min_pts) {
      expected = std::max(expected, scores.lof[i]);
    }
    EXPECT_DOUBLE_EQ(sweep->aggregated[i], expected);
  }
}

TEST_F(LofSweepTest, MinAndMeanAggregations) {
  auto min_sweep = LofSweep::Run(*m_, 10, 15, LofAggregation::kMin, true);
  auto mean_sweep = LofSweep::Run(*m_, 10, 15, LofAggregation::kMean, true);
  ASSERT_TRUE(min_sweep.ok() && mean_sweep.ok());
  for (size_t i = 0; i < data_->size(); ++i) {
    double expected_min = INFINITY;
    double expected_mean = 0.0;
    for (const LofScores& scores : min_sweep->per_min_pts) {
      expected_min = std::min(expected_min, scores.lof[i]);
      expected_mean += scores.lof[i] / 6.0;
    }
    EXPECT_DOUBLE_EQ(min_sweep->aggregated[i], expected_min);
    EXPECT_NEAR(mean_sweep->aggregated[i], expected_mean, 1e-12);
    // min <= mean <= max always.
    EXPECT_LE(min_sweep->aggregated[i], mean_sweep->aggregated[i] + 1e-12);
  }
}

TEST_F(LofSweepTest, SingleValueRangeEqualsPlainCompute) {
  auto sweep = LofSweep::Run(*m_, 12, 12);
  auto scores = LofComputer::Compute(*m_, 12);
  ASSERT_TRUE(sweep.ok() && scores.ok());
  for (size_t i = 0; i < data_->size(); ++i) {
    EXPECT_DOUBLE_EQ(sweep->aggregated[i], scores->lof[i]);
  }
}

TEST_F(LofSweepTest, PerMinPtsOmittedByDefault) {
  auto sweep = LofSweep::Run(*m_, 10, 12);
  ASSERT_TRUE(sweep.ok());
  EXPECT_TRUE(sweep->per_min_pts.empty());
}

TEST_F(LofSweepTest, RejectsBadRanges) {
  EXPECT_EQ(LofSweep::Run(*m_, 0, 5).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(LofSweep::Run(*m_, 8, 5).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(LofSweep::Run(*m_, 10, 21).status().code(),
            StatusCode::kOutOfRange);
}

TEST(LofSweepPipelineTest, RankOutliersFindsPlantedPoint) {
  Rng rng(12);
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  const double center[2] = {0, 0};
  ASSERT_TRUE(
      generators::AppendGaussianCluster(*ds, rng, center, 1.0, 400).ok());
  const double planted[2] = {7.0, -7.0};
  ASSERT_TRUE(ds->Append(planted, "planted").ok());
  auto ranked = LofSweep::RankOutliers(*ds, Euclidean(), 10, 20, 3);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 3u);
  EXPECT_EQ((*ranked)[0].index, 400u);
  EXPECT_GT((*ranked)[0].score, (*ranked)[1].score);
}

TEST(LofSweepPipelineTest, AggregationNames) {
  EXPECT_EQ(LofAggregationName(LofAggregation::kMax), "max");
  EXPECT_EQ(LofAggregationName(LofAggregation::kMin), "min");
  EXPECT_EQ(LofAggregationName(LofAggregation::kMean), "mean");
}

}  // namespace
}  // namespace lofkit
