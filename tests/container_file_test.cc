#include "common/container_file.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fail_point.h"

namespace lofkit {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/lofkit_container_" + name;
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

Status WriteTwoSectionFile(const std::string& path) {
  auto writer = ContainerWriter::Create(path, /*file_type=*/7,
                                        /*file_version=*/3);
  if (!writer.ok()) return writer.status();
  LOFKIT_RETURN_IF_ERROR(writer->AddSection("alpha", "hello world", 11));
  LOFKIT_RETURN_IF_ERROR(writer->BeginSection("beta"));
  // Streamed in two chunks to exercise the incremental section CRC.
  LOFKIT_RETURN_IF_ERROR(writer->Append("0123", 4));
  LOFKIT_RETURN_IF_ERROR(writer->Append("456789", 6));
  LOFKIT_RETURN_IF_ERROR(writer->EndSection());
  return writer->Finish();
}

class ContainerFileTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FailPoints::DisarmAll();
    ASSERT_FALSE(FailPoints::AnyArmed());
  }
};

TEST_F(ContainerFileTest, RoundTripTwoSections) {
  const std::string path = TempPath("roundtrip.lofc");
  ASSERT_TRUE(WriteTwoSectionFile(path).ok());
  auto reader = ContainerReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->file_type(), 7u);
  EXPECT_EQ(reader->file_version(), 3u);
  EXPECT_EQ(reader->section_count(), 2u);
  EXPECT_TRUE(reader->HasSection("alpha"));
  EXPECT_TRUE(reader->HasSection("beta"));
  EXPECT_FALSE(reader->HasSection("gamma"));

  auto alpha = reader->Section("alpha");
  ASSERT_TRUE(alpha.ok());
  ASSERT_EQ(alpha->size(), 11u);
  EXPECT_EQ(std::memcmp(alpha->data(), "hello world", 11), 0);

  auto beta = reader->Section("beta");
  ASSERT_TRUE(beta.ok());
  ASSERT_EQ(beta->size(), 10u);
  EXPECT_EQ(std::memcmp(beta->data(), "0123456789", 10), 0);

  EXPECT_EQ(reader->Section("gamma").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(reader->VerifyAllSections().ok());
  std::remove(path.c_str());
}

TEST_F(ContainerFileTest, SectionPayloadsAreAligned) {
  const std::string path = TempPath("aligned.lofc");
  ASSERT_TRUE(WriteTwoSectionFile(path).ok());
  auto reader = ContainerReader::Open(path);
  ASSERT_TRUE(reader.ok());
  for (const char* name : {"alpha", "beta"}) {
    auto section = reader->Section(name);
    ASSERT_TRUE(section.ok());
    EXPECT_EQ(reinterpret_cast<uintptr_t>(section->data()) %
                  container::kSectionAlignment,
              0u)
        << name;
  }
  std::remove(path.c_str());
}

TEST_F(ContainerFileTest, WriterRejectsBadSectionUsage) {
  const std::string path = TempPath("misuse.lofc");
  auto writer = ContainerWriter::Create(path, 1, 1);
  ASSERT_TRUE(writer.ok());
  // Append/EndSection need an open section.
  EXPECT_EQ(writer->Append("x", 1).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(writer->EndSection().code(), StatusCode::kFailedPrecondition);
  // Names must be non-empty, short enough, and unique.
  EXPECT_EQ(writer->BeginSection("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(
      writer->BeginSection("a-name-way-too-long-for-the-table").code(),
      StatusCode::kInvalidArgument);
  ASSERT_TRUE(writer->AddSection("dup", "a", 1).ok());
  EXPECT_EQ(writer->AddSection("dup", "b", 1).code(),
            StatusCode::kInvalidArgument);
  // Finish with an open section is refused; the writer survives.
  ASSERT_TRUE(writer->BeginSection("open").ok());
  EXPECT_EQ(writer->Finish().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(writer->EndSection().ok());
  ASSERT_TRUE(writer->Finish().ok());
  std::remove(path.c_str());
}

TEST_F(ContainerFileTest, AbandonedWriterLeavesNoFiles) {
  const std::string path = TempPath("abandoned.lofc");
  {
    auto writer = ContainerWriter::Create(path, 1, 1);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->AddSection("s", "data", 4).ok());
    // Destroyed without Finish: the tmp file must vanish and the final
    // path must never appear.
  }
  EXPECT_FALSE(std::ifstream(path).good());
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
}

TEST_F(ContainerFileTest, FailedFinishPreservesThePreviousFile) {
  const std::string path = TempPath("atomic.lofc");
  ASSERT_TRUE(WriteTwoSectionFile(path).ok());
  const std::vector<char> before = ReadAll(path);

  for (const char* point :
       {"container.write", "container.fsync", "container.rename"}) {
    SCOPED_TRACE(point);
    ScopedFailPoint armed(point, Status::IoError("injected disk failure"));
    auto writer = ContainerWriter::Create(path, 7, 3);
    Status status = writer.ok() ? writer->AddSection("other", "xyz", 3)
                                : writer.status();
    if (status.ok()) status = writer->Finish();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kIoError);
  }
  // The previous contents survived every failure mode, byte for byte, and
  // no tmp litter remains.
  EXPECT_EQ(ReadAll(path), before);
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST_F(ContainerFileTest, OpenFailsCleanlyOnMissingAndTinyFiles) {
  EXPECT_EQ(ContainerReader::Open(TempPath("nonexistent.lofc"))
                .status()
                .code(),
            StatusCode::kIoError);
  const std::string path = TempPath("tiny.lofc");
  WriteAll(path, std::vector<char>(16, 'x'));
  auto tiny = ContainerReader::Open(path);
  ASSERT_FALSE(tiny.ok());
  EXPECT_EQ(tiny.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST_F(ContainerFileTest, TruncationAtEveryByteIsDetected) {
  const std::string path = TempPath("truncate.lofc");
  ASSERT_TRUE(WriteTwoSectionFile(path).ok());
  const std::vector<char> full = ReadAll(path);
  const std::string cut_path = TempPath("truncate_cut.lofc");
  for (size_t cut = 0; cut < full.size(); ++cut) {
    WriteAll(cut_path,
             std::vector<char>(full.begin(), full.begin() + cut));
    auto reader = ContainerReader::Open(cut_path);
    ASSERT_FALSE(reader.ok()) << "cut at byte " << cut;
    EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument)
        << "cut at byte " << cut << ": " << reader.status();
  }
  std::remove(path.c_str());
  std::remove(cut_path.c_str());
}

TEST_F(ContainerFileTest, EveryFlippedBitIsDetected) {
  const std::string path = TempPath("bitflip.lofc");
  ASSERT_TRUE(WriteTwoSectionFile(path).ok());
  const std::vector<char> full = ReadAll(path);
  const std::string flip_path = TempPath("bitflip_cur.lofc");
  // A flipped bit in ANY byte must fail Open or a section verify. (The
  // only insensitive bytes are alignment padding, which no seal covers —
  // but padding is not meaningful data, so flag only real-byte escapes.)
  size_t undetected_padding = 0;
  for (size_t byte = 0; byte < full.size(); ++byte) {
    std::vector<char> corrupt = full;
    corrupt[byte] = static_cast<char>(corrupt[byte] ^ 0x10);
    WriteAll(flip_path, corrupt);
    auto reader = ContainerReader::Open(flip_path);
    Status status = reader.ok() ? reader->VerifyAllSections()
                                : reader.status();
    if (status.ok()) {
      // Must be inter-section padding: zero in the clean file.
      ASSERT_EQ(full[byte], 0) << "undetected flip in byte " << byte;
      ++undetected_padding;
      continue;
    }
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
        << "byte " << byte << ": " << status;
  }
  // Sanity: padding is a small minority of the file.
  EXPECT_LT(undetected_padding, full.size() / 2);
  std::remove(path.c_str());
  std::remove(flip_path.c_str());
}

TEST_F(ContainerFileTest, MmapAndVerifyFailPointsPropagate) {
  const std::string path = TempPath("failpoints.lofc");
  ASSERT_TRUE(WriteTwoSectionFile(path).ok());
  {
    ScopedFailPoint armed("container.mmap",
                          Status::IoError("injected@container.mmap"));
    auto reader = ContainerReader::Open(path);
    ASSERT_FALSE(reader.ok());
    EXPECT_EQ(reader.status().code(), StatusCode::kIoError);
  }
  {
    ScopedFailPoint armed("container.verify",
                          Status::IoError("injected@container.verify"));
    auto reader = ContainerReader::Open(path);
    ASSERT_TRUE(reader.ok());
    EXPECT_EQ(reader->Section("alpha").status().code(),
              StatusCode::kIoError);
  }
  // Disarmed, the same file reads fine.
  auto reader = ContainerReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->Section("alpha").ok());
  std::remove(path.c_str());
}

TEST_F(ContainerFileTest, EmptySectionsRoundTrip) {
  const std::string path = TempPath("empty.lofc");
  auto writer = ContainerWriter::Create(path, 1, 1);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->AddSection("nothing", nullptr, 0).ok());
  ASSERT_TRUE(writer->Finish().ok());
  auto reader = ContainerReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  auto section = reader->Section("nothing");
  ASSERT_TRUE(section.ok());
  EXPECT_EQ(section->size(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lofkit
