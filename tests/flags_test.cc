#include "common/flags.h"

#include <gtest/gtest.h>

namespace lofkit {
namespace {

FlagParser MakeParser() {
  FlagParser flags;
  flags.AddString("name", "default", "a string");
  flags.AddU64("count", 7, "a count");
  flags.AddDouble("ratio", 1.5, "a ratio");
  flags.AddBool("verbose", false, "a switch");
  return flags;
}

Status ParseArgs(FlagParser& flags, std::vector<const char*> args) {
  return flags.Parse(static_cast<int>(args.size()), args.data());
}

TEST(FlagsTest, DefaultsApplyWithoutArguments) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(flags, {}).ok());
  EXPECT_EQ(flags.GetString("name"), "default");
  EXPECT_EQ(flags.GetU64("count"), 7u);
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio"), 1.5);
  EXPECT_FALSE(flags.GetBool("verbose"));
  EXPECT_FALSE(flags.IsSet("count"));
}

TEST(FlagsTest, EqualsSyntax) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(
      ParseArgs(flags, {"--name=abc", "--count=42", "--ratio=0.25"}).ok());
  EXPECT_EQ(flags.GetString("name"), "abc");
  EXPECT_EQ(flags.GetU64("count"), 42u);
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio"), 0.25);
  EXPECT_TRUE(flags.IsSet("count"));
}

TEST(FlagsTest, SpaceSyntax) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(flags, {"--name", "xyz", "--count", "3"}).ok());
  EXPECT_EQ(flags.GetString("name"), "xyz");
  EXPECT_EQ(flags.GetU64("count"), 3u);
}

TEST(FlagsTest, BooleanForms) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(ParseArgs(flags, {"--verbose"}).ok());
  EXPECT_TRUE(flags.GetBool("verbose"));

  FlagParser negated = MakeParser();
  ASSERT_TRUE(ParseArgs(negated, {"--verbose", "--no-verbose"}).ok());
  EXPECT_FALSE(negated.GetBool("verbose"));

  FlagParser explicit_value = MakeParser();
  ASSERT_TRUE(ParseArgs(explicit_value, {"--verbose=true"}).ok());
  EXPECT_TRUE(explicit_value.GetBool("verbose"));
}

TEST(FlagsTest, PositionalArgumentsAndDoubleDash) {
  FlagParser flags = MakeParser();
  ASSERT_TRUE(
      ParseArgs(flags, {"file1", "--count", "9", "--", "--not-a-flag"}).ok());
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"file1", "--not-a-flag"}));
  EXPECT_EQ(flags.GetU64("count"), 9u);
}

TEST(FlagsTest, ErrorsOnUnknownFlag) {
  FlagParser flags = MakeParser();
  EXPECT_EQ(ParseArgs(flags, {"--bogus=1"}).code(),
            StatusCode::kInvalidArgument);
}

TEST(FlagsTest, ErrorsOnTypeMismatch) {
  FlagParser bad_int = MakeParser();
  EXPECT_FALSE(ParseArgs(bad_int, {"--count=-3"}).ok());
  FlagParser bad_double = MakeParser();
  EXPECT_FALSE(ParseArgs(bad_double, {"--ratio=abc"}).ok());
  FlagParser bad_bool = MakeParser();
  EXPECT_FALSE(ParseArgs(bad_bool, {"--verbose=maybe"}).ok());
}

TEST(FlagsTest, ErrorsOnMissingValue) {
  FlagParser flags = MakeParser();
  EXPECT_FALSE(ParseArgs(flags, {"--count"}).ok());
}

TEST(FlagsTest, HelpListsFlagsWithDefaults) {
  FlagParser flags = MakeParser();
  const std::string help = flags.Help();
  EXPECT_NE(help.find("--count"), std::string::npos);
  EXPECT_NE(help.find("default: 7"), std::string::npos);
  EXPECT_NE(help.find("a ratio"), std::string::npos);
}

}  // namespace
}  // namespace lofkit
