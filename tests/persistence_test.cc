// Crash-safety and spill coverage for the persistence subsystem: the
// corruption matrix over saved materializations (truncations and bit
// flips must surface clean typed Statuses, never crashes), bit-identity
// of every M route (in-RAM, reloaded, mmap'ed, spill-built) and of the
// LOF scores computed over them at several thread counts, the
// spill-and-keep-going rung of the memory-budget ladder, and the VA-file
// signature-table round trip.

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/fail_point.h"
#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/linear_scan_index.h"
#include "index/neighborhood_materializer.h"
#include "index/va_file_index.h"
#include "lof/lof_computer.h"
#include "lof/lof_sweep.h"
#include "lof/spill.h"

namespace lofkit {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/lofkit_persistence_" + name;
}

Dataset MakeClusteredData(size_t n, uint64_t seed = 20260809) {
  Rng rng(seed);
  auto ds = Dataset::Create(3);
  EXPECT_TRUE(ds.ok());
  Dataset data = std::move(ds).value();
  const std::vector<double> center = {0.0, 0.0, 0.0};
  EXPECT_TRUE(
      generators::AppendGaussianCluster(data, rng, center, 1.0, n - 2).ok());
  EXPECT_TRUE(data.Append(std::vector<double>{9.0, 9.0, 9.0}).ok());
  EXPECT_TRUE(data.Append(std::vector<double>{-8.0, 7.0, -9.0}).ok());
  return data;
}

std::vector<char> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// Bitwise comparison: the acceptance bar is bit-identical doubles, not
// approximate equality.
void ExpectBitIdentical(const std::vector<double>& a,
                        const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
        << what;
  }
}

void ExpectSameMaterialization(const NeighborhoodMaterializer& a,
                               const NeighborhoodMaterializer& b,
                               const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  ASSERT_EQ(a.k_max(), b.k_max()) << what;
  ASSERT_EQ(a.total_neighbor_count(), b.total_neighbor_count()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    auto la = a.neighbors(i);
    auto lb = b.neighbors(i);
    ASSERT_EQ(la.size(), lb.size()) << what << " point " << i;
    for (size_t j = 0; j < la.size(); ++j) {
      ASSERT_EQ(la[j].index, lb[j].index) << what << " point " << i;
      const double da = la[j].distance;
      const double db = lb[j].distance;
      ASSERT_EQ(std::memcmp(&da, &db, sizeof(double)), 0)
          << what << " point " << i << " slot " << j;
    }
  }
}

class PersistenceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FailPoints::DisarmAll();
    ASSERT_FALSE(FailPoints::AnyArmed());
  }
};

// ---------------------------------------------------------------------------
// Every route to M serves the same bits.
// ---------------------------------------------------------------------------

TEST_F(PersistenceTest, AllRoutesToMAreBitIdentical) {
  const Dataset data = MakeClusteredData(200);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto in_ram = NeighborhoodMaterializer::Materialize(data, index, 10);
  ASSERT_TRUE(in_ram.ok());

  const std::string saved_path = TempPath("routes_saved.lofc");
  ASSERT_TRUE(in_ram->SaveToFile(saved_path).ok());
  auto reloaded = NeighborhoodMaterializer::LoadFromFile(saved_path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_FALSE(reloaded->file_backed());
  ExpectSameMaterialization(*in_ram, *reloaded, "reloaded");

  auto mapped = NeighborhoodMaterializer::MapFromFile(saved_path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_TRUE(mapped->file_backed());
  ExpectSameMaterialization(*in_ram, *mapped, "mapped");

  // Spill-built files (streamed windows, any thread count) hold the same
  // bits as the in-RAM build.
  for (size_t threads : {size_t{1}, size_t{2}, size_t{7}}) {
    SCOPED_TRACE(threads);
    const std::string spill_path = TempPath("routes_spill.lofc");
    ASSERT_TRUE(NeighborhoodMaterializer::MaterializeToFile(
                    data, index, 10, threads, /*distinct_neighbors=*/false,
                    spill_path)
                    .ok());
    auto spilled = NeighborhoodMaterializer::MapFromFile(spill_path);
    ASSERT_TRUE(spilled.ok()) << spilled.status();
    ExpectSameMaterialization(*in_ram, *spilled, "spill-built");
    std::remove(spill_path.c_str());
  }
  std::remove(saved_path.c_str());
}

TEST_F(PersistenceTest, MappedMServesBitIdenticalLofScores) {
  const Dataset data = MakeClusteredData(180);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto in_ram = NeighborhoodMaterializer::Materialize(data, index, 12);
  ASSERT_TRUE(in_ram.ok());
  const std::string path = TempPath("scores.lofc");
  ASSERT_TRUE(in_ram->SaveToFile(path).ok());
  auto mapped = NeighborhoodMaterializer::MapFromFile(path);
  ASSERT_TRUE(mapped.ok());

  for (size_t threads : {size_t{1}, size_t{2}, size_t{7}}) {
    SCOPED_TRACE(threads);
    LofComputeOptions options;
    options.threads = threads;
    auto ram_scores = LofComputer::Compute(*in_ram, 8, options);
    auto map_scores = LofComputer::Compute(*mapped, 8, options);
    ASSERT_TRUE(ram_scores.ok() && map_scores.ok());
    ExpectBitIdentical(ram_scores->lof, map_scores->lof, "lof");
    ExpectBitIdentical(ram_scores->lrd, map_scores->lrd, "lrd");
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// The spill rung of the memory-budget ladder.
// ---------------------------------------------------------------------------

TEST_F(PersistenceTest, SpillRungMatchesInRamScoresAtEveryThreadCount) {
  const Dataset data = MakeClusteredData(220);
  LofComputeOptions unbudgeted;
  auto want = LofComputer::ComputeFromScratch(data, Euclidean(), 9,
                                              IndexKind::kLinearScan,
                                              /*distinct=*/false, unbudgeted);
  ASSERT_TRUE(want.ok());

  for (size_t threads : {size_t{1}, size_t{2}, size_t{7}}) {
    SCOPED_TRACE(threads);
    LofComputeOptions options;
    options.threads = threads;
    options.memory_budget_bytes = 1;  // everything overflows
    options.spill_directory = ::testing::TempDir();
    auto got = LofComputer::ComputeFromScratch(data, Euclidean(), 9,
                                               IndexKind::kLinearScan,
                                               /*distinct=*/false, options);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_TRUE(got->spilled_to_disk);
    EXPECT_FALSE(got->degraded_to_requery);
    ExpectBitIdentical(want->lof, got->lof, "lof");
    ExpectBitIdentical(want->lrd, got->lrd, "lrd");
  }
}

TEST_F(PersistenceTest, SpillRungServesDistinctMode) {
  // Distinct-neighbors mode has no re-query fallback; the spill rung is
  // the only way a budgeted distinct run can proceed.
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  Dataset data = std::move(ds).value();
  const double p[2] = {1.0, 1.0};
  ASSERT_TRUE(generators::AppendDuplicates(data, p, 6).ok());
  Rng rng(11);
  const double lo[2] = {0, 0};
  const double hi[2] = {10, 10};
  ASSERT_TRUE(generators::AppendUniformBox(data, rng, lo, hi, 80).ok());

  LofComputeOptions unbudgeted;
  auto want = LofComputer::ComputeFromScratch(data, Euclidean(), 5,
                                              IndexKind::kLinearScan,
                                              /*distinct=*/true, unbudgeted);
  ASSERT_TRUE(want.ok());

  LofComputeOptions options;
  options.memory_budget_bytes = 1;
  auto refused = LofComputer::ComputeFromScratch(data, Euclidean(), 5,
                                                 IndexKind::kLinearScan,
                                                 /*distinct=*/true, options);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);

  options.spill_directory = ::testing::TempDir();
  auto got = LofComputer::ComputeFromScratch(data, Euclidean(), 5,
                                             IndexKind::kLinearScan,
                                             /*distinct=*/true, options);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_TRUE(got->spilled_to_disk);
  ExpectBitIdentical(want->lof, got->lof, "lof");
}

TEST_F(PersistenceTest, FailedSpillFallsBackToRequeryWithSameBits) {
  const Dataset data = MakeClusteredData(150);
  LofComputeOptions unbudgeted;
  auto want = LofComputer::ComputeFromScratch(data, Euclidean(), 6,
                                              IndexKind::kLinearScan,
                                              /*distinct=*/false, unbudgeted);
  ASSERT_TRUE(want.ok());

  LofComputeOptions options;
  options.memory_budget_bytes = 1;
  options.spill_directory = ::testing::TempDir();
  {
    ScopedFailPoint armed("materialization.spill",
                          Status::IoError("injected disk full"));
    auto got = LofComputer::ComputeFromScratch(data, Euclidean(), 6,
                                               IndexKind::kLinearScan,
                                               /*distinct=*/false, options);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_FALSE(got->spilled_to_disk);
    EXPECT_TRUE(got->degraded_to_requery);
    ExpectBitIdentical(want->lof, got->lof, "lof");
  }
  // Cancellation during the spill is a real stop request, not a disk
  // problem: it must propagate, not silently restart on the requery rung.
  {
    ScopedFailPoint armed("materialization.spill", Status::Cancelled("stop"));
    auto got = LofComputer::ComputeFromScratch(data, Euclidean(), 6,
                                               IndexKind::kLinearScan,
                                               /*distinct=*/false, options);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kCancelled);
  }
}

TEST_F(PersistenceTest, RankOutliersSpillRungKeepsPruneAndRanking) {
  const Dataset data = MakeClusteredData(240);
  auto want = LofSweep::RankOutliers(data, Euclidean(), 4, 9, /*top_n=*/10);
  ASSERT_TRUE(want.ok());

  for (const bool prune : {false, true}) {
    SCOPED_TRACE(prune ? "pruned" : "unpruned");
    LofPipelineOptions pipeline;
    pipeline.memory_budget_bytes = 1;
    pipeline.spill_directory = ::testing::TempDir();
    pipeline.prune = prune;
    bool spilled = false;
    bool degraded = false;
    pipeline.spilled_to_disk = &spilled;
    pipeline.degraded_to_requery = &degraded;
    LofSweepResult::PruneSummary summary;
    pipeline.prune_summary = &summary;
    auto got = LofSweep::RankOutliers(data, Euclidean(), 4, 9, /*top_n=*/10,
                                      IndexKind::kLinearScan,
                                      LofAggregation::kMax, /*threads=*/2,
                                      pipeline);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_TRUE(spilled);
    EXPECT_FALSE(degraded);
    // The §5 prune stage ran on the spill rung — the whole point of
    // keeping a real (file-backed) M instead of falling to re-query.
    EXPECT_EQ(summary.applied, prune);
    ASSERT_EQ(got->size(), want->size());
    for (size_t i = 0; i < want->size(); ++i) {
      EXPECT_EQ((*got)[i].index, (*want)[i].index) << i;
      const double a = (*got)[i].score;
      const double b = (*want)[i].score;
      EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0) << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Corruption matrix: a hostile file can refuse to load, never crash.
// ---------------------------------------------------------------------------

TEST_F(PersistenceTest, CorruptionMatrixTruncationsAndFlips) {
  const Dataset data = MakeClusteredData(120);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(data, index, 8);
  ASSERT_TRUE(m.ok());
  const std::string path = TempPath("matrix.lofc");
  ASSERT_TRUE(m->SaveToFile(path).ok());
  const std::vector<char> full = ReadAll(path);
  const std::string hostile = TempPath("matrix_hostile.lofc");

  // Truncation at every byte: both the copying loader and the mmap loader
  // must return a clean InvalidArgument (magic sniffing of a <4-byte file
  // is also InvalidArgument), never crash or OOM.
  for (size_t cut = 0; cut < full.size(); cut += 1) {
    WriteAll(hostile, std::vector<char>(full.begin(), full.begin() + cut));
    auto loaded = NeighborhoodMaterializer::LoadFromFile(hostile);
    ASSERT_FALSE(loaded.ok()) << "cut " << cut;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument)
        << "cut " << cut << ": " << loaded.status();
    auto mapped = NeighborhoodMaterializer::MapFromFile(hostile);
    ASSERT_FALSE(mapped.ok()) << "cut " << cut;
    EXPECT_EQ(mapped.status().code(), StatusCode::kInvalidArgument)
        << "cut " << cut;
  }

  // One flipped bit in every byte: caught by a seal (InvalidArgument) or,
  // for the uncovered alignment padding, harmless — the load must then
  // succeed with the original bits.
  for (size_t byte = 0; byte < full.size(); ++byte) {
    std::vector<char> corrupt = full;
    corrupt[byte] = static_cast<char>(corrupt[byte] ^ 0x04);
    WriteAll(hostile, corrupt);
    auto loaded = NeighborhoodMaterializer::LoadFromFile(hostile);
    if (loaded.ok()) {
      ASSERT_EQ(full[byte], 0) << "undetected flip in byte " << byte;
      ExpectSameMaterialization(*m, *loaded, "padding flip");
      continue;
    }
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument)
        << "byte " << byte << ": " << loaded.status();
  }

  // The clean file still loads after the whole gauntlet.
  auto reloaded = NeighborhoodMaterializer::LoadFromFile(path);
  ASSERT_TRUE(reloaded.ok());
  ExpectSameMaterialization(*m, *reloaded, "clean reload");
  std::remove(path.c_str());
  std::remove(hostile.c_str());
}

// ---------------------------------------------------------------------------
// VA-file signature table round trip.
// ---------------------------------------------------------------------------

TEST_F(PersistenceTest, VaFileSignatureTableRoundTrips) {
  const Dataset data = MakeClusteredData(160);
  VaFileIndex built(/*bits_per_dimension=*/5);
  ASSERT_TRUE(built.Build(data, Euclidean()).ok());
  const std::string path = TempPath("va.lofc");

  // Saving before Build is refused.
  VaFileIndex unbuilt;
  EXPECT_EQ(unbuilt.SaveToFile(path).code(),
            StatusCode::kFailedPrecondition);

  ASSERT_TRUE(built.SaveToFile(path).ok());
  VaFileIndex restored;
  ASSERT_TRUE(restored.LoadFromFile(path, data, Euclidean()).ok());
  EXPECT_EQ(restored.intervals(), built.intervals());

  // The restored signature table answers queries identically.
  KnnSearchContext ctx_a, ctx_b;
  for (uint32_t q : {0u, 17u, 63u, 159u}) {
    ASSERT_TRUE(built.Query(data.point(q), 7, q, ctx_a).ok());
    ASSERT_TRUE(restored.Query(data.point(q), 7, q, ctx_b).ok());
    auto ra = ctx_a.results();
    auto rb = ctx_b.results();
    ASSERT_EQ(ra.size(), rb.size()) << q;
    for (size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].index, rb[i].index) << q;
      const double da = ra[i].distance;
      const double db = rb[i].distance;
      EXPECT_EQ(std::memcmp(&da, &db, sizeof(double)), 0) << q;
    }
  }

  // A different dataset is rejected; a corrupt file is rejected cleanly.
  const Dataset other = MakeClusteredData(40, /*seed=*/7);
  VaFileIndex mismatched;
  EXPECT_EQ(mismatched.LoadFromFile(path, other, Euclidean()).code(),
            StatusCode::kInvalidArgument);
  std::vector<char> bytes = ReadAll(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x20);
  const std::string bad = TempPath("va_bad.lofc");
  WriteAll(bad, bytes);
  VaFileIndex corrupt;
  Status status = corrupt.LoadFromFile(bad, data, Euclidean());
  EXPECT_FALSE(status.ok());
  std::remove(path.c_str());
  std::remove(bad.c_str());
}

// ---------------------------------------------------------------------------
// Spill helper hygiene.
// ---------------------------------------------------------------------------

TEST_F(PersistenceTest, SpillMaterializeLeavesNoFilesBehind) {
  const Dataset data = MakeClusteredData(100);
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(data, Euclidean()).ok());
  // A private spill directory so the file census is exact.
  const std::string dir = TempPath("spill_dir");
  std::remove(dir.c_str());
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);

  auto spilled = internal_lof::SpillMaterialize(data, index, 6, /*threads=*/2,
                                                /*distinct_neighbors=*/false,
                                                dir);
  ASSERT_TRUE(spilled.ok()) << spilled.status();
  EXPECT_TRUE(spilled->file_backed());
  EXPECT_EQ(spilled->size(), data.size());
  // The backing file is unlinked immediately after mmap (POSIX keeps the
  // mapping alive), so the directory is already empty while the
  // materializer is still serving neighborhoods.
  auto in_ram = NeighborhoodMaterializer::Materialize(data, index, 6);
  ASSERT_TRUE(in_ram.ok());
  ExpectSameMaterialization(*in_ram, *spilled, "post-unlink serving");
  EXPECT_EQ(::rmdir(dir.c_str()), 0)
      << "spill directory not empty: " << std::strerror(errno);
}

}  // namespace
}  // namespace lofkit
