// The LocalScorer registry and the scorers built on the DensitySubstrate:
// LOF (must match LofComputer bit for bit), LDOF, the KDE density scorer,
// and the kNN-distance / DB baselines — plus the generic ScorerSweep.

#include <cmath>
#include <optional>

#include <gtest/gtest.h>

#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/linear_scan_index.h"
#include "lof/local_scorer.h"
#include "lof/lof_computer.h"
#include "lof/scorer_sweep.h"

namespace lofkit {
namespace {

// A dense cluster, a sparse cluster, and one planted local outlier sitting
// just off the dense cluster — the paper's local-outlier shape, which
// every density-comparing scorer should rank first.
Dataset MakeLocalOutlierDataset() {
  Rng rng(41);
  auto ds = Dataset::Create(2);
  EXPECT_TRUE(ds.ok());
  const double dense[2] = {0.0, 0.0};
  EXPECT_TRUE(
      generators::AppendGaussianCluster(*ds, rng, dense, 0.15, 120).ok());
  const double sparse[2] = {8.0, 8.0};
  EXPECT_TRUE(
      generators::AppendGaussianCluster(*ds, rng, sparse, 1.5, 80).ok());
  const double planted[2] = {1.2, 1.2};
  EXPECT_TRUE(generators::AppendPoint(*ds, planted, "planted").ok());
  return std::move(ds).value();
}

constexpr uint32_t kPlanted = 200;

class LocalScorerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_.emplace(MakeLocalOutlierDataset());
    ASSERT_TRUE(index_.Build(*data_, Euclidean()).ok());
    auto m = NeighborhoodMaterializer::Materialize(*data_, index_, 20);
    ASSERT_TRUE(m.ok());
    m_.emplace(std::move(m).value());
    auto substrate =
        DensitySubstrate::OverMaterialization(*m_, &*data_, &Euclidean());
    ASSERT_TRUE(substrate.ok());
    substrate_.emplace(std::move(substrate).value());
  }

  DensitySubstrate RequerySubstrate() {
    auto substrate =
        DensitySubstrate::OverIndex(*data_, index_, &Euclidean());
    EXPECT_TRUE(substrate.ok());
    return std::move(substrate).value();
  }

  std::optional<Dataset> data_;
  LinearScanIndex index_;
  std::optional<NeighborhoodMaterializer> m_;
  std::optional<DensitySubstrate> substrate_;
};

TEST(ScorerRegistryTest, NamesRoundTripThroughTheFactory) {
  for (ScorerKind kind : AllScorerKinds()) {
    std::unique_ptr<LocalScorer> scorer = CreateScorer(kind);
    ASSERT_NE(scorer, nullptr);
    EXPECT_EQ(scorer->kind(), kind);
    EXPECT_EQ(scorer->name(), ScorerKindName(kind));
    auto by_name = CreateScorerByName(ScorerKindName(kind));
    ASSERT_TRUE(by_name.ok()) << ScorerKindName(kind);
    EXPECT_EQ((*by_name)->kind(), kind);
  }
}

TEST(ScorerRegistryTest, UnknownNameListsEveryRegisteredScorer) {
  auto result = CreateScorerByName("zscore");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  const std::string message = result.status().ToString();
  EXPECT_NE(message.find("zscore"), std::string::npos);
  for (ScorerKind kind : AllScorerKinds()) {
    EXPECT_NE(message.find(std::string(ScorerKindName(kind))),
              std::string::npos)
        << "missing " << ScorerKindName(kind) << " in: " << message;
  }
}

TEST_F(LocalScorerTest, LofScorerMatchesLofComputerBitForBit) {
  std::unique_ptr<LocalScorer> scorer = CreateScorer(ScorerKind::kLof);
  auto scores = scorer->Score(*substrate_, 12);
  auto reference = LofComputer::Compute(*m_, 12);
  ASSERT_TRUE(scores.ok());
  ASSERT_TRUE(reference.ok());
  for (size_t i = 0; i < data_->size(); ++i) {
    EXPECT_EQ(scores->score[i], reference->lof[i]);
    EXPECT_EQ(scores->density[i], reference->lrd[i]);
  }
  EXPECT_EQ(scores->has_infinite_density, reference->has_infinite_lrd);
  ASSERT_EQ(scores->phases.size(), 3u);
  EXPECT_EQ(scores->phases[0].name, "k_distance");
  EXPECT_EQ(scores->phases[1].name, "lrd");
  EXPECT_EQ(scores->phases[2].name, "lof");
}

TEST_F(LocalScorerTest, KnnDistanceScorerIsTheKDistance) {
  std::unique_ptr<LocalScorer> scorer =
      CreateScorer(ScorerKind::kKnnDistance);
  auto scores = scorer->Score(*substrate_, 10);
  ASSERT_TRUE(scores.ok());
  for (size_t i = 0; i < data_->size(); ++i) {
    auto view = m_->View(i, 10);
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(scores->score[i], view->k_distance);
    EXPECT_EQ(scores->density[i], 1.0 / view->k_distance);
  }
  EXPECT_DOUBLE_EQ(scores->PhaseSeconds("k_distance"),
                   scores->phases[0].seconds);
  EXPECT_EQ(scores->PhaseSeconds("no_such_phase"), 0.0);
}

TEST_F(LocalScorerTest, DensityScorersRankThePlantedLocalOutlierFirst) {
  // The planted point is globally unremarkable (closer to the dense
  // cluster than the sparse cluster's own members are to each other) but
  // locally outlying — the density-comparing scorers must rank it first.
  for (ScorerKind kind :
       {ScorerKind::kLof, ScorerKind::kLdof, ScorerKind::kKde}) {
    std::unique_ptr<LocalScorer> scorer = CreateScorer(kind);
    auto scores = scorer->Score(*substrate_, 15);
    ASSERT_TRUE(scores.ok()) << ScorerKindName(kind);
    auto ranked = RankDescending(scores->score, 1);
    ASSERT_EQ(ranked.size(), 1u);
    EXPECT_EQ(ranked[0].index, kPlanted) << ScorerKindName(kind);
  }
}

TEST_F(LocalScorerTest, RequeryRouteBitIdenticalPerScorer) {
  const DensitySubstrate requery = RequerySubstrate();
  for (ScorerKind kind :
       {ScorerKind::kLof, ScorerKind::kLdof, ScorerKind::kKde,
        ScorerKind::kKnnDistance}) {
    std::unique_ptr<LocalScorer> scorer = CreateScorer(kind);
    for (size_t threads : {size_t{1}, size_t{7}}) {
      LocalScorerOptions options;
      options.threads = threads;
      auto materialized = scorer->Score(*substrate_, 11, options);
      auto requeried = scorer->Score(requery, 11, options);
      ASSERT_TRUE(materialized.ok()) << ScorerKindName(kind);
      ASSERT_TRUE(requeried.ok()) << ScorerKindName(kind);
      for (size_t i = 0; i < data_->size(); ++i) {
        EXPECT_EQ(materialized->score[i], requeried->score[i])
            << ScorerKindName(kind) << " threads=" << threads
            << " i=" << i;
        EXPECT_EQ(materialized->density[i], requeried->density[i]);
      }
    }
  }
}

TEST_F(LocalScorerTest, LdofDuplicatePileConventions) {
  // 12 exact duplicates: for a pile member both the mean neighbor
  // distance and the mean pairwise neighbor distance are 0, so LDOF
  // scores it 1 (densest possible, mirroring LOF's inf/inf convention)
  // with infinite density.
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  const double pile[2] = {1.0, 1.0};
  ASSERT_TRUE(generators::AppendDuplicates(*ds, pile, 12).ok());
  const double lone[2] = {5.0, 5.0};
  ASSERT_TRUE(generators::AppendPoint(*ds, lone).ok());
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(*ds, Euclidean()).ok());
  auto substrate = DensitySubstrate::OverIndex(*ds, index, &Euclidean());
  ASSERT_TRUE(substrate.ok());
  std::unique_ptr<LocalScorer> scorer = CreateScorer(ScorerKind::kLdof);
  auto scores = scorer->Score(*substrate, 5);
  ASSERT_TRUE(scores.ok());
  EXPECT_TRUE(scores->has_infinite_density);
  for (size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(scores->score[i], 1.0) << "pile member " << i;
    EXPECT_TRUE(std::isinf(scores->density[i]));
  }
  // The lone point's neighbors are all duplicates of each other: positive
  // mean distance over zero neighborhood spread = infinite LDOF.
  EXPECT_TRUE(std::isinf(scores->score[12]));
  // Nothing in the output is NaN.
  for (double score : scores->score) EXPECT_FALSE(std::isnan(score));
}

TEST_F(LocalScorerTest, LdofNeedsCoordinates) {
  auto bare = DensitySubstrate::OverMaterialization(*m_);
  ASSERT_TRUE(bare.ok());
  std::unique_ptr<LocalScorer> scorer = CreateScorer(ScorerKind::kLdof);
  EXPECT_TRUE(scorer->requires_coordinates());
  auto scores = scorer->Score(*bare, 10);
  ASSERT_FALSE(scores.ok());
  EXPECT_EQ(scores.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(LocalScorerTest, KdeDuplicatePileConventions) {
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  const double pile[2] = {1.0, 1.0};
  ASSERT_TRUE(generators::AppendDuplicates(*ds, pile, 12).ok());
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(*ds, Euclidean()).ok());
  auto substrate = DensitySubstrate::OverIndex(*ds, index, &Euclidean());
  ASSERT_TRUE(substrate.ok());
  std::unique_ptr<LocalScorer> scorer = CreateScorer(ScorerKind::kKde);
  auto scores = scorer->Score(*substrate, 5);
  ASSERT_TRUE(scores.ok());
  EXPECT_TRUE(scores->has_infinite_density);
  for (size_t i = 0; i < 12; ++i) {
    // inf/inf := 1: a pile member is in the densest possible region.
    EXPECT_EQ(scores->score[i], 1.0);
    EXPECT_TRUE(std::isinf(scores->density[i]));
    EXPECT_FALSE(std::isnan(scores->score[i]));
  }
}

TEST_F(LocalScorerTest, KdeRejectsNonPositiveBandwidthScale) {
  std::unique_ptr<LocalScorer> scorer = CreateScorer(ScorerKind::kKde);
  LocalScorerOptions options;
  options.kde_bandwidth_scale = 0.0;
  EXPECT_EQ(scorer->Score(*substrate_, 10, options).status().code(),
            StatusCode::kInvalidArgument);
  options.kde_bandwidth_scale = -1.0;
  EXPECT_EQ(scorer->Score(*substrate_, 10, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(LocalScorerTest, DbOutlierScorerIsBinaryAndAutoDerivesRadius) {
  std::unique_ptr<LocalScorer> scorer = CreateScorer(ScorerKind::kDbOutlier);
  EXPECT_TRUE(scorer->requires_coordinates());
  LocalScorerOptions options;
  options.db_pct = 97.0;
  auto scores = scorer->Score(*substrate_, 10, options);
  ASSERT_TRUE(scores.ok());
  size_t outliers = 0;
  for (size_t i = 0; i < data_->size(); ++i) {
    EXPECT_TRUE(scores->score[i] == 0.0 || scores->score[i] == 1.0);
    outliers += scores->score[i] == 1.0;
  }
  // The auto-derived dmin (2x median MinPts-distance) is calibrated by the
  // dense cluster, so the global-radius baseline flags the planted point
  // and the whole sparse cluster -- the bimodal-density blind spot that
  // motivates LOF -- but never the dense majority.
  EXPECT_EQ(scores->score[kPlanted], 1.0);
  EXPECT_GT(outliers, 0u);
  EXPECT_LT(outliers, data_->size() / 2);
  // Negative radii are rejected.
  options.db_dmin = -0.5;
  EXPECT_EQ(scorer->Score(*substrate_, 10, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(LocalScorerTest, CancellationPropagates) {
  StopSource source;
  source.RequestStop();
  LocalScorerOptions options;
  options.stop = source.token();
  for (ScorerKind kind : AllScorerKinds()) {
    std::unique_ptr<LocalScorer> scorer = CreateScorer(kind);
    auto scores = scorer->Score(*substrate_, 10, options);
    EXPECT_FALSE(scores.ok()) << ScorerKindName(kind);
  }
}

TEST_F(LocalScorerTest, ScorerSweepAggregatesLikeTheLofSweep) {
  std::unique_ptr<LocalScorer> scorer = CreateScorer(ScorerKind::kKde);
  auto sweep = ScorerSweep::Run(*substrate_, *scorer, 8, 14,
                                LofAggregation::kMax,
                                /*keep_per_min_pts=*/true);
  ASSERT_TRUE(sweep.ok());
  ASSERT_EQ(sweep->per_min_pts.size(), 7u);
  for (size_t i = 0; i < data_->size(); ++i) {
    double expected = -INFINITY;
    for (const LocalScores& scores : sweep->per_min_pts) {
      expected = std::max(expected, scores.score[i]);
    }
    EXPECT_EQ(sweep->aggregated[i], expected);
  }
  // Multi-step sweeps shard over threads with bit-identical aggregates.
  for (size_t threads : {size_t{2}, size_t{7}}) {
    LocalScorerOptions options;
    options.threads = threads;
    auto parallel = ScorerSweep::Run(*substrate_, *scorer, 8, 14,
                                     LofAggregation::kMax,
                                     /*keep_per_min_pts=*/false, options);
    ASSERT_TRUE(parallel.ok());
    for (size_t i = 0; i < data_->size(); ++i) {
      EXPECT_EQ(parallel->aggregated[i], sweep->aggregated[i]);
    }
  }
  // Phases merge by name over the steps.
  EXPECT_GT(sweep->phases.size(), 0u);
  EXPECT_GE(sweep->PhaseSeconds("kde_density"), 0.0);
}

TEST_F(LocalScorerTest, ScorerSweepValidatesTheRange) {
  std::unique_ptr<LocalScorer> scorer = CreateScorer(ScorerKind::kLof);
  EXPECT_EQ(ScorerSweep::Run(*substrate_, *scorer, 0, 5).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ScorerSweep::Run(*substrate_, *scorer, 9, 5).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ScorerSweep::Run(*substrate_, *scorer, 5, 21).status().code(),
            StatusCode::kOutOfRange);
  const DensitySubstrate requery = RequerySubstrate();
  EXPECT_EQ(ScorerSweep::Run(requery, *scorer, 5, data_->size())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(LocalScorerTest, RankOutliersWorksForEveryScorerWithBudgets) {
  for (ScorerKind kind : AllScorerKinds()) {
    std::unique_ptr<LocalScorer> scorer = CreateScorer(kind);
    ScorerPipelineOptions pipeline;
    bool degraded = false;
    pipeline.degraded_to_requery = &degraded;
    auto full = ScorerSweep::RankOutliers(*data_, Euclidean(), *scorer, 8,
                                          12, 5, IndexKind::kLinearScan,
                                          LofAggregation::kMax, {},
                                          pipeline);
    ASSERT_TRUE(full.ok()) << ScorerKindName(kind);
    EXPECT_FALSE(degraded);
    EXPECT_EQ(full->size(), 5u);
    pipeline.memory_budget_bytes = 1;
    auto tight = ScorerSweep::RankOutliers(*data_, Euclidean(), *scorer, 8,
                                           12, 5, IndexKind::kLinearScan,
                                           LofAggregation::kMax, {},
                                           pipeline);
    ASSERT_TRUE(tight.ok()) << ScorerKindName(kind);
    EXPECT_TRUE(degraded);
    for (size_t i = 0; i < full->size(); ++i) {
      EXPECT_EQ((*tight)[i].index, (*full)[i].index) << ScorerKindName(kind);
      EXPECT_EQ((*tight)[i].score, (*full)[i].score) << ScorerKindName(kind);
    }
  }
}

}  // namespace
}  // namespace lofkit
