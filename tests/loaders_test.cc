#include "dataset/loaders.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace lofkit {
namespace {

CsvTable MakeTable() {
  CsvTable table;
  table.header = {"x", "y", "cls"};
  table.rows = {{1.0, 2.0, 0.0}, {3.0, 4.0, 1.0}, {5.0, 6.0, 1.0}};
  return table;
}

TEST(LoadersTest, AllColumnsByDefault) {
  auto ds = DatasetFromCsvTable(MakeTable());
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->dimension(), 3u);
  EXPECT_EQ(ds->size(), 3u);
  EXPECT_DOUBLE_EQ(ds->point(1)[2], 1.0);
}

TEST(LoadersTest, SelectedCoordinateColumns) {
  DatasetLoadOptions options;
  options.coordinate_columns = {2, 0};
  auto ds = DatasetFromCsvTable(MakeTable(), options);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->dimension(), 2u);
  EXPECT_DOUBLE_EQ(ds->point(1)[0], 1.0);  // column 2
  EXPECT_DOUBLE_EQ(ds->point(1)[1], 3.0);  // column 0
}

TEST(LoadersTest, LabelColumnExcludedFromCoordinates) {
  DatasetLoadOptions options;
  options.label_column = 2;
  auto ds = DatasetFromCsvTable(MakeTable(), options);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->dimension(), 2u);
  EXPECT_EQ(ds->label(0), "0");
  EXPECT_EQ(ds->label(1), "1");
}

TEST(LoadersTest, RejectsBadColumnSelections) {
  DatasetLoadOptions options;
  options.coordinate_columns = {7};
  EXPECT_EQ(DatasetFromCsvTable(MakeTable(), options).status().code(),
            StatusCode::kOutOfRange);
  DatasetLoadOptions bad_label;
  bad_label.label_column = 9;
  EXPECT_EQ(DatasetFromCsvTable(MakeTable(), bad_label).status().code(),
            StatusCode::kOutOfRange);
}

TEST(LoadersTest, RejectsEmptyTable) {
  CsvTable empty;
  EXPECT_FALSE(DatasetFromCsvTable(empty).ok());
}

TEST(LoadersTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/lofkit_loader_test.csv";
  CsvTable table = MakeTable();
  ASSERT_TRUE(WriteCsvFile(path, table).ok());
  DatasetLoadOptions options;
  options.csv.has_header = true;
  options.label_column = 2;
  auto ds = DatasetFromCsvFile(path, options);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 3u);
  EXPECT_EQ(ds->dimension(), 2u);
  std::remove(path.c_str());
}

TEST(LoadersTest, MissingFileIsIoError) {
  EXPECT_EQ(DatasetFromCsvFile("/does/not/exist.csv").status().code(),
            StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// Hostile-input sweep: every malformed file must come back as a clean Status
// with a useful message — never a crash, hang, or silently truncated dataset.
// ---------------------------------------------------------------------------

struct HostileCase {
  const char* name;
  std::string content;         // Raw file bytes (may embed NUL).
  StatusCode expected;         // Expected failure code.
  const char* message_phrase;  // Substring the error message must carry.
};

std::string WriteTempFile(const std::string& name, const std::string& bytes) {
  const std::string path = ::testing::TempDir() + "/lofkit_hostile_" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  return path;
}

TEST(LoadersHostileInputTest, MalformedFilesFailCleanly) {
  using std::string;
  const HostileCase kCases[] = {
      {"embedded_nul", string("1,2\n3,\0 4\n", 10), StatusCode::kInvalidArgument,
       "embedded NUL"},
      {"exponent_overflow_pos", "1,2\n1e999,4\n", StatusCode::kInvalidArgument,
       "out of double range"},
      {"exponent_overflow_neg", "1,2\n-1e999,4\n", StatusCode::kInvalidArgument,
       "out of double range"},
      {"exponent_underflow", "1,2\n1e-999,4\n", StatusCode::kInvalidArgument,
       "out of double range"},
      {"infinity_literal", "1,2\ninf,4\n", StatusCode::kInvalidArgument,
       "data row 2"},
      {"nan_literal", "1,2\n3,nan\n", StatusCode::kInvalidArgument,
       "data row 2"},
      {"ragged_mid_file", "1,2\n3,4\n5\n", StatusCode::kInvalidArgument,
       "expected 2"},
      {"extra_column_mid_file", "1,2\n3,4,5\n", StatusCode::kInvalidArgument,
       "expected 2"},
      {"trailing_garbage", "1,2\n3,4xyz\n", StatusCode::kInvalidArgument,
       "line 2"},
      {"empty_field", "1,2\n3,\n", StatusCode::kInvalidArgument, "line 2"},
      {"non_numeric", "1,2\nhello,world\n", StatusCode::kInvalidArgument,
       "line 2"},
  };
  for (const HostileCase& c : kCases) {
    SCOPED_TRACE(c.name);
    const string path = WriteTempFile(c.name, c.content);
    auto ds = DatasetFromCsvFile(path);
    ASSERT_FALSE(ds.ok());
    EXPECT_EQ(ds.status().code(), c.expected);
    EXPECT_NE(ds.status().message().find(c.message_phrase), string::npos)
        << "actual message: " << ds.status().message();
    std::remove(path.c_str());
  }
}

TEST(LoadersHostileInputTest, OverlongLineHitsConfiguredCap) {
  std::string giant = "1,";
  giant.append(256, '9');  // Line of 258 bytes against a 64-byte cap.
  giant.push_back('\n');
  const std::string path = WriteTempFile("overlong", "1,2\n" + giant);
  DatasetLoadOptions options;
  options.csv.max_line_bytes = 64;
  auto ds = DatasetFromCsvFile(path, options);
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(ds.status().message().find("max_line_bytes"), std::string::npos);
  std::remove(path.c_str());
}

TEST(LoadersHostileInputTest, DefaultCapRejectsNewlineFreeBlob) {
  // A "CSV" that is one newline-free line just past the 1 MiB default cap.
  std::string blob;
  blob.reserve((1 << 20) + 8);
  while (blob.size() <= (1 << 20)) blob += "1,";
  const std::string path = WriteTempFile("blob", blob);
  auto ds = DatasetFromCsvFile(path);
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(ds.status().message().find("max_line_bytes"), std::string::npos);
  std::remove(path.c_str());
}

TEST(LoadersHostileInputTest, BenignVariantsStillLoad) {
  // CRLF endings, comments, and blank lines are not hostile; make sure the
  // hardening did not tighten the accepted grammar.
  const std::string path = WriteTempFile(
      "benign", "# comment\r\n1,2\r\n\r\n3,4\n  # indented comment\n5,6\n");
  auto ds = DatasetFromCsvFile(path);
  ASSERT_TRUE(ds.ok()) << ds.status().message();
  EXPECT_EQ(ds->size(), 3u);
  EXPECT_EQ(ds->dimension(), 2u);
  EXPECT_DOUBLE_EQ(ds->point(2)[1], 6.0);
  std::remove(path.c_str());
}

TEST(LoadersHostileInputTest, HeaderOnlyFileIsInvalidNotCrash) {
  const std::string path = WriteTempFile("header_only", "x,y\n");
  DatasetLoadOptions options;
  options.csv.has_header = true;
  auto ds = DatasetFromCsvFile(path, options);
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lofkit
