#include "dataset/loaders.h"

#include <gtest/gtest.h>

namespace lofkit {
namespace {

CsvTable MakeTable() {
  CsvTable table;
  table.header = {"x", "y", "cls"};
  table.rows = {{1.0, 2.0, 0.0}, {3.0, 4.0, 1.0}, {5.0, 6.0, 1.0}};
  return table;
}

TEST(LoadersTest, AllColumnsByDefault) {
  auto ds = DatasetFromCsvTable(MakeTable());
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->dimension(), 3u);
  EXPECT_EQ(ds->size(), 3u);
  EXPECT_DOUBLE_EQ(ds->point(1)[2], 1.0);
}

TEST(LoadersTest, SelectedCoordinateColumns) {
  DatasetLoadOptions options;
  options.coordinate_columns = {2, 0};
  auto ds = DatasetFromCsvTable(MakeTable(), options);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->dimension(), 2u);
  EXPECT_DOUBLE_EQ(ds->point(1)[0], 1.0);  // column 2
  EXPECT_DOUBLE_EQ(ds->point(1)[1], 3.0);  // column 0
}

TEST(LoadersTest, LabelColumnExcludedFromCoordinates) {
  DatasetLoadOptions options;
  options.label_column = 2;
  auto ds = DatasetFromCsvTable(MakeTable(), options);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->dimension(), 2u);
  EXPECT_EQ(ds->label(0), "0");
  EXPECT_EQ(ds->label(1), "1");
}

TEST(LoadersTest, RejectsBadColumnSelections) {
  DatasetLoadOptions options;
  options.coordinate_columns = {7};
  EXPECT_EQ(DatasetFromCsvTable(MakeTable(), options).status().code(),
            StatusCode::kOutOfRange);
  DatasetLoadOptions bad_label;
  bad_label.label_column = 9;
  EXPECT_EQ(DatasetFromCsvTable(MakeTable(), bad_label).status().code(),
            StatusCode::kOutOfRange);
}

TEST(LoadersTest, RejectsEmptyTable) {
  CsvTable empty;
  EXPECT_FALSE(DatasetFromCsvTable(empty).ok());
}

TEST(LoadersTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/lofkit_loader_test.csv";
  CsvTable table = MakeTable();
  ASSERT_TRUE(WriteCsvFile(path, table).ok());
  DatasetLoadOptions options;
  options.csv.has_header = true;
  options.label_column = 2;
  auto ds = DatasetFromCsvFile(path, options);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 3u);
  EXPECT_EQ(ds->dimension(), 2u);
  std::remove(path.c_str());
}

TEST(LoadersTest, MissingFileIsIoError) {
  EXPECT_EQ(DatasetFromCsvFile("/does/not/exist.csv").status().code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace lofkit
