#include "lof/lof_computer.h"

#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/linear_scan_index.h"

namespace lofkit {
namespace {

// Fixture around the hand-computable 1-d dataset {0, 1, 2, 10}, MinPts = 2.
//
// k-distances: [2, 1, 2, 9]
// lrd:         [2/3, 1/2, 2/3, 2/17]
// LOF:         [7/8, 4/3, 7/8, 119/24]
class HandComputedLofTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ds = Dataset::FromRowMajor(1, {0, 1, 2, 10});
    ASSERT_TRUE(ds.ok());
    data_ = std::move(ds).value();
    ASSERT_TRUE(index_.Build(*data_, Euclidean()).ok());
    auto m = NeighborhoodMaterializer::Materialize(*data_, index_, 2);
    ASSERT_TRUE(m.ok());
    m_.emplace(std::move(m).value());
  }

  std::optional<Dataset> data_;
  LinearScanIndex index_;
  std::optional<NeighborhoodMaterializer> m_;
};

TEST_F(HandComputedLofTest, LrdMatchesDefinition6) {
  auto scores = LofComputer::Compute(*m_, 2);
  ASSERT_TRUE(scores.ok());
  EXPECT_NEAR(scores->lrd[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(scores->lrd[1], 1.0 / 2.0, 1e-12);
  EXPECT_NEAR(scores->lrd[2], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(scores->lrd[3], 2.0 / 17.0, 1e-12);
  EXPECT_FALSE(scores->has_infinite_lrd);
}

TEST_F(HandComputedLofTest, LofMatchesDefinition7) {
  auto scores = LofComputer::Compute(*m_, 2);
  ASSERT_TRUE(scores.ok());
  EXPECT_NEAR(scores->lof[0], 7.0 / 8.0, 1e-12);
  EXPECT_NEAR(scores->lof[1], 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(scores->lof[2], 7.0 / 8.0, 1e-12);
  EXPECT_NEAR(scores->lof[3], 119.0 / 24.0, 1e-12);
}

TEST_F(HandComputedLofTest, TheIsolatedPointIsTheTopOutlier) {
  auto scores = LofComputer::Compute(*m_, 2);
  ASSERT_TRUE(scores.ok());
  auto ranked = RankDescending(scores->lof, 1);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0].index, 3u);
}

TEST_F(HandComputedLofTest, RejectsOutOfRangeMinPts) {
  EXPECT_EQ(LofComputer::Compute(*m_, 0).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(LofComputer::Compute(*m_, 3).status().code(),
            StatusCode::kOutOfRange);
}

TEST(LofComputerTest, UniformGridHasLofNearOne) {
  // Section 6.2: in a uniform distribution no object should be labeled
  // outlying (for MinPts >= ~10).
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  Rng rng(3);
  for (int x = 0; x < 20; ++x) {
    for (int y = 0; y < 20; ++y) {
      const double p[2] = {x + rng.Uniform(-0.05, 0.05),
                           y + rng.Uniform(-0.05, 0.05)};
      ASSERT_TRUE(ds->Append(p).ok());
    }
  }
  auto scores = LofComputer::ComputeFromScratch(*ds, Euclidean(), 10);
  ASSERT_TRUE(scores.ok());
  double max_lof = 0.0;
  double sum = 0.0;
  for (double lof : scores->lof) {
    max_lof = std::max(max_lof, lof);
    sum += lof;
  }
  EXPECT_NEAR(sum / scores->lof.size(), 1.0, 0.05);
  EXPECT_LT(max_lof, 1.5);
}

TEST(LofComputerTest, PlantedOutlierScoresHighest) {
  Rng rng(4);
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  const double center[2] = {0, 0};
  ASSERT_TRUE(
      generators::AppendGaussianCluster(*ds, rng, center, 1.0, 300).ok());
  const double far_away[2] = {8.0, 8.0};
  ASSERT_TRUE(ds->Append(far_away, "planted").ok());
  auto scores = LofComputer::ComputeFromScratch(*ds, Euclidean(), 15);
  ASSERT_TRUE(scores.ok());
  auto ranked = RankDescending(scores->lof, 1);
  EXPECT_EQ(ranked[0].index, 300u);
  EXPECT_GT(ranked[0].score, 2.0);
}

TEST(LofComputerTest, DuplicateDegeneracyFollowsDocumentedConvention) {
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  const double p[2] = {1.0, 1.0};
  ASSERT_TRUE(generators::AppendDuplicates(*ds, p, 5).ok());
  const double q[2] = {2.0, 2.0};
  ASSERT_TRUE(ds->Append(q).ok());
  auto scores = LofComputer::ComputeFromScratch(*ds, Euclidean(), 3);
  ASSERT_TRUE(scores.ok());
  EXPECT_TRUE(scores->has_infinite_lrd);
  // Duplicates: infinite lrd, neighbors also infinite -> LOF 1.
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(std::isinf(scores->lrd[i]));
    EXPECT_DOUBLE_EQ(scores->lof[i], 1.0);
  }
  // The distinct point q has finite lrd but infinitely dense neighbors.
  EXPECT_TRUE(std::isfinite(scores->lrd[5]));
  EXPECT_TRUE(std::isinf(scores->lof[5]));
}

TEST(LofComputerTest, DistinctModeAvoidsDegeneracy) {
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  const double p[2] = {1.0, 1.0};
  ASSERT_TRUE(generators::AppendDuplicates(*ds, p, 5).ok());
  const double q[2] = {2.0, 2.0};
  const double r[2] = {2.5, 2.5};
  ASSERT_TRUE(ds->Append(q).ok());
  ASSERT_TRUE(ds->Append(r).ok());
  auto scores = LofComputer::ComputeFromScratch(
      *ds, Euclidean(), 2, IndexKind::kLinearScan, /*distinct=*/true);
  ASSERT_TRUE(scores.ok());
  EXPECT_FALSE(scores->has_infinite_lrd);
  for (double lof : scores->lof) {
    EXPECT_TRUE(std::isfinite(lof));
  }
}

TEST(LofComputerTest, AllIndexesProduceIdenticalScores) {
  Rng rng(5);
  auto ds = generators::MakePerformanceWorkload(rng, 3, 300, 4);
  ASSERT_TRUE(ds.ok());
  auto reference =
      LofComputer::ComputeFromScratch(*ds, Euclidean(), 10,
                                      IndexKind::kLinearScan);
  ASSERT_TRUE(reference.ok());
  for (IndexKind kind : AllIndexKinds()) {
    auto scores = LofComputer::ComputeFromScratch(*ds, Euclidean(), 10, kind);
    ASSERT_TRUE(scores.ok()) << IndexKindName(kind);
    for (size_t i = 0; i < scores->lof.size(); ++i) {
      ASSERT_NEAR(scores->lof[i], reference->lof[i], 1e-12)
          << IndexKindName(kind) << " point " << i;
    }
  }
}

TEST(LofComputerTest, SimplifiedVariantFluctuatesMore) {
  // Definition 5's rationale: reach-dist smoothing reduces LOF variance in
  // homogeneous regions.
  Rng rng(6);
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  const double lo[2] = {0, 0};
  const double hi[2] = {50, 50};
  ASSERT_TRUE(generators::AppendUniformBox(*ds, rng, lo, hi, 800).ok());
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(*ds, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(*ds, index, 10);
  ASSERT_TRUE(m.ok());
  auto smoothed = LofComputer::Compute(*m, 10, {.use_reachability = true});
  auto raw = LofComputer::Compute(*m, 10, {.use_reachability = false});
  ASSERT_TRUE(smoothed.ok() && raw.ok());
  auto stddev = [](const std::vector<double>& values) {
    double sum = 0, sum_sq = 0;
    for (double v : values) {
      sum += v;
      sum_sq += v * v;
    }
    const double mean = sum / values.size();
    return std::sqrt(std::max(0.0, sum_sq / values.size() - mean * mean));
  };
  EXPECT_LT(stddev(smoothed->lof), stddev(raw->lof));
}

TEST(LofComputerTest, ScoresFromSavedMaterializationMatch) {
  Rng rng(7);
  auto ds = generators::MakePerformanceWorkload(rng, 2, 200, 3);
  ASSERT_TRUE(ds.ok());
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(*ds, Euclidean()).ok());
  auto m = NeighborhoodMaterializer::Materialize(*ds, index, 12);
  ASSERT_TRUE(m.ok());
  const std::string path = ::testing::TempDir() + "/lofkit_scores_m.bin";
  ASSERT_TRUE(m->SaveToFile(path).ok());
  auto loaded = NeighborhoodMaterializer::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  auto direct = LofComputer::Compute(*m, 10);
  auto from_file = LofComputer::Compute(*loaded, 10);
  ASSERT_TRUE(direct.ok() && from_file.ok());
  for (size_t i = 0; i < direct->lof.size(); ++i) {
    ASSERT_DOUBLE_EQ(direct->lof[i], from_file->lof[i]);
  }
  std::remove(path.c_str());
}

TEST(LofComputerTest, RankDescendingBreaksTiesByIndex) {
  const std::vector<double> scores = {1.0, 3.0, 3.0, 0.5};
  auto ranked = RankDescending(scores);
  ASSERT_EQ(ranked.size(), 4u);
  EXPECT_EQ(ranked[0].index, 1u);
  EXPECT_EQ(ranked[1].index, 2u);
  EXPECT_EQ(ranked[2].index, 0u);
  EXPECT_EQ(ranked[3].index, 3u);
  auto top2 = RankDescending(scores, 2);
  EXPECT_EQ(top2.size(), 2u);
}

TEST(LofComputerTest, RankDescendingOrdersNaNScoresLastDeterministically) {
  // Regression: the old comparator used `a.score != b.score` then `>`,
  // which is not a strict weak ordering once NaNs are present (undefined
  // behavior in std::sort). NaNs must sort after every real score,
  // including -infinity, tie-broken by ascending index.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> scores = {nan, 2.0, nan, -inf, inf, 0.5};
  auto ranked = RankDescending(scores);
  ASSERT_EQ(ranked.size(), 6u);
  EXPECT_EQ(ranked[0].index, 4u);  // +inf
  EXPECT_EQ(ranked[1].index, 1u);  // 2.0
  EXPECT_EQ(ranked[2].index, 5u);  // 0.5
  EXPECT_EQ(ranked[3].index, 3u);  // -inf
  EXPECT_EQ(ranked[4].index, 0u);  // first NaN, by index
  EXPECT_EQ(ranked[5].index, 2u);  // second NaN
  EXPECT_TRUE(std::isnan(ranked[4].score));
  EXPECT_TRUE(std::isnan(ranked[5].score));

  // A large alternating NaN/value vector exercises enough comparisons for
  // libstdc++'s debug-free std::sort to go off the rails under the old
  // comparator; with the fix it must sort every NaN after every number.
  std::vector<double> many(501);
  for (size_t i = 0; i < many.size(); ++i) {
    many[i] = (i % 3 == 0) ? nan : static_cast<double>(i % 17);
  }
  auto many_ranked = RankDescending(many);
  ASSERT_EQ(many_ranked.size(), many.size());
  bool seen_nan = false;
  uint32_t previous_nan_index = 0;
  for (const RankedOutlier& r : many_ranked) {
    if (std::isnan(r.score)) {
      if (seen_nan) {
        EXPECT_GT(r.index, previous_nan_index);
      }
      seen_nan = true;
      previous_nan_index = r.index;
    } else {
      EXPECT_FALSE(seen_nan) << "real score after a NaN";
    }
  }
  EXPECT_TRUE(seen_nan);
}

TEST(LofComputerTest, ComputeFromScratchForwardsOptions) {
  // Regression: ComputeFromScratch used to drop LofComputeOptions and
  // always compute with defaults, making the use_reachability ablation
  // unreachable from this entry point.
  Rng rng(8);
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  const double lo[2] = {0, 0};
  const double hi[2] = {30, 30};
  ASSERT_TRUE(generators::AppendUniformBox(*ds, rng, lo, hi, 300).ok());
  auto smoothed = LofComputer::ComputeFromScratch(
      *ds, Euclidean(), 10, IndexKind::kLinearScan, false,
      {.use_reachability = true});
  auto raw = LofComputer::ComputeFromScratch(
      *ds, Euclidean(), 10, IndexKind::kLinearScan, false,
      {.use_reachability = false});
  ASSERT_TRUE(smoothed.ok() && raw.ok());
  bool any_difference = false;
  for (size_t i = 0; i < smoothed->lof.size(); ++i) {
    if (smoothed->lof[i] != raw->lof[i]) any_difference = true;
  }
  EXPECT_TRUE(any_difference)
      << "the simplified variant must be reachable from ComputeFromScratch";
}

TEST(LofComputerTest, ComputeFromScratchRecordsPhaseTimes) {
  Rng rng(9);
  auto ds = generators::MakePerformanceWorkload(rng, 2, 300, 3);
  ASSERT_TRUE(ds.ok());
  auto scores = LofComputer::ComputeFromScratch(*ds, Euclidean(), 10);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT(scores->phase_times.materialize_seconds, 0.0);
  EXPECT_GT(scores->phase_times.lrd_seconds, 0.0);
  EXPECT_GT(scores->phase_times.lof_seconds, 0.0);
}

TEST(LofComputerTest, MinPtsOneIsDegenerateButDefined) {
  // MinPts = 1 reduces reach-dist to nearest-neighbor distances; LOF is
  // still well defined per the definitions.
  auto ds = Dataset::FromRowMajor(1, {0, 1, 3, 7});
  ASSERT_TRUE(ds.ok());
  auto scores = LofComputer::ComputeFromScratch(*ds, Euclidean(), 1);
  ASSERT_TRUE(scores.ok());
  for (double lof : scores->lof) {
    EXPECT_TRUE(std::isfinite(lof));
    EXPECT_GT(lof, 0.0);
  }
}

}  // namespace
}  // namespace lofkit
