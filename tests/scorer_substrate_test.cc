// Bit-identity properties of the DensitySubstrate refactor: LOF through
// the substrate must produce the exact same bits on every thread count,
// on both substrate routes (materialized and re-query), in both neighbor
// modes, and across the memory-budget degradation path — plus agreement
// with an independent naive O(n^2) reference.

#include <cmath>
#include <optional>

#include <gtest/gtest.h>

#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/linear_scan_index.h"
#include "lof/density_substrate.h"
#include "lof/lof_computer.h"
#include "lof/lof_sweep.h"

namespace lofkit {
namespace {

// Tie-heavy workload: a Gaussian cluster, a pile of exact duplicates (so
// k-distance neighborhoods carry ties and the lrd path hits the infinity
// convention), and one planted outlier.
Dataset MakeTieHeavyDataset() {
  Rng rng(29);
  auto ds = Dataset::Create(2);
  EXPECT_TRUE(ds.ok());
  const double center[2] = {0.0, 0.0};
  EXPECT_TRUE(
      generators::AppendGaussianCluster(*ds, rng, center, 1.0, 70).ok());
  const double pile[2] = {2.5, 2.5};
  EXPECT_TRUE(generators::AppendDuplicates(*ds, pile, 12).ok());
  const double planted[2] = {9.0, -9.0};
  EXPECT_TRUE(generators::AppendPoint(*ds, planted, "planted").ok());
  return std::move(ds).value();
}

// Independent naive LOF: full pairwise distances, the Definition-4
// k-distance neighborhood (ties included, (distance, index) order), and
// the lrd/lof sums accumulated in exactly that neighbor order.
struct NaiveLof {
  std::vector<double> k_distance;
  std::vector<double> lrd;
  std::vector<double> lof;
};

NaiveLof NaiveReference(const Dataset& data, const Metric& metric,
                        size_t k) {
  const size_t n = data.size();
  std::vector<std::vector<std::pair<double, uint32_t>>> neighborhoods(n);
  NaiveLof naive;
  naive.k_distance.resize(n);
  naive.lrd.resize(n);
  naive.lof.resize(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<std::pair<double, uint32_t>> all;
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      all.emplace_back(metric.Distance(data.point(i), data.point(j)),
                       static_cast<uint32_t>(j));
    }
    std::sort(all.begin(), all.end());
    const double k_dist = all[k - 1].first;
    naive.k_distance[i] = k_dist;
    for (const auto& entry : all) {
      if (entry.first > k_dist) break;
      neighborhoods[i].push_back(entry);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (const auto& [dist, j] : neighborhoods[i]) {
      sum += std::max(naive.k_distance[j], dist);
    }
    naive.lrd[i] = sum > 0.0
                       ? static_cast<double>(neighborhoods[i].size()) / sum
                       : std::numeric_limits<double>::infinity();
  }
  for (size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (const auto& [dist, j] : neighborhoods[i]) {
      if (std::isinf(naive.lrd[j]) && std::isinf(naive.lrd[i])) {
        sum += 1.0;
      } else {
        sum += naive.lrd[j] / naive.lrd[i];
      }
    }
    naive.lof[i] = sum / static_cast<double>(neighborhoods[i].size());
  }
  return naive;
}

class ScorerSubstrateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_.emplace(MakeTieHeavyDataset());
    ASSERT_TRUE(index_.Build(*data_, Euclidean()).ok());
    auto m = NeighborhoodMaterializer::Materialize(*data_, index_, 15);
    ASSERT_TRUE(m.ok());
    m_.emplace(std::move(m).value());
  }

  std::optional<Dataset> data_;
  LinearScanIndex index_;
  std::optional<NeighborhoodMaterializer> m_;
};

TEST_F(ScorerSubstrateTest, RoutesAndThreadCountsBitIdentical) {
  const size_t min_pts = 10;
  LofComputeOptions baseline_options;
  auto baseline = LofComputer::Compute(*m_, min_pts, baseline_options);
  ASSERT_TRUE(baseline.ok());
  EXPECT_TRUE(baseline->has_infinite_lrd);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{7}}) {
    LofComputeOptions options;
    options.threads = threads;
    auto materialized = LofComputer::Compute(*m_, min_pts, options);
    auto requery =
        LofComputer::ComputeRequery(*data_, index_, min_pts, options);
    ASSERT_TRUE(materialized.ok());
    ASSERT_TRUE(requery.ok());
    for (size_t i = 0; i < data_->size(); ++i) {
      // EXPECT_EQ on doubles is exact comparison: bit-identity, not
      // tolerance.
      EXPECT_EQ(materialized->lof[i], baseline->lof[i])
          << "threads=" << threads << " i=" << i;
      EXPECT_EQ(materialized->lrd[i], baseline->lrd[i]);
      EXPECT_EQ(requery->lof[i], baseline->lof[i])
          << "requery threads=" << threads << " i=" << i;
      EXPECT_EQ(requery->lrd[i], baseline->lrd[i]);
    }
    EXPECT_EQ(materialized->has_infinite_lrd, baseline->has_infinite_lrd);
    EXPECT_EQ(requery->has_infinite_lrd, baseline->has_infinite_lrd);
  }
}

TEST_F(ScorerSubstrateTest, SubstrateEntryPointMatchesWrappers) {
  auto materialized_substrate = DensitySubstrate::OverMaterialization(
      *m_, &*data_, &Euclidean());
  auto requery_substrate = DensitySubstrate::OverIndex(*data_, index_);
  ASSERT_TRUE(materialized_substrate.ok());
  ASSERT_TRUE(requery_substrate.ok());
  EXPECT_TRUE(materialized_substrate->materialized());
  EXPECT_FALSE(requery_substrate->materialized());
  EXPECT_TRUE(materialized_substrate->has_coordinates());
  EXPECT_FALSE(requery_substrate->has_coordinates());
  auto wrapper = LofComputer::Compute(*m_, 8);
  auto over_m = LofComputer::ComputeOverSubstrate(*materialized_substrate, 8);
  auto over_index = LofComputer::ComputeOverSubstrate(*requery_substrate, 8);
  ASSERT_TRUE(wrapper.ok());
  ASSERT_TRUE(over_m.ok());
  ASSERT_TRUE(over_index.ok());
  for (size_t i = 0; i < data_->size(); ++i) {
    EXPECT_EQ(over_m->lof[i], wrapper->lof[i]);
    EXPECT_EQ(over_index->lof[i], wrapper->lof[i]);
  }
}

TEST_F(ScorerSubstrateTest, MatchesNaiveReference) {
  const size_t min_pts = 7;
  const NaiveLof naive = NaiveReference(*data_, Euclidean(), min_pts);
  auto scores = LofComputer::Compute(*m_, min_pts);
  ASSERT_TRUE(scores.ok());
  for (size_t i = 0; i < data_->size(); ++i) {
    EXPECT_DOUBLE_EQ(scores->lrd[i], naive.lrd[i]) << "i=" << i;
    EXPECT_DOUBLE_EQ(scores->lof[i], naive.lof[i]) << "i=" << i;
  }
}

TEST_F(ScorerSubstrateTest, DistinctModeBitIdenticalAcrossThreads) {
  auto distinct =
      NeighborhoodMaterializer::Materialize(*data_, index_, 8,
                                            /*distinct_neighbors=*/true);
  ASSERT_TRUE(distinct.ok());
  auto baseline = LofComputer::Compute(*distinct, 8);
  ASSERT_TRUE(baseline.ok());
  // Distinct-distance counting defuses the duplicate pile: no infinities.
  EXPECT_FALSE(baseline->has_infinite_lrd);
  for (size_t threads : {size_t{2}, size_t{7}}) {
    LofComputeOptions options;
    options.threads = threads;
    auto scores = LofComputer::Compute(*distinct, 8, options);
    ASSERT_TRUE(scores.ok());
    for (size_t i = 0; i < data_->size(); ++i) {
      EXPECT_EQ(scores->lof[i], baseline->lof[i]);
    }
  }
}

TEST_F(ScorerSubstrateTest, BudgetDegradationBitIdentical) {
  LofComputeOptions options;
  options.threads = 3;
  auto full = LofComputer::ComputeFromScratch(*data_, Euclidean(), 10,
                                              IndexKind::kLinearScan,
                                              /*distinct_neighbors=*/false,
                                              options);
  options.memory_budget_bytes = 1;  // forces the re-query route
  auto degraded = LofComputer::ComputeFromScratch(*data_, Euclidean(), 10,
                                                  IndexKind::kLinearScan,
                                                  false, options);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(degraded.ok());
  EXPECT_FALSE(full->degraded_to_requery);
  EXPECT_TRUE(degraded->degraded_to_requery);
  for (size_t i = 0; i < data_->size(); ++i) {
    EXPECT_EQ(degraded->lof[i], full->lof[i]);
  }
}

TEST_F(ScorerSubstrateTest, SweepRoutesAndThreadCountsBitIdentical) {
  auto baseline = LofSweep::Run(*m_, 5, 12);
  ASSERT_TRUE(baseline.ok());
  for (size_t threads : {size_t{2}, size_t{7}}) {
    auto sweep = LofSweep::Run(*m_, 5, 12, LofAggregation::kMax,
                               /*keep_per_min_pts=*/false, threads);
    auto requery = LofSweep::RunRequery(*data_, index_, 5, 12,
                                        LofAggregation::kMax, threads);
    ASSERT_TRUE(sweep.ok());
    ASSERT_TRUE(requery.ok());
    EXPECT_FALSE(sweep->degraded_to_requery);
    EXPECT_TRUE(requery->degraded_to_requery);
    for (size_t i = 0; i < data_->size(); ++i) {
      EXPECT_EQ(sweep->aggregated[i], baseline->aggregated[i]);
      EXPECT_EQ(requery->aggregated[i], baseline->aggregated[i]);
    }
  }
}

TEST_F(ScorerSubstrateTest, ValidateMinPtsKeepsHistoricalErrors) {
  auto materialized = DensitySubstrate::OverMaterialization(*m_);
  auto requery = DensitySubstrate::OverIndex(*data_, index_);
  ASSERT_TRUE(materialized.ok());
  ASSERT_TRUE(requery.ok());
  EXPECT_EQ(materialized->ValidateMinPts(0).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(materialized->ValidateMinPts(16).code(),
            StatusCode::kOutOfRange);
  EXPECT_TRUE(materialized->ValidateMinPts(15).ok());
  EXPECT_EQ(requery->ValidateMinPts(0).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(requery->ValidateMinPts(data_->size()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(requery->ValidateMinPts(data_->size() - 1).ok());
  // Mismatched dataset/materializer sizes are rejected at construction.
  auto tiny = Dataset::Create(2);
  ASSERT_TRUE(tiny.ok());
  const double p[2] = {0.0, 0.0};
  ASSERT_TRUE(generators::AppendPoint(*tiny, p).ok());
  EXPECT_EQ(DensitySubstrate::OverMaterialization(*m_, &*tiny, &Euclidean())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ScorerSubstrateTest, RequeryStatsFoldDeterministically) {
  const size_t n = data_->size();
  for (size_t threads : {size_t{1}, size_t{4}}) {
    QueryStats stats;
    LofComputeOptions options;
    options.threads = threads;
    options.observer.query_stats = &stats;
    auto scores =
        LofComputer::ComputeRequery(*data_, index_, 9, options);
    ASSERT_TRUE(scores.ok());
    // Three scans (k-distance, lrd, lof), one query per point each.
    EXPECT_EQ(stats.queries, 3 * n) << "threads=" << threads;
  }
  // The materialized route runs no queries at all.
  QueryStats stats;
  LofComputeOptions options;
  options.observer.query_stats = &stats;
  ASSERT_TRUE(LofComputer::Compute(*m_, 9, options).ok());
  EXPECT_EQ(stats.queries, 0u);
}

}  // namespace
}  // namespace lofkit
