#include "baselines/knn_outlier.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "dataset/generators.h"
#include "dataset/metric.h"
#include "index/linear_scan_index.h"

namespace lofkit {
namespace {

TEST(KnnOutlierTest, HandComputedRanking) {
  // 1-d {0, 1, 2, 10}, k = 2: k-distances are [2, 1, 2, 9];
  // ranking: p3 (9), then p0/p2 tie (2), then p1 (1).
  auto ds = Dataset::FromRowMajor(1, {0, 1, 2, 10});
  ASSERT_TRUE(ds.ok());
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(*ds, Euclidean()).ok());
  auto ranked = KnnDistanceOutlierDetector::Rank(*ds, index, 2);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 4u);
  EXPECT_EQ((*ranked)[0].index, 3u);
  EXPECT_DOUBLE_EQ((*ranked)[0].score, 9.0);
  EXPECT_EQ((*ranked)[1].index, 0u);
  EXPECT_EQ((*ranked)[2].index, 2u);
  EXPECT_EQ((*ranked)[3].index, 1u);
}

TEST(KnnOutlierTest, TopNTruncates) {
  auto ds = Dataset::FromRowMajor(1, {0, 1, 2, 10});
  ASSERT_TRUE(ds.ok());
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(*ds, Euclidean()).ok());
  auto top1 = KnnDistanceOutlierDetector::Rank(*ds, index, 2, 1);
  ASSERT_TRUE(top1.ok());
  EXPECT_EQ(top1->size(), 1u);
  EXPECT_EQ((*top1)[0].index, 3u);
}

TEST(KnnOutlierTest, MaterializerVariantAgrees) {
  Rng rng(51);
  auto ds = generators::MakePerformanceWorkload(rng, 3, 200, 3);
  ASSERT_TRUE(ds.ok());
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(*ds, Euclidean()).ok());
  auto direct = KnnDistanceOutlierDetector::Rank(*ds, index, 8);
  ASSERT_TRUE(direct.ok());
  auto m = NeighborhoodMaterializer::Materialize(*ds, index, 8);
  ASSERT_TRUE(m.ok());
  auto shared = KnnDistanceOutlierDetector::RankFromMaterializer(*m, 8);
  ASSERT_TRUE(shared.ok());
  ASSERT_EQ(direct->size(), shared->size());
  for (size_t i = 0; i < direct->size(); ++i) {
    EXPECT_EQ((*direct)[i].index, (*shared)[i].index);
    EXPECT_DOUBLE_EQ((*direct)[i].score, (*shared)[i].score);
  }
}

TEST(KnnOutlierTest, RejectsBadK) {
  auto ds = Dataset::FromRowMajor(1, {0, 1, 2});
  ASSERT_TRUE(ds.ok());
  LinearScanIndex index;
  ASSERT_TRUE(index.Build(*ds, Euclidean()).ok());
  EXPECT_FALSE(KnnDistanceOutlierDetector::Rank(*ds, index, 0).ok());
  EXPECT_FALSE(KnnDistanceOutlierDetector::Rank(*ds, index, 3).ok());
}

TEST(KnnOutlierTest, GlobalMethodMissesLocalOutlierThatLofFinds) {
  // The structural difference the paper is about: a point just outside a
  // dense cluster (local outlier) has a *small* k-distance compared to the
  // sparse cluster's inliers, so the global kNN ranking cannot place it on
  // top, while LOF does.
  Rng rng(52);
  auto ds = Dataset::Create(2);
  ASSERT_TRUE(ds.ok());
  const double dense_center[2] = {0, 0};
  ASSERT_TRUE(generators::AppendGaussianCluster(*ds, rng, dense_center, 0.2,
                                                200, "dense")
                  .ok());
  const double sparse_lo[2] = {20, -10};
  const double sparse_hi[2] = {40, 10};
  ASSERT_TRUE(
      generators::AppendUniformBox(*ds, rng, sparse_lo, sparse_hi, 200,
                                   "sparse")
          .ok());
  const double local_outlier[2] = {1.5, 0.0};  // just outside the dense blob
  const size_t outlier_index = ds->size();
  ASSERT_TRUE(ds->Append(local_outlier, "local_outlier").ok());

  LinearScanIndex index;
  ASSERT_TRUE(index.Build(*ds, Euclidean()).ok());
  auto knn_ranked = KnnDistanceOutlierDetector::Rank(*ds, index, 10);
  ASSERT_TRUE(knn_ranked.ok());
  size_t knn_position = 0;
  for (size_t i = 0; i < knn_ranked->size(); ++i) {
    if ((*knn_ranked)[i].index == outlier_index) {
      knn_position = i;
      break;
    }
  }
  // Dozens of sparse-cluster inliers outrank the local outlier globally.
  EXPECT_GT(knn_position, 50u);

  auto m = NeighborhoodMaterializer::Materialize(*ds, index, 10);
  ASSERT_TRUE(m.ok());
  auto scores = LofComputer::Compute(*m, 10);
  ASSERT_TRUE(scores.ok());
  auto lof_ranked = RankDescending(scores->lof, 1);
  EXPECT_EQ(lof_ranked[0].index, outlier_index);
}

}  // namespace
}  // namespace lofkit
