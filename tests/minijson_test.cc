#include "common/minijson.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace lofkit {
namespace {

TEST(MiniJsonTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->b);
  EXPECT_FALSE(ParseJson("false")->b);
  EXPECT_DOUBLE_EQ(ParseJson("42")->num, 42.0);
  EXPECT_DOUBLE_EQ(ParseJson("-1.5e2")->num, -150.0);
  EXPECT_DOUBLE_EQ(ParseJson("0.125")->num, 0.125);
  EXPECT_EQ(ParseJson("\"hello\"")->str, "hello");
}

TEST(MiniJsonTest, ParsesNestedStructures) {
  auto doc = ParseJson(
      R"({"bench": "fig11", "rows": [{"case": "n=200", "metrics": )"
      R"({"seconds": 0.5, "evals": 4781}}], "empty": [], "none": {}})");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->is_object());
  EXPECT_EQ(doc->Find("bench")->str, "fig11");
  const JsonValue* rows = doc->Find("rows");
  ASSERT_TRUE(rows != nullptr && rows->is_array());
  ASSERT_EQ(rows->array.size(), 1u);
  const JsonValue* metrics = rows->array[0].Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_DOUBLE_EQ(metrics->Find("seconds")->num, 0.5);
  EXPECT_DOUBLE_EQ(metrics->Find("evals")->num, 4781.0);
  EXPECT_TRUE(doc->Find("empty")->array.empty());
  EXPECT_TRUE(doc->Find("none")->object.empty());
  EXPECT_EQ(doc->Find("absent"), nullptr);
}

TEST(MiniJsonTest, ObjectKeepsInsertionOrder) {
  auto doc = ParseJson(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->object.size(), 3u);
  EXPECT_EQ(doc->object[0].first, "z");
  EXPECT_EQ(doc->object[1].first, "a");
  EXPECT_EQ(doc->object[2].first, "m");
}

TEST(MiniJsonTest, DecodesEscapesAndUnicode) {
  auto doc = ParseJson(R"("a\"b\\c\/d\n\t\u0041\u00e9\ud83d\ude00")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->str,
            "a\"b\\c/d\n\tA\xC3\xA9\xF0\x9F\x98\x80");  // é and 😀 in UTF-8
}

TEST(MiniJsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(ParseJson("'single'").ok());
  EXPECT_FALSE(ParseJson("01").ok());
  EXPECT_FALSE(ParseJson("1.").ok());
  EXPECT_FALSE(ParseJson("1e").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("\"bad\\escape\"").ok());
  EXPECT_FALSE(ParseJson("\"\\ud800\"").ok());  // unpaired surrogate
  EXPECT_FALSE(ParseJson("nul").ok());
  // Raw control characters must be escaped in strings.
  EXPECT_FALSE(ParseJson("\"line\nbreak\"").ok());
}

TEST(MiniJsonTest, ErrorsCarryByteOffsets) {
  auto result = ParseJson("{\"a\": !}");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("byte 6"), std::string::npos)
      << result.status().ToString();
}

TEST(MiniJsonTest, RejectsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(MiniJsonTest, ParsesFileRoundTrip) {
  const std::string path = testing::TempDir() + "/minijson_test.json";
  {
    std::ofstream out(path);
    out << "{\"answer\": 42}\n";
  }
  auto doc = ParseJsonFile(path);
  ASSERT_TRUE(doc.ok());
  EXPECT_DOUBLE_EQ(doc->Find("answer")->num, 42.0);
  std::remove(path.c_str());
  EXPECT_FALSE(ParseJsonFile(path).ok());
}

}  // namespace
}  // namespace lofkit
