#include "common/logging.h"

#include <gtest/gtest.h>

#include "common/stopwatch.h"

namespace lofkit {
namespace {

TEST(LoggingTest, LevelFilterRoundTrips) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, EmittingDoesNotCrashAtAnyLevel) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // filter the test output away
  LOFKIT_LOG(Debug) << "debug " << 1;
  LOFKIT_LOG(Info) << "info " << 2.5;
  LOFKIT_LOG(Warning) << "warning " << "text";
  SetLogLevel(original);
}

TEST(StopwatchTest, MeasuresNonNegativeMonotonicTime) {
  Stopwatch watch;
  const double first = watch.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  // Burn a little CPU.
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i * 0.5;
  const double second = watch.ElapsedSeconds();
  EXPECT_GE(second, first);
  EXPECT_NEAR(watch.ElapsedMillis(), watch.ElapsedSeconds() * 1e3,
              watch.ElapsedSeconds() * 50);
  watch.Reset();
  EXPECT_LT(watch.ElapsedSeconds(), second + 1.0);
}

}  // namespace
}  // namespace lofkit
