#include "common/logging.h"

#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/stopwatch.h"

namespace lofkit {
namespace {

// Captures whole log lines handed to the sink. The default sink writes each
// line with a single write(); the test sink mirrors that contract (one call
// per line) so the tests below can assert on line granularity.
std::mutex capture_mu;
std::vector<std::string> captured_lines;

void CaptureSink(const char* data, size_t size) {
  std::lock_guard<std::mutex> lock(capture_mu);
  captured_lines.emplace_back(data, size);
}

class LogCapture {
 public:
  LogCapture() {
    {
      std::lock_guard<std::mutex> lock(capture_mu);
      captured_lines.clear();
    }
    previous_sink_ = internal_logging::SetLogSinkForTest(&CaptureSink);
    previous_level_ = GetLogLevel();
  }
  ~LogCapture() {
    SetLogLevel(previous_level_);
    internal_logging::SetLogSinkForTest(previous_sink_);
  }

  std::vector<std::string> lines() const {
    std::lock_guard<std::mutex> lock(capture_mu);
    return captured_lines;
  }

 private:
  internal_logging::LogSink previous_sink_;
  LogLevel previous_level_;
};

TEST(LoggingTest, LevelFilterRoundTrips) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, EmittingDoesNotCrashAtAnyLevel) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // filter the test output away
  LOFKIT_LOG(Debug) << "debug " << 1;
  LOFKIT_LOG(Info) << "info " << 2.5;
  LOFKIT_LOG(Warning) << "warning " << "text";
  SetLogLevel(original);
}

TEST(LoggingTest, SeverityFilterSuppressesBelowThreshold) {
  LogCapture capture;
  SetLogLevel(LogLevel::kWarning);
  LOFKIT_LOG(Debug) << "dropped debug";
  LOFKIT_LOG(Info) << "dropped info";
  LOFKIT_LOG(Warning) << "kept warning";
  LOFKIT_LOG(Error) << "kept error";
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("kept warning"), std::string::npos);
  EXPECT_NE(lines[1].find("kept error"), std::string::npos);
  for (const auto& line : lines) {
    EXPECT_EQ(line.find("dropped"), std::string::npos);
  }
}

TEST(LoggingTest, EveryLevelPassesAtDebugThreshold) {
  LogCapture capture;
  SetLogLevel(LogLevel::kDebug);
  LOFKIT_LOG(Debug) << "d";
  LOFKIT_LOG(Info) << "i";
  LOFKIT_LOG(Warning) << "w";
  LOFKIT_LOG(Error) << "e";
  EXPECT_EQ(capture.lines().size(), 4u);
}

TEST(LoggingTest, EachMessageArrivesAsOneNewlineTerminatedLine) {
  LogCapture capture;
  SetLogLevel(LogLevel::kInfo);
  LOFKIT_LOG(Info) << "pieces " << 1 << " and " << 2.5 << " and " << "text";
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("pieces 1 and 2.5 and text"), std::string::npos);
  EXPECT_FALSE(lines[0].empty());
  EXPECT_EQ(lines[0].back(), '\n');
  // Exactly one newline: the sink receives whole lines, never fragments.
  EXPECT_EQ(lines[0].find('\n'), lines[0].size() - 1);
}

// Concurrent writers: because each message reaches the sink in a single
// call, no captured line may ever contain interleaved fragments of two
// messages.
TEST(LoggingTest, ConcurrentMessagesNeverInterleaveMidLine) {
  LogCapture capture;
  SetLogLevel(LogLevel::kInfo);
  const size_t kMessages = 200;
  ASSERT_TRUE(ParallelForWorker(kMessages, 4,
                                [&](size_t worker, size_t i) -> Status {
                                  LOFKIT_LOG(Info)
                                      << "worker=" << worker
                                      << " msg=" << i << " end";
                                  return Status::OK();
                                })
                  .ok());
  const auto lines = capture.lines();
  EXPECT_EQ(lines.size(), kMessages);
  for (const auto& line : lines) {
    EXPECT_EQ(line.find('\n'), line.size() - 1) << line;
    EXPECT_NE(line.find(" end\n"), std::string::npos) << line;
  }
}

TEST(StopwatchTest, MeasuresNonNegativeMonotonicTime) {
  Stopwatch watch;
  const double first = watch.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  // Burn a little CPU.
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i * 0.5;
  const double second = watch.ElapsedSeconds();
  EXPECT_GE(second, first);
  EXPECT_NEAR(watch.ElapsedMillis(), watch.ElapsedSeconds() * 1e3,
              watch.ElapsedSeconds() * 50);
  watch.Reset();
  EXPECT_LT(watch.ElapsedSeconds(), second + 1.0);
}

}  // namespace
}  // namespace lofkit
