#include "dataset/scenarios.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "dataset/metric.h"

namespace lofkit {
namespace {

using scenarios::Scenario;

double NearestOtherDistance(const Dataset& ds, size_t i) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < ds.size(); ++j) {
    if (j == i) continue;
    best = std::min(best, Euclidean().Distance(ds.point(i), ds.point(j)));
  }
  return best;
}

TEST(ScenariosTest, Ds1HasPaperCardinalities) {
  Rng rng(1);
  auto s = scenarios::MakeDs1(rng);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->data.size(), 502u);  // 400 + 100 + o1 + o2
  size_t c1 = 0, c2 = 0;
  for (size_t i = 0; i < s->data.size(); ++i) {
    if (s->data.label(i) == "C1") ++c1;
    if (s->data.label(i) == "C2") ++c2;
  }
  EXPECT_EQ(c1, 400u);
  EXPECT_EQ(c2, 100u);
  EXPECT_TRUE(s->Find("o1").ok());
  EXPECT_TRUE(s->Find("o2").ok());
  EXPECT_FALSE(s->Find("o3").ok());
}

TEST(ScenariosTest, Ds1HasTheSection3Geometry) {
  // The property the section 3 argument needs: d(o2, C2) is smaller than
  // the nearest-neighbor distance of every object in C1.
  Rng rng(2);
  auto s = scenarios::MakeDs1(rng);
  ASSERT_TRUE(s.ok());
  const Dataset& ds = s->data;
  const size_t o2 = s->named.at("o2");
  double d_o2_c2 = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < ds.size(); ++i) {
    if (ds.label(i) != "C2") continue;
    d_o2_c2 = std::min(d_o2_c2,
                       Euclidean().Distance(ds.point(o2), ds.point(i)));
  }
  double min_c1_nn = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < ds.size(); ++i) {
    if (ds.label(i) != "C1") continue;
    min_c1_nn = std::min(min_c1_nn, NearestOtherDistance(ds, i));
  }
  EXPECT_LT(d_o2_c2, min_c1_nn);
  EXPECT_GT(d_o2_c2, 0.0);
}

TEST(ScenariosTest, GaussianBlobSize) {
  Rng rng(3);
  auto s = scenarios::MakeGaussianBlob(rng, 321);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->data.size(), 321u);
}

TEST(ScenariosTest, Fig8ClusterSizesMatchPaper) {
  Rng rng(4);
  auto s = scenarios::MakeFig8Clusters(rng);
  ASSERT_TRUE(s.ok());
  size_t s1 = 0, s2 = 0, s3 = 0;
  for (size_t i = 0; i < s->data.size(); ++i) {
    if (s->data.label(i) == "S1") ++s1;
    if (s->data.label(i) == "S2") ++s2;
    if (s->data.label(i) == "S3") ++s3;
  }
  EXPECT_EQ(s1, 10u);
  EXPECT_EQ(s2, 35u);
  EXPECT_EQ(s3, 500u);
  // Representatives carry the right labels.
  EXPECT_EQ(s->data.label(s->named.at("s1_rep")), "S1");
  EXPECT_EQ(s->data.label(s->named.at("s2_rep")), "S2");
  EXPECT_EQ(s->data.label(s->named.at("s3_rep")), "S3");
}

TEST(ScenariosTest, Fig9HasFourClustersAndSevenOutliers) {
  Rng rng(5);
  auto s = scenarios::MakeFig9Dataset(rng);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->data.size(), 200u + 500u + 500u + 500u + 7u);
  for (int i = 0; i < 7; ++i) {
    EXPECT_TRUE(s->Find("outlier_" + std::to_string(i)).ok());
  }
}

TEST(ScenariosTest, HockeySubspace1PlantsAreExtreme) {
  Rng rng(6);
  auto s = scenarios::MakeHockeySubspace1(rng);
  ASSERT_TRUE(s.ok());
  const Dataset& ds = s->data;
  const size_t konstantinov = s->named.at("konstantinov");
  const size_t barnaby = s->named.at("barnaby");
  // Konstantinov's plus-minus and Barnaby's penalty minutes exceed the
  // whole field.
  for (size_t i = 0; i < ds.size(); ++i) {
    if (i == konstantinov || i == barnaby) continue;
    EXPECT_LT(ds.point(i)[1], ds.point(konstantinov)[1]);
    EXPECT_LT(ds.point(i)[2], ds.point(barnaby)[2]);
  }
}

TEST(ScenariosTest, HockeySubspace2PlantsPresent) {
  Rng rng(7);
  auto s = scenarios::MakeHockeySubspace2(rng);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->Find("osgood").ok());
  EXPECT_TRUE(s->Find("lemieux").ok());
  EXPECT_TRUE(s->Find("poapst").ok());
  const Dataset& ds = s->data;
  const size_t osgood = s->named.at("osgood");
  const size_t lemieux = s->named.at("lemieux");
  // Osgood's shooting percentage and Lemieux's goal count top the field.
  for (size_t i = 0; i < ds.size(); ++i) {
    if (i == osgood || i == lemieux) continue;
    EXPECT_LT(ds.point(i)[2], ds.point(osgood)[2]);
    EXPECT_LT(ds.point(i)[1], ds.point(lemieux)[1]);
  }
}

TEST(ScenariosTest, SoccerHas375PlayersAndTable3Plants) {
  Rng rng(8);
  auto s = scenarios::MakeSoccerLike(rng);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->data.size(), 375u);
  for (const char* name :
       {"preetz", "schjoenberg", "butt", "kirsten", "elber"}) {
    EXPECT_TRUE(s->Find(name).ok()) << name;
  }
  // Preetz mirrors the Table 3 row: 34 games, 23 goals -> 23/34 per game.
  const size_t preetz = s->named.at("preetz");
  EXPECT_DOUBLE_EQ(s->data.point(preetz)[0], 34.0);
  EXPECT_NEAR(s->data.point(preetz)[1], 23.0 / 34.0, 1e-12);
}

TEST(ScenariosTest, Histograms64AreNormalizedAndNamed) {
  Rng rng(9);
  auto s = scenarios::Make64DHistograms(rng);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->data.dimension(), 64u);
  EXPECT_EQ(s->data.size(), 605u);
  for (size_t i = 0; i < s->data.size(); ++i) {
    double sum = 0;
    for (size_t d = 0; d < 64; ++d) sum += s->data.point(i)[d];
    ASSERT_NEAR(sum, 1.0, 1e-9) << "point " << i;
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(s->Find("hist_outlier_" + std::to_string(i)).ok());
  }
}

using ScenarioFactory = Result<Scenario> (*)(Rng&);

class ScenarioDeterminismTest
    : public ::testing::TestWithParam<std::pair<const char*, ScenarioFactory>> {
};

TEST_P(ScenarioDeterminismTest, SameSeedSameBytes) {
  Rng rng1(10);
  Rng rng2(10);
  auto a = GetParam().second(rng1);
  auto b = GetParam().second(rng2);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->data.size(), b->data.size());
  ASSERT_EQ(a->data.dimension(), b->data.dimension());
  ASSERT_EQ(a->named, b->named);
  for (size_t i = 0; i < a->data.size(); ++i) {
    for (size_t d = 0; d < a->data.dimension(); ++d) {
      ASSERT_DOUBLE_EQ(a->data.point(i)[d], b->data.point(i)[d])
          << "point " << i << " dim " << d;
    }
    ASSERT_EQ(a->data.label(i), b->data.label(i));
  }
}

Result<Scenario> MakeBlobAdapter(Rng& rng) {
  return scenarios::MakeGaussianBlob(rng, 200);
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, ScenarioDeterminismTest,
    ::testing::Values(
        std::make_pair("ds1", &scenarios::MakeDs1),
        std::make_pair("blob", &MakeBlobAdapter),
        std::make_pair("fig8", &scenarios::MakeFig8Clusters),
        std::make_pair("fig9", &scenarios::MakeFig9Dataset),
        std::make_pair("hockey1", &scenarios::MakeHockeySubspace1),
        std::make_pair("hockey2", &scenarios::MakeHockeySubspace2),
        std::make_pair("soccer", &scenarios::MakeSoccerLike),
        std::make_pair("hist64", &scenarios::Make64DHistograms)),
    [](const auto& info) { return std::string(info.param.first); });

}  // namespace
}  // namespace lofkit
