#include "common/flight_recorder.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace lofkit {
namespace {

QueryStats StatsAt(uint64_t evals, uint64_t nodes, uint64_t leaves) {
  QueryStats stats;
  stats.distance_evals = evals;
  stats.node_visits = nodes;
  stats.leaf_visits = leaves;
  return stats;
}

TEST(QueryFlightRecorderTest, OptionsAreSanitized) {
  QueryFlightRecorder recorder(
      QueryFlightRecorder::Options{/*ring_capacity=*/0, /*top_k=*/0,
                                   /*sample_stride=*/0});
  EXPECT_EQ(recorder.options().ring_capacity, 1u);
  EXPECT_EQ(recorder.options().top_k, 1u);
  EXPECT_EQ(recorder.options().sample_stride, 1u);
}

TEST(QueryFlightRecorderTest, PrepareShardsGrowsIdempotently) {
  QueryFlightRecorder recorder;
  recorder.PrepareShards(2);
  QueryFlightRecorder::Shard* first = recorder.shard(0);
  recorder.PrepareShards(4);
  EXPECT_EQ(recorder.shard_count(), 4u);
  EXPECT_EQ(recorder.shard(0), first);  // pointers stay valid
  recorder.PrepareShards(1);            // never shrinks
  EXPECT_EQ(recorder.shard_count(), 4u);
}

TEST(QueryFlightRecorderTest, StrideGateSamplesEveryNth) {
  QueryFlightRecorder recorder(
      QueryFlightRecorder::Options{/*ring_capacity=*/8, /*top_k=*/4,
                                   /*sample_stride=*/3});
  recorder.PrepareShards(1);
  QueryFlightRecorder::Shard* shard = recorder.shard(0);
  int sampled = 0;
  for (int i = 0; i < 9; ++i) {
    if (shard->ShouldSample()) ++sampled;
  }
  EXPECT_EQ(sampled, 3);  // units 0, 3, 6
}

TEST(QueryFlightRecorderTest, RingWrapsKeepingMostRecent) {
  QueryFlightRecorder recorder(
      QueryFlightRecorder::Options{/*ring_capacity=*/4, /*top_k=*/2,
                                   /*sample_stride=*/1});
  recorder.PrepareShards(1);
  QueryFlightRecorder::Shard* shard = recorder.shard(0);
  const QueryStats zero;
  for (uint64_t i = 0; i < 10; ++i) {
    shard->Record(QueryFlightRecorder::Site::kSweep, "linear_scan",
                  /*first_point=*/static_cast<uint32_t>(i), /*queries=*/1,
                  /*k=*/5, /*wall_ns=*/1000 + i,
                  zero, StatsAt(i + 1, 0, 0));
  }
  const auto report = recorder.Merge();
  ASSERT_EQ(report.recent.size(), 4u);  // ring capacity, not sample count
  // Oldest-to-newest: the last four sampled units, in order.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(report.recent[i].seq, 6 + i);
    EXPECT_EQ(report.recent[i].first_point, 6 + i);
  }
}

TEST(QueryFlightRecorderTest, TopKRetainsSlowestNotLatest) {
  QueryFlightRecorder recorder(
      QueryFlightRecorder::Options{/*ring_capacity=*/4, /*top_k=*/3,
                                   /*sample_stride=*/1});
  recorder.PrepareShards(1);
  QueryFlightRecorder::Shard* shard = recorder.shard(0);
  const QueryStats zero;
  const uint64_t walls[] = {50, 900, 10, 700, 20, 800, 30};
  for (uint64_t i = 0; i < 7; ++i) {
    shard->Record(QueryFlightRecorder::Site::kMaterialize, "kd_tree",
                  /*first_point=*/static_cast<uint32_t>(i), /*queries=*/1,
                  /*k=*/5, walls[i], zero, zero);
  }
  const auto report = recorder.Merge();
  ASSERT_EQ(report.slowest.size(), 3u);
  EXPECT_EQ(report.slowest[0].wall_ns, 900u);
  EXPECT_EQ(report.slowest[1].wall_ns, 800u);
  EXPECT_EQ(report.slowest[2].wall_ns, 700u);
}

TEST(QueryFlightRecorderTest, RecordKeepsCounterDeltasAndBatchSemantics) {
  QueryFlightRecorder recorder;
  recorder.PrepareShards(1);
  QueryFlightRecorder::Shard* shard = recorder.shard(0);
  shard->Record(QueryFlightRecorder::Site::kMaterialize, "grid",
                /*first_point=*/128, /*queries=*/64, /*k=*/20,
                /*wall_ns=*/640000, StatsAt(100, 10, 5),
                StatsAt(400, 40, 25));
  const auto report = recorder.Merge();
  ASSERT_EQ(report.recent.size(), 1u);
  const auto& rec = report.recent[0];
  EXPECT_EQ(rec.distance_evals, 300u);
  EXPECT_EQ(rec.node_visits, 30u);
  EXPECT_EQ(rec.leaf_visits, 20u);
  EXPECT_EQ(rec.queries, 64u);
  ASSERT_EQ(report.sites.size(), 1u);
  // 64 queries at 640000/64 = 10000 ns apiece: the histogram weights the
  // per-query latency by the batch size.
  EXPECT_EQ(report.sites[0].sampled_units, 1u);
  EXPECT_EQ(report.sites[0].sampled_queries, 64u);
  EXPECT_EQ(report.sites[0].latency.total_count, 64u);
  EXPECT_DOUBLE_EQ(report.sites[0].latency.min, 10000.0);
  EXPECT_DOUBLE_EQ(report.sites[0].latency.max, 10000.0);
  EXPECT_DOUBLE_EQ(report.sites[0].latency.Quantile(0.99), 10000.0);
}

// The merged report must not depend on which worker recorded first: two
// recorders fed the same records in different shard interleavings produce
// byte-identical reports.
TEST(QueryFlightRecorderTest, MergeIsDeterministicAcrossFillOrders) {
  const QueryStats zero;
  struct Unit {
    uint32_t shard;
    uint32_t point;
    uint64_t wall;
  };
  std::vector<Unit> units;
  for (uint32_t i = 0; i < 40; ++i) {
    units.push_back(Unit{i % 3, i, 1000 + 97 * ((i * 13) % 17)});
  }

  auto run = [&](bool reversed) {
    QueryFlightRecorder recorder(
        QueryFlightRecorder::Options{/*ring_capacity=*/8, /*top_k=*/5,
                                     /*sample_stride=*/1});
    recorder.PrepareShards(3);
    // Shard-local order must be preserved (each worker's stream is
    // sequential); only the interleaving across shards may differ.
    for (uint32_t shard = 0; shard < 3; ++shard) {
      const uint32_t s = reversed ? 2 - shard : shard;
      for (const Unit& unit : units) {
        if (unit.shard != s) continue;
        recorder.shard(s)->Record(QueryFlightRecorder::Site::kSweep,
                                  "kd_tree", unit.point, 1, 10, unit.wall,
                                  zero, zero);
      }
    }
    return recorder.Merge().ToJson();
  };

  EXPECT_EQ(run(false), run(true));
}

TEST(QueryFlightRecorderTest, SitesStaySeparate) {
  QueryFlightRecorder recorder;
  recorder.PrepareShards(1);
  const QueryStats zero;
  recorder.shard(0)->Record(QueryFlightRecorder::Site::kMaterialize,
                            "kd_tree", 0, 1, 5, 1000, zero, zero);
  recorder.shard(0)->Record(QueryFlightRecorder::Site::kSweep, "kd_tree", 1,
                            1, 5, 2000, zero, zero);
  const auto report = recorder.Merge();
  ASSERT_EQ(report.sites.size(), 2u);
  EXPECT_EQ(report.sites[0].site, QueryFlightRecorder::Site::kMaterialize);
  EXPECT_EQ(report.sites[1].site, QueryFlightRecorder::Site::kSweep);
  EXPECT_EQ(report.sites[0].latency.name,
            "latency.materialize.kd_tree.query_ns");
  EXPECT_EQ(report.sites[1].latency.name, "latency.sweep.kd_tree.query_ns");
}

TEST(QueryFlightRecorderTest, ReportJsonIsStructured) {
  QueryFlightRecorder recorder;
  recorder.PrepareShards(1);
  const QueryStats zero;
  recorder.shard(0)->Record(QueryFlightRecorder::Site::kSweep, "m_tree", 7,
                            1, 3, 12345, zero, StatsAt(9, 2, 1));
  const std::string json = recorder.Merge().ToJson();
  EXPECT_NE(json.find("\"config\""), std::string::npos);
  EXPECT_NE(json.find("\"sites\""), std::string::npos);
  EXPECT_NE(json.find("\"slowest\""), std::string::npos);
  EXPECT_NE(json.find("\"recent\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"engine\": \"m_tree\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_ns\": 12345"), std::string::npos);
}

}  // namespace
}  // namespace lofkit
