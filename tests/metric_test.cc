#include "dataset/metric.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "lof/lof_computer.h"

namespace lofkit {
namespace {

TEST(MetricTest, EuclideanMatchesHandComputation) {
  const double a[2] = {0, 0};
  const double b[2] = {3, 4};
  EXPECT_DOUBLE_EQ(Euclidean().Distance(a, b), 5.0);
}

TEST(MetricTest, ManhattanMatchesHandComputation) {
  const double a[2] = {1, 1};
  const double b[2] = {4, -2};
  EXPECT_DOUBLE_EQ(Manhattan().Distance(a, b), 6.0);
}

TEST(MetricTest, ChebyshevMatchesHandComputation) {
  const double a[2] = {1, 1};
  const double b[2] = {4, -2};
  EXPECT_DOUBLE_EQ(Chebyshev().Distance(a, b), 3.0);
}

TEST(MetricTest, MinkowskiGeneralizesL1AndL2) {
  auto m1 = MinkowskiMetric::Create(1.0);
  auto m2 = MinkowskiMetric::Create(2.0);
  ASSERT_TRUE(m1.ok() && m2.ok());
  const double a[3] = {1, 2, 3};
  const double b[3] = {4, 0, 3};
  EXPECT_NEAR(m1->Distance(a, b), Manhattan().Distance(a, b), 1e-12);
  EXPECT_NEAR(m2->Distance(a, b), Euclidean().Distance(a, b), 1e-12);
}

TEST(MetricTest, MinkowskiRejectsPBelowOne) {
  EXPECT_FALSE(MinkowskiMetric::Create(0.5).ok());
  EXPECT_FALSE(MinkowskiMetric::Create(-1).ok());
  EXPECT_FALSE(MinkowskiMetric::Create(std::nan("")).ok());
}

TEST(MetricTest, WeightedEuclideanScalesDimensions) {
  auto m = WeightedEuclideanMetric::Create({4.0, 1.0});
  ASSERT_TRUE(m.ok());
  const double a[2] = {0, 0};
  const double b[2] = {1, 0};
  const double c[2] = {0, 1};
  EXPECT_DOUBLE_EQ(m->Distance(a, b), 2.0);
  EXPECT_DOUBLE_EQ(m->Distance(a, c), 1.0);
}

TEST(MetricTest, WeightedEuclideanRejectsBadWeights) {
  EXPECT_FALSE(WeightedEuclideanMetric::Create({}).ok());
  EXPECT_FALSE(WeightedEuclideanMetric::Create({1.0, 0.0}).ok());
  EXPECT_FALSE(WeightedEuclideanMetric::Create({-1.0}).ok());
}

TEST(MetricTest, MetricByName) {
  ASSERT_TRUE(MetricByName("euclidean").ok());
  ASSERT_TRUE(MetricByName("manhattan").ok());
  ASSERT_TRUE(MetricByName("chebyshev").ok());
  EXPECT_EQ((*MetricByName("euclidean"))->name(), "euclidean");
  EXPECT_FALSE(MetricByName("hamming").ok());
}

TEST(MetricTest, AngularMatchesHandComputation) {
  const double x[2] = {1, 0};
  const double y[2] = {0, 1};
  const double diag[2] = {1, 1};
  const double scaled[2] = {5, 0};
  EXPECT_NEAR(Angular().Distance(x, y), std::acos(0.0), 1e-12);  // 90 deg
  EXPECT_NEAR(Angular().Distance(x, diag), std::acos(1 / std::sqrt(2.0)),
              1e-12);  // 45 deg
  // Scale invariance: direction is all that matters.
  EXPECT_NEAR(Angular().Distance(x, scaled), 0.0, 1e-12);
}

TEST(MetricTest, AngularSatisfiesMetricAxioms) {
  Rng rng(123);
  std::vector<double> a(4), b(4), c(4);
  for (int trial = 0; trial < 200; ++trial) {
    for (size_t d = 0; d < 4; ++d) {
      a[d] = rng.Uniform(0.01, 1.0);  // positive orthant (histograms)
      b[d] = rng.Uniform(0.01, 1.0);
      c[d] = rng.Uniform(0.01, 1.0);
    }
    const double ab = Angular().Distance(a, b);
    EXPECT_GE(ab, 0.0);
    EXPECT_DOUBLE_EQ(ab, Angular().Distance(b, a));
    EXPECT_LE(ab,
              Angular().Distance(a, c) + Angular().Distance(c, b) + 1e-9);
  }
}

TEST(MetricTest, AngularBoxBoundsAreTriviallyValid) {
  const double q[2] = {1, 0};
  const double lo[2] = {0, 0};
  const double hi[2] = {1, 1};
  EXPECT_DOUBLE_EQ(Angular().MinDistanceToBox(q, lo, hi), 0.0);
  EXPECT_NEAR(Angular().MaxDistanceToBox(q, lo, hi), std::acos(-1.0), 1e-12);
}

TEST(MetricTest, AngularAvailableByName) {
  auto metric = MetricByName("angular");
  ASSERT_TRUE(metric.ok());
  EXPECT_EQ((*metric)->name(), "angular");
}

TEST(MetricTest, LinearScanLofWorksUnderAngularMetric) {
  // End-to-end sanity: LOF under the angular metric flags a direction
  // outlier that Euclidean LOF on normalized data would also see.
  auto ds = Dataset::Create(3);
  ASSERT_TRUE(ds.ok());
  Rng rng(321);
  std::vector<double> p(3);
  for (int i = 0; i < 200; ++i) {
    p = {rng.Uniform(0.8, 1.0), rng.Uniform(0.0, 0.2), rng.Uniform(0.0, 0.2)};
    ASSERT_TRUE(ds->Append(p).ok());
  }
  p = {0.0, 1.0, 0.0};  // orthogonal direction
  ASSERT_TRUE(ds->Append(p).ok());
  auto scores = LofComputer::ComputeFromScratch(*ds, Angular(), 10);
  ASSERT_TRUE(scores.ok());
  auto ranked = RankDescending(scores->lof, 1);
  EXPECT_EQ(ranked[0].index, 200u);
}

// ---------------------------------------------------------------------------
// Property sweep: metric axioms and box-bound correctness, for each metric.
// ---------------------------------------------------------------------------

class MetricPropertyTest : public ::testing::TestWithParam<const Metric*> {};

TEST_P(MetricPropertyTest, AxiomsHoldOnRandomPoints) {
  const Metric& metric = *GetParam();
  Rng rng(42);
  const size_t dim = 3;  // the weighted metric instance is 3-dimensional
  std::vector<double> a(dim), b(dim), c(dim);
  for (int trial = 0; trial < 200; ++trial) {
    for (size_t d = 0; d < dim; ++d) {
      a[d] = rng.Uniform(-10, 10);
      b[d] = rng.Uniform(-10, 10);
      c[d] = rng.Uniform(-10, 10);
    }
    const double ab = metric.Distance(a, b);
    const double ba = metric.Distance(b, a);
    const double ac = metric.Distance(a, c);
    const double cb = metric.Distance(c, b);
    EXPECT_GE(ab, 0.0);
    EXPECT_DOUBLE_EQ(metric.Distance(a, a), 0.0);
    EXPECT_DOUBLE_EQ(ab, ba);                  // symmetry
    EXPECT_LE(ab, ac + cb + 1e-9);             // triangle inequality
  }
}

TEST_P(MetricPropertyTest, BoxBoundsEncloseSampledDistances) {
  const Metric& metric = *GetParam();
  Rng rng(77);
  const size_t dim = 3;
  std::vector<double> q(dim), lo(dim), hi(dim), p(dim);
  for (int trial = 0; trial < 100; ++trial) {
    for (size_t d = 0; d < dim; ++d) {
      q[d] = rng.Uniform(-10, 10);
      const double x = rng.Uniform(-10, 10);
      const double y = rng.Uniform(-10, 10);
      lo[d] = std::min(x, y);
      hi[d] = std::max(x, y);
    }
    const double min_bound = metric.MinDistanceToBox(q, lo, hi);
    const double max_bound = metric.MaxDistanceToBox(q, lo, hi);
    EXPECT_LE(min_bound, max_bound);
    for (int sample = 0; sample < 50; ++sample) {
      for (size_t d = 0; d < dim; ++d) p[d] = rng.Uniform(lo[d], hi[d]);
      const double dist = metric.Distance(q, p);
      EXPECT_GE(dist, min_bound - 1e-9);
      EXPECT_LE(dist, max_bound + 1e-9);
    }
  }
}

TEST_P(MetricPropertyTest, CoordinateDistanceIsLowerBound) {
  const Metric& metric = *GetParam();
  Rng rng(99);
  const size_t dim = 3;
  std::vector<double> a(dim), b(dim);
  for (int trial = 0; trial < 200; ++trial) {
    for (size_t d = 0; d < dim; ++d) {
      a[d] = rng.Uniform(-10, 10);
      b[d] = rng.Uniform(-10, 10);
    }
    const double dist = metric.Distance(a, b);
    for (size_t d = 0; d < dim; ++d) {
      EXPECT_LE(metric.CoordinateDistance(d, a[d] - b[d]), dist + 1e-9);
    }
  }
}

const Metric* MakeWeighted() {
  static auto* metric = new WeightedEuclideanMetric(
      *WeightedEuclideanMetric::Create({0.25, 2.0, 1.5}));
  return metric;
}

const Metric* MakeMinkowski3() {
  static auto* metric = new MinkowskiMetric(*MinkowskiMetric::Create(3.0));
  return metric;
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricPropertyTest,
                         ::testing::Values(&Euclidean(), &Manhattan(),
                                           &Chebyshev(), MakeWeighted(),
                                           MakeMinkowski3()),
                         [](const auto& info) {
                           return std::string(info.param->name()) +
                                  (info.param == MakeMinkowski3() ? "3" : "");
                         });

}  // namespace
}  // namespace lofkit
