file(REMOVE_RECURSE
  "liblofkit.a"
)
