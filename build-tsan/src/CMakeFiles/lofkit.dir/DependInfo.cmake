
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/db_outlier.cc" "src/CMakeFiles/lofkit.dir/baselines/db_outlier.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/baselines/db_outlier.cc.o.d"
  "/root/repo/src/baselines/knn_outlier.cc" "src/CMakeFiles/lofkit.dir/baselines/knn_outlier.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/baselines/knn_outlier.cc.o.d"
  "/root/repo/src/clustering/dbscan.cc" "src/CMakeFiles/lofkit.dir/clustering/dbscan.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/clustering/dbscan.cc.o.d"
  "/root/repo/src/clustering/optics.cc" "src/CMakeFiles/lofkit.dir/clustering/optics.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/clustering/optics.cc.o.d"
  "/root/repo/src/clustering/optics_lof_bridge.cc" "src/CMakeFiles/lofkit.dir/clustering/optics_lof_bridge.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/clustering/optics_lof_bridge.cc.o.d"
  "/root/repo/src/common/csv.cc" "src/CMakeFiles/lofkit.dir/common/csv.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/common/csv.cc.o.d"
  "/root/repo/src/common/flags.cc" "src/CMakeFiles/lofkit.dir/common/flags.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/common/flags.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/lofkit.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/common/logging.cc.o.d"
  "/root/repo/src/common/parallel.cc" "src/CMakeFiles/lofkit.dir/common/parallel.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/common/parallel.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/lofkit.dir/common/random.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/lofkit.dir/common/status.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/lofkit.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/common/string_util.cc.o.d"
  "/root/repo/src/dataset/dataset.cc" "src/CMakeFiles/lofkit.dir/dataset/dataset.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/dataset/dataset.cc.o.d"
  "/root/repo/src/dataset/generators.cc" "src/CMakeFiles/lofkit.dir/dataset/generators.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/dataset/generators.cc.o.d"
  "/root/repo/src/dataset/loaders.cc" "src/CMakeFiles/lofkit.dir/dataset/loaders.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/dataset/loaders.cc.o.d"
  "/root/repo/src/dataset/metric.cc" "src/CMakeFiles/lofkit.dir/dataset/metric.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/dataset/metric.cc.o.d"
  "/root/repo/src/dataset/scenarios.cc" "src/CMakeFiles/lofkit.dir/dataset/scenarios.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/dataset/scenarios.cc.o.d"
  "/root/repo/src/index/grid_index.cc" "src/CMakeFiles/lofkit.dir/index/grid_index.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/index/grid_index.cc.o.d"
  "/root/repo/src/index/incremental_materializer.cc" "src/CMakeFiles/lofkit.dir/index/incremental_materializer.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/index/incremental_materializer.cc.o.d"
  "/root/repo/src/index/index_factory.cc" "src/CMakeFiles/lofkit.dir/index/index_factory.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/index/index_factory.cc.o.d"
  "/root/repo/src/index/kd_tree_index.cc" "src/CMakeFiles/lofkit.dir/index/kd_tree_index.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/index/kd_tree_index.cc.o.d"
  "/root/repo/src/index/knn_index.cc" "src/CMakeFiles/lofkit.dir/index/knn_index.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/index/knn_index.cc.o.d"
  "/root/repo/src/index/linear_scan_index.cc" "src/CMakeFiles/lofkit.dir/index/linear_scan_index.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/index/linear_scan_index.cc.o.d"
  "/root/repo/src/index/m_tree_index.cc" "src/CMakeFiles/lofkit.dir/index/m_tree_index.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/index/m_tree_index.cc.o.d"
  "/root/repo/src/index/neighborhood_materializer.cc" "src/CMakeFiles/lofkit.dir/index/neighborhood_materializer.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/index/neighborhood_materializer.cc.o.d"
  "/root/repo/src/index/rstar_tree_index.cc" "src/CMakeFiles/lofkit.dir/index/rstar_tree_index.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/index/rstar_tree_index.cc.o.d"
  "/root/repo/src/index/va_file_index.cc" "src/CMakeFiles/lofkit.dir/index/va_file_index.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/index/va_file_index.cc.o.d"
  "/root/repo/src/lof/evaluation.cc" "src/CMakeFiles/lofkit.dir/lof/evaluation.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/lof/evaluation.cc.o.d"
  "/root/repo/src/lof/explain.cc" "src/CMakeFiles/lofkit.dir/lof/explain.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/lof/explain.cc.o.d"
  "/root/repo/src/lof/lof_bounds.cc" "src/CMakeFiles/lofkit.dir/lof/lof_bounds.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/lof/lof_bounds.cc.o.d"
  "/root/repo/src/lof/lof_computer.cc" "src/CMakeFiles/lofkit.dir/lof/lof_computer.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/lof/lof_computer.cc.o.d"
  "/root/repo/src/lof/lof_sweep.cc" "src/CMakeFiles/lofkit.dir/lof/lof_sweep.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/lof/lof_sweep.cc.o.d"
  "/root/repo/src/lof/subspace.cc" "src/CMakeFiles/lofkit.dir/lof/subspace.cc.o" "gcc" "src/CMakeFiles/lofkit.dir/lof/subspace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
