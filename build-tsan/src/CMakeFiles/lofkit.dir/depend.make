# Empty dependencies file for lofkit.
# This may be replaced when dependencies are built.
