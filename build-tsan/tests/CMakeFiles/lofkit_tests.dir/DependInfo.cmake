
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/consistency_fuzz_test.cc" "tests/CMakeFiles/lofkit_tests.dir/consistency_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/lofkit_tests.dir/consistency_fuzz_test.cc.o.d"
  "/root/repo/tests/csv_test.cc" "tests/CMakeFiles/lofkit_tests.dir/csv_test.cc.o" "gcc" "tests/CMakeFiles/lofkit_tests.dir/csv_test.cc.o.d"
  "/root/repo/tests/dataset_test.cc" "tests/CMakeFiles/lofkit_tests.dir/dataset_test.cc.o" "gcc" "tests/CMakeFiles/lofkit_tests.dir/dataset_test.cc.o.d"
  "/root/repo/tests/db_outlier_test.cc" "tests/CMakeFiles/lofkit_tests.dir/db_outlier_test.cc.o" "gcc" "tests/CMakeFiles/lofkit_tests.dir/db_outlier_test.cc.o.d"
  "/root/repo/tests/dbscan_test.cc" "tests/CMakeFiles/lofkit_tests.dir/dbscan_test.cc.o" "gcc" "tests/CMakeFiles/lofkit_tests.dir/dbscan_test.cc.o.d"
  "/root/repo/tests/evaluation_test.cc" "tests/CMakeFiles/lofkit_tests.dir/evaluation_test.cc.o" "gcc" "tests/CMakeFiles/lofkit_tests.dir/evaluation_test.cc.o.d"
  "/root/repo/tests/explain_test.cc" "tests/CMakeFiles/lofkit_tests.dir/explain_test.cc.o" "gcc" "tests/CMakeFiles/lofkit_tests.dir/explain_test.cc.o.d"
  "/root/repo/tests/flags_test.cc" "tests/CMakeFiles/lofkit_tests.dir/flags_test.cc.o" "gcc" "tests/CMakeFiles/lofkit_tests.dir/flags_test.cc.o.d"
  "/root/repo/tests/generators_test.cc" "tests/CMakeFiles/lofkit_tests.dir/generators_test.cc.o" "gcc" "tests/CMakeFiles/lofkit_tests.dir/generators_test.cc.o.d"
  "/root/repo/tests/incremental_test.cc" "tests/CMakeFiles/lofkit_tests.dir/incremental_test.cc.o" "gcc" "tests/CMakeFiles/lofkit_tests.dir/incremental_test.cc.o.d"
  "/root/repo/tests/index_test.cc" "tests/CMakeFiles/lofkit_tests.dir/index_test.cc.o" "gcc" "tests/CMakeFiles/lofkit_tests.dir/index_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/lofkit_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/lofkit_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/knn_outlier_test.cc" "tests/CMakeFiles/lofkit_tests.dir/knn_outlier_test.cc.o" "gcc" "tests/CMakeFiles/lofkit_tests.dir/knn_outlier_test.cc.o.d"
  "/root/repo/tests/loaders_test.cc" "tests/CMakeFiles/lofkit_tests.dir/loaders_test.cc.o" "gcc" "tests/CMakeFiles/lofkit_tests.dir/loaders_test.cc.o.d"
  "/root/repo/tests/lof_bounds_test.cc" "tests/CMakeFiles/lofkit_tests.dir/lof_bounds_test.cc.o" "gcc" "tests/CMakeFiles/lofkit_tests.dir/lof_bounds_test.cc.o.d"
  "/root/repo/tests/lof_computer_test.cc" "tests/CMakeFiles/lofkit_tests.dir/lof_computer_test.cc.o" "gcc" "tests/CMakeFiles/lofkit_tests.dir/lof_computer_test.cc.o.d"
  "/root/repo/tests/lof_sweep_test.cc" "tests/CMakeFiles/lofkit_tests.dir/lof_sweep_test.cc.o" "gcc" "tests/CMakeFiles/lofkit_tests.dir/lof_sweep_test.cc.o.d"
  "/root/repo/tests/logging_test.cc" "tests/CMakeFiles/lofkit_tests.dir/logging_test.cc.o" "gcc" "tests/CMakeFiles/lofkit_tests.dir/logging_test.cc.o.d"
  "/root/repo/tests/materializer_test.cc" "tests/CMakeFiles/lofkit_tests.dir/materializer_test.cc.o" "gcc" "tests/CMakeFiles/lofkit_tests.dir/materializer_test.cc.o.d"
  "/root/repo/tests/metric_test.cc" "tests/CMakeFiles/lofkit_tests.dir/metric_test.cc.o" "gcc" "tests/CMakeFiles/lofkit_tests.dir/metric_test.cc.o.d"
  "/root/repo/tests/optics_test.cc" "tests/CMakeFiles/lofkit_tests.dir/optics_test.cc.o" "gcc" "tests/CMakeFiles/lofkit_tests.dir/optics_test.cc.o.d"
  "/root/repo/tests/parallel_test.cc" "tests/CMakeFiles/lofkit_tests.dir/parallel_test.cc.o" "gcc" "tests/CMakeFiles/lofkit_tests.dir/parallel_test.cc.o.d"
  "/root/repo/tests/pipeline_property_test.cc" "tests/CMakeFiles/lofkit_tests.dir/pipeline_property_test.cc.o" "gcc" "tests/CMakeFiles/lofkit_tests.dir/pipeline_property_test.cc.o.d"
  "/root/repo/tests/random_test.cc" "tests/CMakeFiles/lofkit_tests.dir/random_test.cc.o" "gcc" "tests/CMakeFiles/lofkit_tests.dir/random_test.cc.o.d"
  "/root/repo/tests/reference_oracle_test.cc" "tests/CMakeFiles/lofkit_tests.dir/reference_oracle_test.cc.o" "gcc" "tests/CMakeFiles/lofkit_tests.dir/reference_oracle_test.cc.o.d"
  "/root/repo/tests/scenarios_test.cc" "tests/CMakeFiles/lofkit_tests.dir/scenarios_test.cc.o" "gcc" "tests/CMakeFiles/lofkit_tests.dir/scenarios_test.cc.o.d"
  "/root/repo/tests/status_test.cc" "tests/CMakeFiles/lofkit_tests.dir/status_test.cc.o" "gcc" "tests/CMakeFiles/lofkit_tests.dir/status_test.cc.o.d"
  "/root/repo/tests/string_util_test.cc" "tests/CMakeFiles/lofkit_tests.dir/string_util_test.cc.o" "gcc" "tests/CMakeFiles/lofkit_tests.dir/string_util_test.cc.o.d"
  "/root/repo/tests/subspace_test.cc" "tests/CMakeFiles/lofkit_tests.dir/subspace_test.cc.o" "gcc" "tests/CMakeFiles/lofkit_tests.dir/subspace_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/lofkit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
