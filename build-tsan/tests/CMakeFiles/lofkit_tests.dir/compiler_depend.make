# Empty compiler generated dependencies file for lofkit_tests.
# This may be replaced when dependencies are built.
