# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-tsan/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_help "/root/repo/build-tsan/tools/lofkit_cli" "--help")
set_tests_properties(cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(datagen_list "/root/repo/build-tsan/tools/lofkit_datagen" "--list")
set_tests_properties(datagen_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_pipeline "/usr/bin/cmake" "-DDATAGEN=/root/repo/build-tsan/tools/lofkit_datagen" "-DCLI=/root/repo/build-tsan/tools/lofkit_cli" "-DWORKDIR=/root/repo/build-tsan/tools" "-P" "/root/repo/tools/cli_pipeline_test.cmake")
set_tests_properties(cli_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
