# Empty dependencies file for lofkit_cli.
# This may be replaced when dependencies are built.
