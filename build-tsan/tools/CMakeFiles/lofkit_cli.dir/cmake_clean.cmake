file(REMOVE_RECURSE
  "CMakeFiles/lofkit_cli.dir/lofkit_cli.cc.o"
  "CMakeFiles/lofkit_cli.dir/lofkit_cli.cc.o.d"
  "lofkit_cli"
  "lofkit_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lofkit_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
