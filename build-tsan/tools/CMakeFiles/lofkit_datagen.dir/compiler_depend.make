# Empty compiler generated dependencies file for lofkit_datagen.
# This may be replaced when dependencies are built.
