file(REMOVE_RECURSE
  "CMakeFiles/lofkit_datagen.dir/lofkit_datagen.cc.o"
  "CMakeFiles/lofkit_datagen.dir/lofkit_datagen.cc.o.d"
  "lofkit_datagen"
  "lofkit_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lofkit_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
