file(REMOVE_RECURSE
  "CMakeFiles/optics_handshake.dir/optics_handshake.cpp.o"
  "CMakeFiles/optics_handshake.dir/optics_handshake.cpp.o.d"
  "optics_handshake"
  "optics_handshake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optics_handshake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
