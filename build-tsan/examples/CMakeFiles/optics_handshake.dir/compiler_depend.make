# Empty compiler generated dependencies file for optics_handshake.
# This may be replaced when dependencies are built.
