file(REMOVE_RECURSE
  "CMakeFiles/index_comparison.dir/index_comparison.cpp.o"
  "CMakeFiles/index_comparison.dir/index_comparison.cpp.o.d"
  "index_comparison"
  "index_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
