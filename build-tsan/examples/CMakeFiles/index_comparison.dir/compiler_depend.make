# Empty compiler generated dependencies file for index_comparison.
# This may be replaced when dependencies are built.
