file(REMOVE_RECURSE
  "CMakeFiles/minpts_tuning.dir/minpts_tuning.cpp.o"
  "CMakeFiles/minpts_tuning.dir/minpts_tuning.cpp.o.d"
  "minpts_tuning"
  "minpts_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minpts_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
