# Empty compiler generated dependencies file for minpts_tuning.
# This may be replaced when dependencies are built.
