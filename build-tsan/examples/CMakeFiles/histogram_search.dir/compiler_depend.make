# Empty compiler generated dependencies file for histogram_search.
# This may be replaced when dependencies are built.
