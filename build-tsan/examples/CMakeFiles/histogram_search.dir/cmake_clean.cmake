file(REMOVE_RECURSE
  "CMakeFiles/histogram_search.dir/histogram_search.cpp.o"
  "CMakeFiles/histogram_search.dir/histogram_search.cpp.o.d"
  "histogram_search"
  "histogram_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histogram_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
