# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-tsan/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-tsan/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fraud_detection "/root/repo/build-tsan/examples/fraud_detection")
set_tests_properties(example_fraud_detection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sports_analytics "/root/repo/build-tsan/examples/sports_analytics")
set_tests_properties(example_sports_analytics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_minpts_tuning "/root/repo/build-tsan/examples/minpts_tuning")
set_tests_properties(example_minpts_tuning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_index_comparison "/root/repo/build-tsan/examples/index_comparison")
set_tests_properties(example_index_comparison PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_optics_handshake "/root/repo/build-tsan/examples/optics_handshake")
set_tests_properties(example_optics_handshake PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_streaming_monitor "/root/repo/build-tsan/examples/streaming_monitor")
set_tests_properties(example_streaming_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_histogram_search "/root/repo/build-tsan/examples/histogram_search")
set_tests_properties(example_histogram_search PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
