# Empty dependencies file for bench_64d_histograms.
# This may be replaced when dependencies are built.
