file(REMOVE_RECURSE
  "CMakeFiles/bench_64d_histograms.dir/bench_64d_histograms.cc.o"
  "CMakeFiles/bench_64d_histograms.dir/bench_64d_histograms.cc.o.d"
  "bench_64d_histograms"
  "bench_64d_histograms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_64d_histograms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
