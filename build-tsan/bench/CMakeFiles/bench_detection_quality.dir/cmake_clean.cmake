file(REMOVE_RECURSE
  "CMakeFiles/bench_detection_quality.dir/bench_detection_quality.cc.o"
  "CMakeFiles/bench_detection_quality.dir/bench_detection_quality.cc.o.d"
  "bench_detection_quality"
  "bench_detection_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_detection_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
