# Empty compiler generated dependencies file for bench_detection_quality.
# This may be replaced when dependencies are built.
