file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_gaussian.dir/bench_fig7_gaussian.cc.o"
  "CMakeFiles/bench_fig7_gaussian.dir/bench_fig7_gaussian.cc.o.d"
  "bench_fig7_gaussian"
  "bench_fig7_gaussian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_gaussian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
