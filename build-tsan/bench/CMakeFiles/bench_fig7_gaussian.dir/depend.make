# Empty dependencies file for bench_fig7_gaussian.
# This may be replaced when dependencies are built.
