# Empty dependencies file for bench_fig10_materialization.
# This may be replaced when dependencies are built.
