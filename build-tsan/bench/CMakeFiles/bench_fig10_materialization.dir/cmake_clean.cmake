file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_materialization.dir/bench_fig10_materialization.cc.o"
  "CMakeFiles/bench_fig10_materialization.dir/bench_fig10_materialization.cc.o.d"
  "bench_fig10_materialization"
  "bench_fig10_materialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_materialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
