# Empty dependencies file for bench_micro_lof.
# This may be replaced when dependencies are built.
