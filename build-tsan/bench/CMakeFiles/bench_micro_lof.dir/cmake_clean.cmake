file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_lof.dir/bench_micro_lof.cc.o"
  "CMakeFiles/bench_micro_lof.dir/bench_micro_lof.cc.o.d"
  "bench_micro_lof"
  "bench_micro_lof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_lof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
