file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_span.dir/bench_fig5_span.cc.o"
  "CMakeFiles/bench_fig5_span.dir/bench_fig5_span.cc.o.d"
  "bench_fig5_span"
  "bench_fig5_span.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_span.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
