# Empty compiler generated dependencies file for bench_micro_knn.
# This may be replaced when dependencies are built.
