file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_knn.dir/bench_micro_knn.cc.o"
  "CMakeFiles/bench_micro_knn.dir/bench_micro_knn.cc.o.d"
  "bench_micro_knn"
  "bench_micro_knn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
