file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_clusters.dir/bench_fig8_clusters.cc.o"
  "CMakeFiles/bench_fig8_clusters.dir/bench_fig8_clusters.cc.o.d"
  "bench_fig8_clusters"
  "bench_fig8_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
