# Empty dependencies file for bench_fig8_clusters.
# This may be replaced when dependencies are built.
