# Empty compiler generated dependencies file for bench_fig9_synthetic.
# This may be replaced when dependencies are built.
