file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_synthetic.dir/bench_fig9_synthetic.cc.o"
  "CMakeFiles/bench_fig9_synthetic.dir/bench_fig9_synthetic.cc.o.d"
  "bench_fig9_synthetic"
  "bench_fig9_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
