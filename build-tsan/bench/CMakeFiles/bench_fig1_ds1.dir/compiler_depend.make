# Empty compiler generated dependencies file for bench_fig1_ds1.
# This may be replaced when dependencies are built.
