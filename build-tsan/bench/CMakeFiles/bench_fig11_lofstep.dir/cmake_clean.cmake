file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_lofstep.dir/bench_fig11_lofstep.cc.o"
  "CMakeFiles/bench_fig11_lofstep.dir/bench_fig11_lofstep.cc.o.d"
  "bench_fig11_lofstep"
  "bench_fig11_lofstep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_lofstep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
