file(REMOVE_RECURSE
  "CMakeFiles/bench_hockey.dir/bench_hockey.cc.o"
  "CMakeFiles/bench_hockey.dir/bench_hockey.cc.o.d"
  "bench_hockey"
  "bench_hockey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hockey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
