# Empty dependencies file for bench_hockey.
# This may be replaced when dependencies are built.
