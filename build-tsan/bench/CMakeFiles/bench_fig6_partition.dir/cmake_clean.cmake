file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_partition.dir/bench_fig6_partition.cc.o"
  "CMakeFiles/bench_fig6_partition.dir/bench_fig6_partition.cc.o.d"
  "bench_fig6_partition"
  "bench_fig6_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
