# Empty dependencies file for bench_fig6_partition.
# This may be replaced when dependencies are built.
