file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_soccer.dir/bench_table3_soccer.cc.o"
  "CMakeFiles/bench_table3_soccer.dir/bench_table3_soccer.cc.o.d"
  "bench_table3_soccer"
  "bench_table3_soccer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_soccer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
