// lofkit_datagen — export lofkit's paper-scenario workloads as CSV.
//
// Useful for driving lofkit_cli (or any other tool) with exactly the
// datasets of the paper's figures and experiments, and for plotting them
// externally. All scenarios are seed-deterministic.
//
// Examples:
//   lofkit_datagen --scenario ds1 --output ds1.csv
//   lofkit_datagen --scenario fig9 --seed 7 --output fig9.csv
//   lofkit_datagen --scenario gaussians --dim 5 --points 10000 \
//       --clusters 10 --output perf.csv
//   lofkit_datagen --list

#include <cstdio>
#include <string>

#include "common/csv.h"
#include "common/flags.h"
#include "dataset/generators.h"
#include "dataset/scenarios.h"

using namespace lofkit;  // NOLINT

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

const char* const kScenarios[] = {
    "ds1",       // figure 1 / section 3
    "blob",      // figure 7 Gaussian cluster
    "fig8",      // S1/S2/S3 clusters
    "fig9",      // section 7.1 synthetic dataset
    "hockey1",   // section 7.2, (points, plus-minus, penalty minutes)
    "hockey2",   // section 7.2, (games, goals, shooting pct)
    "soccer",    // table 3
    "hist64",    // 64-d histogram stand-in
    "gaussians", // section 7.4 performance workload (use --dim/--points/...)
};

Result<scenarios::Scenario> MakeScenario(const std::string& name, Rng& rng,
                                         const FlagParser& flags) {
  if (name == "ds1") return scenarios::MakeDs1(rng);
  if (name == "blob") {
    return scenarios::MakeGaussianBlob(rng, flags.GetU64("points"));
  }
  if (name == "fig8") return scenarios::MakeFig8Clusters(rng);
  if (name == "fig9") return scenarios::MakeFig9Dataset(rng);
  if (name == "hockey1") return scenarios::MakeHockeySubspace1(rng);
  if (name == "hockey2") return scenarios::MakeHockeySubspace2(rng);
  if (name == "soccer") return scenarios::MakeSoccerLike(rng);
  if (name == "hist64") return scenarios::Make64DHistograms(rng);
  if (name == "gaussians") {
    LOFKIT_ASSIGN_OR_RETURN(
        Dataset data,
        generators::MakePerformanceWorkload(rng, flags.GetU64("dim"),
                                            flags.GetU64("points"),
                                            flags.GetU64("clusters")));
    return scenarios::Scenario{std::move(data), {}};
  }
  return Status::NotFound("unknown scenario: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("scenario", "", "which dataset to generate (see --list)");
  flags.AddString("output", "", "output CSV path (default: stdout)");
  flags.AddU64("seed", 42, "RNG seed (same seed -> same data)");
  flags.AddU64("points", 1000, "point count (blob / gaussians)");
  flags.AddU64("dim", 2, "dimension (gaussians)");
  flags.AddU64("clusters", 10, "cluster count (gaussians)");
  flags.AddBool("named-points", false,
                "print the scenario's named points to stderr");
  flags.AddBool("list", false, "list available scenarios");
  flags.AddBool("help", false, "show this help");

  if (Status status = flags.Parse(argc - 1, argv + 1); !status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Help().c_str());
    return 2;
  }
  if (flags.GetBool("help")) {
    std::printf("usage: %s --scenario NAME [flags]\n%s", argv[0],
                flags.Help().c_str());
    return 0;
  }
  if (flags.GetBool("list")) {
    for (const char* name : kScenarios) std::printf("%s\n", name);
    return 0;
  }
  if (flags.GetString("scenario").empty()) {
    std::fprintf(stderr, "usage: %s --scenario NAME [flags]\n%s", argv[0],
                 flags.Help().c_str());
    return 2;
  }

  Rng rng(flags.GetU64("seed"));
  auto scenario = MakeScenario(flags.GetString("scenario"), rng, flags);
  if (!scenario.ok()) return Fail(scenario.status());
  const Dataset& data = scenario->data;

  CsvTable table;
  for (size_t d = 0; d < data.dimension(); ++d) {
    table.header.push_back("x" + std::to_string(d));
  }
  for (size_t i = 0; i < data.size(); ++i) {
    auto p = data.point(i);
    table.rows.emplace_back(p.begin(), p.end());
  }

  if (flags.GetString("output").empty()) {
    std::fputs(WriteCsv(table).c_str(), stdout);
  } else if (Status status = WriteCsvFile(flags.GetString("output"), table);
             !status.ok()) {
    return Fail(status);
  }
  std::fprintf(stderr, "generated %zu points, dimension %zu\n", data.size(),
               data.dimension());
  if (flags.GetBool("named-points")) {
    for (const auto& [name, index] : scenario->named) {
      std::fprintf(stderr, "  %-16s -> point %zu\n", name.c_str(), index);
    }
  }
  return 0;
}
