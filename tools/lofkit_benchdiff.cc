// lofkit_benchdiff — compare two BENCH_*.json sidecars and fail on
// regressions, the CI perf gate behind the bench jobs.
//
// Rows are matched by case name, metrics by key; a candidate value that
// exceeds baseline * (1 + threshold%) is a regression, as is a baseline
// case or metric that the candidate no longer reports (coverage loss). New
// candidate-only cases are reported but never fail the diff. Manifest
// blocks (compiler, hardware concurrency, smoke mode, dataset parameters)
// are compared first: differences are warnings, because numbers measured
// under different conditions rarely mean what a threshold assumes.
//
// Exit codes: 0 = no regressions, 1 = regressions (or unreadable input),
// 2 = usage errors.
//
// Examples:
//   lofkit_benchdiff --baseline bench/baselines/BENCH_fig11.json
//       --candidate BENCH_fig11.json
//   lofkit_benchdiff --baseline old.json --candidate new.json
//       --metrics distance_evals,node_visits --threshold-pct 5
//   lofkit_benchdiff --baseline old.json --candidate new.json
//       --thresholds seconds=25,distance_evals=1

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/minijson.h"
#include "common/result.h"
#include "common/string_util.h"

using namespace lofkit;  // NOLINT

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

std::vector<std::string> SplitString(const std::string& input, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= input.size()) {
    const size_t end = input.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(input.substr(start));
      break;
    }
    parts.push_back(input.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

struct ThresholdRule {
  std::string key_substring;
  double pct = 0.0;
};

// Parses "seconds=25,distance_evals=1" into per-metric threshold rules.
Result<std::vector<ThresholdRule>> ParseThresholds(const std::string& spec) {
  std::vector<ThresholdRule> rules;
  for (const std::string& part : SplitString(spec, ',')) {
    if (part.empty()) continue;
    const size_t eq = part.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument(
          "--thresholds entries must look like metric=pct, got: " + part);
    }
    char* end = nullptr;
    const double pct = std::strtod(part.c_str() + eq + 1, &end);
    if (end != part.c_str() + part.size() || !(pct >= 0.0)) {
      return Status::InvalidArgument(
          "--thresholds percentage must be a number >= 0, got: " + part);
    }
    rules.push_back(ThresholdRule{part.substr(0, eq), pct});
  }
  return rules;
}

// A metric participates in the diff when its key contains any of the
// requested substrings ("seconds" matches build_seconds and sweep_seconds).
bool MetricSelected(const std::string& key,
                    const std::vector<std::string>& selectors) {
  for (const std::string& sel : selectors) {
    if (!sel.empty() && key.find(sel) != std::string::npos) return true;
  }
  return false;
}

double ThresholdFor(const std::string& key,
                    const std::vector<ThresholdRule>& rules,
                    double default_pct) {
  for (const ThresholdRule& rule : rules) {
    if (key.find(rule.key_substring) != std::string::npos) return rule.pct;
  }
  return default_pct;
}

// Loads a sidecar and checks the shape benchdiff relies on.
Result<JsonValue> LoadSidecar(const std::string& path) {
  LOFKIT_ASSIGN_OR_RETURN(JsonValue doc, ParseJsonFile(path));
  if (!doc.is_object() || doc.Find("rows") == nullptr ||
      !doc.Find("rows")->is_array()) {
    return Status::InvalidArgument(path +
                                   " is not a BENCH sidecar (no rows array)");
  }
  return doc;
}

std::string ManifestEntryToString(const JsonValue& value) {
  if (value.is_string()) return value.str;
  if (value.is_number()) return StrFormat("%.17g", value.num);
  if (value.is_bool()) return value.b ? "true" : "false";
  return "<non-scalar>";
}

// Warns (stderr) about manifest keys that differ or exist on one side
// only. Returns the number of warnings.
size_t DiffManifests(const JsonValue& base, const JsonValue& cand) {
  const JsonValue* base_manifest = base.Find("manifest");
  const JsonValue* cand_manifest = cand.Find("manifest");
  size_t warnings = 0;
  if (base_manifest == nullptr || cand_manifest == nullptr) {
    if (base_manifest != cand_manifest) {
      std::fprintf(stderr,
                   "warning: only the %s sidecar carries a run manifest; "
                   "comparability unknown\n",
                   base_manifest != nullptr ? "baseline" : "candidate");
      ++warnings;
    }
    return warnings;
  }
  for (const auto& [key, value] : base_manifest->object) {
    const JsonValue* other = cand_manifest->Find(key);
    if (other == nullptr) {
      std::fprintf(stderr,
                   "warning: manifest key '%s' missing from the candidate\n",
                   key.c_str());
      ++warnings;
      continue;
    }
    const std::string base_str = ManifestEntryToString(value);
    const std::string cand_str = ManifestEntryToString(*other);
    if (base_str != cand_str) {
      std::fprintf(stderr,
                   "warning: manifest '%s' differs: baseline=%s "
                   "candidate=%s\n",
                   key.c_str(), base_str.c_str(), cand_str.c_str());
      ++warnings;
    }
  }
  for (const auto& [key, value] : cand_manifest->object) {
    if (base_manifest->Find(key) == nullptr) {
      std::fprintf(stderr,
                   "warning: manifest key '%s' missing from the baseline\n",
                   key.c_str());
      ++warnings;
    }
  }
  return warnings;
}

const JsonValue* FindRow(const JsonValue& doc, const std::string& case_name) {
  for (const JsonValue& row : doc.Find("rows")->array) {
    const JsonValue* name = row.Find("case");
    if (name != nullptr && name->is_string() && name->str == case_name) {
      return &row;
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("baseline", "",
                  "baseline BENCH_*.json sidecar (required)");
  flags.AddString("candidate", "",
                  "candidate BENCH_*.json sidecar to gate (required)");
  flags.AddString("metrics", "seconds",
                  "comma-separated key substrings selecting which metrics "
                  "to compare (a key participates when it contains any of "
                  "them)");
  flags.AddDouble("threshold-pct", 10.0,
                  "default allowed increase in percent; a candidate value "
                  "above baseline * (1 + pct/100) is a regression");
  flags.AddString("thresholds", "",
                  "per-metric overrides as key=pct pairs, e.g. "
                  "seconds=25,distance_evals=1 (first matching substring "
                  "wins)");
  flags.AddBool("help", false, "show this help");

  if (Status status = flags.Parse(argc - 1, argv + 1); !status.ok()) {
    std::fprintf(stderr,
                 "%s\n\nusage: %s --baseline old.json --candidate new.json "
                 "[flags]\n%s",
                 status.ToString().c_str(), argv[0], flags.Help().c_str());
    return 2;
  }
  if (flags.GetBool("help") || flags.GetString("baseline").empty() ||
      flags.GetString("candidate").empty()) {
    std::printf("usage: %s --baseline old.json --candidate new.json "
                "[flags]\n%s",
                argv[0], flags.Help().c_str());
    return flags.GetBool("help") ? 0 : 2;
  }
  const double default_pct = flags.GetDouble("threshold-pct");
  if (!(default_pct >= 0.0)) {
    return Fail(Status::InvalidArgument("--threshold-pct must be >= 0"));
  }
  auto rules_or = ParseThresholds(flags.GetString("thresholds"));
  if (!rules_or.ok()) return Fail(rules_or.status());
  const std::vector<ThresholdRule>& rules = *rules_or;
  const std::vector<std::string> selectors =
      SplitString(flags.GetString("metrics"), ',');

  auto base_or = LoadSidecar(flags.GetString("baseline"));
  if (!base_or.ok()) return Fail(base_or.status());
  auto cand_or = LoadSidecar(flags.GetString("candidate"));
  if (!cand_or.ok()) return Fail(cand_or.status());
  const JsonValue& base = *base_or;
  const JsonValue& cand = *cand_or;

  DiffManifests(base, cand);

  size_t compared = 0;
  size_t regressions = 0;
  std::printf("%-40s %-24s %14s %14s %9s %9s\n", "case", "metric", "baseline",
              "candidate", "delta%", "allowed%");
  for (const JsonValue& base_row : base.Find("rows")->array) {
    const JsonValue* name = base_row.Find("case");
    if (name == nullptr || !name->is_string()) continue;
    const JsonValue* cand_row = FindRow(cand, name->str);
    const JsonValue* base_metrics = base_row.Find("metrics");
    if (base_metrics == nullptr || !base_metrics->is_object()) continue;
    if (cand_row == nullptr) {
      // A case the candidate stopped reporting is a gate failure, not a
      // pass-by-omission.
      std::printf("%-40s %-24s %14s %14s %9s %9s  REGRESSION (case missing)\n",
                  name->str.c_str(), "-", "-", "-", "-", "-");
      ++regressions;
      continue;
    }
    const JsonValue* cand_metrics = cand_row->Find("metrics");
    for (const auto& [key, base_value] : base_metrics->object) {
      if (!MetricSelected(key, selectors)) continue;
      if (!base_value.is_number()) continue;  // null = non-finite, skip
      const JsonValue* cand_value =
          cand_metrics != nullptr ? cand_metrics->Find(key) : nullptr;
      const double pct = ThresholdFor(key, rules, default_pct);
      ++compared;
      if (cand_value == nullptr || !cand_value->is_number()) {
        std::printf(
            "%-40s %-24s %14.6g %14s %9s %9.3g  REGRESSION (metric missing)\n",
            name->str.c_str(), key.c_str(), base_value.num, "-", "-", pct);
        ++regressions;
        continue;
      }
      const double delta_pct =
          base_value.num != 0.0
              ? 100.0 * (cand_value->num - base_value.num) / base_value.num
              : (cand_value->num == 0.0 ? 0.0
                                        : std::numeric_limits<double>::infinity());
      const bool regressed =
          cand_value->num > base_value.num * (1.0 + pct / 100.0);
      std::printf("%-40s %-24s %14.6g %14.6g %+9.2f %9.3g%s\n",
                  name->str.c_str(), key.c_str(), base_value.num,
                  cand_value->num, delta_pct, pct,
                  regressed ? "  REGRESSION" : "");
      if (regressed) ++regressions;
    }
  }
  for (const JsonValue& cand_row : cand.Find("rows")->array) {
    const JsonValue* name = cand_row.Find("case");
    if (name != nullptr && name->is_string() &&
        FindRow(base, name->str) == nullptr) {
      std::printf("%-40s (new case, not gated)\n", name->str.c_str());
    }
  }

  if (compared == 0) {
    // An empty comparison would make the gate vacuous — fail loudly so a
    // renamed metric cannot silently disable it.
    return Fail(Status::InvalidArgument(
        "no metrics matched --metrics in the baseline; the gate compared "
        "nothing"));
  }
  std::fprintf(stderr, "compared %zu metrics, %zu regression%s\n", compared,
               regressions, regressions == 1 ? "" : "s");
  return regressions == 0 ? 0 : 1;
}
