# lofkit_benchdiff CLI conventions and gate semantics: --help exits 0, an
# unknown flag exits 2 listing the valid flags, a clean comparison exits 0,
# and a planted regression exits 1.

# --help: exit 0, usage on stdout.
execute_process(
  COMMAND ${BENCHDIFF} --help
  OUTPUT_VARIABLE help_output
  RESULT_VARIABLE help_result)
if(NOT help_result EQUAL 0)
  message(FATAL_ERROR "--help must exit 0, got ${help_result}")
endif()
string(FIND "${help_output}" "--baseline" found_baseline)
string(FIND "${help_output}" "--threshold-pct" found_threshold)
if(found_baseline EQUAL -1 OR found_threshold EQUAL -1)
  message(FATAL_ERROR "--help must list the flags:\n${help_output}")
endif()

# Unknown flag: exit 2, error plus the flag list on stderr.
execute_process(
  COMMAND ${BENCHDIFF} --no-such-flag
  ERROR_VARIABLE unknown_stderr
  RESULT_VARIABLE unknown_result)
if(NOT unknown_result EQUAL 2)
  message(FATAL_ERROR "unknown flag must exit 2, got ${unknown_result}")
endif()
string(FIND "${unknown_stderr}" "unknown flag" found_unknown)
string(FIND "${unknown_stderr}" "--candidate" found_flags)
if(found_unknown EQUAL -1 OR found_flags EQUAL -1)
  message(FATAL_ERROR
          "unknown-flag error must name the flag and list valid flags:\n"
          "${unknown_stderr}")
endif()

# Missing required flags: exit 2.
execute_process(
  COMMAND ${BENCHDIFF}
  OUTPUT_QUIET
  RESULT_VARIABLE noargs_result)
if(NOT noargs_result EQUAL 2)
  message(FATAL_ERROR "missing --baseline/--candidate must exit 2, got "
          "${noargs_result}")
endif()

# Gate semantics on synthetic sidecars.
set(base ${WORKDIR}/benchdiff_base.json)
set(same ${WORKDIR}/benchdiff_same.json)
set(worse ${WORKDIR}/benchdiff_worse.json)
file(WRITE ${base}
     "{\"bench\": \"t\", \"manifest\": {\"threads\": 1},"
     " \"rows\": [{\"case\": \"a\", \"metrics\":"
     " {\"seconds\": 1.0, \"distance_evals\": 100}}]}")
file(WRITE ${same}
     "{\"bench\": \"t\", \"manifest\": {\"threads\": 1},"
     " \"rows\": [{\"case\": \"a\", \"metrics\":"
     " {\"seconds\": 1.05, \"distance_evals\": 100}}]}")
file(WRITE ${worse}
     "{\"bench\": \"t\", \"manifest\": {\"threads\": 2},"
     " \"rows\": [{\"case\": \"a\", \"metrics\":"
     " {\"seconds\": 2.0, \"distance_evals\": 100}}]}")

execute_process(
  COMMAND ${BENCHDIFF} --baseline ${base} --candidate ${same}
  OUTPUT_QUIET
  RESULT_VARIABLE same_result)
if(NOT same_result EQUAL 0)
  message(FATAL_ERROR "5% growth under the 10% default must pass, got "
          "${same_result}")
endif()

execute_process(
  COMMAND ${BENCHDIFF} --baseline ${base} --candidate ${worse}
  OUTPUT_VARIABLE worse_output
  ERROR_VARIABLE worse_stderr
  RESULT_VARIABLE worse_result)
if(NOT worse_result EQUAL 1)
  message(FATAL_ERROR "a 2x regression must exit 1, got ${worse_result}")
endif()
string(FIND "${worse_output}" "REGRESSION" found_regression)
if(found_regression EQUAL -1)
  message(FATAL_ERROR "regression lines must be marked:\n${worse_output}")
endif()
string(FIND "${worse_stderr}" "manifest 'threads' differs" found_manifest)
if(found_manifest EQUAL -1)
  message(FATAL_ERROR "manifest drift must warn:\n${worse_stderr}")
endif()

# Per-metric thresholds override the default.
execute_process(
  COMMAND ${BENCHDIFF} --baseline ${base} --candidate ${worse}
          --thresholds seconds=150
  OUTPUT_QUIET ERROR_QUIET
  RESULT_VARIABLE lax_result)
if(NOT lax_result EQUAL 0)
  message(FATAL_ERROR "a 150% allowance must pass a 2x value, got "
          "${lax_result}")
endif()

# A selector matching nothing must fail loudly, not pass vacuously.
execute_process(
  COMMAND ${BENCHDIFF} --baseline ${base} --candidate ${same}
          --metrics no_such_metric
  OUTPUT_QUIET ERROR_QUIET
  RESULT_VARIABLE vacuous_result)
if(vacuous_result EQUAL 0)
  message(FATAL_ERROR "an empty comparison must not exit 0")
endif()

file(REMOVE ${base} ${same} ${worse})
