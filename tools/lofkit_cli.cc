// lofkit_cli — score a CSV dataset with a local-outlier scorer from the
// command line.
//
// The tool drives the full paper pipeline: load -> (optionally normalize)
// -> choose a kNN engine -> materialize neighborhoods (step 1, optionally
// persisted/reloaded) -> score sweep over a MinPts range (step 2, LOF by
// default; --scorer picks LDOF, the KDE density scorer, or the
// kNN-distance / DB baselines on the same substrate) -> rank by the
// section-6.2 aggregate -> print the top outliers, optionally with
// per-dimension explanations, and optionally dump all scores as CSV.
//
// Examples:
//   lofkit_cli --input points.csv --top 10
//   lofkit_cli --input points.csv --top 10 --scorer kde
//   lofkit_cli --input big.csv --top 10 --prune
//   lofkit_cli --input games.csv --has-header --label-column 0
//       --normalize --minpts-lb 30 --minpts-ub 50 --explain
//   lofkit_cli --input big.csv --save-materialization m.bin
//   lofkit_cli --input big.csv --load-materialization m.bin --top 20
//   lofkit_cli --input points.csv --stats-json stats.json
//       --trace-json trace.json
//   lofkit_cli --input big.csv --metrics-text metrics.prom
//       --stats-interval-ms 1000 --flight-json flight.json

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>

#include "common/cancellation.h"
#include "common/csv.h"
#include "common/flags.h"
#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "common/metrics_publisher.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "dataset/loaders.h"
#include "dataset/metric.h"
#include "index/index_factory.h"
#include "index/rkd_forest_index.h"
#include "lof/explain.h"
#include "lof/local_scorer.h"
#include "lof/scorer_sweep.h"
#include "lof/spill.h"
#include "lof/subspace.h"
#include "lof/lof_sweep.h"

using namespace lofkit;  // NOLINT

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Result<LofAggregation> AggregationByName(const std::string& name) {
  if (name == "max") return LofAggregation::kMax;
  if (name == "min") return LofAggregation::kMin;
  if (name == "mean") return LofAggregation::kMean;
  return Status::InvalidArgument("unknown aggregation: " + name +
                                 " (use max, min or mean)");
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("input", "", "input CSV file of numeric columns (required)");
  flags.AddBool("has-header", false, "first CSV line is a header");
  flags.AddU64("label-column", 0, "0-based column used as point label");
  flags.AddBool("use-label-column", false,
                "treat --label-column as labels, not coordinates");
  flags.AddBool("normalize", false,
                "rescale every dimension to [0,1] before computing "
                "distances (recommended for mixed units)");
  flags.AddString("metric", "euclidean",
                  "distance: euclidean, manhattan, chebyshev or angular");
  flags.AddString("index", "auto",
                  "knn engine: auto, linear_scan, grid, kd_tree, "
                  "rstar_tree, va_file, m_tree or rkd_forest "
                  "(approximate; see the --ann-* flags)");
  flags.AddU64("ann-trees", 8,
               "rkd_forest: number of randomized trees in the forest");
  flags.AddU64("ann-checks", 256,
               "rkd_forest: candidate budget per kNN query (0 = unbounded "
               "= exact); lower is faster, higher is more accurate — see "
               "docs/tuning_guide.md for the measured recall dial");
  flags.AddDouble("ann-eps", 0.0,
                  "rkd_forest: branch-pruning slack; a branch is skipped "
                  "when it cannot improve the k-distance by more than a "
                  "(1+eps) factor (0 = admissible best-bin-first)");
  flags.AddU64("ann-seed", RkdForestIndex::kDefaultSeed,
               "rkd_forest: seed for the randomized splits; equal seeds "
               "give bit-identical forests and scores on every thread "
               "count");
  flags.AddString("scorer", "lof",
                  "outlier scorer on the shared neighborhood substrate: "
                  "lof, ldof, kde, knn_distance or db_outlier");
  flags.AddDouble("kde-bandwidth-scale", 1.0,
                  "kde scorer: per-neighbor bandwidth h = scale * "
                  "k-distance (must be > 0; larger smooths more)");
  flags.AddDouble("db-pct", 95.0,
                  "db_outlier scorer: the pct of DB(pct, dmin)");
  flags.AddDouble("db-dmin", 0.0,
                  "db_outlier scorer: the dmin radius (0 = derive 2x the "
                  "median MinPts-distance from the data)");
  flags.AddU64("minpts-lb", 10, "lower bound of the MinPts range");
  flags.AddU64("minpts-ub", 20, "upper bound of the MinPts range");
  flags.AddString("aggregation", "max",
                  "score aggregation over the range: max, min or mean");
  flags.AddBool("distinct", false,
                "use k-distinct-distance neighborhoods (duplicate-safe)");
  flags.AddU64("threads", 0,
               "worker threads for materialization and the LOF sweep "
               "(0 = one per hardware thread, 1 = sequential; the scores "
               "are identical for every value)");
  flags.AddU64("top", 10, "number of outliers to print (0 = all)");
  flags.AddBool("prune", false,
                "prune-first top-N ranking (paper section 5): certify "
                "inliers with LOF bound estimates and run the full "
                "evaluation only on the survivors; needs --top >= 1, "
                "ranking identical to the full sweep");
  flags.AddBool("explain", false,
                "print the dominant deviating attribute per outlier");
  flags.AddString("explain-json", "",
                  "write per-dimension explanations of the printed "
                  "outliers as JSON (non-finite scores serialize as null, "
                  "so the file always parses)");
  flags.AddBool("subspaces", false,
                "search minimal outlying attribute subspaces per printed "
                "outlier (exhaustive up to 2 dims; d <= 30)");
  flags.AddString("output", "", "write per-point aggregated scores as CSV");
  flags.AddString("save-materialization", "",
                  "persist the neighborhood database (step 1) to this file");
  flags.AddString("load-materialization", "",
                  "reuse a previously saved neighborhood database");
  flags.AddBool("map-materialization", false,
                "serve --load-materialization zero-copy via mmap instead of "
                "copying it into RAM (container-format files only; scores "
                "are bit-identical either way)");
  flags.AddString("spill-dir", "",
                  "directory for the memory-budget spill rung (empty = "
                  "disabled): when the projected neighborhood database "
                  "exceeds --memory-budget-mb, stream it into a temporary "
                  "file here and serve it via mmap instead of degrading to "
                  "the re-query path; identical scores, and --prune stays "
                  "available");
  flags.AddU64("deadline-ms", 0,
               "abort the run with deadline_exceeded after this many "
               "milliseconds (0 = no deadline); checked cooperatively at "
               "chunk boundaries, so long runs stop within milliseconds");
  flags.AddU64("memory-budget-mb", 0,
               "memory budget for the neighborhood database in MiB (0 = "
               "unlimited); when the projected size exceeds it the run "
               "spills to disk (with --spill-dir) or degrades to the slower "
               "bounded-memory re-query path, with identical scores either "
               "way");
  flags.AddString("stats-json", "",
                  "write run metrics (query-cost counters, phase seconds, "
                  "score/neighborhood histograms) as JSON to this file");
  flags.AddString("trace-json", "",
                  "write pipeline trace spans as Chrome trace-event JSON "
                  "(chrome://tracing, Perfetto) to this file");
  flags.AddString("metrics-text", "",
                  "write run metrics in the OpenMetrics text exposition "
                  "(the Prometheus scrape format) to this file");
  flags.AddString("flight-json", "",
                  "write the flight recorder's slow-query report (per-site "
                  "latency quantiles, the slowest sampled queries, the "
                  "recent-query rings) as JSON to this file");
  flags.AddU64("flight-sample-stride", 1,
               "flight recorder: time every Nth query unit (1 = all); "
               "skipped units pay no clock reads or counter snapshots");
  flags.AddU64("stats-interval-ms", 0,
               "rewrite --metrics-text with a progress heartbeat every N "
               "milliseconds while the run is in flight (0 = write only "
               "the final snapshot; requires --metrics-text)");
  flags.AddBool("help", false, "show this help");

  if (Status status = flags.Parse(argc - 1, argv + 1); !status.ok()) {
    std::fprintf(stderr, "%s\n\nusage: %s --input data.csv [flags]\n%s",
                 status.ToString().c_str(), argv[0], flags.Help().c_str());
    return 2;
  }
  if (flags.GetBool("help") || flags.GetString("input").empty()) {
    std::printf("usage: %s --input data.csv [flags]\n%s", argv[0],
                flags.Help().c_str());
    return flags.GetBool("help") ? 0 : 2;
  }

  // Observability: every sink is armed only when an output flag wants it,
  // so the default run carries no counting, timing or tracing overhead.
  // The latency quantiles in --stats-json/--metrics-text come from the
  // flight recorder, so those flags arm it too (and timing needs the
  // counters, so the flight recorder arms query_stats).
  const std::string stats_path = flags.GetString("stats-json");
  const std::string trace_path = flags.GetString("trace-json");
  const std::string metrics_text_path = flags.GetString("metrics-text");
  const std::string flight_path = flags.GetString("flight-json");
  const uint64_t stats_interval_ms = flags.GetU64("stats-interval-ms");
  if (stats_interval_ms > 0 && metrics_text_path.empty()) {
    return Fail(Status::InvalidArgument(
        "--stats-interval-ms needs --metrics-text: the periodic heartbeat "
        "is published as OpenMetrics text to that file"));
  }
  const bool want_stats = !stats_path.empty() || !metrics_text_path.empty();
  TraceRecorder trace;
  QueryStats materialize_stats;
  QueryFlightRecorder::Options flight_options;
  flight_options.sample_stride = flags.GetU64("flight-sample-stride");
  QueryFlightRecorder flight(flight_options);
  ProgressTracker progress;
  PipelineObserver observer;
  if (want_stats || !flight_path.empty()) {
    observer.query_stats = &materialize_stats;
    observer.flight = &flight;
  }
  if (!trace_path.empty()) observer.trace = &trace;
  observer.progress = &progress;

  // Heartbeat publisher: while armed, rewrites --metrics-text atomically
  // every interval with liveness gauges; the full snapshot replaces the
  // heartbeat once the run completes.
  Stopwatch run_watch;
  progress.SetPhase("load");
  std::optional<SnapshotPublisher> publisher;
  if (stats_interval_ms > 0) {
    publisher.emplace(
        metrics_text_path, std::chrono::milliseconds(stats_interval_ms),
        [&progress, &run_watch]() {
          MetricsRegistry heartbeat;
          heartbeat.Set(heartbeat.Gauge("progress.fraction"),
                        progress.FractionComplete());
          heartbeat.Set(heartbeat.Gauge("progress.units_done"),
                        static_cast<double>(progress.units_done()));
          heartbeat.Set(heartbeat.Gauge("progress.units_total"),
                        static_cast<double>(progress.units_total()));
          heartbeat.Set(heartbeat.Gauge(
                            StrFormat("progress.phase.%s", progress.phase())),
                        1.0);
          heartbeat.Set(heartbeat.Gauge("pipeline.uptime_seconds"),
                        run_watch.ElapsedSeconds());
          heartbeat.Set(heartbeat.Gauge("pipeline.peak_rss_bytes"),
                        static_cast<double>(PeakRssBytes()));
          return heartbeat.Aggregate().ToOpenMetrics();
        });
  }

  // Load.
  TraceRecorder::Span load_span(observer.trace, "load");
  DatasetLoadOptions load_options;
  load_options.csv.has_header = flags.GetBool("has-header");
  if (flags.GetBool("use-label-column")) {
    load_options.label_column =
        static_cast<int>(flags.GetU64("label-column"));
  }
  auto data_or = DatasetFromCsvFile(flags.GetString("input"), load_options);
  if (!data_or.ok()) return Fail(data_or.status());
  Dataset data = std::move(data_or).value();
  const Dataset* working = &data;
  std::optional<Dataset> normalized;
  if (flags.GetBool("normalize")) {
    normalized.emplace(data.NormalizedToUnitBox());
    working = &*normalized;
  }
  load_span.End();
  std::fprintf(stderr, "loaded %zu points of dimension %zu\n", data.size(),
               data.dimension());

  auto metric_or = MetricByName(flags.GetString("metric"));
  if (!metric_or.ok()) return Fail(metric_or.status());
  const Metric& metric = **metric_or;

  const size_t lb = flags.GetU64("minpts-lb");
  const size_t ub = flags.GetU64("minpts-ub");
  const size_t threads = flags.GetU64("threads");

  // Approximate-engine knobs. They only take effect with
  // --index rkd_forest; `approximate` records whether the dial actually
  // left exactness (checks=0 eps=0 is plain best-bin-first).
  AnnIndexOptions ann;
  ann.trees = flags.GetU64("ann-trees");
  ann.seed = flags.GetU64("ann-seed");
  ann.search.checks = flags.GetU64("ann-checks");
  ann.search.eps = flags.GetDouble("ann-eps");
  const bool approximate =
      flags.GetString("index") == "rkd_forest" &&
      (ann.search.checks != 0 || ann.search.eps > 0.0);
  if (flags.GetBool("prune") && approximate) {
    return Fail(Status::InvalidArgument(
        "--prune requires exact neighborhoods: the section-5 bound "
        "certificates are unsound over approximate kNN results; drop "
        "--prune, use an exact engine, or set --ann-checks 0 --ann-eps 0"));
  }

  // Scorer selection. LOF keeps its dedicated sweep entry points (which
  // the prune-first path is specific to); every other scorer runs the
  // generic ScorerSweep over the same substrate.
  auto scorer_or = CreateScorerByName(flags.GetString("scorer"));
  if (!scorer_or.ok()) return Fail(scorer_or.status());
  const std::unique_ptr<LocalScorer>& scorer = *scorer_or;
  const std::string scorer_name(scorer->name());
  const bool is_lof = scorer->kind() == ScorerKind::kLof;
  if (flags.GetBool("prune") && !is_lof) {
    return Fail(Status::InvalidArgument(
        "--prune is specific to the LOF scorer: the section-5 bound "
        "certificates bound LOF values, not " + scorer_name +
        " scores; drop --prune or use --scorer lof"));
  }

  // Robustness knobs: a wall-clock deadline for the whole pipeline and a
  // memory budget for M. An unset deadline keeps the token empty, so the
  // hot loops pay only a null-pointer test.
  const uint64_t deadline_ms = flags.GetU64("deadline-ms");
  const size_t memory_budget_bytes =
      static_cast<size_t>(flags.GetU64("memory-budget-mb")) << 20;
  std::optional<StopSource> stop_source;
  StopToken stop;
  if (deadline_ms > 0) {
    stop_source.emplace(
        StopSource::AfterTimeout(std::chrono::milliseconds(deadline_ms)));
    stop = stop_source->token();
  }

  // Step 1: materialize (or reload, or — under a too-small budget — skip
  // materialization entirely and run the sweep on the re-query path).
  Stopwatch watch;
  std::unique_ptr<NeighborhoodMaterializer> m;
  std::unique_ptr<KnnIndex> index;
  bool degraded_to_requery = false;
  bool spilled_to_disk = false;
  const size_t projected_bytes =
      NeighborhoodMaterializer::ProjectedBytes(working->size(), ub);
  if (!flags.GetString("load-materialization").empty()) {
    TraceRecorder::Span span(observer.trace, "load_materialization");
    const bool map = flags.GetBool("map-materialization");
    auto loaded =
        map ? NeighborhoodMaterializer::MapFromFile(
                  flags.GetString("load-materialization"), working)
            : NeighborhoodMaterializer::LoadFromFile(
                  flags.GetString("load-materialization"), working);
    if (!loaded.ok()) return Fail(loaded.status());
    m = std::make_unique<NeighborhoodMaterializer>(std::move(loaded).value());
    span.End();
    std::fprintf(stderr, "%s materialization (k_max=%zu) in %.3fs\n",
                 map ? "mapped" : "reloaded", m->k_max(),
                 watch.ElapsedSeconds());
  } else {
    progress.SetPhase("index_build");
    if (flags.GetString("index") == "auto") {
      index = CreateIndex(RecommendIndexKind(working->dimension()));
    } else {
      auto by_name = CreateIndexByName(flags.GetString("index"), ann);
      if (!by_name.ok()) return Fail(by_name.status());
      index = std::move(by_name).value();
    }
    {
      TraceRecorder::Span span(observer.trace, "index_build");
      if (Status status = index->Build(*working, metric); !status.ok()) {
        return Fail(status);
      }
    }
    if (memory_budget_bytes != 0 && projected_bytes > memory_budget_bytes) {
      // The degradation ladder: spill M to disk and keep going when
      // --spill-dir names a directory, else fall back to the re-query
      // path. Both rungs produce bit-identical scores.
      const std::string spill_dir = flags.GetString("spill-dir");
      if (!spill_dir.empty()) {
        progress.SetPhase("materialize");
        progress.SetTotal(working->size());
        std::fprintf(stderr,
                     "projected neighborhood database (%zu bytes) exceeds "
                     "the memory budget (%zu bytes); spilling to disk under "
                     "'%s'\n",
                     projected_bytes, memory_budget_bytes, spill_dir.c_str());
        auto spilled = internal_lof::SpillMaterialize(
            *working, *index, ub, threads, flags.GetBool("distinct"),
            spill_dir, observer, stop);
        if (spilled.ok()) {
          spilled_to_disk = true;
          m = std::make_unique<NeighborhoodMaterializer>(
              std::move(spilled).value());
          std::fprintf(stderr,
                       "spilled %zu neighborhoods to disk (%s index, "
                       "mmap-served) in %.3fs\n",
                       m->size(), index->name().data(),
                       watch.ElapsedSeconds());
        } else if (spilled.status().code() == StatusCode::kCancelled ||
                   spilled.status().code() ==
                       StatusCode::kDeadlineExceeded ||
                   flags.GetBool("distinct")) {
          // Distinct mode has no re-query rung below this one.
          return Fail(spilled.status());
        } else {
          std::fprintf(stderr,
                       "spill to disk failed (%s); degrading to the "
                       "re-query path\n",
                       spilled.status().ToString().c_str());
        }
      }
      if (m == nullptr) {
        if (flags.GetBool("distinct")) {
          return Fail(Status::ResourceExhausted(
              "the neighborhood database exceeds --memory-budget-mb and "
              "--distinct has no re-query fallback; raise the budget or "
              "set --spill-dir"));
        }
        degraded_to_requery = true;
        std::fprintf(stderr,
                     "projected neighborhood database (%zu bytes) exceeds "
                     "the memory budget (%zu bytes); degrading to the "
                     "re-query path (same scores, more query work)\n",
                     projected_bytes, memory_budget_bytes);
      }
    } else {
      progress.SetPhase("materialize");
      progress.SetTotal(working->size());
      auto built = NeighborhoodMaterializer::MaterializeParallel(
          *working, *index, ub, threads, flags.GetBool("distinct"), observer,
          stop, memory_budget_bytes);
      if (!built.ok()) return Fail(built.status());
      m = std::make_unique<NeighborhoodMaterializer>(
          std::move(built).value());
      std::fprintf(stderr,
                   "materialized %zu neighborhoods (%s index) in %.3fs\n",
                   m->size(), index->name().data(), watch.ElapsedSeconds());
    }
  }
  const double materialize_seconds = watch.ElapsedSeconds();
  if (!flags.GetString("save-materialization").empty()) {
    if (m == nullptr) {
      std::fprintf(stderr,
                   "--save-materialization skipped: no neighborhood "
                   "database was built on the re-query path\n");
    } else if (Status status =
                   m->SaveToFile(flags.GetString("save-materialization"));
               !status.ok()) {
      return Fail(status);
    }
  }

  // Step 2: sweep and rank.
  auto aggregation = AggregationByName(flags.GetString("aggregation"));
  if (!aggregation.ok()) return Fail(aggregation.status());
  const size_t top_n = flags.GetU64("top");
  bool prune = flags.GetBool("prune");
  if (prune && top_n == 0) {
    return Fail(Status::InvalidArgument(
        "--prune needs --top >= 1: pruning discards against the top-N "
        "threshold, which an unbounded ranking does not have"));
  }
  if (prune && degraded_to_requery) {
    // The re-query path has no materialization for the bound stage to
    // read; the full evaluation produces identical ranking bits.
    prune = false;
    std::fprintf(stderr,
                 "--prune skipped: the memory budget degraded the run to "
                 "the re-query path, which has no neighborhood database to "
                 "compute bounds from\n");
  }
  watch.Reset();
  progress.SetPhase("sweep");
  // Progress units accumulate across phases: the sweep adds n units per
  // MinPts step on top of whatever materialization already contributed.
  const size_t sweep_steps = ub >= lb ? ub - lb + 1 : 0;
  progress.SetTotal(progress.units_total() +
                    working->size() * sweep_steps);
  TraceRecorder::Span sweep_span(observer.trace, "sweep");
  std::vector<double> aggregated;
  std::vector<ScorerPhase> phases;
  std::vector<double> step_seconds;
  LofSweepResult::PruneSummary prune_summary;
  if (is_lof) {
    // LOF keeps its dedicated entry points so the prune-first path (and
    // its summary) stays available; Run/RunRequery are themselves thin
    // adapters over the generic ScorerSweep.
    auto sweep = [&]() -> Result<LofSweepResult> {
      if (degraded_to_requery) {
        return LofSweep::RunRequery(*working, *index, lb, ub, *aggregation,
                                    threads, observer, stop);
      }
      if (prune) {
        LofSweep::PruneOptions prune_options;
        prune_options.top_n = top_n;
        return LofSweep::RunPruned(*m, lb, ub, prune_options, *aggregation,
                                   threads, observer, stop);
      }
      return LofSweep::Run(*m, lb, ub, *aggregation,
                           /*keep_per_min_pts=*/false, threads, observer,
                           stop);
    }();
    if (!sweep.ok()) return Fail(sweep.status());
    aggregated = std::move(sweep->aggregated);
    phases = {{"k_distance", sweep->phase_times.k_distance_seconds},
              {"lrd", sweep->phase_times.lrd_seconds},
              {"lof", sweep->phase_times.lof_seconds}};
    step_seconds = std::move(sweep->step_seconds);
    prune_summary = sweep->prune;
  } else {
    LocalScorerOptions scorer_options;
    scorer_options.threads = threads;
    scorer_options.observer = observer;
    scorer_options.stop = stop;
    scorer_options.kde_bandwidth_scale =
        flags.GetDouble("kde-bandwidth-scale");
    scorer_options.db_pct = flags.GetDouble("db-pct");
    scorer_options.db_dmin = flags.GetDouble("db-dmin");
    auto sweep = [&]() -> Result<ScorerSweepResult> {
      if (degraded_to_requery) {
        LOFKIT_ASSIGN_OR_RETURN(
            DensitySubstrate substrate,
            DensitySubstrate::OverIndex(*working, *index, &metric));
        return ScorerSweep::Run(substrate, *scorer, lb, ub, *aggregation,
                                /*keep_per_min_pts=*/false, scorer_options);
      }
      LOFKIT_ASSIGN_OR_RETURN(
          DensitySubstrate substrate,
          DensitySubstrate::OverMaterialization(*m, working, &metric));
      return ScorerSweep::Run(substrate, *scorer, lb, ub, *aggregation,
                              /*keep_per_min_pts=*/false, scorer_options);
    }();
    if (!sweep.ok()) return Fail(sweep.status());
    aggregated = std::move(sweep->aggregated);
    phases = std::move(sweep->phases);
    step_seconds = std::move(sweep->step_seconds);
  }
  sweep_span.End();
  if (is_lof) {
    std::fprintf(stderr, "computed LOF for MinPts in [%zu, %zu] in %.3fs\n",
                 lb, ub, watch.ElapsedSeconds());
  } else {
    std::fprintf(stderr,
                 "computed %s scores for MinPts in [%zu, %zu] in %.3fs\n",
                 scorer_name.c_str(), lb, ub, watch.ElapsedSeconds());
  }
  if (prune_summary.applied) {
    std::fprintf(stderr,
                 "prune stage: %zu of %zu points survived the bound "
                 "threshold %.4f (%.1f%%); %zu LOF evaluations avoided\n",
                 prune_summary.survivors, prune_summary.total_points,
                 prune_summary.threshold,
                 100.0 * prune_summary.survivor_fraction(),
                 prune_summary.pruned_evaluations);
  }
  // Per-phase breakdown, in the scorer's own phase vocabulary (each phase
  // is summed over the MinPts steps, so they read like CPU seconds when
  // the sweep ran in parallel).
  std::string phase_line =
      StrFormat("phase seconds: materialize=%.3f", materialize_seconds);
  for (const ScorerPhase& phase : phases) {
    phase_line += StrFormat(" %s=%.3f", phase.name.c_str(), phase.seconds);
  }
  std::fprintf(stderr, "%s\n", phase_line.c_str());

  const std::string explain_json_path = flags.GetString("explain-json");
  if ((flags.GetBool("explain") || !explain_json_path.empty()) &&
      degraded_to_requery) {
    std::fprintf(stderr,
                 "--explain skipped: explanations need the materialized "
                 "neighborhood database, which the memory budget ruled "
                 "out\n");
  }
  progress.SetPhase("rank");
  TraceRecorder::Span rank_span(observer.trace, "rank");
  auto ranked = RankDescending(aggregated, top_n);
  rank_span.End();
  std::vector<std::string> explanation_json;
  std::printf("%-6s %-10s %-10s %s\n", "rank", "point", "score", "label");
  for (size_t i = 0; i < ranked.size(); ++i) {
    std::printf("%-6zu %-10u %-10.4f %s", i + 1, ranked[i].index,
                ranked[i].score, data.label(ranked[i].index).c_str());
    if ((flags.GetBool("explain") || !explain_json_path.empty()) &&
        m != nullptr) {
      auto explanation =
          ExplainOutlier(*working, *m, ranked[i].index, lb);
      if (explanation.ok()) {
        if (flags.GetBool("explain")) {
          const size_t dim = explanation->ranked_dimensions[0];
          std::printf("  [dim %zu: %.0f%% of deviation]", dim,
                      100.0 * explanation->contribution[dim]);
        }
        if (!explain_json_path.empty()) {
          explanation_json.push_back(ExplanationToJson(
              *explanation, ranked[i].index, ranked[i].score));
        }
      }
    }
    if (flags.GetBool("subspaces")) {
      auto subspaces = FindOutlyingSubspaces(
          *working, ranked[i].index,
          {.min_pts = lb, .max_dimensions = 2, .lof_threshold = 1.5,
           .normalize = true});
      if (subspaces.ok() && !subspaces->empty()) {
        std::printf("  [outlying in:");
        for (size_t s = 0; s < std::min<size_t>(3, subspaces->size()); ++s) {
          std::printf(" {");
          for (size_t d = 0; d < (*subspaces)[s].dimensions.size(); ++d) {
            std::printf("%s%zu", d ? "," : "",
                        (*subspaces)[s].dimensions[d]);
          }
          std::printf("}");
        }
        std::printf("]");
      }
    }
    std::printf("\n");
  }

  if (!explain_json_path.empty() && m != nullptr) {
    std::ofstream out(explain_json_path);
    if (!out) {
      return Fail(Status::IoError("cannot open explanation output file: " +
                                  explain_json_path));
    }
    out << "[\n";
    for (size_t i = 0; i < explanation_json.size(); ++i) {
      out << "  " << explanation_json[i]
          << (i + 1 < explanation_json.size() ? ",\n" : "\n");
    }
    out << "]\n";
    std::fprintf(stderr, "wrote %zu explanations to %s\n",
                 explanation_json.size(), explain_json_path.c_str());
  }

  if (!flags.GetString("output").empty()) {
    CsvTable table;
    table.header = {"point", "score"};
    for (size_t i = 0; i < aggregated.size(); ++i) {
      table.rows.push_back(
          {static_cast<double>(i), aggregated[i]});
    }
    if (Status status = WriteCsvFile(flags.GetString("output"), table);
        !status.ok()) {
      return Fail(status);
    }
    std::fprintf(stderr, "wrote scores to %s\n",
                 flags.GetString("output").c_str());
  }

  // The flight recorder's deterministic fold feeds both the slow-query
  // report and the latency histograms spliced into the stats snapshot.
  QueryFlightRecorder::Report flight_report;
  if (observer.flight != nullptr) flight_report = flight.Merge();

  if (want_stats) {
    MetricsRegistry registry;
    registry.AddQueryStats("materialize", materialize_stats);
    registry.Set(registry.Gauge("dataset.points"),
                 static_cast<double>(data.size()));
    registry.Set(registry.Gauge("dataset.dimension"),
                 static_cast<double>(data.dimension()));
    registry.Set(registry.Gauge("sweep.min_pts_lb"),
                 static_cast<double>(lb));
    registry.Set(registry.Gauge("sweep.min_pts_ub"),
                 static_cast<double>(ub));
    registry.Set(registry.Gauge("pipeline.degraded_to_requery"),
                 degraded_to_requery ? 1.0 : 0.0);
    registry.Set(registry.Gauge("pipeline.spilled_to_disk"),
                 spilled_to_disk ? 1.0 : 0.0);
    registry.Set(registry.Gauge("pipeline.prune_applied"),
                 prune_summary.applied ? 1.0 : 0.0);
    if (prune_summary.applied) {
      registry.Add(registry.Counter("pipeline.prune_survivors"),
                   prune_summary.survivors);
      registry.Add(registry.Counter("pipeline.prune_pruned"),
                   prune_summary.total_points - prune_summary.survivors);
      registry.Add(registry.Counter("pipeline.prune_evaluations_avoided"),
                   prune_summary.pruned_evaluations);
      registry.Set(registry.Gauge("pipeline.prune_survivor_fraction"),
                   prune_summary.survivor_fraction());
      registry.Set(registry.Gauge("pipeline.prune_threshold"),
                   prune_summary.threshold);
    }
    registry.Set(registry.Gauge("pipeline.ann_enabled"),
                 approximate ? 1.0 : 0.0);
    if (flags.GetString("index") == "rkd_forest") {
      registry.Set(registry.Gauge("pipeline.ann_trees"),
                   static_cast<double>(ann.trees));
      registry.Set(registry.Gauge("pipeline.ann_checks"),
                   static_cast<double>(ann.search.checks));
      registry.Set(registry.Gauge("pipeline.ann_eps"), ann.search.eps);
      registry.Set(registry.Gauge("pipeline.ann_seed"),
                   static_cast<double>(ann.seed));
    }
    registry.Set(registry.Gauge("materialize.projected_bytes"),
                 static_cast<double>(projected_bytes));
    registry.Set(registry.Gauge("pipeline.memory_budget_bytes"),
                 static_cast<double>(memory_budget_bytes));
    registry.Set(registry.Gauge("pipeline.deadline_ms"),
                 static_cast<double>(deadline_ms));
    if (m != nullptr) {
      registry.Set(registry.Gauge("materialize.k_max"),
                   static_cast<double>(m->k_max()));
    }
    registry.Set(registry.Gauge("phase.materialize_seconds"),
                 materialize_seconds);
    // Phase gauges in the scorer's own vocabulary — phase.k_distance_seconds
    // / phase.lrd_seconds / phase.lof_seconds for LOF, phase.ldof_seconds
    // for LDOF, and so on.
    for (const ScorerPhase& phase : phases) {
      registry.Set(
          registry.Gauge(StrFormat("phase.%s_seconds", phase.name.c_str())),
          phase.seconds);
    }
    if (m != nullptr) {
      const MetricsRegistry::MetricId size_hist = registry.Histogram(
          "materialize.neighborhood_size", 1.0, 65536.0, 32);
      for (size_t i = 0; i < m->size(); ++i) {
        registry.Record(size_hist,
                        static_cast<double>(m->neighbors(i).size()));
      }
    }
    const MetricsRegistry::MetricId score_hist = registry.Histogram(
        StrFormat("%s.aggregated_score", scorer_name.c_str()), 0.0625, 64.0,
        40);
    for (double score : aggregated) {
      // Pruned points carry NaN placeholders instead of scores.
      if (!std::isnan(score)) registry.Record(score_hist, score);
    }
    registry.Set(registry.Gauge("pipeline.threads"),
                 static_cast<double>(threads));
    registry.Set(registry.Gauge("pipeline.peak_rss_bytes"),
                 static_cast<double>(PeakRssBytes()));
    if (!step_seconds.empty()) {
      const MetricsRegistry::MetricId step_hist =
          registry.Histogram("sweep.step_seconds", 1e-6, 1e4, 40);
      for (double s : step_seconds) registry.Record(step_hist, s);
    }
    for (const QueryFlightRecorder::SiteReport& site : flight_report.sites) {
      registry.Add(
          registry.Counter(StrFormat(
              "flight.%s.sampled_units",
              std::string(QueryFlightRecorder::SiteName(site.site)).c_str())),
          site.sampled_units);
      registry.Add(
          registry.Counter(StrFormat(
              "flight.%s.sampled_queries",
              std::string(QueryFlightRecorder::SiteName(site.site)).c_str())),
          site.sampled_queries);
    }
    MetricsRegistry::Snapshot snapshot = registry.Aggregate();
    // Splice the merged per-site latency histograms in: they carry the
    // p50/p95/p99 tail view that the work counters alone cannot.
    for (const QueryFlightRecorder::SiteReport& site : flight_report.sites) {
      snapshot.histograms.push_back(site.latency);
    }
    auto write_text = [](const std::string& path,
                         const std::string& text) -> Status {
      std::ofstream out(path);
      if (!out) {
        return Status::IoError("cannot open " + path + " for writing");
      }
      out << text;
      out.close();
      if (!out) return Status::IoError("failed writing " + path);
      return Status::OK();
    };
    if (!stats_path.empty()) {
      if (Status status = write_text(stats_path, snapshot.ToJson());
          !status.ok()) {
        return Fail(status);
      }
      std::fprintf(stderr, "wrote run metrics to %s\n", stats_path.c_str());
    }
    if (!metrics_text_path.empty()) {
      // Retire the heartbeat first so its final publish cannot overwrite
      // the terminal snapshot.
      progress.SetPhase("done");
      publisher.reset();
      if (Status status =
              write_text(metrics_text_path, snapshot.ToOpenMetrics());
          !status.ok()) {
        return Fail(status);
      }
      std::fprintf(stderr, "wrote OpenMetrics exposition to %s\n",
                   metrics_text_path.c_str());
    }
  }
  if (!flight_path.empty()) {
    if (Status status = flight_report.WriteJson(flight_path); !status.ok()) {
      return Fail(status);
    }
    std::fprintf(stderr,
                 "wrote flight report (%zu slow, %zu recent) to %s\n",
                 flight_report.slowest.size(), flight_report.recent.size(),
                 flight_path.c_str());
  }
  if (!trace_path.empty()) {
    if (Status status = trace.WriteJson(trace_path); !status.ok()) {
      return Fail(status);
    }
    std::fprintf(stderr, "wrote %zu trace events to %s\n",
                 trace.event_count(), trace_path.c_str());
  }
  return 0;
}
