# End-to-end smoke: generate DS1, score it, check the two planted outliers
# (points 500 and 501) lead the ranking.
execute_process(
  COMMAND ${DATAGEN} --scenario ds1 --output ${WORKDIR}/ds1_smoke.csv
  RESULT_VARIABLE datagen_result)
if(NOT datagen_result EQUAL 0)
  message(FATAL_ERROR "datagen failed: ${datagen_result}")
endif()
execute_process(
  COMMAND ${CLI} --input ${WORKDIR}/ds1_smoke.csv --has-header
          --minpts-lb 10 --minpts-ub 30 --top 2
  OUTPUT_VARIABLE cli_output
  RESULT_VARIABLE cli_result)
if(NOT cli_result EQUAL 0)
  message(FATAL_ERROR "cli failed: ${cli_result}")
endif()
string(FIND "${cli_output}" "500" found_o2)
string(FIND "${cli_output}" "501" found_o1)
if(found_o2 EQUAL -1 OR found_o1 EQUAL -1)
  message(FATAL_ERROR "planted outliers not on top:\n${cli_output}")
endif()

# Persistence smoke: save M, reload it (copying and mmap'ed), and demand a
# bit-identical --top ranking from every route.
execute_process(
  COMMAND ${CLI} --input ${WORKDIR}/ds1_smoke.csv --has-header
          --minpts-lb 10 --minpts-ub 30 --top 5
          --save-materialization ${WORKDIR}/ds1_smoke.lofc
  OUTPUT_VARIABLE save_output
  RESULT_VARIABLE save_result)
if(NOT save_result EQUAL 0)
  message(FATAL_ERROR "cli --save-materialization failed: ${save_result}")
endif()
foreach(map_flag "" "--map-materialization")
  execute_process(
    COMMAND ${CLI} --input ${WORKDIR}/ds1_smoke.csv --has-header
            --minpts-lb 10 --minpts-ub 30 --top 5
            --load-materialization ${WORKDIR}/ds1_smoke.lofc ${map_flag}
    OUTPUT_VARIABLE load_output
    RESULT_VARIABLE load_result)
  if(NOT load_result EQUAL 0)
    message(FATAL_ERROR "cli reload (${map_flag}) failed: ${load_result}")
  endif()
  if(NOT save_output STREQUAL load_output)
    message(FATAL_ERROR "reloaded ranking (${map_flag}) differs:\n"
            "saved run:\n${save_output}\nreloaded run:\n${load_output}")
  endif()
endforeach()

# Corruption smoke: truncate the saved file (skipped where truncate(1) is
# unavailable); the load must fail with a clean typed error, never a crash
# or a wrong ranking.
file(SIZE ${WORKDIR}/ds1_smoke.lofc container_size)
math(EXPR torn_size "${container_size} / 2")
execute_process(
  COMMAND ${CMAKE_COMMAND} -E copy ${WORKDIR}/ds1_smoke.lofc
          ${WORKDIR}/ds1_torn.lofc)
execute_process(
  COMMAND truncate -s ${torn_size} ${WORKDIR}/ds1_torn.lofc
  RESULT_VARIABLE truncate_result)
if(truncate_result EQUAL 0)
  execute_process(
    COMMAND ${CLI} --input ${WORKDIR}/ds1_smoke.csv --has-header
            --minpts-lb 10 --minpts-ub 30 --top 5
            --load-materialization ${WORKDIR}/ds1_torn.lofc
    ERROR_VARIABLE torn_error
    RESULT_VARIABLE torn_result)
  if(torn_result EQUAL 0)
    message(FATAL_ERROR "loading a truncated materialization succeeded")
  endif()
  string(FIND "${torn_error}" "corrupt container" found_corrupt)
  if(found_corrupt EQUAL -1)
    message(FATAL_ERROR "truncated load did not report corruption:\n"
            "${torn_error}")
  endif()
endif()

# Spill smoke: on a dataset whose projected M overflows a 1 MiB budget,
# --spill-dir must keep the exact in-RAM ranking (mmap-served M) instead
# of degrading to re-query. 5000 points at MinPtsUB 30 project to ~2.4 MB.
execute_process(
  COMMAND ${DATAGEN} --scenario gaussians --points 5000 --dim 3
          --output ${WORKDIR}/spill_smoke.csv
  RESULT_VARIABLE spill_datagen_result)
if(NOT spill_datagen_result EQUAL 0)
  message(FATAL_ERROR "datagen failed: ${spill_datagen_result}")
endif()
execute_process(
  COMMAND ${CLI} --input ${WORKDIR}/spill_smoke.csv --has-header
          --minpts-lb 10 --minpts-ub 30 --top 5
  OUTPUT_VARIABLE spill_base_output
  RESULT_VARIABLE spill_base_result)
if(NOT spill_base_result EQUAL 0)
  message(FATAL_ERROR "cli base run failed: ${spill_base_result}")
endif()
execute_process(
  COMMAND ${CLI} --input ${WORKDIR}/spill_smoke.csv --has-header
          --minpts-lb 10 --minpts-ub 30 --top 5
          --memory-budget-mb 1 --spill-dir ${WORKDIR}
  OUTPUT_VARIABLE spill_output
  ERROR_VARIABLE spill_stderr
  RESULT_VARIABLE spill_result)
if(NOT spill_result EQUAL 0)
  message(FATAL_ERROR "cli --spill-dir run failed: ${spill_result}\n"
          "${spill_stderr}")
endif()
string(FIND "${spill_stderr}" "spilling to disk" found_spill)
if(found_spill EQUAL -1)
  message(FATAL_ERROR "budgeted run did not take the spill rung:\n"
          "${spill_stderr}")
endif()
if(NOT spill_base_output STREQUAL spill_output)
  message(FATAL_ERROR "spill-rung ranking differs:\nin-RAM:\n"
          "${spill_base_output}\nspilled:\n${spill_output}")
endif()

file(REMOVE ${WORKDIR}/ds1_smoke.csv ${WORKDIR}/ds1_smoke.lofc
     ${WORKDIR}/ds1_torn.lofc ${WORKDIR}/spill_smoke.csv)
