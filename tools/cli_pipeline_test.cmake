# End-to-end smoke: generate DS1, score it, check the two planted outliers
# (points 500 and 501) lead the ranking.
execute_process(
  COMMAND ${DATAGEN} --scenario ds1 --output ${WORKDIR}/ds1_smoke.csv
  RESULT_VARIABLE datagen_result)
if(NOT datagen_result EQUAL 0)
  message(FATAL_ERROR "datagen failed: ${datagen_result}")
endif()
execute_process(
  COMMAND ${CLI} --input ${WORKDIR}/ds1_smoke.csv --has-header
          --minpts-lb 10 --minpts-ub 30 --top 2
  OUTPUT_VARIABLE cli_output
  RESULT_VARIABLE cli_result)
if(NOT cli_result EQUAL 0)
  message(FATAL_ERROR "cli failed: ${cli_result}")
endif()
string(FIND "${cli_output}" "500" found_o2)
string(FIND "${cli_output}" "501" found_o1)
if(found_o2 EQUAL -1 OR found_o1 EQUAL -1)
  message(FATAL_ERROR "planted outliers not on top:\n${cli_output}")
endif()
file(REMOVE ${WORKDIR}/ds1_smoke.csv)
