#ifndef LOFKIT_CLUSTERING_OPTICS_LOF_BRIDGE_H_
#define LOFKIT_CLUSTERING_OPTICS_LOF_BRIDGE_H_

#include <vector>

#include "clustering/optics.h"
#include "common/result.h"
#include "index/neighborhood_materializer.h"
#include "lof/lof_computer.h"

namespace lofkit {

/// The LOF <-> OPTICS "handshake" sketched in the paper's conclusions
/// (section 8): (a) computation sharing — both consume the same k-nn
/// queries and reachability distances, here realized by driving OPTICS from
/// the LOF materialization database so no second round of kNN queries is
/// needed; and (b) richer output — each local outlier is described by the
/// cluster relative to which it is outlying.
struct OutlierClusterContext {
  uint32_t point = 0;
  double lof = 0.0;
  /// Dominant OPTICS cluster among the point's MinPts neighbors (-1 when
  /// the neighborhood is all noise).
  int cluster = -1;
  /// Fraction of the point's neighbors belonging to that cluster.
  double neighbor_fraction = 0.0;
  /// Mean LOF inside that cluster — the density reference the outlier is
  /// measured against (approximately 1 by Lemma 1).
  double cluster_mean_lof = 0.0;
};

class OpticsLofBridge {
 public:
  /// Runs OPTICS using only the materialized neighbor lists (no kNN
  /// queries): core distances are the k-distances already stored in M, and
  /// reachability updates flow along the stored neighborhoods. Equivalent
  /// to OPTICS with a per-point generating distance of the materialized
  /// k_max-distance — sufficient for cluster extraction at any density the
  /// LOF MinPts range can see.
  static Result<OpticsResult> RunFromMaterializer(
      const NeighborhoodMaterializer& m, size_t min_pts);

  /// Explains the `top_n` strongest LOF outliers against a flat clustering
  /// (from ExtractClustering or DBSCAN): which cluster each outlier is
  /// outlying relative to, and that cluster's mean LOF.
  static Result<std::vector<OutlierClusterContext>> ExplainTopOutliers(
      const NeighborhoodMaterializer& m, const LofScores& scores,
      std::span<const int> cluster_of, size_t top_n);
};

}  // namespace lofkit

#endif  // LOFKIT_CLUSTERING_OPTICS_LOF_BRIDGE_H_
