#ifndef LOFKIT_CLUSTERING_DBSCAN_H_
#define LOFKIT_CLUSTERING_DBSCAN_H_

#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"
#include "index/knn_index.h"

namespace lofkit {

/// DBSCAN (Ester/Kriegel/Sander/Xu 1996, reference [7] of the paper) — the
/// density-based clustering algorithm whose "noise" output is the
/// clustering-community baseline for outliers that section 2 discusses:
/// binary, and a by-product of the clustering parameters rather than a
/// ranked outlier notion. lofkit ships it both as that baseline and as a
/// cluster-labeling substrate for the Theorem-2 partition bounds.
struct DbscanParams {
  double eps = 1.0;
  size_t min_pts = 5;
};

struct DbscanResult {
  /// Cluster id per point, 0-based; kNoise (-1) for noise points.
  std::vector<int> cluster_of;
  /// True for core points (>= min_pts neighbors within eps, inclusive of
  /// the point itself).
  std::vector<bool> is_core;
  size_t num_clusters = 0;
  size_t noise_count = 0;

  static constexpr int kNoise = -1;
};

class Dbscan {
 public:
  /// Runs DBSCAN over `data` using `index` (already built over `data`) for
  /// the eps-range queries.
  static Result<DbscanResult> Run(const Dataset& data, const KnnIndex& index,
                                  const DbscanParams& params);
};

}  // namespace lofkit

#endif  // LOFKIT_CLUSTERING_DBSCAN_H_
