#include "clustering/dbscan.h"

#include <deque>

namespace lofkit {

Result<DbscanResult> Dbscan::Run(const Dataset& data, const KnnIndex& index,
                                 const DbscanParams& params) {
  if (data.empty()) {
    return Status::InvalidArgument("dataset is empty");
  }
  if (!(params.eps >= 0.0)) {
    return Status::InvalidArgument("eps must be >= 0");
  }
  if (params.min_pts == 0) {
    return Status::InvalidArgument("min_pts must be >= 1");
  }
  const size_t n = data.size();
  DbscanResult result;
  result.cluster_of.assign(n, DbscanResult::kNoise);
  result.is_core.assign(n, false);
  std::vector<bool> visited(n, false);
  // Each ball is fully consumed before the next query, so one reused
  // context serves the whole expansion without per-query allocations.
  KnnSearchContext ctx;

  for (size_t seed = 0; seed < n; ++seed) {
    if (visited[seed]) continue;
    visited[seed] = true;
    LOFKIT_RETURN_IF_ERROR(index.QueryRadius(data.point(seed), params.eps,
                                             std::nullopt, ctx));
    // QueryRadius includes the point itself (no exclude), matching the
    // DBSCAN definition of |N_eps(p)| >= MinPts.
    const std::span<const Neighbor> ball = ctx.results();
    if (ball.size() < params.min_pts) continue;  // noise (for now)

    const int cluster = static_cast<int>(result.num_clusters++);
    result.cluster_of[seed] = cluster;
    result.is_core[seed] = true;
    std::deque<uint32_t> frontier;
    for (const Neighbor& q : ball) frontier.push_back(q.index);

    while (!frontier.empty()) {
      const uint32_t p = frontier.front();
      frontier.pop_front();
      if (result.cluster_of[p] == DbscanResult::kNoise) {
        result.cluster_of[p] = cluster;  // border point adoption
      }
      if (visited[p]) continue;
      visited[p] = true;
      result.cluster_of[p] = cluster;
      LOFKIT_RETURN_IF_ERROR(index.QueryRadius(data.point(p), params.eps,
                                               std::nullopt, ctx));
      const std::span<const Neighbor> p_ball = ctx.results();
      if (p_ball.size() >= params.min_pts) {
        result.is_core[p] = true;
        for (const Neighbor& q : p_ball) {
          if (!visited[q.index] ||
              result.cluster_of[q.index] == DbscanResult::kNoise) {
            frontier.push_back(q.index);
          }
        }
      }
    }
  }
  for (int c : result.cluster_of) {
    if (c == DbscanResult::kNoise) ++result.noise_count;
  }
  return result;
}

}  // namespace lofkit
