#include "clustering/optics_lof_bridge.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>

#include "common/string_util.h"

namespace lofkit {

Result<OpticsResult> OpticsLofBridge::RunFromMaterializer(
    const NeighborhoodMaterializer& m, size_t min_pts) {
  if (min_pts == 0 || min_pts > m.k_max()) {
    return Status::OutOfRange(
        StrFormat("min_pts (%zu) must be in [1, k_max=%zu]", min_pts,
                  m.k_max()));
  }
  const size_t n = m.size();
  OpticsResult result;
  result.ordering.reserve(n);
  result.reachability.assign(n, OpticsResult::kUndefined);
  result.core_distance.assign(n, OpticsResult::kUndefined);
  std::vector<bool> processed(n, false);

  // Core distance == the stored (min_pts - 1)-distance, because the
  // materialized lists exclude the point itself while the OPTICS
  // neighborhood includes it. min_pts == 1 makes every point core at 0.
  for (size_t i = 0; i < n; ++i) {
    if (min_pts == 1) {
      result.core_distance[i] = 0.0;
    } else {
      LOFKIT_ASSIGN_OR_RETURN(auto view, m.View(i, min_pts - 1));
      result.core_distance[i] = view.k_distance;
    }
  }

  using Seed = std::pair<double, uint32_t>;
  std::priority_queue<Seed, std::vector<Seed>, std::greater<>> seeds;
  auto relax_neighbors = [&](size_t p) {
    const std::span<const Neighbor> neighbors = m.neighbors(p);
    for (const Neighbor& q : neighbors) {
      if (processed[q.index]) continue;
      const double reach = std::max(result.core_distance[p], q.distance);
      if (reach < result.reachability[q.index]) {
        result.reachability[q.index] = reach;
        seeds.emplace(reach, q.index);
      }
    }
  };

  for (size_t start = 0; start < n; ++start) {
    if (processed[start]) continue;
    processed[start] = true;
    result.ordering.push_back(static_cast<uint32_t>(start));
    relax_neighbors(start);
    while (!seeds.empty()) {
      const auto [reach, p] = seeds.top();
      seeds.pop();
      if (processed[p] || reach != result.reachability[p]) continue;
      processed[p] = true;
      result.ordering.push_back(p);
      relax_neighbors(p);
    }
  }
  return result;
}

Result<std::vector<OutlierClusterContext>> OpticsLofBridge::ExplainTopOutliers(
    const NeighborhoodMaterializer& m, const LofScores& scores,
    std::span<const int> cluster_of, size_t top_n) {
  if (scores.lof.size() != m.size() || cluster_of.size() != m.size()) {
    return Status::InvalidArgument(
        "scores / clustering / materializer sizes disagree");
  }
  // Mean LOF per cluster.
  std::map<int, std::pair<double, size_t>> cluster_lof;  // sum, count
  for (size_t i = 0; i < m.size(); ++i) {
    if (cluster_of[i] >= 0 && std::isfinite(scores.lof[i])) {
      auto& [sum, count] = cluster_lof[cluster_of[i]];
      sum += scores.lof[i];
      ++count;
    }
  }

  const std::vector<RankedOutlier> ranked =
      RankDescending(scores.lof, top_n);
  std::vector<OutlierClusterContext> contexts;
  contexts.reserve(ranked.size());
  for (const RankedOutlier& outlier : ranked) {
    OutlierClusterContext context;
    context.point = outlier.index;
    context.lof = outlier.score;
    LOFKIT_ASSIGN_OR_RETURN(auto view, m.View(outlier.index, scores.min_pts));
    std::map<int, size_t> votes;
    for (const Neighbor& q : view.neighborhood) {
      if (cluster_of[q.index] >= 0) ++votes[cluster_of[q.index]];
    }
    size_t best_votes = 0;
    for (const auto& [cluster, count] : votes) {
      if (count > best_votes) {
        best_votes = count;
        context.cluster = cluster;
      }
    }
    if (context.cluster >= 0) {
      context.neighbor_fraction =
          static_cast<double>(best_votes) /
          static_cast<double>(view.neighborhood.size());
      const auto& [sum, count] = cluster_lof[context.cluster];
      context.cluster_mean_lof =
          count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
    contexts.push_back(context);
  }
  return contexts;
}

}  // namespace lofkit
