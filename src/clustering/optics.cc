#include "clustering/optics.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace lofkit {

Result<OpticsResult> Optics::Run(const Dataset& data, const KnnIndex& index,
                                 const OpticsParams& params) {
  if (data.empty()) {
    return Status::InvalidArgument("dataset is empty");
  }
  if (params.min_pts == 0) {
    return Status::InvalidArgument("min_pts must be >= 1");
  }
  if (!(params.eps >= 0.0)) {  // also rejects NaN
    return Status::InvalidArgument("eps must be >= 0 (or +infinity)");
  }
  const size_t n = data.size();
  OpticsResult result;
  result.ordering.reserve(n);
  result.reachability.assign(n, OpticsResult::kUndefined);
  result.core_distance.assign(n, OpticsResult::kUndefined);
  std::vector<bool> processed(n, false);

  // Neighborhood fetch: eps-ball when eps is finite, otherwise the
  // min_pts-nearest neighbors suffice to drive the expansion (every
  // reachability update uses max(core_dist, d) and larger distances can
  // only matter once seeds run dry, in which case the next unprocessed
  // point starts a new group). Results land in the shared context — each
  // list is consumed before the next fetch, so one reused context serves
  // the whole run without per-query allocations.
  KnnSearchContext ctx;
  auto fetch = [&](size_t p) -> Status {
    if (std::isfinite(params.eps)) {
      return index.QueryRadius(data.point(p), params.eps,
                               static_cast<uint32_t>(p), ctx);
    }
    return index.Query(data.point(p), std::min(n - 1, params.min_pts * 4),
                       static_cast<uint32_t>(p), ctx);
  };

  auto core_distance_of = [&](std::span<const Neighbor> neighbors)
      -> double {
    // Neighbor lists exclude the point itself; the DBSCAN/OPTICS
    // neighborhood includes it, so core status needs min_pts - 1 others.
    if (neighbors.size() + 1 < params.min_pts) {
      return OpticsResult::kUndefined;
    }
    if (params.min_pts == 1) return 0.0;
    return neighbors[params.min_pts - 2].distance;
  };

  // Lazy-deletion priority queue over (reachability, point).
  using Seed = std::pair<double, uint32_t>;
  std::priority_queue<Seed, std::vector<Seed>, std::greater<>> seeds;

  for (size_t start = 0; start < n; ++start) {
    if (processed[start]) continue;
    // Expand a new density-connected group from `start`.
    processed[start] = true;
    result.ordering.push_back(static_cast<uint32_t>(start));
    LOFKIT_RETURN_IF_ERROR(fetch(start));
    const std::span<const Neighbor> neighbors = ctx.results();
    result.core_distance[start] = core_distance_of(neighbors);
    if (std::isfinite(result.core_distance[start])) {
      for (const Neighbor& q : neighbors) {
        if (processed[q.index]) continue;
        const double reach =
            std::max(result.core_distance[start], q.distance);
        if (reach < result.reachability[q.index]) {
          result.reachability[q.index] = reach;
          seeds.emplace(reach, q.index);
        }
      }
    }
    while (!seeds.empty()) {
      const auto [reach, p] = seeds.top();
      seeds.pop();
      if (processed[p] || reach != result.reachability[p]) continue;
      processed[p] = true;
      result.ordering.push_back(p);
      LOFKIT_RETURN_IF_ERROR(fetch(p));
      const std::span<const Neighbor> p_neighbors = ctx.results();
      result.core_distance[p] = core_distance_of(p_neighbors);
      if (std::isfinite(result.core_distance[p])) {
        for (const Neighbor& q : p_neighbors) {
          if (processed[q.index]) continue;
          const double new_reach =
              std::max(result.core_distance[p], q.distance);
          if (new_reach < result.reachability[q.index]) {
            result.reachability[q.index] = new_reach;
            seeds.emplace(new_reach, q.index);
          }
        }
      }
    }
  }
  return result;
}

std::vector<int> ExtractClustering(const OpticsResult& optics,
                                   double eps_prime) {
  std::vector<int> cluster_of(optics.ordering.size(), -1);
  int current = -1;
  int next_id = 0;
  for (uint32_t p : optics.ordering) {
    if (optics.reachability[p] > eps_prime) {
      if (optics.core_distance[p] <= eps_prime) {
        current = next_id++;
        cluster_of[p] = current;
      } else {
        cluster_of[p] = -1;  // noise
        current = -1;
      }
    } else {
      cluster_of[p] = current;
    }
  }
  return cluster_of;
}

std::vector<ReachabilityCluster> ExtractHierarchicalClusters(
    const OpticsResult& optics, double max_level, size_t levels,
    size_t min_cluster_size) {
  std::vector<ReachabilityCluster> clusters;
  if (optics.ordering.empty() || levels == 0 || !(max_level > 0.0)) {
    return clusters;
  }
  const size_t n = optics.ordering.size();
  for (size_t step = 0; step < levels; ++step) {
    // Thresholds from max_level down; deeper levels cut tighter valleys.
    const double level =
        max_level * static_cast<double>(levels - step) /
        static_cast<double>(levels);
    size_t run_begin = 0;
    bool in_run = false;
    auto close_run = [&](size_t run_end) {
      if (!in_run) return;
      in_run = false;
      if (run_end - run_begin < min_cluster_size) return;
      // Deduplicate: identical spans at shallower levels already recorded.
      for (const ReachabilityCluster& c : clusters) {
        if (c.begin == run_begin && c.end == run_end) return;
      }
      ReachabilityCluster cluster;
      cluster.begin = run_begin;
      cluster.end = run_end;
      cluster.level = level;
      clusters.push_back(cluster);
    };
    for (size_t pos = 0; pos < n; ++pos) {
      // Position pos belongs to the valley iff its reachability (distance
      // to the preceding part of the valley) is below the level; the first
      // point of a valley is the one whose *successor* dips below.
      const double reach = optics.reachability[optics.ordering[pos]];
      if (reach <= level) {
        if (!in_run) {
          // The predecessor is the valley entry point.
          run_begin = pos == 0 ? 0 : pos - 1;
          in_run = true;
        }
      } else {
        close_run(pos);
      }
    }
    close_run(n);
  }
  // Assign nesting depth: number of strictly containing clusters.
  for (ReachabilityCluster& c : clusters) {
    c.depth = 0;
    for (const ReachabilityCluster& other : clusters) {
      const bool contains =
          (other.begin <= c.begin && c.end <= other.end) &&
          (other.begin != c.begin || other.end != c.end);
      if (contains) ++c.depth;
    }
  }
  std::sort(clusters.begin(), clusters.end(),
            [](const ReachabilityCluster& a, const ReachabilityCluster& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.size() > b.size();
            });
  return clusters;
}

}  // namespace lofkit
