#ifndef LOFKIT_CLUSTERING_OPTICS_H_
#define LOFKIT_CLUSTERING_OPTICS_H_

#include <limits>
#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"
#include "index/knn_index.h"

namespace lofkit {

/// OPTICS (Ankerst/Breunig/Kriegel/Sander 1999, reference [2] of the
/// paper) — the hierarchical density-based clustering the paper names as
/// the "handshake" partner of LOF in its future-work section: it shares the
/// kNN/core-distance computations and provides the clusters relative to
/// which local outliers can be explained.
struct OpticsParams {
  /// Generating distance: neighborhoods are truncated at eps. Use
  /// +infinity for the exact reachability plot regardless of scale.
  double eps = std::numeric_limits<double>::infinity();
  size_t min_pts = 5;
};

struct OpticsResult {
  /// The cluster ordering (a permutation of all point indices).
  std::vector<uint32_t> ordering;
  /// Reachability distance per point (+infinity where undefined, i.e. for
  /// each density-based cluster's starting point).
  std::vector<double> reachability;
  /// Core distance per point (+infinity when the point is not a core point
  /// w.r.t. eps and min_pts).
  std::vector<double> core_distance;

  static constexpr double kUndefined = std::numeric_limits<double>::infinity();
};

class Optics {
 public:
  /// Runs OPTICS over `data` using `index` (already built over `data`).
  static Result<OpticsResult> Run(const Dataset& data, const KnnIndex& index,
                                  const OpticsParams& params);
};

/// Extracts a flat DBSCAN-equivalent clustering from an OPTICS result at
/// clustering distance eps_prime (<= the generating eps): scanning the
/// ordering, a reachability above eps_prime either starts a new cluster (if
/// the point is core at eps_prime) or marks noise (-1).
std::vector<int> ExtractClustering(const OpticsResult& optics,
                                   double eps_prime);

/// A cluster found by the xi-style hierarchical extraction: a contiguous
/// run of the OPTICS ordering between a steep-down and a steep-up area of
/// the reachability plot. Clusters may nest (a dense core inside a looser
/// region); `depth` is the nesting level (0 = outermost).
struct ReachabilityCluster {
  size_t begin = 0;  ///< first ordering position inside the cluster
  size_t end = 0;    ///< one past the last ordering position
  size_t depth = 0;
  /// Reachability level that delimits the cluster (its "valley rim").
  double level = 0.0;

  size_t size() const { return end - begin; }
};

/// Hierarchical cluster extraction from the reachability plot, in the
/// spirit of the OPTICS paper's xi-clusters: for each of `levels` evenly
/// spaced reachability thresholds below `max_level`, contiguous valleys of
/// at least `min_cluster_size` points become clusters; nested valleys get
/// increasing depth. Returns clusters sorted by (begin, -size).
std::vector<ReachabilityCluster> ExtractHierarchicalClusters(
    const OpticsResult& optics, double max_level, size_t levels = 8,
    size_t min_cluster_size = 5);

}  // namespace lofkit

#endif  // LOFKIT_CLUSTERING_OPTICS_H_
