#ifndef LOFKIT_BASELINES_DB_OUTLIER_H_
#define LOFKIT_BASELINES_DB_OUTLIER_H_

#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"
#include "dataset/metric.h"
#include "index/knn_index.h"

namespace lofkit {

/// The distance-based outlier baseline of Knorr & Ng (Definition 2 of the
/// paper): an object p is a DB(pct, dmin)-outlier when at least pct percent
/// of the dataset lies farther than dmin from it, i.e. when
/// |{q in D : d(p, q) <= dmin}| <= (100 - pct)% * |D|.
///
/// Following the set definition literally, p itself is a member of the
/// ball around p (d(p, p) = 0) and counts toward the threshold.
///
/// This is the notion section 3 proves structurally unable to flag the
/// local outlier o2 of dataset DS1; the bench `bench_fig1_ds1` replays that
/// argument numerically against this implementation.
struct DbOutlierResult {
  /// Verdict per point.
  std::vector<bool> is_outlier;
  /// |{q : d(p, q) <= dmin}| per point. Counting stops early once the
  /// threshold is exceeded, so values cap at threshold_count + 1.
  std::vector<size_t> neighbor_count;
  /// floor((100 - pct)/100 * n): the largest in-ball cardinality an
  /// outlier may have.
  size_t threshold_count = 0;
  /// Number of outliers found.
  size_t outlier_count = 0;
};

class DbOutlierDetector {
 public:
  /// The nested-loop algorithm of Knorr & Ng with early termination: the
  /// inner scan of p stops as soon as p cannot be an outlier anymore.
  /// Requires 0 <= pct <= 100 and dmin >= 0.
  static Result<DbOutlierResult> Detect(const Dataset& data,
                                        const Metric& metric, double pct,
                                        double dmin);

  /// Index-accelerated variant using radius queries (with a spatial index,
  /// each in-ball count is one range query).
  static Result<DbOutlierResult> DetectWithIndex(const Dataset& data,
                                                 const KnnIndex& index,
                                                 double pct, double dmin);

  /// Knorr & Ng's cell-based algorithm (their FindAllOutsM structure, the
  /// one they show linear in n for small dimensions): a grid of side
  /// dmin / (2 sqrt(d)) where
  ///   - a cell plus its layer-1 neighbors holding more than the threshold
  ///     colors the whole cell non-outlier,
  ///   - a cell whose layer-2 extension (rings 2..ceil(2 sqrt(d))) still
  ///     fits under the threshold colors the whole cell outlier,
  ///   - only the remaining "white" cells fall back to per-point checks
  ///     against layer-2 points.
  /// Euclidean geometry only (the layer guarantees use the L2 diagonal);
  /// practical for dimension <= 4, as in the original paper.
  static Result<DbOutlierResult> DetectCellBased(const Dataset& data,
                                                 double pct, double dmin);
};

}  // namespace lofkit

#endif  // LOFKIT_BASELINES_DB_OUTLIER_H_
