#include "baselines/knn_outlier.h"

#include <algorithm>
#include <memory>

#include "lof/local_scorer.h"

namespace lofkit {

Result<std::vector<RankedOutlier>> KnnDistanceOutlierDetector::Rank(
    const Dataset& data, const KnnIndex& index, size_t k, size_t top_n) {
  if (k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (k >= data.size()) {
    return Status::InvalidArgument("k must be smaller than the dataset size");
  }
  // Batched self-queries: chunks through QueryBatch so engines with a real
  // batch override amortize their data streaming, and the shared context
  // keeps the per-query scratch warm either way.
  constexpr size_t kChunk = 256;
  const size_t n = data.size();
  std::vector<double> k_distance(n);
  KnnSearchContext ctx;
  std::vector<uint32_t> ids;
  for (size_t begin = 0; begin < n; begin += kChunk) {
    const size_t end = std::min(begin + kChunk, n);
    ids.resize(end - begin);
    for (size_t j = 0; j < ids.size(); ++j) {
      ids[j] = static_cast<uint32_t>(begin + j);
    }
    LOFKIT_RETURN_IF_ERROR(index.QueryBatch(ids, k, ctx));
    for (size_t j = 0; j < ids.size(); ++j) {
      k_distance[begin + j] = ctx.batch_results(j)[k - 1].distance;
    }
  }
  return RankDescending(k_distance, top_n);
}

Result<std::vector<RankedOutlier>>
KnnDistanceOutlierDetector::RankFromMaterializer(
    const NeighborhoodMaterializer& m, size_t k, size_t top_n) {
  // The ranking is the "knn_distance" LocalScorer over a materialized
  // substrate — one shared implementation for this entry point, the CLI's
  // --scorer route, and the sweep.
  LOFKIT_ASSIGN_OR_RETURN(DensitySubstrate substrate,
                          DensitySubstrate::OverMaterialization(m));
  const std::unique_ptr<LocalScorer> scorer =
      CreateScorer(ScorerKind::kKnnDistance);
  LOFKIT_ASSIGN_OR_RETURN(LocalScores scores, scorer->Score(substrate, k));
  return RankDescending(scores.score, top_n);
}

}  // namespace lofkit
