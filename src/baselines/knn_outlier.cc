#include "baselines/knn_outlier.h"

namespace lofkit {

Result<std::vector<RankedOutlier>> KnnDistanceOutlierDetector::Rank(
    const Dataset& data, const KnnIndex& index, size_t k, size_t top_n) {
  if (k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (k >= data.size()) {
    return Status::InvalidArgument("k must be smaller than the dataset size");
  }
  std::vector<double> k_distance(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    LOFKIT_ASSIGN_OR_RETURN(
        std::vector<Neighbor> neighbors,
        index.Query(data.point(i), k, static_cast<uint32_t>(i)));
    k_distance[i] = neighbors[k - 1].distance;
  }
  return RankDescending(k_distance, top_n);
}

Result<std::vector<RankedOutlier>>
KnnDistanceOutlierDetector::RankFromMaterializer(
    const NeighborhoodMaterializer& m, size_t k, size_t top_n) {
  std::vector<double> k_distance(m.size());
  for (size_t i = 0; i < m.size(); ++i) {
    LOFKIT_ASSIGN_OR_RETURN(auto view, m.View(i, k));
    k_distance[i] = view.k_distance;
  }
  return RankDescending(k_distance, top_n);
}

}  // namespace lofkit
