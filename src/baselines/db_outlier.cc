#include "baselines/db_outlier.h"

#include <cmath>
#include <unordered_map>

#include "common/string_util.h"
#include "dataset/metric.h"

namespace lofkit {

namespace {

Result<size_t> ThresholdFor(const Dataset& data, double pct, double dmin) {
  if (data.empty()) {
    return Status::InvalidArgument("dataset is empty");
  }
  if (!(pct >= 0.0 && pct <= 100.0)) {
    return Status::InvalidArgument("pct must be in [0, 100]");
  }
  if (!(dmin >= 0.0)) {
    return Status::InvalidArgument("dmin must be >= 0");
  }
  const double fraction = (100.0 - pct) / 100.0;
  return static_cast<size_t>(
      std::floor(fraction * static_cast<double>(data.size())));
}

}  // namespace

Result<DbOutlierResult> DbOutlierDetector::Detect(const Dataset& data,
                                                  const Metric& metric,
                                                  double pct, double dmin) {
  LOFKIT_ASSIGN_OR_RETURN(const size_t threshold,
                          ThresholdFor(data, pct, dmin));
  const size_t n = data.size();
  DbOutlierResult result;
  result.threshold_count = threshold;
  result.is_outlier.assign(n, false);
  result.neighbor_count.assign(n, 0);
  for (size_t p = 0; p < n; ++p) {
    size_t count = 0;
    for (size_t q = 0; q < n; ++q) {
      if (metric.Distance(data.point(p), data.point(q)) <= dmin) {
        ++count;
        if (count > threshold) break;  // p can no longer be an outlier
      }
    }
    result.neighbor_count[p] = count;
    if (count <= threshold) {
      result.is_outlier[p] = true;
      ++result.outlier_count;
    }
  }
  return result;
}

Result<DbOutlierResult> DbOutlierDetector::DetectWithIndex(
    const Dataset& data, const KnnIndex& index, double pct, double dmin) {
  LOFKIT_ASSIGN_OR_RETURN(const size_t threshold,
                          ThresholdFor(data, pct, dmin));
  const size_t n = data.size();
  DbOutlierResult result;
  result.threshold_count = threshold;
  result.is_outlier.assign(n, false);
  result.neighbor_count.assign(n, 0);
  KnnSearchContext ctx;
  for (size_t p = 0; p < n; ++p) {
    LOFKIT_RETURN_IF_ERROR(
        index.QueryRadius(data.point(p), dmin, std::nullopt, ctx));
    const size_t ball_size = ctx.results().size();
    result.neighbor_count[p] = ball_size;  // includes p itself
    if (ball_size <= threshold) {
      result.is_outlier[p] = true;
      ++result.outlier_count;
    }
  }
  return result;
}

Result<DbOutlierResult> DbOutlierDetector::DetectCellBased(
    const Dataset& data, double pct, double dmin) {
  LOFKIT_ASSIGN_OR_RETURN(const size_t threshold,
                          ThresholdFor(data, pct, dmin));
  const size_t d = data.dimension();
  if (d > 4) {
    return Status::InvalidArgument(
        "cell-based DB-outlier detection is practical only for d <= 4; "
        "use Detect or DetectWithIndex instead");
  }
  if (dmin <= 0.0) {
    return Status::InvalidArgument(
        "cell-based detection requires dmin > 0 (cell side would be 0)");
  }
  const size_t n = data.size();
  DbOutlierResult result;
  result.threshold_count = threshold;
  result.is_outlier.assign(n, false);
  result.neighbor_count.assign(n, 0);

  // Cell side l = dmin / (2 sqrt(d)): the diagonal of one cell is dmin/2,
  // so any two points in a cell and its layer-1 ring are within dmin.
  const double side = dmin / (2.0 * std::sqrt(static_cast<double>(d)));
  const std::vector<double> box_lo = data.Min();

  auto cell_of = [&](size_t i) {
    std::vector<int64_t> cell(d);
    auto p = data.point(i);
    for (size_t j = 0; j < d; ++j) {
      cell[j] = static_cast<int64_t>(std::floor((p[j] - box_lo[j]) / side));
    }
    return cell;
  };
  auto pack = [&](const std::vector<int64_t>& cell) {
    // Coordinates fit comfortably: offset into unsigned 16-bit lanes.
    uint64_t key = 0;
    for (int64_t c : cell) {
      key = (key << 16) | static_cast<uint64_t>((c + 0x4000) & 0xffff);
    }
    return key;
  };

  std::unordered_map<uint64_t, std::vector<uint32_t>> cells;
  for (size_t i = 0; i < n; ++i) {
    const std::vector<int64_t> cell = cell_of(i);
    for (int64_t c : cell) {
      if (c < -0x4000 || c > 0x3fff) {
        return Status::OutOfRange(
            "dataset extent too large relative to dmin for 16-bit cell "
            "coordinates; use Detect instead");
      }
    }
    cells[pack(cell)].push_back(static_cast<uint32_t>(i));
  }

  // Layer-2 reach: rings 2 .. ceil(2 sqrt(d)).
  const int64_t max_ring = static_cast<int64_t>(
      std::ceil(2.0 * std::sqrt(static_cast<double>(d))));

  // Enumerates occupied cells within Chebyshev ring distance [lo, hi] of
  // `center`, invoking fn on each bucket.
  auto visit_rings = [&](const std::vector<int64_t>& center, int64_t lo,
                         int64_t hi, auto&& fn) {
    std::vector<int64_t> offset(d, -hi);
    std::vector<int64_t> cell(d);
    for (;;) {
      int64_t cheb = 0;
      for (size_t j = 0; j < d; ++j) {
        cheb = std::max<int64_t>(cheb, std::abs(offset[j]));
        cell[j] = center[j] + offset[j];
      }
      if (cheb >= lo && cheb <= hi) {
        auto it = cells.find(pack(cell));
        if (it != cells.end()) fn(it->second);
      }
      size_t pos = 0;
      while (pos < d) {
        if (offset[pos] < hi) {
          ++offset[pos];
          break;
        }
        offset[pos] = -hi;
        ++pos;
      }
      if (pos == d) break;
    }
  };

  for (const auto& [key, members] : cells) {
    (void)key;
    const std::vector<int64_t> center = cell_of(members.front());

    // Count the cell plus layer 1: all those points are within dmin of
    // every point in the cell.
    size_t close_count = 0;
    visit_rings(center, 0, 1,
                [&](const std::vector<uint32_t>& bucket) {
                  close_count += bucket.size();
                });
    if (close_count > threshold) {
      // Red cell: every member has too many close points to be an outlier.
      for (uint32_t p : members) result.neighbor_count[p] = close_count;
      continue;
    }

    // Add layer 2; points beyond it are guaranteed farther than dmin.
    size_t extended_count = close_count;
    std::vector<const std::vector<uint32_t>*> layer2;
    visit_rings(center, 2, max_ring,
                [&](const std::vector<uint32_t>& bucket) {
                  extended_count += bucket.size();
                  layer2.push_back(&bucket);
                });
    if (extended_count <= threshold) {
      // Blue cell: even counting all of layer 2, members stay outliers.
      for (uint32_t p : members) {
        result.neighbor_count[p] = extended_count;
        result.is_outlier[p] = true;
        ++result.outlier_count;
      }
      continue;
    }

    // White cell: per-point refinement against the layer-2 points only.
    for (uint32_t p : members) {
      size_t count = close_count;
      for (const auto* bucket : layer2) {
        if (count > threshold) break;
        for (uint32_t q : *bucket) {
          if (Euclidean().Distance(data.point(p), data.point(q)) <= dmin) {
            ++count;
            if (count > threshold) break;
          }
        }
      }
      result.neighbor_count[p] = count;
      if (count <= threshold) {
        result.is_outlier[p] = true;
        ++result.outlier_count;
      }
    }
  }
  return result;
}

}  // namespace lofkit
