#ifndef LOFKIT_BASELINES_KNN_OUTLIER_H_
#define LOFKIT_BASELINES_KNN_OUTLIER_H_

#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"
#include "index/knn_index.h"
#include "index/neighborhood_materializer.h"
#include "lof/lof_computer.h"

namespace lofkit {

/// The kNN-distance outlier ranking of Ramaswamy, Rastogi & Shim (reference
/// [17] of the paper): points ranked by the distance to their k-th nearest
/// neighbor; the top n are the outliers. Still a *global*, distance-based
/// notion — the paper cites it as the ranked refinement of DB outliers.
class KnnDistanceOutlierDetector {
 public:
  /// Ranks all points by k-distance descending and returns the strongest
  /// `top_n` (0 = all). One kNN query per point against `index` (built
  /// over `data`).
  static Result<std::vector<RankedOutlier>> Rank(const Dataset& data,
                                                 const KnnIndex& index,
                                                 size_t k, size_t top_n = 0);

  /// Same ranking computed from an existing materialization database —
  /// sharing step 1 with LOF, as the paper's section 8 suggests
  /// ("the shared computation may include k-nn queries").
  static Result<std::vector<RankedOutlier>> RankFromMaterializer(
      const NeighborhoodMaterializer& m, size_t k, size_t top_n = 0);
};

}  // namespace lofkit

#endif  // LOFKIT_BASELINES_KNN_OUTLIER_H_
