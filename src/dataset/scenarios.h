#ifndef LOFKIT_DATASET_SCENARIOS_H_
#define LOFKIT_DATASET_SCENARIOS_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/random.h"
#include "common/result.h"
#include "dataset/dataset.h"

namespace lofkit {

/// Builders for the concrete datasets of the paper's figures and
/// experiments. Each returns the points plus the indices of the named /
/// planted objects the experiment talks about, so tests and benches can
/// assert on exactly the objects the paper discusses.
///
/// Real-world inputs the paper used but that are not available (NHL96,
/// Bundesliga 1998/99, TV-snapshot histograms) are replaced by synthetic
/// equivalents that preserve the structural property each experiment
/// exercises; see DESIGN.md section 4 for the substitution arguments.
namespace scenarios {

/// A dataset plus a name -> point-index map for the special objects.
struct Scenario {
  Dataset data;
  std::map<std::string, size_t> named;

  /// Index of a named object; the name must exist (CHECKed by callers via
  /// named.at in tests, use Find for Status-based access).
  Result<size_t> Find(const std::string& name) const;
};

/// Figure 1 / section 3, dataset DS1: 502 objects in 2-d.
///  - "C1": 400 objects, sparse (uniform in a wide box),
///  - "C2": 100 objects, dense Gaussian,
///  - "o1": far from both clusters,
///  - "o2": just outside C2, closer to C2 than any C1 object is to its own
///          nearest neighbor — the configuration for which no DB(pct, dmin)
///          setting flags o2 without also flagging all of C1.
/// Named points: "o1", "o2". Labels carry the cluster names.
Result<Scenario> MakeDs1(Rng& rng);

/// Figure 7: a single 2-d Gaussian cluster (default 1000 points) used for
/// the LOF-vs-MinPts fluctuation study.
Result<Scenario> MakeGaussianBlob(Rng& rng, size_t count = 1000);

/// Figure 8: three clusters S1 (10 points), S2 (35), S3 (500) with the
/// spacing the paper describes (S1 and S2 near each other, S3 the large
/// background cluster). Named points: "s1_rep", "s2_rep", "s3_rep" — one
/// representative object per cluster (the paper plots one of each).
Result<Scenario> MakeFig8Clusters(Rng& rng);

/// Figure 9 / section 7.1: one low-density Gaussian cluster of 200 objects,
/// one dense Gaussian cluster of 500, two uniform clusters of 500 with
/// different densities, plus seven planted outliers "outlier_0".."outlier_6"
/// at varying distances from the clusters.
Result<Scenario> MakeFig9Dataset(Rng& rng);

/// Section 7.2 (substituted): NHL-like 3-d subspace of (points scored,
/// plus-minus, penalty minutes) for ~850 players, with planted analogues
/// "konstantinov" (extreme plus-minus + high penalty minutes) and "barnaby"
/// (extreme penalty minutes, modest points).
Result<Scenario> MakeHockeySubspace1(Rng& rng);

/// Section 7.2 second test (substituted): (games played, goals scored,
/// shooting percentage) with planted "osgood" (goalie: full season, one
/// goal, tiny shot count -> unusual shooting pct), "lemieux" (extreme
/// scorer) and "poapst" (3 games, 1 goal, 50% shooting).
Result<Scenario> MakeHockeySubspace2(Rng& rng);

/// Section 7.3 / Table 3 (substituted): 375 Bundesliga-like players over
/// (games played, goals per game, position code), four position clusters.
/// Planted outliers named "preetz", "schjoenberg", "butt", "kirsten",
/// "elber" mirror the five players of Table 3. Coordinates are in the raw
/// units; position codes are spaced so the four clusters separate, as they
/// do in the paper's dataset. Point labels carry the position names.
Result<Scenario> MakeSoccerLike(Rng& rng);

/// Section 7 (substituted): 64-dimensional normalized histogram clusters
/// (stand-in for TV-snapshot color histograms) with planted local outliers
/// "hist_outlier_0".."hist_outlier_4" formed by blending two cluster
/// templates.
Result<Scenario> Make64DHistograms(Rng& rng);

}  // namespace scenarios
}  // namespace lofkit

#endif  // LOFKIT_DATASET_SCENARIOS_H_
