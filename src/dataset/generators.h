#ifndef LOFKIT_DATASET_GENERATORS_H_
#define LOFKIT_DATASET_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "dataset/dataset.h"

namespace lofkit {

/// Primitive synthetic-point generators. Every routine appends into an
/// existing Dataset so scenario builders can compose clusters freely; all
/// randomness flows through the caller's Rng, so a fixed seed reproduces a
/// dataset exactly.
namespace generators {

/// Appends `count` points from an isotropic Gaussian centered at `center`
/// with the given standard deviation. Points get `label`.
Status AppendGaussianCluster(Dataset& dataset, Rng& rng,
                             std::span<const double> center, double stddev,
                             size_t count, const std::string& label = "");

/// Appends `count` points from an axis-aligned anisotropic Gaussian.
Status AppendGaussianClusterAniso(Dataset& dataset, Rng& rng,
                                  std::span<const double> center,
                                  std::span<const double> stddevs,
                                  size_t count, const std::string& label = "");

/// Appends `count` points uniform in the axis-aligned box [lo, hi].
Status AppendUniformBox(Dataset& dataset, Rng& rng,
                        std::span<const double> lo,
                        std::span<const double> hi, size_t count,
                        const std::string& label = "");

/// Appends `count` points uniform inside the ball of radius `radius`
/// centered at `center` (exact, via normalized Gaussian directions).
Status AppendUniformBall(Dataset& dataset, Rng& rng,
                         std::span<const double> center, double radius,
                         size_t count, const std::string& label = "");

/// Appends `count` 2-d points on a noisy ring (radius +- noise) centered at
/// (cx, cy). Only valid for 2-d datasets.
Status AppendRing(Dataset& dataset, Rng& rng, double cx, double cy,
                  double radius, double noise, size_t count,
                  const std::string& label = "");

/// Appends a single point (convenience for planted outliers).
Status AppendPoint(Dataset& dataset, std::span<const double> coordinates,
                   const std::string& label = "");

/// Appends `copies` exact duplicates of `coordinates` (duplicate-handling
/// tests for the Def. 6 footnote).
Status AppendDuplicates(Dataset& dataset, std::span<const double> coordinates,
                        size_t copies, const std::string& label = "");

/// Appends `count` normalized 64-bin histogram-like vectors clustered around
/// a random template (stand-in for the paper's TV-snapshot color
/// histograms). `concentration` controls cluster tightness; higher is
/// tighter. The dataset must have dimension 64.
Status AppendHistogramCluster(Dataset& dataset, Rng& rng, size_t count,
                              double concentration,
                              const std::string& label = "");

/// Description of one Gaussian cluster for MakeGaussianMixture.
struct GaussianSpec {
  std::vector<double> center;
  double stddev = 1.0;
  size_t count = 0;
  std::string label;
};

/// Builds a dataset as the union of Gaussian clusters; the workload type
/// used by the paper's performance experiments ("generated randomly,
/// containing different numbers of Gaussian clusters of different sizes and
/// densities", section 7.4).
Result<Dataset> MakeGaussianMixture(Rng& rng, size_t dimension,
                                    std::span<const GaussianSpec> specs);

/// Builds the random performance workload of section 7.4: `clusters`
/// Gaussian clusters with random centers in [0, 100]^d, random stddev in
/// [0.5, 5], sizes split evenly over `total_points`.
Result<Dataset> MakePerformanceWorkload(Rng& rng, size_t dimension,
                                        size_t total_points,
                                        size_t clusters);

/// The section-7.4 workload past the Figure-10 dimensionality wall, shaped
/// like real high-dimensional data: a MakePerformanceWorkload mixture of
/// `intrinsic_dim` dimensions embedded into `ambient_dim` coordinates via
/// a seeded random orthonormal frame, plus isotropic Gaussian noise of
/// `noise_stddev` per ambient coordinate. Distances concentrate at the
/// intrinsic dimensionality while every ambient axis carries variance —
/// the regime approximate search is built for, and the one where exact
/// axis-aligned indexes cannot prune.
Result<Dataset> MakeEmbeddedWorkload(Rng& rng, size_t ambient_dim,
                                     size_t intrinsic_dim,
                                     size_t total_points, size_t clusters,
                                     double noise_stddev);

}  // namespace generators
}  // namespace lofkit

#endif  // LOFKIT_DATASET_GENERATORS_H_
