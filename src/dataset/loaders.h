#ifndef LOFKIT_DATASET_LOADERS_H_
#define LOFKIT_DATASET_LOADERS_H_

#include <string>
#include <vector>

#include "common/csv.h"
#include "common/result.h"
#include "dataset/dataset.h"

namespace lofkit {

/// Options for building a Dataset from tabular (CSV) data.
struct DatasetLoadOptions {
  /// Columns to use as coordinates, by 0-based position. Empty = all
  /// columns.
  std::vector<size_t> coordinate_columns;
  /// Optional column whose values become point labels (rendered with %g).
  /// -1 = no label column.
  int label_column = -1;
  CsvReadOptions csv;
};

/// Builds a Dataset from an in-memory CSV table.
Result<Dataset> DatasetFromCsvTable(const CsvTable& table,
                                    const DatasetLoadOptions& options = {});

/// Reads a CSV file into a Dataset (ReadCsvFile + DatasetFromCsvTable).
Result<Dataset> DatasetFromCsvFile(const std::string& path,
                                   const DatasetLoadOptions& options = {});

}  // namespace lofkit

#endif  // LOFKIT_DATASET_LOADERS_H_
