#include "dataset/metric.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "dataset/point_block.h"

namespace lofkit {

namespace {

// Clamps q[d] into [lo[d], hi[d]] and returns the residual |q[d] - clamp|.
inline double BoxDelta(double q, double lo, double hi) {
  if (q < lo) return lo - q;
  if (q > hi) return q - hi;
  return 0.0;
}

// Distance from q[d] to the farther edge of [lo[d], hi[d]].
inline double BoxMaxDelta(double q, double lo, double hi) {
  const double to_lo = q > lo ? q - lo : lo - q;
  const double to_hi = q > hi ? q - hi : hi - q;
  return to_lo > to_hi ? to_lo : to_hi;
}

// --- DistanceKernels adapters -----------------------------------------
//
// Non-capturing functions binding the raw loops of distance_kernels.cc to
// the DistanceKernels signature. ctx conventions: unused for the
// stateless metrics, the metric instance for Minkowski and weighted L2.

double EuclidRankOne(const void*, const double* a, const double* b,
                     size_t dim) {
  return kernels::L2Squared(a, b, dim);
}
double EuclidRankBounded(const void*, const double* a, const double* b,
                         size_t dim, double bound) {
  return kernels::L2SquaredBounded(a, b, dim, bound);
}
void EuclidRankBlock(const void*, const double* q, const double* block,
                     size_t dim, double* out) {
  kernels::L2SquaredBlock(q, block, dim, out);
}
void EuclidRankGather(const void*, const double* q, const double* raw,
                      const uint32_t* ids, size_t count, size_t dim,
                      double bound, double* out) {
  for (size_t i = 0; i < count; ++i) {
    out[i] = kernels::L2SquaredBounded(q, raw + size_t{ids[i]} * dim, dim,
                                       bound);
  }
}
double EuclidRankBox(const void*, const double* q, const double* lo,
                     const double* hi, size_t dim) {
  return kernels::L2SquaredToBox(q, lo, hi, dim);
}
double EuclidRankCut(const void*, double qd, double v, size_t) {
  const double t = qd - v;
  return t * t;
}

double L1RankOne(const void*, const double* a, const double* b, size_t dim) {
  return kernels::L1(a, b, dim);
}
double L1RankBounded(const void*, const double* a, const double* b,
                     size_t dim, double bound) {
  return kernels::L1Bounded(a, b, dim, bound);
}
void L1RankBlock(const void*, const double* q, const double* block,
                 size_t dim, double* out) {
  kernels::L1Block(q, block, dim, out);
}
void L1RankGather(const void*, const double* q, const double* raw,
                  const uint32_t* ids, size_t count, size_t dim, double bound,
                  double* out) {
  for (size_t i = 0; i < count; ++i) {
    out[i] = kernels::L1Bounded(q, raw + size_t{ids[i]} * dim, dim, bound);
  }
}
double L1RankBox(const void*, const double* q, const double* lo,
                 const double* hi, size_t dim) {
  return kernels::L1ToBox(q, lo, hi, dim);
}
// Shared by every metric whose rank is the distance itself: one
// coordinate gap alone lower-bounds L1, Linf, and any L_p
// ((|t|^p)^(1/p) = |t|).
double AbsRankCut(const void*, double qd, double v, size_t) {
  return qd < v ? v - qd : qd - v;
}

double LinfRankOne(const void*, const double* a, const double* b,
                   size_t dim) {
  return kernels::Linf(a, b, dim);
}
double LinfRankBounded(const void*, const double* a, const double* b,
                       size_t dim, double bound) {
  return kernels::LinfBounded(a, b, dim, bound);
}
void LinfRankBlock(const void*, const double* q, const double* block,
                   size_t dim, double* out) {
  kernels::LinfBlock(q, block, dim, out);
}
void LinfRankGather(const void*, const double* q, const double* raw,
                    const uint32_t* ids, size_t count, size_t dim,
                    double bound, double* out) {
  for (size_t i = 0; i < count; ++i) {
    out[i] = kernels::LinfBounded(q, raw + size_t{ids[i]} * dim, dim, bound);
  }
}
double LinfRankBox(const void*, const double* q, const double* lo,
                   const double* hi, size_t dim) {
  return kernels::LinfToBox(q, lo, hi, dim);
}

double LpRankOne(const void* ctx, const double* a, const double* b,
                 size_t dim) {
  return kernels::Lp(static_cast<const MinkowskiMetric*>(ctx)->p(), a, b, dim);
}
double LpRankBounded(const void* ctx, const double* a, const double* b,
                     size_t dim, double) {
  return LpRankOne(ctx, a, b, dim);  // no exactly-safe partial bound for L_p
}
void LpRankBlock(const void* ctx, const double* q, const double* block,
                 size_t dim, double* out) {
  kernels::LpBlock(static_cast<const MinkowskiMetric*>(ctx)->p(), q, block,
                   dim, out);
}
void LpRankGather(const void* ctx, const double* q, const double* raw,
                  const uint32_t* ids, size_t count, size_t dim, double,
                  double* out) {
  for (size_t i = 0; i < count; ++i) {
    out[i] = LpRankOne(ctx, q, raw + size_t{ids[i]} * dim, dim);
  }
}
double LpRankBox(const void* ctx, const double* q, const double* lo,
                 const double* hi, size_t dim) {
  return kernels::LpToBox(static_cast<const MinkowskiMetric*>(ctx)->p(), q,
                          lo, hi, dim);
}

const double* WeightsOf(const void* ctx) {
  return static_cast<const WeightedEuclideanMetric*>(ctx)->weights().data();
}
double WL2RankOne(const void* ctx, const double* a, const double* b,
                  size_t dim) {
  return kernels::WeightedL2Squared(WeightsOf(ctx), a, b, dim);
}
double WL2RankBounded(const void* ctx, const double* a, const double* b,
                      size_t dim, double bound) {
  return kernels::WeightedL2SquaredBounded(WeightsOf(ctx), a, b, dim, bound);
}
void WL2RankBlock(const void* ctx, const double* q, const double* block,
                  size_t dim, double* out) {
  kernels::WeightedL2SquaredBlock(WeightsOf(ctx), q, block, dim, out);
}
void WL2RankGather(const void* ctx, const double* q, const double* raw,
                   const uint32_t* ids, size_t count, size_t dim,
                   double bound, double* out) {
  const double* w = WeightsOf(ctx);
  for (size_t i = 0; i < count; ++i) {
    out[i] = kernels::WeightedL2SquaredBounded(w, q, raw + size_t{ids[i]} * dim,
                                               dim, bound);
  }
}
double WL2RankBox(const void* ctx, const double* q, const double* lo,
                  const double* hi, size_t dim) {
  return kernels::WeightedL2SquaredToBox(WeightsOf(ctx), q, lo, hi, dim);
}
double WL2RankCut(const void* ctx, double qd, double v, size_t d) {
  const double t = qd - v;
  return WeightsOf(ctx)[d] * t * t;
}

// Fallback trampolines routing through the virtual interface, for metrics
// (including external subclasses) without tight loops of their own.
double TrampRankOne(const void* ctx, const double* a, const double* b,
                    size_t dim) {
  return static_cast<const Metric*>(ctx)->RankDistance({a, dim}, {b, dim});
}
double TrampRankBounded(const void* ctx, const double* a, const double* b,
                        size_t dim, double) {
  return TrampRankOne(ctx, a, b, dim);
}
void TrampRankBlock(const void* ctx, const double* q, const double* block,
                    size_t dim, double* out) {
  std::vector<double> lane(dim);
  for (size_t j = 0; j < kKernelLanes; ++j) {
    for (size_t d = 0; d < dim; ++d) lane[d] = block[d * kKernelLanes + j];
    out[j] = TrampRankOne(ctx, q, lane.data(), dim);
  }
}
void TrampRankGather(const void* ctx, const double* q, const double* raw,
                     const uint32_t* ids, size_t count, size_t dim, double,
                     double* out) {
  for (size_t i = 0; i < count; ++i) {
    out[i] = TrampRankOne(ctx, q, raw + size_t{ids[i]} * dim, dim);
  }
}
double TrampRankBox(const void* ctx, const double* q, const double* lo,
                    const double* hi, size_t dim) {
  return static_cast<const Metric*>(ctx)->MinRankToBox({q, dim}, {lo, dim},
                                                       {hi, dim});
}
// Zero is admissible for any metric: a gate that never fires.
double TrampRankCut(const void*, double, double, size_t) { return 0.0; }

DistanceKernels MakeKernels(const void* ctx, bool squared,
                            double (*one)(const void*, const double*,
                                          const double*, size_t),
                            double (*bounded)(const void*, const double*,
                                              const double*, size_t, double),
                            void (*block)(const void*, const double*,
                                          const double*, size_t, double*),
                            void (*gather)(const void*, const double*,
                                           const double*, const uint32_t*,
                                           size_t, size_t, double, double*),
                            double (*box)(const void*, const double*,
                                          const double*, const double*,
                                          size_t),
                            double (*cut)(const void*, double, double,
                                          size_t)) {
  DistanceKernels k;
  k.ctx = ctx;
  k.squared = squared;
  k.rank_one = one;
  k.rank_bounded = bounded;
  k.rank_block = block;
  k.rank_gather = gather;
  k.rank_box = box;
  k.rank_cut = cut;
  return k;
}

}  // namespace

void Metric::BatchDistance(std::span<const double> query,
                           const PointBlockView& view, size_t b,
                           std::span<double> out) const {
  assert(out.size() >= kKernelLanes);
  const size_t dim = view.dimension();
  std::vector<double> lane(dim);
  const double* block = view.block(b);
  for (size_t j = 0; j < kKernelLanes; ++j) {
    for (size_t d = 0; d < dim; ++d) lane[d] = block[d * kKernelLanes + j];
    out[j] = Distance(query, lane);
  }
}

DistanceKernels Metric::kernels() const {
  return MakeKernels(this, squared_rank(), TrampRankOne, TrampRankBounded,
                     TrampRankBlock, TrampRankGather, TrampRankBox,
                     TrampRankCut);
}

double EuclideanMetric::Distance(std::span<const double> a,
                                 std::span<const double> b) const {
  assert(a.size() == b.size());
  // sqrt of the kernel's squared sum: same accumulation order as before
  // the kernel layer, so results are bit-identical.
  return std::sqrt(lofkit::kernels::L2Squared(a.data(), b.data(), a.size()));
}

double EuclideanMetric::RankDistance(std::span<const double> a,
                                     std::span<const double> b) const {
  assert(a.size() == b.size());
  return lofkit::kernels::L2Squared(a.data(), b.data(), a.size());
}

double EuclideanMetric::MinDistanceToBox(std::span<const double> q,
                                         std::span<const double> lo,
                                         std::span<const double> hi) const {
  return std::sqrt(MinRankToBox(q, lo, hi));
}

double EuclideanMetric::MinRankToBox(std::span<const double> q,
                                     std::span<const double> lo,
                                     std::span<const double> hi) const {
  double sum = 0.0;
  for (size_t i = 0; i < q.size(); ++i) {
    const double d = BoxDelta(q[i], lo[i], hi[i]);
    sum += d * d;
  }
  return sum;
}

double EuclideanMetric::MaxDistanceToBox(std::span<const double> q,
                                         std::span<const double> lo,
                                         std::span<const double> hi) const {
  return std::sqrt(MaxRankToBox(q, lo, hi));
}

double EuclideanMetric::MaxRankToBox(std::span<const double> q,
                                     std::span<const double> lo,
                                     std::span<const double> hi) const {
  double sum = 0.0;
  for (size_t i = 0; i < q.size(); ++i) {
    const double d = BoxMaxDelta(q[i], lo[i], hi[i]);
    sum += d * d;
  }
  return sum;
}

void EuclideanMetric::BatchDistance(std::span<const double> query,
                                    const PointBlockView& view, size_t b,
                                    std::span<double> out) const {
  assert(out.size() >= kKernelLanes);
  double rank[kKernelLanes];
  lofkit::kernels::L2SquaredBlock(query.data(), view.block(b),
                                  view.dimension(), rank);
  for (size_t j = 0; j < kKernelLanes; ++j) out[j] = std::sqrt(rank[j]);
}

DistanceKernels EuclideanMetric::kernels() const {
  return MakeKernels(this, /*squared=*/true, EuclidRankOne, EuclidRankBounded,
                     EuclidRankBlock, EuclidRankGather, EuclidRankBox,
                     EuclidRankCut);
}

double ManhattanMetric::Distance(std::span<const double> a,
                                 std::span<const double> b) const {
  assert(a.size() == b.size());
  return lofkit::kernels::L1(a.data(), b.data(), a.size());
}

void ManhattanMetric::BatchDistance(std::span<const double> query,
                                    const PointBlockView& view, size_t b,
                                    std::span<double> out) const {
  assert(out.size() >= kKernelLanes);
  lofkit::kernels::L1Block(query.data(), view.block(b), view.dimension(),
                           out.data());
}

DistanceKernels ManhattanMetric::kernels() const {
  return MakeKernels(this, /*squared=*/false, L1RankOne, L1RankBounded,
                     L1RankBlock, L1RankGather, L1RankBox, AbsRankCut);
}

double ManhattanMetric::MinDistanceToBox(std::span<const double> q,
                                         std::span<const double> lo,
                                         std::span<const double> hi) const {
  double sum = 0.0;
  for (size_t i = 0; i < q.size(); ++i) {
    sum += BoxDelta(q[i], lo[i], hi[i]);
  }
  return sum;
}


double ManhattanMetric::MaxDistanceToBox(std::span<const double> q,
                                         std::span<const double> lo,
                                         std::span<const double> hi) const {
  double sum = 0.0;
  for (size_t i = 0; i < q.size(); ++i) {
    sum += BoxMaxDelta(q[i], lo[i], hi[i]);
  }
  return sum;
}

double ChebyshevMetric::Distance(std::span<const double> a,
                                 std::span<const double> b) const {
  assert(a.size() == b.size());
  return lofkit::kernels::Linf(a.data(), b.data(), a.size());
}

void ChebyshevMetric::BatchDistance(std::span<const double> query,
                                    const PointBlockView& view, size_t b,
                                    std::span<double> out) const {
  assert(out.size() >= kKernelLanes);
  lofkit::kernels::LinfBlock(query.data(), view.block(b), view.dimension(),
                             out.data());
}

DistanceKernels ChebyshevMetric::kernels() const {
  return MakeKernels(this, /*squared=*/false, LinfRankOne, LinfRankBounded,
                     LinfRankBlock, LinfRankGather, LinfRankBox, AbsRankCut);
}

double ChebyshevMetric::MinDistanceToBox(std::span<const double> q,
                                         std::span<const double> lo,
                                         std::span<const double> hi) const {
  double max = 0.0;
  for (size_t i = 0; i < q.size(); ++i) {
    const double d = BoxDelta(q[i], lo[i], hi[i]);
    if (d > max) max = d;
  }
  return max;
}


double ChebyshevMetric::MaxDistanceToBox(std::span<const double> q,
                                         std::span<const double> lo,
                                         std::span<const double> hi) const {
  double max = 0.0;
  for (size_t i = 0; i < q.size(); ++i) {
    const double d = BoxMaxDelta(q[i], lo[i], hi[i]);
    if (d > max) max = d;
  }
  return max;
}

Result<MinkowskiMetric> MinkowskiMetric::Create(double p) {
  if (!(p >= 1.0) || !std::isfinite(p)) {
    return Status::InvalidArgument("Minkowski p must be finite and >= 1");
  }
  return MinkowskiMetric(p);
}

double MinkowskiMetric::Distance(std::span<const double> a,
                                 std::span<const double> b) const {
  assert(a.size() == b.size());
  return lofkit::kernels::Lp(p_, a.data(), b.data(), a.size());
}

void MinkowskiMetric::BatchDistance(std::span<const double> query,
                                    const PointBlockView& view, size_t b,
                                    std::span<double> out) const {
  assert(out.size() >= kKernelLanes);
  lofkit::kernels::LpBlock(p_, query.data(), view.block(b), view.dimension(),
                           out.data());
}

DistanceKernels MinkowskiMetric::kernels() const {
  return MakeKernels(this, /*squared=*/false, LpRankOne, LpRankBounded,
                     LpRankBlock, LpRankGather, LpRankBox, AbsRankCut);
}

double MinkowskiMetric::MinDistanceToBox(std::span<const double> q,
                                         std::span<const double> lo,
                                         std::span<const double> hi) const {
  double sum = 0.0;
  for (size_t i = 0; i < q.size(); ++i) {
    sum += std::pow(BoxDelta(q[i], lo[i], hi[i]), p_);
  }
  return std::pow(sum, 1.0 / p_);
}


double MinkowskiMetric::MaxDistanceToBox(std::span<const double> q,
                                         std::span<const double> lo,
                                         std::span<const double> hi) const {
  double sum = 0.0;
  for (size_t i = 0; i < q.size(); ++i) {
    sum += std::pow(BoxMaxDelta(q[i], lo[i], hi[i]), p_);
  }
  return std::pow(sum, 1.0 / p_);
}

Result<WeightedEuclideanMetric> WeightedEuclideanMetric::Create(
    std::vector<double> weights) {
  if (weights.empty()) {
    return Status::InvalidArgument("weight vector must be non-empty");
  }
  for (double w : weights) {
    if (!std::isfinite(w) || w <= 0.0) {
      return Status::InvalidArgument("weights must be finite and > 0");
    }
  }
  return WeightedEuclideanMetric(std::move(weights));
}

double WeightedEuclideanMetric::Distance(std::span<const double> a,
                                         std::span<const double> b) const {
  assert(a.size() == b.size());
  assert(a.size() == weights_.size());
  return std::sqrt(
      lofkit::kernels::WeightedL2Squared(weights_.data(), a.data(), b.data(),
                                         a.size()));
}

double WeightedEuclideanMetric::RankDistance(std::span<const double> a,
                                             std::span<const double> b) const {
  assert(a.size() == b.size());
  assert(a.size() == weights_.size());
  return lofkit::kernels::WeightedL2Squared(weights_.data(), a.data(),
                                            b.data(), a.size());
}

double WeightedEuclideanMetric::MinDistanceToBox(
    std::span<const double> q, std::span<const double> lo,
    std::span<const double> hi) const {
  return std::sqrt(MinRankToBox(q, lo, hi));
}

double WeightedEuclideanMetric::MinRankToBox(std::span<const double> q,
                                             std::span<const double> lo,
                                             std::span<const double> hi) const {
  double sum = 0.0;
  for (size_t i = 0; i < q.size(); ++i) {
    const double d = BoxDelta(q[i], lo[i], hi[i]);
    sum += weights_[i] * d * d;
  }
  return sum;
}

double WeightedEuclideanMetric::MaxDistanceToBox(
    std::span<const double> q, std::span<const double> lo,
    std::span<const double> hi) const {
  return std::sqrt(MaxRankToBox(q, lo, hi));
}

double WeightedEuclideanMetric::MaxRankToBox(std::span<const double> q,
                                             std::span<const double> lo,
                                             std::span<const double> hi) const {
  double sum = 0.0;
  for (size_t i = 0; i < q.size(); ++i) {
    const double d = BoxMaxDelta(q[i], lo[i], hi[i]);
    sum += weights_[i] * d * d;
  }
  return sum;
}

void WeightedEuclideanMetric::BatchDistance(std::span<const double> query,
                                            const PointBlockView& view,
                                            size_t b,
                                            std::span<double> out) const {
  assert(out.size() >= kKernelLanes);
  double rank[kKernelLanes];
  lofkit::kernels::WeightedL2SquaredBlock(weights_.data(), query.data(),
                                          view.block(b), view.dimension(),
                                          rank);
  for (size_t j = 0; j < kKernelLanes; ++j) out[j] = std::sqrt(rank[j]);
}

DistanceKernels WeightedEuclideanMetric::kernels() const {
  return MakeKernels(this, /*squared=*/true, WL2RankOne, WL2RankBounded,
                     WL2RankBlock, WL2RankGather, WL2RankBox, WL2RankCut);
}

double WeightedEuclideanMetric::CoordinateDistance(size_t dim,
                                                   double delta) const {
  const double d = delta < 0 ? -delta : delta;
  return std::sqrt(weights_[dim]) * d;
}

double AngularMetric::Distance(std::span<const double> a,
                               std::span<const double> b) const {
  assert(a.size() == b.size());
  double dot = 0.0, norm_a = 0.0, norm_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    norm_a += a[i] * a[i];
    norm_b += b[i] * b[i];
  }
  const double denom = std::sqrt(norm_a) * std::sqrt(norm_b);
  if (denom <= 0.0) return 0.0;  // zero vector: no direction
  const double cosine = std::clamp(dot / denom, -1.0, 1.0);
  return std::acos(cosine);
}

double AngularMetric::MinDistanceToBox(std::span<const double>,
                                       std::span<const double>,
                                       std::span<const double>) const {
  return 0.0;  // trivially valid; see class comment
}

double AngularMetric::MaxDistanceToBox(std::span<const double>,
                                       std::span<const double>,
                                       std::span<const double>) const {
  return std::acos(-1.0);  // pi
}

double AngularMetric::CoordinateDistance(size_t, double) const {
  return 0.0;  // no per-coordinate angle bound exists
}

const EuclideanMetric& Euclidean() {
  static const EuclideanMetric kMetric;
  return kMetric;
}

const ManhattanMetric& Manhattan() {
  static const ManhattanMetric kMetric;
  return kMetric;
}

const ChebyshevMetric& Chebyshev() {
  static const ChebyshevMetric kMetric;
  return kMetric;
}

const AngularMetric& Angular() {
  static const AngularMetric kMetric;
  return kMetric;
}

Result<const Metric*> MetricByName(std::string_view name) {
  if (name == "euclidean") return static_cast<const Metric*>(&Euclidean());
  if (name == "manhattan") return static_cast<const Metric*>(&Manhattan());
  if (name == "chebyshev") return static_cast<const Metric*>(&Chebyshev());
  if (name == "angular") return static_cast<const Metric*>(&Angular());
  return Status::NotFound("unknown metric: " + std::string(name));
}

}  // namespace lofkit
