#include "dataset/metric.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lofkit {

namespace {

// Clamps q[d] into [lo[d], hi[d]] and returns the residual |q[d] - clamp|.
inline double BoxDelta(double q, double lo, double hi) {
  if (q < lo) return lo - q;
  if (q > hi) return q - hi;
  return 0.0;
}

// Distance from q[d] to the farther edge of [lo[d], hi[d]].
inline double BoxMaxDelta(double q, double lo, double hi) {
  const double to_lo = q > lo ? q - lo : lo - q;
  const double to_hi = q > hi ? q - hi : hi - q;
  return to_lo > to_hi ? to_lo : to_hi;
}

}  // namespace

double EuclideanMetric::Distance(std::span<const double> a,
                                 std::span<const double> b) const {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

double EuclideanMetric::MinDistanceToBox(std::span<const double> q,
                                         std::span<const double> lo,
                                         std::span<const double> hi) const {
  double sum = 0.0;
  for (size_t i = 0; i < q.size(); ++i) {
    const double d = BoxDelta(q[i], lo[i], hi[i]);
    sum += d * d;
  }
  return std::sqrt(sum);
}


double EuclideanMetric::MaxDistanceToBox(std::span<const double> q,
                                         std::span<const double> lo,
                                         std::span<const double> hi) const {
  double sum = 0.0;
  for (size_t i = 0; i < q.size(); ++i) {
    const double d = BoxMaxDelta(q[i], lo[i], hi[i]);
    sum += d * d;
  }
  return std::sqrt(sum);
}

double ManhattanMetric::Distance(std::span<const double> a,
                                 std::span<const double> b) const {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += std::abs(a[i] - b[i]);
  }
  return sum;
}

double ManhattanMetric::MinDistanceToBox(std::span<const double> q,
                                         std::span<const double> lo,
                                         std::span<const double> hi) const {
  double sum = 0.0;
  for (size_t i = 0; i < q.size(); ++i) {
    sum += BoxDelta(q[i], lo[i], hi[i]);
  }
  return sum;
}


double ManhattanMetric::MaxDistanceToBox(std::span<const double> q,
                                         std::span<const double> lo,
                                         std::span<const double> hi) const {
  double sum = 0.0;
  for (size_t i = 0; i < q.size(); ++i) {
    sum += BoxMaxDelta(q[i], lo[i], hi[i]);
  }
  return sum;
}

double ChebyshevMetric::Distance(std::span<const double> a,
                                 std::span<const double> b) const {
  assert(a.size() == b.size());
  double max = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = std::abs(a[i] - b[i]);
    if (d > max) max = d;
  }
  return max;
}

double ChebyshevMetric::MinDistanceToBox(std::span<const double> q,
                                         std::span<const double> lo,
                                         std::span<const double> hi) const {
  double max = 0.0;
  for (size_t i = 0; i < q.size(); ++i) {
    const double d = BoxDelta(q[i], lo[i], hi[i]);
    if (d > max) max = d;
  }
  return max;
}


double ChebyshevMetric::MaxDistanceToBox(std::span<const double> q,
                                         std::span<const double> lo,
                                         std::span<const double> hi) const {
  double max = 0.0;
  for (size_t i = 0; i < q.size(); ++i) {
    const double d = BoxMaxDelta(q[i], lo[i], hi[i]);
    if (d > max) max = d;
  }
  return max;
}

Result<MinkowskiMetric> MinkowskiMetric::Create(double p) {
  if (!(p >= 1.0) || !std::isfinite(p)) {
    return Status::InvalidArgument("Minkowski p must be finite and >= 1");
  }
  return MinkowskiMetric(p);
}

double MinkowskiMetric::Distance(std::span<const double> a,
                                 std::span<const double> b) const {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += std::pow(std::abs(a[i] - b[i]), p_);
  }
  return std::pow(sum, 1.0 / p_);
}

double MinkowskiMetric::MinDistanceToBox(std::span<const double> q,
                                         std::span<const double> lo,
                                         std::span<const double> hi) const {
  double sum = 0.0;
  for (size_t i = 0; i < q.size(); ++i) {
    sum += std::pow(BoxDelta(q[i], lo[i], hi[i]), p_);
  }
  return std::pow(sum, 1.0 / p_);
}


double MinkowskiMetric::MaxDistanceToBox(std::span<const double> q,
                                         std::span<const double> lo,
                                         std::span<const double> hi) const {
  double sum = 0.0;
  for (size_t i = 0; i < q.size(); ++i) {
    sum += std::pow(BoxMaxDelta(q[i], lo[i], hi[i]), p_);
  }
  return std::pow(sum, 1.0 / p_);
}

Result<WeightedEuclideanMetric> WeightedEuclideanMetric::Create(
    std::vector<double> weights) {
  if (weights.empty()) {
    return Status::InvalidArgument("weight vector must be non-empty");
  }
  for (double w : weights) {
    if (!std::isfinite(w) || w <= 0.0) {
      return Status::InvalidArgument("weights must be finite and > 0");
    }
  }
  return WeightedEuclideanMetric(std::move(weights));
}

double WeightedEuclideanMetric::Distance(std::span<const double> a,
                                         std::span<const double> b) const {
  assert(a.size() == b.size());
  assert(a.size() == weights_.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += weights_[i] * d * d;
  }
  return std::sqrt(sum);
}

double WeightedEuclideanMetric::MinDistanceToBox(
    std::span<const double> q, std::span<const double> lo,
    std::span<const double> hi) const {
  double sum = 0.0;
  for (size_t i = 0; i < q.size(); ++i) {
    const double d = BoxDelta(q[i], lo[i], hi[i]);
    sum += weights_[i] * d * d;
  }
  return std::sqrt(sum);
}


double WeightedEuclideanMetric::MaxDistanceToBox(
    std::span<const double> q, std::span<const double> lo,
    std::span<const double> hi) const {
  double sum = 0.0;
  for (size_t i = 0; i < q.size(); ++i) {
    const double d = BoxMaxDelta(q[i], lo[i], hi[i]);
    sum += weights_[i] * d * d;
  }
  return std::sqrt(sum);
}

double WeightedEuclideanMetric::CoordinateDistance(size_t dim,
                                                   double delta) const {
  const double d = delta < 0 ? -delta : delta;
  return std::sqrt(weights_[dim]) * d;
}

double AngularMetric::Distance(std::span<const double> a,
                               std::span<const double> b) const {
  assert(a.size() == b.size());
  double dot = 0.0, norm_a = 0.0, norm_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    norm_a += a[i] * a[i];
    norm_b += b[i] * b[i];
  }
  const double denom = std::sqrt(norm_a) * std::sqrt(norm_b);
  if (denom <= 0.0) return 0.0;  // zero vector: no direction
  const double cosine = std::clamp(dot / denom, -1.0, 1.0);
  return std::acos(cosine);
}

double AngularMetric::MinDistanceToBox(std::span<const double>,
                                       std::span<const double>,
                                       std::span<const double>) const {
  return 0.0;  // trivially valid; see class comment
}

double AngularMetric::MaxDistanceToBox(std::span<const double>,
                                       std::span<const double>,
                                       std::span<const double>) const {
  return std::acos(-1.0);  // pi
}

double AngularMetric::CoordinateDistance(size_t, double) const {
  return 0.0;  // no per-coordinate angle bound exists
}

const EuclideanMetric& Euclidean() {
  static const EuclideanMetric kMetric;
  return kMetric;
}

const ManhattanMetric& Manhattan() {
  static const ManhattanMetric kMetric;
  return kMetric;
}

const ChebyshevMetric& Chebyshev() {
  static const ChebyshevMetric kMetric;
  return kMetric;
}

const AngularMetric& Angular() {
  static const AngularMetric kMetric;
  return kMetric;
}

Result<const Metric*> MetricByName(std::string_view name) {
  if (name == "euclidean") return static_cast<const Metric*>(&Euclidean());
  if (name == "manhattan") return static_cast<const Metric*>(&Manhattan());
  if (name == "chebyshev") return static_cast<const Metric*>(&Chebyshev());
  if (name == "angular") return static_cast<const Metric*>(&Angular());
  return Status::NotFound("unknown metric: " + std::string(name));
}

}  // namespace lofkit
