#ifndef LOFKIT_DATASET_POINT_BLOCK_H_
#define LOFKIT_DATASET_POINT_BLOCK_H_

#include <cstdint>
#include <vector>

#include "dataset/distance_kernels.h"

namespace lofkit {

class Dataset;

/// Blocked structure-of-arrays copy of a point set for the batch distance
/// kernels: points are packed kKernelLanes at a time, coordinate-major
/// within a block, so `block(b)[d * kKernelLanes + j]` is coordinate `d`
/// of the block's lane-`j` point. A scan touches the block's memory once,
/// front to back, and the inner kernel loop runs over contiguous lanes —
/// cache-resident and auto-vectorizable where the row-major layout forces
/// a strided or gathered access per pair.
///
/// Positions (lane slots) beyond size() are zero padding: kernels compute
/// ranks for them too, and callers discard them via id() ==
/// kPaddingId. The view stores its own copy of the coordinates; it stays
/// valid independent of the source Dataset's lifetime.
class PointBlockView {
 public:
  static constexpr size_t kLanes = kKernelLanes;
  static constexpr uint32_t kPaddingId = 0xffffffffu;

  PointBlockView() = default;

  /// Blocks the whole dataset in point order: position i holds point i.
  static PointBlockView Create(const Dataset& data);

  /// Number of real (non-padding) points stored.
  size_t size() const { return size_; }

  size_t dimension() const { return dim_; }

  /// Total lane slots, padding included: num_blocks() * kLanes.
  size_t positions() const { return ids_.size(); }

  size_t num_blocks() const { return ids_.size() / kLanes; }

  /// Coordinate-major storage of block `b` (kLanes * dimension doubles).
  const double* block(size_t b) const { return soa_.data() + b * kLanes * dim_; }

  /// Dataset index of the point at lane position `pos`, or kPaddingId.
  uint32_t id(size_t pos) const { return ids_[pos]; }

 private:
  friend class PointBlockBuilder;

  size_t size_ = 0;
  size_t dim_ = 0;
  std::vector<double> soa_;       // num_blocks * kLanes * dim_
  std::vector<uint32_t> ids_;     // num_blocks * kLanes
};

/// Builds a PointBlockView over an arbitrary subset/permutation of a
/// dataset's points, with optional block-aligned groups: the kd-tree packs
/// each leaf as its own group so a leaf scan covers whole blocks and never
/// mixes points from a neighboring leaf.
class PointBlockBuilder {
 public:
  explicit PointBlockBuilder(const Dataset& data);

  /// Pads the pending block and starts a new block-aligned group; returns
  /// the lane position the next Append() will occupy.
  size_t BeginGroup();

  /// Appends dataset point `id` at the next lane position.
  void Append(uint32_t id);

  /// Finalizes (pads the last block) and returns the view.
  PointBlockView Build() &&;

 private:
  void PadToBlockBoundary();

  const Dataset& data_;
  PointBlockView view_;
};

}  // namespace lofkit

#endif  // LOFKIT_DATASET_POINT_BLOCK_H_
