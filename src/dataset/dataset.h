#ifndef LOFKIT_DATASET_DATASET_H_
#define LOFKIT_DATASET_DATASET_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"

namespace lofkit {

class PointBlockView;

/// An immutable-by-convention collection of d-dimensional points stored
/// row-major in one contiguous buffer.
///
/// Dataset is the input type of every index, baseline and LOF routine in
/// lofkit. Points are addressed by their 0-based insertion index; all result
/// types (neighbor lists, LOF scores, outlier rankings) refer back to these
/// indices. Optional per-point labels carry ground-truth or display names for
/// the experiment drivers and never influence any computation.
class Dataset {
 public:
  /// Creates an empty dataset of the given dimensionality (>= 1).
  static Result<Dataset> Create(size_t dimension);

  /// Builds a dataset from row-major values. `values.size()` must be a
  /// nonzero multiple of `dimension`; every coordinate must be finite.
  static Result<Dataset> FromRowMajor(size_t dimension,
                                      std::vector<double> values);

  Dataset(const Dataset&) = default;
  Dataset& operator=(const Dataset&) = default;
  Dataset(Dataset&&) noexcept = default;
  Dataset& operator=(Dataset&&) noexcept = default;

  /// Appends one point. Fails with InvalidArgument on dimension mismatch or
  /// non-finite coordinates (NaN/inf would silently poison every distance).
  Status Append(std::span<const double> coordinates);

  /// Appends one point with a label (player name, cluster tag, ...).
  Status Append(std::span<const double> coordinates, std::string label);

  /// Appends every point of `other` (same dimension required).
  Status AppendAll(const Dataset& other);

  /// Number of points.
  size_t size() const { return labels_.size(); }

  /// True when the dataset holds no points.
  bool empty() const { return size() == 0; }

  /// Dimensionality of every point.
  size_t dimension() const { return dimension_; }

  /// Read-only view of point `i`. `i` must be < size().
  std::span<const double> point(size_t i) const {
    return {data_.data() + i * dimension_, dimension_};
  }

  /// Label of point `i` (empty string when none was provided).
  const std::string& label(size_t i) const { return labels_[i]; }

  /// Replaces the label of point `i`.
  void set_label(size_t i, std::string label) { labels_[i] = std::move(label); }

  /// The raw row-major buffer (n * dimension doubles).
  std::span<const double> raw() const { return data_; }

  /// Blocked SoA copy of the points for the batch distance kernels (see
  /// PointBlockView), built lazily on first call and shared by every
  /// caller until the next Append invalidates it. The snapshot is
  /// returned by shared_ptr so an index that captured it stays valid even
  /// if the dataset grows afterwards. The first call materializes the
  /// blocks and is not thread-safe against concurrent calls; index
  /// Build() runs single-threaded and triggers it before any parallel
  /// queries run.
  std::shared_ptr<const PointBlockView> blocks() const;

  /// Per-dimension minima over all points. Empty dataset -> empty vector.
  std::vector<double> Min() const;

  /// Per-dimension maxima over all points. Empty dataset -> empty vector.
  std::vector<double> Max() const;

  /// Returns a copy with every dimension independently rescaled to [0, 1]
  /// (constant dimensions map to 0). Useful before mixing incommensurate
  /// attributes, e.g. the sports experiments in the paper.
  Dataset NormalizedToUnitBox() const;

  /// Returns a copy with every dimension independently standardized to
  /// zero mean and unit variance (constant dimensions map to 0). The
  /// z-score alternative to NormalizedToUnitBox when outliers would
  /// otherwise compress the inlier range.
  Dataset Standardized() const;

  /// Projects onto the given dimensions (in the given order; repeats
  /// allowed). Labels are preserved. Fails when `dimensions` is empty or
  /// contains an out-of-range index.
  Result<Dataset> Project(std::span<const size_t> dimensions) const;

 private:
  explicit Dataset(size_t dimension) : dimension_(dimension) {}

  size_t dimension_;
  std::vector<double> data_;
  std::vector<std::string> labels_;
  // Lazy blocks() cache. Copies share the (immutable) snapshot; mutation
  // resets only the mutated instance's pointer.
  mutable std::shared_ptr<const PointBlockView> blocks_;
};

}  // namespace lofkit

#endif  // LOFKIT_DATASET_DATASET_H_
