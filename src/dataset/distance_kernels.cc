#include "dataset/distance_kernels.h"

#include <cmath>

namespace lofkit {
namespace kernels {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Dimensions accumulated between bound checks in the early-exit loops:
// large enough that the check cost vanishes, small enough that an
// abandoned 64-d candidate still skips most of its work.
constexpr size_t kBoundStride = 16;

inline double Abs(double x) { return x < 0 ? -x : x; }

// Clamps q into [lo, hi] and returns the residual |q - clamp| — the same
// per-coordinate term Metric::MinRankToBox accumulates, so the ToBox
// kernels below are bit-identical to the virtual-call bounds.
inline double BoxDelta(double q, double lo, double hi) {
  if (q < lo) return lo - q;
  if (q > hi) return q - hi;
  return 0.0;
}

// The blocked kernels want one specific shape: kKernelLanes independent
// accumulator chains, vectorized *across* lanes, each lane's own chain kept
// in scalar program order (that is what makes the results bit-identical to
// the one-pair loops). Auto-vectorizers tend to pick a different and much
// worse shape here (outer-loop vectorization over the dimensions, paying a
// transpose of every block), so on GCC/Clang the lane arithmetic is written
// with vector extensions: element-wise IEEE operations with exactly the
// per-lane semantics of the scalar loop, lowered to whatever SIMD width the
// target has. Other compilers get the equivalent scalar loops.
#if defined(__GNUC__) || defined(__clang__)
#define LOFKIT_KERNEL_VECTOR_EXT 1

typedef double V4
    __attribute__((vector_size(32), aligned(8), may_alias));
typedef long long VI4 __attribute__((vector_size(32), aligned(8)));

static_assert(kKernelLanes == 8, "block kernels assume two 4-lane vectors");

inline V4 VLoad(const double* p) { return *reinterpret_cast<const V4*>(p); }

inline void VStore(double* p, V4 v) { *reinterpret_cast<V4*>(p) = v; }

inline V4 VBroadcast(double x) { return V4{x, x, x, x}; }

// fabs: clears the sign bit, exactly as the scalar Abs above behaves on
// the finite inputs Dataset::Append admits.
inline V4 VAbs(V4 x) {
  const VI4 mask = {0x7fffffffffffffffLL, 0x7fffffffffffffffLL,
                    0x7fffffffffffffffLL, 0x7fffffffffffffffLL};
  return (V4)((VI4)x & mask);
}

inline V4 VMax(V4 a, V4 b) { return a > b ? a : b; }
#endif  // __GNUC__ || __clang__

}  // namespace

double L2Squared(const double* __restrict a, const double* __restrict b,
                 size_t dim) {
  double sum = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    const double t = a[d] - b[d];
    sum += t * t;
  }
  return sum;
}

double L2SquaredBounded(const double* __restrict a, const double* __restrict b,
                        size_t dim, double bound) {
  // Same accumulation order as L2Squared, so a non-abandoned result is
  // bit-identical; partial sums are nondecreasing, so abandoning once a
  // partial sum exceeds `bound` can only drop candidates whose final rank
  // also exceeds it.
  double sum = 0.0;
  size_t d = 0;
  while (dim - d >= kBoundStride) {
    const size_t stop = d + kBoundStride;
    for (; d < stop; ++d) {
      const double t = a[d] - b[d];
      sum += t * t;
    }
    if (sum > bound) return kInf;
  }
  for (; d < dim; ++d) {
    const double t = a[d] - b[d];
    sum += t * t;
  }
  return sum;
}

void L2SquaredBlock(const double* __restrict q, const double* __restrict block,
                    size_t dim, double* __restrict out) {
  // Coordinate-major over the block: each lane's accumulation chain is the
  // same sequential sum as L2Squared (bit-identical per point); the SIMD
  // runs *across* the kKernelLanes independent lanes.
#ifdef LOFKIT_KERNEL_VECTOR_EXT
  V4 acc0 = VBroadcast(0.0);
  V4 acc1 = VBroadcast(0.0);
  for (size_t d = 0; d < dim; ++d) {
    const V4 qd = VBroadcast(q[d]);
    const double* row = block + d * kKernelLanes;
    const V4 t0 = qd - VLoad(row);
    const V4 t1 = qd - VLoad(row + 4);
    acc0 += t0 * t0;
    acc1 += t1 * t1;
  }
  VStore(out, acc0);
  VStore(out + 4, acc1);
#else
  double acc[kKernelLanes] = {0.0};
  for (size_t d = 0; d < dim; ++d) {
    const double qd = q[d];
    const double* __restrict row = block + d * kKernelLanes;
    for (size_t j = 0; j < kKernelLanes; ++j) {
      const double t = qd - row[j];
      acc[j] += t * t;
    }
  }
  for (size_t j = 0; j < kKernelLanes; ++j) out[j] = acc[j];
#endif
}

double L2SquaredToBox(const double* __restrict q, const double* __restrict lo,
                      const double* __restrict hi, size_t dim) {
  double sum = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    const double t = BoxDelta(q[d], lo[d], hi[d]);
    sum += t * t;
  }
  return sum;
}

double L1(const double* __restrict a, const double* __restrict b, size_t dim) {
  double sum = 0.0;
  for (size_t d = 0; d < dim; ++d) sum += Abs(a[d] - b[d]);
  return sum;
}

double L1Bounded(const double* __restrict a, const double* __restrict b,
                 size_t dim, double bound) {
  double sum = 0.0;
  size_t d = 0;
  while (dim - d >= kBoundStride) {
    const size_t stop = d + kBoundStride;
    for (; d < stop; ++d) sum += Abs(a[d] - b[d]);
    if (sum > bound) return kInf;
  }
  for (; d < dim; ++d) sum += Abs(a[d] - b[d]);
  return sum;
}

void L1Block(const double* __restrict q, const double* __restrict block,
             size_t dim, double* __restrict out) {
#ifdef LOFKIT_KERNEL_VECTOR_EXT
  V4 acc0 = VBroadcast(0.0);
  V4 acc1 = VBroadcast(0.0);
  for (size_t d = 0; d < dim; ++d) {
    const V4 qd = VBroadcast(q[d]);
    const double* row = block + d * kKernelLanes;
    acc0 += VAbs(qd - VLoad(row));
    acc1 += VAbs(qd - VLoad(row + 4));
  }
  VStore(out, acc0);
  VStore(out + 4, acc1);
#else
  double acc[kKernelLanes] = {0.0};
  for (size_t d = 0; d < dim; ++d) {
    const double qd = q[d];
    const double* __restrict row = block + d * kKernelLanes;
    for (size_t j = 0; j < kKernelLanes; ++j) acc[j] += Abs(qd - row[j]);
  }
  for (size_t j = 0; j < kKernelLanes; ++j) out[j] = acc[j];
#endif
}

double L1ToBox(const double* __restrict q, const double* __restrict lo,
               const double* __restrict hi, size_t dim) {
  double sum = 0.0;
  for (size_t d = 0; d < dim; ++d) sum += BoxDelta(q[d], lo[d], hi[d]);
  return sum;
}

double Linf(const double* __restrict a, const double* __restrict b,
            size_t dim) {
  double max = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    const double t = Abs(a[d] - b[d]);
    if (t > max) max = t;
  }
  return max;
}

double LinfBounded(const double* __restrict a, const double* __restrict b,
                   size_t dim, double bound) {
  // The running max is exact and nondecreasing, so abandonment is safe and
  // a non-abandoned result equals Linf exactly.
  double max = 0.0;
  size_t d = 0;
  while (dim - d >= kBoundStride) {
    const size_t stop = d + kBoundStride;
    for (; d < stop; ++d) {
      const double t = Abs(a[d] - b[d]);
      if (t > max) max = t;
    }
    if (max > bound) return kInf;
  }
  for (; d < dim; ++d) {
    const double t = Abs(a[d] - b[d]);
    if (t > max) max = t;
  }
  return max;
}

void LinfBlock(const double* __restrict q, const double* __restrict block,
               size_t dim, double* __restrict out) {
#ifdef LOFKIT_KERNEL_VECTOR_EXT
  V4 acc0 = VBroadcast(0.0);
  V4 acc1 = VBroadcast(0.0);
  for (size_t d = 0; d < dim; ++d) {
    const V4 qd = VBroadcast(q[d]);
    const double* row = block + d * kKernelLanes;
    acc0 = VMax(acc0, VAbs(qd - VLoad(row)));
    acc1 = VMax(acc1, VAbs(qd - VLoad(row + 4)));
  }
  VStore(out, acc0);
  VStore(out + 4, acc1);
#else
  double acc[kKernelLanes] = {0.0};
  for (size_t d = 0; d < dim; ++d) {
    const double qd = q[d];
    const double* __restrict row = block + d * kKernelLanes;
    for (size_t j = 0; j < kKernelLanes; ++j) {
      const double t = Abs(qd - row[j]);
      if (t > acc[j]) acc[j] = t;
    }
  }
  for (size_t j = 0; j < kKernelLanes; ++j) out[j] = acc[j];
#endif
}

double LinfToBox(const double* __restrict q, const double* __restrict lo,
                 const double* __restrict hi, size_t dim) {
  double max = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    const double t = BoxDelta(q[d], lo[d], hi[d]);
    if (t > max) max = t;
  }
  return max;
}

double Lp(double p, const double* __restrict a, const double* __restrict b,
          size_t dim) {
  double sum = 0.0;
  for (size_t d = 0; d < dim; ++d) sum += std::pow(Abs(a[d] - b[d]), p);
  return std::pow(sum, 1.0 / p);
}

void LpBlock(double p, const double* __restrict q,
             const double* __restrict block, size_t dim,
             double* __restrict out) {
  double acc[kKernelLanes] = {0.0};
  for (size_t d = 0; d < dim; ++d) {
    const double qd = q[d];
    const double* __restrict row = block + d * kKernelLanes;
    for (size_t j = 0; j < kKernelLanes; ++j) {
      acc[j] += std::pow(Abs(qd - row[j]), p);
    }
  }
  const double inv_p = 1.0 / p;
  for (size_t j = 0; j < kKernelLanes; ++j) out[j] = std::pow(acc[j], inv_p);
}

double LpToBox(double p, const double* __restrict q,
               const double* __restrict lo, const double* __restrict hi,
               size_t dim) {
  double sum = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    sum += std::pow(BoxDelta(q[d], lo[d], hi[d]), p);
  }
  return std::pow(sum, 1.0 / p);
}

double WeightedL2Squared(const double* __restrict w,
                         const double* __restrict a,
                         const double* __restrict b, size_t dim) {
  double sum = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    const double t = a[d] - b[d];
    sum += w[d] * t * t;
  }
  return sum;
}

double WeightedL2SquaredBounded(const double* __restrict w,
                                const double* __restrict a,
                                const double* __restrict b, size_t dim,
                                double bound) {
  double sum = 0.0;
  size_t d = 0;
  while (dim - d >= kBoundStride) {
    const size_t stop = d + kBoundStride;
    for (; d < stop; ++d) {
      const double t = a[d] - b[d];
      sum += w[d] * t * t;
    }
    if (sum > bound) return kInf;
  }
  for (; d < dim; ++d) {
    const double t = a[d] - b[d];
    sum += w[d] * t * t;
  }
  return sum;
}

void WeightedL2SquaredBlock(const double* __restrict w,
                            const double* __restrict q,
                            const double* __restrict block, size_t dim,
                            double* __restrict out) {
#ifdef LOFKIT_KERNEL_VECTOR_EXT
  V4 acc0 = VBroadcast(0.0);
  V4 acc1 = VBroadcast(0.0);
  for (size_t d = 0; d < dim; ++d) {
    const V4 qd = VBroadcast(q[d]);
    const V4 wd = VBroadcast(w[d]);
    const double* row = block + d * kKernelLanes;
    const V4 t0 = qd - VLoad(row);
    const V4 t1 = qd - VLoad(row + 4);
    acc0 += wd * t0 * t0;
    acc1 += wd * t1 * t1;
  }
  VStore(out, acc0);
  VStore(out + 4, acc1);
#else
  double acc[kKernelLanes] = {0.0};
  for (size_t d = 0; d < dim; ++d) {
    const double qd = q[d];
    const double wd = w[d];
    const double* __restrict row = block + d * kKernelLanes;
    for (size_t j = 0; j < kKernelLanes; ++j) {
      const double t = qd - row[j];
      acc[j] += wd * t * t;
    }
  }
  for (size_t j = 0; j < kKernelLanes; ++j) out[j] = acc[j];
#endif
}

double WeightedL2SquaredToBox(const double* __restrict w,
                              const double* __restrict q,
                              const double* __restrict lo,
                              const double* __restrict hi, size_t dim) {
  double sum = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    const double t = BoxDelta(q[d], lo[d], hi[d]);
    sum += w[d] * t * t;
  }
  return sum;
}

}  // namespace kernels
}  // namespace lofkit
