#include "dataset/loaders.h"

#include "common/fail_point.h"
#include "common/string_util.h"

namespace lofkit {

Result<Dataset> DatasetFromCsvTable(const CsvTable& table,
                                    const DatasetLoadOptions& options) {
  if (table.rows.empty()) {
    return Status::InvalidArgument("CSV table has no data rows");
  }
  const size_t columns = table.num_columns();
  std::vector<size_t> coords = options.coordinate_columns;
  if (coords.empty()) {
    for (size_t c = 0; c < columns; ++c) {
      if (options.label_column >= 0 &&
          c == static_cast<size_t>(options.label_column)) {
        continue;
      }
      coords.push_back(c);
    }
  }
  if (coords.empty()) {
    return Status::InvalidArgument("no coordinate columns selected");
  }
  for (size_t c : coords) {
    if (c >= columns) {
      return Status::OutOfRange(
          StrFormat("coordinate column %zu out of range (%zu columns)", c,
                    columns));
    }
  }
  if (options.label_column >= 0 &&
      static_cast<size_t>(options.label_column) >= columns) {
    return Status::OutOfRange(
        StrFormat("label column %d out of range (%zu columns)",
                  options.label_column, columns));
  }

  LOFKIT_ASSIGN_OR_RETURN(Dataset dataset, Dataset::Create(coords.size()));
  std::vector<double> point(coords.size());
  for (size_t r = 0; r < table.rows.size(); ++r) {
    LOFKIT_FAIL_POINT("loaders.row");
    const std::vector<double>& row = table.rows[r];
    for (size_t i = 0; i < coords.size(); ++i) {
      point[i] = row[coords[i]];
    }
    std::string label;
    if (options.label_column >= 0) {
      label = StrFormat("%g", row[static_cast<size_t>(options.label_column)]);
    }
    // Re-wrap Append failures (dimension can't mismatch here, so this is
    // the non-finite-coordinate guard) with the offending data row, so a
    // CSV holding "inf" or "nan" points at the row instead of just the
    // symptom.
    if (Status status = dataset.Append(point, std::move(label));
        !status.ok()) {
      return Status::InvalidArgument(
          StrFormat("data row %zu: %s", r + 1, status.message().c_str()));
    }
  }
  return dataset;
}

Result<Dataset> DatasetFromCsvFile(const std::string& path,
                                   const DatasetLoadOptions& options) {
  LOFKIT_ASSIGN_OR_RETURN(CsvTable table, ReadCsvFile(path, options.csv));
  return DatasetFromCsvTable(table, options);
}

}  // namespace lofkit
