#include "dataset/scenarios.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/string_util.h"
#include "dataset/generators.h"

namespace lofkit {
namespace scenarios {

namespace {

using generators::AppendGaussianCluster;
using generators::AppendHistogramCluster;
using generators::AppendPoint;
using generators::AppendUniformBox;

// Appends a Gaussian cluster whose samples are resampled until they fall
// within `max_radius` of the center, so the cluster has a hard edge and
// planted outliers can sit at a guaranteed distance from it.
Status AppendTruncatedGaussian(Dataset& dataset, Rng& rng,
                               std::span<const double> center, double stddev,
                               double max_radius, size_t count,
                               const std::string& label) {
  std::vector<double> p(center.size());
  for (size_t i = 0; i < count; ++i) {
    for (;;) {
      double dist_sq = 0.0;
      for (size_t d = 0; d < center.size(); ++d) {
        p[d] = rng.Gaussian(center[d], stddev);
        const double delta = p[d] - center[d];
        dist_sq += delta * delta;
      }
      if (dist_sq <= max_radius * max_radius) break;
    }
    LOFKIT_RETURN_IF_ERROR(dataset.Append(p, label));
  }
  return Status::OK();
}

// Index (within [begin, end)) of the point closest to `center`.
size_t ClosestTo(const Dataset& data, size_t begin, size_t end,
                 std::span<const double> center) {
  size_t best = begin;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t i = begin; i < end; ++i) {
    auto p = data.point(i);
    double dist_sq = 0.0;
    for (size_t d = 0; d < p.size(); ++d) {
      const double delta = p[d] - center[d];
      dist_sq += delta * delta;
    }
    if (dist_sq < best_dist) {
      best_dist = dist_sq;
      best = i;
    }
  }
  return best;
}

}  // namespace

Result<size_t> Scenario::Find(const std::string& name) const {
  auto it = named.find(name);
  if (it == named.end()) {
    return Status::NotFound("no named point '" + name + "' in scenario");
  }
  return it->second;
}

Result<Scenario> MakeDs1(Rng& rng) {
  LOFKIT_ASSIGN_OR_RETURN(Dataset data, Dataset::Create(2));
  Scenario scenario{std::move(data), {}};
  Dataset& ds = scenario.data;

  // C1: 400 objects on a jittered 20x20 grid with spacing 5. The jitter is
  // small relative to the spacing, so *every* object's nearest-neighbor
  // distance is at least 5 - 2*0.8 = 3.4 — the property section 3 needs
  // ("the distance between q and its nearest neighbor is greater than
  // d(o2, C2)").
  for (int gx = 0; gx < 20; ++gx) {
    for (int gy = 0; gy < 20; ++gy) {
      const double p[2] = {5.0 * gx + rng.Uniform(-0.8, 0.8),
                           5.0 * gy + rng.Uniform(-0.8, 0.8)};
      LOFKIT_RETURN_IF_ERROR(ds.Append(p, "C1"));
    }
  }

  // C2: 100 objects, dense truncated Gaussian (hard radius 2.0) centered
  // well to the right of C1.
  const double c2_center[2] = {130.0, 47.5};
  LOFKIT_RETURN_IF_ERROR(
      AppendTruncatedGaussian(ds, rng, c2_center, 0.8, 2.0, 100, "C2"));

  // o2: 4.5 units from the C2 center, i.e. at most 2.5 from the nearest C2
  // object — closer than any C1 nearest-neighbor pair (>= 3.4).
  const double o2[2] = {134.5, 47.5};
  scenario.named["o2"] = ds.size();
  LOFKIT_RETURN_IF_ERROR(ds.Append(o2, "o2"));

  // o1: far from everything.
  const double o1[2] = {120.0, 110.0};
  scenario.named["o1"] = ds.size();
  LOFKIT_RETURN_IF_ERROR(ds.Append(o1, "o1"));

  return scenario;
}

Result<Scenario> MakeGaussianBlob(Rng& rng, size_t count) {
  LOFKIT_ASSIGN_OR_RETURN(Dataset data, Dataset::Create(2));
  Scenario scenario{std::move(data), {}};
  const double center[2] = {0.0, 0.0};
  LOFKIT_RETURN_IF_ERROR(AppendGaussianCluster(scenario.data, rng, center,
                                               1.0, count, "gauss"));
  return scenario;
}

Result<Scenario> MakeFig8Clusters(Rng& rng) {
  LOFKIT_ASSIGN_OR_RETURN(Dataset data, Dataset::Create(2));
  Scenario scenario{std::move(data), {}};
  Dataset& ds = scenario.data;

  // S3: the large background cluster — uniform ball, so its own fringe
  // produces no competing outliers.
  const double s3_center[2] = {0.0, 0.0};
  LOFKIT_RETURN_IF_ERROR(
      generators::AppendUniformBall(ds, rng, s3_center, 15.0, 500, "S3"));
  scenario.named["s3_rep"] = ClosestTo(ds, 0, ds.size(), s3_center);

  // S1: a tiny cluster sitting 10 units from the dense S2 — once MinPts
  // reaches |S1| its objects' neighborhoods consist mostly of S2 members,
  // whose local density is ~20x higher, making all of S1 strong outliers
  // for MinPts in [10, 35], as in the paper's plot.
  const size_t s1_begin = ds.size();
  const double s1_center[2] = {40.0, 0.0};
  LOFKIT_RETURN_IF_ERROR(
      AppendGaussianCluster(ds, rng, s1_center, 0.4, 10, "S1"));
  scenario.named["s1_rep"] = ClosestTo(ds, s1_begin, ds.size(), s1_center);

  // S2: the dense 35-object cluster. Its objects only become outlying
  // once MinPts exceeds |S1 u S2| - 1 = 44 and their neighborhoods reach
  // S3 — the staircase at MinPts = 45 the paper describes.
  const size_t s2_begin = ds.size();
  const double s2_center[2] = {50.0, 0.0};
  LOFKIT_RETURN_IF_ERROR(
      AppendGaussianCluster(ds, rng, s2_center, 0.5, 35, "S2"));
  scenario.named["s2_rep"] = ClosestTo(ds, s2_begin, ds.size(), s2_center);

  return scenario;
}

Result<Scenario> MakeFig9Dataset(Rng& rng) {
  LOFKIT_ASSIGN_OR_RETURN(Dataset data, Dataset::Create(2));
  Scenario scenario{std::move(data), {}};
  Dataset& ds = scenario.data;

  // One low-density Gaussian cluster of 200 objects...
  const double sparse_center[2] = {25.0, 75.0};
  LOFKIT_RETURN_IF_ERROR(
      AppendGaussianCluster(ds, rng, sparse_center, 6.0, 200, "gauss_sparse"));

  // ... one dense Gaussian cluster of 500 ...
  const double dense_center[2] = {75.0, 75.0};
  LOFKIT_RETURN_IF_ERROR(
      AppendGaussianCluster(ds, rng, dense_center, 2.5, 500, "gauss_dense"));

  // ... and two uniform clusters of 500 with clearly different densities.
  const double boxa_lo[2] = {12.0, 12.0};
  const double boxa_hi[2] = {32.0, 32.0};
  LOFKIT_RETURN_IF_ERROR(
      AppendUniformBox(ds, rng, boxa_lo, boxa_hi, 500, "uniform_dense"));
  const double boxb_lo[2] = {55.0, 5.0};
  const double boxb_hi[2] = {95.0, 35.0};
  LOFKIT_RETURN_IF_ERROR(
      AppendUniformBox(ds, rng, boxb_lo, boxb_hi, 500, "uniform_sparse"));

  // Seven planted outliers: between clusters, near the dense cluster, and
  // in empty corners — the "remaining seven objects" of section 7.1.
  const double outliers[7][2] = {
      {50.0, 55.0},  // between everything
      {84.0, 75.0},  // just outside the dense Gaussian
      {5.0, 45.0},   // left edge
      {45.0, 20.0},  // between the two uniform boxes
      {95.0, 95.0},  // far corner
      {25.0, 99.0},  // above the sparse Gaussian
      {64.0, 49.0},  // between dense Gaussian and sparse box
  };
  for (int i = 0; i < 7; ++i) {
    const std::string name = StrFormat("outlier_%d", i);
    scenario.named[name] = ds.size();
    LOFKIT_RETURN_IF_ERROR(ds.Append(outliers[i], name));
  }
  return scenario;
}

Result<Scenario> MakeHockeySubspace1(Rng& rng) {
  // Attributes: (points scored, plus-minus, penalty minutes).
  LOFKIT_ASSIGN_OR_RETURN(Dataset data, Dataset::Create(3));
  Scenario scenario{std::move(data), {}};
  Dataset& ds = scenario.data;

  // Regular skaters: points gamma-distributed (resampled below 70 so the
  // scoring tail belongs to the star sub-population below), plus-minus
  // roughly normal and bounded, penalty minutes exponential-ish.
  for (int i = 0; i < 680; ++i) {
    double points = 8.0 * rng.Gamma(1.8);
    while (points > 70.0) points = 8.0 * rng.Gamma(1.8);
    double plus_minus = rng.Gaussian(0.0, 9.0);
    plus_minus = std::clamp(plus_minus, -32.0, 32.0);
    const double pim = std::min(140.0, rng.Exponential(1.0 / 35.0));
    const double p[3] = {std::round(points), std::round(plus_minus),
                         std::round(pim)};
    LOFKIT_RETURN_IF_ERROR(ds.Append(p, "skater"));
  }

  // Star scorers: a moderately dense sub-population covering the high-
  // points region, as the real NHL has — without it, random scoring
  // extremes would be stronger local outliers than the planted ones.
  for (int i = 0; i < 60; ++i) {
    const double points = rng.Uniform(55.0, 105.0);
    double plus_minus = rng.Gaussian(8.0, 8.0);
    plus_minus = std::clamp(plus_minus, -32.0, 32.0);
    const double pim = std::min(120.0, rng.Exponential(1.0 / 30.0));
    const double p[3] = {std::round(points), std::round(plus_minus),
                         std::round(pim)};
    LOFKIT_RETURN_IF_ERROR(ds.Append(p, "skater"));
  }

  // Enforcers: a denser sub-population with high penalty minutes, so the
  // PIM tail is itself a (small) cluster and Barnaby is *locally* outlying
  // with respect to it.
  for (int i = 0; i < 90; ++i) {
    const double points = rng.Uniform(2.0, 25.0);
    const double plus_minus = rng.Gaussian(-4.0, 6.0);
    const double pim = rng.Uniform(150.0, 215.0);
    const double p[3] = {std::round(points), std::round(plus_minus),
                         std::round(pim)};
    LOFKIT_RETURN_IF_ERROR(ds.Append(p, "enforcer"));
  }

  // Konstantinov analogue: good points, *extreme* plus-minus, high PIM.
  const double konstantinov[3] = {38.0, 60.0, 151.0};
  scenario.named["konstantinov"] = ds.size();
  LOFKIT_RETURN_IF_ERROR(ds.Append(konstantinov, "konstantinov"));

  // Barnaby analogue: penalty minutes far beyond even the enforcers.
  const double barnaby[3] = {19.0, -7.0, 310.0};
  scenario.named["barnaby"] = ds.size();
  LOFKIT_RETURN_IF_ERROR(ds.Append(barnaby, "barnaby"));

  return scenario;
}

Result<Scenario> MakeHockeySubspace2(Rng& rng) {
  // Attributes: (games played, goals scored, shooting percentage).
  LOFKIT_ASSIGN_OR_RETURN(Dataset data, Dataset::Create(3));
  Scenario scenario{std::move(data), {}};
  Dataset& ds = scenario.data;

  // Skaters: shooting percentage concentrated in 4..22%.
  for (int i = 0; i < 720; ++i) {
    const double games = std::clamp(rng.Gaussian(55.0, 20.0), 1.0, 82.0);
    const double rate = rng.Uniform(0.05, 0.55);  // goals per game
    const double goals = std::min(54.0, std::round(games * rate * rng.Uniform(0.2, 1.0)));
    const double pct = goals > 0 ? rng.Uniform(4.0, 22.0) : 0.0;
    const double p[3] = {std::round(games), goals, pct};
    LOFKIT_RETURN_IF_ERROR(ds.Append(p, "skater"));
  }

  // Goalies: a tight cluster at zero goals / zero shooting percentage.
  for (int i = 0; i < 80; ++i) {
    const double games = std::clamp(rng.Gaussian(35.0, 18.0), 1.0, 75.0);
    const double p[3] = {std::round(games), 0.0, 0.0};
    LOFKIT_RETURN_IF_ERROR(ds.Append(p, "goalie"));
  }

  // Osgood analogue: a goalie who scored — one goal on one shot, i.e. a
  // shooting percentage no skater or goalie comes close to.
  const double osgood[3] = {50.0, 1.0, 100.0};
  scenario.named["osgood"] = ds.size();
  LOFKIT_RETURN_IF_ERROR(ds.Append(osgood, "osgood"));

  // Lemieux analogue: extreme scorer (goal total far beyond the field).
  const double lemieux[3] = {70.0, 69.0, 20.4};
  scenario.named["lemieux"] = ds.size();
  LOFKIT_RETURN_IF_ERROR(ds.Append(lemieux, "lemieux"));

  // Poapst analogue: three games, one goal, 50% shooting.
  const double poapst[3] = {3.0, 1.0, 50.0};
  scenario.named["poapst"] = ds.size();
  LOFKIT_RETURN_IF_ERROR(ds.Append(poapst, "poapst"));

  return scenario;
}

Result<Scenario> MakeSoccerLike(Rng& rng) {
  // Attributes: (games played [0..34], goals per game, position code).
  // Position codes 1..4 (goalie, defense, center, offense), as the paper
  // coded position as an integer. Consumers should normalize to the unit
  // box before computing distances (the benches and tests do).
  LOFKIT_ASSIGN_OR_RETURN(Dataset data, Dataset::Create(3));
  Scenario scenario{std::move(data), {}};
  Dataset& ds = scenario.data;

  auto games_sample = [&rng]() {
    // Bimodal: regulars play most games, fringe players few.
    if (rng.Bernoulli(0.62)) {
      return std::round(std::clamp(rng.Gaussian(28.0, 5.0), 10.0, 34.0));
    }
    return std::round(rng.Uniform(0.0, 18.0));
  };

  // Goalies: 40 players, (almost) never score.
  for (int i = 0; i < 40; ++i) {
    const double p[3] = {games_sample(), 0.0, 1.0};
    LOFKIT_RETURN_IF_ERROR(ds.Append(p, "goalie"));
  }
  // Defense: 120 players, low scoring averages.
  for (int i = 0; i < 120; ++i) {
    const double p[3] = {games_sample(), rng.Uniform(0.0, 0.14), 2.0};
    LOFKIT_RETURN_IF_ERROR(ds.Append(p, "defense"));
  }
  // Center/midfield: 120 players, moderate averages.
  for (int i = 0; i < 120; ++i) {
    const double p[3] = {games_sample(), rng.Uniform(0.0, 0.30), 3.0};
    LOFKIT_RETURN_IF_ERROR(ds.Append(p, "center"));
  }
  // Offense: 90 players, higher averages but well below the planted stars.
  for (int i = 0; i < 90; ++i) {
    const double p[3] = {games_sample(), rng.Uniform(0.05, 0.46), 4.0};
    LOFKIT_RETURN_IF_ERROR(ds.Append(p, "offense"));
  }

  // The five Table-3 analogues (games, goals/game, position).
  const struct {
    const char* name;
    double games, gpg, pos;
  } planted[] = {
      {"preetz", 34.0, 23.0 / 34.0, 4.0},       // top scorer, offense
      {"schjoenberg", 15.0, 6.0 / 15.0, 2.0},   // penalty-shot defender
      {"butt", 34.0, 7.0 / 34.0, 1.0},          // scoring goalie
      {"kirsten", 31.0, 19.0 / 31.0, 4.0},      // high-average striker
      {"elber", 21.0, 13.0 / 21.0, 4.0},        // high-average striker
  };
  for (const auto& player : planted) {
    const double p[3] = {player.games, player.gpg, player.pos};
    scenario.named[player.name] = ds.size();
    LOFKIT_RETURN_IF_ERROR(ds.Append(p, player.name));
  }
  return scenario;
}

Result<Scenario> Make64DHistograms(Rng& rng) {
  LOFKIT_ASSIGN_OR_RETURN(Dataset data, Dataset::Create(64));
  Scenario scenario{std::move(data), {}};
  Dataset& ds = scenario.data;

  // Three scene-type clusters of different tightness.
  LOFKIT_RETURN_IF_ERROR(AppendHistogramCluster(ds, rng, 200, 60.0, "tennis"));
  const size_t news_begin = ds.size();
  LOFKIT_RETURN_IF_ERROR(AppendHistogramCluster(ds, rng, 200, 30.0, "news"));
  const size_t sports_begin = ds.size();
  LOFKIT_RETURN_IF_ERROR(AppendHistogramCluster(ds, rng, 200, 90.0, "sports"));
  const size_t sports_end = ds.size();

  // Local outliers: blends of points from two different clusters, i.e.
  // snapshots that are unlike any single scene type but not far from all.
  std::vector<double> blend(64);
  for (int i = 0; i < 5; ++i) {
    const size_t a = rng.UniformU64(news_begin);  // from "tennis"
    const size_t b =
        sports_begin + rng.UniformU64(sports_end - sports_begin);  // "sports"
    const double w = rng.Uniform(0.35, 0.65);
    auto pa = ds.point(a);
    auto pb = ds.point(b);
    double sum = 0.0;
    for (size_t d = 0; d < 64; ++d) {
      blend[d] = w * pa[d] + (1.0 - w) * pb[d];
      sum += blend[d];
    }
    for (size_t d = 0; d < 64; ++d) blend[d] /= sum;
    const std::string name = StrFormat("hist_outlier_%d", i);
    scenario.named[name] = ds.size();
    LOFKIT_RETURN_IF_ERROR(ds.Append(blend, name));
  }
  return scenario;
}

}  // namespace scenarios
}  // namespace lofkit
