#include "dataset/point_block.h"

#include <cassert>

#include "dataset/dataset.h"

namespace lofkit {

PointBlockView PointBlockView::Create(const Dataset& data) {
  PointBlockBuilder builder(data);
  for (size_t i = 0; i < data.size(); ++i) {
    builder.Append(static_cast<uint32_t>(i));
  }
  return std::move(builder).Build();
}

PointBlockBuilder::PointBlockBuilder(const Dataset& data) : data_(data) {
  view_.dim_ = data.dimension();
}

void PointBlockBuilder::PadToBlockBoundary() {
  while (view_.ids_.size() % PointBlockView::kLanes != 0) {
    view_.ids_.push_back(PointBlockView::kPaddingId);
  }
  view_.soa_.resize(view_.ids_.size() * view_.dim_, 0.0);
}

size_t PointBlockBuilder::BeginGroup() {
  PadToBlockBoundary();
  return view_.ids_.size();
}

void PointBlockBuilder::Append(uint32_t id) {
  assert(id < data_.size());
  constexpr size_t kLanes = PointBlockView::kLanes;
  const size_t pos = view_.ids_.size();
  const size_t block = pos / kLanes;
  const size_t lane = pos % kLanes;
  const size_t dim = view_.dim_;
  if (lane == 0) view_.soa_.resize((block + 1) * kLanes * dim, 0.0);
  double* base = view_.soa_.data() + block * kLanes * dim;
  const auto point = data_.point(id);
  for (size_t d = 0; d < dim; ++d) base[d * kLanes + lane] = point[d];
  view_.ids_.push_back(id);
  ++view_.size_;
}

PointBlockView PointBlockBuilder::Build() && {
  PadToBlockBoundary();
  return std::move(view_);
}

}  // namespace lofkit
