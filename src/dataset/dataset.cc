#include "dataset/dataset.h"

#include <cmath>

#include "common/string_util.h"
#include "dataset/point_block.h"

namespace lofkit {

Result<Dataset> Dataset::Create(size_t dimension) {
  if (dimension == 0) {
    return Status::InvalidArgument("dataset dimension must be >= 1");
  }
  return Dataset(dimension);
}

Result<Dataset> Dataset::FromRowMajor(size_t dimension,
                                      std::vector<double> values) {
  if (dimension == 0) {
    return Status::InvalidArgument("dataset dimension must be >= 1");
  }
  if (values.empty() || values.size() % dimension != 0) {
    return Status::InvalidArgument(
        StrFormat("value count %zu is not a nonzero multiple of dimension %zu",
                  values.size(), dimension));
  }
  for (double v : values) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("non-finite coordinate in input");
    }
  }
  Dataset ds(dimension);
  ds.data_ = std::move(values);
  ds.labels_.resize(ds.data_.size() / dimension);
  return ds;
}

Status Dataset::Append(std::span<const double> coordinates) {
  return Append(coordinates, std::string());
}

Status Dataset::Append(std::span<const double> coordinates,
                       std::string label) {
  if (coordinates.size() != dimension_) {
    return Status::InvalidArgument(
        StrFormat("point has dimension %zu, dataset has %zu",
                  coordinates.size(), dimension_));
  }
  for (double v : coordinates) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("non-finite coordinate in point");
    }
  }
  data_.insert(data_.end(), coordinates.begin(), coordinates.end());
  labels_.push_back(std::move(label));
  blocks_.reset();
  return Status::OK();
}

Status Dataset::AppendAll(const Dataset& other) {
  if (other.dimension() != dimension_) {
    return Status::InvalidArgument(
        StrFormat("cannot append dimension-%zu dataset to dimension-%zu one",
                  other.dimension(), dimension_));
  }
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  labels_.insert(labels_.end(), other.labels_.begin(), other.labels_.end());
  blocks_.reset();
  return Status::OK();
}

std::shared_ptr<const PointBlockView> Dataset::blocks() const {
  if (!blocks_) {
    blocks_ = std::make_shared<const PointBlockView>(PointBlockView::Create(*this));
  }
  return blocks_;
}

std::vector<double> Dataset::Min() const {
  if (empty()) return {};
  std::vector<double> mins(point(0).begin(), point(0).end());
  for (size_t i = 1; i < size(); ++i) {
    auto p = point(i);
    for (size_t d = 0; d < dimension_; ++d) {
      if (p[d] < mins[d]) mins[d] = p[d];
    }
  }
  return mins;
}

std::vector<double> Dataset::Max() const {
  if (empty()) return {};
  std::vector<double> maxs(point(0).begin(), point(0).end());
  for (size_t i = 1; i < size(); ++i) {
    auto p = point(i);
    for (size_t d = 0; d < dimension_; ++d) {
      if (p[d] > maxs[d]) maxs[d] = p[d];
    }
  }
  return maxs;
}

Dataset Dataset::NormalizedToUnitBox() const {
  Dataset out(dimension_);
  out.labels_ = labels_;
  if (empty()) return out;
  std::vector<double> mins = Min();
  std::vector<double> maxs = Max();
  out.data_.reserve(data_.size());
  for (size_t i = 0; i < size(); ++i) {
    auto p = point(i);
    for (size_t d = 0; d < dimension_; ++d) {
      const double range = maxs[d] - mins[d];
      out.data_.push_back(range > 0.0 ? (p[d] - mins[d]) / range : 0.0);
    }
  }
  return out;
}

Result<Dataset> Dataset::Project(std::span<const size_t> dimensions) const {
  if (dimensions.empty()) {
    return Status::InvalidArgument("projection needs at least one dimension");
  }
  for (size_t d : dimensions) {
    if (d >= dimension_) {
      return Status::OutOfRange(
          StrFormat("projection dimension %zu out of range (%zu)", d,
                    dimension_));
    }
  }
  Dataset out(dimensions.size());
  out.labels_ = labels_;
  out.data_.reserve(size() * dimensions.size());
  for (size_t i = 0; i < size(); ++i) {
    auto p = point(i);
    for (size_t d : dimensions) {
      out.data_.push_back(p[d]);
    }
  }
  return out;
}

Dataset Dataset::Standardized() const {
  Dataset out(dimension_);
  out.labels_ = labels_;
  if (empty()) return out;
  const double n = static_cast<double>(size());
  std::vector<double> mean(dimension_, 0.0);
  std::vector<double> variance(dimension_, 0.0);
  for (size_t i = 0; i < size(); ++i) {
    auto p = point(i);
    for (size_t d = 0; d < dimension_; ++d) mean[d] += p[d] / n;
  }
  for (size_t i = 0; i < size(); ++i) {
    auto p = point(i);
    for (size_t d = 0; d < dimension_; ++d) {
      const double delta = p[d] - mean[d];
      variance[d] += delta * delta / n;
    }
  }
  std::vector<double> scale(dimension_);
  for (size_t d = 0; d < dimension_; ++d) {
    scale[d] = variance[d] > 0.0 ? 1.0 / std::sqrt(variance[d]) : 0.0;
  }
  out.data_.reserve(data_.size());
  for (size_t i = 0; i < size(); ++i) {
    auto p = point(i);
    for (size_t d = 0; d < dimension_; ++d) {
      out.data_.push_back((p[d] - mean[d]) * scale[d]);
    }
  }
  return out;
}

}  // namespace lofkit
