#include "dataset/generators.h"

#include <cmath>
#include <numbers>

#include "common/string_util.h"

namespace lofkit {
namespace generators {

namespace {

Status CheckDimension(const Dataset& dataset, size_t expected,
                      const char* what) {
  if (dataset.dimension() != expected) {
    return Status::InvalidArgument(
        StrFormat("%s has dimension %zu, dataset has %zu", what, expected,
                  dataset.dimension()));
  }
  return Status::OK();
}

}  // namespace

Status AppendGaussianCluster(Dataset& dataset, Rng& rng,
                             std::span<const double> center, double stddev,
                             size_t count, const std::string& label) {
  std::vector<double> stddevs(center.size(), stddev);
  return AppendGaussianClusterAniso(dataset, rng, center, stddevs, count,
                                    label);
}

Status AppendGaussianClusterAniso(Dataset& dataset, Rng& rng,
                                  std::span<const double> center,
                                  std::span<const double> stddevs,
                                  size_t count, const std::string& label) {
  LOFKIT_RETURN_IF_ERROR(CheckDimension(dataset, center.size(), "center"));
  if (stddevs.size() != center.size()) {
    return Status::InvalidArgument("stddevs/center dimension mismatch");
  }
  for (double s : stddevs) {
    if (!(s >= 0.0)) {
      return Status::InvalidArgument("stddev must be >= 0");
    }
  }
  std::vector<double> p(center.size());
  for (size_t i = 0; i < count; ++i) {
    for (size_t d = 0; d < center.size(); ++d) {
      p[d] = rng.Gaussian(center[d], stddevs[d]);
    }
    LOFKIT_RETURN_IF_ERROR(dataset.Append(p, label));
  }
  return Status::OK();
}

Status AppendUniformBox(Dataset& dataset, Rng& rng,
                        std::span<const double> lo,
                        std::span<const double> hi, size_t count,
                        const std::string& label) {
  LOFKIT_RETURN_IF_ERROR(CheckDimension(dataset, lo.size(), "box"));
  if (hi.size() != lo.size()) {
    return Status::InvalidArgument("box lo/hi dimension mismatch");
  }
  for (size_t d = 0; d < lo.size(); ++d) {
    if (lo[d] > hi[d]) {
      return Status::InvalidArgument("box lo must be <= hi in every dimension");
    }
  }
  std::vector<double> p(lo.size());
  for (size_t i = 0; i < count; ++i) {
    for (size_t d = 0; d < lo.size(); ++d) {
      p[d] = rng.Uniform(lo[d], hi[d]);
    }
    LOFKIT_RETURN_IF_ERROR(dataset.Append(p, label));
  }
  return Status::OK();
}

Status AppendUniformBall(Dataset& dataset, Rng& rng,
                         std::span<const double> center, double radius,
                         size_t count, const std::string& label) {
  LOFKIT_RETURN_IF_ERROR(CheckDimension(dataset, center.size(), "center"));
  if (!(radius >= 0.0)) {
    return Status::InvalidArgument("radius must be >= 0");
  }
  const size_t dim = center.size();
  std::vector<double> p(dim);
  for (size_t i = 0; i < count; ++i) {
    // Direction: normalized Gaussian vector; length: r * U^(1/dim).
    double norm_sq = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      p[d] = rng.Gaussian();
      norm_sq += p[d] * p[d];
    }
    const double norm = std::sqrt(norm_sq);
    const double r =
        radius * std::pow(rng.NextDouble(), 1.0 / static_cast<double>(dim));
    const double scale = norm > 0.0 ? r / norm : 0.0;
    for (size_t d = 0; d < dim; ++d) {
      p[d] = center[d] + p[d] * scale;
    }
    LOFKIT_RETURN_IF_ERROR(dataset.Append(p, label));
  }
  return Status::OK();
}

Status AppendRing(Dataset& dataset, Rng& rng, double cx, double cy,
                  double radius, double noise, size_t count,
                  const std::string& label) {
  LOFKIT_RETURN_IF_ERROR(CheckDimension(dataset, 2, "ring"));
  for (size_t i = 0; i < count; ++i) {
    const double angle = rng.Uniform(0.0, 2.0 * std::numbers::pi);
    const double r = radius + rng.Gaussian(0.0, noise);
    const double p[2] = {cx + r * std::cos(angle), cy + r * std::sin(angle)};
    LOFKIT_RETURN_IF_ERROR(dataset.Append(p, label));
  }
  return Status::OK();
}

Status AppendPoint(Dataset& dataset, std::span<const double> coordinates,
                   const std::string& label) {
  return dataset.Append(coordinates, label);
}

Status AppendDuplicates(Dataset& dataset, std::span<const double> coordinates,
                        size_t copies, const std::string& label) {
  for (size_t i = 0; i < copies; ++i) {
    LOFKIT_RETURN_IF_ERROR(dataset.Append(coordinates, label));
  }
  return Status::OK();
}

Status AppendHistogramCluster(Dataset& dataset, Rng& rng, size_t count,
                              double concentration,
                              const std::string& label) {
  LOFKIT_RETURN_IF_ERROR(CheckDimension(dataset, 64, "histogram"));
  if (!(concentration > 0.0)) {
    return Status::InvalidArgument("concentration must be > 0");
  }
  // Cluster template: a sparse random histogram (few dominant bins), like a
  // color histogram of one scene type.
  std::vector<double> alpha(64, 0.05);
  const size_t dominant = 3 + rng.UniformU64(5);
  for (size_t i = 0; i < dominant; ++i) {
    alpha[rng.UniformU64(64)] += rng.Uniform(1.0, 4.0);
  }
  std::vector<double> p(64);
  for (size_t i = 0; i < count; ++i) {
    // Dirichlet sample via normalized Gammas; `concentration` scales the
    // parameters, so larger values give tighter clusters.
    double sum = 0.0;
    for (size_t d = 0; d < 64; ++d) {
      p[d] = rng.Gamma(alpha[d] * concentration);
      sum += p[d];
    }
    if (sum <= 0.0) sum = 1.0;
    for (size_t d = 0; d < 64; ++d) p[d] /= sum;
    LOFKIT_RETURN_IF_ERROR(dataset.Append(p, label));
  }
  return Status::OK();
}

Result<Dataset> MakeGaussianMixture(Rng& rng, size_t dimension,
                                    std::span<const GaussianSpec> specs) {
  LOFKIT_ASSIGN_OR_RETURN(Dataset dataset, Dataset::Create(dimension));
  for (const GaussianSpec& spec : specs) {
    if (spec.center.size() != dimension) {
      return Status::InvalidArgument("cluster center dimension mismatch");
    }
    LOFKIT_RETURN_IF_ERROR(AppendGaussianCluster(
        dataset, rng, spec.center, spec.stddev, spec.count, spec.label));
  }
  if (dataset.empty()) {
    return Status::InvalidArgument("mixture produced an empty dataset");
  }
  return dataset;
}

Result<Dataset> MakePerformanceWorkload(Rng& rng, size_t dimension,
                                        size_t total_points,
                                        size_t clusters) {
  if (clusters == 0 || total_points == 0) {
    return Status::InvalidArgument("clusters and total_points must be > 0");
  }
  std::vector<GaussianSpec> specs(clusters);
  const size_t base = total_points / clusters;
  size_t remainder = total_points % clusters;
  for (size_t c = 0; c < clusters; ++c) {
    specs[c].center.resize(dimension);
    for (size_t d = 0; d < dimension; ++d) {
      specs[c].center[d] = rng.Uniform(0.0, 100.0);
    }
    specs[c].stddev = rng.Uniform(0.5, 5.0);
    specs[c].count = base + (c < remainder ? 1 : 0);
    specs[c].label = StrFormat("cluster_%zu", c);
  }
  return MakeGaussianMixture(rng, dimension, specs);
}

Result<Dataset> MakeEmbeddedWorkload(Rng& rng, size_t ambient_dim,
                                     size_t intrinsic_dim,
                                     size_t total_points, size_t clusters,
                                     double noise_stddev) {
  if (intrinsic_dim == 0 || intrinsic_dim > ambient_dim) {
    return Status::InvalidArgument(
        "intrinsic_dim must be in [1, ambient_dim]");
  }
  if (!(noise_stddev >= 0.0)) {
    return Status::InvalidArgument("noise_stddev must be >= 0");
  }
  LOFKIT_ASSIGN_OR_RETURN(
      Dataset low,
      MakePerformanceWorkload(rng, intrinsic_dim, total_points, clusters));

  // A random orthonormal frame for the embedding: Gram-Schmidt over
  // Gaussian draws. Degenerate draws (norm ~ 0 after projection) are
  // rejected and redrawn, so the frame always spans intrinsic_dim
  // directions.
  std::vector<std::vector<double>> basis;
  basis.reserve(intrinsic_dim);
  while (basis.size() < intrinsic_dim) {
    std::vector<double> v(ambient_dim);
    for (double& x : v) x = rng.Gaussian();
    for (const std::vector<double>& b : basis) {
      double dot = 0.0;
      for (size_t i = 0; i < ambient_dim; ++i) dot += v[i] * b[i];
      for (size_t i = 0; i < ambient_dim; ++i) v[i] -= dot * b[i];
    }
    double norm = 0.0;
    for (double x : v) norm += x * x;
    norm = std::sqrt(norm);
    if (norm < 1e-9) continue;
    for (double& x : v) x /= norm;
    basis.push_back(std::move(v));
  }

  LOFKIT_ASSIGN_OR_RETURN(Dataset dataset, Dataset::Create(ambient_dim));
  std::vector<double> point(ambient_dim);
  for (size_t p = 0; p < low.size(); ++p) {
    const auto coords = low.point(p);
    for (size_t i = 0; i < ambient_dim; ++i) {
      double s = 0.0;
      for (size_t j = 0; j < intrinsic_dim; ++j) {
        s += coords[j] * basis[j][i];
      }
      if (noise_stddev > 0.0) s += rng.Gaussian(0.0, noise_stddev);
      point[i] = s;
    }
    LOFKIT_RETURN_IF_ERROR(AppendPoint(dataset, point, low.label(p)));
  }
  return dataset;
}

}  // namespace generators
}  // namespace lofkit
