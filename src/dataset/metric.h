#ifndef LOFKIT_DATASET_METRIC_H_
#define LOFKIT_DATASET_METRIC_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "dataset/distance_kernels.h"

namespace lofkit {

class PointBlockView;

/// A distance function d(p, q) over equal-dimension points.
///
/// All LOF definitions (Defs. 3-7 of the paper) are stated for an arbitrary
/// metric; lofkit keeps that generality. Implementations must satisfy the
/// metric axioms the indexes rely on for pruning: non-negativity, identity,
/// symmetry and the triangle inequality.
class Metric {
 public:
  virtual ~Metric() = default;

  /// d(a, b). Both spans must have the same size.
  virtual double Distance(std::span<const double> a,
                          std::span<const double> b) const = 0;

  /// Smallest possible distance from `q` to any point inside the axis-aligned
  /// box [lo, hi]. Used by the tree and grid indexes for branch pruning.
  virtual double MinDistanceToBox(std::span<const double> q,
                                  std::span<const double> lo,
                                  std::span<const double> hi) const = 0;

  /// Largest possible distance from `q` to any point inside the box
  /// [lo, hi]. Used by the VA-file for candidate upper bounds.
  virtual double MaxDistanceToBox(std::span<const double> q,
                                  std::span<const double> lo,
                                  std::span<const double> hi) const = 0;

  /// Lower bound on the distance contributed by a single coordinate
  /// difference `delta` in dimension `dim`; used by the KD-tree
  /// splitting-plane test. For unweighted Minkowski metrics this is
  /// |delta|.
  virtual double CoordinateDistance(size_t dim, double delta) const {
    (void)dim;
    return delta < 0 ? -delta : delta;
  }

  /// Short identifier, e.g. "euclidean".
  virtual std::string_view name() const = 0;

  // --- Distance-kernel layer -------------------------------------------
  //
  // Indexes compare and prune in *rank space*, a strictly monotone
  // transform of the distance (see DistanceKernels). Every method below
  // has a correct default, so external Metric subclasses keep working:
  // they simply rank in plain distance space through the virtual calls.

  /// True when this metric ranks in squared-distance space (L2 family):
  /// RankDistance returns the squared distance and indexes take one sqrt
  /// per reported neighbor instead of one per candidate pair.
  virtual bool squared_rank() const { return false; }

  /// Rank of d(a, b): the squared distance for squared_rank() metrics,
  /// the distance itself otherwise.
  virtual double RankDistance(std::span<const double> a,
                              std::span<const double> b) const {
    return Distance(a, b);
  }

  /// MinDistanceToBox in rank space (squared for squared_rank metrics),
  /// computed directly — not by squaring the rooted bound — so box
  /// pruning against a rank-space threshold stays exact.
  virtual double MinRankToBox(std::span<const double> q,
                              std::span<const double> lo,
                              std::span<const double> hi) const {
    return MinDistanceToBox(q, lo, hi);
  }

  /// MaxDistanceToBox in rank space.
  virtual double MaxRankToBox(std::span<const double> q,
                              std::span<const double> lo,
                              std::span<const double> hi) const {
    return MaxDistanceToBox(q, lo, hi);
  }

  /// Distances from `query` to all kKernelLanes points of block `b` of
  /// `view`, written to `out[0..kKernelLanes)`. Results for padding lanes
  /// are unspecified. The default gathers each lane and calls Distance;
  /// the bundled metrics override it with tight blocked loops.
  virtual void BatchDistance(std::span<const double> query,
                             const PointBlockView& view, size_t b,
                             std::span<double> out) const;

  /// The non-virtual kernel bundle for this metric's hot loops. Fetch
  /// once per index Build(); the metric must outlive the returned struct
  /// (its ctx points into the metric). The default trampolines to the
  /// virtuals above, so any subclass gets a working (if slower) bundle.
  virtual DistanceKernels kernels() const;

  /// Maps a rank back to a distance (non-virtual convenience).
  double RankToDistance(double rank) const {
    return DistanceFromRank(squared_rank(), rank);
  }
};

/// L2 (Euclidean) metric — the metric of every experiment in the paper.
class EuclideanMetric final : public Metric {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  double MinDistanceToBox(std::span<const double> q,
                          std::span<const double> lo,
                          std::span<const double> hi) const override;
  double MaxDistanceToBox(std::span<const double> q,
                          std::span<const double> lo,
                          std::span<const double> hi) const override;
  std::string_view name() const override { return "euclidean"; }

  bool squared_rank() const override { return true; }
  double RankDistance(std::span<const double> a,
                      std::span<const double> b) const override;
  double MinRankToBox(std::span<const double> q, std::span<const double> lo,
                      std::span<const double> hi) const override;
  double MaxRankToBox(std::span<const double> q, std::span<const double> lo,
                      std::span<const double> hi) const override;
  void BatchDistance(std::span<const double> query, const PointBlockView& view,
                     size_t b, std::span<double> out) const override;
  DistanceKernels kernels() const override;
};

/// L1 (Manhattan) metric.
class ManhattanMetric final : public Metric {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  double MinDistanceToBox(std::span<const double> q,
                          std::span<const double> lo,
                          std::span<const double> hi) const override;
  double MaxDistanceToBox(std::span<const double> q,
                          std::span<const double> lo,
                          std::span<const double> hi) const override;
  std::string_view name() const override { return "manhattan"; }

  void BatchDistance(std::span<const double> query, const PointBlockView& view,
                     size_t b, std::span<double> out) const override;
  DistanceKernels kernels() const override;
};

/// L-infinity (Chebyshev) metric.
class ChebyshevMetric final : public Metric {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  double MinDistanceToBox(std::span<const double> q,
                          std::span<const double> lo,
                          std::span<const double> hi) const override;
  double MaxDistanceToBox(std::span<const double> q,
                          std::span<const double> lo,
                          std::span<const double> hi) const override;
  std::string_view name() const override { return "chebyshev"; }

  void BatchDistance(std::span<const double> query, const PointBlockView& view,
                     size_t b, std::span<double> out) const override;
  DistanceKernels kernels() const override;
};

/// General Minkowski L_p metric, p >= 1.
class MinkowskiMetric final : public Metric {
 public:
  /// Creates an L_p metric. Fails for p < 1 (not a metric below 1).
  static Result<MinkowskiMetric> Create(double p);

  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  double MinDistanceToBox(std::span<const double> q,
                          std::span<const double> lo,
                          std::span<const double> hi) const override;
  double MaxDistanceToBox(std::span<const double> q,
                          std::span<const double> lo,
                          std::span<const double> hi) const override;
  std::string_view name() const override { return "minkowski"; }

  void BatchDistance(std::span<const double> query, const PointBlockView& view,
                     size_t b, std::span<double> out) const override;
  DistanceKernels kernels() const override;

  double p() const { return p_; }

 private:
  explicit MinkowskiMetric(double p) : p_(p) {}
  double p_;
};

/// Euclidean metric with per-dimension weights, for attribute spaces whose
/// axes are incommensurate (the paper's sports subspaces mix games, goals
/// and coded positions).
class WeightedEuclideanMetric final : public Metric {
 public:
  /// All weights must be finite and > 0.
  static Result<WeightedEuclideanMetric> Create(std::vector<double> weights);

  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  double MinDistanceToBox(std::span<const double> q,
                          std::span<const double> lo,
                          std::span<const double> hi) const override;
  double MaxDistanceToBox(std::span<const double> q,
                          std::span<const double> lo,
                          std::span<const double> hi) const override;
  /// Scales the per-coordinate bound by sqrt(weight[dim]) so KD-tree
  /// pruning stays a valid lower bound for weights below 1.
  double CoordinateDistance(size_t dim, double delta) const override;
  std::string_view name() const override { return "weighted_euclidean"; }

  bool squared_rank() const override { return true; }
  double RankDistance(std::span<const double> a,
                      std::span<const double> b) const override;
  double MinRankToBox(std::span<const double> q, std::span<const double> lo,
                      std::span<const double> hi) const override;
  double MaxRankToBox(std::span<const double> q, std::span<const double> lo,
                      std::span<const double> hi) const override;
  void BatchDistance(std::span<const double> query, const PointBlockView& view,
                     size_t b, std::span<double> out) const override;
  DistanceKernels kernels() const override;

  std::span<const double> weights() const { return weights_; }

 private:
  explicit WeightedEuclideanMetric(std::vector<double> weights)
      : weights_(std::move(weights)) {}
  std::vector<double> weights_;
};

/// Angular (great-circle) distance: the arc cosine of the cosine
/// similarity, a true metric on directions. Natural for normalized
/// histogram data such as the paper's 64-d color histograms, where vector
/// length is meaningless. The zero vector has no direction; Distance()
/// treats it as at angle 0 from everything (callers should avoid it).
///
/// Axis-aligned boxes bound angles poorly, so the box bounds are the
/// trivially valid [0, pi]: tree/grid engines remain exact but degrade to
/// scans under this metric — use LinearScanIndex or VaFileIndex.
class AngularMetric final : public Metric {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  double MinDistanceToBox(std::span<const double> q,
                          std::span<const double> lo,
                          std::span<const double> hi) const override;
  double MaxDistanceToBox(std::span<const double> q,
                          std::span<const double> lo,
                          std::span<const double> hi) const override;
  double CoordinateDistance(size_t dim, double delta) const override;
  std::string_view name() const override { return "angular"; }
};

/// The process-wide Euclidean metric instance (stateless, safe to share).
const EuclideanMetric& Euclidean();

/// The process-wide Manhattan metric instance.
const ManhattanMetric& Manhattan();

/// The process-wide Chebyshev metric instance.
const ChebyshevMetric& Chebyshev();

/// The process-wide angular metric instance.
const AngularMetric& Angular();

/// Looks up a shared metric by name ("euclidean", "manhattan", "chebyshev",
/// "angular").
Result<const Metric*> MetricByName(std::string_view name);

}  // namespace lofkit

#endif  // LOFKIT_DATASET_METRIC_H_
