#ifndef LOFKIT_DATASET_DISTANCE_KERNELS_H_
#define LOFKIT_DATASET_DISTANCE_KERNELS_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace lofkit {

/// Number of points a blocked kernel processes per call; also the lane
/// count of the PointBlockView SoA layout.
inline constexpr size_t kKernelLanes = 8;

/// Non-virtual distance kernels for the kNN hot paths, fetched once per
/// index Build() via Metric::kernels().
///
/// Kernels operate in *rank space*: a strictly monotone transform of the
/// metric distance that is cheaper to compute and compare. For Euclidean
/// and weighted-Euclidean metrics the rank is the *squared* distance
/// (`squared == true`) — indexes accumulate, compare and prune squared
/// sums and take one sqrt per reported neighbor. For every other metric
/// the rank is the distance itself.
///
/// Determinism contract: for a given metric, `rank_one`, `rank_block`,
/// `rank_gather` and a non-abandoning `rank_bounded` all accumulate each
/// point's coordinate terms in the same order as `Metric::Distance`, so
/// `DistanceFromRank(squared, rank)` is bit-identical to the virtual-call
/// result.
struct DistanceKernels {
  /// Opaque per-metric state (e.g. the weights array); owned by the Metric
  /// the kernels were fetched from, which must outlive this struct.
  const void* ctx = nullptr;

  /// True when rank space is the squared distance.
  bool squared = false;

  /// Rank of the distance between points `a` and `b` of `dim` coordinates.
  double (*rank_one)(const void* ctx, const double* a, const double* b,
                     size_t dim) = nullptr;

  /// Like `rank_one`, but may abandon the candidate early: the return
  /// value is exact whenever the true rank is <= `bound`; otherwise it is
  /// either the exact rank or +infinity. Callers that reject candidates
  /// with rank > bound (e.g. against the current kth rank) therefore see
  /// identical results with or without abandonment.
  double (*rank_bounded)(const void* ctx, const double* a, const double* b,
                         size_t dim, double bound) = nullptr;

  /// Ranks from `q` to all kKernelLanes points of one SoA block (layout:
  /// coordinate-major, `block[d * kKernelLanes + lane]`), written to
  /// `out[0..kKernelLanes)`. Padding lanes produce garbage ranks that the
  /// caller discards by id.
  void (*rank_block)(const void* ctx, const double* q, const double* block,
                     size_t dim, double* out) = nullptr;

  /// Ranks from `q` to `count` row-major points gathered by id from `raw`
  /// (point i at `raw + ids[i] * dim`), written to `out[0..count)`. Each
  /// lane obeys the `rank_bounded` abandonment contract for `bound`.
  void (*rank_gather)(const void* ctx, const double* q, const double* raw,
                      const uint32_t* ids, size_t count, size_t dim,
                      double bound, double* out) = nullptr;

  /// MINDIST in rank space from `q` to the axis-aligned box [lo, hi]
  /// (`dim` doubles each): a lower bound on the rank from `q` to every
  /// point inside the box. Mirrors Metric::MinRankToBox coordinate
  /// accumulation exactly, without the virtual dispatch — this is the
  /// per-node cost of every tree traversal.
  double (*rank_box)(const void* ctx, const double* q, const double* lo,
                     const double* hi, size_t dim) = nullptr;

  /// Admissible single-coordinate bound: a lower bound on the rank from
  /// `q` to any point whose coordinate `d` lies on the far side of the
  /// hyperplane x_d = v (with q[d] on the near side). Lets tree descents
  /// pre-gate a far-child push in O(1) before paying the O(dim)
  /// `rank_box`. The generic trampoline returns 0 (a gate that never
  /// fires), which is always admissible.
  double (*rank_cut)(const void* ctx, double qd, double v,
                     size_t d) = nullptr;
};

/// Maps a metric distance into rank space.
inline double RankFromDistance(bool squared, double d) {
  return squared ? d * d : d;
}

/// Maps a rank back to the metric distance. For squared ranks produced by
/// the same coordinate-accumulation order as Metric::Distance, the result
/// is bit-identical to the virtual call.
inline double DistanceFromRank(bool squared, double r) {
  return squared ? std::sqrt(r) : r;
}

/// Conservative rank-space *upper* bound for a distance-space bound `d`:
/// guaranteed >= RankFromDistance(d) despite rounding, so "rank > bound
/// => distance > d" stays exactly safe. Use when an inclusive threshold
/// (radius, M-tree tau) originates in distance space.
inline double PruneRankUpperBound(bool squared, double d) {
  if (!squared) return d;
  const double r = d * d;
  if (!std::isfinite(r)) return r;
  const double padded = r * (1.0 + 8.0 * std::numeric_limits<double>::epsilon());
  return std::nextafter(padded, std::numeric_limits<double>::infinity());
}

/// Conservative rank-space *lower* bound for a distance-space lower bound
/// `d`: guaranteed <= RankFromDistance(d) despite rounding, so "bound >
/// tau => all remaining distances > tau-distance" stays exactly safe. Use
/// for termination tests built from distance-space bounds (grid shells).
inline double PruneRankLowerBound(bool squared, double d) {
  if (!squared) return d;
  const double r = d * d;
  if (!std::isfinite(r)) return r;
  const double padded = r * (1.0 - 8.0 * std::numeric_limits<double>::epsilon());
  const double below = std::nextafter(padded, 0.0);
  return below > 0.0 ? below : 0.0;
}

namespace kernels {

/// Raw per-metric loops, shared by the Metric overrides and directly
/// benchmarkable. All pointers must reference `dim` (or `dim *
/// kKernelLanes`) readable doubles; `a`/`b`/`q`/`block`/`out` must not
/// alias.

// L2 in squared rank space.
double L2Squared(const double* a, const double* b, size_t dim);
double L2SquaredBounded(const double* a, const double* b, size_t dim,
                        double bound);
void L2SquaredBlock(const double* q, const double* block, size_t dim,
                    double* out);
double L2SquaredToBox(const double* q, const double* lo, const double* hi,
                      size_t dim);

// L1: rank == distance.
double L1(const double* a, const double* b, size_t dim);
double L1Bounded(const double* a, const double* b, size_t dim, double bound);
void L1Block(const double* q, const double* block, size_t dim, double* out);
double L1ToBox(const double* q, const double* lo, const double* hi,
               size_t dim);

// L-infinity: rank == distance.
double Linf(const double* a, const double* b, size_t dim);
double LinfBounded(const double* a, const double* b, size_t dim, double bound);
void LinfBlock(const double* q, const double* block, size_t dim, double* out);
double LinfToBox(const double* q, const double* lo, const double* hi,
                 size_t dim);

// Minkowski L_p: rank == distance (no early exit; the p-th root makes a
// partial-sum bound too delicate to keep exactly safe).
double Lp(double p, const double* a, const double* b, size_t dim);
void LpBlock(double p, const double* q, const double* block, size_t dim,
             double* out);
double LpToBox(double p, const double* q, const double* lo, const double* hi,
               size_t dim);

// Weighted L2 in squared rank space; `w` holds `dim` weights.
double WeightedL2Squared(const double* w, const double* a, const double* b,
                         size_t dim);
double WeightedL2SquaredBounded(const double* w, const double* a,
                                const double* b, size_t dim, double bound);
void WeightedL2SquaredBlock(const double* w, const double* q,
                            const double* block, size_t dim, double* out);
double WeightedL2SquaredToBox(const double* w, const double* q,
                              const double* lo, const double* hi, size_t dim);

}  // namespace kernels

}  // namespace lofkit

#endif  // LOFKIT_DATASET_DISTANCE_KERNELS_H_
