#ifndef LOFKIT_INDEX_VA_FILE_INDEX_H_
#define LOFKIT_INDEX_VA_FILE_INDEX_H_

#include <cstdint>
#include <vector>

#include "index/knn_index.h"

namespace lofkit {

/// Vector-approximation file (Weber/Schek/Blott, VLDB'98) — the engine the
/// paper recommends for "extremely high-dimensional data" where tree
/// indexes degenerate (section 7.4, reference [21]).
///
/// Build() quantizes every coordinate into 2^bits equally spaced intervals
/// and stores only the compact approximation. A kNN query makes one filter
/// pass over the approximations, computing per-point lower/upper distance
/// bounds from the quantization cell, then refines the surviving candidates
/// (ordered by lower bound) against the exact coordinates. The result is
/// exact; only the candidate set is approximate.
class VaFileIndex final : public KnnIndex {
 public:
  /// `bits_per_dimension` must be in [1, 8].
  explicit VaFileIndex(size_t bits_per_dimension = 6)
      : bits_(bits_per_dimension) {}

  Status Build(const Dataset& data, const Metric& metric) override;

  using KnnIndex::Query;
  using KnnIndex::QueryRadius;
  Status Query(std::span<const double> query, size_t k,
               std::optional<uint32_t> exclude,
               KnnSearchContext& ctx) const override;
  Status QueryRadius(std::span<const double> query, double radius,
                     std::optional<uint32_t> exclude,
                     KnnSearchContext& ctx) const override;
  const Dataset* dataset() const override { return data_; }
  std::string_view name() const override { return "va_file"; }

  /// Number of quantization intervals per dimension.
  size_t intervals() const { return size_t{1} << bits_; }

  /// Persists the signature table — quantization grid (box_lo, step) and
  /// per-point cell approximations — to a checksummed container file
  /// (container_file.h), published crash-safely via tmp + fsync + atomic
  /// rename. The approximation is the expensive full-data pass of Build();
  /// the exact coordinates are not stored (they live in the dataset).
  Status SaveToFile(const std::string& path) const;

  /// Restores a signature table written by SaveToFile over the same
  /// dataset, replacing the Build() quantization pass. `data`/`metric`
  /// play Build()'s role (queries still refine against the exact
  /// coordinates); the file's dimensions and point count must match the
  /// dataset, and the grid is structurally validated (finite bounds,
  /// positive steps, in-range cells), so a corrupt or mismatched file is
  /// rejected with a typed Status.
  Status LoadFromFile(const std::string& path, const Dataset& data,
                      const Metric& metric);

 private:
  /// Fills `lo`/`hi` with the bounds of point i's quantization cell.
  void CellOf(size_t i, std::vector<double>& lo, std::vector<double>& hi) const;

  const Dataset* data_ = nullptr;
  const Metric* metric_ = nullptr;
  DistanceKernels kern_;
  size_t bits_ = 6;
  size_t dim_ = 0;
  std::vector<double> box_lo_;
  std::vector<double> step_;          // interval width per dimension
  std::vector<uint8_t> approximation_;  // n * d cell indices
};

}  // namespace lofkit

#endif  // LOFKIT_INDEX_VA_FILE_INDEX_H_
