#ifndef LOFKIT_INDEX_KNN_INDEX_H_
#define LOFKIT_INDEX_KNN_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"
#include "dataset/metric.h"

namespace lofkit {

/// One element of a neighbor list: a point index and its distance to the
/// query. Neighbor lists are always sorted by (distance, index) ascending.
struct Neighbor {
  uint32_t index = 0;
  double distance = 0.0;
};

inline bool operator==(const Neighbor& a, const Neighbor& b) {
  return a.index == b.index && a.distance == b.distance;
}

/// Interface of every k-nearest-neighbor query engine in lofkit.
///
/// The paper's two-step algorithm (section 7.4) is agnostic to how the kNN
/// queries are answered and lists several options (grid, index tree,
/// sequential scan / VA-file); lofkit implements each behind this interface.
///
/// Semantics follow Definitions 3 and 4 of the paper: Query(q, k) returns
/// the *k-distance neighborhood* of q — every eligible point whose distance
/// is <= the k-distance — so the result contains at least k entries and more
/// when ties exist at the k-distance. If fewer than k eligible points exist,
/// all of them are returned.
class KnnIndex {
 public:
  virtual ~KnnIndex() = default;

  /// Builds the index over `data` with `metric`. Both must outlive the
  /// index. Fails on an empty dataset. Building again replaces the previous
  /// content.
  virtual Status Build(const Dataset& data, const Metric& metric) = 0;

  /// k-distance neighborhood of `query` (ties included), sorted by
  /// (distance, index). `exclude`, when set, removes that point index from
  /// consideration — pass the query point's own index to realize the
  /// D \ {p} of Definition 3. Requires k >= 1 and a prior successful
  /// Build().
  virtual Result<std::vector<Neighbor>> Query(
      std::span<const double> query, size_t k,
      std::optional<uint32_t> exclude = std::nullopt) const = 0;

  /// All points within `radius` of `query` (inclusive), sorted by
  /// (distance, index), `exclude` as in Query(). Used by DBSCAN/OPTICS and
  /// the DB(pct, dmin) baseline.
  virtual Result<std::vector<Neighbor>> QueryRadius(
      std::span<const double> query, double radius,
      std::optional<uint32_t> exclude = std::nullopt) const = 0;

  /// Engine identifier, e.g. "linear_scan", "rstar_tree".
  virtual std::string_view name() const = 0;
};

namespace internal_index {

/// Accumulates candidates during a kNN search and produces the k-distance
/// neighborhood (ties included).
///
/// Offer() every candidate; tau() is the current k-th smallest distance
/// (+inf until k candidates were seen) and is the pruning bound: a search
/// may skip any region whose minimum possible distance is *strictly greater*
/// than tau (skipping at == tau would lose ties).
class KnnCollector {
 public:
  explicit KnnCollector(size_t k) : k_(k) {}

  /// Considers one candidate.
  void Offer(uint32_t index, double distance) {
    if (distance > Tau()) return;
    accepted_.push_back(Neighbor{index, distance});
    heap_.push_back(distance);
    std::push_heap(heap_.begin(), heap_.end());
    if (heap_.size() > k_) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.pop_back();
    }
  }

  /// Current pruning bound (k-th smallest distance seen, or +inf).
  double Tau() const {
    return heap_.size() == k_ ? heap_.front()
                              : std::numeric_limits<double>::infinity();
  }

  /// Finalizes: filters to distance <= k-distance, sorts by
  /// (distance, index). The collector is left empty.
  std::vector<Neighbor> Take();

 private:
  size_t k_;
  std::vector<double> heap_;        // max-heap of the k smallest distances
  std::vector<Neighbor> accepted_;  // superset of the final result
};

/// Sorts a neighbor list by (distance, index).
void SortNeighbors(std::vector<Neighbor>& neighbors);

/// Converts a neighbor list whose `distance` fields hold rank-space values
/// (as produced by DistanceKernels) back to metric distances, in place.
/// The rank transform is monotone, so (distance, index) order and tie
/// structure are preserved.
void RanksToDistances(const DistanceKernels& kernels,
                      std::vector<Neighbor>& neighbors);

}  // namespace internal_index
}  // namespace lofkit

#endif  // LOFKIT_INDEX_KNN_INDEX_H_
