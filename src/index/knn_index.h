#ifndef LOFKIT_INDEX_KNN_INDEX_H_
#define LOFKIT_INDEX_KNN_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "common/result.h"
#include "dataset/dataset.h"
#include "dataset/metric.h"

namespace lofkit {

/// One element of a neighbor list: a point index and its distance to the
/// query. Neighbor lists are always sorted by (distance, index) ascending.
struct Neighbor {
  uint32_t index = 0;
  double distance = 0.0;
};

inline bool operator==(const Neighbor& a, const Neighbor& b) {
  return a.index == b.index && a.distance == b.distance;
}

/// Quality/throughput dial of the approximate engines (currently the
/// randomized kd-forest). Exact engines ignore it.
///
/// The defaults are *exact*: an unbounded search with no slack degenerates
/// to plain best-bin-first over the forest and returns the true k-distance
/// neighborhood, so a factory-created approximate engine is safe anywhere
/// an exact one is. Approximation only enters when a caller dials `checks`
/// down or `eps` up — the bench_ann_quality sweep maps dial positions to
/// measured recall / LOF-score-error so the trade is made knowingly.
struct SearchParams {
  /// Maximum candidate points examined per kNN query (0 = unbounded). The
  /// search never stops before the result holds k candidates, so a
  /// neighborhood of at least min(k, eligible) entries always comes back;
  /// after that, the budget caps how much of the frontier is drained.
  size_t checks = 0;

  /// Approximation slack: a frontier branch is pruned when its closest
  /// possible point could not improve the current k-distance by more than
  /// a (1 + eps) factor. 0 keeps best-bin-first admissible (exact given an
  /// unbounded check budget). Must be >= 0.
  double eps = 0.0;
};

/// Reusable per-query scratch for the context-taking query API.
///
/// The paper's two-step algorithm runs one kNN query per point — n queries
/// against the same index — and rebuilding the traversal state (collector
/// heap, accepted list, node stacks and priority queues, candidate buffers,
/// the result vector) from cold heap allocations on every call is pure
/// waste. A context owns all of that scratch; queries through the same
/// context reuse the grown capacity, so the linear-scan and kd-tree paths
/// run with zero heap allocations once warm (asserted by a counting
/// operator-new test).
///
/// A context is scratch, not state: it carries no result semantics beyond
/// "the last call through it". It is not thread-safe — use one context per
/// thread (the materializers keep one per ParallelFor worker). Any engine
/// can use any context; the pools are engine-agnostic.
class KnnSearchContext {
 public:
  KnnSearchContext() = default;
  KnnSearchContext(KnnSearchContext&&) noexcept = default;
  KnnSearchContext& operator=(KnnSearchContext&&) noexcept = default;
  // Non-copyable: copying scratch buffers is never what a caller wants.
  KnnSearchContext(const KnnSearchContext&) = delete;
  KnnSearchContext& operator=(const KnnSearchContext&) = delete;

  /// Result of the last single-query Query/QueryRadius call through this
  /// context, sorted by (distance, index). Valid until the next call.
  std::span<const Neighbor> results() const {
    return {scratch.out.data(), scratch.out.size()};
  }

  /// Number of per-point neighbor lists held from the last QueryBatch call.
  size_t batch_size() const {
    return scratch.batch_offsets.empty() ? 0
                                         : scratch.batch_offsets.size() - 1;
  }

  /// Neighbor list of the i-th queried id of the last QueryBatch call,
  /// sorted by (distance, index). Valid until the next QueryBatch call.
  std::span<const Neighbor> batch_results(size_t i) const {
    return {scratch.batch_flat.data() + scratch.batch_offsets[i],
            scratch.batch_offsets[i + 1] - scratch.batch_offsets[i]};
  }

  /// Optional query-cost counters. Null (the default) disables counting
  /// entirely; when set, every engine bumps the counters with plain
  /// non-atomic increments — the pointer must therefore follow the same
  /// one-context-per-worker discipline as the scratch pools. Counting never
  /// allocates and never changes a result bit, so the zero-allocation
  /// steady state and bit-identical guarantees hold in both modes.
  QueryStats* stats = nullptr;

  /// Optional flight-recorder shard for per-query latency sampling. The
  /// engines never touch this — the *call sites* that issue queries
  /// (materializer chunks, substrate re-queries) consult it to decide
  /// whether to time a unit and where to record it. Same per-worker
  /// discipline as `stats`; timing requires `stats` to be set too (the
  /// recorder keeps counter deltas alongside wall time).
  QueryFlightRecorder::Shard* flight = nullptr;

  /// Engine-internal scratch pools. Not part of the stable API: the
  /// engines and the collector reach in freely; external callers must
  /// treat the context as an opaque handle and read results via
  /// results() / batch_results().
  struct Scratch {
    std::vector<Neighbor> out;       // single-query result buffer
    std::vector<double> heap;        // KnnCollector max-heap
    std::vector<Neighbor> accepted;  // KnnCollector accepted superset
    std::vector<double> rank;        // block/gather kernel output
    std::vector<double> box_lo;      // cell/rect bounds
    std::vector<double> box_hi;
    std::vector<int64_t> cell_a;     // grid cell coordinates
    std::vector<int64_t> cell_b;
    std::vector<int64_t> cell_c;
    std::vector<std::pair<double, uint32_t>> frontier;  // best-first heap
    // Best-first heap carrying an engine payload (M-tree routing distance).
    struct KeyedNode {
      double key;
      uint32_t node;
      double aux;
    };
    std::vector<KeyedNode> keyed_frontier;
    std::vector<uint32_t> stack;         // DFS node stack
    std::vector<Neighbor> candidates;    // VA-file filter output
    // Cross-tree candidate dedup for the kd-forest: point i was examined
    // in the current query iff visited_mark[i] == visited_epoch, so a new
    // query costs one epoch bump instead of an O(n) clear (the mark array
    // is wiped only on first use and on epoch wraparound).
    std::vector<uint32_t> visited_mark;
    uint32_t visited_epoch = 0;
    // Per-slot collector pools for the tiled batch path.
    std::vector<std::vector<double>> tile_heaps;
    std::vector<std::vector<Neighbor>> tile_accepted;
    // QueryBatch output: flat neighbor lists plus offsets (n + 1).
    std::vector<size_t> batch_offsets;
    std::vector<Neighbor> batch_flat;
  } scratch;
};

/// Interface of every k-nearest-neighbor query engine in lofkit.
///
/// The paper's two-step algorithm (section 7.4) is agnostic to how the kNN
/// queries are answered and lists several options (grid, index tree,
/// sequential scan / VA-file); lofkit implements each behind this interface.
///
/// Semantics follow Definitions 3 and 4 of the paper: Query(q, k) returns
/// the *k-distance neighborhood* of q — every eligible point whose distance
/// is <= the k-distance — so the result contains at least k entries and more
/// when ties exist at the k-distance. If fewer than k eligible points exist,
/// all of them are returned.
///
/// The core API is context-taking: results land in the KnnSearchContext
/// (read them via ctx.results() / ctx.batch_results()) and all traversal
/// scratch is drawn from its pools, so a reused context makes repeated
/// queries allocation-free in steady state. The historical allocating
/// signatures remain as thin wrappers over a throwaway context and return
/// bit-identical results.
class KnnIndex {
 public:
  virtual ~KnnIndex() = default;

  /// Builds the index over `data` with `metric`. Both must outlive the
  /// index. Fails on an empty dataset. Building again replaces the previous
  /// content.
  virtual Status Build(const Dataset& data, const Metric& metric) = 0;

  /// k-distance neighborhood of `query` (ties included), sorted by
  /// (distance, index), left in `ctx` (read via ctx.results()). `exclude`,
  /// when set, removes that point index from consideration — pass the query
  /// point's own index to realize the D \ {p} of Definition 3. Requires
  /// k >= 1 and a prior successful Build().
  virtual Status Query(std::span<const double> query, size_t k,
                       std::optional<uint32_t> exclude,
                       KnnSearchContext& ctx) const = 0;

  /// All points within `radius` of `query` (inclusive), sorted by
  /// (distance, index), left in `ctx`; `exclude` as in Query(). Used by
  /// DBSCAN/OPTICS and the DB(pct, dmin) baseline.
  virtual Status QueryRadius(std::span<const double> query, double radius,
                             std::optional<uint32_t> exclude,
                             KnnSearchContext& ctx) const = 0;

  /// Batched self-queries: for every id in `point_ids` (which must index
  /// the built dataset), the k-distance neighborhood of that point with the
  /// point itself excluded — exactly Query(data.point(id), k, id, ctx) per
  /// id, results concatenated in `ctx` (read via ctx.batch_results(i)).
  /// The base implementation loops the single-query core; engines may
  /// override it to batch leaf/cell scans through the blocked SIMD kernels
  /// with bit-identical results (the linear scan tiles queries so each SoA
  /// block is streamed once per tile instead of once per query).
  virtual Status QueryBatch(std::span<const uint32_t> point_ids, size_t k,
                            KnnSearchContext& ctx) const;

  /// The dataset the index was built over; nullptr before Build().
  virtual const Dataset* dataset() const = 0;

  /// Allocating wrapper with the historical signature: runs the
  /// context-taking core over a throwaway context and returns the result.
  Result<std::vector<Neighbor>> Query(
      std::span<const double> query, size_t k,
      std::optional<uint32_t> exclude = std::nullopt) const;

  /// Allocating wrapper, as Query().
  Result<std::vector<Neighbor>> QueryRadius(
      std::span<const double> query, double radius,
      std::optional<uint32_t> exclude = std::nullopt) const;

  /// Engine identifier, e.g. "linear_scan", "rstar_tree".
  virtual std::string_view name() const = 0;
};

namespace internal_index {

/// Accumulates candidates during a kNN search and produces the k-distance
/// neighborhood (ties included).
///
/// The collector borrows its heap and accepted buffers — from a
/// KnnSearchContext's pools or from caller-owned vectors — and clears them
/// on construction, so a warm context makes collection allocation-free.
/// Offer() every candidate; Tau() is the current k-th smallest distance
/// (+inf until k candidates were seen) and is the pruning bound: a search
/// may skip any region whose minimum possible distance is *strictly greater*
/// than tau (skipping at == tau would lose ties).
class KnnCollector {
 public:
  /// A default-constructed collector is unusable until Reset() — it exists
  /// so tiled batch paths can keep a stack array of collectors.
  KnnCollector() = default;

  KnnCollector(size_t k, KnnSearchContext& ctx)
      : KnnCollector(k, ctx.scratch.heap, ctx.scratch.accepted, ctx.stats) {}

  /// Both buffers must outlive the collector. `stats`, when non-null,
  /// receives one heap_pushes increment per accepted candidate.
  KnnCollector(size_t k, std::vector<double>& heap,
               std::vector<Neighbor>& accepted, QueryStats* stats = nullptr)
      : k_(k), heap_(&heap), accepted_(&accepted), stats_(stats) {
    heap_->clear();
    accepted_->clear();
  }

  /// Rebinds to fresh buffers (cleared) for a new query.
  void Reset(size_t k, std::vector<double>& heap,
             std::vector<Neighbor>& accepted, QueryStats* stats = nullptr) {
    k_ = k;
    heap_ = &heap;
    accepted_ = &accepted;
    stats_ = stats;
    heap_->clear();
    accepted_->clear();
  }

  /// Considers one candidate.
  void Offer(uint32_t index, double distance) {
    if (distance > Tau()) return;
    if (stats_ != nullptr) ++stats_->heap_pushes;
    accepted_->push_back(Neighbor{index, distance});
    heap_->push_back(distance);
    std::push_heap(heap_->begin(), heap_->end());
    if (heap_->size() > k_) {
      std::pop_heap(heap_->begin(), heap_->end());
      heap_->pop_back();
    }
  }

  /// Current pruning bound (k-th smallest distance seen, or +inf).
  double Tau() const {
    return heap_->size() == k_ ? heap_->front()
                               : std::numeric_limits<double>::infinity();
  }

  /// Finalizes into `out` (cleared first): filters to distance <=
  /// k-distance, sorts by (distance, index). The collector is left empty.
  void TakeInto(std::vector<Neighbor>& out);

 private:
  size_t k_ = 0;
  std::vector<double>* heap_ = nullptr;  // max-heap of k smallest distances
  std::vector<Neighbor>* accepted_ = nullptr;  // superset of the result
  QueryStats* stats_ = nullptr;  // optional heap_pushes counter
};

/// Sorts a neighbor list by (distance, index).
void SortNeighbors(std::vector<Neighbor>& neighbors);

/// Converts a neighbor list whose `distance` fields hold rank-space values
/// (as produced by DistanceKernels) back to metric distances, in place.
/// The rank transform is monotone, so (distance, index) order and tie
/// structure are preserved.
void RanksToDistances(const DistanceKernels& kernels,
                      std::vector<Neighbor>& neighbors);

}  // namespace internal_index
}  // namespace lofkit

#endif  // LOFKIT_INDEX_KNN_INDEX_H_
