#include "index/neighborhood_materializer.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/fail_point.h"
#include "common/parallel.h"
#include "common/string_util.h"

namespace lofkit {

namespace {

bool SameCoordinates(const Dataset& data, uint32_t a, uint32_t b) {
  auto pa = data.point(a);
  auto pb = data.point(b);
  return std::equal(pa.begin(), pa.end(), pb.begin());
}

// Number of distinct-coordinate groups in a sorted neighbor list. Points
// with identical coordinates necessarily have identical distances to the
// query, so deduplication only needs to look inside equal-distance runs.
size_t CountDistinctGroups(const Dataset& data,
                           std::span<const Neighbor> list) {
  size_t groups = 0;
  size_t run_begin = 0;
  while (run_begin < list.size()) {
    size_t run_end = run_begin + 1;
    while (run_end < list.size() &&
           list[run_end].distance == list[run_begin].distance) {
      ++run_end;
    }
    for (size_t i = run_begin; i < run_end; ++i) {
      bool is_new = true;
      for (size_t j = run_begin; j < i; ++j) {
        if (SameCoordinates(data, list[i].index, list[j].index)) {
          is_new = false;
          break;
        }
      }
      if (is_new) ++groups;
    }
    run_begin = run_end;
  }
  return groups;
}

// The full neighborhood query for one point, shared by the serial and the
// parallel materialization paths; the list is left in ctx.results(). In
// distinct mode the query grows until k_max distinct-coordinate neighbors
// are covered (or the whole dataset has been fetched).
Status QueryNeighborhood(const Dataset& data, const KnnIndex& index,
                         size_t k_max, bool distinct_neighbors, size_t i,
                         KnnSearchContext& ctx) {
  const uint32_t self = static_cast<uint32_t>(i);
  size_t query_k = k_max;
  LOFKIT_RETURN_IF_ERROR(index.Query(data.point(i), query_k, self, ctx));
  if (distinct_neighbors) {
    while (CountDistinctGroups(data, ctx.results()) < k_max &&
           ctx.results().size() < data.size() - 1) {
      query_k = std::min(query_k * 2, data.size() - 1);
      LOFKIT_RETURN_IF_ERROR(index.Query(data.point(i), query_k, self, ctx));
    }
  }
  return Status::OK();
}

// Points per QueryBatch call in non-distinct materialization. Large enough
// for the linear scan's tiled batch override to amortize its dataset
// streaming, small enough that the staged batch output stays cache-friendly.
constexpr size_t kBatchChunk = 64;

// Structural validation of one externally supplied neighbor list: indexes
// in range, distances finite and non-negative, sorted by (distance, index).
// Shared by FromLists and LoadFromFile so a corrupt or hand-built M can
// never break View()'s equal-distance-run walk later.
Status ValidateNeighborList(size_t list_index, std::span<const Neighbor> list,
                            size_t n) {
  for (size_t j = 0; j < list.size(); ++j) {
    if (list[j].index >= n) {
      return Status::InvalidArgument(
          StrFormat("list %zu holds out-of-range index %u", list_index,
                    list[j].index));
    }
    if (!std::isfinite(list[j].distance) || list[j].distance < 0.0) {
      return Status::InvalidArgument(
          StrFormat("list %zu holds a non-finite or negative distance",
                    list_index));
    }
    if (j > 0 && (list[j - 1].distance > list[j].distance ||
                  (list[j - 1].distance == list[j].distance &&
                   list[j - 1].index >= list[j].index))) {
      return Status::InvalidArgument(
          StrFormat("list %zu is not sorted by (distance, index)",
                    list_index));
    }
  }
  return Status::OK();
}

Status ValidateMaterializationArgs(const Dataset& data, size_t k_max) {
  if (k_max == 0) {
    return Status::InvalidArgument("k_max must be >= 1");
  }
  if (k_max >= data.size()) {
    return Status::InvalidArgument(
        StrFormat("k_max (%zu) must be smaller than the dataset size (%zu): "
                  "every point needs k_max neighbors besides itself",
                  k_max, data.size()));
  }
  return Status::OK();
}

// The upfront budget gate: refuses to materialize when even the optimistic
// projection of M does not fit, so callers can fall back to the re-query
// path before a single query has been paid.
// Runs `query` as one flight-recorder timed unit covering `queries` kNN
// queries starting at `first_point`. When the unit is not sampled (or no
// shard is armed) the query runs bare — no clock reads, no snapshots — so
// the stride fully amortizes the timing overhead. Requires ctx.stats when
// ctx.flight is set (the record keeps counter deltas).
template <typename QueryFn>
Status TimedUnit(KnnSearchContext& ctx, const KnnIndex& index,
                 uint32_t first_point, uint32_t queries, size_t k,
                 QueryFn&& query) {
  if (ctx.flight == nullptr || ctx.stats == nullptr ||
      !ctx.flight->ShouldSample()) {
    return query();
  }
  const QueryStats before = *ctx.stats;
  const uint64_t start_ns = QueryFlightRecorder::NowNs();
  LOFKIT_RETURN_IF_ERROR(query());
  const uint64_t end_ns = QueryFlightRecorder::NowNs();
  ctx.flight->Record(QueryFlightRecorder::Site::kMaterialize, index.name(),
                     first_point, queries, static_cast<uint32_t>(k),
                     end_ns - start_ns, before, *ctx.stats);
  return Status::OK();
}

Status CheckMemoryBudget(size_t n, size_t k_max, size_t budget_bytes) {
  if (budget_bytes == 0) return Status::OK();
  const size_t projected =
      NeighborhoodMaterializer::ProjectedBytes(n, k_max);
  if (projected > budget_bytes) {
    return Status::ResourceExhausted(
        StrFormat("materialization of %zu points at k_max=%zu needs >= %zu "
                  "bytes, budget is %zu",
                  n, k_max, projected, budget_bytes));
  }
  return Status::OK();
}

}  // namespace

Result<NeighborhoodMaterializer> NeighborhoodMaterializer::Materialize(
    const Dataset& data, const KnnIndex& index, size_t k_max,
    bool distinct_neighbors, const PipelineObserver& observer,
    const StopToken& stop, size_t memory_budget_bytes) {
  LOFKIT_RETURN_IF_ERROR(ValidateMaterializationArgs(data, k_max));
  LOFKIT_RETURN_IF_ERROR(
      CheckMemoryBudget(data.size(), k_max, memory_budget_bytes));
  NeighborhoodMaterializer m(k_max, distinct_neighbors);
  m.data_ = &data;
  const size_t n = data.size();
  m.offsets_.reserve(n + 1);
  m.offsets_.push_back(0);
  m.flat_.reserve(n * k_max);
  TraceRecorder::Span span(observer.trace, "materialize", /*tid=*/0);
  // One context for the whole pass: every query after the first few runs
  // out of warmed scratch pools instead of fresh heap allocations. The
  // serial pass is its own single worker, so the observer's stats can be
  // bumped directly.
  KnnSearchContext ctx;
  ctx.stats = observer.query_stats;
  // Flight sampling needs counters for the per-record deltas, so an armed
  // recorder gets a local QueryStats even when the caller asked for no
  // totals.
  QueryStats local_stats;
  if (observer.flight != nullptr) {
    observer.flight->PrepareShards(1);
    ctx.flight = observer.flight->shard(0);
    if (ctx.stats == nullptr) ctx.stats = &local_stats;
  }
  if (!distinct_neighbors) {
    // The plain self-query pass goes through QueryBatch so engines with a
    // real batch override (the linear scan's query tiling) get to amortize
    // their data streaming across a whole chunk.
    std::vector<uint32_t> ids;
    for (size_t begin = 0; begin < n; begin += kBatchChunk) {
      if (stop.stop_possible()) {
        LOFKIT_RETURN_IF_ERROR(stop.CheckDeadline());
      }
      LOFKIT_FAIL_POINT("materializer.query");
      const size_t end = std::min(begin + kBatchChunk, n);
      ids.resize(end - begin);
      for (size_t j = 0; j < ids.size(); ++j) {
        ids[j] = static_cast<uint32_t>(begin + j);
      }
      LOFKIT_RETURN_IF_ERROR(TimedUnit(
          ctx, index, ids.front(), static_cast<uint32_t>(ids.size()), k_max,
          [&] { return index.QueryBatch(ids, k_max, ctx); }));
      for (size_t j = 0; j < ids.size(); ++j) {
        const auto list = ctx.batch_results(j);
        m.flat_.insert(m.flat_.end(), list.begin(), list.end());
        m.offsets_.push_back(m.flat_.size());
      }
      if (observer.progress != nullptr) observer.progress->Add(end - begin);
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (stop.stop_possible()) {
        LOFKIT_RETURN_IF_ERROR(i % kStopCheckStride == 0 ? stop.CheckDeadline()
                                                         : stop.status());
      }
      LOFKIT_FAIL_POINT("materializer.query");
      LOFKIT_RETURN_IF_ERROR(TimedUnit(
          ctx, index, static_cast<uint32_t>(i), 1, k_max, [&] {
            return QueryNeighborhood(data, index, k_max, distinct_neighbors,
                                     i, ctx);
          }));
      const auto list = ctx.results();
      m.flat_.insert(m.flat_.end(), list.begin(), list.end());
      m.offsets_.push_back(m.flat_.size());
      if (observer.progress != nullptr) observer.progress->Add(1);
    }
  }
  return m;
}

Result<NeighborhoodMaterializer> NeighborhoodMaterializer::MaterializeParallel(
    const Dataset& data, const KnnIndex& index, size_t k_max, size_t threads,
    bool distinct_neighbors, const PipelineObserver& observer,
    const StopToken& stop, size_t memory_budget_bytes) {
  if (ResolveThreadCount(threads) <= 1) {
    return Materialize(data, index, k_max, distinct_neighbors, observer, stop,
                       memory_budget_bytes);
  }
  LOFKIT_RETURN_IF_ERROR(ValidateMaterializationArgs(data, k_max));
  LOFKIT_RETURN_IF_ERROR(
      CheckMemoryBudget(data.size(), k_max, memory_budget_bytes));
  const size_t n = data.size();
  std::vector<std::vector<Neighbor>> lists(n);
  // Workers shard whole chunks so each QueryBatch call stays within one
  // worker; every worker owns one long-lived context (and id buffer),
  // reused across its chunks — contexts are not thread-safe, worker ids
  // make the assignment race-free. ParallelForWorker aborts the other
  // workers at their next chunk once any query fails, instead of letting
  // them run their chunks to completion.
  const size_t num_chunks = (n + kBatchChunk - 1) / kBatchChunk;
  const size_t num_workers =
      std::min(ResolveThreadCount(threads), num_chunks);
  std::vector<KnnSearchContext> ctxs(num_workers);
  std::vector<std::vector<uint32_t>> ids(num_workers);
  // Per-worker counter shards, summed after the join: totals come out the
  // same at every thread count, and the hot path never shares a cache line.
  std::vector<QueryStats> worker_stats(num_workers);
  if (observer.query_stats != nullptr || observer.flight != nullptr) {
    for (size_t w = 0; w < num_workers; ++w) {
      ctxs[w].stats = &worker_stats[w];
    }
  }
  if (observer.flight != nullptr) {
    observer.flight->PrepareShards(num_workers);
    for (size_t w = 0; w < num_workers; ++w) {
      ctxs[w].flight = observer.flight->shard(w);
    }
  }
  TraceRecorder::Span span(observer.trace, "materialize", /*tid=*/0);
  LOFKIT_RETURN_IF_ERROR(ParallelForWorker(
      num_chunks, threads, stop, [&](size_t worker, size_t c) -> Status {
        LOFKIT_FAIL_POINT("materializer.query");
        const size_t begin = c * kBatchChunk;
        const size_t end = std::min(begin + kBatchChunk, n);
        KnnSearchContext& ctx = ctxs[worker];
        TraceRecorder::Span chunk_span(observer.trace, "materialize.chunk",
                                       static_cast<uint32_t>(worker + 1));
        if (!distinct_neighbors) {
          std::vector<uint32_t>& chunk_ids = ids[worker];
          chunk_ids.resize(end - begin);
          for (size_t j = 0; j < chunk_ids.size(); ++j) {
            chunk_ids[j] = static_cast<uint32_t>(begin + j);
          }
          LOFKIT_RETURN_IF_ERROR(TimedUnit(
              ctx, index, chunk_ids.front(),
              static_cast<uint32_t>(chunk_ids.size()), k_max,
              [&] { return index.QueryBatch(chunk_ids, k_max, ctx); }));
          for (size_t j = 0; j < chunk_ids.size(); ++j) {
            const auto list = ctx.batch_results(j);
            lists[begin + j].assign(list.begin(), list.end());
          }
        } else {
          for (size_t i = begin; i < end; ++i) {
            LOFKIT_RETURN_IF_ERROR(TimedUnit(
                ctx, index, static_cast<uint32_t>(i), 1, k_max, [&] {
                  return QueryNeighborhood(data, index, k_max,
                                           distinct_neighbors, i, ctx);
                }));
            const auto list = ctx.results();
            lists[i].assign(list.begin(), list.end());
          }
        }
        if (observer.progress != nullptr) observer.progress->Add(end - begin);
        return Status::OK();
      }));
  span.End();
  if (observer.query_stats != nullptr) {
    for (const QueryStats& shard : worker_stats) {
      observer.query_stats->Add(shard);
    }
  }

  NeighborhoodMaterializer m(k_max, distinct_neighbors);
  m.data_ = &data;
  m.offsets_.reserve(n + 1);
  m.offsets_.push_back(0);
  m.flat_.reserve(n * k_max);
  for (const auto& list : lists) {
    m.flat_.insert(m.flat_.end(), list.begin(), list.end());
    m.offsets_.push_back(m.flat_.size());
  }
  return m;
}

Result<NeighborhoodMaterializer::KView> NeighborhoodMaterializer::View(
    size_t i, size_t k) const {
  if (i >= size()) {
    return Status::NotFound(StrFormat("point index %zu out of range", i));
  }
  if (k == 0 || k > k_max_) {
    return Status::OutOfRange(
        StrFormat("k (%zu) must be in [1, k_max=%zu]", k, k_max_));
  }
  const std::span<const Neighbor> list = neighbors(i);
  if (!distinct_) {
    if (k > list.size()) {
      return Status::OutOfRange(
          StrFormat("point %zu has only %zu materialized neighbors, need %zu",
                    i, list.size(), k));
    }
    const double k_distance = list[k - 1].distance;
    size_t end = k;
    while (end < list.size() && list[end].distance <= k_distance) ++end;
    return KView{k_distance, list.subspan(0, end)};
  }

  // Distinct mode: walk equal-distance runs, counting coordinate groups;
  // the k-distinct-distance is the distance of the run in which the k-th
  // group appears, and the neighborhood is everything through that run.
  size_t groups = 0;
  size_t run_begin = 0;
  while (run_begin < list.size()) {
    size_t run_end = run_begin + 1;
    while (run_end < list.size() &&
           list[run_end].distance == list[run_begin].distance) {
      ++run_end;
    }
    for (size_t a = run_begin; a < run_end; ++a) {
      bool is_new = true;
      for (size_t b = run_begin; b < a; ++b) {
        if (SameCoordinates(*data_, list[a].index, list[b].index)) {
          is_new = false;
          break;
        }
      }
      if (is_new) ++groups;
    }
    if (groups >= k) {
      return KView{list[run_begin].distance, list.subspan(0, run_end)};
    }
    run_begin = run_end;
  }
  return Status::OutOfRange(
      StrFormat("point %zu has only %zu distinct neighbors, need %zu", i,
                groups, k));
}

Result<NeighborhoodMaterializer> NeighborhoodMaterializer::FromLists(
    size_t k_max, bool distinct_neighbors, const Dataset* data,
    const std::vector<std::vector<Neighbor>>& lists) {
  if (k_max == 0) {
    return Status::InvalidArgument("k_max must be >= 1");
  }
  if (lists.empty()) {
    return Status::InvalidArgument("no neighbor lists given");
  }
  if (distinct_neighbors && data == nullptr) {
    return Status::InvalidArgument(
        "distinct-neighbors mode needs the dataset");
  }
  NeighborhoodMaterializer m(k_max, distinct_neighbors);
  m.data_ = data;
  m.offsets_.reserve(lists.size() + 1);
  m.offsets_.push_back(0);
  for (size_t i = 0; i < lists.size(); ++i) {
    const auto& list = lists[i];
    if (!distinct_neighbors && list.size() < k_max &&
        list.size() + 1 < lists.size()) {
      return Status::InvalidArgument(
          StrFormat("list %zu has %zu entries, expected >= k_max=%zu", i,
                    list.size(), k_max));
    }
    LOFKIT_RETURN_IF_ERROR(
        ValidateNeighborList(i, {list.data(), list.size()}, lists.size()));
    m.flat_.insert(m.flat_.end(), list.begin(), list.end());
    m.offsets_.push_back(m.flat_.size());
  }
  return m;
}

namespace {

// File layout (native little-endian):
//   magic "LOFM" (4 bytes) | version u32 | k_max u64 | distinct u8 |
//   n u64 | offsets (n+1) u64 | entries { index u32, distance f64 } ...
constexpr char kMagic[4] = {'L', 'O', 'F', 'M'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Status NeighborhoodMaterializer::SaveToFile(const std::string& path) const {
  LOFKIT_FAIL_POINT("materialization.save");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open file for writing: " + path);
  }
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  WritePod(out, static_cast<uint64_t>(k_max_));
  WritePod(out, static_cast<uint8_t>(distinct_ ? 1 : 0));
  WritePod(out, static_cast<uint64_t>(size()));
  for (size_t offset : offsets_) {
    WritePod(out, static_cast<uint64_t>(offset));
  }
  for (const Neighbor& n : flat_) {
    WritePod(out, n.index);
    WritePod(out, n.distance);
  }
  if (!out) {
    return Status::IoError("write failure on file: " + path);
  }
  return Status::OK();
}

Result<NeighborhoodMaterializer> NeighborhoodMaterializer::LoadFromFile(
    const std::string& path, const Dataset* data) {
  LOFKIT_FAIL_POINT("materialization.load");
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open file: " + path);
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a lofkit materialization file: " +
                                   path);
  }
  uint32_t version = 0;
  uint64_t k_max = 0;
  uint8_t distinct = 0;
  uint64_t n = 0;
  if (!ReadPod(in, version) || version != kVersion) {
    return Status::InvalidArgument("unsupported materialization version");
  }
  if (!ReadPod(in, k_max) || !ReadPod(in, distinct) || !ReadPod(in, n)) {
    return Status::IoError("truncated materialization header");
  }
  if (k_max == 0 || n == 0) {
    return Status::InvalidArgument("corrupt materialization header");
  }
  if (distinct && data == nullptr) {
    return Status::InvalidArgument(
        "distinct-neighbors materialization needs the original dataset");
  }
  if (data != nullptr && data->size() != n) {
    return Status::InvalidArgument(
        StrFormat("materialization has %llu points, dataset has %zu",
                  static_cast<unsigned long long>(n), data->size()));
  }
  NeighborhoodMaterializer m(static_cast<size_t>(k_max), distinct != 0);
  m.data_ = data;
  m.offsets_.resize(n + 1);
  for (auto& offset : m.offsets_) {
    uint64_t value = 0;
    if (!ReadPod(in, value)) {
      return Status::IoError("truncated materialization offsets");
    }
    offset = static_cast<size_t>(value);
  }
  if (m.offsets_.front() != 0) {
    return Status::InvalidArgument("corrupt materialization offsets");
  }
  for (size_t i = 1; i < m.offsets_.size(); ++i) {
    if (m.offsets_[i] < m.offsets_[i - 1]) {
      return Status::InvalidArgument("corrupt materialization offsets");
    }
  }
  m.flat_.resize(m.offsets_.back());
  for (Neighbor& neighbor : m.flat_) {
    if (!ReadPod(in, neighbor.index) || !ReadPod(in, neighbor.distance)) {
      return Status::IoError("truncated materialization entries");
    }
  }
  // A file that decodes cleanly can still be semantically corrupt (bit rot,
  // truncated-then-padded writes, foreign tools): enforce the same
  // structural invariants FromLists demands, since View()'s
  // equal-distance-run walk silently misbehaves on unsorted or non-finite
  // neighbor lists.
  for (size_t i = 0; i + 1 < m.offsets_.size(); ++i) {
    LOFKIT_RETURN_IF_ERROR(ValidateNeighborList(i, m.neighbors(i), n));
  }
  return m;
}

}  // namespace lofkit
