#include "index/neighborhood_materializer.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>

#include "common/fail_point.h"
#include "common/parallel.h"
#include "common/string_util.h"

namespace lofkit {

namespace {

bool SameCoordinates(const Dataset& data, uint32_t a, uint32_t b) {
  auto pa = data.point(a);
  auto pb = data.point(b);
  return std::equal(pa.begin(), pa.end(), pb.begin());
}

// Number of distinct-coordinate groups in a sorted neighbor list. Points
// with identical coordinates necessarily have identical distances to the
// query, so deduplication only needs to look inside equal-distance runs.
size_t CountDistinctGroups(const Dataset& data,
                           std::span<const Neighbor> list) {
  size_t groups = 0;
  size_t run_begin = 0;
  while (run_begin < list.size()) {
    size_t run_end = run_begin + 1;
    while (run_end < list.size() &&
           list[run_end].distance == list[run_begin].distance) {
      ++run_end;
    }
    for (size_t i = run_begin; i < run_end; ++i) {
      bool is_new = true;
      for (size_t j = run_begin; j < i; ++j) {
        if (SameCoordinates(data, list[i].index, list[j].index)) {
          is_new = false;
          break;
        }
      }
      if (is_new) ++groups;
    }
    run_begin = run_end;
  }
  return groups;
}

// The full neighborhood query for one point, shared by the serial and the
// parallel materialization paths; the list is left in ctx.results(). In
// distinct mode the query grows until k_max distinct-coordinate neighbors
// are covered (or the whole dataset has been fetched).
Status QueryNeighborhood(const Dataset& data, const KnnIndex& index,
                         size_t k_max, bool distinct_neighbors, size_t i,
                         KnnSearchContext& ctx) {
  const uint32_t self = static_cast<uint32_t>(i);
  size_t query_k = k_max;
  LOFKIT_RETURN_IF_ERROR(index.Query(data.point(i), query_k, self, ctx));
  if (distinct_neighbors) {
    while (CountDistinctGroups(data, ctx.results()) < k_max &&
           ctx.results().size() < data.size() - 1) {
      query_k = std::min(query_k * 2, data.size() - 1);
      LOFKIT_RETURN_IF_ERROR(index.Query(data.point(i), query_k, self, ctx));
    }
  }
  return Status::OK();
}

// Points per QueryBatch call in non-distinct materialization. Large enough
// for the linear scan's tiled batch override to amortize its dataset
// streaming, small enough that the staged batch output stays cache-friendly.
constexpr size_t kBatchChunk = 64;

// Structural validation of one externally supplied neighbor list: indexes
// in range, distances finite and non-negative, sorted by (distance, index).
// Shared by FromLists and LoadFromFile so a corrupt or hand-built M can
// never break View()'s equal-distance-run walk later.
Status ValidateNeighborList(size_t list_index, std::span<const Neighbor> list,
                            size_t n) {
  for (size_t j = 0; j < list.size(); ++j) {
    if (list[j].index >= n) {
      return Status::InvalidArgument(
          StrFormat("list %zu holds out-of-range index %u", list_index,
                    list[j].index));
    }
    if (!std::isfinite(list[j].distance) || list[j].distance < 0.0) {
      return Status::InvalidArgument(
          StrFormat("list %zu holds a non-finite or negative distance",
                    list_index));
    }
    if (j > 0 && (list[j - 1].distance > list[j].distance ||
                  (list[j - 1].distance == list[j].distance &&
                   list[j - 1].index >= list[j].index))) {
      return Status::InvalidArgument(
          StrFormat("list %zu is not sorted by (distance, index)",
                    list_index));
    }
  }
  return Status::OK();
}

Status ValidateMaterializationArgs(const Dataset& data, size_t k_max) {
  if (k_max == 0) {
    return Status::InvalidArgument("k_max must be >= 1");
  }
  if (k_max >= data.size()) {
    return Status::InvalidArgument(
        StrFormat("k_max (%zu) must be smaller than the dataset size (%zu): "
                  "every point needs k_max neighbors besides itself",
                  k_max, data.size()));
  }
  return Status::OK();
}

// The upfront budget gate: refuses to materialize when even the optimistic
// projection of M does not fit, so callers can fall back to the re-query
// path before a single query has been paid.
// Runs `query` as one flight-recorder timed unit covering `queries` kNN
// queries starting at `first_point`. When the unit is not sampled (or no
// shard is armed) the query runs bare — no clock reads, no snapshots — so
// the stride fully amortizes the timing overhead. Requires ctx.stats when
// ctx.flight is set (the record keeps counter deltas).
template <typename QueryFn>
Status TimedUnit(KnnSearchContext& ctx, const KnnIndex& index,
                 uint32_t first_point, uint32_t queries, size_t k,
                 QueryFn&& query) {
  if (ctx.flight == nullptr || ctx.stats == nullptr ||
      !ctx.flight->ShouldSample()) {
    return query();
  }
  const QueryStats before = *ctx.stats;
  const uint64_t start_ns = QueryFlightRecorder::NowNs();
  LOFKIT_RETURN_IF_ERROR(query());
  const uint64_t end_ns = QueryFlightRecorder::NowNs();
  ctx.flight->Record(QueryFlightRecorder::Site::kMaterialize, index.name(),
                     first_point, queries, static_cast<uint32_t>(k),
                     end_ns - start_ns, before, *ctx.stats);
  return Status::OK();
}

Status CheckMemoryBudget(size_t n, size_t k_max, size_t budget_bytes) {
  if (budget_bytes == 0) return Status::OK();
  const size_t projected =
      NeighborhoodMaterializer::ProjectedBytes(n, k_max);
  if (projected > budget_bytes) {
    return Status::ResourceExhausted(
        StrFormat("materialization of %zu points at k_max=%zu needs >= %zu "
                  "bytes, budget is %zu",
                  n, k_max, projected, budget_bytes));
  }
  return Status::OK();
}

// The parallel query engine shared by MaterializeParallel (one window
// covering every point) and the streaming spill build (bounded windows):
// fills lists[i - begin_point] for points [begin_point, end_point), sharded
// over workers with ParallelFor's deterministic chunking. Chunk boundaries
// are relative to the window start, so windows that are multiples of
// kBatchChunk produce the exact chunking of the whole-range pass; the
// per-point lists are deterministic either way, which is what the
// bit-identity guarantee rests on. Workers shard whole chunks so each
// QueryBatch call stays within one worker; every worker owns one
// long-lived context (and id buffer), reused across its chunks — contexts
// are not thread-safe, worker ids make the assignment race-free.
// ParallelForWorker aborts the other workers at their next chunk once any
// query fails, instead of letting them run their chunks to completion.
// Per-worker counter shards are summed into the observer after the join,
// so totals come out the same at every thread count.
Status QueryListsWindow(const Dataset& data, const KnnIndex& index,
                        size_t k_max, size_t threads, bool distinct_neighbors,
                        const PipelineObserver& observer,
                        const StopToken& stop, size_t begin_point,
                        size_t end_point,
                        std::vector<std::vector<Neighbor>>& lists) {
  const size_t count = end_point - begin_point;
  const size_t num_chunks = (count + kBatchChunk - 1) / kBatchChunk;
  const size_t num_workers =
      std::min(std::max<size_t>(ResolveThreadCount(threads), 1), num_chunks);
  std::vector<KnnSearchContext> ctxs(num_workers);
  std::vector<std::vector<uint32_t>> ids(num_workers);
  std::vector<QueryStats> worker_stats(num_workers);
  if (observer.query_stats != nullptr || observer.flight != nullptr) {
    for (size_t w = 0; w < num_workers; ++w) {
      ctxs[w].stats = &worker_stats[w];
    }
  }
  if (observer.flight != nullptr) {
    observer.flight->PrepareShards(num_workers);
    for (size_t w = 0; w < num_workers; ++w) {
      ctxs[w].flight = observer.flight->shard(w);
    }
  }
  LOFKIT_RETURN_IF_ERROR(ParallelForWorker(
      num_chunks, threads, stop, [&](size_t worker, size_t c) -> Status {
        LOFKIT_FAIL_POINT("materializer.query");
        const size_t begin = begin_point + c * kBatchChunk;
        const size_t end = std::min(begin + kBatchChunk, end_point);
        KnnSearchContext& ctx = ctxs[worker];
        TraceRecorder::Span chunk_span(observer.trace, "materialize.chunk",
                                       static_cast<uint32_t>(worker + 1));
        if (!distinct_neighbors) {
          std::vector<uint32_t>& chunk_ids = ids[worker];
          chunk_ids.resize(end - begin);
          for (size_t j = 0; j < chunk_ids.size(); ++j) {
            chunk_ids[j] = static_cast<uint32_t>(begin + j);
          }
          LOFKIT_RETURN_IF_ERROR(TimedUnit(
              ctx, index, chunk_ids.front(),
              static_cast<uint32_t>(chunk_ids.size()), k_max,
              [&] { return index.QueryBatch(chunk_ids, k_max, ctx); }));
          for (size_t j = 0; j < chunk_ids.size(); ++j) {
            const auto list = ctx.batch_results(j);
            lists[begin - begin_point + j].assign(list.begin(), list.end());
          }
        } else {
          for (size_t i = begin; i < end; ++i) {
            LOFKIT_RETURN_IF_ERROR(TimedUnit(
                ctx, index, static_cast<uint32_t>(i), 1, k_max, [&] {
                  return QueryNeighborhood(data, index, k_max,
                                           distinct_neighbors, i, ctx);
                }));
            const auto list = ctx.results();
            lists[i - begin_point].assign(list.begin(), list.end());
          }
        }
        if (observer.progress != nullptr) observer.progress->Add(end - begin);
        return Status::OK();
      }));
  if (observer.query_stats != nullptr) {
    for (const QueryStats& shard : worker_stats) {
      observer.query_stats->Add(shard);
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Container serialization (the v2 persistence format).
//
// Sections of a materialization container:
//   "meta"      32 bytes: k_max u64 | n u64 | entry_count u64 |
//               distinct u8 | 7 reserved bytes (zero)
//   "offsets"   (n+1) x u64, offsets_[...] verbatim
//   "neighbors" entry_count x 16-byte records laid out exactly like the
//               in-memory Neighbor {u32 index, 4 zero bytes, f64 distance},
//               so a mapped section serves as std::span<const Neighbor>
//               zero-copy. The padding bytes are zeroed deterministically
//               on write (the in-RAM structs carry garbage there), which
//               keeps the section CRC reproducible.
// ---------------------------------------------------------------------------

constexpr uint32_t kMaterializationFileType = 1;
constexpr uint32_t kMaterializationFileVersion = 2;
constexpr size_t kMaterializationMetaSize = 32;

// The zero-copy contract: the on-disk record and the in-memory struct must
// agree byte for byte, and mapped u64 offsets must be servable as size_t.
static_assert(sizeof(Neighbor) == 16, "on-disk record mirrors Neighbor");
static_assert(offsetof(Neighbor, index) == 0, "index lives at byte 0");
static_assert(offsetof(Neighbor, distance) == 8, "distance lives at byte 8");
static_assert(sizeof(size_t) == sizeof(uint64_t),
              "offsets are served zero-copy as size_t");

void SerializeMaterializationMeta(
    unsigned char (&buf)[kMaterializationMetaSize], size_t k_max, size_t n,
    size_t entry_count, bool distinct) {
  std::memset(buf, 0, kMaterializationMetaSize);
  const uint64_t k_max64 = k_max;
  const uint64_t n64 = n;
  const uint64_t entries64 = entry_count;
  std::memcpy(buf, &k_max64, 8);
  std::memcpy(buf + 8, &n64, 8);
  std::memcpy(buf + 16, &entries64, 8);
  buf[24] = distinct ? 1 : 0;
}

uint64_t ReadU64At(const std::byte* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

// Streams one neighbor list into the writer's open "neighbors" section
// through a reusable chunk buffer whose padding bytes are zeroed once.
Status AppendNeighborEntries(ContainerWriter& writer,
                             std::span<const Neighbor> list,
                             std::vector<unsigned char>& buf) {
  constexpr size_t kEntriesPerChunk = 2048;
  if (buf.size() < kEntriesPerChunk * sizeof(Neighbor)) {
    buf.assign(kEntriesPerChunk * sizeof(Neighbor), 0);
  }
  size_t done = 0;
  while (done < list.size()) {
    const size_t count = std::min(kEntriesPerChunk, list.size() - done);
    for (size_t j = 0; j < count; ++j) {
      const Neighbor& nb = list[done + j];
      std::memcpy(buf.data() + j * 16, &nb.index, 4);
      std::memcpy(buf.data() + j * 16 + 8, &nb.distance, 8);
    }
    LOFKIT_RETURN_IF_ERROR(writer.Append(buf.data(), count * 16));
    done += count;
  }
  return Status::OK();
}

}  // namespace

Result<NeighborhoodMaterializer> NeighborhoodMaterializer::Materialize(
    const Dataset& data, const KnnIndex& index, size_t k_max,
    bool distinct_neighbors, const PipelineObserver& observer,
    const StopToken& stop, size_t memory_budget_bytes) {
  LOFKIT_RETURN_IF_ERROR(ValidateMaterializationArgs(data, k_max));
  LOFKIT_RETURN_IF_ERROR(
      CheckMemoryBudget(data.size(), k_max, memory_budget_bytes));
  NeighborhoodMaterializer m(k_max, distinct_neighbors);
  m.data_ = &data;
  const size_t n = data.size();
  m.offsets_.reserve(n + 1);
  m.offsets_.push_back(0);
  m.flat_.reserve(n * k_max);
  TraceRecorder::Span span(observer.trace, "materialize", /*tid=*/0);
  // One context for the whole pass: every query after the first few runs
  // out of warmed scratch pools instead of fresh heap allocations. The
  // serial pass is its own single worker, so the observer's stats can be
  // bumped directly.
  KnnSearchContext ctx;
  ctx.stats = observer.query_stats;
  // Flight sampling needs counters for the per-record deltas, so an armed
  // recorder gets a local QueryStats even when the caller asked for no
  // totals.
  QueryStats local_stats;
  if (observer.flight != nullptr) {
    observer.flight->PrepareShards(1);
    ctx.flight = observer.flight->shard(0);
    if (ctx.stats == nullptr) ctx.stats = &local_stats;
  }
  if (!distinct_neighbors) {
    // The plain self-query pass goes through QueryBatch so engines with a
    // real batch override (the linear scan's query tiling) get to amortize
    // their data streaming across a whole chunk.
    std::vector<uint32_t> ids;
    for (size_t begin = 0; begin < n; begin += kBatchChunk) {
      if (stop.stop_possible()) {
        LOFKIT_RETURN_IF_ERROR(stop.CheckDeadline());
      }
      LOFKIT_FAIL_POINT("materializer.query");
      const size_t end = std::min(begin + kBatchChunk, n);
      ids.resize(end - begin);
      for (size_t j = 0; j < ids.size(); ++j) {
        ids[j] = static_cast<uint32_t>(begin + j);
      }
      LOFKIT_RETURN_IF_ERROR(TimedUnit(
          ctx, index, ids.front(), static_cast<uint32_t>(ids.size()), k_max,
          [&] { return index.QueryBatch(ids, k_max, ctx); }));
      for (size_t j = 0; j < ids.size(); ++j) {
        const auto list = ctx.batch_results(j);
        m.flat_.insert(m.flat_.end(), list.begin(), list.end());
        m.offsets_.push_back(m.flat_.size());
      }
      if (observer.progress != nullptr) observer.progress->Add(end - begin);
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (stop.stop_possible()) {
        LOFKIT_RETURN_IF_ERROR(i % kStopCheckStride == 0 ? stop.CheckDeadline()
                                                         : stop.status());
      }
      LOFKIT_FAIL_POINT("materializer.query");
      LOFKIT_RETURN_IF_ERROR(TimedUnit(
          ctx, index, static_cast<uint32_t>(i), 1, k_max, [&] {
            return QueryNeighborhood(data, index, k_max, distinct_neighbors,
                                     i, ctx);
          }));
      const auto list = ctx.results();
      m.flat_.insert(m.flat_.end(), list.begin(), list.end());
      m.offsets_.push_back(m.flat_.size());
      if (observer.progress != nullptr) observer.progress->Add(1);
    }
  }
  m.BindToVectors();
  return m;
}

Result<NeighborhoodMaterializer> NeighborhoodMaterializer::MaterializeParallel(
    const Dataset& data, const KnnIndex& index, size_t k_max, size_t threads,
    bool distinct_neighbors, const PipelineObserver& observer,
    const StopToken& stop, size_t memory_budget_bytes) {
  if (ResolveThreadCount(threads) <= 1) {
    return Materialize(data, index, k_max, distinct_neighbors, observer, stop,
                       memory_budget_bytes);
  }
  LOFKIT_RETURN_IF_ERROR(ValidateMaterializationArgs(data, k_max));
  LOFKIT_RETURN_IF_ERROR(
      CheckMemoryBudget(data.size(), k_max, memory_budget_bytes));
  const size_t n = data.size();
  std::vector<std::vector<Neighbor>> lists(n);
  TraceRecorder::Span span(observer.trace, "materialize", /*tid=*/0);
  LOFKIT_RETURN_IF_ERROR(QueryListsWindow(data, index, k_max, threads,
                                          distinct_neighbors, observer, stop,
                                          0, n, lists));
  span.End();

  NeighborhoodMaterializer m(k_max, distinct_neighbors);
  m.data_ = &data;
  m.offsets_.reserve(n + 1);
  m.offsets_.push_back(0);
  m.flat_.reserve(n * k_max);
  for (const auto& list : lists) {
    m.flat_.insert(m.flat_.end(), list.begin(), list.end());
    m.offsets_.push_back(m.flat_.size());
  }
  m.BindToVectors();
  return m;
}

Status NeighborhoodMaterializer::MaterializeToFile(
    const Dataset& data, const KnnIndex& index, size_t k_max, size_t threads,
    bool distinct_neighbors, const std::string& path,
    const PipelineObserver& observer, const StopToken& stop) {
  LOFKIT_FAIL_POINT("materialization.spill");
  LOFKIT_RETURN_IF_ERROR(ValidateMaterializationArgs(data, k_max));
  const size_t n = data.size();
  auto writer_or = ContainerWriter::Create(path, kMaterializationFileType,
                                           kMaterializationFileVersion);
  if (!writer_or.ok()) return writer_or.status();
  ContainerWriter writer = std::move(writer_or).value();

  TraceRecorder::Span span(observer.trace, "materialize.spill", /*tid=*/0);
  LOFKIT_RETURN_IF_ERROR(writer.BeginSection("neighbors"));
  // Peak residency: one window of neighbor lists plus this offsets table
  // (8 bytes per point) — never the n * k_max flat array the in-RAM route
  // holds. The window is a multiple of kBatchChunk so the chunking (and
  // therefore the produced M) matches MaterializeParallel bit for bit.
  std::vector<size_t> offsets;
  offsets.reserve(n + 1);
  offsets.push_back(0);
  std::vector<std::vector<Neighbor>> lists;
  std::vector<unsigned char> entry_buf;
  size_t entry_count = 0;
  constexpr size_t kSpillWindow = 64 * kBatchChunk;
  for (size_t begin = 0; begin < n; begin += kSpillWindow) {
    const size_t end = std::min(begin + kSpillWindow, n);
    lists.resize(end - begin);
    LOFKIT_RETURN_IF_ERROR(QueryListsWindow(data, index, k_max, threads,
                                            distinct_neighbors, observer,
                                            stop, begin, end, lists));
    for (const auto& list : lists) {
      LOFKIT_RETURN_IF_ERROR(
          AppendNeighborEntries(writer, {list.data(), list.size()},
                                entry_buf));
      entry_count += list.size();
      offsets.push_back(entry_count);
    }
  }
  LOFKIT_RETURN_IF_ERROR(writer.EndSection());
  LOFKIT_RETURN_IF_ERROR(writer.AddSection(
      "offsets", offsets.data(), offsets.size() * sizeof(size_t)));
  unsigned char meta[kMaterializationMetaSize];
  SerializeMaterializationMeta(meta, k_max, n, entry_count,
                               distinct_neighbors);
  LOFKIT_RETURN_IF_ERROR(
      writer.AddSection("meta", meta, kMaterializationMetaSize));
  return writer.Finish();
}

Result<NeighborhoodMaterializer::KView> NeighborhoodMaterializer::View(
    size_t i, size_t k) const {
  if (i >= size()) {
    return Status::NotFound(StrFormat("point index %zu out of range", i));
  }
  if (k == 0 || k > k_max_) {
    return Status::OutOfRange(
        StrFormat("k (%zu) must be in [1, k_max=%zu]", k, k_max_));
  }
  const std::span<const Neighbor> list = neighbors(i);
  if (!distinct_) {
    if (k > list.size()) {
      return Status::OutOfRange(
          StrFormat("point %zu has only %zu materialized neighbors, need %zu",
                    i, list.size(), k));
    }
    const double k_distance = list[k - 1].distance;
    size_t end = k;
    while (end < list.size() && list[end].distance <= k_distance) ++end;
    return KView{k_distance, list.subspan(0, end)};
  }

  // Distinct mode: walk equal-distance runs, counting coordinate groups;
  // the k-distinct-distance is the distance of the run in which the k-th
  // group appears, and the neighborhood is everything through that run.
  size_t groups = 0;
  size_t run_begin = 0;
  while (run_begin < list.size()) {
    size_t run_end = run_begin + 1;
    while (run_end < list.size() &&
           list[run_end].distance == list[run_begin].distance) {
      ++run_end;
    }
    for (size_t a = run_begin; a < run_end; ++a) {
      bool is_new = true;
      for (size_t b = run_begin; b < a; ++b) {
        if (SameCoordinates(*data_, list[a].index, list[b].index)) {
          is_new = false;
          break;
        }
      }
      if (is_new) ++groups;
    }
    if (groups >= k) {
      return KView{list[run_begin].distance, list.subspan(0, run_end)};
    }
    run_begin = run_end;
  }
  return Status::OutOfRange(
      StrFormat("point %zu has only %zu distinct neighbors, need %zu", i,
                groups, k));
}

Result<NeighborhoodMaterializer> NeighborhoodMaterializer::FromLists(
    size_t k_max, bool distinct_neighbors, const Dataset* data,
    const std::vector<std::vector<Neighbor>>& lists) {
  if (k_max == 0) {
    return Status::InvalidArgument("k_max must be >= 1");
  }
  if (lists.empty()) {
    return Status::InvalidArgument("no neighbor lists given");
  }
  if (distinct_neighbors && data == nullptr) {
    return Status::InvalidArgument(
        "distinct-neighbors mode needs the dataset");
  }
  NeighborhoodMaterializer m(k_max, distinct_neighbors);
  m.data_ = data;
  m.offsets_.reserve(lists.size() + 1);
  m.offsets_.push_back(0);
  for (size_t i = 0; i < lists.size(); ++i) {
    const auto& list = lists[i];
    if (!distinct_neighbors && list.size() < k_max &&
        list.size() + 1 < lists.size()) {
      return Status::InvalidArgument(
          StrFormat("list %zu has %zu entries, expected >= k_max=%zu", i,
                    list.size(), k_max));
    }
    LOFKIT_RETURN_IF_ERROR(
        ValidateNeighborList(i, {list.data(), list.size()}, lists.size()));
    m.flat_.insert(m.flat_.end(), list.begin(), list.end());
    m.offsets_.push_back(m.flat_.size());
  }
  m.BindToVectors();
  return m;
}

namespace {

// Legacy v1 file layout (native little-endian), read-only since the
// container format replaced it as the write format:
//   magic "LOFM" (4 bytes) | version u32 | k_max u64 | distinct u8 |
//   n u64 | offsets (n+1) u64 | entries { index u32, distance f64 } ...
constexpr char kMagic[4] = {'L', 'O', 'F', 'M'};
constexpr uint32_t kVersion = 1;
constexpr size_t kLegacyHeaderBytes = 4 + 4 + 8 + 1 + 8;
constexpr size_t kLegacyOffsetBytes = 8;
constexpr size_t kLegacyEntryBytes = 4 + 8;

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Status NeighborhoodMaterializer::SaveToFile(const std::string& path) const {
  LOFKIT_FAIL_POINT("materialization.save");
  auto writer_or = ContainerWriter::Create(path, kMaterializationFileType,
                                           kMaterializationFileVersion);
  if (!writer_or.ok()) return writer_or.status();
  ContainerWriter writer = std::move(writer_or).value();
  unsigned char meta[kMaterializationMetaSize];
  SerializeMaterializationMeta(meta, k_max_, size(), flat_view_.size(),
                               distinct_);
  LOFKIT_RETURN_IF_ERROR(
      writer.AddSection("meta", meta, kMaterializationMetaSize));
  LOFKIT_RETURN_IF_ERROR(writer.AddSection(
      "offsets", offsets_view_.data(), offsets_view_.size() * sizeof(size_t)));
  LOFKIT_RETURN_IF_ERROR(writer.BeginSection("neighbors"));
  std::vector<unsigned char> entry_buf;
  LOFKIT_RETURN_IF_ERROR(AppendNeighborEntries(writer, flat_view_, entry_buf));
  LOFKIT_RETURN_IF_ERROR(writer.EndSection());
  return writer.Finish();
}

Result<NeighborhoodMaterializer> NeighborhoodMaterializer::FromContainer(
    ContainerReader reader, const std::string& path, const Dataset* data,
    bool copy_to_ram) {
  if (reader.file_type() != kMaterializationFileType) {
    return Status::InvalidArgument(
        "container '" + path + "' is not a materialization file");
  }
  if (reader.file_version() != kMaterializationFileVersion) {
    return Status::InvalidArgument("unsupported materialization version");
  }
  LOFKIT_ASSIGN_OR_RETURN(auto meta, reader.Section("meta"));
  if (meta.size() != kMaterializationMetaSize) {
    return Status::InvalidArgument("corrupt materialization header");
  }
  const uint64_t k_max = ReadU64At(meta.data());
  const uint64_t n = ReadU64At(meta.data() + 8);
  const uint64_t entry_count = ReadU64At(meta.data() + 16);
  const bool distinct = std::to_integer<uint8_t>(meta[24]) != 0;
  if (k_max == 0 || n == 0) {
    return Status::InvalidArgument("corrupt materialization header");
  }
  if (distinct && data == nullptr) {
    return Status::InvalidArgument(
        "distinct-neighbors materialization needs the original dataset");
  }
  if (data != nullptr && data->size() != n) {
    return Status::InvalidArgument(
        StrFormat("materialization has %llu points, dataset has %zu",
                  static_cast<unsigned long long>(n), data->size()));
  }
  // Every count from the (checksummed but still untrusted) meta section is
  // reconciled against the actual section byte sizes — which the container
  // reader has already bounded by the real file size — before any resize,
  // so a hostile header can never trigger an unbounded allocation.
  LOFKIT_ASSIGN_OR_RETURN(auto offsets_bytes, reader.Section("offsets"));
  if (n > std::numeric_limits<uint64_t>::max() / sizeof(size_t) - 1 ||
      offsets_bytes.size() != (n + 1) * sizeof(size_t)) {
    return Status::InvalidArgument(
        "corrupt materialization: offsets section size disagrees with the "
        "point count");
  }
  LOFKIT_ASSIGN_OR_RETURN(auto neighbor_bytes, reader.Section("neighbors"));
  if (entry_count > std::numeric_limits<uint64_t>::max() / sizeof(Neighbor) ||
      neighbor_bytes.size() != entry_count * sizeof(Neighbor)) {
    return Status::InvalidArgument(
        "corrupt materialization: neighbors section size disagrees with the "
        "entry count");
  }

  NeighborhoodMaterializer m(static_cast<size_t>(k_max), distinct);
  m.data_ = data;
  if (copy_to_ram) {
    m.offsets_.resize(n + 1);
    std::memcpy(m.offsets_.data(), offsets_bytes.data(),
                offsets_bytes.size());
    m.flat_.resize(entry_count);
    if (entry_count != 0) {
      std::memcpy(m.flat_.data(), neighbor_bytes.data(),
                  neighbor_bytes.size());
    }
    m.BindToVectors();
  } else {
    // Zero-copy: the views point straight into the mapping (section starts
    // are 64-byte aligned by the container format), and the reader — which
    // owns the mapping — rides along for the materializer's lifetime.
    m.container_ = std::make_unique<ContainerReader>(std::move(reader));
    LOFKIT_ASSIGN_OR_RETURN(offsets_bytes, m.container_->Section("offsets"));
    LOFKIT_ASSIGN_OR_RETURN(neighbor_bytes,
                            m.container_->Section("neighbors"));
    m.offsets_view_ = {
        reinterpret_cast<const size_t*>(offsets_bytes.data()),
        static_cast<size_t>(n + 1)};
    m.flat_view_ = {
        reinterpret_cast<const Neighbor*>(neighbor_bytes.data()),
        static_cast<size_t>(entry_count)};
  }

  if (m.offsets_view_.front() != 0 ||
      m.offsets_view_.back() != entry_count) {
    return Status::InvalidArgument("corrupt materialization offsets");
  }
  for (size_t i = 1; i < m.offsets_view_.size(); ++i) {
    if (m.offsets_view_[i] < m.offsets_view_[i - 1]) {
      return Status::InvalidArgument("corrupt materialization offsets");
    }
  }
  // A file that decodes cleanly can still be semantically corrupt (bit rot
  // that happens to keep the CRC via a colliding flip is astronomically
  // unlikely, but foreign tools are not): enforce the same structural
  // invariants FromLists demands, since View()'s equal-distance-run walk
  // silently misbehaves on unsorted or non-finite neighbor lists.
  for (size_t i = 0; i + 1 < m.offsets_view_.size(); ++i) {
    LOFKIT_RETURN_IF_ERROR(ValidateNeighborList(i, m.neighbors(i), n));
  }
  return m;
}

Result<NeighborhoodMaterializer> NeighborhoodMaterializer::MapFromFile(
    const std::string& path, const Dataset* data) {
  LOFKIT_FAIL_POINT("materialization.map");
  LOFKIT_ASSIGN_OR_RETURN(auto reader, ContainerReader::Open(path));
  return FromContainer(std::move(reader), path, data, /*copy_to_ram=*/false);
}

Result<NeighborhoodMaterializer> NeighborhoodMaterializer::LoadFromFile(
    const std::string& path, const Dataset* data) {
  LOFKIT_FAIL_POINT("materialization.load");
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open file: " + path);
  }
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in) {
    return Status::InvalidArgument("not a lofkit materialization file: " +
                                   path);
  }
  if (std::memcmp(magic, "LFKC", 4) == 0) {
    // Container magic: reopen through the checksummed mmap reader and copy
    // the sections into RAM.
    in.close();
    LOFKIT_ASSIGN_OR_RETURN(auto reader, ContainerReader::Open(path));
    return FromContainer(std::move(reader), path, data, /*copy_to_ram=*/true);
  }
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a lofkit materialization file: " +
                                   path);
  }

  // Legacy v1 blob. No checksums; every header-derived count is bounded by
  // the actual file size before it reaches an allocation.
  in.seekg(0, std::ios::end);
  const uint64_t file_size = static_cast<uint64_t>(in.tellg());
  in.seekg(static_cast<std::streamoff>(sizeof(kMagic)), std::ios::beg);
  uint32_t version = 0;
  uint64_t k_max = 0;
  uint8_t distinct = 0;
  uint64_t n = 0;
  if (!ReadPod(in, version) || version != kVersion) {
    return Status::InvalidArgument("unsupported materialization version");
  }
  if (!ReadPod(in, k_max) || !ReadPod(in, distinct) || !ReadPod(in, n)) {
    return Status::IoError("truncated materialization header");
  }
  if (k_max == 0 || n == 0) {
    return Status::InvalidArgument("corrupt materialization header");
  }
  if (distinct && data == nullptr) {
    return Status::InvalidArgument(
        "distinct-neighbors materialization needs the original dataset");
  }
  if (data != nullptr && data->size() != n) {
    return Status::InvalidArgument(
        StrFormat("materialization has %llu points, dataset has %zu",
                  static_cast<unsigned long long>(n), data->size()));
  }
  const uint64_t body_bytes =
      file_size > kLegacyHeaderBytes ? file_size - kLegacyHeaderBytes : 0;
  // n + 1 offsets must fit in the body; phrased as n >= body/8 so a
  // hostile n == UINT64_MAX cannot wrap n + 1 around to zero.
  if (n >= body_bytes / kLegacyOffsetBytes) {
    return Status::InvalidArgument(
        "corrupt materialization header: offsets table exceeds the file "
        "size");
  }
  NeighborhoodMaterializer m(static_cast<size_t>(k_max), distinct != 0);
  m.data_ = data;
  m.offsets_.resize(n + 1);
  for (auto& offset : m.offsets_) {
    uint64_t value = 0;
    if (!ReadPod(in, value)) {
      return Status::IoError("truncated materialization offsets");
    }
    offset = static_cast<size_t>(value);
  }
  if (m.offsets_.front() != 0) {
    return Status::InvalidArgument("corrupt materialization offsets");
  }
  for (size_t i = 1; i < m.offsets_.size(); ++i) {
    if (m.offsets_[i] < m.offsets_[i - 1]) {
      return Status::InvalidArgument("corrupt materialization offsets");
    }
  }
  const uint64_t entry_bytes = body_bytes - (n + 1) * kLegacyOffsetBytes;
  if (m.offsets_.back() > entry_bytes / kLegacyEntryBytes) {
    return Status::InvalidArgument(
        "corrupt materialization offsets: entry count exceeds the file "
        "size");
  }
  m.flat_.resize(m.offsets_.back());
  for (Neighbor& neighbor : m.flat_) {
    if (!ReadPod(in, neighbor.index) || !ReadPod(in, neighbor.distance)) {
      return Status::IoError("truncated materialization entries");
    }
  }
  m.BindToVectors();
  // Same structural validation as the container route: View()'s
  // equal-distance-run walk silently misbehaves on unsorted or non-finite
  // neighbor lists, so a decodable-but-corrupt file is rejected here.
  for (size_t i = 0; i + 1 < m.offsets_.size(); ++i) {
    LOFKIT_RETURN_IF_ERROR(ValidateNeighborList(i, m.neighbors(i), n));
  }
  return m;
}

}  // namespace lofkit
