#include "index/va_file_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/container_file.h"
#include "common/fail_point.h"
#include "common/string_util.h"

namespace lofkit {

namespace {

// Container identity of a persisted signature table. Sections:
//   "meta"       24 bytes: bits u64 | dim u64 | n u64
//   "box_lo"     dim x f64 (grid origin per dimension)
//   "step"       dim x f64 (interval width per dimension)
//   "signatures" n * dim x u8 (quantization cell per coordinate)
constexpr uint32_t kVaFileFileType = 2;
constexpr uint32_t kVaFileFileVersion = 1;
constexpr size_t kVaMetaSize = 24;

uint64_t VaReadU64(const std::byte* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

Status CheckQuery(const Dataset* data, std::span<const double> query) {
  if (data == nullptr) {
    return Status::FailedPrecondition("index queried before Build()");
  }
  if (query.size() != data->dimension()) {
    return Status::InvalidArgument(
        StrFormat("query has dimension %zu, index has %zu", query.size(),
                  data->dimension()));
  }
  return Status::OK();
}

}  // namespace

Status VaFileIndex::Build(const Dataset& data, const Metric& metric) {
  LOFKIT_FAIL_POINT("index.build");
  if (data.empty()) {
    return Status::InvalidArgument("cannot build index over empty dataset");
  }
  if (bits_ < 1 || bits_ > 8) {
    return Status::InvalidArgument("bits_per_dimension must be in [1, 8]");
  }
  data_ = &data;
  metric_ = &metric;
  kern_ = metric.kernels();
  dim_ = data.dimension();
  box_lo_ = data.Min();
  const std::vector<double> box_hi = data.Max();
  const size_t cells = intervals();
  step_.assign(dim_, 1.0);
  for (size_t d = 0; d < dim_; ++d) {
    const double range = box_hi[d] - box_lo_[d];
    step_[d] = range > 0.0 ? range / static_cast<double>(cells) : 1.0;
  }
  approximation_.resize(data.size() * dim_);
  for (size_t i = 0; i < data.size(); ++i) {
    auto p = data.point(i);
    for (size_t d = 0; d < dim_; ++d) {
      int64_t c = static_cast<int64_t>((p[d] - box_lo_[d]) / step_[d]);
      c = std::clamp<int64_t>(c, 0, static_cast<int64_t>(cells) - 1);
      approximation_[i * dim_ + d] = static_cast<uint8_t>(c);
    }
  }
  return Status::OK();
}

Status VaFileIndex::SaveToFile(const std::string& path) const {
  LOFKIT_FAIL_POINT("va_file.save");
  if (data_ == nullptr) {
    return Status::FailedPrecondition("VA-file saved before Build()");
  }
  auto writer_or =
      ContainerWriter::Create(path, kVaFileFileType, kVaFileFileVersion);
  if (!writer_or.ok()) return writer_or.status();
  ContainerWriter writer = std::move(writer_or).value();
  unsigned char meta[kVaMetaSize] = {};
  const uint64_t bits64 = bits_;
  const uint64_t dim64 = dim_;
  const uint64_t n64 = data_->size();
  std::memcpy(meta, &bits64, 8);
  std::memcpy(meta + 8, &dim64, 8);
  std::memcpy(meta + 16, &n64, 8);
  LOFKIT_RETURN_IF_ERROR(writer.AddSection("meta", meta, kVaMetaSize));
  LOFKIT_RETURN_IF_ERROR(writer.AddSection(
      "box_lo", box_lo_.data(), box_lo_.size() * sizeof(double)));
  LOFKIT_RETURN_IF_ERROR(
      writer.AddSection("step", step_.data(), step_.size() * sizeof(double)));
  LOFKIT_RETURN_IF_ERROR(writer.AddSection(
      "signatures", approximation_.data(), approximation_.size()));
  return writer.Finish();
}

Status VaFileIndex::LoadFromFile(const std::string& path, const Dataset& data,
                                 const Metric& metric) {
  LOFKIT_FAIL_POINT("va_file.load");
  LOFKIT_ASSIGN_OR_RETURN(auto reader, ContainerReader::Open(path));
  if (reader.file_type() != kVaFileFileType) {
    return Status::InvalidArgument("container '" + path +
                                   "' is not a VA-file signature table");
  }
  if (reader.file_version() != kVaFileFileVersion) {
    return Status::InvalidArgument("unsupported VA-file version");
  }
  LOFKIT_ASSIGN_OR_RETURN(auto meta, reader.Section("meta"));
  if (meta.size() != kVaMetaSize) {
    return Status::InvalidArgument("corrupt VA-file header");
  }
  const uint64_t bits = VaReadU64(meta.data());
  const uint64_t dim = VaReadU64(meta.data() + 8);
  const uint64_t n = VaReadU64(meta.data() + 16);
  if (bits < 1 || bits > 8) {
    return Status::InvalidArgument("corrupt VA-file header: bits out of "
                                   "[1, 8]");
  }
  if (dim != data.dimension() || n != data.size()) {
    return Status::InvalidArgument(StrFormat(
        "VA-file was built over %llu points x %llu dims, dataset has %zu x "
        "%zu",
        static_cast<unsigned long long>(n),
        static_cast<unsigned long long>(dim), data.size(),
        data.dimension()));
  }
  // Section sizes are already bounded by the real file size (container
  // reader), so these equality checks also bound every allocation below.
  LOFKIT_ASSIGN_OR_RETURN(auto box_lo_bytes, reader.Section("box_lo"));
  LOFKIT_ASSIGN_OR_RETURN(auto step_bytes, reader.Section("step"));
  LOFKIT_ASSIGN_OR_RETURN(auto sig_bytes, reader.Section("signatures"));
  if (box_lo_bytes.size() != dim * sizeof(double) ||
      step_bytes.size() != dim * sizeof(double) ||
      sig_bytes.size() != n * dim) {
    return Status::InvalidArgument(
        "corrupt VA-file: section sizes disagree with the header");
  }
  std::vector<double> box_lo(dim);
  std::vector<double> step(dim);
  std::memcpy(box_lo.data(), box_lo_bytes.data(), box_lo_bytes.size());
  std::memcpy(step.data(), step_bytes.data(), step_bytes.size());
  const size_t cells = size_t{1} << bits;
  for (size_t d = 0; d < dim; ++d) {
    if (!std::isfinite(box_lo[d]) || !std::isfinite(step[d]) ||
        step[d] <= 0.0) {
      return Status::InvalidArgument(
          "corrupt VA-file: non-finite grid bounds or non-positive step");
    }
  }
  std::vector<uint8_t> approximation(sig_bytes.size());
  std::memcpy(approximation.data(), sig_bytes.data(), sig_bytes.size());
  if (cells < 256) {
    for (uint8_t cell : approximation) {
      if (cell >= cells) {
        return Status::InvalidArgument(StrFormat(
            "corrupt VA-file: cell index %u out of %zu intervals", cell,
            cells));
      }
    }
  }
  data_ = &data;
  metric_ = &metric;
  kern_ = metric.kernels();
  bits_ = static_cast<size_t>(bits);
  dim_ = static_cast<size_t>(dim);
  box_lo_ = std::move(box_lo);
  step_ = std::move(step);
  approximation_ = std::move(approximation);
  return Status::OK();
}

void VaFileIndex::CellOf(size_t i, std::vector<double>& lo,
                         std::vector<double>& hi) const {
  lo.resize(dim_);
  hi.resize(dim_);
  for (size_t d = 0; d < dim_; ++d) {
    const double cell = approximation_[i * dim_ + d];
    lo[d] = box_lo_[d] + cell * step_[d];
    hi[d] = lo[d] + step_[d];
  }
}

Status VaFileIndex::Query(std::span<const double> query, size_t k,
                          std::optional<uint32_t> exclude,
                          KnnSearchContext& ctx) const {
  LOFKIT_RETURN_IF_ERROR(CheckQuery(data_, query));
  if (k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  const size_t n = data_->size();

  // Phase 1: filter on the approximations, entirely in rank space. rho is
  // the k-th smallest upper bound seen so far; any point whose lower bound
  // exceeds rho can never be among the k nearest. Candidates live in the
  // context's Neighbor pool with `distance` holding the lower bound; the
  // upper-bound heap uses the rank pool (scratch.heap belongs to the phase-2
  // collector, whose constructor clears it).
  std::vector<Neighbor>& candidates = ctx.scratch.candidates;
  candidates.clear();
  std::vector<double>& upper_heap = ctx.scratch.rank;
  upper_heap.clear();  // max-heap of the k smallest upper bounds
  std::vector<double>& lo = ctx.scratch.box_lo;
  std::vector<double>& hi = ctx.scratch.box_hi;
  double rho = std::numeric_limits<double>::infinity();
  QueryStats* stats = ctx.stats;
  if (stats != nullptr) ++stats->queries;
  for (size_t i = 0; i < n; ++i) {
    if (exclude.has_value() && *exclude == i) continue;
    if (stats != nullptr) ++stats->node_visits;
    CellOf(i, lo, hi);
    const double lower = metric_->MinRankToBox(query, lo, hi);
    if (lower > rho) {
      if (stats != nullptr) ++stats->rank_prune_hits;
      continue;
    }
    const double upper = metric_->MaxRankToBox(query, lo, hi);
    candidates.push_back(Neighbor{static_cast<uint32_t>(i), lower});
    upper_heap.push_back(upper);
    std::push_heap(upper_heap.begin(), upper_heap.end());
    if (upper_heap.size() > k) {
      std::pop_heap(upper_heap.begin(), upper_heap.end());
      upper_heap.pop_back();
    }
    if (upper_heap.size() == k) rho = upper_heap.front();
  }

  // Phase 2: refine candidates in ascending lower-bound order with the
  // early-exit kernel bounded by the exact kth rank found so far; stop
  // once the next lower bound exceeds it.
  std::sort(candidates.begin(), candidates.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.distance < b.distance;
            });
  internal_index::KnnCollector collector(k, ctx);
  const double* raw = data_->raw().data();
  size_t refined = 0;
  for (const Neighbor& candidate : candidates) {
    if (candidate.distance > collector.Tau()) break;
    ++refined;
    collector.Offer(candidate.index,
                    kern_.rank_bounded(kern_.ctx, query.data(),
                                       raw + size_t{candidate.index} * dim_,
                                       dim_, collector.Tau()));
  }
  if (stats != nullptr) {
    // Each refinement is one exact-point fetch (a leaf "page" in the
    // paper's accounting) and one bounded distance evaluation; candidates
    // cut off by the lower-bound early exit count as prune hits.
    stats->va_refinements += refined;
    stats->distance_evals += refined;
    stats->leaf_visits += refined;
    stats->rank_prune_hits += candidates.size() - refined;
  }
  collector.TakeInto(ctx.scratch.out);
  internal_index::RanksToDistances(kern_, ctx.scratch.out);
  return Status::OK();
}

Status VaFileIndex::QueryRadius(std::span<const double> query, double radius,
                                std::optional<uint32_t> exclude,
                                KnnSearchContext& ctx) const {
  LOFKIT_RETURN_IF_ERROR(CheckQuery(data_, query));
  if (!(radius >= 0.0)) {
    return Status::InvalidArgument("radius must be >= 0");
  }
  std::vector<Neighbor>& result = ctx.scratch.out;
  result.clear();
  std::vector<double>& lo = ctx.scratch.box_lo;
  std::vector<double>& hi = ctx.scratch.box_hi;
  const double* raw = data_->raw().data();
  const double rank_hi = PruneRankUpperBound(kern_.squared, radius);
  QueryStats* stats = ctx.stats;
  if (stats != nullptr) ++stats->queries;
  for (size_t i = 0; i < data_->size(); ++i) {
    if (exclude.has_value() && *exclude == i) continue;
    if (stats != nullptr) ++stats->node_visits;
    CellOf(i, lo, hi);
    if (metric_->MinRankToBox(query, lo, hi) > rank_hi) {
      if (stats != nullptr) ++stats->rank_prune_hits;
      continue;
    }
    if (stats != nullptr) {
      ++stats->va_refinements;
      ++stats->distance_evals;
      ++stats->leaf_visits;
    }
    const double rank = kern_.rank_bounded(kern_.ctx, query.data(),
                                           raw + i * dim_, dim_, rank_hi);
    if (rank > rank_hi) continue;
    const double dist = DistanceFromRank(kern_.squared, rank);
    if (dist <= radius) result.push_back(Neighbor{static_cast<uint32_t>(i), dist});
  }
  internal_index::SortNeighbors(result);
  return Status::OK();
}

}  // namespace lofkit
