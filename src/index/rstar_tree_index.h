#ifndef LOFKIT_INDEX_RSTAR_TREE_INDEX_H_
#define LOFKIT_INDEX_RSTAR_TREE_INDEX_H_

#include <vector>

#include "index/knn_index.h"

namespace lofkit {

/// R*-tree with X-tree-style supernodes — lofkit's stand-in for the
/// "variant of the X-tree" the paper used for its kNN queries (section 7.4,
/// reference [4]).
///
/// Insertion follows the R*-tree: ChooseSubtree minimizes overlap
/// enlargement at the leaf level and area enlargement above it, one forced
/// reinsertion round per level per insert, and topological (margin-driven)
/// splits. The X-tree modification applies to directory nodes: when the
/// best available split would produce heavily overlapping directory
/// rectangles (overlap fraction above `kMaxOverlap`), the node is not split
/// but grows into a *supernode* of extended capacity, avoiding the
/// degenerate overlap that makes high-dimensional R-trees useless.
///
/// kNN queries run best-first (Hjaltason-Samet) over MinRankToBox (the
/// squared-distance bound for the L2 family) with leaf scans through the
/// metric's bounded gather kernel, and return the exact k-distance
/// neighborhood for any Metric.
class RStarTreeIndex final : public KnnIndex {
 public:
  /// How Build() constructs the tree.
  enum class BuildMode {
    /// One-by-one R* insertion with forced reinsertion (default; the
    /// X-tree supernode rule applies on directory splits).
    kInsert,
    /// Sort-Tile-Recursive bulk loading: O(n log n) construction with
    /// near-perfect space utilization; no supernodes arise.
    kBulkLoadStr,
  };

  explicit RStarTreeIndex(BuildMode mode = BuildMode::kInsert)
      : mode_(mode) {}

  Status Build(const Dataset& data, const Metric& metric) override;

  using KnnIndex::Query;
  using KnnIndex::QueryRadius;
  Status Query(std::span<const double> query, size_t k,
               std::optional<uint32_t> exclude,
               KnnSearchContext& ctx) const override;
  Status QueryRadius(std::span<const double> query, double radius,
                     std::optional<uint32_t> exclude,
                     KnnSearchContext& ctx) const override;
  const Dataset* dataset() const override { return data_; }
  std::string_view name() const override { return "rstar_tree"; }

  /// Statistics for tests and the index-ablation bench.
  size_t node_count() const { return nodes_.size(); }
  size_t supernode_count() const;
  size_t height() const;

  /// Structural self-check for tests: every child MBR is contained in its
  /// parent's, every node's MBR is exactly the union of its entries, all
  /// leaves sit at the same depth, fill factors respect capacity, and every
  /// point id appears in exactly one leaf. Returns the first violation.
  Status CheckInvariants() const;

 private:
  static constexpr size_t kMaxEntries = 32;   // M
  static constexpr size_t kMinEntries = 12;   // m (~0.4 M)
  static constexpr double kReinsertFraction = 0.3;
  static constexpr double kMaxOverlap = 0.2;  // X-tree split-quality bound

  struct Node {
    bool leaf = true;
    uint32_t parent = kNone;
    size_t capacity = kMaxEntries;  // > kMaxEntries for supernodes
    std::vector<double> mbr;        // d mins then d maxs
    std::vector<uint32_t> entries;  // point ids (leaf) or node ids

    static constexpr uint32_t kNone = 0xffffffffu;
    bool is_supernode() const { return capacity > kMaxEntries; }
  };

  // -- rect helpers over the flat [lo..., hi...] representation --
  std::span<const double> EntryLo(const Node& node, size_t i) const;
  std::span<const double> EntryHi(const Node& node, size_t i) const;
  void EntryRect(const Node& node, size_t i, std::vector<double>& rect) const;
  static double RectArea(std::span<const double> rect, size_t dim);
  static double RectMargin(std::span<const double> rect, size_t dim);
  static void RectExtend(std::vector<double>& rect,
                         std::span<const double> other, size_t dim);
  static double RectOverlap(std::span<const double> a,
                            std::span<const double> b, size_t dim);

  // -- construction --
  uint32_t NewNode(bool leaf);
  void RecomputeMbr(uint32_t node_id);
  void ExtendUpward(uint32_t node_id, std::span<const double> rect);
  uint32_t ChooseSubtree(std::span<const double> rect, size_t target_level);
  void InsertRect(std::span<const double> rect, uint32_t entry,
                  size_t target_level, std::vector<bool>& reinserted);
  void HandleOverflow(uint32_t node_id, std::vector<bool>& reinserted);
  void ReinsertEntries(uint32_t node_id, std::vector<bool>& reinserted);
  void SplitNode(uint32_t node_id, std::vector<bool>& reinserted);
  size_t LevelOf(uint32_t node_id) const;

  // Picks the R* split (axis + distribution) of `node`; returns the index
  // boundary in `order` and the achieved overlap fraction.
  struct SplitChoice {
    std::vector<uint32_t> order;  // entry positions in split order
    size_t boundary = 0;          // first `boundary` go left
    double overlap_fraction = 0.0;
  };
  SplitChoice ChooseSplit(const Node& node) const;

  /// Builds the whole tree bottom-up with Sort-Tile-Recursive packing.
  void BulkLoadStr();

  BuildMode mode_ = BuildMode::kInsert;
  const Dataset* data_ = nullptr;
  const Metric* metric_ = nullptr;
  DistanceKernels kern_;
  size_t dim_ = 0;
  std::vector<Node> nodes_;
  uint32_t root_ = Node::kNone;
};

}  // namespace lofkit

#endif  // LOFKIT_INDEX_RSTAR_TREE_INDEX_H_
