#include "index/linear_scan_index.h"

#include "common/string_util.h"

namespace lofkit {

namespace {

Status CheckQuery(const Dataset* data, std::span<const double> query) {
  if (data == nullptr) {
    return Status::FailedPrecondition("index queried before Build()");
  }
  if (query.size() != data->dimension()) {
    return Status::InvalidArgument(
        StrFormat("query has dimension %zu, index has %zu", query.size(),
                  data->dimension()));
  }
  return Status::OK();
}

}  // namespace

Status LinearScanIndex::Build(const Dataset& data, const Metric& metric) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot build index over empty dataset");
  }
  data_ = &data;
  metric_ = &metric;
  return Status::OK();
}

Result<std::vector<Neighbor>> LinearScanIndex::Query(
    std::span<const double> query, size_t k,
    std::optional<uint32_t> exclude) const {
  LOFKIT_RETURN_IF_ERROR(CheckQuery(data_, query));
  if (k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  internal_index::KnnCollector collector(k);
  for (size_t i = 0; i < data_->size(); ++i) {
    if (exclude.has_value() && *exclude == i) continue;
    collector.Offer(static_cast<uint32_t>(i),
                    metric_->Distance(query, data_->point(i)));
  }
  return collector.Take();
}

Result<std::vector<Neighbor>> LinearScanIndex::QueryRadius(
    std::span<const double> query, double radius,
    std::optional<uint32_t> exclude) const {
  LOFKIT_RETURN_IF_ERROR(CheckQuery(data_, query));
  if (!(radius >= 0.0)) {
    return Status::InvalidArgument("radius must be >= 0");
  }
  std::vector<Neighbor> result;
  for (size_t i = 0; i < data_->size(); ++i) {
    if (exclude.has_value() && *exclude == i) continue;
    const double dist = metric_->Distance(query, data_->point(i));
    if (dist <= radius) {
      result.push_back(Neighbor{static_cast<uint32_t>(i), dist});
    }
  }
  internal_index::SortNeighbors(result);
  return result;
}

}  // namespace lofkit
