#include "index/linear_scan_index.h"

#include "common/string_util.h"

namespace lofkit {

namespace {

Status CheckQuery(const Dataset* data, std::span<const double> query) {
  if (data == nullptr) {
    return Status::FailedPrecondition("index queried before Build()");
  }
  if (query.size() != data->dimension()) {
    return Status::InvalidArgument(
        StrFormat("query has dimension %zu, index has %zu", query.size(),
                  data->dimension()));
  }
  return Status::OK();
}

}  // namespace

Status LinearScanIndex::Build(const Dataset& data, const Metric& metric) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot build index over empty dataset");
  }
  data_ = &data;
  metric_ = &metric;
  view_ = data.blocks();
  kern_ = metric.kernels();
  return Status::OK();
}

Result<std::vector<Neighbor>> LinearScanIndex::Query(
    std::span<const double> query, size_t k,
    std::optional<uint32_t> exclude) const {
  LOFKIT_RETURN_IF_ERROR(CheckQuery(data_, query));
  if (k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  internal_index::KnnCollector collector(k);
  const size_t n = data_->size();
  const size_t dim = data_->dimension();
  const double* q = query.data();
  const size_t num_blocks = view_->num_blocks();
  const uint32_t skip =
      exclude.has_value() ? *exclude : PointBlockView::kPaddingId;
  double rank[PointBlockView::kLanes];
  for (size_t b = 0; b < num_blocks; ++b) {
    kern_.rank_block(kern_.ctx, q, view_->block(b), dim, rank);
    const size_t base = b * PointBlockView::kLanes;
    const size_t lanes = std::min(PointBlockView::kLanes, n - base);
    for (size_t j = 0; j < lanes; ++j) {
      const uint32_t i = static_cast<uint32_t>(base + j);
      if (i == skip) continue;
      collector.Offer(i, rank[j]);
    }
  }
  auto result = collector.Take();
  internal_index::RanksToDistances(kern_, result);
  return result;
}

Result<std::vector<Neighbor>> LinearScanIndex::QueryRadius(
    std::span<const double> query, double radius,
    std::optional<uint32_t> exclude) const {
  LOFKIT_RETURN_IF_ERROR(CheckQuery(data_, query));
  if (!(radius >= 0.0)) {
    return Status::InvalidArgument("radius must be >= 0");
  }
  std::vector<Neighbor> result;
  const size_t n = data_->size();
  const size_t dim = data_->dimension();
  const double* q = query.data();
  const size_t num_blocks = view_->num_blocks();
  const uint32_t skip =
      exclude.has_value() ? *exclude : PointBlockView::kPaddingId;
  // Cheap rank-space pre-filter, conservatively widened so the exact
  // distance-space test below never loses an inclusive boundary hit.
  const double rank_hi = PruneRankUpperBound(kern_.squared, radius);
  double rank[PointBlockView::kLanes];
  for (size_t b = 0; b < num_blocks; ++b) {
    kern_.rank_block(kern_.ctx, q, view_->block(b), dim, rank);
    const size_t base = b * PointBlockView::kLanes;
    const size_t lanes = std::min(PointBlockView::kLanes, n - base);
    for (size_t j = 0; j < lanes; ++j) {
      const uint32_t i = static_cast<uint32_t>(base + j);
      if (i == skip) continue;
      if (rank[j] > rank_hi) continue;
      const double dist = DistanceFromRank(kern_.squared, rank[j]);
      if (dist <= radius) result.push_back(Neighbor{i, dist});
    }
  }
  internal_index::SortNeighbors(result);
  return result;
}

}  // namespace lofkit
