#include "index/linear_scan_index.h"

#include "common/fail_point.h"
#include "common/string_util.h"

namespace lofkit {

namespace {

Status CheckQuery(const Dataset* data, std::span<const double> query) {
  if (data == nullptr) {
    return Status::FailedPrecondition("index queried before Build()");
  }
  if (query.size() != data->dimension()) {
    return Status::InvalidArgument(
        StrFormat("query has dimension %zu, index has %zu", query.size(),
                  data->dimension()));
  }
  return Status::OK();
}

}  // namespace

Status LinearScanIndex::Build(const Dataset& data, const Metric& metric) {
  LOFKIT_FAIL_POINT("index.build");
  if (data.empty()) {
    return Status::InvalidArgument("cannot build index over empty dataset");
  }
  data_ = &data;
  metric_ = &metric;
  view_ = data.blocks();
  kern_ = metric.kernels();
  return Status::OK();
}

Status LinearScanIndex::Query(std::span<const double> query, size_t k,
                              std::optional<uint32_t> exclude,
                              KnnSearchContext& ctx) const {
  LOFKIT_RETURN_IF_ERROR(CheckQuery(data_, query));
  if (k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  internal_index::KnnCollector collector(k, ctx);
  const size_t n = data_->size();
  const size_t dim = data_->dimension();
  const double* q = query.data();
  const size_t num_blocks = view_->num_blocks();
  const uint32_t skip =
      exclude.has_value() ? *exclude : PointBlockView::kPaddingId;
  double rank[PointBlockView::kLanes];
  for (size_t b = 0; b < num_blocks; ++b) {
    kern_.rank_block(kern_.ctx, q, view_->block(b), dim, rank);
    const size_t base = b * PointBlockView::kLanes;
    const size_t lanes = std::min(PointBlockView::kLanes, n - base);
    for (size_t j = 0; j < lanes; ++j) {
      const uint32_t i = static_cast<uint32_t>(base + j);
      if (i == skip) continue;
      collector.Offer(i, rank[j]);
    }
  }
  if (ctx.stats != nullptr) {
    ++ctx.stats->queries;
    ctx.stats->distance_evals += n - (skip < n ? 1 : 0);
    ctx.stats->leaf_visits += num_blocks;
  }
  collector.TakeInto(ctx.scratch.out);
  internal_index::RanksToDistances(kern_, ctx.scratch.out);
  return Status::OK();
}

Status LinearScanIndex::QueryRadius(std::span<const double> query,
                                    double radius,
                                    std::optional<uint32_t> exclude,
                                    KnnSearchContext& ctx) const {
  LOFKIT_RETURN_IF_ERROR(CheckQuery(data_, query));
  if (!(radius >= 0.0)) {
    return Status::InvalidArgument("radius must be >= 0");
  }
  std::vector<Neighbor>& result = ctx.scratch.out;
  result.clear();
  const size_t n = data_->size();
  const size_t dim = data_->dimension();
  const double* q = query.data();
  const size_t num_blocks = view_->num_blocks();
  const uint32_t skip =
      exclude.has_value() ? *exclude : PointBlockView::kPaddingId;
  // Cheap rank-space pre-filter, conservatively widened so the exact
  // distance-space test below never loses an inclusive boundary hit.
  const double rank_hi = PruneRankUpperBound(kern_.squared, radius);
  uint64_t prune_hits = 0;
  double rank[PointBlockView::kLanes];
  for (size_t b = 0; b < num_blocks; ++b) {
    kern_.rank_block(kern_.ctx, q, view_->block(b), dim, rank);
    const size_t base = b * PointBlockView::kLanes;
    const size_t lanes = std::min(PointBlockView::kLanes, n - base);
    for (size_t j = 0; j < lanes; ++j) {
      const uint32_t i = static_cast<uint32_t>(base + j);
      if (i == skip) continue;
      if (rank[j] > rank_hi) {
        ++prune_hits;
        continue;
      }
      const double dist = DistanceFromRank(kern_.squared, rank[j]);
      if (dist <= radius) result.push_back(Neighbor{i, dist});
    }
  }
  if (ctx.stats != nullptr) {
    ++ctx.stats->queries;
    ctx.stats->distance_evals += n - (skip < n ? 1 : 0);
    ctx.stats->leaf_visits += num_blocks;
    ctx.stats->rank_prune_hits += prune_hits;
  }
  internal_index::SortNeighbors(result);
  return Status::OK();
}

Status LinearScanIndex::QueryBatch(std::span<const uint32_t> point_ids,
                                   size_t k, KnnSearchContext& ctx) const {
  if (data_ == nullptr) {
    return Status::FailedPrecondition("index queried before Build()");
  }
  if (k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  const size_t n = data_->size();
  for (uint32_t id : point_ids) {
    if (id >= n) {
      return Status::InvalidArgument(
          StrFormat("point id %u out of range, dataset has %zu points",
                    static_cast<unsigned>(id), n));
    }
  }
  // One pass over the SoA blocks serves a whole tile of queries: the
  // dataset is streamed from memory once per kTile queries instead of once
  // per query, which is where the scan's wall-clock lives at large n. Per
  // collector the offers still arrive in block order with ascending lanes —
  // exactly the single-query sequence — so results are bit-identical.
  constexpr size_t kTile = 16;
  const size_t dim = data_->dimension();
  const size_t num_blocks = view_->num_blocks();
  auto& offsets = ctx.scratch.batch_offsets;
  auto& flat = ctx.scratch.batch_flat;
  offsets.clear();
  flat.clear();
  offsets.push_back(0);
  auto& heaps = ctx.scratch.tile_heaps;
  auto& accepted = ctx.scratch.tile_accepted;
  if (heaps.size() < kTile) heaps.resize(kTile);
  if (accepted.size() < kTile) accepted.resize(kTile);
  internal_index::KnnCollector coll[kTile];
  const double* qptr[kTile];
  double rank[PointBlockView::kLanes];
  for (size_t start = 0; start < point_ids.size(); start += kTile) {
    const size_t tile = std::min(kTile, point_ids.size() - start);
    for (size_t t = 0; t < tile; ++t) {
      coll[t].Reset(k, heaps[t], accepted[t], ctx.stats);
      qptr[t] = data_->point(point_ids[start + t]).data();
    }
    for (size_t b = 0; b < num_blocks; ++b) {
      const double* block = view_->block(b);
      const size_t base = b * PointBlockView::kLanes;
      const size_t lanes = std::min(PointBlockView::kLanes, n - base);
      for (size_t t = 0; t < tile; ++t) {
        kern_.rank_block(kern_.ctx, qptr[t], block, dim, rank);
        const uint32_t skip = point_ids[start + t];
        for (size_t j = 0; j < lanes; ++j) {
          const uint32_t i = static_cast<uint32_t>(base + j);
          if (i == skip) continue;
          coll[t].Offer(i, rank[j]);
        }
      }
    }
    if (ctx.stats != nullptr) {
      // Each tiled query is an exact self-excluded scan: n - 1 distance
      // evaluations and one pass over every SoA block.
      ctx.stats->queries += tile;
      ctx.stats->distance_evals += tile * (n - 1);
      ctx.stats->leaf_visits += tile * num_blocks;
    }
    for (size_t t = 0; t < tile; ++t) {
      coll[t].TakeInto(ctx.scratch.out);
      internal_index::RanksToDistances(kern_, ctx.scratch.out);
      flat.insert(flat.end(), ctx.scratch.out.begin(), ctx.scratch.out.end());
      offsets.push_back(flat.size());
    }
  }
  return Status::OK();
}

}  // namespace lofkit
