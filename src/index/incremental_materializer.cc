#include "index/incremental_materializer.h"

#include <algorithm>

#include "common/fail_point.h"
#include "common/string_util.h"
#include "index/linear_scan_index.h"

namespace lofkit {

Result<IncrementalMaterializer> IncrementalMaterializer::Create(
    Dataset data, const Metric& metric, size_t k_max) {
  if (k_max == 0) {
    return Status::InvalidArgument("k_max must be >= 1");
  }
  if (data.size() <= k_max) {
    return Status::InvalidArgument(
        StrFormat("need at least k_max + 1 = %zu initial points, got %zu",
                  k_max + 1, data.size()));
  }
  IncrementalMaterializer inc(std::move(data), metric, k_max);
  LinearScanIndex index;
  LOFKIT_RETURN_IF_ERROR(index.Build(inc.data_, metric));
  inc.lists_.resize(inc.data_.size());
  for (size_t i = 0; i < inc.data_.size(); ++i) {
    LOFKIT_RETURN_IF_ERROR(index.Query(inc.data_.point(i), k_max,
                                       static_cast<uint32_t>(i), inc.ctx_));
    const auto list = inc.ctx_.results();
    inc.lists_[i].assign(list.begin(), list.end());
  }
  return inc;
}

void IncrementalMaterializer::Trim(std::vector<Neighbor>& list) const {
  if (list.size() <= k_max_) return;
  const double k_distance = list[k_max_ - 1].distance;
  size_t end = k_max_;
  while (end < list.size() && list[end].distance <= k_distance) ++end;
  list.resize(end);
}

Status IncrementalMaterializer::Insert(std::span<const double> coordinates,
                                       const std::string& label) {
  LOFKIT_FAIL_POINT("incremental.insert");
  if (coordinates.size() != data_.dimension()) {
    return Status::InvalidArgument(
        StrFormat("point has dimension %zu, dataset has %zu",
                  coordinates.size(), data_.dimension()));
  }
  const uint32_t new_id = static_cast<uint32_t>(data_.size());
  LOFKIT_RETURN_IF_ERROR(data_.Append(coordinates, label));
  const auto new_point = data_.point(new_id);

  // One distance pass serves both the new point's own neighborhood and the
  // affected-list test. The exact one-pair kernel matches Metric::Distance
  // bit for bit, so stored lists stay identical to batch materialization.
  last_affected_ = 0;
  const size_t dim = data_.dimension();
  if (ctx_.stats != nullptr) {
    ++ctx_.stats->queries;
    ctx_.stats->distance_evals += new_id;
  }
  internal_index::KnnCollector collector(k_max_, ctx_);
  for (uint32_t q = 0; q < new_id; ++q) {
    const double dist = DistanceFromRank(
        kern_.squared, kern_.rank_one(kern_.ctx, new_point.data(),
                                      data_.point(q).data(), dim));
    collector.Offer(q, dist);

    std::vector<Neighbor>& list = lists_[q];
    // The stored list covers exactly the old k_max-distance neighborhood;
    // its last entry's distance is that k-distance (ties included), except
    // when fewer than k_max points existed (then everything is stored and
    // the new point always joins).
    const bool affected =
        list.size() < k_max_ || dist <= list.back().distance;
    if (!affected) continue;
    ++last_affected_;
    const Neighbor entry{new_id, dist};
    const auto pos = std::upper_bound(
        list.begin(), list.end(), entry, [](const Neighbor& a,
                                            const Neighbor& b) {
          if (a.distance != b.distance) return a.distance < b.distance;
          return a.index < b.index;
        });
    list.insert(pos, entry);
    Trim(list);
  }
  std::vector<Neighbor> own_list;
  collector.TakeInto(own_list);
  lists_.push_back(std::move(own_list));
  return Status::OK();
}

Result<NeighborhoodMaterializer> IncrementalMaterializer::Snapshot() const {
  return NeighborhoodMaterializer::FromLists(k_max_, /*distinct=*/false,
                                             &data_, lists_);
}

}  // namespace lofkit
