#include "index/knn_index.h"

namespace lofkit {
namespace internal_index {

std::vector<Neighbor> KnnCollector::Take() {
  const double k_distance = Tau();
  std::vector<Neighbor> result;
  result.reserve(accepted_.size());
  for (const Neighbor& n : accepted_) {
    if (n.distance <= k_distance) result.push_back(n);
  }
  SortNeighbors(result);
  accepted_.clear();
  heap_.clear();
  return result;
}

void RanksToDistances(const DistanceKernels& kernels,
                      std::vector<Neighbor>& neighbors) {
  if (!kernels.squared) return;
  for (Neighbor& n : neighbors) {
    n.distance = DistanceFromRank(kernels.squared, n.distance);
  }
}

void SortNeighbors(std::vector<Neighbor>& neighbors) {
  std::sort(neighbors.begin(), neighbors.end(),
            [](const Neighbor& a, const Neighbor& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.index < b.index;
            });
}

}  // namespace internal_index
}  // namespace lofkit
