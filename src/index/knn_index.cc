#include "index/knn_index.h"

#include "common/string_util.h"

namespace lofkit {

Status KnnIndex::QueryBatch(std::span<const uint32_t> point_ids, size_t k,
                            KnnSearchContext& ctx) const {
  const Dataset* data = dataset();
  if (data == nullptr) {
    return Status::FailedPrecondition("index queried before Build()");
  }
  for (uint32_t id : point_ids) {
    if (id >= data->size()) {
      return Status::InvalidArgument(
          StrFormat("point id %u out of range, dataset has %zu points",
                    static_cast<unsigned>(id), data->size()));
    }
  }
  // Stage batch output in the batch buffers while the single-query core
  // repeatedly rewrites scratch.out.
  auto& offsets = ctx.scratch.batch_offsets;
  auto& flat = ctx.scratch.batch_flat;
  offsets.clear();
  flat.clear();
  offsets.push_back(0);
  for (uint32_t id : point_ids) {
    LOFKIT_RETURN_IF_ERROR(this->Query(data->point(id), k, id, ctx));
    flat.insert(flat.end(), ctx.scratch.out.begin(), ctx.scratch.out.end());
    offsets.push_back(flat.size());
  }
  return Status::OK();
}

Result<std::vector<Neighbor>> KnnIndex::Query(
    std::span<const double> query, size_t k,
    std::optional<uint32_t> exclude) const {
  KnnSearchContext ctx;
  LOFKIT_RETURN_IF_ERROR(this->Query(query, k, exclude, ctx));
  return std::move(ctx.scratch.out);
}

Result<std::vector<Neighbor>> KnnIndex::QueryRadius(
    std::span<const double> query, double radius,
    std::optional<uint32_t> exclude) const {
  KnnSearchContext ctx;
  LOFKIT_RETURN_IF_ERROR(this->QueryRadius(query, radius, exclude, ctx));
  return std::move(ctx.scratch.out);
}

namespace internal_index {

void KnnCollector::TakeInto(std::vector<Neighbor>& out) {
  const double k_distance = Tau();
  out.clear();
  for (const Neighbor& n : *accepted_) {
    if (n.distance <= k_distance) out.push_back(n);
  }
  SortNeighbors(out);
  accepted_->clear();
  heap_->clear();
}

void RanksToDistances(const DistanceKernels& kernels,
                      std::vector<Neighbor>& neighbors) {
  if (!kernels.squared) return;
  for (Neighbor& n : neighbors) {
    n.distance = DistanceFromRank(kernels.squared, n.distance);
  }
}

void SortNeighbors(std::vector<Neighbor>& neighbors) {
  std::sort(neighbors.begin(), neighbors.end(),
            [](const Neighbor& a, const Neighbor& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.index < b.index;
            });
}

}  // namespace internal_index
}  // namespace lofkit
