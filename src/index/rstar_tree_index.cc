#include "index/rstar_tree_index.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/fail_point.h"
#include "common/string_util.h"

namespace lofkit {

namespace {

Status CheckQuery(const Dataset* data, std::span<const double> query) {
  if (data == nullptr) {
    return Status::FailedPrecondition("index queried before Build()");
  }
  if (query.size() != data->dimension()) {
    return Status::InvalidArgument(
        StrFormat("query has dimension %zu, index has %zu", query.size(),
                  data->dimension()));
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Rect helpers. Rects are flat vectors: d minima followed by d maxima.
// ---------------------------------------------------------------------------

std::span<const double> RStarTreeIndex::EntryLo(const Node& node,
                                                size_t i) const {
  if (node.leaf) {
    return data_->point(node.entries[i]);
  }
  const Node& child = nodes_[node.entries[i]];
  return {child.mbr.data(), dim_};
}

std::span<const double> RStarTreeIndex::EntryHi(const Node& node,
                                                size_t i) const {
  if (node.leaf) {
    return data_->point(node.entries[i]);
  }
  const Node& child = nodes_[node.entries[i]];
  return {child.mbr.data() + dim_, dim_};
}

void RStarTreeIndex::EntryRect(const Node& node, size_t i,
                               std::vector<double>& rect) const {
  rect.resize(2 * dim_);
  auto lo = EntryLo(node, i);
  auto hi = EntryHi(node, i);
  std::copy(lo.begin(), lo.end(), rect.begin());
  std::copy(hi.begin(), hi.end(), rect.begin() + dim_);
}

double RStarTreeIndex::RectArea(std::span<const double> rect, size_t dim) {
  double area = 1.0;
  for (size_t d = 0; d < dim; ++d) {
    area *= rect[dim + d] - rect[d];
  }
  return area;
}

double RStarTreeIndex::RectMargin(std::span<const double> rect, size_t dim) {
  double margin = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    margin += rect[dim + d] - rect[d];
  }
  return margin;
}

void RStarTreeIndex::RectExtend(std::vector<double>& rect,
                                std::span<const double> other, size_t dim) {
  // `other` may be a point (size dim) or a rect (size 2*dim).
  const bool is_point = other.size() == dim;
  for (size_t d = 0; d < dim; ++d) {
    const double lo = other[d];
    const double hi = is_point ? other[d] : other[dim + d];
    rect[d] = std::min(rect[d], lo);
    rect[dim + d] = std::max(rect[dim + d], hi);
  }
}

double RStarTreeIndex::RectOverlap(std::span<const double> a,
                                   std::span<const double> b, size_t dim) {
  double area = 1.0;
  for (size_t d = 0; d < dim; ++d) {
    const double lo = std::max(a[d], b[d]);
    const double hi = std::min(a[dim + d], b[dim + d]);
    if (hi <= lo) return 0.0;
    area *= hi - lo;
  }
  return area;
}

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

Status RStarTreeIndex::Build(const Dataset& data, const Metric& metric) {
  LOFKIT_FAIL_POINT("index.build");
  if (data.empty()) {
    return Status::InvalidArgument("cannot build index over empty dataset");
  }
  data_ = &data;
  metric_ = &metric;
  kern_ = metric.kernels();
  dim_ = data.dimension();
  nodes_.clear();

  if (mode_ == BuildMode::kBulkLoadStr) {
    BulkLoadStr();
    return Status::OK();
  }

  root_ = NewNode(/*leaf=*/true);
  std::vector<double> rect(2 * dim_);
  for (size_t i = 0; i < data.size(); ++i) {
    auto p = data.point(i);
    std::copy(p.begin(), p.end(), rect.begin());
    std::copy(p.begin(), p.end(), rect.begin() + dim_);
    // One reinsertion round allowed per level per insert (R* rule); tree
    // height is bounded generously by 64.
    std::vector<bool> reinserted(64, false);
    InsertRect(rect, static_cast<uint32_t>(i), /*target_level=*/0,
               reinserted);
  }
  return Status::OK();
}

namespace {

// Sort-Tile-Recursive grouping: slices [begin, end) of `entries` along
// successive dimensions (keyed by `key`) into groups of at most
// `group_size`, appending each group's bounds to `groups`.
void StrTile(std::vector<uint32_t>& entries, size_t begin, size_t end,
             size_t dim, size_t dims, size_t group_size,
             const std::function<double(uint32_t, size_t)>& key,
             std::vector<std::pair<size_t, size_t>>& groups) {
  const size_t n = end - begin;
  if (n <= group_size) {
    groups.emplace_back(begin, end);
    return;
  }
  std::sort(entries.begin() + begin, entries.begin() + end,
            [&](uint32_t a, uint32_t b) { return key(a, dim) < key(b, dim); });
  if (dim + 1 >= dims) {
    for (size_t s = begin; s < end; s += group_size) {
      groups.emplace_back(s, std::min(s + group_size, end));
    }
    return;
  }
  const size_t pages = (n + group_size - 1) / group_size;
  const size_t slabs = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(std::pow(
             static_cast<double>(pages),
             1.0 / static_cast<double>(dims - dim)))));
  const size_t slab_size = (n + slabs - 1) / slabs;
  for (size_t s = begin; s < end; s += slab_size) {
    StrTile(entries, s, std::min(s + slab_size, end), dim + 1, dims,
            group_size, key, groups);
  }
}

}  // namespace

void RStarTreeIndex::BulkLoadStr() {
  // Level 0: tile the points into leaves.
  std::vector<uint32_t> entries(data_->size());
  for (size_t i = 0; i < entries.size(); ++i) {
    entries[i] = static_cast<uint32_t>(i);
  }
  auto point_key = [this](uint32_t id, size_t d) {
    return data_->point(id)[d];
  };
  std::vector<std::pair<size_t, size_t>> groups;
  StrTile(entries, 0, entries.size(), 0, dim_, kMaxEntries, point_key,
          groups);

  std::vector<uint32_t> level;
  for (const auto& [begin, end] : groups) {
    const uint32_t node = NewNode(/*leaf=*/true);
    nodes_[node].entries.assign(entries.begin() + begin,
                                entries.begin() + end);
    RecomputeMbr(node);
    level.push_back(node);
  }

  // Pack directory levels (keyed by child MBR centers) until one root
  // remains.
  auto node_key = [this](uint32_t id, size_t d) {
    const Node& node = nodes_[id];
    return 0.5 * (node.mbr[d] + node.mbr[dim_ + d]);
  };
  while (level.size() > 1) {
    groups.clear();
    StrTile(level, 0, level.size(), 0, dim_, kMaxEntries, node_key, groups);
    std::vector<uint32_t> next;
    for (const auto& [begin, end] : groups) {
      const uint32_t node = NewNode(/*leaf=*/false);
      nodes_[node].entries.assign(level.begin() + begin,
                                  level.begin() + end);
      for (uint32_t child : nodes_[node].entries) {
        nodes_[child].parent = node;
      }
      RecomputeMbr(node);
      next.push_back(node);
    }
    level = std::move(next);
  }
  root_ = level.front();
}

Status RStarTreeIndex::CheckInvariants() const {
  if (root_ == Node::kNone || data_ == nullptr) {
    return Status::FailedPrecondition("tree not built");
  }
  std::vector<uint8_t> seen(data_->size(), 0);
  size_t leaf_depth = static_cast<size_t>(-1);
  // (node, depth) DFS.
  std::vector<std::pair<uint32_t, size_t>> stack = {{root_, 0}};
  while (!stack.empty()) {
    const auto [node_id, depth] = stack.back();
    stack.pop_back();
    const Node& node = nodes_[node_id];
    if (node.entries.empty()) {
      return Status::Internal(StrFormat("node %u is empty", node_id));
    }
    if (node.entries.size() > node.capacity) {
      return Status::Internal(
          StrFormat("node %u exceeds capacity (%zu > %zu)", node_id,
                    node.entries.size(), node.capacity));
    }
    // MBR must be exactly the union of the entries' rects.
    std::vector<double> expected(2 * dim_);
    for (size_t d = 0; d < dim_; ++d) {
      expected[d] = std::numeric_limits<double>::infinity();
      expected[dim_ + d] = -std::numeric_limits<double>::infinity();
    }
    for (size_t i = 0; i < node.entries.size(); ++i) {
      auto lo = EntryLo(node, i);
      auto hi = EntryHi(node, i);
      for (size_t d = 0; d < dim_; ++d) {
        expected[d] = std::min(expected[d], lo[d]);
        expected[dim_ + d] = std::max(expected[dim_ + d], hi[d]);
      }
    }
    if (expected != node.mbr) {
      return Status::Internal(
          StrFormat("node %u MBR is not the union of its entries", node_id));
    }
    if (node.leaf) {
      if (leaf_depth == static_cast<size_t>(-1)) {
        leaf_depth = depth;
      } else if (leaf_depth != depth) {
        return Status::Internal("leaves at different depths");
      }
      for (uint32_t id : node.entries) {
        if (id >= seen.size()) {
          return Status::Internal(StrFormat("leaf holds bad point id %u", id));
        }
        if (seen[id]++) {
          return Status::Internal(
              StrFormat("point %u appears in two leaves", id));
        }
      }
    } else {
      for (uint32_t child : node.entries) {
        if (nodes_[child].parent != node_id) {
          return Status::Internal(
              StrFormat("child %u has wrong parent pointer", child));
        }
        stack.emplace_back(child, depth + 1);
      }
    }
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    if (!seen[i]) {
      return Status::Internal(StrFormat("point %zu missing from tree", i));
    }
  }
  return Status::OK();
}

uint32_t RStarTreeIndex::NewNode(bool leaf) {
  Node node;
  node.leaf = leaf;
  node.mbr.assign(2 * dim_, 0.0);
  for (size_t d = 0; d < dim_; ++d) {
    node.mbr[d] = std::numeric_limits<double>::infinity();
    node.mbr[dim_ + d] = -std::numeric_limits<double>::infinity();
  }
  nodes_.push_back(std::move(node));
  return static_cast<uint32_t>(nodes_.size() - 1);
}

void RStarTreeIndex::RecomputeMbr(uint32_t node_id) {
  Node& node = nodes_[node_id];
  for (size_t d = 0; d < dim_; ++d) {
    node.mbr[d] = std::numeric_limits<double>::infinity();
    node.mbr[dim_ + d] = -std::numeric_limits<double>::infinity();
  }
  for (size_t i = 0; i < node.entries.size(); ++i) {
    auto lo = EntryLo(node, i);
    auto hi = EntryHi(node, i);
    for (size_t d = 0; d < dim_; ++d) {
      node.mbr[d] = std::min(node.mbr[d], lo[d]);
      node.mbr[dim_ + d] = std::max(node.mbr[dim_ + d], hi[d]);
    }
  }
}

void RStarTreeIndex::ExtendUpward(uint32_t node_id,
                                  std::span<const double> rect) {
  for (uint32_t id = node_id; id != Node::kNone; id = nodes_[id].parent) {
    RectExtend(nodes_[id].mbr, rect, dim_);
  }
}

size_t RStarTreeIndex::LevelOf(uint32_t node_id) const {
  size_t level = 0;
  const Node* node = &nodes_[node_id];
  while (!node->leaf) {
    node = &nodes_[node->entries.front()];
    ++level;
  }
  return level;
}

uint32_t RStarTreeIndex::ChooseSubtree(std::span<const double> rect,
                                       size_t target_level) {
  uint32_t current = root_;
  size_t level = LevelOf(root_);
  std::vector<double> child_rect;
  std::vector<double> other_rect;
  while (level > target_level) {
    const Node& node = nodes_[current];
    const bool children_are_leaves = nodes_[node.entries.front()].leaf;
    size_t best = 0;
    double best_primary = std::numeric_limits<double>::infinity();
    double best_secondary = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node.entries.size(); ++i) {
      EntryRect(node, i, child_rect);
      const double area = RectArea(child_rect, dim_);
      std::vector<double> enlarged = child_rect;
      RectExtend(enlarged, rect, dim_);
      const double enlargement = RectArea(enlarged, dim_) - area;
      double primary;
      if (children_are_leaves) {
        // R*: minimize overlap enlargement against the sibling rects.
        double overlap_before = 0.0;
        double overlap_after = 0.0;
        for (size_t j = 0; j < node.entries.size(); ++j) {
          if (j == i) continue;
          EntryRect(node, j, other_rect);
          overlap_before += RectOverlap(child_rect, other_rect, dim_);
          overlap_after += RectOverlap(enlarged, other_rect, dim_);
        }
        primary = overlap_after - overlap_before;
      } else {
        primary = enlargement;
      }
      const double secondary = children_are_leaves ? enlargement : area;
      if (primary < best_primary ||
          (primary == best_primary && secondary < best_secondary) ||
          (primary == best_primary && secondary == best_secondary &&
           area < best_area)) {
        best_primary = primary;
        best_secondary = secondary;
        best_area = area;
        best = i;
      }
    }
    current = node.entries[best];
    --level;
  }
  return current;
}

void RStarTreeIndex::InsertRect(std::span<const double> rect, uint32_t entry,
                                size_t target_level,
                                std::vector<bool>& reinserted) {
  const uint32_t target = ChooseSubtree(rect, target_level);
  Node& node = nodes_[target];
  node.entries.push_back(entry);
  if (!node.leaf) {
    nodes_[entry].parent = target;
  }
  ExtendUpward(target, rect);
  if (node.entries.size() > node.capacity) {
    HandleOverflow(target, reinserted);
  }
}

void RStarTreeIndex::HandleOverflow(uint32_t node_id,
                                    std::vector<bool>& reinserted) {
  const size_t level = LevelOf(node_id);
  if (node_id != root_ && level < reinserted.size() && !reinserted[level]) {
    reinserted[level] = true;
    ReinsertEntries(node_id, reinserted);
  } else {
    SplitNode(node_id, reinserted);
  }
}

void RStarTreeIndex::ReinsertEntries(uint32_t node_id,
                                     std::vector<bool>& reinserted) {
  const size_t level = LevelOf(node_id);
  std::vector<double> center(dim_);
  {
    const Node& node = nodes_[node_id];
    for (size_t d = 0; d < dim_; ++d) {
      center[d] = 0.5 * (node.mbr[d] + node.mbr[dim_ + d]);
    }
  }
  // Order entries by the distance of their rect center from the node
  // center, farthest first.
  struct Scored {
    size_t pos;
    double dist;
  };
  std::vector<Scored> scored;
  {
    const Node& node = nodes_[node_id];
    scored.reserve(node.entries.size());
    for (size_t i = 0; i < node.entries.size(); ++i) {
      auto lo = EntryLo(node, i);
      auto hi = EntryHi(node, i);
      double dist = 0.0;
      for (size_t d = 0; d < dim_; ++d) {
        const double c = 0.5 * (lo[d] + hi[d]);
        const double delta = c - center[d];
        dist += delta * delta;
      }
      scored.push_back(Scored{i, dist});
    }
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) { return a.dist > b.dist; });
  const size_t remove_count = std::max<size_t>(
      1, static_cast<size_t>(kReinsertFraction *
                             static_cast<double>(scored.size())));

  std::vector<uint32_t> removed;
  removed.reserve(remove_count);
  {
    std::vector<bool> drop(scored.size(), false);
    for (size_t i = 0; i < remove_count; ++i) {
      drop[scored[i].pos] = true;
      removed.push_back(nodes_[node_id].entries[scored[i].pos]);
    }
    Node& node = nodes_[node_id];
    std::vector<uint32_t> kept;
    kept.reserve(node.entries.size() - remove_count);
    for (size_t i = 0; i < node.entries.size(); ++i) {
      if (!drop[i]) kept.push_back(node.entries[i]);
    }
    node.entries = std::move(kept);
  }
  // Tighten this node and its ancestors before reinserting.
  for (uint32_t id = node_id; id != Node::kNone; id = nodes_[id].parent) {
    RecomputeMbr(id);
  }
  // Reinsert, closest first ("close reinsert" per the R* paper evaluation).
  std::reverse(removed.begin(), removed.end());
  std::vector<double> rect;
  for (uint32_t entry : removed) {
    if (nodes_[node_id].leaf) {
      auto p = data_->point(entry);
      rect.assign(p.begin(), p.end());
      rect.insert(rect.end(), p.begin(), p.end());
    } else {
      const Node& child = nodes_[entry];
      rect = child.mbr;
    }
    InsertRect(rect, entry, level, reinserted);
  }
}

RStarTreeIndex::SplitChoice RStarTreeIndex::ChooseSplit(
    const Node& node) const {
  const size_t n = node.entries.size();
  const size_t min_fill = std::max<size_t>(
      1, static_cast<size_t>(0.4 * static_cast<double>(n)));
  SplitChoice best;
  double best_margin_sum = std::numeric_limits<double>::infinity();

  std::vector<uint32_t> order(n);
  std::vector<double> prefix_rect;
  std::vector<double> suffix_rect;
  std::vector<std::vector<double>> prefix(n + 1), suffix(n + 1);

  for (size_t axis = 0; axis < dim_; ++axis) {
    for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      const double alo = EntryLo(node, a)[axis];
      const double blo = EntryLo(node, b)[axis];
      if (alo != blo) return alo < blo;
      return EntryHi(node, a)[axis] < EntryHi(node, b)[axis];
    });
    // Prefix/suffix bounding rects over the sorted order.
    std::vector<double> rect(2 * dim_);
    for (size_t d = 0; d < dim_; ++d) {
      rect[d] = std::numeric_limits<double>::infinity();
      rect[dim_ + d] = -std::numeric_limits<double>::infinity();
    }
    prefix[0] = rect;
    for (size_t i = 0; i < n; ++i) {
      std::vector<double> entry_rect;
      EntryRect(node, order[i], entry_rect);
      RectExtend(rect, entry_rect, dim_);
      prefix[i + 1] = rect;
    }
    for (size_t d = 0; d < dim_; ++d) {
      rect[d] = std::numeric_limits<double>::infinity();
      rect[dim_ + d] = -std::numeric_limits<double>::infinity();
    }
    suffix[n] = rect;
    for (size_t i = n; i-- > 0;) {
      std::vector<double> entry_rect;
      EntryRect(node, order[i], entry_rect);
      RectExtend(rect, entry_rect, dim_);
      suffix[i] = rect;
    }

    // Axis goodness: sum of margins over all legal distributions.
    double margin_sum = 0.0;
    for (size_t k = min_fill; k + min_fill <= n; ++k) {
      margin_sum += RectMargin(prefix[k], dim_) + RectMargin(suffix[k], dim_);
    }
    if (margin_sum >= best_margin_sum) continue;
    best_margin_sum = margin_sum;

    // On the chosen axis pick the distribution with minimal overlap,
    // breaking ties by total area.
    size_t best_k = min_fill;
    double best_overlap = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (size_t k = min_fill; k + min_fill <= n; ++k) {
      const double overlap = RectOverlap(prefix[k], suffix[k], dim_);
      const double area =
          RectArea(prefix[k], dim_) + RectArea(suffix[k], dim_);
      if (overlap < best_overlap ||
          (overlap == best_overlap && area < best_area)) {
        best_overlap = overlap;
        best_area = area;
        best_k = k;
      }
    }
    best.order = order;
    best.boundary = best_k;
    const double area_left = RectArea(prefix[best_k], dim_);
    const double area_right = RectArea(suffix[best_k], dim_);
    const double union_area = area_left + area_right - best_overlap;
    best.overlap_fraction = union_area > 0.0 ? best_overlap / union_area : 0.0;
  }
  return best;
}

void RStarTreeIndex::SplitNode(uint32_t node_id,
                               std::vector<bool>& reinserted) {
  SplitChoice choice = ChooseSplit(nodes_[node_id]);

  // X-tree rule: a directory node whose best split still produces heavy
  // overlap becomes a supernode instead.
  if (!nodes_[node_id].leaf && choice.overlap_fraction > kMaxOverlap) {
    nodes_[node_id].capacity += kMaxEntries;
    return;
  }

  const uint32_t sibling = NewNode(nodes_[node_id].leaf);
  // NewNode may reallocate nodes_, so take the reference afterwards.
  Node& node = nodes_[node_id];
  Node& sib = nodes_[sibling];

  std::vector<uint32_t> left_entries;
  std::vector<uint32_t> right_entries;
  left_entries.reserve(choice.boundary);
  right_entries.reserve(choice.order.size() - choice.boundary);
  for (size_t i = 0; i < choice.order.size(); ++i) {
    const uint32_t entry = node.entries[choice.order[i]];
    if (i < choice.boundary) {
      left_entries.push_back(entry);
    } else {
      right_entries.push_back(entry);
    }
  }
  node.entries = std::move(left_entries);
  sib.entries = std::move(right_entries);
  sib.capacity = kMaxEntries;
  // A split node reverts to normal capacity (the overlap is resolved).
  node.capacity = kMaxEntries;
  if (!node.leaf) {
    for (uint32_t child : sib.entries) nodes_[child].parent = sibling;
  }
  RecomputeMbr(node_id);
  RecomputeMbr(sibling);

  if (node_id == root_) {
    const uint32_t new_root = NewNode(/*leaf=*/false);
    nodes_[new_root].entries = {node_id, sibling};
    nodes_[node_id].parent = new_root;
    nodes_[sibling].parent = new_root;
    RecomputeMbr(new_root);
    root_ = new_root;
    return;
  }

  const uint32_t parent = nodes_[node_id].parent;
  nodes_[sibling].parent = parent;
  nodes_[parent].entries.push_back(sibling);
  // The parent's MBR is unchanged (children cover the same area), but the
  // ancestors of a shrunk node can be tightened.
  for (uint32_t id = parent; id != Node::kNone; id = nodes_[id].parent) {
    RecomputeMbr(id);
  }
  if (nodes_[parent].entries.size() > nodes_[parent].capacity) {
    HandleOverflow(parent, reinserted);
  }
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

Status RStarTreeIndex::Query(std::span<const double> query, size_t k,
                             std::optional<uint32_t> exclude,
                             KnnSearchContext& ctx) const {
  LOFKIT_RETURN_IF_ERROR(CheckQuery(data_, query));
  if (k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  internal_index::KnnCollector collector(k, ctx);
  // Best-first search over nodes ordered by minimum possible rank
  // (squared distance for the L2 family); leaves are scanned with the
  // bounded gather kernel — one indirect call per leaf, early exit
  // against the current kth rank. The min-heap lives in the context's
  // frontier pool (push_heap/pop_heap with greater<> — exactly what
  // std::priority_queue would do, minus the per-query allocation).
  std::vector<std::pair<double, uint32_t>>& queue = ctx.scratch.frontier;
  queue.clear();
  const double* raw = data_->raw().data();
  const uint32_t skip = exclude.has_value() ? *exclude : Node::kNone;
  std::vector<double>& rank = ctx.scratch.rank;
  QueryStats* stats = ctx.stats;
  if (stats != nullptr) ++stats->queries;
  queue.emplace_back(0.0, root_);
  while (!queue.empty()) {
    std::pop_heap(queue.begin(), queue.end(), std::greater<>());
    const auto [min_rank, node_id] = queue.back();
    queue.pop_back();
    if (min_rank > collector.Tau()) break;
    const Node& node = nodes_[node_id];
    if (node.leaf) {
      if (stats != nullptr) {
        ++stats->leaf_visits;
        stats->distance_evals += node.entries.size();
      }
      rank.resize(node.entries.size());
      kern_.rank_gather(kern_.ctx, query.data(), raw, node.entries.data(),
                        node.entries.size(), dim_, collector.Tau(),
                        rank.data());
      for (size_t i = 0; i < node.entries.size(); ++i) {
        if (node.entries[i] == skip) {
          if (stats != nullptr) --stats->distance_evals;
          continue;
        }
        collector.Offer(node.entries[i], rank[i]);
      }
      continue;
    }
    if (stats != nullptr) ++stats->node_visits;
    for (uint32_t child_id : node.entries) {
      const Node& child = nodes_[child_id];
      const double child_rank = metric_->MinRankToBox(
          query, {child.mbr.data(), dim_}, {child.mbr.data() + dim_, dim_});
      if (child_rank <= collector.Tau()) {
        queue.emplace_back(child_rank, child_id);
        std::push_heap(queue.begin(), queue.end(), std::greater<>());
      } else if (stats != nullptr) {
        ++stats->rank_prune_hits;
      }
    }
  }
  collector.TakeInto(ctx.scratch.out);
  internal_index::RanksToDistances(kern_, ctx.scratch.out);
  return Status::OK();
}

Status RStarTreeIndex::QueryRadius(std::span<const double> query,
                                   double radius,
                                   std::optional<uint32_t> exclude,
                                   KnnSearchContext& ctx) const {
  LOFKIT_RETURN_IF_ERROR(CheckQuery(data_, query));
  if (!(radius >= 0.0)) {
    return Status::InvalidArgument("radius must be >= 0");
  }
  std::vector<Neighbor>& result = ctx.scratch.out;
  result.clear();
  std::vector<uint32_t>& stack = ctx.scratch.stack;
  stack.assign(1, root_);
  const double* raw = data_->raw().data();
  const uint32_t skip = exclude.has_value() ? *exclude : Node::kNone;
  const double rank_hi = PruneRankUpperBound(kern_.squared, radius);
  std::vector<double>& rank = ctx.scratch.rank;
  QueryStats* stats = ctx.stats;
  if (stats != nullptr) ++stats->queries;
  while (!stack.empty()) {
    const uint32_t node_id = stack.back();
    stack.pop_back();
    const Node& node = nodes_[node_id];
    if (metric_->MinRankToBox(query, {node.mbr.data(), dim_},
                              {node.mbr.data() + dim_, dim_}) > rank_hi) {
      if (stats != nullptr) ++stats->rank_prune_hits;
      continue;
    }
    if (node.leaf) {
      if (stats != nullptr) {
        ++stats->leaf_visits;
        stats->distance_evals += node.entries.size();
      }
      rank.resize(node.entries.size());
      kern_.rank_gather(kern_.ctx, query.data(), raw, node.entries.data(),
                        node.entries.size(), dim_, rank_hi, rank.data());
      for (size_t i = 0; i < node.entries.size(); ++i) {
        if (node.entries[i] == skip) {
          if (stats != nullptr) --stats->distance_evals;
          continue;
        }
        if (rank[i] > rank_hi) continue;
        const double dist = DistanceFromRank(kern_.squared, rank[i]);
        if (dist <= radius) result.push_back(Neighbor{node.entries[i], dist});
      }
    } else {
      if (stats != nullptr) ++stats->node_visits;
      stack.insert(stack.end(), node.entries.begin(), node.entries.end());
    }
  }
  internal_index::SortNeighbors(result);
  return Status::OK();
}

size_t RStarTreeIndex::supernode_count() const {
  size_t count = 0;
  for (const Node& node : nodes_) {
    if (node.is_supernode()) ++count;
  }
  return count;
}

size_t RStarTreeIndex::height() const {
  if (root_ == Node::kNone) return 0;
  return LevelOf(root_) + 1;
}

}  // namespace lofkit
