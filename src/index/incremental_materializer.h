#ifndef LOFKIT_INDEX_INCREMENTAL_MATERIALIZER_H_
#define LOFKIT_INDEX_INCREMENTAL_MATERIALIZER_H_

#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"
#include "dataset/metric.h"
#include "index/neighborhood_materializer.h"

namespace lofkit {

/// Maintains the materialization database M under point insertions — an
/// implementation of the paper's second ongoing-work direction ("further
/// improve the performance of LOF computation"): instead of re-running the
/// full step-1 materialization after every new observation, only the
/// neighborhoods the new point actually enters are updated.
///
/// Insertion of a point p changes the k_max-distance neighborhood of q iff
/// d(q, p) <= (old) k_max-distance(q); every other stored list is already
/// correct. One pass computes all distances to p, serving both p's own
/// neighborhood and the affected-set test, so an insert costs O(n * d)
/// instead of the O(n * query) of rematerializing — and the result is
/// *exactly* the batch materialization (ties included), which the test
/// suite verifies after every insertion pattern.
///
/// Standard (non-distinct) neighborhoods only. The class owns its dataset;
/// read access is exposed through data().
class IncrementalMaterializer {
 public:
  /// Starts from `data` (must hold at least k_max + 1 points) and builds
  /// the initial M by direct computation.
  static Result<IncrementalMaterializer> Create(Dataset data,
                                                const Metric& metric,
                                                size_t k_max);

  IncrementalMaterializer(IncrementalMaterializer&&) noexcept = default;
  IncrementalMaterializer& operator=(IncrementalMaterializer&&) noexcept =
      default;

  /// Appends one point and updates every affected neighborhood.
  Status Insert(std::span<const double> coordinates,
                const std::string& label = "");

  /// The (growing) dataset.
  const Dataset& data() const { return data_; }

  size_t k_max() const { return k_max_; }

  /// Number of stored lists (== data().size()).
  size_t size() const { return lists_.size(); }

  /// Current neighbor list of point i (sorted by (distance, index), ties
  /// beyond k_max included).
  const std::vector<Neighbor>& neighbors(size_t i) const {
    return lists_[i];
  }

  /// How many neighborhoods the most recent Insert() had to touch
  /// (diagnostic; the whole point is that this is usually << n).
  size_t last_affected_count() const { return last_affected_; }

  /// Arms (or with nullptr disarms) query-cost counting: every Insert()
  /// counts as one query with new_id distance evaluations, plus the
  /// collector's heap pushes. `stats` must outlive the materializer or a
  /// later set_query_stats(nullptr).
  void set_query_stats(QueryStats* stats) { ctx_.stats = stats; }

  /// Materializes a consistent snapshot usable with LofComputer/LofSweep.
  Result<NeighborhoodMaterializer> Snapshot() const;

 private:
  IncrementalMaterializer(Dataset data, const Metric& metric, size_t k_max)
      : data_(std::move(data)),
        metric_(&metric),
        kern_(metric.kernels()),
        k_max_(k_max) {}

  /// Trims `list` to the k_max-distance neighborhood (prefix through the
  /// k_max-th distance, ties kept).
  void Trim(std::vector<Neighbor>& list) const;

  Dataset data_;
  const Metric* metric_;
  DistanceKernels kern_;
  size_t k_max_;
  std::vector<std::vector<Neighbor>> lists_;
  size_t last_affected_ = 0;
  // Reused across Insert() calls so the collector's heap/accepted buffers
  // stop allocating once warm.
  KnnSearchContext ctx_;
};

}  // namespace lofkit

#endif  // LOFKIT_INDEX_INCREMENTAL_MATERIALIZER_H_
