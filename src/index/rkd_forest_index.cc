#include "index/rkd_forest_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/fail_point.h"
#include "common/string_util.h"

namespace lofkit {

namespace {

Status CheckQuery(const Dataset* data, std::span<const double> query) {
  if (data == nullptr) {
    return Status::FailedPrecondition("index queried before Build()");
  }
  if (query.size() != data->dimension()) {
    return Status::InvalidArgument(
        StrFormat("query has dimension %zu, index has %zu", query.size(),
                  data->dimension()));
  }
  return Status::OK();
}

// Sentinel that never equals a real point id (ids are dataset indices,
// and datasets are capped well below 2^32 - 1 points).
constexpr uint32_t kNoSkip = 0xffffffffu;

// The eps slack multiplies MINDIST bounds, which live in rank space: for
// squared-rank metrics a (1 + eps) distance factor is (1 + eps)^2 in rank.
double EpsRankMultiplier(bool squared, double eps) {
  const double m = 1.0 + eps;
  return squared ? m * m : m;
}


}  // namespace

// Per-node accumulation buffers, reused across the whole build so a node
// costs zero allocations once the first one sized them.
struct RkdForestIndex::BuildScratch {
  std::vector<double> sum;                          // per-dim sum
  std::vector<double> sum_sq;                       // per-dim sum of squares
  std::vector<std::pair<double, size_t>> variance;  // (-var, dim) for sorting
};

Status RkdForestIndex::Build(const Dataset& data, const Metric& metric) {
  LOFKIT_FAIL_POINT("index.build");
  if (data.empty()) {
    return Status::InvalidArgument("cannot build index over empty dataset");
  }
  if (options_.trees == 0) {
    return Status::InvalidArgument("rkd_forest requires trees >= 1");
  }
  if (options_.leaf_size == 0) {
    return Status::InvalidArgument("rkd_forest requires leaf_size >= 1");
  }
  if (options_.split_candidates == 0) {
    return Status::InvalidArgument(
        "rkd_forest requires split_candidates >= 1");
  }
  if (!(options_.search.eps >= 0.0)) {
    return Status::InvalidArgument("SearchParams::eps must be >= 0");
  }
  const size_t n = data.size();
  if (options_.trees > (std::numeric_limits<uint32_t>::max() - 1) / n) {
    return Status::InvalidArgument(
        "rkd_forest id arena would overflow 32 bits; lower trees");
  }
  data_ = &data;
  metric_ = &metric;
  dim_ = data.dimension();
  kern_ = metric.kernels();
  nodes_.clear();
  boxes_.clear();
  roots_.clear();
  ids_.resize(options_.trees * n);
  nodes_.reserve(options_.trees * (2 * n / options_.leaf_size + 2));
  BuildScratch scratch;
  scratch.sum.resize(dim_);
  scratch.sum_sq.resize(dim_);
  // Trees are built sequentially with one private RNG each, so the forest
  // is a pure function of (data, seed): bit-identical across runs and
  // unaffected by any query-time thread count.
  for (size_t t = 0; t < options_.trees; ++t) {
    const uint32_t begin = static_cast<uint32_t>(t * n);
    for (size_t i = 0; i < n; ++i) {
      ids_[begin + i] = static_cast<uint32_t>(i);
    }
    Rng rng(options_.seed + 0x9e3779b97f4a7c15ull * (t + 1));
    roots_.push_back(
        BuildNode(begin, static_cast<uint32_t>(begin + n), rng, scratch));
  }
  // Pack every leaf of every tree as its own block-aligned SoA group, so a
  // leaf scan streams contiguous blocks instead of gathering scattered
  // dataset rows. This is the forest's space-for-time trade: trees copies
  // of the coordinates in leaf order.
  PointBlockBuilder builder(data);
  for (Node& node : nodes_) {
    if (!node.is_leaf()) continue;
    node.view_begin = static_cast<uint32_t>(builder.BeginGroup());
    for (uint32_t i = node.begin; i < node.end; ++i) builder.Append(ids_[i]);
  }
  view_ = std::move(builder).Build();
  return Status::OK();
}

namespace {

// Per-node split moments come from a deterministic strided sample of this
// many points (FLANN samples the same way): the draw only needs the rough
// variance ranking, and capping the scan makes a whole tree build
// O(n log n) in point-coordinate touches instead of O(n d log n).
constexpr uint32_t kMomentSampleSize = 128;

}  // namespace

uint32_t RkdForestIndex::BuildNode(uint32_t begin, uint32_t end, Rng& rng,
                                   BuildScratch& scratch) {
  const uint32_t node_id = static_cast<uint32_t>(nodes_.size());
  nodes_.emplace_back();
  const size_t box_offset = boxes_.size();
  boxes_.resize(box_offset + 2 * dim_);
  nodes_[node_id].box_offset = box_offset;
  nodes_[node_id].begin = begin;
  nodes_[node_id].end = end;
  const uint32_t count = end - begin;

  if (count <= options_.leaf_size) {
    // Exact box over the leaf's points; ancestors take unions of these,
    // so only the leaf level pays a full coordinate scan.
    double* lo = boxes_.data() + box_offset;
    double* hi = lo + dim_;
    for (size_t d = 0; d < dim_; ++d) {
      lo[d] = std::numeric_limits<double>::infinity();
      hi[d] = -std::numeric_limits<double>::infinity();
    }
    for (uint32_t i = begin; i < end; ++i) {
      auto p = data_->point(ids_[i]);
      for (size_t d = 0; d < dim_; ++d) {
        lo[d] = std::min(lo[d], p[d]);
        hi[d] = std::max(hi[d], p[d]);
      }
    }
    return node_id;
  }

  // Rank dimensions by sampled variance, deterministically: (-var, dim)
  // sorts highest variance first with ties broken by the lower dimension
  // index. A sample can miss spread a full scan would see, so an empty
  // ranking falls back to exact moments before declaring the range
  // degenerate.
  const uint32_t sample = std::min(count, kMomentSampleSize);
  const uint32_t stride = count / sample;
  for (int pass = 0; pass < 2; ++pass) {
    const bool exact = pass == 1;
    const uint32_t scanned = exact ? count : sample;
    for (size_t d = 0; d < dim_; ++d) {
      scratch.sum[d] = 0.0;
      scratch.sum_sq[d] = 0.0;
    }
    for (uint32_t s = 0; s < scanned; ++s) {
      auto p = data_->point(ids_[begin + (exact ? s : s * stride)]);
      for (size_t d = 0; d < dim_; ++d) {
        scratch.sum[d] += p[d];
        scratch.sum_sq[d] += p[d] * p[d];
      }
    }
    scratch.variance.clear();
    for (size_t d = 0; d < dim_; ++d) {
      const double mean = scratch.sum[d] / scanned;
      const double var = scratch.sum_sq[d] / scanned - mean * mean;
      if (var > 0.0) {
        scratch.variance.emplace_back(-var, d);
      }
    }
    if (!scratch.variance.empty()) break;
  }
  if (scratch.variance.empty()) {
    // All points identical in every dimension: an oversized leaf whose box
    // is that single point.
    double* lo = boxes_.data() + box_offset;
    double* hi = lo + dim_;
    auto p = data_->point(ids_[begin]);
    for (size_t d = 0; d < dim_; ++d) {
      lo[d] = p[d];
      hi[d] = p[d];
    }
    return node_id;
  }
  const size_t candidates =
      std::min(options_.split_candidates, scratch.variance.size());
  std::partial_sort(scratch.variance.begin(),
                    scratch.variance.begin() + candidates,
                    scratch.variance.end());
  const size_t split_dim =
      scratch.variance[rng.UniformU64(candidates)].second;

  const uint32_t mid = begin + count / 2;
  std::nth_element(ids_.begin() + begin, ids_.begin() + mid,
                   ids_.begin() + end, [&](uint32_t a, uint32_t b) {
                     return data_->point(a)[split_dim] <
                            data_->point(b)[split_dim];
                   });
  nodes_[node_id].split_dim = static_cast<uint32_t>(split_dim);
  nodes_[node_id].split_val = data_->point(ids_[mid])[split_dim];
  const uint32_t left = BuildNode(begin, mid, rng, scratch);
  const uint32_t right = BuildNode(mid, end, rng, scratch);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  // This node's box is the union of its children's (boxes_ may have
  // reallocated during recursion, so recompute every pointer).
  double* lo = boxes_.data() + box_offset;
  double* hi = lo + dim_;
  const double* left_lo = boxes_.data() + nodes_[left].box_offset;
  const double* right_lo = boxes_.data() + nodes_[right].box_offset;
  for (size_t d = 0; d < dim_; ++d) {
    lo[d] = std::min(left_lo[d], right_lo[d]);
    hi[d] = std::max(left_lo[dim_ + d], right_lo[dim_ + d]);
  }
  return node_id;
}

void RkdForestIndex::ScanLeaf(const Node& node, std::span<const double> query,
                              uint32_t skip, std::vector<uint32_t>& mark,
                              uint32_t epoch,
                              internal_index::KnnCollector& collector,
                              size_t* examined, QueryStats* stats) const {
  if (stats != nullptr) ++stats->leaf_visits;
  // Whole blocks are ranked unconditionally (contiguous SIMD-able lanes
  // are cheaper than a dedup-then-gather over scattered rows); the
  // epoch-stamped marks then keep the shared check budget honest by
  // charging — and offering — each candidate the first tree visit only.
  const uint32_t count = node.end - node.begin;
  double rank[PointBlockView::kLanes];
  size_t fresh = 0;
  for (uint32_t off = 0; off < count; off += PointBlockView::kLanes) {
    const size_t pos = node.view_begin + off;
    kern_.rank_block(kern_.ctx, query.data(),
                     view_.block(pos / PointBlockView::kLanes), dim_, rank);
    const uint32_t lanes =
        std::min<uint32_t>(PointBlockView::kLanes, count - off);
    for (uint32_t j = 0; j < lanes; ++j) {
      const uint32_t id = view_.id(pos + j);
      if (id == skip || mark[id] == epoch) continue;
      mark[id] = epoch;
      collector.Offer(id, rank[j]);
      ++fresh;
    }
  }
  *examined += fresh;
  if (stats != nullptr) stats->distance_evals += fresh;
}

Status RkdForestIndex::Query(std::span<const double> query, size_t k,
                             std::optional<uint32_t> exclude,
                             KnnSearchContext& ctx) const {
  LOFKIT_RETURN_IF_ERROR(CheckQuery(data_, query));
  if (k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  const size_t n = data_->size();
  QueryStats* stats = ctx.stats;
  if (stats != nullptr) ++stats->queries;

  // Epoch-stamped visited marks: bumping the epoch invalidates every stale
  // mark at once; the array itself is wiped only when it must grow or the
  // 32-bit epoch wraps.
  std::vector<uint32_t>& mark = ctx.scratch.visited_mark;
  if (mark.size() < n) {
    mark.assign(n, 0);
    ctx.scratch.visited_epoch = 0;
  }
  if (++ctx.scratch.visited_epoch == 0) {
    std::fill(mark.begin(), mark.end(), 0);
    ctx.scratch.visited_epoch = 1;
  }
  const uint32_t epoch = ctx.scratch.visited_epoch;
  const uint32_t skip = exclude.has_value() ? *exclude : kNoSkip;

  internal_index::KnnCollector collector(k, ctx);
  const double eps_mult =
      EpsRankMultiplier(kern_.squared, options_.search.eps);
  const size_t checks = options_.search.checks;

  // One shared best-bin-first frontier across every tree: a min-heap of
  // (MINDIST rank, node id) with the node id breaking ties, so the pop
  // order — and therefore every approximate result — is deterministic.
  std::vector<std::pair<double, uint32_t>>& frontier = ctx.scratch.frontier;
  frontier.clear();
  const auto cmp = std::greater<std::pair<double, uint32_t>>();
  for (uint32_t root : roots_) {
    frontier.emplace_back(kern_.rank_box(kern_.ctx, query.data(),
                                         BoxLo(nodes_[root]).data(),
                                         BoxHi(nodes_[root]).data(), dim_),
                          root);
  }
  std::make_heap(frontier.begin(), frontier.end(), cmp);

  size_t examined = 0;
  while (!frontier.empty()) {
    std::pop_heap(frontier.begin(), frontier.end(), cmp);
    const auto [bound, branch] = frontier.back();
    frontier.pop_back();
    if (bound * eps_mult > collector.Tau()) {
      // Min-heap: every remaining branch is at least this far away.
      if (stats != nullptr) stats->rank_prune_hits += frontier.size() + 1;
      break;
    }
    // Descend to the query's leaf, deferring each far sibling with an O(1)
    // admissible priority: the larger of the bound inherited from the
    // popped branch (a lower bound for the whole popped subtree, hence for
    // every deferred descendant) and the rank cost of crossing this split
    // plane alone. Exact O(d) box bounds were measured to buy no recall at
    // a fixed check budget — the frontier order just needs to be sane, and
    // admissibility is what keeps the default exact mode exact.
    uint32_t cur = branch;
    const double inherited = bound;
    while (!nodes_[cur].is_leaf()) {
      if (stats != nullptr) ++stats->node_visits;
      const Node& node = nodes_[cur];
      const double qd = query[node.split_dim];
      const bool left_near = qd < node.split_val;
      const uint32_t far = left_near ? node.right : node.left;
      const double cut =
          kern_.rank_cut(kern_.ctx, qd, node.split_val, node.split_dim);
      const double rank_far = std::max(inherited, cut);
      if (rank_far * eps_mult <= collector.Tau()) {
        frontier.emplace_back(rank_far, far);
        std::push_heap(frontier.begin(), frontier.end(), cmp);
        if (stats != nullptr) ++stats->heap_pushes;
      } else if (stats != nullptr) {
        ++stats->rank_prune_hits;
      }
      cur = left_near ? node.left : node.right;
    }
    ScanLeaf(nodes_[cur], query, skip, mark, epoch, collector, &examined,
             stats);
    // The budget never truncates below a full k-distance neighborhood: the
    // loop runs on while the collector is short of k candidates.
    if (checks != 0 && examined >= checks &&
        collector.Tau() != std::numeric_limits<double>::infinity()) {
      break;
    }
  }
  if (stats != nullptr) stats->checks_used += examined;
  collector.TakeInto(ctx.scratch.out);
  internal_index::RanksToDistances(kern_, ctx.scratch.out);
  return Status::OK();
}

void RkdForestIndex::SearchRadiusNode(uint32_t node_id,
                                      std::span<const double> query,
                                      double radius, double radius_rank_hi,
                                      uint32_t skip,
                                      std::vector<Neighbor>& result,
                                      QueryStats* stats) const {
  const Node& node = nodes_[node_id];
  if (kern_.rank_box(kern_.ctx, query.data(), BoxLo(node).data(),
                     BoxHi(node).data(), dim_) > radius_rank_hi) {
    if (stats != nullptr) ++stats->rank_prune_hits;
    return;
  }
  if (node.is_leaf()) {
    const uint32_t count = node.end - node.begin;
    if (stats != nullptr) {
      ++stats->leaf_visits;
      stats->distance_evals += count;
    }
    double rank[PointBlockView::kLanes];
    for (uint32_t off = 0; off < count; off += PointBlockView::kLanes) {
      const size_t pos = node.view_begin + off;
      kern_.rank_block(kern_.ctx, query.data(),
                       view_.block(pos / PointBlockView::kLanes), dim_, rank);
      const uint32_t lanes =
          std::min<uint32_t>(PointBlockView::kLanes, count - off);
      for (uint32_t j = 0; j < lanes; ++j) {
        const uint32_t id = view_.id(pos + j);
        if (id == skip) {
          if (stats != nullptr) --stats->distance_evals;
          continue;
        }
        if (rank[j] > radius_rank_hi) continue;
        const double dist = DistanceFromRank(kern_.squared, rank[j]);
        if (dist <= radius) result.push_back(Neighbor{id, dist});
      }
    }
    return;
  }
  if (stats != nullptr) ++stats->node_visits;
  SearchRadiusNode(node.left, query, radius, radius_rank_hi, skip, result,
                   stats);
  SearchRadiusNode(node.right, query, radius, radius_rank_hi, skip, result,
                   stats);
}

Status RkdForestIndex::QueryRadius(std::span<const double> query,
                                   double radius,
                                   std::optional<uint32_t> exclude,
                                   KnnSearchContext& ctx) const {
  LOFKIT_RETURN_IF_ERROR(CheckQuery(data_, query));
  if (!(radius >= 0.0)) {
    return Status::InvalidArgument("radius must be >= 0");
  }
  std::vector<Neighbor>& result = ctx.scratch.out;
  result.clear();
  if (ctx.stats != nullptr) ++ctx.stats->queries;
  // Every tree holds every point, so tree 0 alone answers the closed-ball
  // query exactly — radius consumers never see approximation.
  SearchRadiusNode(roots_[0], query, radius,
                   PruneRankUpperBound(kern_.squared, radius),
                   exclude.has_value() ? *exclude : kNoSkip, result,
                   ctx.stats);
  internal_index::SortNeighbors(result);
  return Status::OK();
}

uint64_t RkdForestIndex::StructureDigest() const {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  const auto mix = [&h](uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (value >> (8 * byte)) & 0xffu;
      h *= 0x100000001b3ull;
    }
  };
  mix(roots_.size());
  for (uint32_t root : roots_) mix(root);
  mix(nodes_.size());
  for (const Node& node : nodes_) {
    mix(node.left);
    mix(node.right);
    mix(node.begin);
    mix(node.end);
  }
  for (uint32_t id : ids_) mix(id);
  return h;
}

}  // namespace lofkit
