#ifndef LOFKIT_INDEX_LINEAR_SCAN_INDEX_H_
#define LOFKIT_INDEX_LINEAR_SCAN_INDEX_H_

#include <memory>

#include "dataset/point_block.h"
#include "index/knn_index.h"

namespace lofkit {

/// Exact kNN by sequential scan — the O(n)-per-query fallback the paper
/// prescribes for extremely high-dimensional data (section 7.4), and the
/// reference oracle against which every other engine is tested.
///
/// The scan iterates the dataset's blocked SoA layout (PointBlockView)
/// with the metric's batch rank kernel: no per-pair virtual call, no
/// per-pair span construction, and one sqrt per *reported* neighbor for
/// squared-rank metrics instead of one per candidate. QueryBatch tiles
/// queries over the scan so each SoA block is streamed from memory once
/// per tile of 16 queries instead of once per query.
class LinearScanIndex final : public KnnIndex {
 public:
  LinearScanIndex() = default;

  Status Build(const Dataset& data, const Metric& metric) override;

  using KnnIndex::Query;
  using KnnIndex::QueryRadius;
  Status Query(std::span<const double> query, size_t k,
               std::optional<uint32_t> exclude,
               KnnSearchContext& ctx) const override;
  Status QueryRadius(std::span<const double> query, double radius,
                     std::optional<uint32_t> exclude,
                     KnnSearchContext& ctx) const override;
  Status QueryBatch(std::span<const uint32_t> point_ids, size_t k,
                    KnnSearchContext& ctx) const override;
  const Dataset* dataset() const override { return data_; }
  std::string_view name() const override { return "linear_scan"; }

 private:
  const Dataset* data_ = nullptr;
  const Metric* metric_ = nullptr;
  std::shared_ptr<const PointBlockView> view_;
  DistanceKernels kern_;
};

}  // namespace lofkit

#endif  // LOFKIT_INDEX_LINEAR_SCAN_INDEX_H_
