#ifndef LOFKIT_INDEX_KD_TREE_INDEX_H_
#define LOFKIT_INDEX_KD_TREE_INDEX_H_

#include <vector>

#include "dataset/point_block.h"
#include "index/knn_index.h"

namespace lofkit {

/// Exact kNN via a bulk-loaded KD-tree with per-node bounding boxes — a
/// standard main-memory engine for the paper's "medium dimensional" regime.
///
/// Build() recursively splits on the widest dimension at the median (leaf
/// size 16) and stores each node's true bounding box, so pruning uses the
/// metric's MinRankToBox and is valid for every Metric implementation.
/// Traversal runs entirely in rank space (squared distances for the L2
/// family); leaves are packed into a block-aligned PointBlockView and
/// scanned with the metric's batch rank kernel instead of per-pair
/// virtual calls.
class KdTreeIndex final : public KnnIndex {
 public:
  KdTreeIndex() = default;

  Status Build(const Dataset& data, const Metric& metric) override;

  using KnnIndex::Query;
  using KnnIndex::QueryRadius;
  Status Query(std::span<const double> query, size_t k,
               std::optional<uint32_t> exclude,
               KnnSearchContext& ctx) const override;
  Status QueryRadius(std::span<const double> query, double radius,
                     std::optional<uint32_t> exclude,
                     KnnSearchContext& ctx) const override;
  const Dataset* dataset() const override { return data_; }
  std::string_view name() const override { return "kd_tree"; }

  /// Number of tree nodes (for tests).
  size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    // Bounding box of the points under this node, laid out in boxes_
    // starting at box_offset (d mins followed by d maxs).
    size_t box_offset = 0;
    // Children; kNone for leaves.
    uint32_t left = kNone;
    uint32_t right = kNone;
    // Point-id range [begin, end) in ids_ (leaves only).
    uint32_t begin = 0;
    uint32_t end = 0;
    // First lane position of this leaf's block-aligned group in view_.
    uint32_t view_begin = 0;

    static constexpr uint32_t kNone = 0xffffffffu;
    bool is_leaf() const { return left == kNone; }
  };

  uint32_t BuildNode(uint32_t begin, uint32_t end);
  void SearchNode(uint32_t node_id, std::span<const double> query,
                  std::optional<uint32_t> exclude,
                  internal_index::KnnCollector& collector,
                  QueryStats* stats) const;
  void SearchRadius(uint32_t node_id, std::span<const double> query,
                    double radius, double radius_rank_hi,
                    std::optional<uint32_t> exclude,
                    std::vector<Neighbor>& result, QueryStats* stats) const;
  std::span<const double> BoxLo(const Node& node) const {
    return {boxes_.data() + node.box_offset, dim_};
  }
  std::span<const double> BoxHi(const Node& node) const {
    return {boxes_.data() + node.box_offset + dim_, dim_};
  }

  static constexpr uint32_t kLeafSize = 16;

  const Dataset* data_ = nullptr;
  const Metric* metric_ = nullptr;
  size_t dim_ = 0;
  std::vector<Node> nodes_;
  std::vector<double> boxes_;
  std::vector<uint32_t> ids_;
  uint32_t root_ = Node::kNone;
  // Leaf points packed one block-aligned group per leaf, plus the
  // non-virtual kernels fetched at Build().
  PointBlockView view_;
  DistanceKernels kern_;
};

}  // namespace lofkit

#endif  // LOFKIT_INDEX_KD_TREE_INDEX_H_
