#include "index/m_tree_index.h"

#include <algorithm>
#include <cmath>

#include "common/fail_point.h"
#include "common/string_util.h"

namespace lofkit {

namespace {

Status CheckQuery(const Dataset* data, std::span<const double> query) {
  if (data == nullptr) {
    return Status::FailedPrecondition("index queried before Build()");
  }
  if (query.size() != data->dimension()) {
    return Status::InvalidArgument(
        StrFormat("query has dimension %zu, index has %zu", query.size(),
                  data->dimension()));
  }
  return Status::OK();
}

}  // namespace

double MTreeIndex::Distance(uint32_t a, uint32_t b) const {
  return DistanceFromRank(
      kern_.squared, kern_.rank_one(kern_.ctx, data_->point(a).data(),
                                    data_->point(b).data(),
                                    data_->dimension()));
}

double MTreeIndex::DistanceToQuery(std::span<const double> q,
                                   uint32_t object) const {
  return DistanceFromRank(
      kern_.squared, kern_.rank_one(kern_.ctx, q.data(),
                                    data_->point(object).data(),
                                    data_->dimension()));
}

uint32_t MTreeIndex::RoutingObjectOf(uint32_t node_id) const {
  const Node& node = nodes_[node_id];
  if (node.parent == kNone) return kNone;
  return nodes_[node.parent].entries[node.parent_slot].object;
}

Status MTreeIndex::Build(const Dataset& data, const Metric& metric) {
  LOFKIT_FAIL_POINT("index.build");
  if (data.empty()) {
    return Status::InvalidArgument("cannot build index over empty dataset");
  }
  data_ = &data;
  metric_ = &metric;
  kern_ = metric.kernels();
  nodes_.clear();
  nodes_.push_back(Node{});  // leaf root
  root_ = 0;

  for (uint32_t id = 0; id < data.size(); ++id) {
    const uint32_t leaf_id = ChooseLeaf(id);
    Node& leaf = nodes_[leaf_id];
    Entry entry;
    entry.object = id;
    const uint32_t routing = RoutingObjectOf(leaf_id);
    entry.parent_distance = routing == kNone ? 0.0 : Distance(id, routing);
    leaf.entries.push_back(entry);
    if (leaf.entries.size() > kMaxEntries) {
      Split(leaf_id);
    }
  }
  return Status::OK();
}

uint32_t MTreeIndex::ChooseLeaf(uint32_t id) {
  uint32_t current = root_;
  while (!nodes_[current].leaf) {
    Node& node = nodes_[current];
    // Prefer an entry already covering the point (minimal distance);
    // otherwise minimize the radius enlargement.
    size_t best = 0;
    double best_key = std::numeric_limits<double>::infinity();
    bool best_covers = false;
    double best_distance = 0.0;
    for (size_t i = 0; i < node.entries.size(); ++i) {
      const double dist = Distance(id, node.entries[i].object);
      const bool covers = dist <= node.entries[i].radius;
      const double key = covers ? dist : dist - node.entries[i].radius;
      if ((covers && !best_covers) ||
          (covers == best_covers && key < best_key)) {
        best = i;
        best_key = key;
        best_covers = covers;
        best_distance = dist;
      }
    }
    Entry& chosen = node.entries[best];
    chosen.radius = std::max(chosen.radius, best_distance);
    current = chosen.child;
  }
  return current;
}

void MTreeIndex::Split(uint32_t node_id) {
  // Work on a copy of the entries; the node will be rebuilt.
  std::vector<Entry> entries = std::move(nodes_[node_id].entries);
  const bool is_leaf = nodes_[node_id].leaf;

  // Promotion (mM_RAD flavor): first promoted = entry farthest from the
  // old routing object (fall back to entry 0), second = farthest from the
  // first.
  const uint32_t old_routing = RoutingObjectOf(node_id);
  size_t first = 0;
  if (old_routing != kNone) {
    double farthest = -1.0;
    for (size_t i = 0; i < entries.size(); ++i) {
      const double dist = Distance(entries[i].object, old_routing);
      if (dist > farthest) {
        farthest = dist;
        first = i;
      }
    }
  }
  size_t second = first == 0 ? 1 : 0;
  {
    double farthest = -1.0;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (i == first) continue;
      const double dist = Distance(entries[i].object, entries[first].object);
      if (dist > farthest) {
        farthest = dist;
        second = i;
      }
    }
  }
  const uint32_t promoted[2] = {entries[first].object,
                                entries[second].object};

  // Generalized hyperplane partition.
  const uint32_t sibling_id = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[sibling_id].leaf = is_leaf;
  Node& node = nodes_[node_id];
  Node& sibling = nodes_[sibling_id];
  node.entries.clear();

  double radius[2] = {0.0, 0.0};
  for (size_t i = 0; i < entries.size(); ++i) {
    Entry entry = entries[i];
    const double d0 = Distance(entry.object, promoted[0]);
    const double d1 = Distance(entry.object, promoted[1]);
    const int side = (i == first) ? 0 : (i == second) ? 1 : (d0 <= d1 ? 0 : 1);
    entry.parent_distance = side == 0 ? d0 : d1;
    const double reach =
        entry.parent_distance + (is_leaf ? 0.0 : entry.radius);
    radius[side] = std::max(radius[side], reach);
    Node& target = side == 0 ? node : sibling;
    if (!is_leaf) {
      nodes_[entry.child].parent = side == 0 ? node_id : sibling_id;
      nodes_[entry.child].parent_slot =
          static_cast<uint32_t>(target.entries.size());
    }
    target.entries.push_back(entry);
  }

  if (node_id == root_) {
    const uint32_t new_root = static_cast<uint32_t>(nodes_.size());
    nodes_.push_back(Node{});
    Node& root = nodes_[new_root];
    root.leaf = false;
    for (int side = 0; side < 2; ++side) {
      Entry entry;
      entry.object = promoted[side];
      entry.child = side == 0 ? node_id : sibling_id;
      entry.radius = radius[side];
      entry.parent_distance = 0.0;  // the root has no routing object
      root.entries.push_back(entry);
    }
    nodes_[node_id].parent = new_root;
    nodes_[node_id].parent_slot = 0;
    nodes_[sibling_id].parent = new_root;
    nodes_[sibling_id].parent_slot = 1;
    root_ = new_root;
    return;
  }

  // Replace this node's entry in the parent and append one for the
  // sibling.
  const uint32_t parent_id = nodes_[node_id].parent;
  Node& parent = nodes_[parent_id];
  const uint32_t parent_routing = RoutingObjectOf(parent_id);
  Entry& slot = parent.entries[nodes_[node_id].parent_slot];
  slot.object = promoted[0];
  slot.radius = radius[0];
  slot.parent_distance =
      parent_routing == kNone ? 0.0 : Distance(promoted[0], parent_routing);

  Entry sibling_entry;
  sibling_entry.object = promoted[1];
  sibling_entry.child = sibling_id;
  sibling_entry.radius = radius[1];
  sibling_entry.parent_distance =
      parent_routing == kNone ? 0.0 : Distance(promoted[1], parent_routing);
  nodes_[sibling_id].parent = parent_id;
  nodes_[sibling_id].parent_slot =
      static_cast<uint32_t>(parent.entries.size());
  parent.entries.push_back(sibling_entry);

  // The parent's own covering radius (and its ancestors') may have to
  // grow: recompute along the path to the root.
  for (uint32_t walk = parent_id; walk != root_;) {
    const uint32_t up = nodes_[walk].parent;
    Entry& up_entry = nodes_[up].entries[nodes_[walk].parent_slot];
    double max_reach = 0.0;
    for (const Entry& e : nodes_[walk].entries) {
      const double reach = Distance(up_entry.object, e.object) +
                           (nodes_[walk].leaf ? 0.0 : e.radius);
      max_reach = std::max(max_reach, reach);
    }
    up_entry.radius = std::max(up_entry.radius, max_reach);
    walk = up;
  }

  if (parent.entries.size() > kMaxEntries) {
    Split(parent_id);
  }
}

Status MTreeIndex::Query(std::span<const double> query, size_t k,
                         std::optional<uint32_t> exclude,
                         KnnSearchContext& ctx) const {
  LOFKIT_RETURN_IF_ERROR(CheckQuery(data_, query));
  if (k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  internal_index::KnnCollector collector(k, ctx);

  // Best-first over (dmin, node, d(q, routing of node)); the routing
  // distance powers the parent-distance pruning inside the node. The
  // min-heap lives in the context's keyed-frontier pool (key = dmin,
  // aux = routing distance, NaN for the root) and is driven with
  // push_heap/pop_heap — exactly what std::priority_queue would do,
  // minus the per-query allocation.
  using KeyedNode = KnnSearchContext::Scratch::KeyedNode;
  const auto dmin_greater = [](const KeyedNode& a, const KeyedNode& b) {
    return a.key > b.key;
  };
  std::vector<KeyedNode>& queue = ctx.scratch.keyed_frontier;
  queue.clear();
  queue.push_back({0.0, root_, std::numeric_limits<double>::quiet_NaN()});

  QueryStats* stats = ctx.stats;
  if (stats != nullptr) ++stats->queries;
  while (!queue.empty()) {
    std::pop_heap(queue.begin(), queue.end(), dmin_greater);
    const KeyedNode top = queue.back();
    queue.pop_back();
    if (top.key > collector.Tau()) break;
    const Node& node = nodes_[top.node];
    if (stats != nullptr) {
      if (node.leaf) {
        ++stats->leaf_visits;
      } else {
        ++stats->node_visits;
      }
    }
    const bool have_routing = !std::isnan(top.aux);
    for (const Entry& entry : node.entries) {
      // Triangle-inequality pruning without a distance computation:
      // |d(q, routing) - d(object, routing)| lower-bounds d(q, object).
      if (have_routing) {
        const double lower =
            std::abs(top.aux - entry.parent_distance) -
            (node.leaf ? 0.0 : entry.radius);
        if (lower > collector.Tau()) {
          if (stats != nullptr) ++stats->rank_prune_hits;
          continue;
        }
      }
      if (node.leaf) {
        if (exclude.has_value() && *exclude == entry.object) continue;
        // The collector's tau is a distance here (the M-tree's pruning is
        // metric-general), so the early-exit bound widens it conservatively
        // into rank space; a kernel bail-out maps to +inf, which Offer
        // rejects just as the exact distance would be.
        if (stats != nullptr) ++stats->distance_evals;
        const double rank = kern_.rank_bounded(
            kern_.ctx, query.data(), data_->point(entry.object).data(),
            query.size(),
            PruneRankUpperBound(kern_.squared, collector.Tau()));
        collector.Offer(entry.object, DistanceFromRank(kern_.squared, rank));
      } else {
        if (stats != nullptr) ++stats->distance_evals;
        const double dist = DistanceToQuery(query, entry.object);
        const double dmin = std::max(0.0, dist - entry.radius);
        if (dmin <= collector.Tau()) {
          queue.push_back({dmin, entry.child, dist});
          std::push_heap(queue.begin(), queue.end(), dmin_greater);
        } else if (stats != nullptr) {
          ++stats->rank_prune_hits;
        }
      }
    }
  }
  collector.TakeInto(ctx.scratch.out);
  return Status::OK();
}

Status MTreeIndex::QueryRadius(std::span<const double> query, double radius,
                               std::optional<uint32_t> exclude,
                               KnnSearchContext& ctx) const {
  LOFKIT_RETURN_IF_ERROR(CheckQuery(data_, query));
  if (!(radius >= 0.0)) {
    return Status::InvalidArgument("radius must be >= 0");
  }
  std::vector<Neighbor>& result = ctx.scratch.out;
  result.clear();
  std::vector<uint32_t>& stack = ctx.scratch.stack;
  stack.assign(1, root_);
  QueryStats* stats = ctx.stats;
  if (stats != nullptr) ++stats->queries;
  while (!stack.empty()) {
    const uint32_t node_id = stack.back();
    stack.pop_back();
    const Node& node = nodes_[node_id];
    if (stats != nullptr) {
      if (node.leaf) {
        ++stats->leaf_visits;
      } else {
        ++stats->node_visits;
      }
    }
    for (const Entry& entry : node.entries) {
      if (node.leaf) {
        if (exclude.has_value() && *exclude == entry.object) continue;
        if (stats != nullptr) ++stats->distance_evals;
        const double rank = kern_.rank_bounded(
            kern_.ctx, query.data(), data_->point(entry.object).data(),
            query.size(), PruneRankUpperBound(kern_.squared, radius));
        const double dist = DistanceFromRank(kern_.squared, rank);
        if (dist <= radius) result.push_back(Neighbor{entry.object, dist});
      } else {
        if (stats != nullptr) ++stats->distance_evals;
        const double dist = DistanceToQuery(query, entry.object);
        if (dist - entry.radius <= radius) {
          stack.push_back(entry.child);
        } else if (stats != nullptr) {
          ++stats->rank_prune_hits;
        }
      }
    }
  }
  internal_index::SortNeighbors(result);
  return Status::OK();
}

size_t MTreeIndex::height() const {
  if (root_ == kNone) return 0;
  size_t levels = 1;
  uint32_t current = root_;
  while (!nodes_[current].leaf) {
    current = nodes_[current].entries.front().child;
    ++levels;
  }
  return levels;
}

Status MTreeIndex::CheckInvariants() const {
  if (root_ == kNone || data_ == nullptr) {
    return Status::FailedPrecondition("tree not built");
  }
  std::vector<uint8_t> seen(data_->size(), 0);
  // DFS carrying (node, routing object or kNone).
  std::vector<std::pair<uint32_t, uint32_t>> stack = {{root_, kNone}};
  while (!stack.empty()) {
    const auto [node_id, routing] = stack.back();
    stack.pop_back();
    const Node& node = nodes_[node_id];
    if (node.entries.empty()) {
      return Status::Internal(StrFormat("node %u is empty", node_id));
    }
    for (size_t i = 0; i < node.entries.size(); ++i) {
      const Entry& entry = node.entries[i];
      if (routing != kNone) {
        const double expected = Distance(entry.object, routing);
        if (std::abs(entry.parent_distance - expected) > 1e-9) {
          return Status::Internal(
              StrFormat("stale parent distance in node %u", node_id));
        }
      }
      if (node.leaf) {
        if (entry.object >= seen.size() || seen[entry.object]++) {
          return Status::Internal(
              StrFormat("point %u missing or duplicated", entry.object));
        }
      } else {
        const Node& child = nodes_[entry.child];
        if (child.parent != node_id ||
            child.parent_slot != static_cast<uint32_t>(i)) {
          return Status::Internal("broken parent linkage");
        }
        // Covering invariant (the one queries rely on): every *point*
        // stored anywhere below this entry lies within its radius of the
        // routing object. Insertion-path updates maintain exactly this
        // point form, not the stronger compositional
        // d(routing, sub) + sub.radius bound.
        std::vector<uint32_t> subtree = {entry.child};
        while (!subtree.empty()) {
          const Node& walk = nodes_[subtree.back()];
          subtree.pop_back();
          for (const Entry& sub : walk.entries) {
            if (walk.leaf) {
              if (Distance(entry.object, sub.object) >
                  entry.radius + 1e-9) {
                return Status::Internal(
                    StrFormat("covering radius violated at node %u",
                              entry.child));
              }
            } else {
              subtree.push_back(sub.child);
            }
          }
        }
        stack.emplace_back(entry.child, entry.object);
      }
    }
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    if (!seen[i]) {
      return Status::Internal(StrFormat("point %zu missing from tree", i));
    }
  }
  return Status::OK();
}

}  // namespace lofkit
