#ifndef LOFKIT_INDEX_NEIGHBORHOOD_MATERIALIZER_H_
#define LOFKIT_INDEX_NEIGHBORHOOD_MATERIALIZER_H_

#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "index/knn_index.h"

namespace lofkit {

/// The materialization database "M" of the paper's two-step algorithm
/// (section 7.4): for every point, its k_max-distance neighborhood (ties
/// included) with distances, stored flat and sorted by (distance, index).
///
/// Step 2 of the algorithm (LOF computation for any MinPts in
/// [MinPtsLB, MinPtsUB] with MinPtsUB == k_max) needs only this structure,
/// never the original coordinates — which is why its size is independent of
/// the data dimensionality, exactly as the paper notes.
///
/// With `distinct_neighbors` (the k-distinct-distance refinement from the
/// remark below Definition 6), only neighbors with pairwise-distinct
/// coordinates count toward k, so a point with many duplicates still gets a
/// positive k-distance; the neighborhood itself still contains every point
/// within that distance, duplicates included.
class NeighborhoodMaterializer {
 public:
  /// Runs step 1: one kNN query per point against `index` (which must
  /// already be built over `data` — the same Dataset instance). Requires
  /// 1 <= k_max < data.size(). `observer`, when armed, receives the query
  /// cost counters of the whole pass and per-chunk trace spans; the default
  /// observer disables both with zero overhead.
  ///
  /// `stop` is polled at chunk boundaries; a tripped token returns its
  /// latched kCancelled / kDeadlineExceeded status. A non-zero
  /// `memory_budget_bytes` is compared against ProjectedBytes(n, k_max)
  /// before any query runs; a projected overflow returns
  /// kResourceExhausted so the caller can degrade to the re-query path
  /// instead of materializing.
  static Result<NeighborhoodMaterializer> Materialize(
      const Dataset& data, const KnnIndex& index, size_t k_max,
      bool distinct_neighbors = false,
      const PipelineObserver& observer = {}, const StopToken& stop = {},
      size_t memory_budget_bytes = 0);

  /// Parallel step 1: the n queries are embarrassingly parallel (every
  /// KnnIndex implementation is stateless per query), so they are sharded
  /// over `threads` workers with ParallelFor's deterministic chunking.
  /// Produces bit-identical results to the serial Materialize. threads == 0
  /// means one worker per hardware thread; 1 falls back to the serial path.
  /// A failed query aborts the other workers early (at their next point)
  /// and its error is propagated instead of being swallowed. Query-cost
  /// counters accumulate into per-worker shards and are summed after the
  /// join, so observer totals are identical at every thread count.
  /// `stop` and `memory_budget_bytes` behave exactly as in Materialize;
  /// the token additionally aborts the other workers at their next chunk.
  static Result<NeighborhoodMaterializer> MaterializeParallel(
      const Dataset& data, const KnnIndex& index, size_t k_max,
      size_t threads, bool distinct_neighbors = false,
      const PipelineObserver& observer = {}, const StopToken& stop = {},
      size_t memory_budget_bytes = 0);

  /// Lower bound on the resident size of M for n points at k_max, in bytes:
  /// the flat neighbor array at exactly k_max entries per point plus the
  /// offsets table. Ties and distinct-mode growth can push the real size
  /// higher, so a budget decision made on this estimate is optimistic — but
  /// it is available before any query runs, which is what the
  /// materialize-vs-requery degradation decision needs.
  static size_t ProjectedBytes(size_t n, size_t k_max) {
    return n * k_max * sizeof(Neighbor) + (n + 1) * sizeof(size_t);
  }

  NeighborhoodMaterializer(NeighborhoodMaterializer&&) noexcept = default;
  NeighborhoodMaterializer& operator=(NeighborhoodMaterializer&&) noexcept =
      default;

  /// Number of points. A default-constructed or moved-from instance has an
  /// empty offsets_ table; without the guard the unsigned subtraction would
  /// wrap to SIZE_MAX.
  size_t size() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }

  /// The k the neighborhoods were materialized for (== MinPtsUB).
  size_t k_max() const { return k_max_; }

  /// Whether k-distinct-distance counting is in effect.
  bool distinct_neighbors() const { return distinct_; }

  /// Full stored neighbor list of point i, sorted by (distance, index).
  std::span<const Neighbor> neighbors(size_t i) const {
    return {flat_.data() + offsets_[i],
            offsets_[i + 1] - offsets_[i]};
  }

  /// The k-distance of point i together with its k-distance neighborhood
  /// N_k(i) (Definitions 3 and 4), as a prefix of neighbors(i).
  struct KView {
    double k_distance = 0.0;
    std::span<const Neighbor> neighborhood;
  };

  /// Computes the view for 1 <= k <= k_max. Fails with OutOfRange when k
  /// exceeds k_max or the number of (distinct, in distinct mode) neighbors.
  Result<KView> View(size_t i, size_t k) const;

  /// Total stored neighbor entries (the size of M; n * k_max plus ties).
  size_t total_neighbor_count() const { return flat_.size(); }

  /// Persists M to a binary file. The paper's step 2 works entirely from
  /// this file-resident database ("the materialization database M ... The
  /// original database D is not needed for this step"); saving and
  /// reloading M lets the expensive step 1 be paid once per dataset.
  Status SaveToFile(const std::string& path) const;

  /// Loads a materialization database written by SaveToFile. A
  /// distinct-neighbors M additionally needs the original dataset for its
  /// coordinate comparisons; pass it via `data` (must be the same dataset,
  /// checked by size). Neighbor lists are structurally validated on load
  /// (index range, finite non-negative distances, (distance, index)
  /// sortedness — the same invariants FromLists enforces), so a corrupt
  /// file is rejected instead of silently mis-scoring later.
  static Result<NeighborhoodMaterializer> LoadFromFile(
      const std::string& path, const Dataset* data = nullptr);

  /// Assembles an M from externally maintained neighbor lists (used by the
  /// incremental maintenance layer). Each list must be the full
  /// k_max-distance neighborhood of its point, sorted by
  /// (distance, index); this is validated structurally (sortedness, list
  /// length, index range) but semantic correctness is the caller's
  /// contract. `data` may be null in standard mode.
  static Result<NeighborhoodMaterializer> FromLists(
      size_t k_max, bool distinct_neighbors, const Dataset* data,
      const std::vector<std::vector<Neighbor>>& lists);

 private:
  NeighborhoodMaterializer(size_t k_max, bool distinct)
      : k_max_(k_max), distinct_(distinct) {}

  size_t k_max_;
  bool distinct_;
  const Dataset* data_ = nullptr;  // needed for distinct-mode comparisons
  std::vector<size_t> offsets_;
  std::vector<Neighbor> flat_;
};

}  // namespace lofkit

#endif  // LOFKIT_INDEX_NEIGHBORHOOD_MATERIALIZER_H_
