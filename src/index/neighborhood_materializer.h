#ifndef LOFKIT_INDEX_NEIGHBORHOOD_MATERIALIZER_H_
#define LOFKIT_INDEX_NEIGHBORHOOD_MATERIALIZER_H_

#include <memory>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/container_file.h"
#include "common/result.h"
#include "index/knn_index.h"

namespace lofkit {

/// The materialization database "M" of the paper's two-step algorithm
/// (section 7.4): for every point, its k_max-distance neighborhood (ties
/// included) with distances, stored flat and sorted by (distance, index).
///
/// Step 2 of the algorithm (LOF computation for any MinPts in
/// [MinPtsLB, MinPtsUB] with MinPtsUB == k_max) needs only this structure,
/// never the original coordinates — which is why its size is independent of
/// the data dimensionality, exactly as the paper notes.
///
/// M can be backed two ways, invisible to every consumer (all accessors go
/// through spans): by RAM vectors (Materialize/FromLists/LoadFromFile), or
/// zero-copy by a memory-mapped container file (MapFromFile — the paper's
/// file-resident M, served straight from the page cache). The mapped form
/// is what makes the memory budget's spill rung possible: MaterializeToFile
/// streams step 1 to disk in bounded windows, MapFromFile serves it back
/// without ever holding flat_ in RAM, and scores come out bit-identical.
///
/// With `distinct_neighbors` (the k-distinct-distance refinement from the
/// remark below Definition 6), only neighbors with pairwise-distinct
/// coordinates count toward k, so a point with many duplicates still gets a
/// positive k-distance; the neighborhood itself still contains every point
/// within that distance, duplicates included.
class NeighborhoodMaterializer {
 public:
  /// Runs step 1: one kNN query per point against `index` (which must
  /// already be built over `data` — the same Dataset instance). Requires
  /// 1 <= k_max < data.size(). `observer`, when armed, receives the query
  /// cost counters of the whole pass and per-chunk trace spans; the default
  /// observer disables both with zero overhead.
  ///
  /// `stop` is polled at chunk boundaries; a tripped token returns its
  /// latched kCancelled / kDeadlineExceeded status. A non-zero
  /// `memory_budget_bytes` is compared against ProjectedBytes(n, k_max)
  /// before any query runs; a projected overflow returns
  /// kResourceExhausted so the caller can degrade to the spill or re-query
  /// path instead of materializing.
  static Result<NeighborhoodMaterializer> Materialize(
      const Dataset& data, const KnnIndex& index, size_t k_max,
      bool distinct_neighbors = false,
      const PipelineObserver& observer = {}, const StopToken& stop = {},
      size_t memory_budget_bytes = 0);

  /// Parallel step 1: the n queries are embarrassingly parallel (every
  /// KnnIndex implementation is stateless per query), so they are sharded
  /// over `threads` workers with ParallelFor's deterministic chunking.
  /// Produces bit-identical results to the serial Materialize. threads == 0
  /// means one worker per hardware thread; 1 falls back to the serial path.
  /// A failed query aborts the other workers early (at their next point)
  /// and its error is propagated instead of being swallowed. Query-cost
  /// counters accumulate into per-worker shards and are summed after the
  /// join, so observer totals are identical at every thread count.
  /// `stop` and `memory_budget_bytes` behave exactly as in Materialize;
  /// the token additionally aborts the other workers at their next chunk.
  static Result<NeighborhoodMaterializer> MaterializeParallel(
      const Dataset& data, const KnnIndex& index, size_t k_max,
      size_t threads, bool distinct_neighbors = false,
      const PipelineObserver& observer = {}, const StopToken& stop = {},
      size_t memory_budget_bytes = 0);

  /// The spill rung of the memory-budget ladder: runs step 1 in bounded
  /// windows of points (parallel queries inside each window, identical
  /// chunking to MaterializeParallel, so the produced M is bit-identical)
  /// and streams the neighbor lists straight into a container file at
  /// `path` instead of accumulating them in RAM. Peak residency is one
  /// window of lists plus the offsets table — independent of n * k_max.
  /// The file is published crash-safely (tmp + fsync + rename) and is
  /// ready for MapFromFile. Works in distinct mode too.
  static Status MaterializeToFile(
      const Dataset& data, const KnnIndex& index, size_t k_max,
      size_t threads, bool distinct_neighbors, const std::string& path,
      const PipelineObserver& observer = {}, const StopToken& stop = {});

  /// Lower bound on the resident size of M for n points at k_max, in bytes:
  /// the flat neighbor array at exactly k_max entries per point plus the
  /// offsets table. Ties and distinct-mode growth can push the real size
  /// higher, so a budget decision made on this estimate is optimistic — but
  /// it is available before any query runs, which is what the
  /// materialize-vs-spill-vs-requery degradation decision needs.
  static size_t ProjectedBytes(size_t n, size_t k_max) {
    return n * k_max * sizeof(Neighbor) + (n + 1) * sizeof(size_t);
  }

  NeighborhoodMaterializer(NeighborhoodMaterializer&& other) noexcept
      : k_max_(other.k_max_),
        distinct_(other.distinct_),
        data_(other.data_),
        offsets_(std::move(other.offsets_)),
        flat_(std::move(other.flat_)),
        container_(std::move(other.container_)),
        offsets_view_(std::exchange(other.offsets_view_, {})),
        flat_view_(std::exchange(other.flat_view_, {})) {}
  NeighborhoodMaterializer& operator=(
      NeighborhoodMaterializer&& other) noexcept {
    if (this != &other) {
      k_max_ = other.k_max_;
      distinct_ = other.distinct_;
      data_ = other.data_;
      offsets_ = std::move(other.offsets_);
      flat_ = std::move(other.flat_);
      container_ = std::move(other.container_);
      offsets_view_ = std::exchange(other.offsets_view_, {});
      flat_view_ = std::exchange(other.flat_view_, {});
    }
    return *this;
  }

  /// Number of points. A default-constructed or moved-from instance has an
  /// empty offsets view; without the guard the unsigned subtraction would
  /// wrap to SIZE_MAX.
  size_t size() const {
    return offsets_view_.empty() ? 0 : offsets_view_.size() - 1;
  }

  /// The k the neighborhoods were materialized for (== MinPtsUB).
  size_t k_max() const { return k_max_; }

  /// Whether k-distinct-distance counting is in effect.
  bool distinct_neighbors() const { return distinct_; }

  /// True when this M is served zero-copy from a memory-mapped container
  /// file (MapFromFile) rather than RAM vectors.
  bool file_backed() const { return container_ != nullptr; }

  /// Full stored neighbor list of point i, sorted by (distance, index).
  std::span<const Neighbor> neighbors(size_t i) const {
    return flat_view_.subspan(offsets_view_[i],
                              offsets_view_[i + 1] - offsets_view_[i]);
  }

  /// The k-distance of point i together with its k-distance neighborhood
  /// N_k(i) (Definitions 3 and 4), as a prefix of neighbors(i).
  struct KView {
    double k_distance = 0.0;
    std::span<const Neighbor> neighborhood;
  };

  /// Computes the view for 1 <= k <= k_max. Fails with OutOfRange when k
  /// exceeds k_max or the number of (distinct, in distinct mode) neighbors.
  Result<KView> View(size_t i, size_t k) const;

  /// Total stored neighbor entries (the size of M; n * k_max plus ties).
  size_t total_neighbor_count() const { return flat_view_.size(); }

  /// Persists M to a checksummed container file (container_file.h),
  /// published crash-safely via tmp + fsync + atomic rename: a crash
  /// mid-save can never leave a torn file at `path`. The paper's step 2
  /// works entirely from this file-resident database ("the materialization
  /// database M ... The original database D is not needed for this step");
  /// saving and reloading M lets the expensive step 1 be paid once per
  /// dataset.
  Status SaveToFile(const std::string& path) const;

  /// Loads a materialization database into RAM. Understands both the
  /// checksummed container written by SaveToFile/MaterializeToFile and the
  /// legacy v1 "LOFM" blob (pre-container saves stay loadable). A
  /// distinct-neighbors M additionally needs the original dataset for its
  /// coordinate comparisons; pass it via `data` (must be the same dataset,
  /// checked by size). Neighbor lists are structurally validated on load
  /// (index range, finite non-negative distances, (distance, index)
  /// sortedness — the same invariants FromLists enforces), and every
  /// header-derived count is bounded by the actual file size before any
  /// allocation, so a corrupt file is rejected with a typed Status instead
  /// of OOM-ing or silently mis-scoring later.
  static Result<NeighborhoodMaterializer> LoadFromFile(
      const std::string& path, const Dataset* data = nullptr);

  /// Memory-maps a container written by SaveToFile/MaterializeToFile and
  /// serves neighbors()/View() zero-copy from the mapping — flat_ is never
  /// materialized in RAM, so a multi-gigabyte M costs page cache, not
  /// anonymous memory. Section checksums and the same structural
  /// validation as LoadFromFile run once up front (one sequential pass);
  /// scores computed over a mapped M are bit-identical to the in-RAM
  /// route. The legacy v1 format has no checksums and is not mappable.
  static Result<NeighborhoodMaterializer> MapFromFile(
      const std::string& path, const Dataset* data = nullptr);

  /// Assembles an M from externally maintained neighbor lists (used by the
  /// incremental maintenance layer). Each list must be the full
  /// k_max-distance neighborhood of its point, sorted by
  /// (distance, index); this is validated structurally (sortedness, list
  /// length, index range) but semantic correctness is the caller's
  /// contract. `data` may be null in standard mode.
  static Result<NeighborhoodMaterializer> FromLists(
      size_t k_max, bool distinct_neighbors, const Dataset* data,
      const std::vector<std::vector<Neighbor>>& lists);

 private:
  NeighborhoodMaterializer(size_t k_max, bool distinct)
      : k_max_(k_max), distinct_(distinct) {}

  /// Points the read-path views at the owned vectors. Every RAM-backed
  /// construction path must call this last; the vectors' heap buffers move
  /// with the object, so the spans stay valid across moves.
  void BindToVectors() {
    offsets_view_ = {offsets_.data(), offsets_.size()};
    flat_view_ = {flat_.data(), flat_.size()};
  }

  /// Decodes a container (shared by LoadFromFile and MapFromFile):
  /// validates meta/offsets/neighbors sections against each other and the
  /// file size, then either copies into the vectors (copy_to_ram) or
  /// serves the mapping zero-copy, keeping `reader` alive.
  static Result<NeighborhoodMaterializer> FromContainer(
      ContainerReader reader, const std::string& path, const Dataset* data,
      bool copy_to_ram);

  size_t k_max_;
  bool distinct_;
  const Dataset* data_ = nullptr;  // needed for distinct-mode comparisons
  std::vector<size_t> offsets_;
  std::vector<Neighbor> flat_;
  std::unique_ptr<ContainerReader> container_;  // owns the mapping when set
  std::span<const size_t> offsets_view_;
  std::span<const Neighbor> flat_view_;
};

}  // namespace lofkit

#endif  // LOFKIT_INDEX_NEIGHBORHOOD_MATERIALIZER_H_
