#ifndef LOFKIT_INDEX_GRID_INDEX_H_
#define LOFKIT_INDEX_GRID_INDEX_H_

#include <unordered_map>
#include <vector>

#include "index/knn_index.h"

namespace lofkit {

/// Exact kNN over a uniform grid — the paper's "grid based approach which
/// can answer k-nn queries in constant time" for low-dimensional data
/// (section 7.4).
///
/// Build() partitions the bounding box into roughly n cells (at most 64 per
/// dimension) and buckets points by cell. A kNN query scans the query cell
/// and expands shell by shell, pruning cells whose minimum possible distance
/// exceeds the current k-distance bound. With bounded point-per-cell
/// occupancy this is O(1) expected per query; in high dimensions the grid
/// degenerates gracefully toward a single cell (a linear scan).
class GridIndex final : public KnnIndex {
 public:
  GridIndex() = default;

  Status Build(const Dataset& data, const Metric& metric) override;

  using KnnIndex::Query;
  using KnnIndex::QueryRadius;
  Status Query(std::span<const double> query, size_t k,
               std::optional<uint32_t> exclude,
               KnnSearchContext& ctx) const override;
  Status QueryRadius(std::span<const double> query, double radius,
                     std::optional<uint32_t> exclude,
                     KnnSearchContext& ctx) const override;
  const Dataset* dataset() const override { return data_; }
  std::string_view name() const override { return "grid"; }

  /// Number of cells per dimension chosen by Build() (for tests).
  size_t cells_per_dimension() const { return cells_per_dim_; }

 private:
  /// Cell coordinates of a (clamped) point, into `cell` (resized to d).
  void CellOf(std::span<const double> point, std::vector<int64_t>& cell) const;

  /// Packs cell coordinates into a hash key.
  uint64_t PackCell(std::span<const int64_t> cell) const;

  /// Bounds of a cell as coordinate vectors (out parameters sized d).
  void CellBounds(std::span<const int64_t> cell, std::vector<double>& lo,
                  std::vector<double>& hi) const;

  /// Visits every existing cell whose Chebyshev cell-distance from `center`
  /// is exactly `shell`, calling fn(bucket, cell). `cell` and `offset` are
  /// caller-provided odometer scratch (resized to d).
  template <typename Fn>
  void VisitShell(std::span<const int64_t> center, int64_t shell,
                  std::vector<int64_t>& cell, std::vector<int64_t>& offset,
                  Fn&& fn) const;

  const Dataset* data_ = nullptr;
  const Metric* metric_ = nullptr;
  DistanceKernels kern_;
  size_t cells_per_dim_ = 1;
  size_t bits_per_dim_ = 1;
  std::vector<double> box_lo_;
  std::vector<double> box_hi_;
  std::vector<double> cell_width_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets_;
};

}  // namespace lofkit

#endif  // LOFKIT_INDEX_GRID_INDEX_H_
